// Deployment scenario from Sec. VI: "In real-world deployment, a topic
// classifier could precede an NER tool launched for streams." A mixed
// multi-topic firehose (the D4 setting) is routed by a trained topic
// classifier into one NER Globalizer instance per topic, so each instance
// sees a topically coherent stream — the condition collective processing
// exploits. Compared against a single shared pipeline over the firehose.
//
// Usage: topic_routing [--model=bundle.ngb] [scale]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "data/topic_classifier.h"
#include "harness/system_loader.h"

int main(int argc, char** argv) {
  using namespace nerglob;
  const std::string model_path = harness::ParseModelFlag(&argc, argv);
  const double scale = argc > 1 ? std::atof(argv[1]) : harness::DefaultScale();
  harness::BuildOptions options;
  options.scale = scale;
  options.cache_dir = harness::DefaultCacheDir();
  auto loaded = harness::LoadOrTrainSystem(options, model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  harness::TrainedSystem& system = loaded.value();

  // Train the router on a held-out multi-topic sample.
  data::StreamGenerator gen(&system.kb_eval);
  auto router_spec = data::MakeDatasetSpec("D4", scale);
  router_spec.seed = 999;  // disjoint sample for router training
  auto router_train = gen.Generate(router_spec);
  data::TopicClassifier router(4096, 32, options.seed);
  router.Train(router_train, /*epochs=*/4, 5e-3f, options.seed + 1);
  std::printf("router accuracy on its training stream: %.3f\n",
              router.Evaluate(router_train));

  // The firehose to annotate.
  auto firehose = gen.Generate(data::MakeDatasetSpec("D4", scale));

  // Route into per-topic pipelines — each one a cheap session borrowing
  // the same immutable bundle.
  const core::NerGlobalizerConfig config =
      core::DefaultPipelineConfig(system.bundle);
  std::vector<core::NerGlobalizer> per_topic;
  per_topic.reserve(data::kNumTopics);
  for (int t = 0; t < data::kNumTopics; ++t) {
    per_topic.emplace_back(&system.bundle, config);
  }
  std::vector<std::vector<stream::Message>> routed(data::kNumTopics);
  for (const auto& msg : firehose) {
    routed[static_cast<int>(router.Predict(msg))].push_back(msg);
  }
  for (int t = 0; t < data::kNumTopics; ++t) {
    if (!routed[static_cast<size_t>(t)].empty()) {
      per_topic[static_cast<size_t>(t)].ProcessAll(routed[static_cast<size_t>(t)]);
    }
    std::printf("topic %-14s: %zu messages routed\n",
                data::TopicName(static_cast<data::Topic>(t)),
                routed[static_cast<size_t>(t)].size());
  }

  // Collect routed predictions back into firehose order.
  std::map<int64_t, std::vector<text::EntitySpan>> by_id;
  for (int t = 0; t < data::kNumTopics; ++t) {
    auto preds = per_topic[static_cast<size_t>(t)].Predictions();
    const auto& ids = per_topic[static_cast<size_t>(t)].message_ids();
    for (size_t i = 0; i < ids.size(); ++i) by_id[ids[i]] = preds[i];
  }
  std::vector<std::vector<text::EntitySpan>> routed_preds;
  std::vector<std::vector<text::EntitySpan>> gold;
  for (const auto& msg : firehose) {
    routed_preds.push_back(by_id.count(msg.id) ? by_id[msg.id]
                                               : std::vector<text::EntitySpan>{});
    gold.push_back(msg.gold_spans);
  }
  auto routed_scores = eval::EvaluateNer(gold, routed_preds);

  // Baseline: one shared pipeline over the whole firehose.
  core::NerGlobalizer shared(&system.bundle, config);
  shared.ProcessAll(firehose);
  auto shared_scores = eval::EvaluateNer(gold, shared.Predictions());

  std::printf("\nmacro-F1 on the mixed firehose:\n");
  std::printf("  one shared pipeline        %.3f\n", shared_scores.macro_f1);
  std::printf("  topic-routed pipelines     %.3f\n", routed_scores.macro_f1);
  std::printf("(routing keeps each CandidateBase topically pure; with a "
              "shared candidate space\nthe two are close — the win grows "
              "when topics share ambiguous surface forms)\n");
  return 0;
}
