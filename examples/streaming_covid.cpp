// Continuous streaming execution: the scenario that motivates the paper.
// A Covid conversation stream (the D2 setting) arrives in batches; after
// every batch the pipeline's state — CTrie surface forms, CandidateBase
// mention pools, candidate clusters — grows incrementally, and the NER
// output over everything seen so far improves as more context accumulates
// ("collective processing ... evolves with the stream itself", Sec. V).
//
// Usage: streaming_covid [scale] [batch_size]

#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"
#include "data/generator.h"
#include "harness/experiment.h"
#include "stream/message.h"

int main(int argc, char** argv) {
  using namespace nerglob;
  const double scale = argc > 1 ? std::atof(argv[1]) : harness::DefaultScale();
  const size_t batch_size = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 100;

  std::printf("== Simulated Covid stream, batch-by-batch Global NER ==\n");
  harness::BuildOptions options;
  options.scale = scale;
  options.cache_dir = harness::DefaultCacheDir();
  auto system = harness::BuildTrainedSystem(options);

  data::StreamGenerator gen(&system.kb_eval);
  auto messages = gen.Generate(data::MakeDatasetSpec("D2", scale));
  stream::StreamSource source(messages, batch_size);

  core::NerGlobalizerConfig config;
  config.cluster_threshold = system.cluster_threshold;
  core::NerGlobalizer pipeline(system.model.get(), system.embedder.get(),
                               system.classifier.get(), config);

  std::printf("\n%8s %10s %10s %12s %12s %10s\n", "batch", "messages",
              "surfaces", "mentions", "candidates", "macro-F1");
  size_t batch_index = 0;
  size_t consumed = 0;
  while (source.HasNext()) {
    auto batch = source.NextBatch();
    consumed += batch.size();
    pipeline.ProcessBatch(batch);

    // Score everything processed so far against its gold annotation.
    std::vector<std::vector<text::EntitySpan>> gold;
    for (size_t m = 0; m < consumed; ++m) gold.push_back(messages[m].gold_spans);
    auto predictions = pipeline.Predictions();
    auto scores = eval::EvaluateNer(gold, predictions);

    size_t candidates = 0;
    for (const auto& surface : pipeline.candidate_base().surfaces()) {
      candidates += pipeline.candidate_base().Candidates(surface).size();
    }
    std::printf("%8zu %10zu %10zu %12zu %12zu %10.3f\n", ++batch_index,
                consumed, pipeline.trie().size(),
                pipeline.candidate_base().TotalMentions(), candidates,
                scores.macro_f1);
  }

  std::printf("\nfinal state: %zu sentence records, %zu surface forms, "
              "%zu mention records\n",
              pipeline.tweet_base().size(), pipeline.trie().size(),
              pipeline.candidate_base().TotalMentions());
  std::printf("local time %.2fs, global time %.2fs (overhead %.1f%%)\n",
              pipeline.local_seconds(), pipeline.global_seconds(),
              pipeline.local_seconds() > 0
                  ? 100.0 * pipeline.global_seconds() / pipeline.local_seconds()
                  : 0.0);

  // With NERGLOB_METRICS=1, persist the per-stage histograms and counters
  // accumulated over the stream (same JSON schema as BENCH_metrics.json's
  // "metrics" object; see DESIGN.md §8).
  if (nerglob::metrics::Enabled()) {
    const char* path = "streaming_covid_metrics.json";
    if (nerglob::metrics::MetricsRegistry::Global().WriteJsonFile(path)) {
      std::printf("wrote %s\n", path);
    }
  }
  return 0;
}
