// Continuous streaming execution: the scenario that motivates the paper.
// A Covid conversation stream (the D2 setting) arrives in batches and is
// driven through a StreamingSession — the bounded-memory runtime. With a
// window (third argument) the session retires old messages after every
// batch, flushing their *finalized* predictions downstream while CTrie /
// CandidateBase / TweetBase stay bounded; with window 0 it reproduces the
// classic unbounded growth ("collective processing ... evolves with the
// stream itself", Sec. V).
//
// Usage: streaming_covid [--model=bundle.ngb] [scale] [batch_size]
//                        [window_messages]
//   window_messages = 0 (default) disables eviction. With --model, the
//   trained bundle is loaded from the given `.ngb` file (see train_model)
//   instead of training here.

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "common/metrics.h"
#include "data/generator.h"
#include "harness/system_loader.h"
#include "stream/message.h"
#include "stream/streaming_session.h"

int main(int argc, char** argv) {
  using namespace nerglob;
  const std::string model_path = harness::ParseModelFlag(&argc, argv);
  const double scale = argc > 1 ? std::atof(argv[1]) : harness::DefaultScale();
  const size_t batch_size = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 100;
  const size_t window = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 0;

  std::printf("== Simulated Covid stream, batch-by-batch Global NER ==\n");
  if (window > 0) {
    std::printf("(sliding window: %zu messages; older messages are finalized "
                "and evicted)\n", window);
  }
  harness::BuildOptions options;
  options.scale = scale;
  options.cache_dir = harness::DefaultCacheDir();
  auto loaded = harness::LoadOrTrainSystem(options, model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  harness::TrainedSystem& system = loaded.value();

  data::StreamGenerator gen(&system.kb_eval);
  auto messages = gen.Generate(data::MakeDatasetSpec("D2", scale));
  stream::StreamSource source(messages, batch_size);

  stream::StreamingSessionConfig config;
  config.pipeline = core::DefaultPipelineConfig(system.bundle);
  config.pipeline.window_messages = window;
  stream::StreamingSession session(&system.bundle, config);
  auto& pipeline = session.pipeline();

  std::printf("\n%8s %10s %10s %12s %12s %10s %10s\n", "batch", "live",
              "surfaces", "mentions", "finalized", "mem-MB", "macro-F1");
  while (session.Step(&source)) {
    // Score the live window against its gold annotation.
    std::vector<std::vector<text::EntitySpan>> gold;
    std::unordered_map<int64_t, const stream::Message*> by_id;
    for (const auto& m : messages) by_id[m.id] = &m;
    for (int64_t id : pipeline.message_ids()) {
      gold.push_back(by_id.at(id)->gold_spans);
    }
    auto predictions = pipeline.Predictions();
    auto scores = eval::EvaluateNer(gold, predictions);

    const auto usage = session.MemoryUsage();
    std::printf("%8zu %10zu %10zu %12zu %12zu %10.1f %10.3f\n",
                session.batches_processed(), pipeline.tweet_base().size(),
                pipeline.trie().size(),
                pipeline.candidate_base().TotalMentions(),
                session.finalized().size(),
                static_cast<double>(usage.total_bytes) / (1024.0 * 1024.0),
                scores.macro_f1);
  }
  session.Flush();

  // The finalized checkpoint stream covers every message exactly once, in
  // stream order — score it end-to-end.
  std::vector<std::vector<text::EntitySpan>> gold, finalized;
  {
    std::unordered_map<int64_t, const stream::Message*> by_id;
    for (const auto& m : messages) by_id[m.id] = &m;
    for (const auto& f : session.finalized()) {
      gold.push_back(by_id.at(f.message_id)->gold_spans);
      finalized.push_back(f.spans);
    }
  }
  auto final_scores = eval::EvaluateNer(gold, finalized);

  std::printf("\nfinal: %zu messages finalized (%zu by eviction), "
              "macro-F1 %.3f\n",
              session.finalized().size(), pipeline.evicted_messages(),
              final_scores.macro_f1);
  std::printf("live state: %zu sentence records, %zu surface forms, "
              "%zu mention records\n",
              pipeline.tweet_base().size(), pipeline.trie().size(),
              pipeline.candidate_base().TotalMentions());
  if (window > 0) {
    std::printf("embed cache: %zu hits, %zu misses\n",
                pipeline.embed_cache_hits(), pipeline.embed_cache_misses());
  }
  std::printf("local time %.2fs, global time %.2fs (overhead %.1f%%)\n",
              pipeline.local_seconds(), pipeline.global_seconds(),
              pipeline.local_seconds() > 0
                  ? 100.0 * pipeline.global_seconds() / pipeline.local_seconds()
                  : 0.0);

  // With NERGLOB_METRICS=1, persist the per-stage histograms and counters
  // accumulated over the stream (same JSON schema as BENCH_metrics.json's
  // "metrics" object; see docs/OBSERVABILITY.md).
  if (nerglob::metrics::Enabled()) {
    const char* path = "streaming_covid_metrics.json";
    if (nerglob::metrics::MetricsRegistry::Global().WriteJsonFile(path)) {
      std::printf("wrote %s\n", path);
    }
  }
  return 0;
}
