// Surface form ambiguity (Sec. V-C): the same string can refer to entities
// of different types — or to no entity at all. The paper's examples:
// "washington" (the president vs the state) and "us" (the country vs the
// pronoun). This example feeds hand-written tweets through the trained
// pipeline and shows how candidate clustering separates the senses.
//
// Usage: ambiguity_resolution [--model=bundle.ngb] [scale]

#include <cstdio>
#include <cstdlib>

#include "harness/system_loader.h"
#include "text/tokenizer.h"

namespace {

using namespace nerglob;

stream::Message Tweet(int64_t id, const std::string& txt) {
  stream::Message m;
  m.id = id;
  m.text = txt;
  m.tokens = text::Tokenizer().Tokenize(txt);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_path = harness::ParseModelFlag(&argc, argv);
  const double scale = argc > 1 ? std::atof(argv[1]) : harness::DefaultScale();
  harness::BuildOptions options;
  options.scale = scale;
  options.cache_dir = harness::DefaultCacheDir();
  auto loaded = harness::LoadOrTrainSystem(options, model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  harness::TrainedSystem& system = loaded.value();

  // A small hand-written stream mixing both senses of "washington" and of
  // "us". Repetition matters: collective processing needs several mentions
  // of each sense to carve out clusters.
  std::vector<stream::Message> tweets = {
      Tweet(0, "washington announced a lockdown in the capital"),
      Tweet(1, "washington says the bill will pass"),
      Tweet(2, "washington slams the senate over a leaked memo"),
      Tweet(3, "protests erupt in washington after the vote"),
      Tweet(4, "voters in washington are angry about the recount"),
      Tweet(5, "hospitals in washington are full this week"),
      Tweet(6, "the us reports new cases today"),
      Tweet(7, "cases in the us doubled this week"),
      Tweet(8, "please help us get through this"),
      Tweet(9, "none of us saw that coming"),
      Tweet(10, "us hospitals are full because of the surge"),
      Tweet(11, "they left us waiting for hours"),
  };

  core::NerGlobalizer pipeline(&system.bundle,
                               core::DefaultPipelineConfig(system.bundle));
  pipeline.ProcessBatch(tweets);

  std::printf("== candidate clusters per ambiguous surface form ==\n");
  for (const std::string surface : {"washington", "us"}) {  // NOLINT
    const auto& pool = pipeline.candidate_base().Mentions(surface);
    const auto& candidates = pipeline.candidate_base().Candidates(surface);
    std::printf("\nsurface \"%s\": %zu mentions -> %zu candidate cluster(s)\n",
                surface.c_str(), pool.size(), candidates.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      const auto& cand = candidates[c];
      std::printf("  cluster %zu: %-10s (confidence %.2f) — tweets:",
                  c, cand.is_entity ? text::EntityTypeName(cand.type)
                                    : "non-entity",
                  cand.confidence);
      for (size_t mention_id : cand.mention_ids) {
        std::printf(" %lld",
                    static_cast<long long>(pool[mention_id].message_id));
      }
      std::printf("\n");
    }
  }

  std::printf("\n== final NER output per tweet ==\n");
  auto predictions = pipeline.Predictions();
  for (size_t m = 0; m < tweets.size(); ++m) {
    std::printf("T%-2zu %-55s ->", m, tweets[m].text.c_str());
    if (predictions[m].empty()) std::printf(" (none)");
    for (const auto& span : predictions[m]) {
      std::string surface;
      for (size_t t = span.begin_token; t < span.end_token; ++t) {
        if (!surface.empty()) surface += ' ';
        surface += tweets[m].tokens[t].text;
      }
      std::printf(" [%s:%s]", surface.c_str(), text::EntityTypeName(span.type));
    }
    std::printf("\n");
  }
  return 0;
}
