// Quickstart: build the full NER Globalizer system, run it on a simulated
// Covid tweet stream (the paper's D2 setting), and compare Local NER vs
// Global NER effectiveness.
//
// Usage: quickstart [scale]   (scale in (0,1], default from NERGLOB_SCALE)

#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"
#include "common/timer.h"
#include "harness/experiment.h"

namespace {

using nerglob::core::PipelineStage;

void PrintScores(const char* label, const nerglob::eval::NerScores& s) {
  std::printf("%-28s  PER %.2f  LOC %.2f  ORG %.2f  MISC %.2f  |  macro-F1 %.2f\n",
              label, s.per_type[0].f1, s.per_type[1].f1, s.per_type[2].f1,
              s.per_type[3].f1, s.macro_f1);
}

}  // namespace

int main(int argc, char** argv) {
  double scale = nerglob::harness::DefaultScale();
  if (argc > 1) scale = std::atof(argv[1]);

  std::printf("== NER Globalizer quickstart (scale %.2f) ==\n", scale);
  nerglob::harness::BuildOptions options;
  options.scale = scale;
  options.cache_dir = nerglob::harness::DefaultCacheDir();

  nerglob::WallTimer build_timer;
  auto system = nerglob::harness::BuildTrainedSystem(options);
  std::printf("trained system in %.1fs (LM loss %.3f, embedder val loss %.4f, "
              "classifier val macro-F1 %.1f%%, %zu D5 mentions)\n",
              build_timer.ElapsedSeconds(), system.fine_tune_loss,
              system.embedder_result.validation_loss,
              100.0 * system.classifier_result.validation_macro_f1,
              system.d5_mention_examples);

  nerglob::WallTimer run_timer;
  auto run = nerglob::harness::RunDataset(system, "D2", scale);
  std::printf("processed %zu messages in %.1fs (local %.1fs, global %.1fs)\n",
              run.messages.size(), run_timer.ElapsedSeconds(),
              run.local_seconds, run.global_seconds);

  PrintScores("Local NER (BERTweet role)",
              run.stage_scores[static_cast<int>(PipelineStage::kLocalOnly)]);
  PrintScores("+ mention extraction",
              run.stage_scores[static_cast<int>(PipelineStage::kMentionExtraction)]);
  PrintScores("+ local embeddings",
              run.stage_scores[static_cast<int>(PipelineStage::kLocalEmbeddings)]);
  PrintScores("Global NER (full system)",
              run.stage_scores[static_cast<int>(PipelineStage::kFullGlobal)]);

  const double local =
      run.stage_scores[static_cast<int>(PipelineStage::kLocalOnly)].macro_f1;
  const double global =
      run.stage_scores[static_cast<int>(PipelineStage::kFullGlobal)].macro_f1;
  if (local > 0) {
    std::printf("macro-F1 gain from Global NER: %+.1f%%\n",
                100.0 * (global - local) / local);
  }

  // NERGLOB_METRICS=1 turns on the observability layer; dump the Prometheus
  // view so the stage spans and counters are visible from the CLI.
  if (nerglob::metrics::Enabled()) {
    std::printf("\n== metrics (NERGLOB_METRICS=1) ==\n%s",
                nerglob::metrics::MetricsRegistry::Global()
                    .ToPrometheusText()
                    .c_str());
  }
  return 0;
}
