// Pipeline introspection on a full dataset: after running a stream through
// NER Globalizer, dump the CandidateBase — surface forms, mention pools,
// cluster structure, classifier verdicts — plus pipeline-wide statistics.
// Useful for understanding what collective processing actually built.
//
// Usage: inspect_candidates [--model=bundle.ngb] [dataset=D2] [scale] [top_n=15]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "harness/system_loader.h"

int main(int argc, char** argv) {
  using namespace nerglob;
  const std::string model_path = harness::ParseModelFlag(&argc, argv);
  const std::string dataset = argc > 1 ? argv[1] : "D2";
  const double scale = argc > 2 ? std::atof(argv[2]) : harness::DefaultScale();
  const int top_n = argc > 3 ? std::atoi(argv[3]) : 15;

  harness::BuildOptions options;
  options.scale = scale;
  options.cache_dir = harness::DefaultCacheDir();
  auto loaded = harness::LoadOrTrainSystem(options, model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  harness::TrainedSystem& system = loaded.value();

  auto spec = data::TryMakeDatasetSpec(dataset, scale);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  data::StreamGenerator gen(&system.kb_eval);
  auto messages = gen.Generate(*spec);

  core::NerGlobalizer pipeline(&system.bundle,
                               core::DefaultPipelineConfig(system.bundle));
  pipeline.ProcessAll(messages);

  const auto& cb = pipeline.candidate_base();
  std::printf("== %s: %zu messages, %zu surface forms, %zu mentions ==\n",
              dataset.c_str(), messages.size(), cb.surfaces().size(),
              cb.TotalMentions());

  // Rank surfaces by pool size.
  std::vector<std::pair<std::string, size_t>> ranked;
  for (const auto& surface : cb.surfaces()) {
    ranked.emplace_back(surface, cb.Mentions(surface).size());
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::printf("\n%-26s %9s %9s  verdicts\n", "surface form", "mentions",
              "clusters");
  for (int i = 0; i < top_n && i < static_cast<int>(ranked.size()); ++i) {
    const auto& [surface, count] = ranked[static_cast<size_t>(i)];
    const auto& candidates = cb.Candidates(surface);
    std::printf("%-26s %9zu %9zu ", surface.c_str(), count, candidates.size());
    for (const auto& cand : candidates) {
      std::printf(" %s(%zu,%.2f)",
                  cand.is_entity ? text::EntityTypeName(cand.type) : "NONE",
                  cand.mention_ids.size(), cand.confidence);
    }
    std::printf("\n");
  }

  // Aggregate statistics: clusters per surface, entity vs non-entity.
  std::map<size_t, int> cluster_histogram;
  size_t entity_clusters = 0, total_clusters = 0;
  for (const auto& surface : cb.surfaces()) {
    const auto& candidates = cb.Candidates(surface);
    ++cluster_histogram[candidates.size()];
    total_clusters += candidates.size();
    for (const auto& cand : candidates) entity_clusters += cand.is_entity ? 1 : 0;
  }
  std::printf("\nclusters: %zu total, %zu entity / %zu non-entity\n",
              total_clusters, entity_clusters, total_clusters - entity_clusters);
  std::printf("clusters-per-surface histogram:");
  for (const auto& [k, v] : cluster_histogram) std::printf(" %zu:%d", k, v);
  std::printf("\nlocal %.2fs + global %.2fs (overhead %.1f%%)\n",
              pipeline.local_seconds(), pipeline.global_seconds(),
              pipeline.local_seconds() > 0
                  ? 100.0 * pipeline.global_seconds() / pipeline.local_seconds()
                  : 0.0);
  return 0;
}
