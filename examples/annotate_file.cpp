// Command-line annotator: reads messages (one per line) from a file or
// stdin, runs them through the trained NER Globalizer pipeline, and writes
// CoNLL-style BIO output — the adoption path for using this library on
// your own data.
//
// Usage: annotate_file [--model=bundle.ngb] [path|-] [scale]
// With no input path (or "-"), reads stdin; with no stdin, annotates a
// small built-in demo stream. With --model, the trained bundle is loaded
// from the given `.ngb` file (see train_model) instead of training here.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/string_util.h"
#include "harness/system_loader.h"
#include "text/tokenizer.h"

namespace {

using namespace nerglob;

std::vector<std::string> ReadLines(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!TrimWhitespace(line).empty()) lines.push_back(line);
  }
  return lines;
}

const char* const kDemoStream[] = {
    "RT @newsfeed: coronavirus cases rising again in italy",
    "beshear shuts down schools as coronavirus cases rise",
    "the us reports record numbers this week",
    "please help us stay safe out there",
    "thank you NHS workers for fighting coronavirus",
    "#Coronavirus is everywhere in the US right now",
};

}  // namespace

int main(int argc, char** argv) {
  const std::string model_path = harness::ParseModelFlag(&argc, argv);
  std::vector<std::string> lines;
  if (argc > 1 && std::string(argv[1]) != "-") {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    lines = ReadLines(file);
  } else if (argc > 1) {
    lines = ReadLines(std::cin);
  } else {
    for (const char* s : kDemoStream) lines.emplace_back(s);
    std::fprintf(stderr, "(no input given; annotating the built-in demo "
                         "stream — pass a file or '-')\n");
  }
  if (lines.empty()) {
    std::fprintf(stderr, "no input lines\n");
    return 1;
  }

  const double scale = argc > 2 ? std::atof(argv[2]) : harness::DefaultScale();
  harness::BuildOptions options;
  options.scale = scale;
  options.cache_dir = harness::DefaultCacheDir();
  auto loaded = harness::LoadOrTrainSystem(options, model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  harness::TrainedSystem& system = loaded.value();

  text::Tokenizer tokenizer;
  std::vector<stream::Message> messages;
  for (size_t i = 0; i < lines.size(); ++i) {
    stream::Message m;
    m.id = static_cast<int64_t>(i);
    m.text = lines[i];
    m.tokens = tokenizer.Tokenize(m.text);
    messages.push_back(std::move(m));
  }

  core::NerGlobalizer pipeline(&system.bundle,
                               core::DefaultPipelineConfig(system.bundle));
  pipeline.ProcessBatch(messages);
  auto predictions = pipeline.Predictions();

  // CoNLL output: token TAB bio-label, blank line between sentences.
  for (size_t m = 0; m < messages.size(); ++m) {
    const auto bio =
        text::EncodeBio(messages[m].tokens.size(), predictions[m]);
    for (size_t t = 0; t < messages[m].tokens.size(); ++t) {
      std::printf("%s\t%s\n", messages[m].tokens[t].text.c_str(),
                  text::BioLabelName(bio[t]).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
