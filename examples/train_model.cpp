// Train-once entry point for the model/session split: runs the offline
// training phase (Local NER fine-tune + Phrase Embedder + Entity
// Classifier) and saves the resulting immutable ModelBundle as a `.ngb`
// artifact. Every other example then loads it with --model=<path> instead
// of retraining — train once, serve many sessions.
//
// Usage: train_model [out.ngb] [scale]
//
// After saving, the bundle is reloaded and its forward outputs compared
// against the in-memory system, so a zero exit status certifies the
// artifact round-trips bit-identically.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/timer.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace nerglob;
  const std::string out_path = argc > 1 ? argv[1] : "model.ngb";
  const double scale = argc > 2 ? std::atof(argv[2]) : harness::DefaultScale();

  harness::BuildOptions options;
  options.scale = scale;
  options.cache_dir = harness::DefaultCacheDir();

  std::printf("== training model bundle (scale %.2f) ==\n", scale);
  WallTimer train_timer;
  auto system = harness::BuildTrainedSystem(options);
  std::printf("trained in %.1fs (LM loss %.3f, embedder val loss %.4f, "
              "classifier val macro-F1 %.1f%%)\n",
              train_timer.ElapsedSeconds(), system.fine_tune_loss,
              system.embedder_result.validation_loss,
              100.0 * system.classifier_result.validation_macro_f1);

  system.bundle.set_training_stats(harness::StatsFromSystem(system));
  WallTimer save_timer;
  if (const Status st = system.bundle.Save(out_path); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved %s in %.2fs (fingerprint %s)\n", out_path.c_str(),
              save_timer.ElapsedSeconds(),
              system.bundle.Fingerprint().c_str());

  // Verify the round trip: reload in this process and compare every
  // parameter matrix bit-for-bit.
  WallTimer load_timer;
  Result<core::ModelBundle> reloaded = core::ModelBundle::Load(out_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded in %.2fs\n", load_timer.ElapsedSeconds());
  const auto want = system.bundle.model().Parameters();
  const auto got = reloaded->model().Parameters();
  if (want.size() != got.size()) {
    std::fprintf(stderr, "parameter count mismatch after reload\n");
    return 1;
  }
  for (size_t i = 0; i < want.size(); ++i) {
    const Matrix& a = want[i].value();
    const Matrix& b = got[i].value();
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
      std::fprintf(stderr, "parameter %zu shape mismatch\n", i);
      return 1;
    }
    for (size_t k = 0; k < a.size(); ++k) {
      if (a.data()[k] != b.data()[k]) {
        std::fprintf(stderr, "parameter %zu differs after reload\n", i);
        return 1;
      }
    }
  }
  std::printf("round trip verified: reloaded weights are bit-identical\n");
  std::printf("use it:  annotate_file --model=%s\n", out_path.c_str());
  return 0;
}
