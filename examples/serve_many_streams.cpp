// Multi-tenant serving: many concurrent streams, one trained model.
// N independent Covid conversation streams are multiplexed over a single
// const ModelBundle by serve::SessionManager — each stream pinned to one
// shard worker, per-stream order preserved, memory bounded by the sliding
// window plus the admission-controlled queues. The punchline is the
// determinism contract: every stream's output is byte-identical to running
// it alone on one thread (checkable here with --verify; the CI
// serve-stress job runs exactly that under ThreadSanitizer).
//
// Usage: serve_many_streams [--model=bundle.ngb] [--sessions=N]
//                           [--shards=N] [--batch=N] [--window=N]
//                           [--scale=S] [--verify]
//   Defaults: sessions=8, shards=Parallelism(), batch=16, window=4*batch.
//   --verify replays every stream single-threaded and exits non-zero if
//   any diverges from the served output.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "harness/system_loader.h"
#include "serve/session_manager.h"
#include "stream/streaming_session.h"

namespace {

using namespace nerglob;

// Strips `--name=value` from argv, returning `value` or `fallback`.
long FlagValue(int* argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      const long value = std::atol(argv[i] + prefix.size());
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return value;
    }
  }
  return fallback;
}

// Same, for flags whose value is not an integer (e.g. --scale=0.08).
std::string StringFlag(int* argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      std::string value = argv[i] + prefix.size();
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return value;
    }
  }
  return "";
}

bool BoolFlag(int* argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < *argc; ++i) {
    if (flag == argv[i]) {
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_path = harness::ParseModelFlag(&argc, argv);
  const auto sessions =
      static_cast<size_t>(FlagValue(&argc, argv, "sessions", 8));
  const auto shards = static_cast<size_t>(FlagValue(&argc, argv, "shards", 0));
  const auto batch_size =
      static_cast<size_t>(FlagValue(&argc, argv, "batch", 16));
  auto window = static_cast<size_t>(FlagValue(&argc, argv, "window", -1));
  if (window == static_cast<size_t>(-1)) window = 4 * batch_size;
  const bool verify = BoolFlag(&argc, argv, "verify");
  const std::string scale_flag = StringFlag(&argc, argv, "scale");
  const double scale =
      scale_flag.empty() ? harness::DefaultScale() : std::atof(scale_flag.c_str());

  std::printf("== Multi-session serving: %zu streams over one bundle ==\n",
              sessions);
  harness::BuildOptions options;
  options.scale = scale;
  options.cache_dir = harness::DefaultCacheDir();
  auto loaded = harness::LoadOrTrainSystem(options, model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  harness::TrainedSystem& system = loaded.value();

  // Each tenant gets its own stream: the D2 conversation rotated by a
  // session-specific offset, so streams overlap but differ.
  data::StreamGenerator gen(&system.kb_eval);
  const auto messages = gen.Generate(data::MakeDatasetSpec("D2", scale));
  std::vector<std::vector<std::vector<stream::Message>>> per_session;
  for (size_t s = 0; s < sessions; ++s) {
    std::vector<stream::Message> rotated = messages;
    std::rotate(rotated.begin(),
                rotated.begin() +
                    static_cast<ptrdiff_t>((s * 37 + 1) % rotated.size()),
                rotated.end());
    stream::StreamSource source(std::move(rotated), batch_size);
    std::vector<std::vector<stream::Message>> batches;
    std::vector<stream::Message> batch;
    while (!(batch = source.NextBatch()).empty()) {
      batches.push_back(std::move(batch));
    }
    per_session.push_back(std::move(batches));
  }

  serve::SessionManagerConfig config;
  config.num_shards = shards;  // 0 => Parallelism()
  config.pipeline = core::DefaultPipelineConfig(system.bundle);
  config.pipeline.window_messages = window;
  serve::SessionManager manager(&system.bundle, config);
  std::printf("%zu shard workers, queue capacity %zu batches/shard, "
              "window %zu messages\n",
              manager.num_shards(), manager.queue_capacity(), window);

  std::vector<std::string> ids;
  for (size_t s = 0; s < sessions; ++s) {
    ids.push_back("stream-" + std::to_string(s));
    if (Status st = manager.Open(ids.back()); !st.ok()) {
      std::fprintf(stderr, "Open: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Fan-in frontend: a few client threads push their tenants' batches in
  // order, backing off on Status::Unavailable — the backpressure contract.
  std::atomic<uint64_t> retries{0};
  const size_t num_clients = std::min<size_t>(sessions, 4);
  WallTimer timer;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t s = c; s < sessions; s += num_clients) {
        for (const auto& batch : per_session[s]) {
          while (true) {
            const Status st = manager.Submit(ids[s], batch);
            if (st.ok()) break;
            if (st.code() != StatusCode::kUnavailable) {
              std::fprintf(stderr, "Submit: %s\n", st.ToString().c_str());
              return;
            }
            retries.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  manager.FlushAll();
  const double wall = timer.ElapsedSeconds();

  const serve::SessionManagerStats stats = manager.stats();
  std::printf("\nserved %llu batches (%llu messages) in %.2fs — %.0f "
              "messages/s across %zu sessions\n",
              static_cast<unsigned long long>(stats.processed_batches),
              static_cast<unsigned long long>(stats.processed_messages), wall,
              wall > 0 ? stats.processed_messages / wall : 0.0, sessions);
  std::printf("backpressure: %llu rejected submissions, %llu client retries\n",
              static_cast<unsigned long long>(stats.rejected_batches),
              static_cast<unsigned long long>(retries.load()));

  bool ok = true;
  size_t verified = 0;
  for (size_t s = 0; s < sessions; ++s) {
    auto got = manager.TakeFinalized(ids[s]);
    if (!got.ok()) {
      std::fprintf(stderr, "TakeFinalized(%s): %s\n", ids[s].c_str(),
                   got.status().ToString().c_str());
      return 1;
    }
    if (got->size() != messages.size()) {
      std::fprintf(stderr, "%s: %zu finalized, want %zu\n", ids[s].c_str(),
                   got->size(), messages.size());
      ok = false;
      continue;
    }
    if (!verify) continue;
    // Single-threaded replay of the same batches: the served output must
    // be byte-identical, or the determinism contract is broken.
    stream::StreamingSessionConfig replay_config;
    replay_config.pipeline = core::DefaultPipelineConfig(system.bundle);
    replay_config.pipeline.window_messages = window;
    stream::StreamingSession replay(&system.bundle, replay_config);
    for (const auto& batch : per_session[s]) replay.ProcessBatch(batch);
    replay.Flush();
    const auto want = replay.TakeFinalized();
    for (size_t i = 0; i < want.size(); ++i) {
      if (!((*got)[i] == want[i])) {
        std::fprintf(stderr, "%s: message %zu diverged from replay\n",
                     ids[s].c_str(), i);
        ok = false;
        break;
      }
    }
    ++verified;
  }
  if (verify) {
    std::printf("verify: %zu/%zu streams byte-identical to single-threaded "
                "replay — %s\n", verified, sessions, ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
