// Deterministic fault injection (common::FaultInjector) and the
// crash-safety machinery built on it: retry absorption, atomic file
// writes, generation-numbered fleet checkpoints, RecoverLatest fallback,
// and serve-layer quarantine. The load-bearing property throughout: a
// fault at any single registered site never costs committed data — the
// fleet recovered from the last committed generation is bit-identical to
// an uninterrupted run (docs/RELIABILITY.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "harness/experiment.h"
#include "io/checkpoint_io.h"
#include "io/tensor_io.h"
#include "serve/session_manager.h"
#include "stream/message.h"

namespace nerglob {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Re-arm/disarm around each test so a failing assertion can't leak an
// armed injector into the rest of the process.
class ArmedInjector {
 public:
  explicit ArmedInjector(const std::string& spec) {
    Status s = fault::FaultInjector::Global().ArmFromSpec(spec);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~ArmedInjector() { fault::FaultInjector::Global().Disarm(); }
};

// ---------------------------------------------------------------------------
// Spec grammar

TEST(FaultSpec, ParsesEveryDirectiveForm) {
  auto& injector = fault::FaultInjector::Global();
  EXPECT_TRUE(injector.ArmFromSpec("ckpt.rename:1").ok());
  EXPECT_TRUE(injector.ArmFromSpec("io.write:3+,io.read:1").ok());
  EXPECT_TRUE(injector.ArmFromSpec("io.write:p=0.25,seed=7").ok());
  EXPECT_TRUE(injector.ArmFromSpec(" io.open_read:2 , seed=9 ").ok());
  EXPECT_TRUE(injector.ArmFromSpec("").ok());
  EXPECT_FALSE(injector.armed());
  injector.Disarm();
}

TEST(FaultSpec, RejectsMalformedClauses) {
  auto& injector = fault::FaultInjector::Global();
  const char* bad[] = {
      "bogus.site:1",     // unregistered site must fail loudly
      "io.write",         // missing directive
      "io.write:",        // empty directive
      "io.write:0",       // hit counts are 1-based
      "io.write:p=1.5",   // probability out of range
      "io.write:p=x",     // not a number
      "seed=abc",         // bad seed
      ":3",               // missing site
  };
  for (const char* spec : bad) {
    Status s = injector.ArmFromSpec(spec);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << spec;
  }
  injector.Disarm();
}

TEST(FaultSpec, NthFiresExactlyOnceAndPersistentForever) {
  auto& injector = fault::FaultInjector::Global();
  {
    ArmedInjector armed("io.write:2");
    EXPECT_FALSE(fault::InjectFault(fault::kSiteIoWrite));
    EXPECT_TRUE(fault::InjectFault(fault::kSiteIoWrite));
    EXPECT_FALSE(fault::InjectFault(fault::kSiteIoWrite));
    EXPECT_EQ(injector.HitCount(fault::kSiteIoWrite), 3u);
    EXPECT_EQ(injector.InjectedCount(fault::kSiteIoWrite), 1u);
    // An armed injector only fires at the sites its clauses name.
    EXPECT_FALSE(fault::InjectFault(fault::kSiteIoRead));
  }
  {
    ArmedInjector armed("io.write:2+");
    EXPECT_FALSE(fault::InjectFault(fault::kSiteIoWrite));
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(fault::InjectFault(fault::kSiteIoWrite));
    }
    EXPECT_EQ(injector.InjectedCount(fault::kSiteIoWrite), 5u);
  }
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(fault::InjectFault(fault::kSiteIoWrite));
}

TEST(FaultSpec, ProbabilisticModeIsSeedDeterministic) {
  auto& injector = fault::FaultInjector::Global();
  auto draw = [&](const std::string& spec) {
    ArmedInjector armed(spec);
    std::vector<bool> outcomes;
    for (int i = 0; i < 256; ++i) {
      outcomes.push_back(fault::InjectFault(fault::kSiteIoWrite));
    }
    return outcomes;
  };
  const auto a = draw("io.write:p=0.3,seed=42");
  const auto b = draw("io.write:p=0.3,seed=42");
  EXPECT_EQ(a, b);  // same seed => bit-identical fault pattern
  size_t fired = 0;
  for (const bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, a.size());
  injector.Disarm();
}

TEST(FaultSpec, EveryRegisteredSiteFires) {
  // The catalog contract: each site name in kAllSites parses and fires.
  // The CI chaos lane relies on this to guarantee matrix coverage.
  auto& injector = fault::FaultInjector::Global();
  for (const char* site : fault::kAllSites) {
    ArmedInjector armed(std::string(site) + ":1");
    EXPECT_TRUE(fault::InjectFault(site)) << site;
    EXPECT_EQ(injector.InjectedCount(site), 1u) << site;
  }
}

// ---------------------------------------------------------------------------
// RetryPolicy

TEST(RetryPolicy, AbsorbsTransientFailures) {
  io::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_seconds = 0;
  int calls = 0;
  Status s = policy.Run("test", [&]() -> Status {
    return ++calls < 3 ? Status::IoError("flaky") : Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicy, DoesNotRetryNonTransientErrors) {
  io::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_seconds = 0;
  int calls = 0;
  Status s = policy.Run("test", [&]() -> Status {
    ++calls;
    return Status::InvalidArgument("deterministic");
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicy, ExhaustionKeepsTheLastErrorCode) {
  io::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_seconds = 0;
  int calls = 0;
  Status s = policy.Run("doomed-op", [&]() -> Status {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.ToString().find("doomed-op"), std::string::npos);
  EXPECT_NE(s.ToString().find("4 attempts"), std::string::npos);
}

// ---------------------------------------------------------------------------
// WriteFileAtomically

Status WriteMarkerFile(const std::string& path, uint64_t value,
                       const io::RetryPolicy& retry) {
  return io::WriteFileAtomically(
      path,
      [value](io::TensorWriter* w) {
        w->PutU64(value);
        return w->EndRecord(io::kTagBlob);
      },
      retry);
}

uint64_t ReadMarkerFile(const std::string& path) {
  io::TensorReader reader(path);
  EXPECT_TRUE(reader.NextRecord(io::kTagBlob).ok()) << reader.status().ToString();
  uint64_t value = 0;
  EXPECT_TRUE(reader.GetU64(&value));
  return value;
}

TEST(AtomicWrite, SingleShotFaultAtEachIoSiteIsAbsorbed) {
  io::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_seconds = 0;
  const char* sites[] = {fault::kSiteIoOpenWrite, fault::kSiteIoWrite,
                         fault::kSiteCkptRename};
  for (const char* site : sites) {
    const std::string path = TempPath(std::string("atomic_") + site + ".ngb");
    fs::remove(path);
    ASSERT_TRUE(WriteMarkerFile(path, 1, retry).ok()) << site;
    auto& injector = fault::FaultInjector::Global();
    {
      ArmedInjector armed(std::string(site) + ":1");
      Status s = WriteMarkerFile(path, 2, retry);
      EXPECT_TRUE(s.ok()) << site << ": " << s.ToString();
      EXPECT_EQ(injector.InjectedCount(site), 1u) << site;
    }
    EXPECT_EQ(ReadMarkerFile(path), 2u) << site;
    EXPECT_FALSE(fs::exists(path + ".tmp")) << site;
    fs::remove(path);
  }
}

TEST(AtomicWrite, PersistentFaultLeavesOldBytesIntact) {
  io::RetryPolicy retry;
  retry.max_attempts = 2;
  retry.backoff_seconds = 0;
  const std::string path = TempPath("atomic_persistent.ngb");
  fs::remove(path);
  ASSERT_TRUE(WriteMarkerFile(path, 7, retry).ok());
  {
    ArmedInjector armed("ckpt.rename:1+");
    Status s = WriteMarkerFile(path, 8, retry);
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }
  // The failed write never touched the committed bytes, and cleaned up
  // its temp file.
  EXPECT_EQ(ReadMarkerFile(path), 7u);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

TEST(AtomicWrite, RawTensorIoIsUnaffectedWhileArmed) {
  // Only robustness-layer writers/readers opt into injection; a plain
  // TensorWriter/TensorReader must keep working under any armed spec, so
  // the CI chaos matrix can run whole suites without perturbing
  // unrelated file IO.
  ArmedInjector armed(
      "io.open_write:1+,io.write:1+,io.open_read:1+,io.read:1+");
  const std::string path = TempPath("raw_io_under_faults.ngb");
  io::TensorWriter writer(path);
  writer.PutU64(99);
  ASSERT_TRUE(writer.EndRecord(io::kTagBlob).ok());
  ASSERT_TRUE(writer.Finish().ok());
  io::TensorReader reader(path);
  ASSERT_TRUE(reader.NextRecord(io::kTagBlob).ok());
  uint64_t value = 0;
  ASSERT_TRUE(reader.GetU64(&value));
  EXPECT_EQ(value, 99u);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Generation helpers

TEST(Generations, NamingRoundTripsAndTmpIsNeverCommitted) {
  EXPECT_EQ(io::GenerationDirName(1), "gen-00000001");
  EXPECT_EQ(io::GenerationDirName(12345678), "gen-12345678");
  uint64_t g = 0;
  EXPECT_TRUE(io::ParseGenerationDirName("gen-00000042", &g));
  EXPECT_EQ(g, 42u);
  EXPECT_FALSE(io::ParseGenerationDirName("gen-00000042.tmp", &g));
  EXPECT_FALSE(io::ParseGenerationDirName("gen-", &g));
  EXPECT_FALSE(io::ParseGenerationDirName("generation-1", &g));

  const std::string root = TempPath("gen_scan");
  fs::remove_all(root);
  fs::create_directories(root + "/gen-00000001");
  fs::create_directories(root + "/gen-00000003");
  fs::create_directories(root + "/gen-00000005.tmp");  // crash debris
  fs::create_directories(root + "/unrelated");
  EXPECT_EQ(io::ListGenerations(root), (std::vector<uint64_t>{1, 3}));
  // An abandoned staging dir still reserves its number: the next writer
  // must not reuse gen-5 for different logical state.
  EXPECT_EQ(io::NextGeneration(root), 6u);
  fs::remove_all(root);
  EXPECT_TRUE(io::ListGenerations(root).empty());
  EXPECT_EQ(io::NextGeneration(root), 1u);
}

// ---------------------------------------------------------------------------
// Fleet-level crash safety (trained system; mirrors serve_test's fixture)

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new harness::TrainedSystem(
        harness::BuildTrainedSystem(harness::TinyTestOptions()));
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  void TearDown() override { fault::FaultInjector::Global().Disarm(); }

  static serve::SessionManagerConfig ManagerConfig(size_t num_shards,
                                                   size_t window) {
    serve::SessionManagerConfig config;
    config.num_shards = num_shards;
    config.pipeline = core::DefaultPipelineConfig(system_->bundle);
    config.pipeline.window_messages = window;
    return config;
  }

  static std::vector<std::vector<stream::Message>> Batches(
      const std::string& dataset, size_t batch_size) {
    data::StreamGenerator gen(&system_->kb_eval);
    stream::StreamSource source(
        gen.Generate(data::MakeDatasetSpec(dataset, 0.08)), batch_size);
    std::vector<std::vector<stream::Message>> out;
    std::vector<stream::Message> batch;
    while (!(batch = source.NextBatch()).empty()) out.push_back(std::move(batch));
    return out;
  }

  // Ground truth: the same batches through one single-threaded session.
  static std::vector<core::FinalizedMessage> SequentialReplay(
      const std::vector<std::vector<stream::Message>>& batches, size_t window) {
    stream::StreamingSessionConfig config;
    config.pipeline = core::DefaultPipelineConfig(system_->bundle);
    config.pipeline.window_messages = window;
    stream::StreamingSession session(&system_->bundle, config);
    for (const auto& batch : batches) session.ProcessBatch(batch);
    session.Flush();
    return session.TakeFinalized();
  }

  static void ExpectBitIdentical(
      const std::vector<core::FinalizedMessage>& got,
      const std::vector<core::FinalizedMessage>& want, const char* label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_TRUE(got[i] == want[i]) << label << " message " << i;
    }
  }

  static harness::TrainedSystem* system_;
};

harness::TrainedSystem* FaultInjectionTest::system_ = nullptr;

TEST_F(FaultInjectionTest, CheckpointAllAbsorbsAnySingleFaultBitIdentically) {
  // The acceptance criterion: with NERGLOB_FAULT firing once at any
  // registered io/ckpt site during CheckpointAll, the checkpoint still
  // commits, and a fleet restored from it finishes the stream
  // bit-identical to an uninterrupted replay.
  const auto batches = Batches("D2", 8);
  const size_t window = 16;
  const size_t half = batches.size() / 2;
  const auto want = SequentialReplay(batches, window);

  serve::SessionManager first(&system_->bundle, ManagerConfig(2, window));
  ASSERT_TRUE(first.Open("s0").ok());
  for (size_t b = 0; b < half; ++b) {
    ASSERT_TRUE(first.Submit("s0", batches[b]).ok());
  }
  first.Drain();

  const char* sites[] = {fault::kSiteIoOpenWrite, fault::kSiteIoWrite,
                         fault::kSiteCkptRename,
                         fault::kSiteCkptManifestCommit};
  auto& injector = fault::FaultInjector::Global();
  for (const char* site : sites) {
    const std::string dir = TempPath(std::string("fleet_") + site);
    fs::remove_all(dir);
    {
      ArmedInjector armed(std::string(site) + ":1");
      Status s = first.CheckpointAll(dir);
      ASSERT_TRUE(s.ok()) << site << ": " << s.ToString();
      EXPECT_GE(injector.InjectedCount(site), 1u) << site;
    }
    // No staging debris survives a successful commit.
    EXPECT_EQ(io::ListGenerations(dir), std::vector<uint64_t>{1}) << site;
    EXPECT_FALSE(fs::exists(dir + "/gen-00000001.tmp")) << site;

    serve::SessionManager second(&system_->bundle, ManagerConfig(2, window));
    uint64_t generation = 0;
    ASSERT_TRUE(second.RecoverLatest(dir, &generation).ok()) << site;
    EXPECT_EQ(generation, 1u) << site;
    for (size_t b = half; b < batches.size(); ++b) {
      ASSERT_TRUE(second.Submit("s0", batches[b]).ok()) << site;
    }
    second.FlushAll();
    auto got = second.TakeFinalized("s0");
    ASSERT_TRUE(got.ok()) << site << ": " << got.status().ToString();
    ExpectBitIdentical(*got, want, site);
    fs::remove_all(dir);
  }
}

TEST_F(FaultInjectionTest, PersistentCommitFaultFallsBackOneGeneration) {
  // Crash between temp write and rename: generation 2's commit never
  // happens, so RecoverLatest must restore generation 1 — and the fleet
  // continued from there is bit-identical to a replay from that point.
  const auto batches = Batches("D2", 8);
  const size_t window = 16;
  const size_t third = batches.size() / 3;
  const auto want = SequentialReplay(batches, window);

  const char* commit_sites[] = {fault::kSiteCkptRename,
                                fault::kSiteCkptManifestCommit};
  for (const char* site : commit_sites) {
    const std::string dir = TempPath(std::string("fallback_") + site);
    fs::remove_all(dir);

    serve::SessionManager first(&system_->bundle, ManagerConfig(2, window));
    ASSERT_TRUE(first.Open("s0").ok());
    for (size_t b = 0; b < third; ++b) {
      ASSERT_TRUE(first.Submit("s0", batches[b]).ok());
    }
    ASSERT_TRUE(first.CheckpointAll(dir).ok()) << site;  // generation 1
    for (size_t b = third; b < 2 * third; ++b) {
      ASSERT_TRUE(first.Submit("s0", batches[b]).ok());
    }
    {
      // Persistent fault: every retry fails too, so generation 2 is
      // abandoned as .tmp debris (the "crash" in slow motion).
      ArmedInjector armed(std::string(site) + ":1+");
      Status s = first.CheckpointAll(dir);
      EXPECT_EQ(s.code(), StatusCode::kIoError) << site;
    }
    EXPECT_EQ(io::ListGenerations(dir), std::vector<uint64_t>{1}) << site;

    serve::SessionManager second(&system_->bundle, ManagerConfig(2, window));
    uint64_t generation = 0;
    ASSERT_TRUE(second.RecoverLatest(dir, &generation).ok()) << site;
    EXPECT_EQ(generation, 1u) << site;
    // Replay resumes from the *first* checkpoint's position.
    for (size_t b = third; b < batches.size(); ++b) {
      ASSERT_TRUE(second.Submit("s0", batches[b]).ok()) << site;
    }
    second.FlushAll();
    auto got = second.TakeFinalized("s0");
    ASSERT_TRUE(got.ok()) << site;
    ExpectBitIdentical(*got, want, site);
    fs::remove_all(dir);
  }
}

// Flips one payload byte inside the file so the record checksum fails.
void FlipByte(const std::string& path, std::streamoff offset_from_end) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(-offset_from_end, std::ios::end);
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x40;
  f.seekp(-offset_from_end, std::ios::end);
  f.write(&byte, 1);
}

// Truncates the file to its header plus zero complete records — the torn
// state a crash between record N and N+1 leaves behind.
void TruncateAfterHeader(const std::string& path) {
  fs::resize_file(path, sizeof(io::kMagic) + 2 * sizeof(uint32_t));
}

TEST_F(FaultInjectionTest, RecoverLatestSkipsEveryKindOfTornGeneration) {
  const auto batches = Batches("D1", 8);
  const size_t window = 16;
  const size_t half = batches.size() / 2;
  const auto want = SequentialReplay(batches, window);

  enum class Corruption { kBitFlipManifest, kTruncateSession, kDeleteSession };
  for (const Corruption corruption :
       {Corruption::kBitFlipManifest, Corruption::kTruncateSession,
        Corruption::kDeleteSession}) {
    const std::string dir = TempPath(
        "torn_" + std::to_string(static_cast<int>(corruption)));
    fs::remove_all(dir);

    serve::SessionManager first(&system_->bundle, ManagerConfig(2, window));
    ASSERT_TRUE(first.Open("s0").ok());
    for (size_t b = 0; b < half; ++b) {
      ASSERT_TRUE(first.Submit("s0", batches[b]).ok());
    }
    ASSERT_TRUE(first.CheckpointAll(dir).ok());  // generation 1 (good)
    for (size_t b = half; b < half + 2 && b < batches.size(); ++b) {
      ASSERT_TRUE(first.Submit("s0", batches[b]).ok());
    }
    ASSERT_TRUE(first.CheckpointAll(dir).ok());  // generation 2 (to corrupt)

    const std::string gen2 = dir + "/" + io::GenerationDirName(2);
    switch (corruption) {
      case Corruption::kBitFlipManifest:
        FlipByte(gen2 + "/manifest.ngm", 12);
        break;
      case Corruption::kTruncateSession:
        TruncateAfterHeader(gen2 + "/session_0.ckpt");
        break;
      case Corruption::kDeleteSession:
        fs::remove(gen2 + "/session_0.ckpt");
        break;
    }

    // Strict restore refuses the corrupt newest generation outright...
    serve::SessionManager strict(&system_->bundle, ManagerConfig(2, window));
    EXPECT_FALSE(strict.RestoreAll(dir).ok());
    EXPECT_TRUE(strict.SessionIds().empty());

    // ...while RecoverLatest falls back to generation 1, bit-identically.
    serve::SessionManager second(&system_->bundle, ManagerConfig(2, window));
    uint64_t generation = 0;
    ASSERT_TRUE(second.RecoverLatest(dir, &generation).ok());
    EXPECT_EQ(generation, 1u);
    for (size_t b = half; b < batches.size(); ++b) {
      ASSERT_TRUE(second.Submit("s0", batches[b]).ok());
    }
    second.FlushAll();
    auto got = second.TakeFinalized("s0");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitIdentical(*got, want, "fallback");
    fs::remove_all(dir);
  }
}

TEST_F(FaultInjectionTest, RecoverLatestTypedFailures) {
  const std::string dir = TempPath("recover_edge_cases");
  fs::remove_all(dir);
  serve::SessionManager manager(&system_->bundle, ManagerConfig(2, 16));

  // Empty / missing root: nothing to recover.
  EXPECT_EQ(manager.RecoverLatest(dir).code(), StatusCode::kNotFound);

  // Generations exist but every one is corrupt: DataLoss, no sessions.
  ASSERT_TRUE(manager.Open("s0").ok());
  ASSERT_TRUE(manager.CheckpointAll(dir).ok());
  ASSERT_TRUE(manager.Close("s0").ok());
  FlipByte(dir + "/" + io::GenerationDirName(1) + "/manifest.ngm", 12);
  serve::SessionManager fresh(&system_->bundle, ManagerConfig(2, 16));
  EXPECT_EQ(fresh.RecoverLatest(dir).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(fresh.SessionIds().empty());
  fs::remove_all(dir);

  // Id collision aborts immediately (no silent fallback past user error).
  serve::SessionManager donor(&system_->bundle, ManagerConfig(2, 16));
  ASSERT_TRUE(donor.Open("s0").ok());
  ASSERT_TRUE(donor.CheckpointAll(dir).ok());
  serve::SessionManager clasher(&system_->bundle, ManagerConfig(2, 16));
  ASSERT_TRUE(clasher.Open("s0").ok());
  EXPECT_EQ(clasher.RecoverLatest(dir).code(), StatusCode::kAlreadyExists);
  fs::remove_all(dir);
}

TEST_F(FaultInjectionTest, CheckpointRetainPrunesOldGenerations) {
  const std::string dir = TempPath("retain_prune");
  fs::remove_all(dir);
  auto config = ManagerConfig(2, 16);
  config.checkpoint_retain = 2;
  serve::SessionManager manager(&system_->bundle, config);
  ASSERT_TRUE(manager.Open("s0").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(manager.CheckpointAll(dir).ok());
  }
  EXPECT_EQ(io::ListGenerations(dir), (std::vector<uint64_t>{4, 5}));
  fs::remove_all(dir);
}

TEST_F(FaultInjectionTest, QuarantineIsolatesThePoisonedSessionOnly) {
  // serve.process poisons exactly one session; its co-tenant on the same
  // manager keeps streaming bit-identically, and the poisoned one fails
  // fast with DataLoss instead of taking down the fleet.
  const auto batches = Batches("D1", 8);
  const size_t window = 16;
  const auto want = SequentialReplay(batches, window);

  serve::SessionManager manager(&system_->bundle, ManagerConfig(2, window));
  ASSERT_TRUE(manager.Open("poisoned").ok());
  ASSERT_TRUE(manager.Open("healthy").ok());
  {
    ArmedInjector armed("serve.process:1");
    ASSERT_TRUE(manager.Submit("poisoned", batches[0]).ok());
    manager.Drain();
  }
  EXPECT_EQ(manager.stats().quarantined_sessions, 1u);

  // Every data-plane call on the poisoned session is a typed DataLoss.
  EXPECT_EQ(manager.Submit("poisoned", batches[1]).code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(manager.Flush("poisoned").code(), StatusCode::kDataLoss);
  EXPECT_EQ(manager.TakeFinalized("poisoned").status().code(),
            StatusCode::kDataLoss);

  // The healthy co-tenant is untouched by its neighbor's failure.
  for (const auto& batch : batches) {
    ASSERT_TRUE(manager.Submit("healthy", batch).ok());
  }
  ASSERT_TRUE(manager.Flush("healthy").ok());
  auto got = manager.TakeFinalized("healthy");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectBitIdentical(*got, want, "healthy co-tenant");

  // CheckpointAll skips the quarantined session instead of persisting
  // untrusted state.
  const std::string dir = TempPath("quarantine_ckpt");
  fs::remove_all(dir);
  ASSERT_TRUE(manager.CheckpointAll(dir).ok());
  serve::SessionManager restored(&system_->bundle, ManagerConfig(2, window));
  ASSERT_TRUE(restored.RestoreAll(dir).ok());
  EXPECT_EQ(restored.SessionIds(), std::vector<std::string>{"healthy"});
  fs::remove_all(dir);

  // Close releases the quarantined session and clears the stat.
  ASSERT_TRUE(manager.Close("poisoned").ok());
  EXPECT_EQ(manager.stats().quarantined_sessions, 0u);
  EXPECT_EQ(manager.stats().open_sessions, 1u);
}

TEST_F(FaultInjectionTest, EnqueueFaultIsTransientUnavailable) {
  const auto batches = Batches("D1", 8);
  serve::SessionManager manager(&system_->bundle, ManagerConfig(2, 16));
  ASSERT_TRUE(manager.Open("s0").ok());
  const uint64_t rejected_before = manager.stats().rejected_batches;
  {
    ArmedInjector armed("serve.enqueue:1");
    EXPECT_EQ(manager.Submit("s0", batches[0]).code(),
              StatusCode::kUnavailable);
  }
  EXPECT_EQ(manager.stats().rejected_batches, rejected_before + 1);
  // The documented client response to Unavailable — retry — succeeds.
  EXPECT_TRUE(manager.Submit("s0", batches[0]).ok());
  manager.Drain();
  EXPECT_EQ(manager.stats().processed_batches, 1u);
}

}  // namespace
}  // namespace nerglob
