#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "core/entity_classifier.h"
#include "io/tensor_io.h"
#include "lm/micro_bert.h"
#include "nn/layers.h"
#include "text/tokenizer.h"

namespace nerglob {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializationTest, LinearRoundTrip) {
  Rng rng(1);
  nn::Linear a(4, 3, &rng);
  const std::string path = TempPath("linear.bin");
  ASSERT_TRUE(nn::SaveModuleParameters(a, path).ok());

  Rng rng2(99);  // different init
  nn::Linear b(4, 3, &rng2);
  ASSERT_FALSE(b.weight().value() == a.weight().value());
  ASSERT_TRUE(nn::LoadModuleParameters(path, &b).ok());
  EXPECT_EQ(b.weight().value(), a.weight().value());
  EXPECT_EQ(b.bias().value(), a.bias().value());
  std::remove(path.c_str());
}

TEST(SerializationTest, MicroBertRoundTripPreservesPredictions) {
  lm::MicroBertConfig cfg;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.subword_buckets = 256;
  cfg.dropout = 0.0f;
  lm::MicroBert a(cfg, 5);
  const std::string path = TempPath("microbert.bin");
  ASSERT_TRUE(nn::SaveModuleParameters(a, path).ok());

  lm::MicroBert b(cfg, 77);
  ASSERT_TRUE(nn::LoadModuleParameters(path, &b).ok());
  auto tokens = text::Tokenizer().Tokenize("italy reports new cases");
  EXPECT_EQ(a.Encode(tokens).embeddings, b.Encode(tokens).embeddings);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIoError) {
  Rng rng(2);
  nn::Linear m(2, 2, &rng);
  Status s = nn::LoadModuleParameters("/nonexistent/dir/file.bin", &m);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(SerializationTest, WrongMagicRejected) {
  const std::string path = TempPath("bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const char garbage[32] = "not a model file at all!";
    out.write(garbage, sizeof(garbage));
  }
  Rng rng(3);
  nn::Linear m(2, 2, &rng);
  Status s = nn::LoadModuleParameters(path, &m);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, ArchitectureMismatchRejectedAndTargetUntouched) {
  Rng rng(4);
  nn::Linear small(2, 2, &rng);
  const std::string path = TempPath("small.bin");
  ASSERT_TRUE(nn::SaveModuleParameters(small, path).ok());

  nn::Linear big(5, 7, &rng);
  const Matrix before = big.weight().value();
  Status s = nn::LoadModuleParameters(path, &big);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(big.weight().value(), before);  // failed load must not clobber
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileRejectedAndTargetUntouched) {
  Rng rng(5);
  core::EntityClassifier clf(8, 8, &rng);
  const std::string path = TempPath("clf.bin");
  ASSERT_TRUE(nn::SaveModuleParameters(clf, path).ok());
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::string content(static_cast<size_t>(size) / 2, '\0');
  in.read(content.data(), static_cast<std::streamsize>(content.size()));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }
  core::EntityClassifier other(8, 8, &rng);
  const Matrix before = other.Parameters()[0].value();
  Status s = nn::LoadModuleParameters(path, &other);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(other.Parameters()[0].value(), before);
  std::remove(path.c_str());
}

TEST(SerializationTest, UnwritablePathIsIoError) {
  Rng rng(6);
  nn::Linear m(2, 2, &rng);
  Status s = nn::SaveModuleParameters(m, "/nonexistent/dir/file.bin");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// --- TensorWriter / TensorReader framing layer -------------------------

Matrix SmallMatrix() {
  Matrix m(2, 3);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = 0.25f * static_cast<float>(i) - 1.0f;
  }
  return m;
}

/// Writes one two-record file used by the framing tests below.
std::string WriteSampleFile(const char* name,
                            uint32_t version = io::kFormatVersion) {
  const std::string path = TempPath(name);
  io::TensorWriter writer(path, version);
  writer.PutU32(7);
  writer.PutU64(1ull << 40);
  writer.PutI64(-12345);
  writer.PutF32(1.5f);
  writer.PutF64(-2.25);
  writer.PutString("surface form");
  writer.PutMatrix(SmallMatrix());
  EXPECT_TRUE(writer.EndRecord(io::kTagBlob).ok());
  writer.PutU32(99);
  EXPECT_TRUE(writer.EndRecord(io::kTagTrainingStats).ok());
  EXPECT_TRUE(writer.Finish().ok());
  return path;
}

TEST(TensorIoTest, PrimitiveRoundTrip) {
  const std::string path = WriteSampleFile("frames.bin");
  io::TensorReader reader(path);
  ASSERT_TRUE(reader.NextRecord(io::kTagBlob).ok()) << reader.status().ToString();
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string s;
  Matrix m;
  EXPECT_TRUE(reader.GetU32(&u32));
  EXPECT_TRUE(reader.GetU64(&u64));
  EXPECT_TRUE(reader.GetI64(&i64));
  EXPECT_TRUE(reader.GetF32(&f32));
  EXPECT_TRUE(reader.GetF64(&f64));
  EXPECT_TRUE(reader.GetString(&s));
  EXPECT_TRUE(reader.GetMatrix(&m));
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i64, -12345);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(s, "surface form");
  EXPECT_EQ(m, SmallMatrix());
  EXPECT_TRUE(reader.ExpectRecordEnd().ok());
  ASSERT_TRUE(reader.NextRecord(io::kTagTrainingStats).ok());
  EXPECT_TRUE(reader.GetU32(&u32));
  EXPECT_EQ(u32, 99u);
  EXPECT_TRUE(reader.AtRecordEnd());
  std::remove(path.c_str());
}

TEST(TensorIoTest, WrongRecordTagRejected) {
  const std::string path = WriteSampleFile("wrong_tag.bin");
  io::TensorReader reader(path);
  Status s = reader.NextRecord(io::kTagModule);  // file starts with kTagBlob
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST(TensorIoTest, WrongFormatVersionRejected) {
  const std::string path = WriteSampleFile("wrong_version.bin", /*version=*/99);
  io::TensorReader reader(path);
  Status s = reader.NextRecord(io::kTagBlob);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TensorIoTest, UnconsumedPayloadIsFailedPrecondition) {
  const std::string path = WriteSampleFile("leftover.bin");
  io::TensorReader reader(path);
  ASSERT_TRUE(reader.NextRecord(io::kTagBlob).ok());
  uint32_t u32 = 0;
  EXPECT_TRUE(reader.GetU32(&u32));
  Status s = reader.ExpectRecordEnd();  // six values still unread
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Reads the sample file to completion, returning the first failure; used
/// by the corruption fuzz tests, which only require a clean non-OK Status.
Status DrainSampleFile(const std::string& path) {
  io::TensorReader reader(path);
  for (uint32_t tag : {io::kTagBlob, io::kTagTrainingStats}) {
    Status s = reader.NextRecord(tag);
    if (!s.ok()) return s;
    uint32_t u32;
    uint64_t u64;
    int64_t i64;
    float f32;
    double f64;
    std::string str;
    Matrix m;
    if (tag == io::kTagBlob) {
      reader.GetU32(&u32);
      reader.GetU64(&u64);
      reader.GetI64(&i64);
      reader.GetF32(&f32);
      reader.GetF64(&f64);
      reader.GetString(&str);
      reader.GetMatrix(&m);
    } else {
      reader.GetU32(&u32);
    }
    s = reader.ExpectRecordEnd();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

TEST(TensorIoTest, EveryTruncationFailsCleanly) {
  const std::string path = WriteSampleFile("truncate_fuzz.bin");
  const std::string full = ReadAll(path);
  ASSERT_GT(full.size(), 24u);
  ASSERT_TRUE(DrainSampleFile(path).ok());
  // Cut the file at every length shorter than the original: whatever byte
  // the cut lands on — header, length prefix, payload, checksum — the read
  // must fail with a Status, never crash or hand back partial data.
  for (size_t len = 0; len < full.size(); ++len) {
    WriteAll(path, full.substr(0, len));
    Status s = DrainSampleFile(path);
    EXPECT_FALSE(s.ok()) << "truncation to " << len << " bytes was not caught";
  }
  std::remove(path.c_str());
}

TEST(TensorIoTest, EveryFlippedPayloadByteFailsChecksum) {
  const std::string path = WriteSampleFile("bitflip_fuzz.bin");
  const std::string full = ReadAll(path);
  // Flip each byte of the first record's payload (skip the 16-byte header
  // and the 12-byte record frame); the checksum must catch every one.
  const size_t payload_begin = 16 + 12;
  const size_t payload_end = payload_begin + 4 + 8 + 8 + 4 + 8 + (8 + 12);
  ASSERT_LT(payload_end, full.size());
  for (size_t i = payload_begin; i < payload_end; ++i) {
    std::string corrupted = full;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x5a);
    WriteAll(path, corrupted);
    Status s = DrainSampleFile(path);
    EXPECT_FALSE(s.ok()) << "flipped byte " << i << " was not caught";
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nerglob
