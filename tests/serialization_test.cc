#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/entity_classifier.h"
#include "lm/micro_bert.h"
#include "nn/layers.h"
#include "text/tokenizer.h"

namespace nerglob {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializationTest, LinearRoundTrip) {
  Rng rng(1);
  nn::Linear a(4, 3, &rng);
  const std::string path = TempPath("linear.bin");
  ASSERT_TRUE(nn::SaveModuleParameters(a, path).ok());

  Rng rng2(99);  // different init
  nn::Linear b(4, 3, &rng2);
  ASSERT_FALSE(b.weight().value() == a.weight().value());
  ASSERT_TRUE(nn::LoadModuleParameters(path, &b).ok());
  EXPECT_EQ(b.weight().value(), a.weight().value());
  EXPECT_EQ(b.bias().value(), a.bias().value());
  std::remove(path.c_str());
}

TEST(SerializationTest, MicroBertRoundTripPreservesPredictions) {
  lm::MicroBertConfig cfg;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.subword_buckets = 256;
  cfg.dropout = 0.0f;
  lm::MicroBert a(cfg, 5);
  const std::string path = TempPath("microbert.bin");
  ASSERT_TRUE(nn::SaveModuleParameters(a, path).ok());

  lm::MicroBert b(cfg, 77);
  ASSERT_TRUE(nn::LoadModuleParameters(path, &b).ok());
  auto tokens = text::Tokenizer().Tokenize("italy reports new cases");
  EXPECT_EQ(a.Encode(tokens).embeddings, b.Encode(tokens).embeddings);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIoError) {
  Rng rng(2);
  nn::Linear m(2, 2, &rng);
  Status s = nn::LoadModuleParameters("/nonexistent/dir/file.bin", &m);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(SerializationTest, WrongMagicRejected) {
  const std::string path = TempPath("bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const char garbage[32] = "not a model file at all!";
    out.write(garbage, sizeof(garbage));
  }
  Rng rng(3);
  nn::Linear m(2, 2, &rng);
  Status s = nn::LoadModuleParameters(path, &m);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, ArchitectureMismatchRejectedAndTargetUntouched) {
  Rng rng(4);
  nn::Linear small(2, 2, &rng);
  const std::string path = TempPath("small.bin");
  ASSERT_TRUE(nn::SaveModuleParameters(small, path).ok());

  nn::Linear big(5, 7, &rng);
  const Matrix before = big.weight().value();
  Status s = nn::LoadModuleParameters(path, &big);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(big.weight().value(), before);  // failed load must not clobber
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileRejectedAndTargetUntouched) {
  Rng rng(5);
  core::EntityClassifier clf(8, 8, &rng);
  const std::string path = TempPath("clf.bin");
  ASSERT_TRUE(nn::SaveModuleParameters(clf, path).ok());
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::string content(static_cast<size_t>(size) / 2, '\0');
  in.read(content.data(), static_cast<std::streamsize>(content.size()));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }
  core::EntityClassifier other(8, 8, &rng);
  const Matrix before = other.Parameters()[0].value();
  Status s = nn::LoadModuleParameters(path, &other);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(other.Parameters()[0].value(), before);
  std::remove(path.c_str());
}

TEST(SerializationTest, UnwritablePathIsIoError) {
  Rng rng(6);
  nn::Linear m(2, 2, &rng);
  Status s = nn::SaveModuleParameters(m, "/nonexistent/dir/file.bin");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace nerglob
