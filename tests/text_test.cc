#include <gtest/gtest.h>

#include "text/bio.h"
#include "text/subword.h"
#include "text/tokenizer.h"

namespace nerglob::text {
namespace {

std::vector<std::string> Texts(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  for (const auto& t : toks) out.push_back(t.text);
  return out;
}

TEST(TokenizerTest, BasicWords) {
  Tokenizer tok;
  auto toks = tok.Tokenize("beshear shuts down schools");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "beshear");
  EXPECT_EQ(toks[0].kind, TokenKind::kWord);
  EXPECT_EQ(toks[3].text, "schools");
}

TEST(TokenizerTest, OffsetsRoundTrip) {
  Tokenizer tok;
  std::string msg = "Italy reports 100 cases";
  auto toks = tok.Tokenize(msg);
  for (const auto& t : toks) {
    EXPECT_EQ(msg.substr(t.begin, t.end - t.begin), t.text);
  }
}

TEST(TokenizerTest, HashtagsKeepSigilButMatchWithout) {
  Tokenizer tok;
  auto toks = tok.Tokenize("spread of #Coronavirus in #Italy");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[2].kind, TokenKind::kHashtag);
  EXPECT_EQ(toks[2].text, "#Coronavirus");
  EXPECT_EQ(toks[2].lower, "#coronavirus");
  EXPECT_EQ(toks[2].match, "coronavirus");
  EXPECT_EQ(toks[4].match, "italy");
}

TEST(TokenizerTest, MentionsAndUrls) {
  Tokenizer tok;
  auto toks = tok.Tokenize("RT @GovAndyBeshear see https://t.co/abc123 now");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[1].kind, TokenKind::kMention);
  EXPECT_EQ(toks[1].text, "@GovAndyBeshear");
  EXPECT_EQ(toks[3].kind, TokenKind::kUrl);
  EXPECT_EQ(toks[3].text, "https://t.co/abc123");
}

TEST(TokenizerTest, WwwUrl) {
  Tokenizer tok;
  auto toks = tok.Tokenize("go to www.nhs.uk please");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokenKind::kUrl);
}

TEST(TokenizerTest, NumbersWithSeparators) {
  Tokenizer tok;
  auto toks = tok.Tokenize("cases hit 1,234.5 at 10:30");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[2].text, "1,234.5");
  EXPECT_EQ(toks[2].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[4].text, "10:30");
}

TEST(TokenizerTest, Emoticons) {
  Tokenizer tok;
  auto toks = tok.Tokenize("stay safe :) <3");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokenKind::kEmoticon);
  EXPECT_EQ(toks[3].kind, TokenKind::kEmoticon);
}

TEST(TokenizerTest, ContractionsStayTogether) {
  Tokenizer tok;
  auto toks = tok.Tokenize("don't panic y'all");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "don't");
  EXPECT_EQ(toks[2].text, "y'all");
}

TEST(TokenizerTest, PunctuationSplitsOff) {
  Tokenizer tok;
  auto toks = tok.Tokenize("lockdown, now!");
  auto texts = Texts(toks);
  ASSERT_EQ(texts.size(), 4u);
  EXPECT_EQ(texts[1], ",");
  EXPECT_EQ(texts[3], "!");
}

TEST(TokenizerTest, TrailingApostropheNotPartOfWord) {
  Tokenizer tok;
  auto toks = tok.Tokenize("the virus' spread");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[1].text, "virus");
  EXPECT_EQ(toks[2].text, "'");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("   \t\n ").empty());
}

TEST(TokenizerTest, AlphanumericWordsKeepDigits) {
  Tokenizer tok;
  auto toks = tok.Tokenize("covid19 wave");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "covid19");
  EXPECT_EQ(toks[0].kind, TokenKind::kWord);
}

TEST(SqueezeElongationTest, SqueezesRuns) {
  EXPECT_EQ(SqueezeElongation("sooooo"), "soo");
  EXPECT_EQ(SqueezeElongation("cool"), "cool");
  EXPECT_EQ(SqueezeElongation(""), "");
  EXPECT_EQ(SqueezeElongation("aaabbbccc"), "aabbcc");
}

TEST(BioTest, LabelIdsRoundTrip) {
  for (int t = 0; t < kNumEntityTypes; ++t) {
    EntityType type = static_cast<EntityType>(t);
    int b = BioBeginLabel(type);
    int i = BioInsideLabel(type);
    EXPECT_TRUE(IsBioBegin(b));
    EXPECT_TRUE(IsBioInside(i));
    EXPECT_EQ(BioLabelType(b), type);
    EXPECT_EQ(BioLabelType(i), type);
  }
  EXPECT_EQ(kNumBioLabels, 9);
}

TEST(BioTest, LabelNames) {
  EXPECT_EQ(BioLabelName(kBioOutside), "O");
  EXPECT_EQ(BioLabelName(BioBeginLabel(EntityType::kPerson)), "B-PER");
  EXPECT_EQ(BioLabelName(BioInsideLabel(EntityType::kMisc)), "I-MISC");
}

TEST(BioTest, EntityTypeNamesParse) {
  for (int t = 0; t < kNumEntityTypes; ++t) {
    EntityType type = static_cast<EntityType>(t);
    EntityType parsed;
    ASSERT_TRUE(ParseEntityType(EntityTypeName(type), &parsed));
    EXPECT_EQ(parsed, type);
  }
  EntityType dummy;
  EXPECT_FALSE(ParseEntityType("XYZ", &dummy));
}

TEST(BioTest, EncodeDecodeRoundTrip) {
  std::vector<EntitySpan> spans = {
      {1, 3, EntityType::kPerson},
      {4, 5, EntityType::kLocation},
  };
  auto labels = EncodeBio(6, spans);
  EXPECT_EQ(labels[0], kBioOutside);
  EXPECT_EQ(labels[1], BioBeginLabel(EntityType::kPerson));
  EXPECT_EQ(labels[2], BioInsideLabel(EntityType::kPerson));
  EXPECT_EQ(labels[4], BioBeginLabel(EntityType::kLocation));
  auto decoded = DecodeBio(labels);
  EXPECT_EQ(decoded, spans);
}

TEST(BioTest, DecodeAdjacentEntities) {
  // B-PER B-PER: two adjacent single-token entities.
  std::vector<int> labels = {BioBeginLabel(EntityType::kPerson),
                             BioBeginLabel(EntityType::kPerson)};
  auto spans = DecodeBio(labels);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].end_token, 1u);
  EXPECT_EQ(spans[1].begin_token, 1u);
}

TEST(BioTest, DecodeRepairsDanglingInside) {
  // O I-LOC I-LOC -> treated as one LOC span (conlleval repair).
  std::vector<int> labels = {kBioOutside, BioInsideLabel(EntityType::kLocation),
                             BioInsideLabel(EntityType::kLocation)};
  auto spans = DecodeBio(labels);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin_token, 1u);
  EXPECT_EQ(spans[0].end_token, 3u);
  EXPECT_EQ(spans[0].type, EntityType::kLocation);
}

TEST(BioTest, DecodeTypeChangeSplitsSpan) {
  // B-PER I-LOC: type change inside -> two spans.
  std::vector<int> labels = {BioBeginLabel(EntityType::kPerson),
                             BioInsideLabel(EntityType::kLocation)};
  auto spans = DecodeBio(labels);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].type, EntityType::kPerson);
  EXPECT_EQ(spans[1].type, EntityType::kLocation);
}

TEST(BioTest, SpanAtSentenceEndCloses) {
  std::vector<int> labels = {kBioOutside, BioBeginLabel(EntityType::kOrganization),
                             BioInsideLabel(EntityType::kOrganization)};
  auto spans = DecodeBio(labels);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end_token, 3u);
}

TEST(SubwordTest, DeterministicAndBounded) {
  HashedSubwordVocab vocab(1000);
  auto a = vocab.SubwordIds("coronavirus");
  auto b = vocab.SubwordIds("coronavirus");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  for (int id : a) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 1000);
  }
}

TEST(SubwordTest, SharedNgramsForRelatedWords) {
  HashedSubwordVocab vocab(100000);
  auto a = vocab.SubwordIds("coronavirus");
  auto b = vocab.SubwordIds("virus");
  int shared = 0;
  for (int x : a) {
    for (int y : b) {
      if (x == y) ++shared;
    }
  }
  EXPECT_GT(shared, 0);  // "vir","iru","rus","us>"...
}

TEST(SubwordTest, ShortWordsStillGetIds) {
  HashedSubwordVocab vocab(1000);
  auto ids = vocab.SubwordIds("a");
  EXPECT_FALSE(ids.empty());  // at least whole-word + "<a>"
  EXPECT_GE(ids.size(), 2u);
}

TEST(SubwordTest, DifferentWordsDiffer) {
  HashedSubwordVocab vocab(1u << 20);
  EXPECT_NE(vocab.SubwordIds("trump")[0], vocab.SubwordIds("italy")[0]);
}

}  // namespace
}  // namespace nerglob::text
