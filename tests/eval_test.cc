#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "text/tokenizer.h"

namespace nerglob::eval {
namespace {

using text::EntitySpan;
using text::EntityType;

EntitySpan Span(size_t b, size_t e, EntityType t) { return {b, e, t}; }

TEST(FinalizePrfTest, ComputesScores) {
  PrfScores s = FinalizePrf(8, 2, 4);
  EXPECT_DOUBLE_EQ(s.precision, 0.8);
  EXPECT_NEAR(s.recall, 8.0 / 12.0, 1e-9);
  EXPECT_NEAR(s.f1, 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-9);
}

TEST(FinalizePrfTest, ZeroDenominatorsAreZero) {
  PrfScores s = FinalizePrf(0, 0, 0);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(EvaluateNerTest, PerfectPrediction) {
  std::vector<std::vector<EntitySpan>> gold = {
      {Span(0, 1, EntityType::kPerson), Span(3, 5, EntityType::kLocation)}};
  auto scores = EvaluateNer(gold, gold);
  EXPECT_DOUBLE_EQ(scores.micro.f1, 1.0);
  EXPECT_DOUBLE_EQ(scores.per_type[0].f1, 1.0);
  EXPECT_DOUBLE_EQ(scores.emd.f1, 1.0);
  // Types LOC/PER perfect (1.0), ORG/MISC have no instances (0.0) -> macro 0.5.
  EXPECT_DOUBLE_EQ(scores.macro_f1, 0.5);
}

TEST(EvaluateNerTest, WrongTypeCountsAgainstNerButNotEmd) {
  std::vector<std::vector<EntitySpan>> gold = {{Span(0, 1, EntityType::kMisc)}};
  std::vector<std::vector<EntitySpan>> pred = {{Span(0, 1, EntityType::kPerson)}};
  auto scores = EvaluateNer(gold, pred);
  EXPECT_DOUBLE_EQ(scores.micro.f1, 0.0);
  EXPECT_EQ(scores.per_type[static_cast<size_t>(EntityType::kPerson)].fp, 1u);
  EXPECT_EQ(scores.per_type[static_cast<size_t>(EntityType::kMisc)].fn, 1u);
  EXPECT_DOUBLE_EQ(scores.emd.f1, 1.0);  // span itself is right
}

TEST(EvaluateNerTest, PartialSpanIsWrong) {
  std::vector<std::vector<EntitySpan>> gold = {{Span(0, 2, EntityType::kPerson)}};
  std::vector<std::vector<EntitySpan>> pred = {{Span(0, 1, EntityType::kPerson)}};
  auto scores = EvaluateNer(gold, pred);
  EXPECT_EQ(scores.micro.tp, 0u);
  EXPECT_EQ(scores.micro.fp, 1u);
  EXPECT_EQ(scores.micro.fn, 1u);
}

TEST(EvaluateNerTest, DuplicatePredictionsDeduplicated) {
  std::vector<std::vector<EntitySpan>> gold = {{Span(0, 1, EntityType::kPerson)}};
  std::vector<std::vector<EntitySpan>> pred = {
      {Span(0, 1, EntityType::kPerson), Span(0, 1, EntityType::kPerson)}};
  auto scores = EvaluateNer(gold, pred);
  EXPECT_EQ(scores.micro.tp, 1u);
  EXPECT_EQ(scores.micro.fp, 0u);
}

TEST(EvaluateNerTest, MacroAveragesAcrossTypes) {
  // PER perfect, LOC completely wrong, ORG/MISC absent.
  std::vector<std::vector<EntitySpan>> gold = {
      {Span(0, 1, EntityType::kPerson), Span(2, 3, EntityType::kLocation)}};
  std::vector<std::vector<EntitySpan>> pred = {{Span(0, 1, EntityType::kPerson)}};
  auto scores = EvaluateNer(gold, pred);
  EXPECT_DOUBLE_EQ(scores.macro_f1, 0.25);
}

stream::Message MsgWithGold(int64_t id, const std::string& txt,
                            std::vector<EntitySpan> gold) {
  stream::Message m;
  m.id = id;
  m.text = txt;
  m.tokens = text::Tokenizer().Tokenize(txt);
  m.gold_spans = std::move(gold);
  return m;
}

TEST(SpanSurfaceTest, JoinsMatchForms) {
  auto m = MsgWithGold(1, "Gov Andy Beshear speaks", {});
  EXPECT_EQ(SpanSurface(m, {1, 3, EntityType::kPerson}), "andy beshear");
}

TEST(FrequencyBinnedRecallTest, BinsByEntityFrequency) {
  // Entity "a" appears 7 times (bin 6-10), entity "b" once (bin 1-5).
  std::vector<stream::Message> msgs;
  std::vector<std::vector<EntitySpan>> preds;
  for (int i = 0; i < 7; ++i) {
    msgs.push_back(MsgWithGold(i, "a here", {Span(0, 1, EntityType::kPerson)}));
    // Recover 4 of 7 mentions of "a".
    preds.push_back(i < 4 ? std::vector<EntitySpan>{Span(0, 1, EntityType::kPerson)}
                          : std::vector<EntitySpan>{});
  }
  msgs.push_back(MsgWithGold(7, "b here", {Span(0, 1, EntityType::kLocation)}));
  preds.push_back({Span(0, 1, EntityType::kLocation)});

  auto bins = FrequencyBinnedRecall(msgs, preds, 5);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].lo, 1);
  EXPECT_EQ(bins[0].hi, 5);
  EXPECT_EQ(bins[0].gold_mentions, 1u);
  EXPECT_DOUBLE_EQ(bins[0].recall, 1.0);
  EXPECT_EQ(bins[1].gold_mentions, 7u);
  EXPECT_NEAR(bins[1].recall, 4.0 / 7.0, 1e-9);
}

TEST(FrequencyBinnedRecallTest, EmptyInput) {
  EXPECT_TRUE(FrequencyBinnedRecall({}, {}, 5).empty());
}

TEST(AnalyzeErrorsTest, CountsEntirelyMissedEntities) {
  std::vector<stream::Message> msgs;
  std::vector<std::vector<EntitySpan>> preds;
  // "ghost" entity: 3 mentions, none recovered.
  for (int i = 0; i < 3; ++i) {
    msgs.push_back(MsgWithGold(i, "ghost walks", {Span(0, 1, EntityType::kPerson)}));
    preds.push_back({});
  }
  // "seen" entity: 2 mentions, 1 recovered.
  for (int i = 3; i < 5; ++i) {
    msgs.push_back(MsgWithGold(i, "seen here", {Span(0, 1, EntityType::kLocation)}));
    preds.push_back(i == 3 ? std::vector<EntitySpan>{Span(0, 1, EntityType::kLocation)}
                           : std::vector<EntitySpan>{});
  }
  auto analysis = AnalyzeErrors(msgs, preds);
  EXPECT_EQ(analysis.total_gold_mentions, 5u);
  EXPECT_EQ(analysis.total_gold_entities, 2u);
  EXPECT_EQ(analysis.entirely_missed_entities, 1u);
  EXPECT_EQ(analysis.mentions_of_entirely_missed_entities, 3u);
}

TEST(AnalyzeErrorsTest, CountsMistypedMentions) {
  std::vector<stream::Message> msgs = {
      MsgWithGold(0, "nhs acts", {Span(0, 1, EntityType::kOrganization)})};
  std::vector<std::vector<EntitySpan>> preds = {{Span(0, 1, EntityType::kPerson)}};
  auto analysis = AnalyzeErrors(msgs, preds);
  EXPECT_EQ(analysis.mistyped_mentions, 1u);
}

TEST(TypeConfusionTest, CountsMatchesMistypesAndMisses) {
  std::vector<std::vector<EntitySpan>> gold = {
      {Span(0, 1, EntityType::kOrganization),   // mistyped as PER
       Span(2, 3, EntityType::kLocation),       // correct
       Span(4, 5, EntityType::kMisc)}};         // missed
  std::vector<std::vector<EntitySpan>> pred = {
      {Span(0, 1, EntityType::kPerson), Span(2, 3, EntityType::kLocation)}};
  auto confusion = ComputeTypeConfusion(gold, pred);
  const size_t org = static_cast<size_t>(EntityType::kOrganization);
  const size_t per = static_cast<size_t>(EntityType::kPerson);
  const size_t loc = static_cast<size_t>(EntityType::kLocation);
  const size_t misc = static_cast<size_t>(EntityType::kMisc);
  EXPECT_EQ(confusion[org][per], 1u);
  EXPECT_EQ(confusion[loc][loc], 1u);
  EXPECT_EQ(confusion[misc][text::kNumEntityTypes], 1u);  // missed column
  // Row sums == gold counts.
  size_t org_row = 0;
  for (size_t c = 0; c <= text::kNumEntityTypes; ++c) org_row += confusion[org][c];
  EXPECT_EQ(org_row, 1u);
}

TEST(TypeConfusionTest, EmptyInputsAllZero) {
  auto confusion = ComputeTypeConfusion({}, {});
  for (const auto& row : confusion) {
    for (size_t v : row) EXPECT_EQ(v, 0u);
  }
}

}  // namespace
}  // namespace nerglob::eval
