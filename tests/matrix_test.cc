#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace nerglob {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.At(1, 2), 0.0f);
  m.At(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 5.0f);
}

TEST(MatrixTest, FromRowsAndRowVector) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_FLOAT_EQ(m.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 3.0f);
  Matrix v = Matrix::RowVector({7, 8, 9});
  EXPECT_EQ(v.rows(), 1u);
  EXPECT_FLOAT_EQ(v.At(0, 2), 9.0f);
}

TEST(MatrixTest, FillZeroScaleApply) {
  Matrix m(2, 2, 3.0f);
  m.Scale(2.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 6.0f);
  m.Apply([](float x) { return x - 1.0f; });
  EXPECT_FLOAT_EQ(m.At(1, 1), 5.0f);
  m.Zero();
  EXPECT_FLOAT_EQ(m.Sum(), 0.0f);
}

TEST(MatrixTest, AddAxpy) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{10, 20}});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.At(0, 1), 22.0f);
  a.Axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a.At(0, 0), 16.0f);
}

TEST(MatrixTest, MatMulCorrectness) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix b = Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatrixTest, MatMulTransVariantsAgreeWithExplicitTranspose) {
  Rng rng(1);
  Matrix a = Matrix::Randn(4, 3, 1.0f, &rng);
  Matrix b = Matrix::Randn(4, 5, 1.0f, &rng);
  Matrix viaT = MatMul(a.Transposed(), b);
  Matrix direct = MatMulTransA(a, b);
  for (size_t i = 0; i < viaT.size(); ++i) {
    EXPECT_NEAR(viaT.data()[i], direct.data()[i], 1e-4f);
  }
  Matrix c = Matrix::Randn(6, 3, 1.0f, &rng);
  Matrix d = Matrix::Randn(5, 3, 1.0f, &rng);
  Matrix viaT2 = MatMul(c, d.Transposed());
  Matrix direct2 = MatMulTransB(c, d);
  for (size_t i = 0; i < viaT2.size(); ++i) {
    EXPECT_NEAR(viaT2.data()[i], direct2.data()[i], 1e-4f);
  }
}

/// Naive reference: one double accumulator per output element, no tiling,
/// no skipping — the ground truth the blocked kernel must match.
Matrix ReferenceGemm(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t p = 0; p < a.cols(); ++p) {
        acc += static_cast<double>(a.At(i, p)) * b.At(p, j);
      }
      out.At(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

TEST(MatrixTest, BlockedGemmMatchesReference) {
  Rng rng(11);
  // Shapes around the register-tile width (16): below, at, above, and the
  // transformer's (T, 64) x (64, 64) hot shape.
  const size_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {17, 33, 19}, {48, 64, 64}};
  for (const auto& s : shapes) {
    Matrix a = Matrix::Randn(s[0], s[1], 1.0f, &rng);
    Matrix b = Matrix::Randn(s[1], s[2], 1.0f, &rng);
    Matrix got = MatMul(a, b);
    Matrix want = ReferenceGemm(a, b);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got.data()[i], want.data()[i], 1e-5f * s[1])
          << "shape " << s[0] << "x" << s[1] << "x" << s[2] << " elem " << i;
    }
  }
}

TEST(MatrixTest, BlockedGemmHandlesZeroLadenInputs) {
  // The old kernel skipped a[i,p] == 0 entries; the blocked kernel dropped
  // that branch. Sparse inputs must still produce exact results.
  Rng rng(12);
  Matrix a = Matrix::Randn(9, 21, 1.0f, &rng);
  Matrix b = Matrix::Randn(21, 13, 1.0f, &rng);
  for (size_t i = 0; i < a.size(); ++i) {
    if (i % 3 != 0) a.data()[i] = 0.0f;
  }
  for (size_t i = 0; i < b.size(); ++i) {
    if (i % 4 == 0) b.data()[i] = 0.0f;
  }
  Matrix got = MatMul(a, b);
  Matrix want = ReferenceGemm(a, b);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-5f * 21);
  }
  // All-zero left operand: exactly zero output.
  Matrix z(4, 21);
  Matrix zc = MatMul(z, b);
  for (size_t i = 0; i < zc.size(); ++i) EXPECT_EQ(zc.data()[i], 0.0f);
}

TEST(MatrixTest, MatMulTransAMatchesReference) {
  Rng rng(13);
  Matrix a = Matrix::Randn(23, 6, 1.0f, &rng);
  Matrix b = Matrix::Randn(23, 10, 1.0f, &rng);
  for (size_t i = 0; i < a.size(); ++i) {
    if (i % 5 == 0) a.data()[i] = 0.0f;  // exercise the dropped zero-skip
  }
  Matrix got = MatMulTransA(a, b);
  Matrix want = ReferenceGemm(a.Transposed(), b);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-5f * 23);
  }
}

TEST(MatrixTest, MatMulAddBiasMatchesUnfusedPairExactly) {
  Rng rng(14);
  const size_t shapes[][3] = {{1, 8, 5}, {7, 16, 16}, {30, 64, 64}};
  for (const auto& s : shapes) {
    Matrix a = Matrix::Randn(s[0], s[1], 1.0f, &rng);
    Matrix b = Matrix::Randn(s[1], s[2], 1.0f, &rng);
    Matrix bias = Matrix::Randn(1, s[2], 1.0f, &rng);
    Matrix fused = MatMulAddBias(a, b, bias);
    Matrix unfused = AddRowBroadcast(MatMul(a, b), bias);
    // Bit-for-bit: the fused kernel adds the bias after the full k
    // accumulation, so the rounding sequence is identical.
    EXPECT_EQ(fused, unfused);
  }
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 5}});
  EXPECT_FLOAT_EQ(Add(a, b).At(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(Sub(b, a).At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).At(0, 1), 10.0f);
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}});
  Matrix bias = Matrix::RowVector({10, 20});
  Matrix out = AddRowBroadcast(a, bias);
  EXPECT_FLOAT_EQ(out.At(0, 1), 21.0f);
  EXPECT_FLOAT_EQ(out.At(1, 0), 12.0f);
}

TEST(MatrixTest, SoftmaxRowsSumsToOne) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {-5, 0, 5}});
  Matrix s = SoftmaxRows(a);
  for (size_t r = 0; r < 2; ++r) {
    float total = 0;
    for (size_t c = 0; c < 3; ++c) total += s.At(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
  EXPECT_GT(s.At(0, 2), s.At(0, 0));
}

TEST(MatrixTest, SoftmaxNumericallyStableForLargeLogits) {
  Matrix a = Matrix::FromRows({{1000, 1001}});
  Matrix s = SoftmaxRows(a);
  EXPECT_FALSE(std::isnan(s.At(0, 0)));
  EXPECT_NEAR(s.At(0, 0) + s.At(0, 1), 1.0f, 1e-5f);
}

TEST(MatrixTest, LogSoftmaxMatchesLogOfSoftmax) {
  Matrix a = Matrix::FromRows({{0.5, -1.0, 2.0}});
  Matrix ls = LogSoftmaxRows(a);
  Matrix s = SoftmaxRows(a);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(ls.At(0, c), std::log(s.At(0, c)), 1e-5f);
  }
}

TEST(MatrixTest, RowL2NormsAndCosine) {
  Matrix a = Matrix::FromRows({{3, 4}});
  EXPECT_FLOAT_EQ(RowL2Norms(a).At(0, 0), 5.0f);
  Matrix b = Matrix::FromRows({{6, 8}});
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0f, 1e-5f);
  EXPECT_NEAR(CosineDistance(a, b), 0.0f, 1e-5f);
  Matrix c = Matrix::FromRows({{-4, 3}});
  EXPECT_NEAR(CosineSimilarity(a, c), 0.0f, 1e-5f);
}

TEST(MatrixTest, CosineOfZeroVectorIsZero) {
  Matrix a = Matrix::FromRows({{0, 0}});
  Matrix b = Matrix::FromRows({{1, 2}});
  EXPECT_FLOAT_EQ(CosineSimilarity(a, b), 0.0f);
}

TEST(MatrixTest, MeanRows) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix m = MeanRows(a);
  EXPECT_FLOAT_EQ(m.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.At(0, 1), 3.0f);
}

TEST(MatrixTest, StackingAndSlicing) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix v = VStack({a, b});
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_FLOAT_EQ(v.At(2, 1), 6.0f);
  Matrix sl = v.SliceRows(1, 2);
  EXPECT_FLOAT_EQ(sl.At(0, 0), 3.0f);

  Matrix h = HStack({b, b});
  EXPECT_EQ(h.cols(), 4u);
  EXPECT_FLOAT_EQ(h.At(1, 3), 6.0f);
}

TEST(MatrixTest, TransposedRoundTrip) {
  Rng rng(2);
  Matrix a = Matrix::Randn(3, 5, 1.0f, &rng);
  Matrix t = a.Transposed().Transposed();
  EXPECT_EQ(a, t);
}

TEST(MatrixTest, VecDot) {
  Matrix a = Matrix::RowVector({1, 2, 3});
  Matrix b = Matrix::RowVector({4, 5, 6});
  EXPECT_FLOAT_EQ(VecDot(a, b), 32.0f);
}

TEST(MatrixTest, SerializationRoundTrip) {
  Rng rng(3);
  Matrix a = Matrix::Randn(4, 7, 2.0f, &rng);
  std::stringstream ss;
  WriteMatrix(ss, a);
  Matrix b = ReadMatrix(ss);
  EXPECT_EQ(a, b);
}

TEST(MatrixTest, RandnStatistics) {
  Rng rng(4);
  Matrix m = Matrix::Randn(100, 100, 0.5f, &rng);
  double mean = m.Sum() / m.size();
  EXPECT_NEAR(mean, 0.0, 0.02);
  double var = 0;
  for (size_t i = 0; i < m.size(); ++i) var += m.data()[i] * m.data()[i];
  EXPECT_NEAR(var / m.size(), 0.25, 0.02);
}

TEST(MatrixTest, DebugStringMentionsShape) {
  Matrix m(2, 3);
  EXPECT_NE(m.DebugString().find("2x3"), std::string::npos);
}

}  // namespace
}  // namespace nerglob
