#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradient_check.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"

namespace nerglob::ag {
namespace {

Var Param(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  return Var(Matrix::Randn(r, c, 0.5f, &rng), /*requires_grad=*/true);
}

constexpr float kTol = 2e-2f;  // fp32 finite differences are coarse

TEST(VariableTest, LeafProperties) {
  Var v(Matrix::FromRows({{1, 2}}), true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.rows(), 1u);
  EXPECT_EQ(v.cols(), 2u);
  Var undef;
  EXPECT_FALSE(undef.defined());
}

TEST(VariableTest, SimpleChainBackward) {
  Var x(Matrix::FromRows({{2.0}}), true);
  Var y = ScalarMul(x, 3.0f);  // y = 3x
  Var loss = MeanAll(y);
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().At(0, 0), 3.0f);
}

TEST(VariableTest, GradAccumulatesAcrossBackwardCalls) {
  Var x(Matrix::FromRows({{1.0}}), true);
  for (int i = 0; i < 2; ++i) {
    Var loss = MeanAll(ScalarMul(x, 2.0f));
    loss.Backward();
  }
  EXPECT_FLOAT_EQ(x.grad().At(0, 0), 4.0f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad().size(), 0u);
}

TEST(VariableTest, SharedSubexpressionGetsSummedGradient) {
  Var x(Matrix::FromRows({{3.0}}), true);
  Var y = Add(x, x);  // dy/dx = 2
  Var loss = MeanAll(y);
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().At(0, 0), 2.0f);
}

TEST(OpsGradTest, MatMulBothSides) {
  Var a = Param(3, 4, 1);
  Var b = Param(4, 2, 2);
  auto loss = [&] { return MeanAll(MatMul(a, b)); };
  EXPECT_LT(MaxGradientError(loss, a), kTol);
  EXPECT_LT(MaxGradientError(loss, b), kTol);
}

TEST(OpsGradTest, LinearForwardAllThreeInputs) {
  Var x = Param(3, 4, 21);
  Var w = Param(4, 5, 22);
  Var b = Param(1, 5, 23);
  auto loss = [&] { return MeanAll(LinearForward(x, w, b)); };
  EXPECT_LT(MaxGradientError(loss, x), kTol);
  EXPECT_LT(MaxGradientError(loss, w), kTol);
  EXPECT_LT(MaxGradientError(loss, b), kTol);
}

TEST(OpsGradTest, LinearForwardMatchesUnfusedPair) {
  Var x = Param(6, 8, 24);
  Var w = Param(8, 3, 25);
  Var b = Param(1, 3, 26);
  Var fused = LinearForward(x, w, b);
  Var unfused = AddRowBroadcast(MatMul(x, w), b);
  EXPECT_EQ(fused.value(), unfused.value());

  // Gradients must match bit-for-bit too (same backward decomposition).
  MeanAll(fused).Backward();
  Matrix gx = x.grad(), gw = w.grad(), gb = b.grad();
  x.ZeroGrad();
  w.ZeroGrad();
  b.ZeroGrad();
  MeanAll(unfused).Backward();
  EXPECT_EQ(gx, x.grad());
  EXPECT_EQ(gw, w.grad());
  EXPECT_EQ(gb, b.grad());
}

TEST(OpsGradTest, AddSubMul) {
  Var a = Param(2, 3, 3);
  Var b = Param(2, 3, 4);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Add(a, b)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Sub(a, b)); }, b), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Mul(a, b)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Mul(a, b)); }, b), kTol);
}

TEST(OpsGradTest, AddRowBroadcast) {
  Var a = Param(3, 4, 5);
  Var bias = Param(1, 4, 6);
  auto loss = [&] { return MeanAll(AddRowBroadcast(a, bias)); };
  EXPECT_LT(MaxGradientError(loss, a), kTol);
  EXPECT_LT(MaxGradientError(loss, bias), kTol);
}

TEST(OpsGradTest, MulColBroadcast) {
  Var a = Param(3, 4, 7);
  Var s = Param(3, 1, 8);
  auto loss = [&] { return MeanAll(MulColBroadcast(a, s)); };
  EXPECT_LT(MaxGradientError(loss, a), kTol);
  EXPECT_LT(MaxGradientError(loss, s), kTol);
}

TEST(OpsGradTest, ScalarOpsAndNeg) {
  Var a = Param(2, 2, 9);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(ScalarMul(a, -1.7f)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(AddScalar(a, 2.0f)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Neg(a)); }, a), kTol);
}

TEST(OpsGradTest, Activations) {
  Var a = Param(2, 3, 10);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Tanh(a)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Sigmoid(a)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Exp(a)); }, a), kTol);
  // Relu is kinked; shift away from zero to keep finite differences clean.
  Var pos(Matrix::FromRows({{0.5, 1.5, -2.0}}), true);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Relu(pos)); }, pos), kTol);
}

TEST(OpsGradTest, LogWithEps) {
  Var a(Matrix::FromRows({{0.5, 1.0, 2.0}}), true);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Log(a, 0.1f)); }, a), kTol);
}

TEST(OpsGradTest, TransposeAndSlices) {
  Var a = Param(3, 4, 11);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Transpose(a)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(SliceRows(a, 1, 2)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(SliceCols(a, 1, 2)); }, a), kTol);
}

TEST(OpsGradTest, SoftmaxAndLogSoftmax) {
  Var a = Param(2, 4, 12);
  Var w = Constant(Matrix::FromRows({{0.3f, -0.2f, 0.5f, 0.1f},
                                     {0.9f, 0.4f, -0.6f, 0.2f}}));
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Mul(SoftmaxRows(a), w)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(Mul(LogSoftmaxRows(a), w)); }, a), kTol);
}

TEST(OpsGradTest, Reductions) {
  Var a = Param(3, 4, 13);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(MeanRows(a)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(RowSum(a)); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return SumAll(a); }, a), kTol);
  EXPECT_LT(MaxGradientError([&] { return MeanAll(a); }, a), kTol);
}

TEST(OpsGradTest, Concats) {
  Var a = Param(2, 3, 14);
  Var b = Param(2, 3, 15);
  auto loss_rows = [&] { return MeanAll(ConcatRows({a, b})); };
  EXPECT_LT(MaxGradientError(loss_rows, a), kTol);
  EXPECT_LT(MaxGradientError(loss_rows, b), kTol);
  auto loss_cols = [&] { return MeanAll(ConcatCols({a, b})); };
  EXPECT_LT(MaxGradientError(loss_cols, a), kTol);
  EXPECT_LT(MaxGradientError(loss_cols, b), kTol);
}

TEST(OpsGradTest, GatherRows) {
  Var table = Param(5, 3, 16);
  std::vector<int> idx = {4, 0, 0, 2};
  auto loss = [&] { return MeanAll(GatherRows(table, idx)); };
  EXPECT_LT(MaxGradientError(loss, table), kTol);
}

TEST(OpsGradTest, MaxOverRows) {
  // Values separated enough that argmax is stable under +-eps.
  Var a(Matrix::FromRows({{1.0, 9.0}, {5.0, 2.0}, {-3.0, 4.0}}), true);
  auto loss = [&] { return MeanAll(MaxOverRows(a)); };
  EXPECT_LT(MaxGradientError(loss, a), kTol);
}

TEST(OpsGradTest, L2NormalizeRows) {
  Var a = Param(2, 4, 17);
  Var w = Constant(Matrix::FromRows({{0.5f, -0.3f, 0.8f, 0.1f},
                                     {-0.2f, 0.7f, 0.4f, -0.9f}}));
  auto loss = [&] { return MeanAll(Mul(L2NormalizeRows(a), w)); };
  EXPECT_LT(MaxGradientError(loss, a), kTol);
}

TEST(OpsGradTest, L2NormalizeProducesUnitRows) {
  Var a = Param(3, 5, 18);
  Var n = L2NormalizeRows(a);
  Matrix norms = RowL2Norms(n.value());
  for (size_t r = 0; r < 3; ++r) EXPECT_NEAR(norms.At(r, 0), 1.0f, 1e-4f);
}

TEST(OpsGradTest, LayerNorm) {
  Var a = Param(2, 4, 19);
  Var gamma(Matrix::RowVector({1.1f, 0.9f, 1.2f, 0.8f}), true);
  Var beta(Matrix::RowVector({0.1f, -0.1f, 0.0f, 0.2f}), true);
  Var w = Constant(Matrix::FromRows({{0.5f, -0.3f, 0.8f, 0.1f},
                                     {-0.2f, 0.7f, 0.4f, -0.9f}}));
  auto loss = [&] { return MeanAll(Mul(LayerNormRows(a, gamma, beta), w)); };
  EXPECT_LT(MaxGradientError(loss, a), kTol);
  EXPECT_LT(MaxGradientError(loss, gamma), kTol);
  EXPECT_LT(MaxGradientError(loss, beta), kTol);
}

TEST(OpsGradTest, CrossEntropyWithLogits) {
  Var logits = Param(4, 3, 20);
  std::vector<int> targets = {0, 2, 1, 2};
  auto loss = [&] { return CrossEntropyWithLogits(logits, targets); };
  EXPECT_LT(MaxGradientError(loss, logits), kTol);
  // Value sanity: uniform logits -> log(3).
  Var uniform(Matrix(2, 3), true);
  Var l = CrossEntropyWithLogits(uniform, {0, 1});
  EXPECT_NEAR(l.value().At(0, 0), std::log(3.0f), 1e-4f);
}

TEST(OpsGradTest, CosineDistanceRows) {
  Var a = Param(1, 5, 21);
  Var b = Param(1, 5, 22);
  auto loss = [&] { return CosineDistanceRows(a, b); };
  EXPECT_LT(MaxGradientError(loss, a), kTol);
  EXPECT_LT(MaxGradientError(loss, b), kTol);
  // Identical vectors -> distance ~0.
  Var c(Matrix::RowVector({1, 2, 3}), false);
  EXPECT_NEAR(CosineDistanceRows(c, c).value().At(0, 0), 0.0f, 1e-4f);
}

TEST(OpsTest, DropoutTrainingMasksAndScales) {
  Rng rng(23);
  Var a(Matrix(10, 10, 1.0f), true);
  Var d = Dropout(a, 0.5f, /*training=*/true, &rng);
  int zeros = 0;
  for (size_t i = 0; i < d.value().size(); ++i) {
    float v = d.value().data()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-5f);
    if (v == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 20);
  EXPECT_LT(zeros, 80);
}

TEST(OpsTest, DropoutEvalIsIdentity) {
  Rng rng(24);
  Var a(Matrix(3, 3, 1.5f), false);
  Var d = Dropout(a, 0.5f, /*training=*/false, &rng);
  EXPECT_EQ(d.value(), a.value());
}

TEST(OpsTest, ConstantsReceiveNoGradient) {
  Var c = Constant(Matrix::FromRows({{1, 2}}));
  Var x(Matrix::FromRows({{3, 4}}), true);
  Var loss = MeanAll(Mul(c, x));
  loss.Backward();
  EXPECT_EQ(c.grad().size(), 0u);
  EXPECT_GT(x.grad().size(), 0u);
}

TEST(OpsTest, ComposedExpressionGradCheck) {
  // A miniature MLP forward pass, gradient-checked end to end.
  Var x = Constant(Matrix::FromRows({{0.2f, -0.4f, 0.6f}}));
  Var w1 = Param(3, 4, 25);
  Var b1 = Param(1, 4, 26);
  Var w2 = Param(4, 2, 27);
  auto loss = [&] {
    Var h = Relu(AddRowBroadcast(MatMul(x, w1), b1));
    Var logits = MatMul(h, w2);
    return CrossEntropyWithLogits(logits, {1});
  };
  EXPECT_LT(MaxGradientError(loss, w1), kTol);
  EXPECT_LT(MaxGradientError(loss, b1), kTol);
  EXPECT_LT(MaxGradientError(loss, w2), kTol);
}

}  // namespace
}  // namespace nerglob::ag
