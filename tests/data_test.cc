#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/generator.h"
#include "data/knowledge_base.h"

namespace nerglob::data {
namespace {

using text::EntityType;

TEST(KnowledgeBaseTest, StandardWorldHasAllTopicTypePools) {
  KnowledgeBase kb = KnowledgeBase::BuildStandard(10, 42);
  for (int t = 0; t < kNumTopics; ++t) {
    for (int ty = 0; ty < text::kNumEntityTypes; ++ty) {
      auto pool = kb.EntitiesForTopicType(static_cast<Topic>(t),
                                          static_cast<EntityType>(ty));
      EXPECT_GE(pool.size(), 10u) << TopicName(static_cast<Topic>(t));
    }
  }
}

TEST(KnowledgeBaseTest, CoreContainsPaperAmbiguities) {
  KnowledgeBase kb = KnowledgeBase::BuildStandard(0, 1);
  // "washington" must exist with two different types (Sec. I).
  std::set<EntityType> washington_types;
  bool has_us_alias = false;
  for (const Entity& e : kb.entities()) {
    if (e.canonical == "washington") washington_types.insert(e.type);
    for (const auto& a : e.aliases) {
      if (a == "us") has_us_alias = true;
    }
  }
  EXPECT_EQ(washington_types.size(), 2u);
  EXPECT_TRUE(has_us_alias);
  // And "us" must also be usable as a non-entity (pronoun).
  const auto& homographs = kb.non_entity_homographs();
  EXPECT_NE(std::find(homographs.begin(), homographs.end(), "us"),
            homographs.end());
}

TEST(KnowledgeBaseTest, DeterministicGivenSeed) {
  KnowledgeBase a = KnowledgeBase::BuildStandard(5, 9);
  KnowledgeBase b = KnowledgeBase::BuildStandard(5, 9);
  ASSERT_EQ(a.entities().size(), b.entities().size());
  for (size_t i = 0; i < a.entities().size(); ++i) {
    EXPECT_EQ(a.entities()[i].canonical, b.entities()[i].canonical);
  }
}

TEST(KnowledgeBaseTest, ProceduralOnlyHasNoCoreEntities) {
  KnowledgeBase kb = KnowledgeBase::BuildProceduralOnly(5, 3);
  for (const Entity& e : kb.entities()) {
    EXPECT_NE(e.canonical, "coronavirus");
    EXPECT_NE(e.canonical, "donald trump");
  }
  EXPECT_EQ(kb.entities().size(),
            static_cast<size_t>(kNumTopics * text::kNumEntityTypes * 5));
}

TEST(SynthNamesTest, ProduceLowercaseTokens) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    for (const std::string& name :
         {SynthPersonName(&rng), SynthLocationName(&rng),
          SynthOrganizationName(&rng), SynthMiscName(&rng)}) {
      EXPECT_FALSE(name.empty());
      for (char c : name) {
        EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ') << name;
      }
    }
  }
}

TEST(DatasetSpecTest, PaperSizes) {
  EXPECT_EQ(MakeDatasetSpec("D1").num_messages, 1000u);
  EXPECT_EQ(MakeDatasetSpec("D2").num_messages, 2000u);
  EXPECT_EQ(MakeDatasetSpec("D3").num_messages, 3000u);
  EXPECT_EQ(MakeDatasetSpec("D4").num_messages, 6000u);
  EXPECT_EQ(MakeDatasetSpec("D5").num_messages, 3430u);
  EXPECT_EQ(MakeDatasetSpec("WNUT17").num_messages, 1287u);
  EXPECT_EQ(MakeDatasetSpec("BTC").num_messages, 9553u);
  EXPECT_EQ(MakeDatasetSpec("D3").topics.size(), 3u);
  EXPECT_EQ(MakeDatasetSpec("D4").topics.size(), 5u);
}

TEST(DatasetSpecTest, ScaleShrinks) {
  EXPECT_EQ(MakeDatasetSpec("D4", 0.1).num_messages, 600u);
  EXPECT_EQ(MakeDatasetSpec("D1", 0.01).num_messages, 50u);  // floor
}

TEST(DatasetSpecTest, StreamingReatsEntitiesMoreThanRandomSampling) {
  EXPECT_GT(MakeDatasetSpec("D2").zipf_exponent,
            MakeDatasetSpec("WNUT17").zipf_exponent);
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : kb_(KnowledgeBase::BuildStandard(15, 7)), gen_(&kb_) {}
  KnowledgeBase kb_;
  StreamGenerator gen_;
};

TEST_F(GeneratorTest, GeneratesRequestedCount) {
  auto spec = MakeDatasetSpec("D1", 0.1);
  auto msgs = gen_.Generate(spec);
  EXPECT_EQ(msgs.size(), spec.num_messages);
}

TEST_F(GeneratorTest, DeterministicGivenSeed) {
  auto spec = MakeDatasetSpec("D2", 0.05);
  auto a = gen_.Generate(spec);
  auto b = gen_.Generate(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
}

TEST_F(GeneratorTest, TokensMatchTextAndSpansInBounds) {
  auto msgs = gen_.Generate(MakeDatasetSpec("D3", 0.1));
  for (const auto& m : msgs) {
    EXPECT_FALSE(m.tokens.empty());
    for (const auto& span : m.gold_spans) {
      EXPECT_LT(span.begin_token, span.end_token);
      EXPECT_LE(span.end_token, m.tokens.size());
    }
  }
}

TEST_F(GeneratorTest, GoldSpansCoverEntityAliases) {
  // Every gold span's surface must be an alias of some KB entity of that
  // type (modulo casing/typos/hashtag joining), spot-checked via length.
  auto msgs = gen_.Generate(MakeDatasetSpec("D1", 0.1));
  size_t total_spans = 0;
  for (const auto& m : msgs) total_spans += m.gold_spans.size();
  EXPECT_GT(total_spans, msgs.size() / 2);  // most messages carry entities
}

TEST_F(GeneratorTest, StreamingDatasetRepeatsTopEntities) {
  auto msgs = gen_.Generate(MakeDatasetSpec("D2", 0.25));
  std::map<std::string, int> counts;
  for (const auto& m : msgs) {
    for (const auto& span : m.gold_spans) {
      std::string surface;
      for (size_t t = span.begin_token; t < span.end_token; ++t) {
        surface += m.tokens[t].match + " ";
      }
      ++counts[surface];
    }
  }
  int max_count = 0;
  for (const auto& [s, c] : counts) max_count = std::max(max_count, c);
  // Zipf head: the most frequent surface form recurs heavily.
  EXPECT_GT(max_count, 20);
}

TEST_F(GeneratorTest, NonStreamingDatasetSpreadsEntities) {
  auto streaming = gen_.Generate(MakeDatasetSpec("D2", 0.25));
  auto random_sampled = gen_.Generate(MakeDatasetSpec("WNUT17", 0.39));
  // Comparable message counts; unique entity count much higher for the
  // uniform (non-streaming) dataset.
  const size_t u_stream = CountUniqueGoldEntities(streaming);
  const size_t u_random = CountUniqueGoldEntities(random_sampled);
  EXPECT_GT(u_random, u_stream);
}

TEST_F(GeneratorTest, HomographSentencesHaveNoGold) {
  auto msgs = gen_.Generate(MakeDatasetSpec("D2", 0.5));
  bool saw_pronoun_us = false;
  for (const auto& m : msgs) {
    if (m.text.find("help us get through") != std::string::npos) {
      saw_pronoun_us = true;
      EXPECT_TRUE(m.gold_spans.empty());
    }
  }
  EXPECT_TRUE(saw_pronoun_us);
}

TEST_F(GeneratorTest, ToLabeledSentencesEncodesBio) {
  auto msgs = gen_.Generate(MakeDatasetSpec("D1", 0.05));
  auto labeled = ToLabeledSentences(msgs);
  ASSERT_EQ(labeled.size(), msgs.size());
  for (size_t i = 0; i < labeled.size(); ++i) {
    EXPECT_EQ(labeled[i].bio.size(), msgs[i].tokens.size());
    auto decoded = text::DecodeBio(labeled[i].bio);
    EXPECT_EQ(decoded.size(), msgs[i].gold_spans.size());
  }
}

TEST_F(GeneratorTest, TrainSpecDownweightsOrgMisc) {
  KnowledgeBase train_kb = KnowledgeBase::BuildProceduralOnly(15, 77);
  StreamGenerator train_gen(&train_kb);
  auto train = train_gen.Generate(MakeDatasetSpec("TRAIN", 0.5));
  std::map<text::EntityType, int> counts;
  for (const auto& m : train) {
    for (const auto& s : m.gold_spans) ++counts[s.type];
  }
  EXPECT_GT(counts[EntityType::kPerson], counts[EntityType::kOrganization]);
  EXPECT_GT(counts[EntityType::kLocation], counts[EntityType::kMisc]);
}

TEST_F(GeneratorTest, TemplateCoverageRestrictsContexts) {
  // TRAIN (coverage 0.6) must use strictly fewer distinct message shapes
  // than the same spec with full coverage.
  auto collect_skeletons = [&](double coverage) {
    DatasetSpec spec = MakeDatasetSpec("TRAIN", 0.3);
    spec.template_coverage = coverage;
    spec.org_misc_weight = 1.0;
    spec.noise = NoiseOptions{};
    spec.noise.rt_prefix = 0;
    spec.noise.append_url = 0;
    spec.noise.append_emoticon = 0;
    spec.noise.elongation = 0;
    auto msgs = gen_.Generate(spec);
    // Template skeleton: the message with entity tokens blanked out.
    std::set<std::string> skeletons;
    for (const auto& m : msgs) {
      std::vector<bool> is_entity(m.tokens.size(), false);
      for (const auto& span : m.gold_spans) {
        for (size_t t = span.begin_token; t < span.end_token; ++t) {
          is_entity[t] = true;
        }
      }
      if (m.gold_spans.empty()) continue;  // homograph/filler: shared
      std::string skeleton;
      for (size_t t = 0; t < m.tokens.size(); ++t) {
        skeleton += is_entity[t] ? "<E>" : m.tokens[t].match;
        skeleton += ' ';
      }
      skeletons.insert(skeleton);
    }
    return skeletons.size();
  };
  EXPECT_LT(collect_skeletons(0.4), collect_skeletons(1.0));
}

TEST_F(GeneratorTest, AllTopicsAppearInMultiTopicStream) {
  auto msgs = gen_.Generate(MakeDatasetSpec("D4", 0.1));
  std::set<int> topics;
  for (const auto& m : msgs) topics.insert(m.topic_id);
  EXPECT_EQ(topics.size(), 5u);
}

}  // namespace
}  // namespace nerglob::data
