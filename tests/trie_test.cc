#include <gtest/gtest.h>

#include "trie/candidate_trie.h"

namespace nerglob::trie {
namespace {

std::vector<std::string> Toks(std::initializer_list<const char*> words) {
  std::vector<std::string> out;
  for (const char* w : words) out.emplace_back(w);
  return out;
}

TEST(CandidateTrieTest, InsertAndContains) {
  CandidateTrie trie;
  EXPECT_TRUE(trie.Insert(Toks({"andy", "beshear"})));
  EXPECT_FALSE(trie.Insert(Toks({"andy", "beshear"})));  // duplicate
  EXPECT_TRUE(trie.Contains(Toks({"andy", "beshear"})));
  EXPECT_FALSE(trie.Contains(Toks({"andy"})));  // prefix is not terminal
  EXPECT_EQ(trie.size(), 1u);
}

TEST(CandidateTrieTest, EmptyInsertIgnored) {
  CandidateTrie trie;
  EXPECT_FALSE(trie.Insert({}));
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_FALSE(trie.Contains({}));
}

TEST(CandidateTrieTest, PrefixAndFullBothInsertable) {
  CandidateTrie trie;
  trie.Insert(Toks({"andy"}));
  trie.Insert(Toks({"andy", "beshear"}));
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_TRUE(trie.Contains(Toks({"andy"})));
  EXPECT_TRUE(trie.Contains(Toks({"andy", "beshear"})));
}

TEST(CandidateTrieTest, FindSingleTokenMentions) {
  CandidateTrie trie;
  trie.Insert(Toks({"coronavirus"}));
  auto matches = trie.FindLongestMatches(
      Toks({"the", "coronavirus", "is", "spreading"}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (TokenSpan{1, 2}));
}

TEST(CandidateTrieTest, LongestMatchWinsOverPrefix) {
  // "andy" and "andy beshear" both registered: the longer one is emitted.
  CandidateTrie trie;
  trie.Insert(Toks({"andy"}));
  trie.Insert(Toks({"andy", "beshear"}));
  auto matches =
      trie.FindLongestMatches(Toks({"gov", "andy", "beshear", "said"}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (TokenSpan{1, 3}));
}

TEST(CandidateTrieTest, PartialExtractionCorrected) {
  // Paper Sec. V-A: Local NER found only "andy" in one tweet but the full
  // "andy beshear" elsewhere; the scan must recover the complete mention.
  CandidateTrie trie;
  trie.Insert(Toks({"andy", "beshear"}));
  auto matches = trie.FindLongestMatches(Toks({"andy", "beshear", "update"}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (TokenSpan{0, 2}));
}

TEST(CandidateTrieTest, FallbackToShorterTerminalOnDeadEnd) {
  // "new york" registered, "new york city" not; sentence has "new york
  // giants": the scan walks to the dead end and keeps the longest terminal.
  CandidateTrie trie;
  trie.Insert(Toks({"new", "york"}));
  auto matches = trie.FindLongestMatches(Toks({"new", "york", "giants"}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (TokenSpan{0, 2}));
}

TEST(CandidateTrieTest, MultipleNonOverlappingMatches) {
  CandidateTrie trie;
  trie.Insert(Toks({"italy"}));
  trie.Insert(Toks({"canada"}));
  auto matches = trie.FindLongestMatches(
      Toks({"italy", "and", "canada", "close", "borders"}));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (TokenSpan{0, 1}));
  EXPECT_EQ(matches[1], (TokenSpan{2, 3}));
}

TEST(CandidateTrieTest, AdjacentMatchesDoNotOverlap) {
  CandidateTrie trie;
  trie.Insert(Toks({"us"}));
  auto matches = trie.FindLongestMatches(Toks({"us", "us", "us"}));
  ASSERT_EQ(matches.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(matches[i], (TokenSpan{i, i + 1}));
  }
}

TEST(CandidateTrieTest, ScanResumesAfterMatch) {
  // After matching [0,2), scanning resumes at 2 — the overlapping candidate
  // starting at token 1 is not emitted.
  CandidateTrie trie;
  trie.Insert(Toks({"justice", "department"}));
  trie.Insert(Toks({"department", "store"}));
  auto matches =
      trie.FindLongestMatches(Toks({"justice", "department", "store"}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (TokenSpan{0, 2}));
}

TEST(CandidateTrieTest, MaxSpanLimitsLookahead) {
  CandidateTrie trie;
  trie.Insert(Toks({"a", "b", "c", "d"}));
  auto limited = trie.FindLongestMatches(Toks({"a", "b", "c", "d"}), 3);
  EXPECT_TRUE(limited.empty());  // match longer than the window
  auto full = trie.FindLongestMatches(Toks({"a", "b", "c", "d"}), 4);
  ASSERT_EQ(full.size(), 1u);
}

TEST(CandidateTrieTest, NoMatchesInUnrelatedSentence) {
  CandidateTrie trie;
  trie.Insert(Toks({"nhs"}));
  EXPECT_TRUE(trie.FindLongestMatches(Toks({"totally", "unrelated"})).empty());
  EXPECT_TRUE(trie.FindLongestMatches({}).empty());
}

TEST(CandidateTrieTest, ManySurfaceFormsScale) {
  CandidateTrie trie;
  for (int i = 0; i < 2000; ++i) {
    trie.Insert({"entity" + std::to_string(i)});
  }
  EXPECT_EQ(trie.size(), 2000u);
  auto matches = trie.FindLongestMatches(Toks({"entity1999", "entity0"}));
  EXPECT_EQ(matches.size(), 2u);
}

TEST(CandidateTrieTest, RemoveUnregistersSurface) {
  CandidateTrie trie;
  trie.Insert(Toks({"andy", "beshear"}));
  EXPECT_TRUE(trie.Remove(Toks({"andy", "beshear"})));
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_FALSE(trie.Contains(Toks({"andy", "beshear"})));
  EXPECT_TRUE(trie.FindLongestMatches(Toks({"andy", "beshear"})).empty());
  // Removing again (or removing something never inserted) is a no-op.
  EXPECT_FALSE(trie.Remove(Toks({"andy", "beshear"})));
  EXPECT_FALSE(trie.Remove(Toks({"nope"})));
  EXPECT_FALSE(trie.Remove({}));
}

TEST(CandidateTrieTest, RemovePrefixKeepsLongerSurface) {
  CandidateTrie trie;
  trie.Insert(Toks({"andy"}));
  trie.Insert(Toks({"andy", "beshear"}));
  EXPECT_TRUE(trie.Remove(Toks({"andy"})));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_FALSE(trie.Contains(Toks({"andy"})));
  EXPECT_TRUE(trie.Contains(Toks({"andy", "beshear"})));
  auto matches = trie.FindLongestMatches(Toks({"andy", "beshear"}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (TokenSpan{0, 2}));
}

TEST(CandidateTrieTest, RemoveLongerSurfaceKeepsPrefix) {
  // Pruning "andy beshear" must expose the shorter registered surface to
  // the greedy scan again.
  CandidateTrie trie;
  trie.Insert(Toks({"andy"}));
  trie.Insert(Toks({"andy", "beshear"}));
  EXPECT_TRUE(trie.Remove(Toks({"andy", "beshear"})));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_TRUE(trie.Contains(Toks({"andy"})));
  auto matches = trie.FindLongestMatches(Toks({"gov", "andy", "beshear"}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (TokenSpan{1, 2}));
}

TEST(CandidateTrieTest, RemovePrunesDeadBranches) {
  // Removing the only surface on a branch should release its nodes: after
  // insert+remove the footprint returns to (roughly) the empty trie's.
  CandidateTrie trie;
  const size_t empty_bytes = trie.MemoryUsageBytes();
  trie.Insert(Toks({"a", "very", "long", "surface", "form"}));
  const size_t full_bytes = trie.MemoryUsageBytes();
  EXPECT_GT(full_bytes, empty_bytes);
  EXPECT_TRUE(trie.Remove(Toks({"a", "very", "long", "surface", "form"})));
  EXPECT_EQ(trie.MemoryUsageBytes(), empty_bytes);
}

TEST(CandidateTrieTest, RemoveInterleavedWithInsert) {
  CandidateTrie trie;
  for (int i = 0; i < 100; ++i) trie.Insert({"w" + std::to_string(i)});
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(trie.Remove({"w" + std::to_string(i)}));
  }
  EXPECT_EQ(trie.size(), 50u);
  EXPECT_FALSE(trie.Contains(Toks({"w0"})));
  EXPECT_TRUE(trie.Contains(Toks({"w1"})));
  // Re-inserting a removed surface works.
  EXPECT_TRUE(trie.Insert(Toks({"w0"})));
  EXPECT_TRUE(trie.Contains(Toks({"w0"})));
}

}  // namespace
}  // namespace nerglob::trie
