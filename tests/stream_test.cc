#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "stream/candidate_base.h"
#include "stream/message.h"
#include "stream/tweet_base.h"

namespace nerglob::stream {
namespace {

Message MakeMessage(int64_t id, const std::string& text) {
  Message m;
  m.id = id;
  m.text = text;
  return m;
}

TEST(StreamSourceTest, BatchesInOrder) {
  std::vector<Message> msgs;
  for (int i = 0; i < 7; ++i) msgs.push_back(MakeMessage(i, StrFormat("t%d", i)));
  StreamSource source(std::move(msgs), 3);
  EXPECT_EQ(source.num_messages(), 7u);

  ASSERT_TRUE(source.HasNext());
  auto b1 = source.NextBatch();
  ASSERT_EQ(b1.size(), 3u);
  EXPECT_EQ(b1[0].id, 0);
  auto b2 = source.NextBatch();
  ASSERT_EQ(b2.size(), 3u);
  EXPECT_EQ(b2[0].id, 3);
  auto b3 = source.NextBatch();
  ASSERT_EQ(b3.size(), 1u);  // short final batch
  EXPECT_EQ(b3[0].id, 6);
  EXPECT_FALSE(source.HasNext());
}

TEST(StreamSourceTest, SingleBatchCoversAll) {
  StreamSource source({MakeMessage(1, "a"), MakeMessage(2, "b")}, 100);
  auto batch = source.NextBatch();
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(source.HasNext());
}

TEST(StreamSourceTest, ExhaustedSourceYieldsEmptyBatches) {
  StreamSource source({MakeMessage(1, "a")}, 4);
  EXPECT_EQ(source.NextBatch().size(), 1u);
  // The loop contract: an exhausted source returns empty batches forever
  // instead of failing.
  EXPECT_TRUE(source.NextBatch().empty());
  EXPECT_TRUE(source.NextBatch().empty());
  EXPECT_FALSE(source.HasNext());
}

TEST(StreamSourceTest, ResetReplaysTheStream) {
  std::vector<Message> msgs;
  for (int i = 0; i < 5; ++i) msgs.push_back(MakeMessage(i, StrFormat("t%d", i)));
  StreamSource source(std::move(msgs), 2);
  size_t first_pass = 0;
  while (true) {
    auto batch = source.NextBatch();
    if (batch.empty()) break;
    first_pass += batch.size();
  }
  EXPECT_EQ(first_pass, 5u);
  source.Reset();
  EXPECT_TRUE(source.HasNext());
  auto batch = source.NextBatch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 0);  // back at the start, same order
}

TEST(StreamSourceTest, ExhaustedSourcePollsAreFreeAndResetReplaysIdentically) {
  // The contract re-polling drivers (serve::SessionManager, bench warm-up
  // loops) rely on, documented at StreamSource::NextBatch in stream.cc:
  // polling an exhausted source is O(1) and side-effect-free forever — a
  // driver that keeps polling can never spin on phantom work — and Reset()
  // replays the byte-identical batch sequence.
  std::vector<Message> msgs;
  for (int i = 0; i < 5; ++i) msgs.push_back(MakeMessage(i, StrFormat("t%d", i)));
  StreamSource source(std::move(msgs), 2);
  std::vector<std::vector<int64_t>> first_pass;
  while (true) {
    auto batch = source.NextBatch();
    if (batch.empty()) break;
    std::vector<int64_t> ids;
    for (const Message& m : batch) ids.push_back(m.id);
    first_pass.push_back(std::move(ids));
  }
  ASSERT_EQ(first_pass.size(), 3u);  // 2 + 2 + 1
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(source.NextBatch().empty());
    EXPECT_FALSE(source.HasNext());
  }
  source.Reset();
  for (const auto& want : first_pass) {
    auto batch = source.NextBatch();
    ASSERT_EQ(batch.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) EXPECT_EQ(batch[j].id, want[j]);
  }
  EXPECT_TRUE(source.NextBatch().empty());
}

TEST(TweetBaseTest, PutFindRoundTrip) {
  TweetBase base;
  SentenceRecord rec;
  rec.message = MakeMessage(42, "italy closes schools");
  rec.local_bio = {1, 0, 0};
  base.Put(rec);
  ASSERT_NE(base.Find(42), nullptr);
  EXPECT_EQ(base.Find(42)->message.text, "italy closes schools");
  EXPECT_EQ(base.Find(99), nullptr);
  EXPECT_EQ(base.size(), 1u);
}

TEST(TweetBaseTest, PutReplacesAndKeepsOrder) {
  TweetBase base;
  SentenceRecord a;
  a.message = MakeMessage(1, "first");
  SentenceRecord b;
  b.message = MakeMessage(2, "second");
  base.Put(a);
  base.Put(b);
  SentenceRecord a2;
  a2.message = MakeMessage(1, "updated");
  base.Put(a2);
  EXPECT_EQ(base.size(), 2u);
  EXPECT_EQ(base.Find(1)->message.text, "updated");
  ASSERT_EQ(base.ids().size(), 2u);
  EXPECT_EQ(base.ids()[0], 1);
  EXPECT_EQ(base.ids()[1], 2);
}

TEST(TweetBaseTest, MutableAccessUpdatesMentions) {
  TweetBase base;
  SentenceRecord rec;
  rec.message = MakeMessage(5, "x");
  base.Put(rec);
  base.FindMutable(5)->mentions.push_back({0, 1, text::EntityType::kLocation});
  EXPECT_EQ(base.Find(5)->mentions.size(), 1u);
}

TEST(TweetBaseTest, EvictOldestRetiresInArrivalOrder) {
  TweetBase base;
  for (int64_t id = 10; id < 15; ++id) {
    SentenceRecord rec;
    rec.message = MakeMessage(id, StrFormat("m%d", static_cast<int>(id)));
    base.Put(rec);
  }
  auto evicted = base.EvictOldest(2);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], 10);
  EXPECT_EQ(evicted[1], 11);
  EXPECT_EQ(base.size(), 3u);
  EXPECT_EQ(base.Find(10), nullptr);
  EXPECT_EQ(base.Find(11), nullptr);
  ASSERT_NE(base.Find(12), nullptr);
  // Remaining ids still oldest-first.
  ASSERT_EQ(base.ids().size(), 3u);
  EXPECT_EQ(base.ids()[0], 12);
  EXPECT_EQ(base.ids()[2], 14);
}

TEST(TweetBaseTest, MemoryUsageShrinksOnEviction) {
  TweetBase base;
  for (int64_t id = 0; id < 4; ++id) {
    SentenceRecord rec;
    rec.message = MakeMessage(id, "some message text with several tokens");
    base.Put(rec);
  }
  const size_t before = base.MemoryUsageBytes();
  EXPECT_GT(before, 0u);
  base.EvictOldest(2);
  EXPECT_LT(base.MemoryUsageBytes(), before);
}

TEST(CandidateBaseTest, MentionPoolGrows) {
  CandidateBase cb;
  MentionRecord m1;
  m1.message_id = 1;
  m1.local_embedding = Matrix::RowVector({1, 0});
  EXPECT_EQ(cb.AddMention("coronavirus", m1), 0u);
  MentionRecord m2;
  m2.message_id = 2;
  m2.local_embedding = Matrix::RowVector({0.9f, 0.1f});
  EXPECT_EQ(cb.AddMention("coronavirus", m2), 1u);
  EXPECT_EQ(cb.Mentions("coronavirus").size(), 2u);
  EXPECT_EQ(cb.Mentions("unknown").size(), 0u);
  EXPECT_EQ(cb.TotalMentions(), 2u);
}

TEST(CandidateBaseTest, SurfacesInFirstSeenOrder) {
  CandidateBase cb;
  cb.AddMention("b", {});
  cb.AddMention("a", {});
  cb.AddMention("b", {});
  ASSERT_EQ(cb.surfaces().size(), 2u);
  EXPECT_EQ(cb.surfaces()[0], "b");
  EXPECT_EQ(cb.surfaces()[1], "a");
}

TEST(CandidateBaseTest, MeanEmbeddingUpdatesIncrementally) {
  CandidateBase cb;
  EXPECT_TRUE(cb.MeanEmbedding("x").empty());
  MentionRecord m1;
  m1.local_embedding = Matrix::RowVector({2, 0});
  cb.AddMention("x", m1);
  EXPECT_FLOAT_EQ(cb.MeanEmbedding("x").At(0, 0), 2.0f);
  MentionRecord m2;
  m2.local_embedding = Matrix::RowVector({0, 4});
  cb.AddMention("x", m2);
  Matrix mean = cb.MeanEmbedding("x");
  EXPECT_FLOAT_EQ(mean.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(mean.At(0, 1), 2.0f);
}

TEST(CandidateBaseTest, MeanEmbeddingMatchesBatchMean) {
  // Incremental running mean == recomputed batch mean, regardless of order.
  Rng rng(5);
  CandidateBase cb;
  std::vector<Matrix> embs;
  for (int i = 0; i < 17; ++i) {
    MentionRecord m;
    m.local_embedding = Matrix::Randn(1, 6, 1.0f, &rng);
    embs.push_back(m.local_embedding);
    cb.AddMention("y", m);
  }
  Matrix batch(embs.size(), 6);
  for (size_t i = 0; i < embs.size(); ++i) {
    std::copy(embs[i].Row(0), embs[i].Row(0) + 6, batch.Row(i));
  }
  Matrix want = MeanRows(batch);
  Matrix got = cb.MeanEmbedding("y");
  for (size_t c = 0; c < 6; ++c) EXPECT_NEAR(got.At(0, c), want.At(0, c), 1e-5f);
}

TEST(CandidateBaseTest, MentionsWithoutEmbeddingsSkippedInMean) {
  CandidateBase cb;
  cb.AddMention("z", {});  // no embedding
  EXPECT_TRUE(cb.MeanEmbedding("z").empty());
  MentionRecord m;
  m.local_embedding = Matrix::RowVector({3});
  cb.AddMention("z", m);
  EXPECT_FLOAT_EQ(cb.MeanEmbedding("z").At(0, 0), 3.0f);  // count excludes empties
}

TEST(CandidateBaseTest, CandidatePartition) {
  CandidateBase cb;
  cb.AddMention("washington", {});
  cb.AddMention("washington", {});
  cb.AddMention("washington", {});
  std::vector<CandidateEntry> cands(2);
  cands[0].surface = "washington";
  cands[0].mention_ids = {0, 2};
  cands[0].is_entity = true;
  cands[0].type = text::EntityType::kPerson;
  cands[1].surface = "washington";
  cands[1].mention_ids = {1};
  cands[1].is_entity = true;
  cands[1].type = text::EntityType::kLocation;
  cb.SetCandidates("washington", cands);
  const auto& got = cb.Candidates("washington");
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].mention_ids.size(), 2u);
  EXPECT_EQ(got[1].type, text::EntityType::kLocation);
  EXPECT_TRUE(cb.Candidates("nope").empty());
}

MentionRecord MakeMention(int64_t message_id, size_t begin, size_t end,
                          std::vector<float> emb) {
  MentionRecord m;
  m.message_id = message_id;
  m.begin_token = begin;
  m.end_token = end;
  m.local_embedding = Matrix::RowVector(emb);
  return m;
}

TEST(CandidateBaseTest, ContainsMentionMatchesExactSpan) {
  CandidateBase cb;
  cb.AddMention("italy", MakeMention(7, 2, 3, {1, 0}));
  EXPECT_TRUE(cb.ContainsMention("italy", 7, 2, 3));
  EXPECT_FALSE(cb.ContainsMention("italy", 7, 1, 3));  // different span
  EXPECT_FALSE(cb.ContainsMention("italy", 8, 2, 3));  // different message
  EXPECT_FALSE(cb.ContainsMention("spain", 7, 2, 3));  // unknown surface
}

TEST(CandidateBaseTest, RemoveMentionsOfDropsOnlyEvictedIds) {
  CandidateBase cb;
  cb.AddMention("italy", MakeMention(1, 0, 1, {2, 0}));
  cb.AddMention("italy", MakeMention(2, 0, 1, {0, 4}));
  cb.AddMention("italy", MakeMention(3, 0, 1, {0, 0}));
  cb.AddMention("spain", MakeMention(2, 3, 4, {1, 1}));

  auto changed = cb.RemoveMentionsOf({2});
  ASSERT_EQ(changed.size(), 2u);  // first-seen order
  EXPECT_EQ(changed[0], "italy");
  EXPECT_EQ(changed[1], "spain");
  ASSERT_EQ(cb.Mentions("italy").size(), 2u);
  EXPECT_EQ(cb.Mentions("italy")[0].message_id, 1);
  EXPECT_EQ(cb.Mentions("italy")[1].message_id, 3);
  EXPECT_TRUE(cb.Mentions("spain").empty());
  // The running mean was recomputed from the survivors.
  Matrix mean = cb.MeanEmbedding("italy");
  EXPECT_FLOAT_EQ(mean.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(mean.At(0, 1), 0.0f);
}

TEST(CandidateBaseTest, RemoveMentionsOfLeavesUntouchedSurfacesIntact) {
  // Regression: a surface whose pool holds no evicted mentions must keep
  // its embeddings byte-for-byte (an earlier version left moved-from
  // records behind when nothing was removed).
  CandidateBase cb;
  cb.AddMention("italy", MakeMention(1, 0, 1, {3, 5}));
  auto changed = cb.RemoveMentionsOf({99});
  EXPECT_TRUE(changed.empty());
  ASSERT_EQ(cb.Mentions("italy").size(), 1u);
  const Matrix& emb = cb.Mentions("italy")[0].local_embedding;
  ASSERT_FALSE(emb.empty());
  ASSERT_EQ(emb.size(), 2u);
  EXPECT_FLOAT_EQ(emb.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(emb.At(0, 1), 5.0f);
}

TEST(CandidateBaseTest, RemoveMentionsOfClearsStaleCandidates) {
  CandidateBase cb;
  cb.AddMention("italy", MakeMention(1, 0, 1, {1, 0}));
  cb.AddMention("italy", MakeMention(2, 0, 1, {0, 1}));
  std::vector<CandidateEntry> cands(1);
  cands[0].surface = "italy";
  cands[0].mention_ids = {0, 1};
  cb.SetCandidates("italy", cands);
  cb.RemoveMentionsOf({1});
  // Pool indices shifted: the old partition is meaningless until rebuilt.
  EXPECT_TRUE(cb.Candidates("italy").empty());
}

TEST(CandidateBaseTest, RemoveSurfaceErasesEverything) {
  CandidateBase cb;
  cb.AddMention("b", MakeMention(1, 0, 1, {1}));
  cb.AddMention("a", MakeMention(1, 2, 3, {2}));
  cb.RemoveSurface("b");
  ASSERT_EQ(cb.surfaces().size(), 1u);
  EXPECT_EQ(cb.surfaces()[0], "a");
  EXPECT_TRUE(cb.Mentions("b").empty());
  EXPECT_EQ(cb.TotalMentions(), 1u);
  cb.RemoveSurface("nope");  // no-op
  EXPECT_EQ(cb.surfaces().size(), 1u);
}

TEST(CandidateBaseTest, MemoryUsageTracksPoolSize) {
  CandidateBase cb;
  const size_t empty_bytes = cb.MemoryUsageBytes();
  for (int i = 0; i < 8; ++i) {
    cb.AddMention("coronavirus", MakeMention(i, 0, 1, {1, 2, 3, 4}));
  }
  const size_t full_bytes = cb.MemoryUsageBytes();
  EXPECT_GT(full_bytes, empty_bytes);
  cb.RemoveMentionsOf({0, 1, 2, 3, 4, 5});
  EXPECT_LT(cb.MemoryUsageBytes(), full_bytes);
}

}  // namespace
}  // namespace nerglob::stream
