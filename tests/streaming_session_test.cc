// StreamingSession: the bounded-memory runtime driving a StreamSource
// through the pipeline, with checkpointed (finalized) predictions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <string>

#include "common/scratch_arena.h"
#include "common/thread_pool.h"
#include "harness/experiment.h"
#include "stream/streaming_session.h"

namespace nerglob {
namespace {

// One small trained system shared by every test in this file (training is
// the expensive part; same miniature configuration as pipeline_test).
class StreamingSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new harness::TrainedSystem(
        harness::BuildTrainedSystem(harness::TinyTestOptions()));
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  stream::StreamingSession MakeSession(size_t window_messages = 0) const {
    stream::StreamingSessionConfig config;
    config.pipeline = core::DefaultPipelineConfig(system_->bundle);
    config.pipeline.window_messages = window_messages;
    return stream::StreamingSession(&system_->bundle, config);
  }

  std::vector<stream::Message> Dataset(const std::string& name) const {
    data::StreamGenerator gen(&system_->kb_eval);
    return gen.Generate(data::MakeDatasetSpec(name, 0.08));
  }

  static harness::TrainedSystem* system_;
};

harness::TrainedSystem* StreamingSessionTest::system_ = nullptr;

TEST_F(StreamingSessionTest, RunFinalizesEveryMessageExactlyOnce) {
  auto messages = Dataset("D2");
  const size_t window = messages.size() / 4;
  stream::StreamSource source(messages, window / 2);
  auto session = MakeSession(window);
  auto stats = session.Run(&source);

  EXPECT_EQ(stats.messages, messages.size());
  EXPECT_EQ(stats.batches, source.num_messages() / source.batch_size() +
                               (messages.size() % source.batch_size() ? 1 : 0));
  EXPECT_EQ(stats.finalized_messages, messages.size());
  EXPECT_EQ(stats.evicted_messages, messages.size() - window);
  EXPECT_GT(stats.peak_memory.total_bytes, 0u);

  // Exactly one finalized entry per stream message, in stream order.
  ASSERT_EQ(session.finalized().size(), messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(session.finalized()[i].message_id, messages[i].id);
  }
  // The live window stayed bounded.
  EXPECT_LE(session.pipeline().tweet_base().size(), window);
}

TEST_F(StreamingSessionTest, UnboundedRunMatchesProcessAll) {
  // With eviction off, the session is just a driver: the finalized stream
  // must equal the full-global predictions of a directly-driven pipeline.
  auto messages = Dataset("D1");
  const size_t batch = 16;
  stream::StreamSource source(messages, batch);
  auto session = MakeSession(0);
  session.Run(&source);

  core::NerGlobalizer pipeline(&system_->bundle,
                               core::DefaultPipelineConfig(system_->bundle));
  pipeline.ProcessAll(messages, batch);
  auto want = pipeline.Predictions(core::PipelineStage::kFullGlobal);

  ASSERT_EQ(session.finalized().size(), messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(session.finalized()[i].message_id, messages[i].id);
    EXPECT_TRUE(session.finalized()[i].spans == want[i]) << "message " << i;
  }
}

TEST_F(StreamingSessionTest, FlushIsIdempotentUntilNextStep) {
  auto messages = Dataset("D1");
  stream::StreamSource source(messages, messages.size());
  auto session = MakeSession(0);
  ASSERT_TRUE(session.Step(&source));
  session.Flush();
  const size_t after_first = session.finalized().size();
  EXPECT_EQ(after_first, messages.size());
  session.Flush();  // no-op: nothing new was processed
  EXPECT_EQ(session.finalized().size(), after_first);
  // Exhausted source: Step does no work and reports it.
  EXPECT_FALSE(session.Step(&source));
  EXPECT_EQ(session.batches_processed(), 1u);
}

TEST_F(StreamingSessionTest, ProcessBatchMatchesSourceDrivenStep) {
  // Push-based delivery (the way serve::SessionManager shard workers feed a
  // session) must be indistinguishable from pulling the same batches
  // through Step: Step(&s) is defined as ProcessBatch(s.NextBatch()).
  auto messages = Dataset("D1");
  const size_t batch_size = 16;
  stream::StreamSource pulled_source(messages, batch_size);
  auto pulled = MakeSession(0);
  pulled.Run(&pulled_source);

  auto pushed = MakeSession(0);
  stream::StreamSource pushed_source(messages, batch_size);
  std::vector<stream::Message> batch;
  while (!(batch = pushed_source.NextBatch()).empty()) {
    ASSERT_TRUE(pushed.ProcessBatch(batch));
  }
  EXPECT_FALSE(pushed.ProcessBatch({}));  // empty batch: end-of-stream no-op
  pushed.Flush();

  EXPECT_EQ(pushed.batches_processed(), pulled.batches_processed());
  EXPECT_EQ(pushed.messages_processed(), pulled.messages_processed());
  ASSERT_EQ(pushed.finalized().size(), pulled.finalized().size());
  for (size_t i = 0; i < pushed.finalized().size(); ++i) {
    EXPECT_TRUE(pushed.finalized()[i] == pulled.finalized()[i])
        << "message " << i;
  }
}

TEST_F(StreamingSessionTest, ExhaustedSourceStepsDoNoWorkUntilResetResumes) {
  // A driver that keeps Stepping an exhausted source must never spin up
  // phantom batches (the StreamSource exhaustion contract); after Reset
  // the same session resumes processing.
  auto messages = Dataset("D1");
  stream::StreamSource source(messages, messages.size());
  auto session = MakeSession(0);
  ASSERT_TRUE(session.Step(&source));
  const size_t batches = session.batches_processed();
  const size_t processed = session.messages_processed();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(session.Step(&source));
  }
  EXPECT_EQ(session.batches_processed(), batches);
  EXPECT_EQ(session.messages_processed(), processed);
  source.Reset();
  EXPECT_TRUE(session.Step(&source));
  EXPECT_EQ(session.batches_processed(), batches + 1);
}

TEST_F(StreamingSessionTest, TakeFinalizedDrainsTheBuffer) {
  auto messages = Dataset("D1");
  const size_t window = messages.size() / 3;
  stream::StreamSource source(messages, window);
  auto session = MakeSession(window);
  std::set<int64_t> seen;
  size_t drained = 0;
  while (session.Step(&source)) {
    for (const auto& f : session.TakeFinalized()) {
      EXPECT_TRUE(seen.insert(f.message_id).second) << f.message_id;
      ++drained;
    }
  }
  session.Flush();
  for (const auto& f : session.TakeFinalized()) {
    EXPECT_TRUE(seen.insert(f.message_id).second) << f.message_id;
    ++drained;
  }
  EXPECT_EQ(drained, messages.size());
  EXPECT_TRUE(session.finalized().empty());
}

TEST_F(StreamingSessionTest, ResetSupportsMultiplePasses) {
  auto messages = Dataset("D1");
  stream::StreamSource source(messages, 32);
  auto first = MakeSession(0);
  auto stats1 = first.Run(&source);
  source.Reset();
  auto second = MakeSession(0);
  auto stats2 = second.Run(&source);
  EXPECT_EQ(stats1.messages, stats2.messages);
  EXPECT_EQ(stats1.batches, stats2.batches);
  ASSERT_EQ(first.finalized().size(), second.finalized().size());
  for (size_t i = 0; i < first.finalized().size(); ++i) {
    EXPECT_TRUE(first.finalized()[i].spans == second.finalized()[i].spans);
  }
}

TEST_F(StreamingSessionTest, CheckpointRestoreMatchesUninterruptedRun) {
  // Run A: the whole stream, uninterrupted. Run B: half the stream, then
  // Checkpoint to disk; a fresh session restores the file and continues.
  // The suspended-and-resumed run must be indistinguishable from A —
  // same finalized stream and bit-identical Predictions at every stage.
  const std::string path =
      std::string(::testing::TempDir()) + "/session_checkpoint.bin";
  auto messages = Dataset("D2");
  const size_t window = messages.size() / 4;
  const size_t batch = window / 2;

  stream::StreamSource source_a(messages, batch);
  auto uninterrupted = MakeSession(window);
  uninterrupted.Run(&source_a);

  stream::StreamSource source_b(messages, batch);
  auto first_half = MakeSession(window);
  const size_t half_batches = (messages.size() / batch) / 2;
  for (size_t i = 0; i < half_batches; ++i) {
    ASSERT_TRUE(first_half.Step(&source_b));
  }
  ASSERT_TRUE(first_half.Checkpoint(path).ok());

  auto resumed = MakeSession(window);
  ASSERT_TRUE(resumed.Restore(path).ok());
  // The restored session continues exactly where the checkpoint left off.
  EXPECT_EQ(resumed.batches_processed(), first_half.batches_processed());
  while (resumed.Step(&source_b)) {
  }
  resumed.Flush();

  ASSERT_EQ(resumed.finalized().size(), uninterrupted.finalized().size());
  for (size_t i = 0; i < resumed.finalized().size(); ++i) {
    EXPECT_EQ(resumed.finalized()[i].message_id,
              uninterrupted.finalized()[i].message_id);
    EXPECT_TRUE(resumed.finalized()[i].spans ==
                uninterrupted.finalized()[i].spans)
        << "message " << i;
  }
  constexpr core::PipelineStage kStages[] = {
      core::PipelineStage::kLocalOnly, core::PipelineStage::kMentionExtraction,
      core::PipelineStage::kLocalEmbeddings, core::PipelineStage::kFullGlobal};
  for (core::PipelineStage stage : kStages) {
    auto want = uninterrupted.pipeline().Predictions(stage);
    auto got = resumed.pipeline().Predictions(stage);
    ASSERT_EQ(got.size(), want.size()) << core::PipelineStageName(stage);
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i])
          << core::PipelineStageName(stage) << " message " << i;
    }
  }
  std::remove(path.c_str());
}

TEST_F(StreamingSessionTest, RestoreRejectsCorruptCheckpoint) {
  const std::string path =
      std::string(::testing::TempDir()) + "/session_corrupt.bin";
  auto messages = Dataset("D1");
  stream::StreamSource source(messages, 32);
  auto session = MakeSession(0);
  ASSERT_TRUE(session.Step(&source));
  ASSERT_TRUE(session.Checkpoint(path).ok());

  // Truncate the checkpoint; Restore must fail cleanly and leave the
  // target session fully usable.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  auto target = MakeSession(0);
  EXPECT_FALSE(target.Restore(path).ok());
  EXPECT_EQ(target.batches_processed(), 0u);  // untouched by the failed load
  EXPECT_TRUE(target.Step(&source));          // still works
  std::remove(path.c_str());
}

TEST_F(StreamingSessionTest, SteadyStateProcessingNeverGrowsTheArena) {
  // The zero-allocation acceptance criterion (ISSUE/DESIGN.md): once a
  // stream has exercised its peak shapes, ProcessBatch performs no heap
  // allocation for activations — i.e. the scratch arena records zero
  // growth events. Two identical passes: pass 1 warms this thread's arena
  // (parallelism 1 keeps all inference inline on the calling thread),
  // pass 2 must leave the growth counter untouched.
  SetParallelism(1);
  auto messages = Dataset("D1");
  const size_t window = messages.size() / 3;
  {
    stream::StreamSource warm(messages, 16);
    auto warm_session = MakeSession(window);
    warm_session.Run(&warm);
  }
  common::ScratchArena& arena = common::ScratchArena::ThreadLocal();
  const uint64_t warm_allocs = arena.heap_allocs();
  EXPECT_GT(warm_allocs, 0u);  // the warm pass did route through the arena

  stream::StreamSource source(messages, 16);
  auto session = MakeSession(window);
  auto stats = session.Run(&source);
  EXPECT_EQ(stats.messages, messages.size());
  EXPECT_EQ(arena.heap_allocs(), warm_allocs)
      << "steady-state ProcessBatch grew the scratch arena";
  SetParallelism(0);
}

TEST_F(StreamingSessionTest, RestoreRejectsMismatchedWindowConfig) {
  const std::string path =
      std::string(::testing::TempDir()) + "/session_config.bin";
  auto messages = Dataset("D1");
  stream::StreamSource source(messages, 32);
  auto session = MakeSession(64);
  ASSERT_TRUE(session.Step(&source));
  ASSERT_TRUE(session.Checkpoint(path).ok());

  auto other_window = MakeSession(128);
  Status s = other_window.Restore(path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nerglob
