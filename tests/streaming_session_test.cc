// StreamingSession: the bounded-memory runtime driving a StreamSource
// through the pipeline, with checkpointed (finalized) predictions.
#include <gtest/gtest.h>

#include <set>

#include "harness/experiment.h"
#include "stream/streaming_session.h"

namespace nerglob {
namespace {

// One small trained system shared by every test in this file (training is
// the expensive part; same miniature configuration as pipeline_test).
class StreamingSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    harness::BuildOptions options;
    options.scale = 0.08;
    options.lm_config.d_model = 32;
    options.lm_config.num_heads = 2;
    options.lm_config.num_layers = 1;
    options.lm_config.subword_buckets = 1024;
    options.max_triplets = 4000;
    options.embedder_epochs = 15;
    options.classifier_epochs = 40;
    options.kb_entities_per_topic_type = 10;
    options.cache_dir = "";  // always train fresh in tests
    system_ = new harness::TrainedSystem(harness::BuildTrainedSystem(options));
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  stream::StreamingSession MakeSession(size_t window_messages = 0) const {
    stream::StreamingSessionConfig config;
    config.pipeline.cluster_threshold = system_->cluster_threshold;
    config.pipeline.window_messages = window_messages;
    return stream::StreamingSession(system_->model.get(),
                                    system_->embedder.get(),
                                    system_->classifier.get(), config);
  }

  std::vector<stream::Message> Dataset(const std::string& name) const {
    data::StreamGenerator gen(&system_->kb_eval);
    return gen.Generate(data::MakeDatasetSpec(name, 0.08));
  }

  static harness::TrainedSystem* system_;
};

harness::TrainedSystem* StreamingSessionTest::system_ = nullptr;

TEST_F(StreamingSessionTest, RunFinalizesEveryMessageExactlyOnce) {
  auto messages = Dataset("D2");
  const size_t window = messages.size() / 4;
  stream::StreamSource source(messages, window / 2);
  auto session = MakeSession(window);
  auto stats = session.Run(&source);

  EXPECT_EQ(stats.messages, messages.size());
  EXPECT_EQ(stats.batches, source.num_messages() / source.batch_size() +
                               (messages.size() % source.batch_size() ? 1 : 0));
  EXPECT_EQ(stats.finalized_messages, messages.size());
  EXPECT_EQ(stats.evicted_messages, messages.size() - window);
  EXPECT_GT(stats.peak_memory.total_bytes, 0u);

  // Exactly one finalized entry per stream message, in stream order.
  ASSERT_EQ(session.finalized().size(), messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(session.finalized()[i].message_id, messages[i].id);
  }
  // The live window stayed bounded.
  EXPECT_LE(session.pipeline().tweet_base().size(), window);
}

TEST_F(StreamingSessionTest, UnboundedRunMatchesProcessAll) {
  // With eviction off, the session is just a driver: the finalized stream
  // must equal the full-global predictions of a directly-driven pipeline.
  auto messages = Dataset("D1");
  const size_t batch = 16;
  stream::StreamSource source(messages, batch);
  auto session = MakeSession(0);
  session.Run(&source);

  core::NerGlobalizerConfig config;
  config.cluster_threshold = system_->cluster_threshold;
  core::NerGlobalizer pipeline(system_->model.get(), system_->embedder.get(),
                               system_->classifier.get(), config);
  pipeline.ProcessAll(messages, batch);
  auto want = pipeline.Predictions(core::PipelineStage::kFullGlobal);

  ASSERT_EQ(session.finalized().size(), messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(session.finalized()[i].message_id, messages[i].id);
    EXPECT_TRUE(session.finalized()[i].spans == want[i]) << "message " << i;
  }
}

TEST_F(StreamingSessionTest, FlushIsIdempotentUntilNextStep) {
  auto messages = Dataset("D1");
  stream::StreamSource source(messages, messages.size());
  auto session = MakeSession(0);
  ASSERT_TRUE(session.Step(&source));
  session.Flush();
  const size_t after_first = session.finalized().size();
  EXPECT_EQ(after_first, messages.size());
  session.Flush();  // no-op: nothing new was processed
  EXPECT_EQ(session.finalized().size(), after_first);
  // Exhausted source: Step does no work and reports it.
  EXPECT_FALSE(session.Step(&source));
  EXPECT_EQ(session.batches_processed(), 1u);
}

TEST_F(StreamingSessionTest, TakeFinalizedDrainsTheBuffer) {
  auto messages = Dataset("D1");
  const size_t window = messages.size() / 3;
  stream::StreamSource source(messages, window);
  auto session = MakeSession(window);
  std::set<int64_t> seen;
  size_t drained = 0;
  while (session.Step(&source)) {
    for (const auto& f : session.TakeFinalized()) {
      EXPECT_TRUE(seen.insert(f.message_id).second) << f.message_id;
      ++drained;
    }
  }
  session.Flush();
  for (const auto& f : session.TakeFinalized()) {
    EXPECT_TRUE(seen.insert(f.message_id).second) << f.message_id;
    ++drained;
  }
  EXPECT_EQ(drained, messages.size());
  EXPECT_TRUE(session.finalized().empty());
}

TEST_F(StreamingSessionTest, ResetSupportsMultiplePasses) {
  auto messages = Dataset("D1");
  stream::StreamSource source(messages, 32);
  auto first = MakeSession(0);
  auto stats1 = first.Run(&source);
  source.Reset();
  auto second = MakeSession(0);
  auto stats2 = second.Run(&source);
  EXPECT_EQ(stats1.messages, stats2.messages);
  EXPECT_EQ(stats1.batches, stats2.batches);
  ASSERT_EQ(first.finalized().size(), second.finalized().size());
  for (size_t i = 0; i < first.finalized().size(); ++i) {
    EXPECT_TRUE(first.finalized()[i].spans == second.finalized()[i].spans);
  }
}

}  // namespace
}  // namespace nerglob
