// serve::SessionManager: the sharded multi-session serving runtime. The
// load-bearing property is determinism under concurrency — N sessions
// multiplexed over one bundle must produce byte-identical output to a
// single-threaded replay — plus the admission-control and lifecycle edges
// (backpressure, drain, shutdown, fleet checkpoint).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "serve/session_manager.h"
#include "stream/message.h"

namespace nerglob {
namespace {

// One small trained system shared by every test in this file (training is
// the expensive part; same miniature configuration as pipeline_test).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new harness::TrainedSystem(
        harness::BuildTrainedSystem(harness::TinyTestOptions()));
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  static serve::SessionManagerConfig ManagerConfig(size_t num_shards,
                                                   size_t window,
                                                   size_t queue_capacity = 0,
                                                   size_t high_watermark = 0,
                                                   size_t low_watermark = 0) {
    serve::SessionManagerConfig config;
    config.num_shards = num_shards;
    config.queue_capacity = queue_capacity;
    config.high_watermark = high_watermark;
    config.low_watermark = low_watermark;
    config.pipeline = core::DefaultPipelineConfig(system_->bundle);
    config.pipeline.window_messages = window;
    return config;
  }

  static std::vector<stream::Message> Dataset(const std::string& name) {
    data::StreamGenerator gen(&system_->kb_eval);
    return gen.Generate(data::MakeDatasetSpec(name, 0.08));
  }

  // The batch sequence a StreamSource would deliver for `messages`.
  static std::vector<std::vector<stream::Message>> Batches(
      const std::vector<stream::Message>& messages, size_t batch_size) {
    stream::StreamSource source(messages, batch_size);
    std::vector<std::vector<stream::Message>> out;
    std::vector<stream::Message> batch;
    while (!(batch = source.NextBatch()).empty()) out.push_back(std::move(batch));
    return out;
  }

  // Ground truth: the same batches through one single-threaded session.
  static std::vector<core::FinalizedMessage> SequentialReplay(
      const std::vector<std::vector<stream::Message>>& batches, size_t window) {
    stream::StreamingSessionConfig config;
    config.pipeline = core::DefaultPipelineConfig(system_->bundle);
    config.pipeline.window_messages = window;
    stream::StreamingSession session(&system_->bundle, config);
    for (const auto& batch : batches) session.ProcessBatch(batch);
    session.Flush();
    return session.TakeFinalized();
  }

  // Distinct per-session stream: the shared dataset rotated by `k`.
  static std::vector<stream::Message> Rotate(std::vector<stream::Message> msgs,
                                             size_t k) {
    std::rotate(msgs.begin(),
                msgs.begin() + static_cast<ptrdiff_t>(k % msgs.size()),
                msgs.end());
    return msgs;
  }

  // Submits every batch in order, retrying on transient overload — the
  // documented client response to Status::Unavailable.
  static void SubmitAll(serve::SessionManager* manager, const std::string& id,
                        const std::vector<std::vector<stream::Message>>& batches) {
    for (const auto& batch : batches) {
      while (true) {
        Status s = manager->Submit(id, batch);
        if (s.ok()) break;
        if (s.code() != StatusCode::kUnavailable) {
          ADD_FAILURE() << "Submit(" << id << "): " << s.ToString();
          return;
        }
        std::this_thread::yield();
      }
    }
  }

  static harness::TrainedSystem* system_;
};

harness::TrainedSystem* ServeTest::system_ = nullptr;

TEST_F(ServeTest, ConcurrentSessionsMatchSequentialReplay) {
  // 6 tenants on 4 shards, submitted from 3 client threads: every
  // session's output must be byte-identical to its own single-threaded
  // replay, no matter how the shards interleave.
  auto messages = Dataset("D2");
  const size_t window = messages.size() / 4;
  const size_t batch_size = 8;
  constexpr size_t kSessions = 6;

  std::vector<std::vector<std::vector<stream::Message>>> per_session;
  for (size_t s = 0; s < kSessions; ++s) {
    per_session.push_back(Batches(Rotate(messages, s * 17 + 1), batch_size));
  }

  serve::SessionManager manager(&system_->bundle, ManagerConfig(4, window));
  EXPECT_EQ(manager.num_shards(), 4u);
  std::vector<std::string> ids;
  for (size_t s = 0; s < kSessions; ++s) {
    ids.push_back("stream-" + std::to_string(s));
    ASSERT_TRUE(manager.Open(ids.back()).ok());
  }

  std::vector<std::thread> clients;
  for (size_t t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      for (size_t s = t; s < kSessions; s += 3) {
        SubmitAll(&manager, ids[s], per_session[s]);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  manager.FlushAll();

  size_t total_batches = 0;
  for (size_t s = 0; s < kSessions; ++s) {
    auto got = manager.TakeFinalized(ids[s]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = SequentialReplay(per_session[s], window);
    ASSERT_EQ(got->size(), want.size()) << ids[s];
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_TRUE((*got)[i] == want[i]) << ids[s] << " message " << i;
    }
    total_batches += per_session[s].size();
  }

  const serve::SessionManagerStats stats = manager.stats();
  EXPECT_EQ(stats.submitted_batches, total_batches);
  EXPECT_EQ(stats.processed_batches, total_batches);
  EXPECT_EQ(stats.processed_messages, kSessions * messages.size());
  EXPECT_EQ(stats.open_sessions, kSessions);
}

TEST_F(ServeTest, BatchedEncodingMatchesUnbatchedByteForByte) {
  // batch_encode on: the cross-session scheduler runs every session's
  // LocalEncode stage inside shared EncodeMany rounds whose composition
  // depends on thread timing — yet each session's finalized stream must
  // stay byte-identical to its own solo, unbatched replay.
  auto messages = Dataset("D2");
  const size_t window = messages.size() / 4;
  const size_t batch_size = 8;
  constexpr size_t kSessions = 5;

  std::vector<std::vector<std::vector<stream::Message>>> per_session;
  for (size_t s = 0; s < kSessions; ++s) {
    per_session.push_back(Batches(Rotate(messages, s * 13 + 3), batch_size));
  }

  serve::SessionManagerConfig config = ManagerConfig(4, window);
  config.batch_encode = true;
  serve::SessionManager manager(&system_->bundle, config);
  ASSERT_TRUE(manager.batch_encode());
  std::vector<std::string> ids;
  for (size_t s = 0; s < kSessions; ++s) {
    ids.push_back("batched-" + std::to_string(s));
    ASSERT_TRUE(manager.Open(ids.back()).ok());
  }

  std::vector<std::thread> clients;
  for (size_t t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      for (size_t s = t; s < kSessions; s += 2) {
        SubmitAll(&manager, ids[s], per_session[s]);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  manager.FlushAll();

  for (size_t s = 0; s < kSessions; ++s) {
    auto got = manager.TakeFinalized(ids[s]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = SequentialReplay(per_session[s], window);
    ASSERT_EQ(got->size(), want.size()) << ids[s];
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_TRUE((*got)[i] == want[i]) << ids[s] << " message " << i;
    }
  }

  const serve::SessionManagerStats stats = manager.stats();
  uint64_t total_batches = 0;
  for (const auto& batches : per_session) total_batches += batches.size();
  EXPECT_EQ(stats.processed_batches, total_batches);
  EXPECT_EQ(stats.processed_messages, kSessions * messages.size());
}

TEST_F(ServeTest, BatchedBackpressureCountsWholeBacklog) {
  // In batched mode a shard's backlog spans three places (queue, being
  // encoded, ready); admission control and QueueDepth must see all of it,
  // and the Pause/Resume/Drain lifecycle must behave as in unbatched mode.
  auto batches = Batches(Dataset("D1"), 4);
  ASSERT_GE(batches.size(), 3u);

  serve::SessionManagerConfig config =
      ManagerConfig(1, 0, /*queue_capacity=*/2);
  config.batch_encode = true;
  serve::SessionManager manager(&system_->bundle, config);
  ASSERT_TRUE(manager.Open("s").ok());
  manager.Pause();

  EXPECT_TRUE(manager.Submit("s", batches[0]).ok());
  EXPECT_TRUE(manager.Submit("s", batches[1]).ok());
  EXPECT_EQ(manager.QueueDepth(0), 2u);
  EXPECT_EQ(manager.Submit("s", batches[2]).code(), StatusCode::kUnavailable);

  manager.Resume();
  manager.Drain();
  EXPECT_EQ(manager.QueueDepth(0), 0u);
  EXPECT_TRUE(manager.Submit("s", batches[2]).ok());
  manager.FlushAll();

  const serve::SessionManagerStats stats = manager.stats();
  EXPECT_EQ(stats.submitted_batches, 3u);
  EXPECT_EQ(stats.processed_batches, 3u);
}

TEST_F(ServeTest, BackpressureRejectsWithUnavailableThenRecovers) {
  // Pause() keeps the worker from draining, so the queue fills
  // deterministically: once the high watermark trips, Submit returns the
  // documented Unavailable status until the backlog drains.
  auto messages = Dataset("D1");
  auto batches = Batches(messages, 4);
  ASSERT_GE(batches.size(), 4u);

  serve::SessionManager manager(
      &system_->bundle,
      ManagerConfig(1, 0, /*queue_capacity=*/2));
  ASSERT_TRUE(manager.Open("s").ok());
  manager.Pause();

  EXPECT_TRUE(manager.Submit("s", batches[0]).ok());
  EXPECT_TRUE(manager.Submit("s", batches[1]).ok());
  EXPECT_EQ(manager.QueueDepth(0), 2u);
  Status overloaded = manager.Submit("s", batches[2]);
  EXPECT_EQ(overloaded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(manager.Submit("s", batches[2]).code(), StatusCode::kUnavailable);

  manager.Resume();
  manager.Drain();
  EXPECT_EQ(manager.QueueDepth(0), 0u);
  // Drain is a barrier, not a shutdown: the backlog is gone, so the shard
  // accepts again and the late batches complete normally.
  EXPECT_TRUE(manager.Submit("s", batches[2]).ok());
  manager.FlushAll();

  const serve::SessionManagerStats stats = manager.stats();
  EXPECT_EQ(stats.submitted_batches, 3u);
  EXPECT_EQ(stats.rejected_batches, 2u);
  EXPECT_EQ(stats.processed_batches, 3u);
}

TEST_F(ServeTest, HighWatermarkTripsBelowHardCapacity) {
  // high_watermark < queue_capacity: admission control rejects at the
  // watermark even though the queue has headroom.
  auto batches = Batches(Dataset("D1"), 4);
  serve::SessionManager manager(
      &system_->bundle,
      ManagerConfig(1, 0, /*queue_capacity=*/4, /*high_watermark=*/2,
                    /*low_watermark=*/0));
  EXPECT_EQ(manager.queue_capacity(), 4u);
  ASSERT_TRUE(manager.Open("s").ok());
  manager.Pause();
  EXPECT_TRUE(manager.Submit("s", batches[0]).ok());
  EXPECT_TRUE(manager.Submit("s", batches[1]).ok());
  EXPECT_EQ(manager.Submit("s", batches[2]).code(), StatusCode::kUnavailable);
  manager.Resume();
  manager.Drain();
  EXPECT_TRUE(manager.Submit("s", batches[2]).ok());
}

TEST_F(ServeTest, ShutdownRejectsNewWorkButKeepsResultsReadable) {
  auto messages = Dataset("D1");
  auto batches = Batches(messages, 8);
  serve::SessionManager manager(&system_->bundle, ManagerConfig(2, 0));
  ASSERT_TRUE(manager.Open("s").ok());
  SubmitAll(&manager, "s", batches);
  manager.Shutdown();
  manager.Shutdown();  // idempotent

  EXPECT_EQ(manager.Submit("s", batches[0]).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.Open("t").code(), StatusCode::kFailedPrecondition);

  // Everything submitted before the shutdown drained and stays readable.
  ASSERT_TRUE(manager.Flush("s").ok());
  auto got = manager.TakeFinalized("s");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), messages.size());
}

TEST_F(ServeTest, CheckpointAllRestoreAllContinuesBitIdentically) {
  // Stop a 3-tenant fleet mid-stream, checkpoint it, restore onto a fresh
  // manager, finish the streams there: output must equal an uninterrupted
  // single-threaded replay — including finalized messages that were
  // sitting uncollected in the sessions at checkpoint time.
  const std::string dir =
      std::string(::testing::TempDir()) + "/serve_fleet_ckpt";
  std::filesystem::remove_all(dir);
  auto messages = Dataset("D2");
  const size_t window = messages.size() / 4;
  constexpr size_t kSessions = 3;

  std::vector<std::vector<std::vector<stream::Message>>> per_session;
  std::vector<std::string> ids;
  for (size_t s = 0; s < kSessions; ++s) {
    per_session.push_back(Batches(Rotate(messages, s * 31 + 7), 8));
    ids.push_back("ckpt-" + std::to_string(s));
  }

  serve::SessionManager first(&system_->bundle, ManagerConfig(2, window));
  for (size_t s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(first.Open(ids[s]).ok());
    const size_t half = per_session[s].size() / 2;
    for (size_t b = 0; b < half; ++b) {
      SubmitAll(&first, ids[s], {per_session[s][b]});
    }
  }
  ASSERT_TRUE(first.CheckpointAll(dir).ok());
  first.Shutdown();

  serve::SessionManager second(&system_->bundle, ManagerConfig(2, window));
  ASSERT_TRUE(second.RestoreAll(dir).ok());
  EXPECT_EQ(second.SessionIds(), ids);
  for (size_t s = 0; s < kSessions; ++s) {
    for (size_t b = per_session[s].size() / 2; b < per_session[s].size(); ++b) {
      SubmitAll(&second, ids[s], {per_session[s][b]});
    }
  }
  second.FlushAll();

  for (size_t s = 0; s < kSessions; ++s) {
    auto got = second.TakeFinalized(ids[s]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = SequentialReplay(per_session[s], window);
    ASSERT_EQ(got->size(), want.size()) << ids[s];
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_TRUE((*got)[i] == want[i]) << ids[s] << " message " << i;
    }
  }

  // Restoring over a clashing id fails without opening any manifest
  // session (two-phase).
  serve::SessionManager third(&system_->bundle, ManagerConfig(2, window));
  ASSERT_TRUE(third.Open(ids[1]).ok());
  Status clash = third.RestoreAll(dir);
  EXPECT_EQ(clash.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(third.SessionIds(), std::vector<std::string>{ids[1]});
  std::filesystem::remove_all(dir);
}

TEST_F(ServeTest, LifecycleErrorsAreTyped) {
  auto batches = Batches(Dataset("D1"), 8);
  serve::SessionManager manager(&system_->bundle, ManagerConfig(2, 0));
  EXPECT_EQ(manager.Submit("nope", batches[0]).code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Close("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Flush("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.TakeFinalized("nope").status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(manager.Open("s").ok());
  EXPECT_EQ(manager.Open("s").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(manager.Submit("s", {}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(manager.Submit("s", batches[0]).ok());
  EXPECT_TRUE(manager.Close("s").ok());
  // Close waited for the queued batch, then dropped the session.
  EXPECT_EQ(manager.Submit("s", batches[0]).code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.stats().open_sessions, 0u);
  EXPECT_EQ(manager.stats().processed_batches, 1u);
}

TEST_F(ServeTest, ShardPinningIsDeterministic) {
  serve::SessionManager manager(&system_->bundle, ManagerConfig(4, 0));
  for (const char* id : {"a", "stream-1", "a-much-longer-stream-name"}) {
    EXPECT_EQ(manager.ShardOf(id), manager.ShardOf(id));
    EXPECT_LT(manager.ShardOf(id), manager.num_shards());
  }
}

}  // namespace
}  // namespace nerglob
