// Tests for the experiment harness: deterministic builds, the trained-
// parameter cache (hit, corruption fallback, option-key sensitivity).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "harness/experiment.h"

namespace nerglob::harness {
namespace {

BuildOptions TinyOptions() {
  BuildOptions options;
  options.scale = 0.03;
  options.lm_config.d_model = 16;
  options.lm_config.num_heads = 2;
  options.lm_config.num_layers = 1;
  options.lm_config.subword_buckets = 512;
  options.lm_epochs = 2;
  options.max_triplets = 1000;
  options.embedder_epochs = 5;
  options.classifier_epochs = 10;
  options.kb_entities_per_topic_type = 6;
  options.cache_dir = "";
  return options;
}

Matrix FirstParam(const TrainedSystem& system) {
  return system.bundle.model().Parameters()[0].value();
}

TEST(HarnessTest, BuildIsDeterministic) {
  auto a = BuildTrainedSystem(TinyOptions());
  auto b = BuildTrainedSystem(TinyOptions());
  EXPECT_EQ(FirstParam(a), FirstParam(b));
  EXPECT_EQ(a.d5_mention_examples, b.d5_mention_examples);
  EXPECT_DOUBLE_EQ(a.classifier_result.validation_macro_f1,
                   b.classifier_result.validation_macro_f1);
}

TEST(HarnessTest, SeedChangesParameters) {
  auto options = TinyOptions();
  auto a = BuildTrainedSystem(options);
  options.seed = 1234;
  auto b = BuildTrainedSystem(options);
  EXPECT_FALSE(FirstParam(a) == FirstParam(b));
}

TEST(HarnessTest, CacheRoundTripAndAux) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/nerglob_cache_test";
  std::filesystem::remove_all(dir);
  auto options = TinyOptions();
  options.cache_dir = dir;
  auto trained = BuildTrainedSystem(options);  // trains + writes cache
  auto cached = BuildTrainedSystem(options);   // must hit the cache
  EXPECT_EQ(FirstParam(trained), FirstParam(cached));
  // Aux metadata survives the cache.
  EXPECT_EQ(cached.d5_mention_examples, trained.d5_mention_examples);
  EXPECT_EQ(cached.embedder_result.dataset_size,
            trained.embedder_result.dataset_size);
  EXPECT_DOUBLE_EQ(cached.classifier_result.validation_macro_f1,
                   trained.classifier_result.validation_macro_f1);
  std::filesystem::remove_all(dir);
}

TEST(HarnessTest, CorruptCacheFallsBackToTraining) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/nerglob_cache_corrupt";
  std::filesystem::remove_all(dir);
  auto options = TinyOptions();
  options.cache_dir = dir;
  auto trained = BuildTrainedSystem(options);
  // Corrupt every cache file.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  auto rebuilt = BuildTrainedSystem(options);  // must retrain, not crash
  EXPECT_EQ(FirstParam(trained), FirstParam(rebuilt));  // deterministic
  std::filesystem::remove_all(dir);
}

TEST(HarnessTest, DifferentOptionsUseDifferentCacheKeys) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/nerglob_cache_keys";
  std::filesystem::remove_all(dir);
  auto options = TinyOptions();
  options.cache_dir = dir;
  BuildTrainedSystem(options);
  size_t files_after_first = 0;
  for ([[maybe_unused]] const auto& e : std::filesystem::directory_iterator(dir)) {
    ++files_after_first;
  }
  options.seed = 4242;
  BuildTrainedSystem(options);
  size_t files_after_second = 0;
  for ([[maybe_unused]] const auto& e : std::filesystem::directory_iterator(dir)) {
    ++files_after_second;
  }
  EXPECT_GT(files_after_second, files_after_first);
  std::filesystem::remove_all(dir);
}

TEST(HarnessTest, DefaultScaleRespectsEnvironment) {
  // Only checks the parsing contract (cannot safely setenv in a test that
  // shares a process): default is 0.25 when the variable is unset/invalid.
  if (std::getenv("NERGLOB_SCALE") == nullptr) {
    EXPECT_DOUBLE_EQ(DefaultScale(), 0.25);
  }
}

}  // namespace
}  // namespace nerglob::harness
