// Tests for the model/session split: the immutable ModelBundle artifact
// (save → load in a "fresh process" → bit-identical predictions), its
// corruption handling, and concurrent StreamingSessions sharing one const
// bundle — the train-once / serve-many contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/model_bundle.h"
#include "core/ner_globalizer.h"
#include "data/generator.h"
#include "harness/experiment.h"
#include "io/tensor_io.h"
#include "stream/streaming_session.h"

namespace nerglob {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// One small trained system shared by every test in this file (training is
// the expensive part).
class ModelBundleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new harness::TrainedSystem(
        harness::BuildTrainedSystem(harness::TinyTestOptions()));
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  std::vector<stream::Message> Dataset(const std::string& name) const {
    data::StreamGenerator gen(&system_->kb_eval);
    return gen.Generate(data::MakeDatasetSpec(name, 0.08));
  }

  static harness::TrainedSystem* system_;
};

harness::TrainedSystem* ModelBundleTest::system_ = nullptr;

constexpr core::PipelineStage kAllStages[] = {
    core::PipelineStage::kLocalOnly, core::PipelineStage::kMentionExtraction,
    core::PipelineStage::kLocalEmbeddings, core::PipelineStage::kFullGlobal};

TEST_F(ModelBundleTest, SaveLoadPreservesPredictionsAtEveryStage) {
  const std::string path = TempPath("bundle_roundtrip.ngb");
  ASSERT_TRUE(system_->bundle.Save(path).ok());
  Result<core::ModelBundle> loaded = core::ModelBundle::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Fingerprint(), system_->bundle.Fingerprint());

  const auto messages = Dataset("D1");
  core::NerGlobalizer original(&system_->bundle,
                               core::DefaultPipelineConfig(system_->bundle));
  core::NerGlobalizer reloaded(&loaded.value(),
                               core::DefaultPipelineConfig(loaded.value()));
  original.ProcessAll(messages, /*batch_size=*/40);
  reloaded.ProcessAll(messages, /*batch_size=*/40);
  for (core::PipelineStage stage : kAllStages) {
    auto a = original.Predictions(stage);
    auto b = reloaded.Predictions(stage);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "stage " << core::PipelineStageName(stage)
                            << ", message " << i;
    }
  }
  std::remove(path.c_str());
}

TEST_F(ModelBundleTest, TrainingStatsSurviveRoundTrip) {
  const std::string path = TempPath("bundle_stats.ngb");
  system_->bundle.set_training_stats(harness::StatsFromSystem(*system_));
  ASSERT_TRUE(system_->bundle.Save(path).ok());
  Result<core::ModelBundle> loaded = core::ModelBundle::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->training_stats(), system_->bundle.training_stats());
  std::remove(path.c_str());
}

TEST_F(ModelBundleTest, MissingFileIsCleanError) {
  Result<core::ModelBundle> loaded =
      core::ModelBundle::Load("/nonexistent/dir/model.ngb");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(ModelBundleTest, GarbageFileIsCleanError) {
  const std::string path = TempPath("bundle_garbage.ngb");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is definitely not a model bundle";
  }
  Result<core::ModelBundle> loaded = core::ModelBundle::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(ModelBundleTest, EveryTruncationIsCleanError) {
  const std::string path = TempPath("bundle_truncated.ngb");
  ASSERT_TRUE(system_->bundle.Save(path).ok());
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Sampled truncation sweep (the file is a few hundred KB; byte-by-byte
  // would dominate test time). Every cut must produce a Status, not a
  // crash or a partially-initialized bundle.
  for (size_t len = 0; len < full.size();
       len += 1 + full.size() / 257) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(len));
    out.close();
    Result<core::ModelBundle> loaded = core::ModelBundle::Load(path);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << len << " not caught";
  }
  std::remove(path.c_str());
}

TEST_F(ModelBundleTest, WrongFormatVersionIsCleanError) {
  const std::string path = TempPath("bundle_version.ngb");
  {
    io::TensorWriter writer(path, /*format_version=*/99);
    ASSERT_TRUE(system_->bundle.Save(&writer).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  Result<core::ModelBundle> loaded = core::ModelBundle::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --- Concurrent sessions over one const bundle -------------------------

class ConcurrentSessions : public ModelBundleTest {};

TEST_F(ConcurrentSessions, SessionsShareOneBundleAndMatchSerialRuns) {
  const core::ModelBundle& bundle = system_->bundle;  // shared, const
  const std::vector<std::string> datasets = {"D1", "D2", "D3"};

  // Serial reference: one session per stream, run back to back.
  std::vector<std::vector<std::vector<text::EntitySpan>>> want;
  for (const auto& name : datasets) {
    stream::StreamingSessionConfig config;
    config.pipeline = core::DefaultPipelineConfig(bundle);
    stream::StreamingSession session(&bundle, config);
    auto messages = Dataset(name);
    stream::StreamSource source(messages, /*batch_size=*/40);
    session.Run(&source);
    want.push_back(session.pipeline().Predictions());
  }

  // Concurrent: same three streams, one thread each, same shared bundle.
  std::vector<std::vector<std::vector<text::EntitySpan>>> got(datasets.size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < datasets.size(); ++i) {
    threads.emplace_back([&, i] {
      stream::StreamingSessionConfig config;
      config.pipeline = core::DefaultPipelineConfig(bundle);
      stream::StreamingSession session(&bundle, config);
      auto messages = Dataset(datasets[i]);
      stream::StreamSource source(messages, /*batch_size=*/40);
      session.Run(&source);
      got[i] = session.pipeline().Predictions();
    });
  }
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < datasets.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << datasets[i];
    for (size_t m = 0; m < want[i].size(); ++m) {
      EXPECT_EQ(got[i][m], want[i][m]) << datasets[i] << " message " << m;
    }
  }
}

}  // namespace
}  // namespace nerglob
