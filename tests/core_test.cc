#include <gtest/gtest.h>

#include <cmath>

#include "nn/losses.h"

#include "core/entity_classifier.h"
#include "core/local_ner.h"
#include "core/ner_globalizer.h"
#include "core/phrase_embedder.h"
#include "core/training.h"
#include "nn/optimizer.h"
#include "text/tokenizer.h"

namespace nerglob::core {
namespace {

using text::EntityType;

stream::Message MakeMsg(int64_t id, const std::string& txt) {
  stream::Message m;
  m.id = id;
  m.text = txt;
  m.tokens = text::Tokenizer().Tokenize(txt);
  return m;
}

TEST(SpanHelpersTest, MatchTokensAndSurface) {
  auto m = MakeMsg(1, "Gov Andy Beshear in #Kentucky");
  auto toks = SpanMatchTokens(m, 1, 3);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "andy");
  EXPECT_EQ(toks[1], "beshear");
  EXPECT_EQ(SpanSurfaceString(m, 1, 3), "andy beshear");
  EXPECT_EQ(SpanSurfaceString(m, 4, 5), "kentucky");  // hashtag stripped
}

TEST(PhraseEmbedderTest, OutputShapeAndDeterminism) {
  Rng rng(1);
  PhraseEmbedder embedder(8, &rng);
  Matrix tokens = Matrix::Randn(5, 8, 1.0f, &rng);
  Matrix a = embedder.Embed(tokens, 1, 3);
  Matrix b = embedder.Embed(tokens, 1, 3);
  EXPECT_EQ(a.rows(), 1u);
  EXPECT_EQ(a.cols(), 8u);
  EXPECT_EQ(a, b);
}

TEST(PhraseEmbedderTest, PoolingIsMeanOverSpan) {
  // With normalize off and identity-free dense layer we can't check exact
  // values, but a single-token span must differ from a two-token span that
  // includes a very different second token.
  Rng rng(2);
  PhraseEmbedder embedder(4, &rng, /*normalize=*/true);
  Matrix tokens = Matrix::FromRows(
      {{1, 0, 0, 0}, {0, 40, 0, 0}, {0, 0, 1, 0}});
  Matrix one = embedder.Embed(tokens, 0, 1);
  Matrix two = embedder.Embed(tokens, 0, 2);
  EXPECT_GT(CosineDistance(one, two), 1e-3f);
}

TEST(PhraseEmbedderTest, NormalizationAblationChangesOutput) {
  Rng rng1(3), rng2(3);
  PhraseEmbedder with_norm(4, &rng1, /*normalize=*/true);
  PhraseEmbedder without_norm(4, &rng2, /*normalize=*/false);
  Matrix tokens = Matrix::FromRows({{5, 5, 5, 5}});
  Matrix a = with_norm.Embed(tokens, 0, 1);
  Matrix b = without_norm.Embed(tokens, 0, 1);
  // Same initial weights (same seed), different pipelines -> different out.
  EXPECT_GT(CosineDistance(a, b) + std::fabs(a.FrobeniusNorm() - b.FrobeniusNorm()),
            1e-4f);
}

TEST(PhraseEmbedderTest, TrainableViaTripletLoss) {
  // Two "contexts" (orthogonal token embeddings) with the same surface:
  // training must push their phrase embeddings apart.
  Rng rng(4);
  PhraseEmbedder embedder(4, &rng);
  Matrix ctx_a = Matrix::FromRows({{1, 0.1f, 0, 0}});
  Matrix ctx_a2 = Matrix::FromRows({{0.9f, 0, 0.1f, 0}});
  Matrix ctx_b = Matrix::FromRows({{0, 0.1f, 1, 0}});
  nn::Adam opt(embedder.Parameters(), 0.05f);
  for (int i = 0; i < 60; ++i) {
    opt.ZeroGrad();
    ag::Var loss = nn::TripletCosineLoss(embedder.Forward(ctx_a, 0, 1),
                                         embedder.Forward(ctx_a2, 0, 1),
                                         embedder.Forward(ctx_b, 0, 1), 1.0f);
    loss.Backward();
    opt.Step();
  }
  const float d_pos = CosineDistance(embedder.Embed(ctx_a, 0, 1),
                                     embedder.Embed(ctx_a2, 0, 1));
  const float d_neg = CosineDistance(embedder.Embed(ctx_a, 0, 1),
                                     embedder.Embed(ctx_b, 0, 1));
  EXPECT_LT(d_pos + 0.3f, d_neg);
}

TEST(EntityClassifierTest, PredictionShapeAndConfidence) {
  Rng rng(5);
  EntityClassifier clf(6, 8, &rng);
  Matrix members = Matrix::Randn(4, 6, 1.0f, &rng);
  auto pred = clf.Predict(members);
  EXPECT_GE(pred.cls, 0);
  EXPECT_LT(pred.cls, kNumClassifierClasses);
  EXPECT_GT(pred.confidence, 0.0f);
  EXPECT_LE(pred.confidence, 1.0f);
  Matrix global = clf.GlobalEmbedding(members);
  EXPECT_EQ(global.rows(), 1u);
  EXPECT_EQ(global.cols(), 6u);
}

TEST(EntityClassifierTest, PooledEmbeddingIsConvexCombination) {
  // Attention weights are a softmax: the global embedding must lie inside
  // the per-coordinate envelope of the member embeddings.
  Rng rng(6);
  EntityClassifier clf(3, 4, &rng);
  Matrix members = Matrix::FromRows({{0, 0, 0}, {1, 2, 3}});
  Matrix global = clf.GlobalEmbedding(members);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_GE(global.At(0, c), -1e-5f);
    EXPECT_LE(global.At(0, c), members.At(1, c) + 1e-5f);
  }
}

TEST(EntityClassifierTest, LearnsSeparableClusters) {
  // Class 0 clusters live along e1, class 4 (non-entity) along e2.
  Rng rng(7);
  EntityClassifier clf(4, 8, &rng);
  nn::Adam opt(clf.Parameters(), 0.02f);
  auto make_cluster = [&](float x, float y, size_t n) {
    Matrix m(n, 4);
    for (size_t i = 0; i < n; ++i) {
      m.At(i, 0) = x + 0.05f * static_cast<float>(rng.NextGaussian());
      m.At(i, 1) = y + 0.05f * static_cast<float>(rng.NextGaussian());
    }
    return m;
  };
  for (int epoch = 0; epoch < 120; ++epoch) {
    opt.ZeroGrad();
    ag::Var l0 = ag::CrossEntropyWithLogits(
        clf.ForwardLogits(make_cluster(1, 0, 1 + epoch % 3)), {0});
    ag::Var l1 = ag::CrossEntropyWithLogits(
        clf.ForwardLogits(make_cluster(0, 1, 1 + epoch % 2)), {kNonEntityClass});
    ag::Var loss = ag::ScalarMul(ag::Add(l0, l1), 0.5f);
    loss.Backward();
    opt.Step();
  }
  EXPECT_EQ(clf.Predict(make_cluster(1, 0, 4)).cls, 0);
  EXPECT_EQ(clf.Predict(make_cluster(0, 1, 4)).cls, kNonEntityClass);
}

class LocalNerTest : public ::testing::Test {
 protected:
  LocalNerTest() {
    lm::MicroBertConfig cfg;
    cfg.d_model = 16;
    cfg.num_heads = 2;
    cfg.num_layers = 1;
    cfg.max_seq_len = 16;
    cfg.subword_buckets = 256;
    cfg.dropout = 0.0f;
    model_ = std::make_unique<lm::MicroBert>(cfg, 11);
    // Teach it one pattern so spans are non-empty deterministically.
    std::vector<lm::LabeledSentence> train;
    for (const char* s : {"omega speaks now", "we saw omega", "omega wins"}) {
      lm::LabeledSentence ex;
      ex.tokens = text::Tokenizer().Tokenize(s);
      ex.bio.assign(ex.tokens.size(), text::kBioOutside);
      for (size_t t = 0; t < ex.tokens.size(); ++t) {
        if (ex.tokens[t].match == "omega") {
          ex.bio[t] = text::BioBeginLabel(EntityType::kPerson);
        }
      }
      train.push_back(ex);
    }
    lm::FineTuneOptions opt;
    opt.epochs = 25;
    opt.batch_size = 3;
    opt.lr = 5e-3f;
    lm::FineTuneForNer(model_.get(), train, opt);
  }
  std::unique_ptr<lm::MicroBert> model_;
};

TEST_F(LocalNerTest, StoresRecordsAndSeedsTrie) {
  LocalNer local(model_.get());
  stream::TweetBase base;
  trie::CandidateTrie trie;
  auto outs = local.ProcessBatch({MakeMsg(1, "omega speaks now")}, &base, &trie);
  ASSERT_EQ(outs.size(), 1u);
  ASSERT_NE(base.Find(1), nullptr);
  EXPECT_EQ(base.Find(1)->token_embeddings.rows(), 3u);
  EXPECT_EQ(base.Find(1)->local_bio.size(), 3u);
  ASSERT_FALSE(outs[0].local_spans.empty());
  EXPECT_TRUE(trie.Contains({"omega"}));
  ASSERT_EQ(outs[0].new_surfaces.size(), 1u);
  EXPECT_EQ(outs[0].new_surfaces[0], "omega");
}

TEST_F(LocalNerTest, DuplicateSurfaceNotReRegistered) {
  LocalNer local(model_.get());
  stream::TweetBase base;
  trie::CandidateTrie trie;
  auto outs = local.ProcessBatch(
      {MakeMsg(1, "omega speaks now"), MakeMsg(2, "we saw omega")}, &base, &trie);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(outs[0].new_surfaces.size() + outs[1].new_surfaces.size(), 1u);
}

TEST(TrainingTest, CollectMentionExamplesLabels) {
  // A deterministic fake setup: model untrained, so Local NER may find
  // nothing — instead verify labeling logic with a model trained quickly.
  lm::MicroBertConfig cfg;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.max_seq_len = 16;
  cfg.subword_buckets = 256;
  cfg.dropout = 0.0f;
  lm::MicroBert model(cfg, 13);
  std::vector<lm::LabeledSentence> train;
  for (const char* s : {"zeta is here", "zeta arrived", "i like zeta"}) {
    lm::LabeledSentence ex;
    ex.tokens = text::Tokenizer().Tokenize(s);
    ex.bio.assign(ex.tokens.size(), text::kBioOutside);
    for (size_t t = 0; t < ex.tokens.size(); ++t) {
      if (ex.tokens[t].match == "zeta") {
        ex.bio[t] = text::BioBeginLabel(EntityType::kLocation);
      }
    }
    train.push_back(ex);
  }
  lm::FineTuneOptions opt;
  opt.epochs = 25;
  opt.batch_size = 3;
  opt.lr = 5e-3f;
  lm::FineTuneForNer(&model, train, opt);

  // Labeled stream: "zeta" is gold LOC in msg 0; in msg 1 it appears where
  // gold says nothing -> the collected example there must be non-entity...
  // (msg 1 text uses zeta with no gold span: simulates a false positive).
  auto m0 = MakeMsg(0, "zeta is here");
  m0.gold_spans = {{0, 1, EntityType::kLocation}};
  auto m1 = MakeMsg(1, "zeta arrived");
  // no gold spans on m1
  auto examples = CollectMentionExamples({m0, m1}, model);
  bool saw_entity = false, saw_non_entity = false;
  for (const auto& ex : examples) {
    if (ex.surface == "zeta" && ex.label == static_cast<int>(EntityType::kLocation)) {
      saw_entity = true;
    }
    if (ex.surface == "zeta" && ex.label == kNonEntityClass) saw_non_entity = true;
    EXPECT_GT(ex.token_embeddings.rows(), 0u);
    EXPECT_EQ(ex.token_embeddings.cols(), 16u);
  }
  EXPECT_TRUE(saw_entity);
  EXPECT_TRUE(saw_non_entity);
}

TEST(PipelineStageTest, Names) {
  EXPECT_STREQ(PipelineStageName(PipelineStage::kLocalOnly), "local-only");
  EXPECT_STREQ(PipelineStageName(PipelineStage::kFullGlobal), "full-global");
}

}  // namespace
}  // namespace nerglob::core
