#include <gtest/gtest.h>

#include <sstream>

#include "data/conll_io.h"
#include "data/generator.h"

namespace nerglob::data {
namespace {

using text::EntityType;

constexpr char kSample[] =
    "Andy\tB-PER\n"
    "Beshear\tI-PER\n"
    "shuts\tO\n"
    "schools\tO\n"
    "\n"
    "#Coronavirus\tB-MISC\n"
    "in\tO\n"
    "Italy\tB-LOC\n";

TEST(ConllIoTest, ParsesSentencesAndSpans) {
  std::istringstream in(kSample);
  auto result = ReadConll(in);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& msgs = result.value();
  ASSERT_EQ(msgs.size(), 2u);
  ASSERT_EQ(msgs[0].tokens.size(), 4u);
  ASSERT_EQ(msgs[0].gold_spans.size(), 1u);
  EXPECT_EQ(msgs[0].gold_spans[0].begin_token, 0u);
  EXPECT_EQ(msgs[0].gold_spans[0].end_token, 2u);
  EXPECT_EQ(msgs[0].gold_spans[0].type, EntityType::kPerson);
  ASSERT_EQ(msgs[1].gold_spans.size(), 2u);
  EXPECT_EQ(msgs[1].gold_spans[0].type, EntityType::kMisc);
  EXPECT_EQ(msgs[1].gold_spans[1].type, EntityType::kLocation);
}

TEST(ConllIoTest, MatchFormStripsHashtagAndLowercases) {
  std::istringstream in(kSample);
  auto result = ReadConll(in);
  ASSERT_TRUE(result.ok());
  const auto& tok = result.value()[1].tokens[0];
  EXPECT_EQ(tok.text, "#Coronavirus");
  EXPECT_EQ(tok.match, "coronavirus");
  EXPECT_EQ(result.value()[0].tokens[0].match, "andy");
}

TEST(ConllIoTest, UnknownFineTypesFoldIntoMisc) {
  std::istringstream in(
      "Fireflies\tB-creative-work\n"
      "iPhone\tB-product\n");
  auto result = ReadConll(in);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value()[0].gold_spans.size(), 2u);
  EXPECT_EQ(result.value()[0].gold_spans[0].type, EntityType::kMisc);
  EXPECT_EQ(result.value()[0].gold_spans[1].type, EntityType::kMisc);
}

TEST(ConllIoTest, AlternativeTypeNames) {
  std::istringstream in(
      "NYC\tB-geo-loc\n"
      "Apple\tB-corporation\n"
      "Bob\tB-person\n");
  auto result = ReadConll(in);
  ASSERT_TRUE(result.ok());
  const auto& spans = result.value()[0].gold_spans;
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].type, EntityType::kLocation);
  EXPECT_EQ(spans[1].type, EntityType::kOrganization);
  EXPECT_EQ(spans[2].type, EntityType::kPerson);
}

TEST(ConllIoTest, BadLabelIsError) {
  std::istringstream in("word\tNOT_A_LABEL\n");
  auto result = ReadConll(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConllIoTest, MissingLabelIsError) {
  std::istringstream in("loneword\n");
  auto result = ReadConll(in);
  ASSERT_FALSE(result.ok());
}

TEST(ConllIoTest, EmptyInputGivesNoMessages) {
  std::istringstream in("\n\n\n");
  auto result = ReadConll(in);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(ConllIoTest, MissingFileIsIoError) {
  auto result = ReadConllFile("/nonexistent/conll.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(ConllIoTest, WriteReadRoundTrip) {
  // Generate a dataset, write CoNLL, read it back: spans must survive.
  KnowledgeBase kb = KnowledgeBase::BuildStandard(5, 3);
  StreamGenerator gen(&kb);
  auto msgs = gen.Generate(MakeDatasetSpec("D1", 0.05));
  std::vector<std::vector<text::EntitySpan>> gold;
  for (const auto& m : msgs) gold.push_back(m.gold_spans);

  std::stringstream buffer;
  ASSERT_TRUE(WriteConll(buffer, msgs, gold).ok());
  auto parsed = ReadConll(buffer);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), msgs.size());
  for (size_t m = 0; m < msgs.size(); ++m) {
    EXPECT_EQ(parsed.value()[m].tokens.size(), msgs[m].tokens.size());
    EXPECT_EQ(parsed.value()[m].gold_spans, msgs[m].gold_spans);
  }
}

TEST(ConllIoTest, WriteRejectsMismatchedSizes) {
  stream::Message m;
  std::stringstream buffer;
  Status s = WriteConll(buffer, {m}, {});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace nerglob::data
