// Property-based tests: randomized sweeps (parameterized over seeds)
// checking invariants against brute-force oracles — the CRF against exact
// enumeration, the CTrie scan against a greedy reference implementation,
// BIO round-trips, clustering monotonicity, loss bounds, and autograd
// consistency on composite expressions.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradient_check.h"
#include "cluster/agglomerative.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "nn/crf.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "text/bio.h"
#include "text/tokenizer.h"
#include "trie/candidate_trie.h"

namespace nerglob {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

// ---------------------------------------------------------------------------
// CRF vs exact enumeration.

float BruteForceLogZ(const Matrix& emissions, const Matrix& trans,
                     const Matrix& start, const Matrix& end_scores) {
  const size_t t_len = emissions.rows();
  const size_t num_tags = emissions.cols();
  std::vector<int> tags(t_len, 0);
  double max_score = -1e30;
  std::vector<double> scores;
  // Enumerate all num_tags^t_len sequences.
  size_t total = 1;
  for (size_t t = 0; t < t_len; ++t) total *= num_tags;
  scores.reserve(total);
  for (size_t code = 0; code < total; ++code) {
    size_t c = code;
    for (size_t t = 0; t < t_len; ++t) {
      tags[t] = static_cast<int>(c % num_tags);
      c /= num_tags;
    }
    double s = start.At(0, static_cast<size_t>(tags[0])) +
               end_scores.At(0, static_cast<size_t>(tags[t_len - 1]));
    for (size_t t = 0; t < t_len; ++t) s += emissions.At(t, static_cast<size_t>(tags[t]));
    for (size_t t = 1; t < t_len; ++t) {
      s += trans.At(static_cast<size_t>(tags[t - 1]), static_cast<size_t>(tags[t]));
    }
    scores.push_back(s);
    max_score = std::max(max_score, s);
  }
  double acc = 0.0;
  for (double s : scores) acc += std::exp(s - max_score);
  return static_cast<float>(max_score + std::log(acc));
}

TEST_P(SeededProperty, CrfNllMatchesBruteForceEnumeration) {
  Rng rng(GetParam());
  const size_t num_tags = 3, t_len = 4;
  nn::LinearChainCrf crf(num_tags, &rng);
  Matrix emissions = Matrix::Randn(t_len, num_tags, 1.0f, &rng);
  std::vector<int> gold(t_len);
  for (auto& g : gold) g = static_cast<int>(rng.NextBelow(num_tags));

  const Matrix& trans = crf.Parameters()[0].value();
  const Matrix& start = crf.Parameters()[1].value();
  const Matrix& end_scores = crf.Parameters()[2].value();
  const float log_z = BruteForceLogZ(emissions, trans, start, end_scores);
  float gold_score = start.At(0, static_cast<size_t>(gold[0])) +
                     end_scores.At(0, static_cast<size_t>(gold[t_len - 1]));
  for (size_t t = 0; t < t_len; ++t) gold_score += emissions.At(t, static_cast<size_t>(gold[t]));
  for (size_t t = 1; t < t_len; ++t) {
    gold_score += trans.At(static_cast<size_t>(gold[t - 1]), static_cast<size_t>(gold[t]));
  }

  ag::Var nll = crf.NegLogLikelihood(ag::Constant(emissions), gold);
  EXPECT_NEAR(nll.value().At(0, 0), log_z - gold_score, 1e-3f);
}

TEST_P(SeededProperty, CrfViterbiMatchesBruteForceArgmax) {
  Rng rng(GetParam() * 7 + 1);
  const size_t num_tags = 3, t_len = 4;
  nn::LinearChainCrf crf(num_tags, &rng);
  Matrix emissions = Matrix::Randn(t_len, num_tags, 1.5f, &rng);
  const Matrix& trans = crf.Parameters()[0].value();
  const Matrix& start = crf.Parameters()[1].value();
  const Matrix& end_scores = crf.Parameters()[2].value();

  // Brute-force best sequence.
  size_t total = 1;
  for (size_t t = 0; t < t_len; ++t) total *= num_tags;
  double best = -1e30;
  std::vector<int> best_tags(t_len, 0), tags(t_len, 0);
  for (size_t code = 0; code < total; ++code) {
    size_t c = code;
    for (size_t t = 0; t < t_len; ++t) {
      tags[t] = static_cast<int>(c % num_tags);
      c /= num_tags;
    }
    double s = start.At(0, static_cast<size_t>(tags[0])) +
               end_scores.At(0, static_cast<size_t>(tags[t_len - 1]));
    for (size_t t = 0; t < t_len; ++t) s += emissions.At(t, static_cast<size_t>(tags[t]));
    for (size_t t = 1; t < t_len; ++t) {
      s += trans.At(static_cast<size_t>(tags[t - 1]), static_cast<size_t>(tags[t]));
    }
    if (s > best) {
      best = s;
      best_tags = tags;
    }
  }
  EXPECT_EQ(crf.Decode(emissions), best_tags);
}

// ---------------------------------------------------------------------------
// CTrie scan vs greedy reference.

std::vector<trie::TokenSpan> GreedyOracle(
    const std::vector<std::vector<std::string>>& surfaces,
    const std::vector<std::string>& sentence, size_t max_span) {
  auto is_surface = [&](size_t begin, size_t end) {
    std::vector<std::string> cand(sentence.begin() + static_cast<std::ptrdiff_t>(begin),
                                  sentence.begin() + static_cast<std::ptrdiff_t>(end));
    for (const auto& s : surfaces) {
      if (s == cand) return true;
    }
    return false;
  };
  std::vector<trie::TokenSpan> out;
  size_t i = 0;
  while (i < sentence.size()) {
    size_t best_end = 0;
    const size_t limit = std::min(sentence.size(), i + max_span);
    for (size_t j = i + 1; j <= limit; ++j) {
      if (is_surface(i, j)) best_end = j;
      // Note: the oracle (unlike the trie) checks every prefix length; the
      // trie stops at the first dead end. Align by only allowing matches
      // whose every prefix is a path — equivalently, build candidates so
      // dead ends cannot hide longer matches (see surface construction).
    }
    if (best_end > 0) {
      out.push_back({i, best_end});
      i = best_end;
    } else {
      ++i;
    }
  }
  return out;
}

TEST_P(SeededProperty, TrieScanMatchesGreedyOracle) {
  Rng rng(GetParam() * 13 + 5);
  const std::vector<std::string> alphabet = {"a", "b", "c", "d"};
  // Prefix-closed surface set: every multi-token surface's prefixes are
  // also surfaces, which makes the trie's dead-end behaviour identical to
  // the oracle's exhaustive prefix check.
  std::vector<std::vector<std::string>> surfaces;
  trie::CandidateTrie trie;
  for (int k = 0; k < 6; ++k) {
    std::vector<std::string> surface;
    const size_t len = 1 + rng.NextBelow(3);
    for (size_t t = 0; t < len; ++t) {
      surface.push_back(alphabet[rng.NextBelow(alphabet.size())]);
      surfaces.push_back(surface);
      trie.Insert(surface);
    }
  }
  for (int round = 0; round < 20; ++round) {
    std::vector<std::string> sentence;
    const size_t len = 1 + rng.NextBelow(12);
    for (size_t t = 0; t < len; ++t) {
      sentence.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    auto got = trie.FindLongestMatches(sentence, 4);
    auto want = GreedyOracle(surfaces, sentence, 4);
    EXPECT_EQ(got, want);
  }
}

// ---------------------------------------------------------------------------
// BIO round-trip.

TEST_P(SeededProperty, BioEncodeDecodeRoundTrip) {
  Rng rng(GetParam() * 17 + 3);
  for (int round = 0; round < 50; ++round) {
    const size_t len = 1 + rng.NextBelow(20);
    // Random non-overlapping typed spans.
    std::vector<text::EntitySpan> spans;
    size_t cursor = 0;
    while (cursor < len) {
      if (rng.NextBernoulli(0.4)) {
        const size_t span_len = 1 + rng.NextBelow(std::min<size_t>(3, len - cursor));
        spans.push_back({cursor, cursor + span_len,
                         static_cast<text::EntityType>(rng.NextBelow(4))});
        cursor += span_len;
      }
      ++cursor;
    }
    auto labels = text::EncodeBio(len, spans);
    auto decoded = text::DecodeBio(labels);
    EXPECT_EQ(decoded, spans);
  }
}

// ---------------------------------------------------------------------------
// Tokenizer invariants.

TEST_P(SeededProperty, TokenizerOffsetsAreConsistent) {
  Rng rng(GetParam() * 19 + 11);
  const std::vector<std::string> pieces = {
      "hello", "WORLD", "#Covid19", "@user",   "https://t.co/x1",
      ":)",    "123",   "don't",    "so!!",    "a,b",
      "U.S.",  "covid", "...",      "RT",      "yeah:("};
  text::Tokenizer tokenizer;
  for (int round = 0; round < 30; ++round) {
    std::string msg;
    const size_t n = 1 + rng.NextBelow(8);
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) msg += ' ';
      msg += pieces[rng.NextBelow(pieces.size())];
    }
    auto tokens = tokenizer.Tokenize(msg);
    size_t prev_end = 0;
    for (const auto& tok : tokens) {
      EXPECT_LE(prev_end, tok.begin);
      EXPECT_LT(tok.begin, tok.end);
      EXPECT_LE(tok.end, msg.size());
      EXPECT_EQ(msg.substr(tok.begin, tok.end - tok.begin), tok.text);
      EXPECT_EQ(tok.lower, ToLowerAscii(tok.text));
      prev_end = tok.end;
    }
    // Determinism.
    auto again = tokenizer.Tokenize(msg);
    ASSERT_EQ(again.size(), tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      EXPECT_EQ(again[i].text, tokens[i].text);
    }
  }
}

// ---------------------------------------------------------------------------
// Clustering invariants.

TEST_P(SeededProperty, ClusterCountMonotoneInThreshold) {
  Rng rng(GetParam() * 23 + 7);
  Matrix embs = Matrix::Randn(14, 6, 1.0f, &rng);
  size_t prev = SIZE_MAX;
  for (float threshold : {0.0f, 0.2f, 0.4f, 0.6f, 0.8f, 0.95f}) {
    auto result = cluster::AgglomerativeClusterCosine(embs, threshold);
    EXPECT_LE(result.num_clusters, prev);
    prev = result.num_clusters;
    // Assignment validity.
    for (int a : result.assignments) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, static_cast<int>(result.num_clusters));
    }
  }
}

// ---------------------------------------------------------------------------
// Loss bounds.

TEST_P(SeededProperty, TripletLossIsNonNegativeAndBounded) {
  Rng rng(GetParam() * 29 + 1);
  for (int round = 0; round < 20; ++round) {
    ag::Var a = ag::Constant(Matrix::Randn(1, 6, 1.0f, &rng));
    ag::Var p = ag::Constant(Matrix::Randn(1, 6, 1.0f, &rng));
    ag::Var n = ag::Constant(Matrix::Randn(1, 6, 1.0f, &rng));
    const float loss = nn::TripletCosineLoss(a, p, n, 1.0f).value().At(0, 0);
    EXPECT_GE(loss, 0.0f);
    // Cosine distances lie in [0,2] so the hinge is bounded by 2 + margin.
    EXPECT_LE(loss, 3.0f);
  }
}

TEST_P(SeededProperty, SoftNnLossIsNonNegative) {
  Rng rng(GetParam() * 31 + 9);
  for (int round = 0; round < 10; ++round) {
    const size_t b = 4 + rng.NextBelow(5);
    ag::Var x(Matrix::Randn(b, 5, 1.0f, &rng), false);
    std::vector<int> labels(b);
    for (auto& l : labels) l = static_cast<int>(rng.NextBelow(2));
    // Guarantee at least one positive pair.
    labels[0] = labels[1] = 0;
    const float loss =
        nn::SoftNearestNeighborLoss(x, labels, 0.5f).value().At(0, 0);
    EXPECT_GE(loss, -1e-5f);
    EXPECT_TRUE(std::isfinite(loss));
  }
}

// ---------------------------------------------------------------------------
// Autograd: composite expression gradient checks across seeds.

TEST_P(SeededProperty, CompositeExpressionGradients) {
  Rng rng(GetParam() * 37 + 2);
  ag::Var w1(Matrix::Randn(4, 6, 0.5f, &rng), true);
  ag::Var w2(Matrix::Randn(6, 3, 0.5f, &rng), true);
  ag::Var gamma(Matrix(1, 6, 1.0f), true);
  ag::Var beta(Matrix(1, 6), true);
  ag::Var x = ag::Constant(Matrix::Randn(2, 4, 1.0f, &rng));
  auto loss = [&] {
    ag::Var h = ag::LayerNormRows(ag::MatMul(x, w1), gamma, beta);
    ag::Var n = ag::L2NormalizeRows(ag::Tanh(h));
    return ag::CrossEntropyWithLogits(ag::MatMul(n, w2), {0, 2});
  };
  EXPECT_LT(ag::MaxGradientError(loss, w1), 3e-2f);
  EXPECT_LT(ag::MaxGradientError(loss, w2), 3e-2f);
  EXPECT_LT(ag::MaxGradientError(loss, gamma), 3e-2f);
}

// ---------------------------------------------------------------------------
// L2 normalization invariant.

TEST_P(SeededProperty, L2NormalizedRowsHaveUnitNorm) {
  Rng rng(GetParam() * 41 + 6);
  ag::Var x = ag::Constant(Matrix::Randn(5, 7, 2.0f, &rng));
  Matrix norms = RowL2Norms(ag::L2NormalizeRows(x).value());
  for (size_t r = 0; r < norms.rows(); ++r) {
    EXPECT_NEAR(norms.At(r, 0), 1.0f, 1e-4f);
  }
}

// ---------------------------------------------------------------------------
// Optimizer determinism: identical seeds -> identical trajectories.

TEST_P(SeededProperty, AdamTrajectoryIsDeterministic) {
  auto run = [&](uint64_t seed) {
    Rng rng(seed);
    ag::Var w(Matrix::Randn(3, 3, 0.5f, &rng), true);
    nn::Adam opt({w}, 0.01f);
    for (int i = 0; i < 10; ++i) {
      opt.ZeroGrad();
      ag::Var x = ag::Constant(Matrix::Randn(2, 3, 1.0f, &rng));
      ag::Var loss = ag::MeanAll(ag::Mul(ag::MatMul(x, w), ag::MatMul(x, w)));
      loss.Backward();
      opt.Step();
    }
    return w.value();
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

}  // namespace
}  // namespace nerglob
