// Integration tests: a small trained system exercised end-to-end through
// the NerGlobalizer pipeline, including the incremental/continuous
// execution contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>

#include "common/metrics.h"
#include "common/string_util.h"
#include "harness/experiment.h"
#include "text/tokenizer.h"

namespace nerglob {
namespace {

// One small trained system shared by every test in this file (training is
// the expensive part; ~10s at scale 0.08).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new harness::TrainedSystem(
        harness::BuildTrainedSystem(harness::TinyTestOptions()));
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  core::NerGlobalizer MakePipeline(
      size_t window_messages = 0, bool incremental_refresh = true) const {
    core::NerGlobalizerConfig config = core::DefaultPipelineConfig(system_->bundle);
    config.window_messages = window_messages;
    config.incremental_refresh = incremental_refresh;
    return core::NerGlobalizer(&system_->bundle, config);
  }

  std::vector<stream::Message> Dataset(const std::string& name,
                                       double scale = 0.08) const {
    data::StreamGenerator gen(&system_->kb_eval);
    return gen.Generate(data::MakeDatasetSpec(name, scale));
  }

  static harness::TrainedSystem* system_;
};

harness::TrainedSystem* PipelineTest::system_ = nullptr;

TEST_F(PipelineTest, TrainingProducedUsableComponents) {
  EXPECT_LT(system_->fine_tune_loss, 0.5);
  EXPECT_GT(system_->d5_mention_examples, 100u);
  EXPECT_GT(system_->embedder_result.dataset_size, 500u);
  EXPECT_GT(system_->classifier_result.validation_macro_f1, 0.4);
}

TEST_F(PipelineTest, GlobalBeatsLocalOnStream) {
  auto messages = Dataset("D2");
  auto pipeline = MakePipeline();
  pipeline.ProcessAll(messages, 64);
  auto gold = harness::GoldSpans(messages);
  auto local = eval::EvaluateNer(
      gold, pipeline.Predictions(core::PipelineStage::kLocalOnly));
  auto global = eval::EvaluateNer(
      gold, pipeline.Predictions(core::PipelineStage::kFullGlobal));
  // The paper's headline claim at miniature scale: collective processing
  // beats isolated processing.
  EXPECT_GT(global.macro_f1, local.macro_f1);
  EXPECT_GT(global.micro.recall, local.micro.recall);
}

TEST_F(PipelineTest, IncrementalMatchesSingleBatch) {
  // Continuous execution contract: processing in many small batches ends
  // in the same state/predictions as one big batch (Sec. III).
  auto messages = Dataset("D1");
  auto batched = MakePipeline();
  batched.ProcessAll(messages, 16);
  auto single = MakePipeline();
  single.ProcessAll(messages, messages.size());

  EXPECT_EQ(batched.trie().size(), single.trie().size());
  EXPECT_EQ(batched.candidate_base().TotalMentions(),
            single.candidate_base().TotalMentions());
  auto a = batched.Predictions();
  auto b = single.Predictions();
  ASSERT_EQ(a.size(), b.size());
  size_t differing = 0;
  for (size_t m = 0; m < a.size(); ++m) {
    if (!(a[m] == b[m])) ++differing;
  }
  // Identical mention pools + deterministic components => identical output.
  EXPECT_EQ(differing, 0u);
}

TEST_F(PipelineTest, PreEncodedBatchesMatchProcessBatchBitwise) {
  // The stage-graph split (core/stages.h): running LocalEncode externally
  // via EncodeMany and feeding the results to ProcessBatchPreEncoded must
  // evolve the stream state bit-identically to plain ProcessBatch — the
  // contract the serve batch scheduler is built on. Checked at every
  // ablation stage, windowed so eviction runs too.
  auto messages = Dataset("D1");
  const size_t batch = 16;
  const size_t window = messages.size() / 3;
  auto plain = MakePipeline(window);
  auto pre_encoded = MakePipeline(window);
  for (size_t begin = 0; begin < messages.size(); begin += batch) {
    const size_t end = std::min(messages.size(), begin + batch);
    const std::vector<stream::Message> slice(
        messages.begin() + static_cast<ptrdiff_t>(begin),
        messages.begin() + static_cast<ptrdiff_t>(end));
    plain.ProcessBatch(slice);
    std::vector<const std::vector<text::Token>*> sentences;
    for (const stream::Message& message : slice) {
      sentences.push_back(&message.tokens);
    }
    pre_encoded.ProcessBatchPreEncoded(
        slice, system_->bundle.model().EncodeMany(sentences));
  }
  for (int s = 0; s < 4; ++s) {
    const auto stage = static_cast<core::PipelineStage>(s);
    const auto a = plain.Predictions(stage);
    const auto b = pre_encoded.Predictions(stage);
    ASSERT_EQ(a.size(), b.size()) << core::PipelineStageName(stage);
    for (size_t m = 0; m < a.size(); ++m) {
      EXPECT_TRUE(a[m] == b[m])
          << core::PipelineStageName(stage) << " message " << m;
    }
  }
  auto fa = plain.TakeFinalized();
  auto fb = pre_encoded.TakeFinalized();
  ASSERT_EQ(fa.size(), fb.size());
  for (size_t i = 0; i < fa.size(); ++i) {
    EXPECT_TRUE(fa[i] == fb[i]) << "finalized " << i;
  }
}

TEST_F(PipelineTest, PredictionsAreNonOverlappingWithinSentence) {
  auto messages = Dataset("D3");
  auto pipeline = MakePipeline();
  pipeline.ProcessAll(messages, 128);
  for (const auto& spans : pipeline.Predictions()) {
    for (size_t i = 0; i < spans.size(); ++i) {
      EXPECT_LT(spans[i].begin_token, spans[i].end_token);
      for (size_t j = i + 1; j < spans.size(); ++j) {
        const bool overlap = spans[i].begin_token < spans[j].end_token &&
                             spans[j].begin_token < spans[i].end_token;
        EXPECT_FALSE(overlap);
      }
    }
  }
}

TEST_F(PipelineTest, MentionExtractionRecallsMoreThanLocal) {
  // Stage 1 adds missed mentions of seeded surfaces: recall must rise.
  auto messages = Dataset("D2");
  auto pipeline = MakePipeline();
  pipeline.ProcessAll(messages, 64);
  auto gold = harness::GoldSpans(messages);
  auto local = eval::EvaluateNer(
      gold, pipeline.Predictions(core::PipelineStage::kLocalOnly));
  auto extract = eval::EvaluateNer(
      gold, pipeline.Predictions(core::PipelineStage::kMentionExtraction));
  EXPECT_GE(extract.emd.recall, local.emd.recall);
}

TEST_F(PipelineTest, TimersAccumulate) {
  auto messages = Dataset("D1");
  auto pipeline = MakePipeline();
  pipeline.ProcessAll(messages, 64);
  EXPECT_GT(pipeline.local_seconds(), 0.0);
  EXPECT_GT(pipeline.global_seconds(), 0.0);
}

TEST_F(PipelineTest, CandidateBaseConsistentWithTrie) {
  auto messages = Dataset("D1");
  auto pipeline = MakePipeline();
  pipeline.ProcessAll(messages, 64);
  // Every surface with mentions must be registered in the CTrie.
  for (const auto& surface : pipeline.candidate_base().surfaces()) {
    std::vector<std::string> tokens = SplitChar(surface, ' ');
    EXPECT_TRUE(pipeline.trie().Contains(tokens)) << surface;
    // Every mention id referenced by a candidate is within the pool.
    const auto& pool = pipeline.candidate_base().Mentions(surface);
    for (const auto& cand : pipeline.candidate_base().Candidates(surface)) {
      for (size_t id : cand.mention_ids) EXPECT_LT(id, pool.size());
    }
  }
}

TEST_F(PipelineTest, LargeMentionPoolUsesCentroidTailAssignment) {
  // A surface with >64 mentions exercises the bounded-clustering path
  // (head sample + nearest-centroid assignment for the tail). Every
  // mention must still land in some candidate cluster.
  std::vector<stream::Message> messages;
  text::Tokenizer tokenizer;
  for (int i = 0; i < 90; ++i) {
    stream::Message m;
    m.id = 100000 + i;
    m.text = (i % 2 == 0) ? "coronavirus cases are rising again"
                          : "worried about coronavirus tonight";
    m.tokens = tokenizer.Tokenize(m.text);
    messages.push_back(std::move(m));
  }
  auto pipeline = MakePipeline();
  pipeline.ProcessAll(messages, 30);
  const auto& pool = pipeline.candidate_base().Mentions("coronavirus");
  if (pool.size() > 64) {  // only meaningful if the local model seeded it
    size_t assigned = 0;
    for (const auto& cand : pipeline.candidate_base().Candidates("coronavirus")) {
      assigned += cand.mention_ids.size();
    }
    EXPECT_EQ(assigned, pool.size());
  }
}

TEST_F(PipelineTest, MentionExtractionStageUsesMajorityLocalType) {
  // Whatever type the local model assigns most often to a surface is the
  // type every extracted mention of that surface carries at stage 1.
  auto messages = Dataset("D2");
  auto pipeline = MakePipeline();
  pipeline.ProcessAll(messages, 64);
  auto stage1 = pipeline.Predictions(core::PipelineStage::kMentionExtraction);
  // Per surface, all stage-1 mentions must share one type.
  std::map<std::string, std::set<int>> types_by_surface;
  const auto& ids = pipeline.message_ids();
  for (size_t m = 0; m < stage1.size(); ++m) {
    const auto* rec = pipeline.tweet_base().Find(ids[m]);
    for (const auto& span : stage1[m]) {
      types_by_surface[core::SpanSurfaceString(rec->message, span.begin_token,
                                               span.end_token)]
          .insert(static_cast<int>(span.type));
    }
  }
  for (const auto& [surface, types] : types_by_surface) {
    EXPECT_EQ(types.size(), 1u) << surface;
  }
}

TEST_F(PipelineTest, EmdGlobalizerVariantEmitsUntypedMentions) {
  auto messages = Dataset("D2");
  auto pipeline = MakePipeline();
  pipeline.ProcessAll(messages, 64);
  auto emd = pipeline.EmdGlobalizerPredictions();
  ASSERT_EQ(emd.size(), messages.size());
  size_t total = 0;
  for (const auto& spans : emd) total += spans.size();
  EXPECT_GT(total, 0u);
  // The variant never splits a surface form: whenever it accepts a surface,
  // the full pipeline's mention set for that surface is a superset of what
  // both systems extracted — check EMD recall is at least stage-local's.
  auto gold = harness::GoldSpans(messages);
  auto emd_scores = eval::EvaluateNer(gold, emd);
  auto local = eval::EvaluateNer(
      gold, pipeline.Predictions(core::PipelineStage::kLocalOnly));
  EXPECT_GT(emd_scores.emd.f1, local.emd.f1);
}

TEST_F(PipelineTest, InstrumentedCountsMatchPipelineOutputs) {
  // The observability counters are not estimates: for a single-batch run
  // each one must equal the corresponding quantity recoverable from the
  // pipeline's own state.
  auto messages = Dataset("D1");
  auto pipeline = MakePipeline();

  metrics::SetEnabled(true);
  metrics::MetricsRegistry::Global().ResetAll();
  pipeline.ProcessAll(messages, messages.size());
  // Snapshot before any further pipeline calls so that evaluation-time work
  // cannot shift the counters.
  auto& registry = metrics::MetricsRegistry::Global();
  const uint64_t sentences =
      registry.GetCounter("pipeline.sentences_total")->value();
  const uint64_t local_spans =
      registry.GetCounter("pipeline.local_spans_total")->value();
  const uint64_t new_surfaces =
      registry.GetCounter("pipeline.new_surfaces_total")->value();
  const uint64_t mentions =
      registry.GetCounter("pipeline.mentions_extracted_total")->value();
  const uint64_t embeds =
      registry.GetCounter("pipeline.phrase_embeds_total")->value();
  const uint64_t clusters =
      registry.GetCounter("pipeline.clusters_formed_total")->value();
  const uint64_t classifications =
      registry.GetCounter("pipeline.classifications_total")->value();
  const uint64_t stage_calls =
      registry.GetCounter("stage.local_ner.calls_total")->value();
  metrics::SetEnabled(false);

  EXPECT_EQ(sentences, messages.size());
  EXPECT_EQ(stage_calls, 1u);  // one batch => one local_ner span
  EXPECT_EQ(new_surfaces, pipeline.trie().size());
  EXPECT_EQ(mentions, pipeline.candidate_base().TotalMentions());
  // Every extracted mention was embedded exactly once on its way in.
  EXPECT_EQ(embeds, mentions);
  size_t spans = 0;
  for (const auto& s : pipeline.Predictions(core::PipelineStage::kLocalOnly)) {
    spans += s.size();
  }
  EXPECT_EQ(local_spans, spans);
  size_t candidates = 0;
  for (const auto& surface : pipeline.candidate_base().surfaces()) {
    candidates += pipeline.candidate_base().Candidates(surface).size();
  }
  EXPECT_EQ(clusters, candidates);
  // One classifier call per formed cluster.
  EXPECT_EQ(classifications, clusters);
  // Stage histograms saw the run: every span that opened also closed.
  for (const char* stage :
       {"local_ner", "mention_extraction", "phrase_embed", "cluster",
        "classify"}) {
    auto* wall = registry.GetHistogram(std::string("stage.") + stage +
                                       ".wall_seconds");
    auto* calls =
        registry.GetCounter(std::string("stage.") + stage + ".calls_total");
    EXPECT_EQ(wall->count(), calls->value()) << stage;
    EXPECT_GT(wall->count(), 0u) << stage;
  }
}

TEST_F(PipelineTest, IncrementalRefreshMatchesFullRefresh) {
  // The dirty-set refresh is an optimization, not an approximation: over a
  // multi-batch stream it must leave bit-identical predictions at every
  // pipeline stage compared to rebuilding every surface after each batch.
  auto messages = Dataset("D1");
  const size_t batch = (messages.size() + 2) / 3;  // 3-batch stream
  auto incremental = MakePipeline(0, /*incremental_refresh=*/true);
  incremental.ProcessAll(messages, batch);
  auto full = MakePipeline(0, /*incremental_refresh=*/false);
  full.ProcessAll(messages, batch);

  for (auto stage :
       {core::PipelineStage::kLocalOnly, core::PipelineStage::kMentionExtraction,
        core::PipelineStage::kLocalEmbeddings, core::PipelineStage::kFullGlobal}) {
    auto a = incremental.Predictions(stage);
    auto b = full.Predictions(stage);
    ASSERT_EQ(a.size(), b.size());
    for (size_t m = 0; m < a.size(); ++m) {
      EXPECT_TRUE(a[m] == b[m])
          << "stage " << static_cast<int>(stage) << " message " << m;
    }
  }
}

TEST_F(PipelineTest, WindowedEvictionBoundsState) {
  // 5x the window worth of messages: the live stores must stay bounded by
  // the window the whole way, and every message ends up finalized exactly
  // once, in stream order.
  auto messages = Dataset("D2");
  const size_t window = messages.size() / 5;
  ASSERT_GE(window, 10u);
  auto pipeline = MakePipeline(window);
  std::vector<core::FinalizedMessage> finalized;
  const size_t batch = window / 2;
  for (size_t i = 0; i < messages.size(); i += batch) {
    std::vector<stream::Message> chunk(
        messages.begin() + static_cast<std::ptrdiff_t>(i),
        messages.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + batch, messages.size())));
    pipeline.ProcessBatch(chunk);
    EXPECT_LE(pipeline.tweet_base().size(), window);
    for (auto& f : pipeline.TakeFinalized()) finalized.push_back(std::move(f));
  }
  EXPECT_EQ(pipeline.tweet_base().size(), window);
  EXPECT_EQ(pipeline.evicted_messages(), messages.size() - window);
  ASSERT_EQ(finalized.size(), messages.size() - window);
  for (size_t i = 0; i < finalized.size(); ++i) {
    EXPECT_EQ(finalized[i].message_id, messages[i].id);
  }
  // Every surface still registered has live support: its pool is non-empty
  // or some live message's local NER seeded it.
  for (const auto& surface : pipeline.candidate_base().surfaces()) {
    std::vector<std::string> tokens = SplitChar(surface, ' ');
    EXPECT_TRUE(pipeline.trie().Contains(tokens)) << surface;
  }
}

TEST_F(PipelineTest, WindowedStateMatchesFromScratchRebuild) {
  // Eviction is exact: after the stream ends, the bounded pipeline's live
  // state must match a pipeline that only ever saw the window's messages.
  auto messages = Dataset("D2");
  const size_t window = messages.size() / 4;
  const size_t batch = window / 2;
  auto windowed = MakePipeline(window);
  for (size_t i = 0; i < messages.size(); i += batch) {
    std::vector<stream::Message> chunk(
        messages.begin() + static_cast<std::ptrdiff_t>(i),
        messages.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + batch, messages.size())));
    windowed.ProcessBatch(chunk);
  }
  ASSERT_EQ(windowed.tweet_base().size(), window);

  // Rebuild from scratch over exactly the live window, same batching.
  std::vector<stream::Message> tail(
      messages.end() - static_cast<std::ptrdiff_t>(window), messages.end());
  auto rebuilt = MakePipeline();
  rebuilt.ProcessAll(tail, batch);

  EXPECT_EQ(windowed.trie().size(), rebuilt.trie().size());
  EXPECT_EQ(windowed.candidate_base().surfaces().size(),
            rebuilt.candidate_base().surfaces().size());
  EXPECT_EQ(windowed.candidate_base().TotalMentions(),
            rebuilt.candidate_base().TotalMentions());
}

TEST_F(PipelineTest, MemoryUsageReflectsEviction) {
  auto messages = Dataset("D2");
  auto unbounded = MakePipeline();
  unbounded.ProcessAll(messages, 32);
  auto windowed = MakePipeline(/*window_messages=*/32);
  windowed.ProcessAll(messages, 32);
  const auto big = unbounded.MemoryUsage();
  const auto small = windowed.MemoryUsage();
  EXPECT_GT(big.total_bytes, 0u);
  EXPECT_LT(small.tweet_base_bytes, big.tweet_base_bytes);
  EXPECT_LT(small.total_bytes, big.total_bytes);
  EXPECT_EQ(big.total_bytes, big.tweet_base_bytes + big.candidate_base_bytes +
                                 big.trie_bytes + big.embed_cache_bytes);
}

TEST_F(PipelineTest, RunDatasetAlignsScoresAndPredictions) {
  auto run = harness::RunDataset(*system_, "D1", 0.08, 64);
  EXPECT_EQ(run.messages.size(), run.stage_predictions[0].size());
  EXPECT_EQ(run.messages.size(), run.stage_predictions[3].size());
  // Scores were computed from those predictions.
  auto recomputed = eval::EvaluateNer(harness::GoldSpans(run.messages),
                                      run.stage_predictions[3]);
  EXPECT_DOUBLE_EQ(recomputed.macro_f1, run.stage_scores[3].macro_f1);
}

}  // namespace
}  // namespace nerglob
