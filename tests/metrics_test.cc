// Unit tests for the observability layer: MetricsRegistry instruments
// (counter/gauge/histogram), the NERGLOB_METRICS gate, JSON/Prometheus
// export, and TraceSpan nesting/aggregation.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"

namespace nerglob {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader, just enough to round-trip MetricsRegistry::ToJson()
// (objects, arrays, strings with the escapes ToJson emits, numbers, bools).
// The repo has no JSON dependency, so the test carries its own.
// ---------------------------------------------------------------------------
struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull } kind;
  std::map<std::string, std::unique_ptr<JsonValue>> object;
  std::vector<std::unique_ptr<JsonValue>> array;
  std::string str;
  double number = 0.0;
  bool boolean = false;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    return *it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::unique_ptr<JsonValue> Parse() {
    auto value = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing characters after JSON value";
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() {
    SkipSpace();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return text_[pos_];
  }
  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  std::unique_ptr<JsonValue> ParseValue() {
    const char c = Peek();
    auto value = std::make_unique<JsonValue>();
    if (c == '{') {
      value->kind = JsonValue::Kind::kObject;
      Expect('{');
      if (Peek() != '}') {
        while (true) {
          std::string key = ParseString();
          Expect(':');
          value->object[key] = ParseValue();
          if (Peek() != ',') break;
          Expect(',');
        }
      }
      Expect('}');
    } else if (c == '[') {
      value->kind = JsonValue::Kind::kArray;
      Expect('[');
      if (Peek() != ']') {
        while (true) {
          value->array.push_back(ParseValue());
          if (Peek() != ',') break;
          Expect(',');
        }
      }
      Expect(']');
    } else if (c == '"') {
      value->kind = JsonValue::Kind::kString;
      value->str = ParseString();
    } else if (c == 't' || c == 'f') {
      value->kind = JsonValue::Kind::kBool;
      value->boolean = (c == 't');
      pos_ += value->boolean ? 4 : 5;
    } else if (c == 'n') {
      value->kind = JsonValue::Kind::kNull;
      pos_ += 4;
    } else {
      value->kind = JsonValue::Kind::kNumber;
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
              text_[end] == 'e' || text_[end] == 'E')) {
        ++end;
      }
      value->number = std::strtod(text_.substr(pos_, end - pos_).c_str(), nullptr);
      pos_ = end;
    }
    return value;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: out.push_back(esc); break;  // \" \\ \/
        }
      } else {
        out.push_back(c);
      }
    }
    Expect('"');
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Every test starts from a clean, enabled registry and leaves metrics off
// (the process default) so other suites are unaffected.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::SetEnabled(true);
    metrics::MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override {
    metrics::MetricsRegistry::Global().ResetAll();
    metrics::SetEnabled(false);
  }
};

TEST_F(MetricsTest, SameNameReturnsSameHandle) {
  auto& registry = metrics::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("test.same_handle"),
            registry.GetCounter("test.same_handle"));
  EXPECT_EQ(registry.GetGauge("test.same_gauge"),
            registry.GetGauge("test.same_gauge"));
  EXPECT_EQ(registry.GetHistogram("test.same_hist"),
            registry.GetHistogram("test.same_hist"));
}

TEST_F(MetricsTest, ConcurrentCounterIncrementsSumExactly) {
  auto* counter =
      metrics::MetricsRegistry::Global().GetCounter("test.concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, CounterIncrementsFromParallelForWorkers) {
  // The same path the pipeline uses: pool workers increment while the
  // caller thread participates. Exact sum regardless of scheduling.
  auto* counter =
      metrics::MetricsRegistry::Global().GetCounter("test.pool_total");
  SetParallelism(4);
  constexpr size_t kIters = 5000;
  ParallelFor(0, kIters, /*grain=*/16, [&](size_t) { counter->Increment(); });
  SetParallelism(0);
  EXPECT_EQ(counter->value(), kIters);
}

TEST_F(MetricsTest, ConcurrentGaugeAddsSumExactly) {
  // Gauge::Add uses a CAS loop; concurrent adders must not lose updates.
  auto* gauge = metrics::MetricsRegistry::Global().GetGauge("test.gauge");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge->Add(0.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge->value(), kThreads * kPerThread * 0.5);
  gauge->Set(-3.25);
  EXPECT_DOUBLE_EQ(gauge->value(), -3.25);
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreInclusive) {
  auto* hist = metrics::MetricsRegistry::Global().GetHistogram(
      "test.bounds", {1.0, 2.0, 4.0});
  hist->Observe(0.5);  // bucket 0 (le 1)
  hist->Observe(1.0);  // bucket 0: bounds are inclusive upper limits
  hist->Observe(1.5);  // bucket 1 (le 2)
  hist->Observe(2.0);  // bucket 1
  hist->Observe(4.0);  // bucket 2 (le 4)
  hist->Observe(9.0);  // overflow bucket
  EXPECT_EQ(hist->BucketCount(0), 2u);
  EXPECT_EQ(hist->BucketCount(1), 2u);
  EXPECT_EQ(hist->BucketCount(2), 1u);
  EXPECT_EQ(hist->BucketCount(3), 1u);  // +Inf
  EXPECT_EQ(hist->count(), 6u);
  EXPECT_DOUBLE_EQ(hist->sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST_F(MetricsTest, DefaultLatencyBoundsAreAscending) {
  const auto bounds = metrics::Histogram::DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST_F(MetricsTest, DisabledRecordsNothing) {
  auto& registry = metrics::MetricsRegistry::Global();
  auto* counter = registry.GetCounter("test.disabled_total");
  auto* gauge = registry.GetGauge("test.disabled_gauge");
  auto* hist = registry.GetHistogram("test.disabled_hist");
  metrics::SetEnabled(false);
  counter->Increment(7);
  gauge->Set(1.0);
  gauge->Add(2.0);
  hist->Observe(0.5);
  metrics::SetEnabled(true);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(hist->count(), 0u);
  EXPECT_DOUBLE_EQ(hist->sum(), 0.0);
}

TEST_F(MetricsTest, ResetAllZeroesButKeepsHandlesValid) {
  auto& registry = metrics::MetricsRegistry::Global();
  auto* counter = registry.GetCounter("test.reset_total");
  counter->Increment(5);
  registry.ResetAll();
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment(2);
  EXPECT_EQ(counter->value(), 2u);
  EXPECT_EQ(registry.GetCounter("test.reset_total"), counter);
}

TEST_F(MetricsTest, JsonRoundTripPreservesValues) {
  auto& registry = metrics::MetricsRegistry::Global();
  registry.GetCounter("test.json_total")->Increment(42);
  registry.GetGauge("test.json_gauge")->Set(2.5);
  auto* hist = registry.GetHistogram("test.json_hist", {0.1, 1.0});
  hist->Observe(0.05);
  hist->Observe(0.5);
  hist->Observe(0.5);
  hist->Observe(30.0);

  auto doc = JsonParser(registry.ToJson()).Parse();
  ASSERT_EQ(doc->kind, JsonValue::Kind::kObject);

  const JsonValue& counter = doc->at("counters").at("test.json_total");
  EXPECT_DOUBLE_EQ(counter.number, 42.0);
  const JsonValue& gauge = doc->at("gauges").at("test.json_gauge");
  EXPECT_DOUBLE_EQ(gauge.number, 2.5);

  const JsonValue& hist_json = doc->at("histograms").at("test.json_hist");
  EXPECT_DOUBLE_EQ(hist_json.at("count").number, 4.0);
  EXPECT_DOUBLE_EQ(hist_json.at("sum").number, 0.05 + 0.5 + 0.5 + 30.0);
  const auto& buckets = hist_json.at("buckets").array;
  ASSERT_EQ(buckets.size(), 3u);  // two bounds + overflow
  EXPECT_DOUBLE_EQ(buckets[0]->at("le").number, 0.1);
  EXPECT_DOUBLE_EQ(buckets[0]->at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1]->at("le").number, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1]->at("count").number, 2.0);  // non-cumulative
  EXPECT_EQ(buckets[2]->at("le").str, "+Inf");
  EXPECT_DOUBLE_EQ(buckets[2]->at("count").number, 1.0);
}

TEST_F(MetricsTest, PrometheusTextUsesCumulativeBucketsAndPrefix) {
  auto& registry = metrics::MetricsRegistry::Global();
  auto* hist = registry.GetHistogram("test.prom_hist", {0.1, 1.0});
  hist->Observe(0.05);
  hist->Observe(0.5);
  const std::string text = registry.ToPrometheusText();
  // '.' becomes '_', "nerglob_" prefix; buckets are cumulative counts.
  EXPECT_NE(text.find("nerglob_test_prom_hist_bucket{le=\"0.1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("nerglob_test_prom_hist_bucket{le=\"1\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("nerglob_test_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("nerglob_test_prom_hist_count 2"), std::string::npos);
}

void SpinFor(double seconds) {
  WallTimer timer;
  volatile double sink = 0.0;
  while (timer.ElapsedSeconds() < seconds) sink = sink + 1.0;
}

TEST_F(MetricsTest, TraceSpanNestingSeparatesSelfFromWallTime) {
  static const trace::TraceStage kOuter("test_outer");
  static const trace::TraceStage kInner("test_inner");
  constexpr double kInnerWork = 0.02;
  {
    trace::TraceSpan outer(kOuter);
    EXPECT_EQ(trace::TraceSpan::Current(), &outer);
    SpinFor(0.005);
    {
      trace::TraceSpan inner(kInner);
      EXPECT_EQ(trace::TraceSpan::Current(), &inner);
      SpinFor(kInnerWork);
    }
    EXPECT_EQ(trace::TraceSpan::Current(), &outer);
  }
  EXPECT_EQ(trace::TraceSpan::Current(), nullptr);

  auto& registry = metrics::MetricsRegistry::Global();
  auto* outer_wall = registry.GetHistogram("stage.test_outer.wall_seconds");
  auto* outer_self = registry.GetHistogram("stage.test_outer.self_seconds");
  auto* inner_wall = registry.GetHistogram("stage.test_inner.wall_seconds");
  EXPECT_EQ(registry.GetCounter("stage.test_outer.calls_total")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("stage.test_inner.calls_total")->value(), 1u);
  EXPECT_EQ(outer_wall->count(), 1u);
  EXPECT_EQ(inner_wall->count(), 1u);
  // The child's wall time is excluded from the parent's self time.
  EXPECT_GE(outer_wall->sum(), inner_wall->sum());
  EXPECT_GE(inner_wall->sum(), kInnerWork * 0.5);
  EXPECT_LE(outer_self->sum(), outer_wall->sum() - inner_wall->sum() + 1e-9);
}

TEST_F(MetricsTest, TraceSpanDisabledIsInertAndRecordsNothing) {
  static const trace::TraceStage kStage("test_disabled_stage");
  metrics::SetEnabled(false);
  {
    trace::TraceSpan span(kStage);
    EXPECT_EQ(trace::TraceSpan::Current(), nullptr);
  }
  metrics::SetEnabled(true);
  auto& registry = metrics::MetricsRegistry::Global();
  EXPECT_EQ(
      registry.GetHistogram("stage.test_disabled_stage.wall_seconds")->count(),
      0u);
  EXPECT_EQ(
      registry.GetCounter("stage.test_disabled_stage.calls_total")->value(),
      0u);
}

TEST_F(MetricsTest, WriteJsonFileRoundTrips) {
  auto& registry = metrics::MetricsRegistry::Global();
  registry.GetCounter("test.file_total")->Increment(3);
  const std::string path =
      ::testing::TempDir() + "/metrics_test_snapshot.json";
  ASSERT_TRUE(registry.WriteJsonFile(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  auto doc = JsonParser(contents).Parse();
  EXPECT_DOUBLE_EQ(doc->at("counters").at("test.file_total").number, 3.0);
}

}  // namespace
}  // namespace nerglob
