// ScratchArena ownership and steady-state behaviour (DESIGN.md "Scratch
// arena"): slots are reused across frames, growth events are counted, and
// a warmed-up arena hands out matrices without touching the heap.
#include <gtest/gtest.h>

#include <thread>

#include "common/scratch_arena.h"

namespace nerglob::common {
namespace {

TEST(ScratchArenaTest, FrameRestoresMarkAndReusesSlot) {
  ScratchArena arena;
  Matrix* first = nullptr;
  {
    ScratchFrame frame(&arena);
    first = frame.Get(4, 4);
    EXPECT_EQ(arena.depth(), 1u);
  }
  EXPECT_EQ(arena.depth(), 0u);
  ScratchFrame frame(&arena);
  // The next frame gets the same slot object back, reshaped.
  Matrix* again = frame.Get(2, 8);
  EXPECT_EQ(again, first);
  EXPECT_EQ(again->rows(), 2u);
  EXPECT_EQ(again->cols(), 8u);
}

TEST(ScratchArenaTest, FramesNestLikeACallStack) {
  ScratchArena arena;
  ScratchFrame outer(&arena);
  Matrix* a = outer.Get(1, 1);
  {
    ScratchFrame inner(outer.arena());
    Matrix* b = inner.Get(1, 1);
    EXPECT_NE(a, b);
    EXPECT_EQ(arena.depth(), 2u);
  }
  EXPECT_EQ(arena.depth(), 1u);
  // A sibling frame reuses the inner frame's slot.
  ScratchFrame sibling(outer.arena());
  Matrix* c = sibling.Get(3, 3);
  EXPECT_NE(a, c);
  EXPECT_EQ(arena.depth(), 2u);
}

TEST(ScratchArenaTest, CountsGrowthEventsOnlyWhenCapacityGrows) {
  ScratchArena arena;
  {
    ScratchFrame frame(&arena);
    frame.Get(4, 4);  // new slot + buffer growth
  }
  const uint64_t after_warmup = arena.heap_allocs();
  EXPECT_GE(after_warmup, 1u);
  const size_t reserved = arena.reserved_bytes();
  EXPECT_GE(reserved, 4 * 4 * sizeof(float));

  // Same and smaller shapes fit in the kept capacity: zero new events.
  for (int i = 0; i < 10; ++i) {
    ScratchFrame frame(&arena);
    frame.Get(4, 4);
  }
  {
    ScratchFrame frame(&arena);
    frame.Get(2, 2);
    frame.arena();
  }
  EXPECT_EQ(arena.heap_allocs(), after_warmup);
  EXPECT_EQ(arena.reserved_bytes(), reserved);

  // A larger shape grows the buffer: exactly one more event burst.
  {
    ScratchFrame frame(&arena);
    frame.Get(8, 8);
  }
  EXPECT_GT(arena.heap_allocs(), after_warmup);
  EXPECT_GE(arena.reserved_bytes(), 8 * 8 * sizeof(float));
}

TEST(ScratchArenaTest, GetZeroZeroesTheFullExtent) {
  ScratchArena arena;
  {
    ScratchFrame frame(&arena);
    Matrix* m = frame.Get(3, 3);
    m->Fill(7.0f);
  }
  ScratchFrame frame(&arena);
  Matrix* z = frame.GetZero(3, 3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(z->At(r, c), 0.0f);
  }
}

TEST(ScratchArenaTest, ResetReleasesSlotsButKeepsCapacity) {
  ScratchArena arena;
  arena.Get(5, 5);
  arena.Get(5, 5);
  const uint64_t allocs = arena.heap_allocs();
  const size_t reserved = arena.reserved_bytes();
  arena.Reset();
  EXPECT_EQ(arena.depth(), 0u);
  arena.Get(5, 5);
  arena.Get(5, 5);
  EXPECT_EQ(arena.heap_allocs(), allocs);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(ScratchArenaTest, ThreadLocalArenasAreDistinct) {
  ScratchArena* main_arena = &ScratchArena::ThreadLocal();
  ScratchArena* worker_arena = nullptr;
  std::thread t([&] { worker_arena = &ScratchArena::ThreadLocal(); });
  t.join();
  ASSERT_NE(worker_arena, nullptr);
  EXPECT_NE(main_arena, worker_arena);
  // Same thread, same arena.
  EXPECT_EQ(main_arena, &ScratchArena::ThreadLocal());
}

}  // namespace
}  // namespace nerglob::common
