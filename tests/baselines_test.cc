#include <gtest/gtest.h>

#include "baselines/global_baselines.h"
#include "baselines/local_baselines.h"
#include "text/tokenizer.h"

namespace nerglob::baselines {
namespace {

using text::EntityType;

std::vector<text::Token> Toks(const std::string& s) {
  return text::Tokenizer().Tokenize(s);
}

stream::Message MakeMsg(int64_t id, const std::string& txt) {
  stream::Message m;
  m.id = id;
  m.text = txt;
  m.tokens = Toks(txt);
  return m;
}

lm::LabeledSentence Labeled(const std::string& s, const std::string& entity,
                            EntityType type) {
  lm::LabeledSentence ex;
  ex.tokens = Toks(s);
  ex.bio.assign(ex.tokens.size(), text::kBioOutside);
  for (size_t t = 0; t < ex.tokens.size(); ++t) {
    if (ex.tokens[t].match == entity) ex.bio[t] = text::BioBeginLabel(type);
  }
  return ex;
}

std::vector<lm::LabeledSentence> TinyCorpus() {
  return {
      Labeled("alpha says hello", "alpha", EntityType::kPerson),
      Labeled("we met alpha today", "alpha", EntityType::kPerson),
      Labeled("alpha speaks tonight", "alpha", EntityType::kPerson),
      Labeled("go to betaville now", "betaville", EntityType::kLocation),
      Labeled("betaville is cold", "betaville", EntityType::kLocation),
      Labeled("snow hits betaville", "betaville", EntityType::kLocation),
  };
}

lm::MicroBertConfig TinyLmConfig() {
  lm::MicroBertConfig cfg;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.max_seq_len = 16;
  cfg.subword_buckets = 256;
  cfg.dropout = 0.0f;
  return cfg;
}

TEST(AguilarNerTest, TrainsAndPredictsOnTinyTask) {
  AguilarNer::Config cfg;
  cfg.char_dim = 6;
  cfg.char_filters = 8;
  cfg.word_dim = 12;
  cfg.lstm_hidden = 10;
  cfg.subword_buckets = 256;
  AguilarNer model(cfg, 3);
  const double loss = model.Train(TinyCorpus(), /*epochs=*/70, 1e-2f, 4);
  EXPECT_LT(loss, 0.5);
  auto preds = model.Predict({MakeMsg(0, "alpha visits betaville")});
  ASSERT_EQ(preds.size(), 1u);
  bool found_per = false, found_loc = false;
  for (const auto& span : preds[0]) {
    if (span.begin_token == 0 && span.type == EntityType::kPerson) found_per = true;
    if (span.begin_token == 2 && span.type == EntityType::kLocation) found_loc = true;
  }
  EXPECT_TRUE(found_per);
  EXPECT_TRUE(found_loc);
}

TEST(AguilarNerTest, EmptyMessageYieldsNoSpans) {
  AguilarNer model(AguilarNer::Config{}, 5);
  auto preds = model.Predict({MakeMsg(0, "")});
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_TRUE(preds[0].empty());
}

TEST(BertNerTest, TrainsAndPredicts) {
  BertNer model(TinyLmConfig(), 7);
  lm::FineTuneOptions opt;
  opt.epochs = 25;
  opt.batch_size = 3;
  opt.lr = 5e-3f;
  model.Train(TinyCorpus(), opt);
  auto preds = model.Predict({MakeMsg(0, "alpha visits betaville")});
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_FALSE(preds[0].empty());
  EXPECT_EQ(model.name(), "BERT-NER");
}

class MemoryBaselineTest : public ::testing::Test {
 protected:
  MemoryBaselineTest() : model_(TinyLmConfig(), 9) {
    lm::FineTuneOptions opt;
    opt.epochs = 25;
    opt.batch_size = 3;
    opt.lr = 5e-3f;
    lm::FineTuneForNer(&model_, TinyCorpus(), opt);
  }
  lm::MicroBert model_;
};

TEST_F(MemoryBaselineTest, AkbikTrainsHeadAndPredicts) {
  AkbikPooledNer akbik(&model_, 11);
  const double loss = akbik.Train(TinyCorpus(), /*epochs=*/8, 5e-3f, 12);
  EXPECT_LT(loss, 1.5);
  auto preds = akbik.Predict(
      {MakeMsg(0, "alpha says hello"), MakeMsg(1, "we met alpha today")});
  ASSERT_EQ(preds.size(), 2u);
  // The trained head should find the strongly-supervised entity.
  bool found = false;
  for (const auto& msg_preds : preds) {
    for (const auto& span : msg_preds) {
      if (span.type == EntityType::kPerson) found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(akbik.name(), "Akbik et al.");
}

TEST_F(MemoryBaselineTest, AkbikPoolingModesDiffer) {
  // Mean/min/max pools must produce different memory features (and thus
  // generally different trained heads), but all remain functional.
  auto corpus = TinyCorpus();
  std::vector<AkbikPooledNer::MemoryPooling> modes = {
      AkbikPooledNer::MemoryPooling::kMean,
      AkbikPooledNer::MemoryPooling::kMin,
      AkbikPooledNer::MemoryPooling::kMax};
  std::vector<double> losses;
  for (auto mode : modes) {
    AkbikPooledNer akbik(&model_, 17, mode);
    losses.push_back(akbik.Train(corpus, /*epochs=*/4, 5e-3f, 18));
    auto preds = akbik.Predict({MakeMsg(0, "alpha says hello")});
    EXPECT_EQ(preds.size(), 1u);
  }
  // Same seed, different pooling -> training trajectories diverge.
  EXPECT_FALSE(losses[0] == losses[1] && losses[1] == losses[2]);
}

TEST_F(MemoryBaselineTest, HireTrainsHeadAndPredicts) {
  HireNer hire(&model_, 13);
  const double loss = hire.Train(TinyCorpus(), /*epochs=*/8, 5e-3f, 14);
  EXPECT_LT(loss, 1.5);
  auto preds = hire.Predict({MakeMsg(0, "betaville is cold")});
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(hire.name(), "HIRE-NER");
}

TEST_F(MemoryBaselineTest, DoclRefinesLowConfidenceMentions) {
  // Gate 1.0: every mention gets revoted to its surface's majority type —
  // at minimum this must not crash and must keep spans intact.
  DoclNer docl(&model_, /*confidence_gate=*/1.0f);
  auto msgs = std::vector<stream::Message>{
      MakeMsg(0, "alpha says hello"),
      MakeMsg(1, "we met alpha today"),
      MakeMsg(2, "alpha speaks tonight"),
  };
  auto preds = docl.Predict(msgs);
  ASSERT_EQ(preds.size(), 3u);
  // Majority voting keeps all alpha mentions a single consistent type.
  std::set<int> types;
  for (const auto& msg_preds : preds) {
    for (const auto& span : msg_preds) {
      if (span.begin_token != std::string::npos) {
        types.insert(static_cast<int>(span.type));
      }
    }
  }
  EXPECT_LE(types.size(), 1u);
  EXPECT_EQ(docl.name(), "DocL-NER");
}

TEST_F(MemoryBaselineTest, DoclHighGateEqualsVotedTypes) {
  // With gate 0 nothing is revoted: output equals the local decode.
  DoclNer docl(&model_, /*confidence_gate=*/0.0f);
  auto msg = MakeMsg(0, "alpha says hello");
  auto preds = docl.Predict({msg});
  auto enc = model_.Encode(msg.tokens);
  auto local = text::DecodeBio(enc.bio_labels);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].size(), local.size());
}

}  // namespace
}  // namespace nerglob::baselines
