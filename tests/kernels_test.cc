// Parity suite for the SIMD kernel dispatch layer: every tier must produce
// bit-identical outputs for identical inputs (DESIGN.md "Kernel dispatch").
// Comparisons use memcmp, not operator==, so NaN bit patterns are compared
// too (NaN != NaN would make EXPECT_EQ vacuously fail where the bits agree).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string_view>
#include <vector>

#include "tensor/kernels.h"

namespace nerglob::kern {
namespace {

std::vector<float> RandomVec(size_t n, uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> v(n);
  for (float& x : v) x = dist(gen);
  return v;
}

bool BitsEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Both tiers, or skip: parity tests are meaningful only when a real AVX2
/// table exists and the host can run it.
bool HaveAvx2() { return BuiltWithAvx2() && CpuSupportsAvx2(); }

struct GemmShape {
  size_t m, k, n;
};

// Odd shapes on purpose: n covers the 16-wide tile, the 8-wide tile and the
// scalar tail (n % 8 != 0); k = 1 and m = 1 exercise degenerate loops.
const GemmShape kGemmShapes[] = {
    {1, 1, 1},   {1, 7, 1},   {3, 5, 7},    {17, 33, 19}, {48, 64, 64},
    {5, 64, 5},  {1, 64, 64}, {2, 3, 8},    {4, 8, 16},   {3, 16, 24},
    {1, 5, 9},   {9, 2, 31},  {16, 16, 33}, {7, 1, 40},   {4, 19, 15},
};

TEST(KernelParityTest, GemmBitIdenticalAcrossTiers) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 tier on this host/build";
  const KernelTable& gen = GenericKernels();
  const KernelTable& avx = Avx2Kernels();
  uint32_t seed = 100;
  for (const GemmShape& s : kGemmShapes) {
    const std::vector<float> a = RandomVec(s.m * s.k, seed++);
    const std::vector<float> b = RandomVec(s.k * s.n, seed++);
    const std::vector<float> bias = RandomVec(s.n, seed++);
    for (const float* bias_ptr : {static_cast<const float*>(nullptr), bias.data()}) {
      std::vector<float> out_gen(s.m * s.n, -1.0f);
      std::vector<float> out_avx(s.m * s.n, -2.0f);
      gen.gemm_rows(a.data(), s.k, b.data(), s.n, bias_ptr, out_gen.data(),
                    s.n, 0, s.m, s.k, s.n);
      avx.gemm_rows(a.data(), s.k, b.data(), s.n, bias_ptr, out_avx.data(),
                    s.n, 0, s.m, s.k, s.n);
      EXPECT_TRUE(BitsEqual(out_gen, out_avx))
          << "gemm m=" << s.m << " k=" << s.k << " n=" << s.n
          << " bias=" << (bias_ptr != nullptr);
    }
  }
}

TEST(KernelParityTest, GemmRowRangesCompose) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 tier on this host/build";
  // The thread pool splits [0, m) into arbitrary row ranges; any partition
  // must produce the same bits as one full-range call, in both tiers.
  const size_t m = 13, k = 21, n = 27;
  const std::vector<float> a = RandomVec(m * k, 1);
  const std::vector<float> b = RandomVec(k * n, 2);
  for (const KernelTable* kt : {&GenericKernels(), &Avx2Kernels()}) {
    std::vector<float> whole(m * n), split(m * n);
    kt->gemm_rows(a.data(), k, b.data(), n, nullptr, whole.data(), n, 0, m, k, n);
    kt->gemm_rows(a.data(), k, b.data(), n, nullptr, split.data(), n, 0, 5, k, n);
    kt->gemm_rows(a.data(), k, b.data(), n, nullptr, split.data(), n, 5, 6, k, n);
    kt->gemm_rows(a.data(), k, b.data(), n, nullptr, split.data(), n, 6, m, k, n);
    EXPECT_TRUE(BitsEqual(whole, split)) << kt->name;
  }
}

TEST(KernelParityTest, ElementwiseBitIdenticalAcrossTiers) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 tier on this host/build";
  const KernelTable& gen = GenericKernels();
  const KernelTable& avx = Avx2Kernels();
  // Sizes straddling the 8-lane boundary: tails of every length.
  for (size_t n : {1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 33u, 100u}) {
    const std::vector<float> x = RandomVec(n, 7 + n);
    const std::vector<float> y = RandomVec(n, 11 + n);

    std::vector<float> a1(n), a2(n);
    gen.add(x.data(), y.data(), a1.data(), n);
    avx.add(x.data(), y.data(), a2.data(), n);
    EXPECT_TRUE(BitsEqual(a1, a2)) << "add n=" << n;

    std::vector<float> i1 = y, i2 = y;
    gen.add_inplace(i1.data(), x.data(), n);
    avx.add_inplace(i2.data(), x.data(), n);
    EXPECT_TRUE(BitsEqual(i1, i2)) << "add_inplace n=" << n;

    std::vector<float> p1 = y, p2 = y;
    gen.axpy(0.37f, x.data(), p1.data(), n);
    avx.axpy(0.37f, x.data(), p2.data(), n);
    EXPECT_TRUE(BitsEqual(p1, p2)) << "axpy n=" << n;

    std::vector<float> s1 = x, s2 = x;
    gen.scale(s1.data(), -1.73f, n);
    avx.scale(s2.data(), -1.73f, n);
    EXPECT_TRUE(BitsEqual(s1, s2)) << "scale n=" << n;

    std::vector<float> r1 = x, r2 = x;
    gen.relu(r1.data(), n);
    avx.relu(r2.data(), n);
    EXPECT_TRUE(BitsEqual(r1, r2)) << "relu n=" << n;
  }
}

TEST(KernelParityTest, ReluMapsNanAndNegativeZeroToPositiveZero) {
  // The relu contract is the scalar ternary `x > 0 ? x : 0` — NaN and -0
  // both compare not-greater-than zero and must become +0 in every tier
  // (maxps would keep the NaN; that is why relu is a compare mask).
  std::vector<float> in = {std::numeric_limits<float>::quiet_NaN(), -0.0f,
                           -1.0f, 2.0f, 0.0f,
                           -std::numeric_limits<float>::infinity(),
                           std::numeric_limits<float>::infinity(), 3.5f, -7.0f};
  for (const KernelTable* kt : {&GenericKernels(), &Avx2Kernels()}) {
    std::vector<float> x = in;
    kt->relu(x.data(), x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      const float expect = in[i] > 0.0f ? in[i] : 0.0f;
      EXPECT_EQ(std::memcmp(&x[i], &expect, sizeof(float)), 0)
          << kt->name << " index " << i;
      if (!(in[i] > 0.0f)) EXPECT_FALSE(std::signbit(x[i]));
    }
  }
}

TEST(KernelParityTest, RowKernelsBitIdenticalAcrossTiers) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 tier on this host/build";
  const KernelTable& gen = GenericKernels();
  const KernelTable& avx = Avx2Kernels();
  for (size_t n : {1u, 2u, 5u, 8u, 13u, 16u, 29u, 64u, 65u}) {
    const std::vector<float> x = RandomVec(n, 23 + n);
    const std::vector<float> gamma = RandomVec(n, 29 + n);
    const std::vector<float> beta = RandomVec(n, 31 + n);

    std::vector<float> s1(n), s2(n);
    gen.softmax_row(x.data(), s1.data(), n);
    avx.softmax_row(x.data(), s2.data(), n);
    EXPECT_TRUE(BitsEqual(s1, s2)) << "softmax n=" << n;

    std::vector<float> l1(n), l2(n);
    gen.logsoftmax_row(x.data(), l1.data(), n);
    avx.logsoftmax_row(x.data(), l2.data(), n);
    EXPECT_TRUE(BitsEqual(l1, l2)) << "logsoftmax n=" << n;

    std::vector<float> n1(n), n2(n);
    gen.layernorm_row(x.data(), gamma.data(), beta.data(), 1e-5f, n1.data(), n);
    avx.layernorm_row(x.data(), gamma.data(), beta.data(), 1e-5f, n2.data(), n);
    EXPECT_TRUE(BitsEqual(n1, n2)) << "layernorm n=" << n;

    // In-place softmax (out aliases in) must match out-of-place.
    std::vector<float> alias = x;
    avx.softmax_row(alias.data(), alias.data(), n);
    EXPECT_TRUE(BitsEqual(alias, s2)) << "softmax alias n=" << n;
  }
}

TEST(KernelParityTest, NanPropagatesIdentically) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 tier on this host/build";
  const KernelTable& gen = GenericKernels();
  const KernelTable& avx = Avx2Kernels();
  // One NaN operand per test input: the mul/add NaN payload rules are
  // deterministic for a single NaN source, so the tiers must agree bitwise.
  // (Two NaN operands of one op would leave payload choice to hardware.)
  for (size_t n : {5u, 9u, 17u}) {
    std::vector<float> x = RandomVec(n, 41 + n);
    x[n / 2] = std::numeric_limits<float>::quiet_NaN();
    const std::vector<float> y = RandomVec(n, 43 + n);

    std::vector<float> a1(n), a2(n);
    gen.add(x.data(), y.data(), a1.data(), n);
    avx.add(x.data(), y.data(), a2.data(), n);
    EXPECT_TRUE(BitsEqual(a1, a2)) << "add+NaN n=" << n;

    std::vector<float> s1(n), s2(n);
    gen.softmax_row(x.data(), s1.data(), n);
    avx.softmax_row(x.data(), s2.data(), n);
    EXPECT_TRUE(BitsEqual(s1, s2)) << "softmax+NaN n=" << n;

    std::vector<float> l1(n), l2(n);
    gen.layernorm_row(x.data(), y.data(), y.data(), 1e-5f, l1.data(), n);
    avx.layernorm_row(x.data(), y.data(), y.data(), 1e-5f, l2.data(), n);
    EXPECT_TRUE(BitsEqual(l1, l2)) << "layernorm+NaN n=" << n;
  }
}

TEST(KernelParityTest, DotF64BitIdenticalAcrossTiers) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 tier on this host/build";
  const KernelTable& gen = GenericKernels();
  const KernelTable& avx = Avx2Kernels();
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 31u, 32u, 33u, 64u, 127u}) {
    const std::vector<float> a = RandomVec(n, 51 + n);
    const std::vector<float> b = RandomVec(n, 53 + n);
    const double d1 = gen.dot_f64(a.data(), b.data(), n);
    const double d2 = avx.dot_f64(a.data(), b.data(), n);
    EXPECT_EQ(std::memcmp(&d1, &d2, sizeof(double)), 0) << "dot n=" << n;
  }
}

class SimdDispatchTest : public ::testing::Test {
 protected:
  ~SimdDispatchTest() override { ResetSimdLevel(); }
};

TEST_F(SimdDispatchTest, SetSimdLevelForcesTier) {
  ASSERT_TRUE(SetSimdLevel(SimdLevel::kGeneric));
  EXPECT_EQ(ActiveLevel(), SimdLevel::kGeneric);
  EXPECT_EQ(&Active(), &GenericKernels());
  if (HaveAvx2()) {
    ASSERT_TRUE(SetSimdLevel(SimdLevel::kAvx2));
    EXPECT_EQ(ActiveLevel(), SimdLevel::kAvx2);
    EXPECT_EQ(&Active(), &Avx2Kernels());
  } else {
    // Unavailable tiers are refused and leave the dispatch unchanged.
    EXPECT_FALSE(SetSimdLevel(SimdLevel::kAvx2));
    EXPECT_EQ(ActiveLevel(), SimdLevel::kGeneric);
  }
}

TEST_F(SimdDispatchTest, ResetReresolvesFromEnvironment) {
  // Force the tier the environment would NOT pick, then check Reset
  // restores the environment's choice: NERGLOB_SIMD when set (the
  // forced-generic CI leg runs this suite with NERGLOB_SIMD=generic),
  // otherwise the best cpuid-supported tier.
  const char* env = std::getenv("NERGLOB_SIMD");
  SimdLevel expect = HaveAvx2() ? SimdLevel::kAvx2 : SimdLevel::kGeneric;
  if (env != nullptr && std::string_view(env) == "generic") {
    expect = SimdLevel::kGeneric;
  }
  ASSERT_TRUE(SetSimdLevel(SimdLevel::kGeneric));
  if (expect == SimdLevel::kGeneric && HaveAvx2()) {
    ASSERT_TRUE(SetSimdLevel(SimdLevel::kAvx2));
  }
  ResetSimdLevel();
  EXPECT_EQ(ActiveLevel(), expect);
}

TEST_F(SimdDispatchTest, LevelNames) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kGeneric), "generic");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(GenericKernels().name, "generic");
}

}  // namespace
}  // namespace nerglob::kern
