#include <gtest/gtest.h>

#include "baselines/twics.h"
#include "text/tokenizer.h"

namespace nerglob::baselines {
namespace {

stream::Message Msg(int64_t id, const std::string& txt) {
  stream::Message m;
  m.id = id;
  m.text = txt;
  m.tokens = text::Tokenizer().Tokenize(txt);
  return m;
}

TEST(TwicsTest, AcceptsConsistentlyCapitalizedSurface) {
  // "Beshear" always capitalized -> accepted; every occurrence (even the
  // lowercase one) is then emitted via the case-insensitive scan.
  std::vector<stream::Message> msgs = {
      Msg(0, "Beshear shuts schools"),
      Msg(1, "thank you Beshear"),
      Msg(2, "beshear update is out"),
  };
  TwicsEmd twics;
  auto preds = twics.Predict(msgs);
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_EQ(preds[0].size(), 1u);
  EXPECT_EQ(preds[1].size(), 1u);
  ASSERT_EQ(preds[2].size(), 1u);  // lowercase mention recovered
  EXPECT_EQ(preds[2][0].begin_token, 0u);
}

TEST(TwicsTest, RejectsIncidentalCapitalization) {
  // "Great" capitalized once but usually lowercase -> support below 0.5.
  std::vector<stream::Message> msgs = {
      Msg(0, "Great day today"),
      Msg(1, "what a great game"),
      Msg(2, "this is great news"),
      Msg(3, "a great result again"),
  };
  TwicsEmd twics;
  auto preds = twics.Predict(msgs);
  size_t total = 0;
  for (const auto& p : preds) total += p.size();
  EXPECT_EQ(total, 0u);
}

TEST(TwicsTest, HashtagsAreEntityLike) {
  std::vector<stream::Message> msgs = {
      Msg(0, "#Coronavirus is spreading"),
      Msg(1, "worried about coronavirus today"),
  };
  TwicsEmd twics;
  auto preds = twics.Predict(msgs);
  // Hashtag occurrence + lowercase occurrence: support 1/2 -> accepted at
  // the 0.5 default threshold; both mentions emitted.
  EXPECT_EQ(preds[0].size() + preds[1].size(), 2u);
}

TEST(TwicsTest, MultiTokenRuns) {
  std::vector<stream::Message> msgs = {
      Msg(0, "Justice Department opens probe"),
      Msg(1, "the Justice Department denies it"),
  };
  TwicsEmd twics;
  auto preds = twics.Predict(msgs);
  ASSERT_EQ(preds[0].size(), 1u);
  EXPECT_EQ(preds[0][0].end_token - preds[0][0].begin_token, 2u);
}

TEST(TwicsTest, RtPrefixIgnored) {
  std::vector<stream::Message> msgs = {
      Msg(0, "RT @user : Madrid wins again"),
      Msg(1, "RT @user : Madrid celebrates tonight"),
  };
  TwicsEmd twics;
  auto preds = twics.Predict(msgs);
  for (const auto& p : preds) {
    for (const auto& span : p) {
      // "rt" (token 0) must never be part of a mention.
      EXPECT_GT(span.begin_token, 0u);
    }
  }
}

TEST(TwicsTest, EmptyStream) {
  TwicsEmd twics;
  EXPECT_TRUE(twics.Predict({}).empty());
  auto preds = twics.Predict({Msg(0, "all lowercase text only")});
  EXPECT_TRUE(preds[0].empty());
}

}  // namespace
}  // namespace nerglob::baselines
