#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace nerglob {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, FactoryCodesDistinct) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, CarriesValueOrStatus) {
  Result<int> good = ParsePositive(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 3);
  EXPECT_EQ(*good, 3);

  Result<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fn = []() -> Status {
    NERGLOB_RETURN_IF_ERROR(Status::OK());
    NERGLOB_RETURN_IF_ERROR(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fn().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(13), 13u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, WeightedSamplingRespectsWeights) {
  Rng rng(5);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextWeighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(RngTest, ZipfFavorsHead) {
  Rng rng(9);
  int counts[10] = {};
  for (int i = 0; i < 10000; ++i) ++counts[rng.NextZipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(21);
  Rng child1 = a.Fork();
  Rng b(21);
  Rng child2 = b.Fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1.Next(), child2.Next());
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Hello WORLD 123"), "hello world 123");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("CoronaVirus", "coronavirus"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  a  bb\tccc \n d ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[3], "d");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, SplitChar) {
  auto parts = SplitChar("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, " "), "a b c");
  EXPECT_EQ(Join({}, " "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("#covid", "#"));
  EXPECT_FALSE(StartsWith("covid", "#"));
  EXPECT_TRUE(EndsWith("virus.jpg", ".jpg"));
  EXPECT_FALSE(EndsWith("jpg", "virus.jpg"));
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x y \t"), "x y");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringUtilTest, FnvHashStableAndSpread) {
  EXPECT_EQ(Fnv1aHash("abc"), Fnv1aHash("abc"));
  EXPECT_NE(Fnv1aHash("abc"), Fnv1aHash("abd"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "k", 7), "k=7");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(LoggingTest, LevelNamesAndThreshold) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed message must not crash and must evaluate cheaply.
  NERGLOB_LOG(kDebug) << "this should be dropped";
  SetLogLevel(original);
}

TEST(LoggingTest, EmitsAtOrAboveThreshold) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  // Just exercise the emit path (output goes to stderr).
  NERGLOB_LOG(kInfo) << "logging test message " << 42;
  NERGLOB_LOG(kWarning) << "warning path";
  SetLogLevel(original);
}

TEST(TimerTest, MeasuresNonNegative) {
  WallTimer t;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  t.Reset();
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace nerglob
