// lm::EncodeCache: the process-wide content-addressed cache of exact
// EncodeResult bytes. The load-bearing properties are (1) a hit is
// bitwise indistinguishable from a recompute — including end-to-end
// through the streaming pipeline — (2) eviction honors the byte budget
// with LRU order, (3) concurrent hit/miss/evict traffic is race-free
// (this suite is in the CI TSan filter), and (4) an injected
// `cache.insert` fault degrades to a miss, never a corrupt entry.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "harness/experiment.h"
#include "lm/encode_cache.h"
#include "lm/micro_bert.h"
#include "stream/streaming_session.h"
#include "text/tokenizer.h"

namespace nerglob::lm {
namespace {

EncodeKey MakeKey(uint64_t model_id, std::vector<uint32_t> seq) {
  EncodeKey key;
  key.model_id = model_id;
  key.seq = std::move(seq);
  return key;
}

/// A distinguishable little EncodeResult: every payload byte derives from
/// `tag`, so a returned copy proves which entry it came from.
EncodeResult MakeResult(float tag, size_t rows = 3, size_t cols = 4) {
  EncodeResult r;
  r.embeddings = Matrix(rows, cols, tag);
  r.logits = Matrix(rows, cols, tag + 0.5f);
  r.bio_labels.assign(rows, static_cast<int>(tag));
  return r;
}

void ExpectSameResult(const EncodeResult& a, const EncodeResult& b) {
  EXPECT_EQ(a.embeddings, b.embeddings);
  EXPECT_EQ(a.logits, b.logits);
  EXPECT_EQ(a.bio_labels, b.bio_labels);
}

TEST(EncodeCacheTest, HitReturnsExactInsertedBytes) {
  EncodeCache cache(/*budget_bytes=*/1 << 20, /*shards=*/4);
  const EncodeKey key = MakeKey(1, {4, 1, 2, 7, 9});
  const EncodeResult value = MakeResult(3.0f);
  EncodeResult out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  cache.Insert(key, value);
  ASSERT_TRUE(cache.Lookup(key, &out));
  ExpectSameResult(out, value);
  const EncodeCache::Stats stats = cache.StatsSnapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, EncodeCache::EntryBytes(key, value));
  EXPECT_EQ(cache.MemoryUsageBytes(), stats.bytes);
}

TEST(EncodeCacheTest, FullKeyComparisonDistinguishesHashAliases) {
  // Different model ids and different sequences must never alias, whatever
  // their hashes do — Lookup compares the complete key.
  EncodeCache cache(1 << 20, 1);
  cache.Insert(MakeKey(1, {2, 5}), MakeResult(1.0f));
  cache.Insert(MakeKey(2, {2, 5}), MakeResult(2.0f));
  cache.Insert(MakeKey(1, {2, 5, 0}), MakeResult(3.0f));
  EncodeResult out;
  ASSERT_TRUE(cache.Lookup(MakeKey(1, {2, 5}), &out));
  ExpectSameResult(out, MakeResult(1.0f));
  ASSERT_TRUE(cache.Lookup(MakeKey(2, {2, 5}), &out));
  ExpectSameResult(out, MakeResult(2.0f));
  ASSERT_TRUE(cache.Lookup(MakeKey(1, {2, 5, 0}), &out));
  ExpectSameResult(out, MakeResult(3.0f));
}

TEST(EncodeCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Size the budget (single shard) for exactly two of the three entries;
  // touching A after inserting B makes B the LRU victim when C arrives.
  const EncodeKey a = MakeKey(1, {10}), b = MakeKey(1, {11}),
                  c = MakeKey(1, {12});
  const EncodeResult value = MakeResult(1.0f);
  const size_t entry = EncodeCache::EntryBytes(a, value);
  EncodeCache cache(2 * entry, /*shards=*/1);
  cache.Insert(a, MakeResult(1.0f));
  cache.Insert(b, MakeResult(2.0f));
  EncodeResult out;
  ASSERT_TRUE(cache.Lookup(a, &out));  // promote A: B is now oldest
  cache.Insert(c, MakeResult(3.0f));
  EXPECT_TRUE(cache.Lookup(a, &out));
  EXPECT_FALSE(cache.Lookup(b, &out));
  EXPECT_TRUE(cache.Lookup(c, &out));
  const EncodeCache::Stats stats = cache.StatsSnapshot();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, 2 * entry);
}

TEST(EncodeCacheTest, OversizedEntryIsDroppedNotCached) {
  const EncodeKey key = MakeKey(1, {1});
  const EncodeResult big = MakeResult(1.0f, /*rows=*/64, /*cols=*/64);
  EncodeCache cache(/*budget_bytes=*/256, /*shards=*/1);
  cache.Insert(key, big);
  EncodeResult out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  EXPECT_EQ(cache.StatsSnapshot().inserts_dropped, 1u);
  EXPECT_EQ(cache.MemoryUsageBytes(), 0u);
}

TEST(EncodeCacheTest, DuplicateInsertKeepsResidentEntry) {
  EncodeCache cache(1 << 20, 2);
  const EncodeKey key = MakeKey(1, {3, 3});
  cache.Insert(key, MakeResult(1.0f));
  cache.Insert(key, MakeResult(1.0f));  // racing duplicate: no double count
  EXPECT_EQ(cache.StatsSnapshot().entries, 1u);
  EXPECT_EQ(cache.MemoryUsageBytes(),
            EncodeCache::EntryBytes(key, MakeResult(1.0f)));
}

TEST(EncodeCacheTest, InjectedInsertFaultDegradesToMiss) {
  // Chaos contract (docs/RELIABILITY.md): a failed insert loses only the
  // memoization — the caller still holds its computed result, and the
  // cache stays structurally sound for later traffic.
  auto& injector = fault::FaultInjector::Global();
  ASSERT_TRUE(injector.ArmFromSpec("cache.insert:1").ok());
  EncodeCache cache(1 << 20, 2);
  const EncodeKey key = MakeKey(1, {8});
  cache.Insert(key, MakeResult(4.0f));  // fault fires: dropped
  EncodeResult out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  EXPECT_EQ(cache.StatsSnapshot().inserts_dropped, 1u);
  cache.Insert(key, MakeResult(4.0f));  // next insert succeeds
  ASSERT_TRUE(cache.Lookup(key, &out));
  ExpectSameResult(out, MakeResult(4.0f));
  injector.Disarm();
}

TEST(EncodeCacheTest, ExportsGlobalMetrics) {
  metrics::SetEnabled(true);
  auto& registry = metrics::MetricsRegistry::Global();
  metrics::Counter* const hits = registry.GetCounter("lm.encode_cache.hits");
  metrics::Counter* const misses =
      registry.GetCounter("lm.encode_cache.misses");
  const uint64_t hits0 = hits->value(), misses0 = misses->value();
  EncodeCache cache(1 << 20, 2);
  const EncodeKey key = MakeKey(1, {5});
  EncodeResult out;
  cache.Lookup(key, &out);
  cache.Insert(key, MakeResult(2.0f));
  cache.Lookup(key, &out);
  EXPECT_EQ(hits->value(), hits0 + 1);
  EXPECT_EQ(misses->value(), misses0 + 1);
  EXPECT_EQ(registry.GetGauge("lm.encode_cache.entries")->value(), 1.0);
  EXPECT_GT(registry.GetGauge("lm.encode_cache.bytes")->value(), 0.0);
  metrics::SetEnabled(false);
}

TEST(EncodeCacheStressTest, ConcurrentHitMissEvictTraffic) {
  // 8 threads hammer a deliberately tiny (always-evicting) cache with
  // overlapping key ranges: every lookup that hits must return the exact
  // bytes inserted for that key. Runs under TSan in CI (the EncodeCache
  // filter), which is the race check; the EXPECTs are the aliasing check.
  EncodeCache cache(/*budget_bytes=*/16 * 1024, /*shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kIterations = 400;
  constexpr uint32_t kKeySpace = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIterations; ++i) {
        const uint32_t k = static_cast<uint32_t>((i * 7 + t * 13) % kKeySpace);
        const EncodeKey key = MakeKey(1, {k, k + 1});
        const float tag = static_cast<float>(k);
        EncodeResult out;
        if (cache.Lookup(key, &out)) {
          ASSERT_EQ(out.embeddings, Matrix(3, 4, tag));
          ASSERT_EQ(out.logits, Matrix(3, 4, tag + 0.5f));
        } else {
          cache.Insert(key, MakeResult(tag));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const EncodeCache::Stats stats = cache.StatsSnapshot();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_LE(cache.MemoryUsageBytes(), 16u * 1024u);
}

TEST(EncodeCacheTest, ModelVersionChangesRetireStaleEntries) {
  // Fine-tuning mutates parameter bytes in place; the refreshed model
  // version must give post-training encodes a fresh cache identity so a
  // pre-training entry can never be served.
  text::Tokenizer tokenizer;
  MicroBertConfig cfg;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.max_seq_len = 16;
  cfg.subword_buckets = 512;
  cfg.dropout = 0.0f;
  MicroBert model(cfg, 99);
  const uint64_t before = model.model_version();

  EncodeCache cache(1 << 20, 2);
  EncodeCache::SetGlobalForTesting(&cache);
  const auto tokens = tokenizer.Tokenize("alpha visits betaville");
  const EncodeResult pre = model.Encode(tokens);   // miss + insert
  const EncodeResult pre2 = model.Encode(tokens);  // hit
  ExpectSameResult(pre, pre2);

  LabeledSentence ex;
  ex.tokens = tokens;
  ex.bio.assign(tokens.size(), text::kBioOutside);
  FineTuneOptions options;
  options.epochs = 1;
  FineTuneForNer(&model, {ex}, options);
  EXPECT_NE(model.model_version(), before);

  const EncodeResult post = model.Encode(tokens);
  EncodeCache::SetGlobalForTesting(nullptr);
  // The post-training encode must match an uncached recompute, not the
  // stale pre-training bytes.
  const EncodeResult recompute = model.Encode(tokens);
  ExpectSameResult(post, recompute);
  EXPECT_EQ(cache.StatsSnapshot().entries, 2u) << "stale entry not reused";
}

TEST(EncodeCachePipelineTest, CacheOnMatchesCacheOffByteForByte) {
  // End-to-end bit-identity: the full streaming pipeline (local NER,
  // TweetBase, trie scans, clustering — everything downstream of the
  // encoder) produces identical finalized output with the cache on,
  // including with a starvation-sized budget that forces mid-stream
  // evictions.
  const harness::TrainedSystem system =
      harness::BuildTrainedSystem(harness::TinyTestOptions());
  data::StreamGenerator gen(&system.kb_eval);
  const auto messages = gen.Generate(data::MakeDatasetSpec("D1", 0.08));

  const auto run = [&system, &messages] {
    stream::StreamingSessionConfig config;
    config.pipeline = core::DefaultPipelineConfig(system.bundle);
    stream::StreamingSession session(&system.bundle, config);
    stream::StreamSource source(messages, /*batch_size=*/8);
    std::vector<stream::Message> batch;
    while (!(batch = source.NextBatch()).empty()) session.ProcessBatch(batch);
    session.Flush();
    return session.TakeFinalized();
  };

  const auto baseline = run();  // cache off (no global configured in tests)
  {
    EncodeCache roomy(8 * 1024 * 1024, 4);
    EncodeCache::SetGlobalForTesting(&roomy);
    const auto cached = run();
    EncodeCache::SetGlobalForTesting(nullptr);
    EXPECT_EQ(cached, baseline);
    EXPECT_GT(roomy.StatsSnapshot().hits + roomy.StatsSnapshot().misses, 0u);
  }
  {
    EncodeCache tiny(64 * 1024, 2);  // evicts constantly
    EncodeCache::SetGlobalForTesting(&tiny);
    const auto cached = run();
    EncodeCache::SetGlobalForTesting(nullptr);
    EXPECT_EQ(cached, baseline);
  }
}

}  // namespace
}  // namespace nerglob::lm
