#include <gtest/gtest.h>

#include "lm/micro_bert.h"
#include "text/tokenizer.h"

namespace nerglob::lm {
namespace {

MicroBertConfig TinyConfig() {
  MicroBertConfig cfg;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ff_mult = 2;
  cfg.max_seq_len = 16;
  cfg.subword_buckets = 512;
  cfg.dropout = 0.0f;
  return cfg;
}

std::vector<text::Token> Toks(const std::string& s) {
  return text::Tokenizer().Tokenize(s);
}

TEST(MicroBertTest, EncodeShapes) {
  MicroBert model(TinyConfig(), 1);
  auto tokens = Toks("italy reports new cases");
  EncodeResult result = model.Encode(tokens);
  EXPECT_EQ(result.embeddings.rows(), 4u);
  EXPECT_EQ(result.embeddings.cols(), 16u);
  EXPECT_EQ(result.logits.rows(), 4u);
  EXPECT_EQ(result.logits.cols(), static_cast<size_t>(text::kNumBioLabels));
  EXPECT_EQ(result.bio_labels.size(), 4u);
}

TEST(MicroBertTest, EncodeMatchesTapeForwardBitForBit) {
  // Encode runs the graph-free arena path; its outputs must equal the
  // autograd eval forward exactly (the kernel determinism contract plus
  // op-for-op mirroring; see DESIGN.md).
  MicroBert model(TinyConfig(), 11);
  for (const char* s : {"italy reports new cases", "x",
                        "the quick brown fox jumps over the lazy dog twice "
                        "and keeps running far beyond the window"}) {
    auto tokens = Toks(s);
    EncodeResult fast = model.Encode(tokens);
    Rng unused(0);
    auto tape = model.Forward(tokens, /*training=*/false, &unused);
    EXPECT_EQ(fast.embeddings, tape.embeddings.value()) << s;
    EXPECT_EQ(fast.logits, tape.logits.value()) << s;
  }
}

TEST(MicroBertTest, EncodeIsAllocationFreeOnceWarm) {
  // Steady-state contract: after one encode of the peak shape, repeat
  // encodes of same-or-smaller sentences never grow the thread's arena.
  MicroBert model(TinyConfig(), 12);
  auto long_tokens = Toks("one two three four five six seven eight nine ten");
  auto short_tokens = Toks("short sentence here");
  model.Encode(long_tokens);  // warm-up at peak shape
  common::ScratchArena& arena = common::ScratchArena::ThreadLocal();
  const uint64_t warm = arena.heap_allocs();
  for (int i = 0; i < 5; ++i) {
    model.Encode(long_tokens);
    model.Encode(short_tokens);
  }
  EXPECT_EQ(arena.heap_allocs(), warm);
}

TEST(MicroBertTest, EncodeIsDeterministic) {
  MicroBert model(TinyConfig(), 2);
  auto tokens = Toks("the coronavirus is spreading");
  auto a = model.Encode(tokens);
  auto b = model.Encode(tokens);
  EXPECT_EQ(a.embeddings, b.embeddings);
  EXPECT_EQ(a.bio_labels, b.bio_labels);
}

TEST(MicroBertTest, TruncatesLongSentences) {
  MicroBert model(TinyConfig(), 3);
  std::string long_text;
  for (int i = 0; i < 30; ++i) long_text += "word" + std::to_string(i) + " ";
  auto tokens = Toks(long_text);
  ASSERT_GT(tokens.size(), 16u);
  auto result = model.Encode(tokens);
  EXPECT_EQ(result.embeddings.rows(), 16u);               // truncated
  EXPECT_EQ(result.bio_labels.size(), tokens.size());     // padded with O
  for (size_t t = 16; t < tokens.size(); ++t) {
    EXPECT_EQ(result.bio_labels[t], text::kBioOutside);
  }
}

TEST(MicroBertTest, ContextChangesEmbedding) {
  // The same word in different contexts must get different contextual
  // embeddings (that is the whole point of the encoder).
  MicroBert model(TinyConfig(), 4);
  auto a = model.Encode(Toks("washington announced a lockdown"));
  auto b = model.Encode(Toks("protests erupt in washington today"));
  // "washington" is token 0 in a, token 3 in b.
  Matrix ea = a.embeddings.SliceRows(0, 1);
  Matrix eb = b.embeddings.SliceRows(3, 1);
  EXPECT_GT(CosineDistance(ea, eb), 1e-3f);
}

TEST(MicroBertTest, TokenKindInfluencesRepresentation) {
  // The same surface text as a word vs as a hashtag (same match form) must
  // produce different input embeddings via the token-kind table.
  MicroBert model(TinyConfig(), 30);
  auto word_tokens = Toks("covid is here");
  auto hash_tokens = Toks("#covid is here");
  ASSERT_EQ(word_tokens[0].match, hash_tokens[0].match);
  ASSERT_NE(word_tokens[0].kind, hash_tokens[0].kind);
  auto a = model.Encode(word_tokens);
  auto b = model.Encode(hash_tokens);
  Matrix ea = a.embeddings.SliceRows(0, 1);
  Matrix eb = b.embeddings.SliceRows(0, 1);
  EXPECT_GT(CosineDistance(ea, eb), 1e-4f);
}

TEST(MicroBertTest, ParameterCountConsistent) {
  MicroBert model(TinyConfig(), 5);
  EXPECT_GT(model.NumParameters(), 1000u);
  EXPECT_EQ(model.Parameters().size(),
            MicroBert(TinyConfig(), 6).Parameters().size());
}

std::vector<std::vector<text::Token>> ManyCorpus() {
  std::vector<std::vector<text::Token>> corpus;
  for (const char* s :
       {"italy reports new cases", "washington announced a lockdown",
        "x", "protests erupt in washington today", "stay home and stay safe",
        "the quick brown fox jumps over the lazy dog twice and keeps "
        "running far beyond the window",
        "#covid is trending", "hospitals are full this week"}) {
    corpus.push_back(Toks(s));
  }
  return corpus;
}

void ExpectSameResult(const EncodeResult& a, const EncodeResult& b,
                      size_t index) {
  EXPECT_EQ(a.embeddings, b.embeddings) << "sentence " << index;
  EXPECT_EQ(a.logits, b.logits) << "sentence " << index;
  EXPECT_EQ(a.bio_labels, b.bio_labels) << "sentence " << index;
}

TEST(EncodeManyTest, MatchesPerSentenceEncodeBitwise) {
  // The batch-composition-independence contract: EncodeMany must equal a
  // per-sentence Encode loop bit for bit — this is what lets the serve
  // scheduler batch encodes across sessions without perturbing any stream.
  MicroBert model(TinyConfig(), 40);
  const auto corpus = ManyCorpus();
  std::vector<const std::vector<text::Token>*> sentences;
  for (const auto& s : corpus) sentences.push_back(&s);
  const auto batched = model.EncodeMany(sentences);
  ASSERT_EQ(batched.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    ExpectSameResult(batched[i], model.Encode(corpus[i]), i);
  }
}

TEST(EncodeManyTest, PartitionInvariant) {
  // Any way of splitting the sentence list into EncodeMany calls yields
  // the same bits per sentence: all-at-once vs every split point vs
  // one-call-per-sentence.
  MicroBert model(TinyConfig(), 41);
  const auto corpus = ManyCorpus();
  std::vector<const std::vector<text::Token>*> sentences;
  for (const auto& s : corpus) sentences.push_back(&s);
  const auto whole = model.EncodeMany(sentences);
  for (size_t split = 0; split <= corpus.size(); ++split) {
    const auto head = model.EncodeMany(
        {sentences.begin(), sentences.begin() + split});
    const auto tail = model.EncodeMany(
        {sentences.begin() + split, sentences.end()});
    for (size_t i = 0; i < split; ++i) {
      ExpectSameResult(head[i], whole[i], i);
    }
    for (size_t i = split; i < corpus.size(); ++i) {
      ExpectSameResult(tail[i - split], whole[i], i);
    }
  }
}

TEST(EncodeManyTest, PermutationInvariant) {
  // Reordering the batch only reorders the results; each sentence's bits
  // are unchanged by its neighbors.
  MicroBert model(TinyConfig(), 42);
  const auto corpus = ManyCorpus();
  std::vector<const std::vector<text::Token>*> sentences;
  for (const auto& s : corpus) sentences.push_back(&s);
  const auto forward = model.EncodeMany(sentences);
  std::vector<const std::vector<text::Token>*> reversed(sentences.rbegin(),
                                                        sentences.rend());
  const auto backward = model.EncodeMany(reversed);
  ASSERT_EQ(backward.size(), forward.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    ExpectSameResult(backward[forward.size() - 1 - i], forward[i], i);
  }
}

TEST(EncodeManyTest, NullAndEmptySentencesYieldDefaultResults) {
  MicroBert model(TinyConfig(), 43);
  const std::vector<text::Token> empty;
  const auto tokens = Toks("italy reports new cases");
  const auto results = model.EncodeMany({nullptr, &empty, &tokens});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].bio_labels.size(), 0u);
  EXPECT_EQ(results[0].embeddings.rows(), 0u);
  EXPECT_EQ(results[1].bio_labels.size(), 0u);
  ExpectSameResult(results[2], model.Encode(tokens), 2);
}

/// A duplication-heavy batch in the two shapes the serve layer produces:
/// aliased pointers (several slots share one sentence object, as when one
/// retweet fans out within a session's batch) and distinct-but-equal
/// copies (the cross-session scheduler gathers equal token vectors owned
/// by different sessions). Returns pointers into `corpus`/`copies`.
std::vector<const std::vector<text::Token>*> DuplicatedBatch(
    const std::vector<std::vector<text::Token>>& corpus,
    std::vector<std::vector<text::Token>>* copies) {
  copies->clear();
  copies->reserve(corpus.size());  // no reallocation: pointers stay valid
  std::vector<const std::vector<text::Token>*> sentences;
  for (size_t i = 0; i < corpus.size(); ++i) {
    sentences.push_back(&corpus[i]);
    sentences.push_back(&corpus[i]);  // aliased duplicate
    copies->push_back(corpus[i]);
    sentences.push_back(&copies->back());  // equal-but-distinct duplicate
  }
  return sentences;
}

TEST(EncodeManyTest, DedupMatchesReferencePathBitwise) {
  // Intra-batch dedup (the default) encodes each distinct sentence once
  // and fans copies out; every slot must equal the no-dedup reference
  // path — and a plain per-sentence Encode — bit for bit.
  MicroBert model(TinyConfig(), 44);
  const auto corpus = ManyCorpus();
  std::vector<std::vector<text::Token>> copies;
  const auto sentences = DuplicatedBatch(corpus, &copies);
  EncodeOptions reference;
  reference.dedup = false;
  reference.use_cache = false;
  const auto expected = model.EncodeMany(sentences, reference);
  const auto deduped = model.EncodeMany(sentences);
  ASSERT_EQ(deduped.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectSameResult(deduped[i], expected[i], i);
    ExpectSameResult(deduped[i], model.Encode(*sentences[i]), i);
  }
}

TEST(EncodeManyTest, DedupPartitionInvariant) {
  // Splitting a duplicate-laden batch at any point changes which slots
  // share a representative (duplicates split across calls are encoded
  // independently) but never the bits.
  MicroBert model(TinyConfig(), 45);
  const auto corpus = ManyCorpus();
  std::vector<std::vector<text::Token>> copies;
  const auto sentences = DuplicatedBatch(corpus, &copies);
  const auto whole = model.EncodeMany(sentences);
  for (size_t split = 0; split <= sentences.size(); ++split) {
    const auto head = model.EncodeMany(
        {sentences.begin(), sentences.begin() + split});
    const auto tail = model.EncodeMany(
        {sentences.begin() + split, sentences.end()});
    for (size_t i = 0; i < split; ++i) {
      ExpectSameResult(head[i], whole[i], i);
    }
    for (size_t i = split; i < sentences.size(); ++i) {
      ExpectSameResult(tail[i - split], whole[i], i);
    }
  }
}

TEST(EncodeManyTest, DedupPermutationInvariant) {
  // Reversing the batch changes every representative election (the last
  // duplicate becomes the first occurrence) yet the bits per slot are
  // unchanged.
  MicroBert model(TinyConfig(), 46);
  const auto corpus = ManyCorpus();
  std::vector<std::vector<text::Token>> copies;
  const auto sentences = DuplicatedBatch(corpus, &copies);
  const auto forward = model.EncodeMany(sentences);
  std::vector<const std::vector<text::Token>*> reversed(sentences.rbegin(),
                                                        sentences.rend());
  const auto backward = model.EncodeMany(reversed);
  ASSERT_EQ(backward.size(), forward.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    ExpectSameResult(backward[forward.size() - 1 - i], forward[i], i);
  }
}

TEST(EncodeManyTest, DedupHandlesNullAndEmptyAmongDuplicates) {
  MicroBert model(TinyConfig(), 47);
  const std::vector<text::Token> empty;
  const auto tokens = Toks("italy reports new cases");
  const auto results =
      model.EncodeMany({nullptr, &tokens, &empty, &tokens, nullptr});
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].bio_labels.size(), 0u);
  EXPECT_EQ(results[2].bio_labels.size(), 0u);
  EXPECT_EQ(results[4].bio_labels.size(), 0u);
  ExpectSameResult(results[1], model.Encode(tokens), 1);
  ExpectSameResult(results[3], model.Encode(tokens), 3);
}

TEST(FineTuneTest, LearnsTinyCorpus) {
  // A toy task: "alpha" is always PER, "betaville" always LOC. After
  // fine-tuning, the model must tag both correctly in held-out contexts.
  MicroBert model(TinyConfig(), 7);
  std::vector<LabeledSentence> train;
  const std::vector<std::string> per_ctx = {
      "alpha says hello", "we saw alpha today", "alpha is speaking now",
      "big day for alpha", "alpha won again"};
  const std::vector<std::string> loc_ctx = {
      "we live in betaville", "betaville is cold", "go to betaville now",
      "betaville reports snow", "flights to betaville stopped"};
  for (const auto& s : per_ctx) {
    LabeledSentence ex;
    ex.tokens = Toks(s);
    ex.bio.assign(ex.tokens.size(), text::kBioOutside);
    for (size_t t = 0; t < ex.tokens.size(); ++t) {
      if (ex.tokens[t].match == "alpha") {
        ex.bio[t] = text::BioBeginLabel(text::EntityType::kPerson);
      }
    }
    train.push_back(ex);
  }
  for (const auto& s : loc_ctx) {
    LabeledSentence ex;
    ex.tokens = Toks(s);
    ex.bio.assign(ex.tokens.size(), text::kBioOutside);
    for (size_t t = 0; t < ex.tokens.size(); ++t) {
      if (ex.tokens[t].match == "betaville") {
        ex.bio[t] = text::BioBeginLabel(text::EntityType::kLocation);
      }
    }
    train.push_back(ex);
  }

  FineTuneOptions options;
  options.epochs = 30;
  options.batch_size = 4;
  options.lr = 3e-3f;
  const double final_loss = FineTuneForNer(&model, train, options);
  EXPECT_LT(final_loss, 0.5);

  auto result = model.Encode(Toks("alpha visits betaville"));
  EXPECT_EQ(result.bio_labels[0], text::BioBeginLabel(text::EntityType::kPerson));
  EXPECT_EQ(result.bio_labels[2], text::BioBeginLabel(text::EntityType::kLocation));
}

TEST(PretrainMlmTest, LossDecreasesOnSmallCorpus) {
  MicroBert model(TinyConfig(), 21);
  std::vector<std::vector<text::Token>> corpus;
  for (const char* s :
       {"the virus is spreading fast", "stay home and stay safe",
        "the virus is everywhere now", "cases are rising fast again",
        "hospitals are full this week", "stay safe out there friends"}) {
    corpus.push_back(Toks(s));
  }
  PretrainOptions short_run;
  short_run.epochs = 1;
  const double first = PretrainMlm(&model, corpus, short_run);
  PretrainOptions longer;
  longer.epochs = 25;
  const double later = PretrainMlm(&model, corpus, longer);
  EXPECT_LT(later, first);
}

TEST(PretrainMlmTest, PretrainingChangesEncoderParameters) {
  MicroBert model(TinyConfig(), 22);
  const Matrix before = model.Parameters()[0].value();
  std::vector<std::vector<text::Token>> corpus = {
      Toks("alpha beta gamma delta"), Toks("beta gamma delta epsilon")};
  PretrainOptions opt;
  opt.epochs = 3;
  PretrainMlm(&model, corpus, opt);
  EXPECT_FALSE(model.Parameters()[0].value() == before);
}

TEST(FineTuneTest, LossDecreases) {
  MicroBert model(TinyConfig(), 8);
  std::vector<LabeledSentence> train;
  LabeledSentence ex;
  ex.tokens = Toks("gamma is trending");
  ex.bio = {text::BioBeginLabel(text::EntityType::kMisc), 0, 0};
  train.push_back(ex);

  FineTuneOptions one_epoch;
  one_epoch.epochs = 1;
  one_epoch.batch_size = 1;
  const double first = FineTuneForNer(&model, train, one_epoch);
  FineTuneOptions more;
  more.epochs = 20;
  more.batch_size = 1;
  const double later = FineTuneForNer(&model, train, more);
  EXPECT_LT(later, first);
}

}  // namespace
}  // namespace nerglob::lm
