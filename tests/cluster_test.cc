#include <gtest/gtest.h>

#include <set>

#include "cluster/agglomerative.h"
#include "common/rng.h"

namespace nerglob::cluster {
namespace {

TEST(PairwiseCosineTest, SymmetricZeroDiagonal) {
  Matrix e = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});
  Matrix d = PairwiseCosineDistances(e);
  EXPECT_FLOAT_EQ(d.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(d.At(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(d.At(0, 1), d.At(1, 0));
  EXPECT_NEAR(d.At(0, 1), 1.0f, 1e-5f);          // orthogonal
  EXPECT_NEAR(d.At(0, 2), 1.0f - 0.70710678f, 1e-5f);
}

TEST(AgglomerativeTest, EmptyInput) {
  auto result = AgglomerativeCluster(Matrix(), 0.5f);
  EXPECT_EQ(result.num_clusters, 0u);
  EXPECT_TRUE(result.assignments.empty());
}

TEST(AgglomerativeTest, SingletonInput) {
  Matrix e = Matrix::FromRows({{1, 0}});
  auto result = AgglomerativeClusterCosine(e, 0.5f);
  EXPECT_EQ(result.num_clusters, 1u);
  EXPECT_EQ(result.assignments[0], 0);
}

TEST(AgglomerativeTest, TwoWellSeparatedGroups) {
  // Two orthogonal directions with small in-group noise.
  Matrix e = Matrix::FromRows({
      {1.0f, 0.01f}, {0.99f, 0.02f}, {1.0f, -0.01f},   // group A
      {0.01f, 1.0f}, {-0.02f, 0.98f},                  // group B
  });
  auto result = AgglomerativeClusterCosine(e, 0.3f);
  EXPECT_EQ(result.num_clusters, 2u);
  EXPECT_EQ(result.assignments[0], result.assignments[1]);
  EXPECT_EQ(result.assignments[0], result.assignments[2]);
  EXPECT_EQ(result.assignments[3], result.assignments[4]);
  EXPECT_NE(result.assignments[0], result.assignments[3]);
}

TEST(AgglomerativeTest, ThresholdControlsGranularity) {
  Matrix e = Matrix::FromRows({{1, 0}, {0.9f, 0.1f}, {0, 1}, {0.1f, 0.9f}});
  auto tight = AgglomerativeClusterCosine(e, 0.05f);
  auto loose = AgglomerativeClusterCosine(e, 0.999f);
  EXPECT_GT(tight.num_clusters, loose.num_clusters);
  EXPECT_EQ(loose.num_clusters, 1u);  // everything merges under a loose cut
}

TEST(AgglomerativeTest, ZeroThresholdKeepsDistinctPointsApart) {
  Matrix e = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});
  auto result = AgglomerativeClusterCosine(e, 0.0f);
  EXPECT_EQ(result.num_clusters, 3u);
}

TEST(AgglomerativeTest, IdenticalPointsAlwaysMerge) {
  Matrix e = Matrix::FromRows({{2, 2}, {4, 4}, {1, 1}});  // same direction
  auto result = AgglomerativeClusterCosine(e, 0.01f);
  EXPECT_EQ(result.num_clusters, 1u);
}

TEST(AgglomerativeTest, AssignmentsAreContiguousIds) {
  Rng rng(7);
  Matrix e = Matrix::Randn(20, 8, 1.0f, &rng);
  auto result = AgglomerativeClusterCosine(e, 0.4f);
  std::set<int> ids(result.assignments.begin(), result.assignments.end());
  EXPECT_EQ(ids.size(), result.num_clusters);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), static_cast<int>(result.num_clusters) - 1);
}

TEST(AgglomerativeTest, AverageLinkageChainsLessThanSingleLinkage) {
  // A chain of points A-B-C where A and C are far apart: with a threshold
  // below the A..C average distance the chain must break into >= 2 clusters.
  Matrix e = Matrix::FromRows({
      {1.0f, 0.0f},
      {0.9f, 0.45f},   // close to both ends
      {0.0f, 1.0f},
  });
  auto result = AgglomerativeClusterCosine(e, 0.25f);
  EXPECT_GE(result.num_clusters, 2u);
}

TEST(AgglomerativeTest, AmbiguousSurfaceFormScenario) {
  // Simulates "washington": PER mentions cluster one way, LOC the other.
  // Embeddings trained with margin-1 triplet loss are near-orthogonal
  // across types; threshold 0.7 (< 1) must separate them.
  Rng rng(11);
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 6; ++i) {
    rows.push_back({1.0f + 0.05f * static_cast<float>(rng.NextGaussian()),
                    0.05f * static_cast<float>(rng.NextGaussian())});
  }
  for (int i = 0; i < 4; ++i) {
    rows.push_back({0.05f * static_cast<float>(rng.NextGaussian()),
                    1.0f + 0.05f * static_cast<float>(rng.NextGaussian())});
  }
  auto result = AgglomerativeClusterCosine(Matrix::FromRows(rows), 0.7f);
  EXPECT_EQ(result.num_clusters, 2u);
  for (int i = 1; i < 6; ++i) EXPECT_EQ(result.assignments[i], result.assignments[0]);
  for (int i = 7; i < 10; ++i) EXPECT_EQ(result.assignments[i], result.assignments[6]);
}

}  // namespace
}  // namespace nerglob::cluster
