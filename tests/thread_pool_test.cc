#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nerglob {
namespace {

/// Restores the parallelism knob after each test (tests mutate the global).
class ThreadPoolTest : public ::testing::Test {
 protected:
  ~ThreadPoolTest() override { SetParallelism(0); }
};

TEST_F(ThreadPoolTest, ParallelForEmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 1, [&](size_t) { ++calls; });
  ParallelFor(5, 5, 2, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ThreadPoolTest, ParallelForSingleElement) {
  std::vector<int> hits(1, 0);
  ParallelFor(0, 1, 1, [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
}

TEST_F(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 1000;
  SetParallelism(8);
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, 7, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_F(ThreadPoolTest, ParallelForRangeChunksPartitionTheRange) {
  SetParallelism(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelForRange(0, 257, 16, [&](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST_F(ThreadPoolTest, OrderedMergeIsIdenticalAcrossThreadCounts) {
  // The deterministic-merge pattern used by the pipeline: parallel phase
  // writes slot i, serial phase folds in index order. The folded result
  // must be bit-identical for 1 and 8 threads.
  constexpr size_t kN = 500;
  auto run = [&](size_t threads) {
    SetParallelism(threads);
    std::vector<double> slots(kN);
    ParallelFor(0, kN, 3, [&](size_t i) {
      double v = 1.0;
      for (size_t k = 0; k < i % 17 + 1; ++k) v *= 1.0 + 1.0 / (i + k + 1);
      slots[i] = v;
    });
    double folded = 0.0;
    for (double v : slots) folded += v;  // serial, index order
    return std::make_pair(slots, folded);
  };
  auto [slots1, folded1] = run(1);
  auto [slots8, folded8] = run(8);
  EXPECT_EQ(slots1, slots8);
  EXPECT_EQ(folded1, folded8);
}

TEST_F(ThreadPoolTest, ExceptionPropagatesToCaller) {
  SetParallelism(8);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](size_t i) {
                    if (i == 37) throw std::runtime_error("lane failure");
                  }),
      std::runtime_error);
}

TEST_F(ThreadPoolTest, PoolShutdownWithPendingTasksIsClean) {
  // A pool destroyed while tasks are still queued must join without
  // throwing or deadlocking (pending tasks are simply dropped).
  for (int round = 0; round < 4; ++round) {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i) {
      pool.Schedule([&ran] { ++ran; });
    }
    // Destructor runs here; no assertion on `ran` — only clean shutdown.
  }
  SUCCEED();
}

TEST_F(ThreadPoolTest, NestedParallelForRunsInline) {
  SetParallelism(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  ParallelFor(0, 8, 1, [&](size_t) {
    ++outer;
    EXPECT_TRUE(InParallelRegion());
    ParallelFor(0, 8, 1, [&](size_t) { ++inner; });
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 64);
  EXPECT_FALSE(InParallelRegion());
}

TEST_F(ThreadPoolTest, ParallelismKnobRoundTrips) {
  SetParallelism(3);
  EXPECT_EQ(Parallelism(), 3u);
  SetParallelism(0);  // resets to the env/hardware default
  EXPECT_GE(Parallelism(), 1u);
}

}  // namespace
}  // namespace nerglob
