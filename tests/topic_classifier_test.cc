#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/topic_classifier.h"

namespace nerglob::data {
namespace {

class TopicClassifierTest : public ::testing::Test {
 protected:
  TopicClassifierTest() : kb_(KnowledgeBase::BuildStandard(10, 5)), gen_(&kb_) {}

  std::vector<stream::Message> MultiTopic(uint64_t seed, size_t n) {
    DatasetSpec spec = MakeDatasetSpec("D4", 0.1);
    spec.seed = seed;
    spec.num_messages = n;
    return gen_.Generate(spec);
  }

  KnowledgeBase kb_;
  StreamGenerator gen_;
};

TEST_F(TopicClassifierTest, LearnsTopicsAboveChance) {
  auto train = MultiTopic(100, 500);
  auto test = MultiTopic(200, 200);
  TopicClassifier clf(2048, 24, 7);
  const double loss = clf.Train(train, /*epochs=*/6, 5e-3f, 8);
  EXPECT_LT(loss, 1.3);
  const double accuracy = clf.Evaluate(test);
  // 5 topics -> chance = 0.2. Topical templates should be easy.
  EXPECT_GT(accuracy, 0.6);
}

TEST_F(TopicClassifierTest, PredictIsDeterministic) {
  auto msgs = MultiTopic(300, 10);
  TopicClassifier clf(1024, 16, 9);
  for (const auto& m : msgs) {
    EXPECT_EQ(clf.Predict(m), clf.Predict(m));
  }
}

TEST_F(TopicClassifierTest, EvaluateEmptyIsZero) {
  TopicClassifier clf(512, 8, 1);
  EXPECT_DOUBLE_EQ(clf.Evaluate({}), 0.0);
}

TEST_F(TopicClassifierTest, TopicIdMatchesContentTopic) {
  // After the generator fix, a single-topic stream's entity-bearing
  // messages must all carry that topic id.
  DatasetSpec spec = MakeDatasetSpec("D2", 0.05);
  auto msgs = gen_.Generate(spec);
  size_t health = 0;
  for (const auto& m : msgs) {
    if (m.topic_id == static_cast<int>(Topic::kHealth)) ++health;
  }
  EXPECT_EQ(health, msgs.size());  // D2 is a pure health stream
}

}  // namespace
}  // namespace nerglob::data
