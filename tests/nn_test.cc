#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradient_check.h"
#include "nn/attention.h"
#include "nn/char_cnn.h"
#include "nn/crf.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/recurrent.h"
#include "nn/train_util.h"

namespace nerglob::nn {
namespace {

constexpr float kTol = 3e-2f;

TEST(LinearTest, ShapesAndGradients) {
  Rng rng(1);
  Linear lin(3, 2, &rng);
  EXPECT_EQ(lin.NumParameters(), 3u * 2u + 2u);
  ag::Var x = ag::Constant(Matrix::FromRows({{0.1f, -0.2f, 0.5f}, {1.0f, 0.3f, -0.4f}}));
  ag::Var y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 2u);
  for (ag::Var p : lin.Parameters()) {
    EXPECT_LT(ag::MaxGradientError([&] { return ag::MeanAll(lin.Forward(x)); }, p), kTol);
  }
}

TEST(LinearTest, ApplyMatchesForwardBitForBit) {
  Rng rng(7);
  Linear lin(16, 8, &rng);
  // One SIMD gemm path for every shape (the single-row dot special case is
  // gone); both batch and row inputs must reproduce the autograd value
  // exactly.
  Matrix batch = Matrix::Randn(5, 16, 1.0f, &rng);
  EXPECT_EQ(lin.Apply(batch),
            lin.Forward(ag::Constant(batch)).value());
  Matrix row = Matrix::Randn(1, 16, 1.0f, &rng);
  EXPECT_EQ(lin.Apply(row), lin.Forward(ag::Constant(row)).value());
}

TEST(LayerNormTest, ApplyMatchesForwardBitForBit) {
  Rng rng(21);
  LayerNorm ln(12);
  // Non-trivial affine parameters so the test covers gamma/beta too.
  ln.Parameters()[0].mutable_value() = Matrix::Randn(1, 12, 1.0f, &rng);
  ln.Parameters()[1].mutable_value() = Matrix::Randn(1, 12, 0.5f, &rng);
  Matrix x = Matrix::Randn(5, 12, 2.0f, &rng);
  EXPECT_EQ(ln.Apply(x), ln.Forward(ag::Constant(x)).value());
}

TEST(AttentionTest, ApplyIntoMatchesForwardBitForBit) {
  Rng rng(22);
  MultiHeadSelfAttention mha(16, 4, &rng);
  Matrix x = Matrix::Randn(7, 16, 1.0f, &rng);
  Matrix out;
  mha.ApplyInto(x, &out, &common::ScratchArena::ThreadLocal());
  EXPECT_EQ(out, mha.Forward(ag::Constant(x)).value());
}

TEST(AttentionTest, EncoderLayerApplyIntoMatchesEvalForwardBitForBit) {
  Rng rng(23);
  TransformerEncoderLayer layer(16, 2, /*ff_mult=*/2, /*dropout=*/0.3f, &rng);
  Matrix x = Matrix::Randn(6, 16, 1.0f, &rng);
  Matrix out;
  layer.ApplyInto(x, &out, &common::ScratchArena::ThreadLocal());
  // Dropout is an eval no-op, so the graph-free path must match the
  // training=false tape exactly even with a non-zero dropout rate.
  Rng unused(0);
  EXPECT_EQ(out,
            layer.Forward(ag::Constant(x), /*training=*/false, &unused).value());
}

TEST(MlpTest, ApplyIntoIsAllocationFreeOnceWarm) {
  Rng rng(24);
  Mlp mlp({8, 16, 16, 4}, &rng);
  Matrix x = Matrix::Randn(3, 8, 1.0f, &rng);
  common::ScratchArena arena;
  Matrix out;
  mlp.ApplyInto(x, &out, &arena);  // warm-up: slots + output grow
  out.Reshape(3, 4);
  const uint64_t warm = arena.heap_allocs();
  for (int i = 0; i < 5; ++i) mlp.ApplyInto(x, &out, &arena);
  EXPECT_EQ(arena.heap_allocs(), warm);
  EXPECT_EQ(arena.depth(), 0u);  // every frame restored its mark
}

TEST(LinearTest, TransposedWeightCacheInvalidatesOnParameterUpdate) {
  Rng rng(8);
  Linear lin(4, 3, &rng);
  const Matrix before = lin.TransposedWeight();
  EXPECT_EQ(before, lin.weight().value().Transposed());

  // Simulate an optimizer step; the version stamp must invalidate the cache.
  ag::Var w = lin.Parameters()[0];
  w.mutable_value().At(2, 1) += 1.5f;
  const Matrix& after = lin.TransposedWeight();
  EXPECT_EQ(after, lin.weight().value().Transposed());
  EXPECT_FLOAT_EQ(after.At(1, 2), before.At(1, 2) + 1.5f);
}

TEST(MlpTest, ApplyMatchesForwardBitForBit) {
  Rng rng(9);
  Mlp mlp({12, 10, 10, 5}, &rng);
  Matrix x = Matrix::Randn(6, 12, 1.0f, &rng);
  EXPECT_EQ(mlp.Apply(x), mlp.Forward(ag::Constant(x)).value());
}

TEST(EmbeddingTest, LookupAndGradient) {
  Rng rng(2);
  Embedding emb(10, 4, &rng);
  ag::Var out = emb.Forward({3, 3, 7});
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 4u);
  // Rows 0 and 1 are the same table row.
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(out.value().At(0, c), out.value().At(1, c));
  }
  ag::Var table = emb.Parameters()[0];
  auto loss = [&] { return ag::MeanAll(emb.Forward({3, 3, 7})); };
  EXPECT_LT(ag::MaxGradientError(loss, table), kTol);
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(3);
  LayerNorm ln(6);
  ag::Var x = ag::Constant(Matrix::Randn(4, 6, 3.0f, &rng));
  ag::Var y = ln.Forward(x);
  for (size_t r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (size_t c = 0; c < 6; ++c) mean += y.value().At(r, c);
    mean /= 6;
    for (size_t c = 0; c < 6; ++c) {
      double d = y.value().At(r, c) - mean;
      var += d * d;
    }
    var /= 6;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, TrainingNormalizesAndTracksStats) {
  Rng rng(4);
  BatchNorm1d bn(3);
  Matrix data = Matrix::Randn(32, 3, 2.0f, &rng);
  data.Apply([](float v) { return v + 5.0f; });  // shift mean to 5
  ag::Var x = ag::Constant(data);
  ag::Var y = bn.Forward(x, /*training=*/true);
  double mean0 = 0;
  for (size_t r = 0; r < 32; ++r) mean0 += y.value().At(r, 0);
  EXPECT_NEAR(mean0 / 32, 0.0, 1e-3);
  // Running mean moved toward 5.
  EXPECT_GT(bn.running_mean().At(0, 0), 0.1f);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(5);
  BatchNorm1d bn(2);
  for (int i = 0; i < 50; ++i) {
    Matrix batch = Matrix::Randn(16, 2, 1.0f, &rng);
    batch.Apply([](float v) { return v * 2.0f + 3.0f; });
    bn.Forward(ag::Constant(batch), /*training=*/true);
  }
  // A single input equal to the data mean should map near 0 in eval mode.
  Matrix probe(1, 2, 3.0f);
  ag::Var y = bn.Forward(ag::Constant(probe), /*training=*/false);
  EXPECT_NEAR(y.value().At(0, 0), 0.0f, 0.3f);
}

TEST(MlpTest, ForwardShapeAndGrad) {
  Rng rng(6);
  Mlp mlp({4, 8, 3}, &rng);
  ag::Var x = ag::Constant(Matrix::Randn(2, 4, 1.0f, &rng));
  ag::Var y = mlp.Forward(x);
  EXPECT_EQ(y.cols(), 3u);
  ag::Var p = mlp.Parameters()[0];
  auto loss = [&] { return ag::CrossEntropyWithLogits(mlp.Forward(x), {0, 2}); };
  EXPECT_LT(ag::MaxGradientError(loss, p), kTol);
}

TEST(AttentionTest, ShapePreservedAndGradFlows) {
  Rng rng(7);
  MultiHeadSelfAttention mha(8, 2, &rng);
  ag::Var x = ag::Constant(Matrix::Randn(5, 8, 0.5f, &rng));
  ag::Var y = mha.Forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 8u);
  ag::Var wq = mha.Parameters()[0];
  auto loss = [&] { return ag::MeanAll(mha.Forward(x)); };
  EXPECT_LT(ag::MaxGradientError(loss, wq), 5e-2f);
}

TEST(TransformerLayerTest, ForwardAndTraining) {
  Rng rng(8);
  TransformerEncoderLayer layer(8, 2, 2, /*dropout=*/0.0f, &rng);
  ag::Var x = ag::Constant(Matrix::Randn(4, 8, 0.5f, &rng));
  Rng drop_rng(1);
  ag::Var y = layer.Forward(x, /*training=*/false, &drop_rng);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 8u);
  EXPECT_GT(layer.NumParameters(), 0u);
}

TEST(LstmTest, ShapesAndDirectionality) {
  Rng rng(9);
  Lstm lstm(3, 5, &rng);
  ag::Var x = ag::Constant(Matrix::Randn(6, 3, 1.0f, &rng));
  ag::Var h = lstm.Forward(x);
  EXPECT_EQ(h.rows(), 6u);
  EXPECT_EQ(h.cols(), 5u);
  // Reverse pass differs from forward pass.
  ag::Var hr = lstm.Forward(x, /*reverse=*/true);
  float diff = 0;
  for (size_t i = 0; i < h.value().size(); ++i) {
    diff += std::fabs(h.value().data()[i] - hr.value().data()[i]);
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(LstmTest, GradientCheck) {
  Rng rng(10);
  Lstm lstm(2, 3, &rng);
  ag::Var x = ag::Constant(Matrix::Randn(4, 2, 0.5f, &rng));
  ag::Var w = lstm.Parameters()[0];
  auto loss = [&] { return ag::MeanAll(lstm.Forward(x)); };
  EXPECT_LT(ag::MaxGradientError(loss, w), 5e-2f);
}

TEST(BiLstmTest, ConcatenatesDirections) {
  Rng rng(11);
  BiLstm bi(3, 4, &rng);
  ag::Var x = ag::Constant(Matrix::Randn(5, 3, 1.0f, &rng));
  ag::Var h = bi.Forward(x);
  EXPECT_EQ(h.rows(), 5u);
  EXPECT_EQ(h.cols(), 8u);
  EXPECT_EQ(bi.Parameters().size(), 4u);
}

TEST(CharCnnTest, FixedSizeOutput) {
  Rng rng(12);
  CharCnn cnn(4, 6, &rng);
  ag::Var a = cnn.Forward("covid");
  ag::Var b = cnn.Forward("a");
  ag::Var c = cnn.Forward("");
  EXPECT_EQ(a.cols(), 6u);
  EXPECT_EQ(b.cols(), 6u);
  EXPECT_EQ(c.cols(), 6u);
  EXPECT_FLOAT_EQ(c.value().Sum(), 0.0f);
}

TEST(CharCnnTest, SimilarWordsShareFeatures) {
  Rng rng(13);
  CharCnn cnn(8, 16, &rng);
  // Same word must produce identical features.
  ag::Var a1 = cnn.Forward("beshear");
  ag::Var a2 = cnn.Forward("beshear");
  EXPECT_EQ(a1.value(), a2.value());
}

TEST(TripletLossTest, ZeroWhenWellSeparated) {
  // Anchor == positive, negative orthogonal, margin 1 -> loss exactly 0.
  ag::Var a = ag::Constant(Matrix::RowVector({1, 0}));
  ag::Var p = ag::Constant(Matrix::RowVector({2, 0}));
  ag::Var n = ag::Constant(Matrix::RowVector({0, 3}));
  ag::Var loss = TripletCosineLoss(a, p, n, 1.0f);
  EXPECT_NEAR(loss.value().At(0, 0), 0.0f, 1e-5f);
}

TEST(TripletLossTest, PositiveWhenViolated) {
  // Negative closer than positive -> loss > 0.
  ag::Var a = ag::Constant(Matrix::RowVector({1, 0}));
  ag::Var p = ag::Constant(Matrix::RowVector({0, 1}));
  ag::Var n = ag::Constant(Matrix::RowVector({1, 0.1f}));
  ag::Var loss = TripletCosineLoss(a, p, n, 1.0f);
  EXPECT_GT(loss.value().At(0, 0), 0.5f);
}

TEST(TripletLossTest, GradientCheck) {
  Rng rng(14);
  ag::Var a(Matrix::Randn(1, 4, 1.0f, &rng), true);
  ag::Var p(Matrix::Randn(1, 4, 1.0f, &rng), true);
  ag::Var n(Matrix::Randn(1, 4, 1.0f, &rng), true);
  auto loss = [&] { return TripletCosineLoss(a, p, n, 1.0f); };
  if (loss().value().At(0, 0) > 1e-3f) {  // only check away from the kink
    EXPECT_LT(ag::MaxGradientError(loss, a), kTol);
    EXPECT_LT(ag::MaxGradientError(loss, p), kTol);
    EXPECT_LT(ag::MaxGradientError(loss, n), kTol);
  }
}

TEST(SoftNnLossTest, LowerWhenClassesSeparated) {
  // Two classes, separated vs mixed.
  Matrix separated = Matrix::FromRows(
      {{1, 0}, {0.9f, 0.1f}, {0, 1}, {0.1f, 0.9f}});
  Matrix mixed = Matrix::FromRows({{1, 0}, {0, 1}, {1, 0.05f}, {0.05f, 1}});
  std::vector<int> labels = {0, 0, 1, 1};
  ag::Var ls = SoftNearestNeighborLoss(ag::Var(separated, true), labels, 0.5f);
  ag::Var lm = SoftNearestNeighborLoss(ag::Var(mixed, true), labels, 0.5f);
  EXPECT_LT(ls.value().At(0, 0), lm.value().At(0, 0));
}

TEST(SoftNnLossTest, GradientCheck) {
  Rng rng(15);
  ag::Var x(Matrix::Randn(5, 3, 1.0f, &rng), true);
  std::vector<int> labels = {0, 1, 0, 1, 0};
  auto loss = [&] { return SoftNearestNeighborLoss(x, labels, 0.7f); };
  EXPECT_LT(ag::MaxGradientError(loss, x), 5e-2f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize ||x - t||^2 by SGD.
  ag::Var x(Matrix::RowVector({5, -3}), true);
  ag::Var target = ag::Constant(Matrix::RowVector({1, 2}));
  Sgd opt({x}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    ag::Var diff = ag::Sub(x, target);
    ag::Var loss = ag::SumAll(ag::Mul(diff, diff));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.value().At(0, 0), 1.0f, 1e-3f);
  EXPECT_NEAR(x.value().At(0, 1), 2.0f, 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ag::Var x(Matrix::RowVector({5, -3}), true);
  ag::Var target = ag::Constant(Matrix::RowVector({1, 2}));
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    ag::Var diff = ag::Sub(x, target);
    ag::Var loss = ag::SumAll(ag::Mul(diff, diff));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.value().At(0, 0), 1.0f, 1e-2f);
  EXPECT_NEAR(x.value().At(0, 1), 2.0f, 1e-2f);
}

TEST(AdamTest, WeightDecayShrinksUnusedDirections) {
  ag::Var x(Matrix::RowVector({4.0f}), true);
  Adam opt({x}, 0.05f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    // Loss = 0 * x: only decay acts (gradient must exist, so use 0*x).
    ag::Var loss = ag::SumAll(ag::ScalarMul(x, 0.0f));
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(std::fabs(x.value().At(0, 0)), 2.0f);
}

TEST(LinearWarmupScheduleTest, WarmsUpThenDecays) {
  LinearWarmupSchedule schedule(1.0f, 100, 0.1);
  EXPECT_LT(schedule.LearningRate(0), 0.2f);   // early warmup
  EXPECT_FLOAT_EQ(schedule.LearningRate(9), 1.0f);  // warmup peak
  EXPECT_GT(schedule.LearningRate(10), schedule.LearningRate(50));
  EXPECT_GT(schedule.LearningRate(50), schedule.LearningRate(99));
  EXPECT_NEAR(schedule.LearningRate(99), 0.0f, 0.02f);
  // Clamped beyond the end.
  EXPECT_FLOAT_EQ(schedule.LearningRate(1000), schedule.LearningRate(99));
}

TEST(LinearWarmupScheduleTest, ZeroWarmupStartsAtPeak) {
  LinearWarmupSchedule schedule(0.5f, 10, 0.0);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0), 0.5f);
  EXPECT_LT(schedule.LearningRate(9), 0.1f);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  ag::Var x(Matrix::RowVector({1, 1}), true);
  ag::Var loss = ag::SumAll(ag::ScalarMul(x, 100.0f));
  loss.Backward();
  const float pre = ClipGradNorm({x}, 1.0f);
  EXPECT_GT(pre, 100.0f);
  double norm = 0;
  for (size_t i = 0; i < x.grad().size(); ++i) {
    norm += x.grad().data()[i] * x.grad().data()[i];
  }
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
}

TEST(CrfTest, DecodeReturnsValidTags) {
  Rng rng(16);
  LinearChainCrf crf(4, &rng);
  Matrix emissions = Matrix::Randn(6, 4, 1.0f, &rng);
  auto tags = crf.Decode(emissions);
  ASSERT_EQ(tags.size(), 6u);
  for (int t : tags) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 4);
  }
}

TEST(CrfTest, NllIsNonNegativeAndGradChecks) {
  Rng rng(17);
  LinearChainCrf crf(3, &rng);
  ag::Var emissions(Matrix::Randn(4, 3, 0.5f, &rng), true);
  std::vector<int> tags = {0, 2, 1, 1};
  ag::Var nll = crf.NegLogLikelihood(emissions, tags);
  EXPECT_GT(nll.value().At(0, 0), 0.0f);
  auto loss = [&] { return crf.NegLogLikelihood(emissions, tags); };
  EXPECT_LT(ag::MaxGradientError(loss, emissions), kTol);
  for (ag::Var p : crf.Parameters()) {
    EXPECT_LT(ag::MaxGradientError(loss, p), kTol);
  }
}

TEST(CrfTest, TrainingRecoversTransitionStructure) {
  // Sequences alternate 0,1,0,1... Train CRF on uninformative emissions;
  // it must learn the transition pattern and decode the alternation.
  Rng rng(18);
  LinearChainCrf crf(2, &rng);
  Adam opt(crf.Parameters(), 0.1f);
  Matrix flat(6, 2);  // zero emissions: all signal must come from the CRF
  std::vector<int> gold = {0, 1, 0, 1, 0, 1};
  for (int epoch = 0; epoch < 60; ++epoch) {
    opt.ZeroGrad();
    ag::Var nll = crf.NegLogLikelihood(ag::Constant(flat), gold);
    nll.Backward();
    opt.Step();
  }
  auto decoded = crf.Decode(flat);
  EXPECT_EQ(decoded, gold);
}

TEST(EarlyStopperTest, StopsAfterPatienceAndRestoresBest) {
  ag::Var x(Matrix::RowVector({1.0f}), true);
  std::vector<ag::Var> params = {x};
  EarlyStopper stopper(2, /*higher_is_better=*/true);
  EXPECT_TRUE(stopper.Observe(0.5, params));  // best
  x.mutable_value().At(0, 0) = 2.0f;
  EXPECT_TRUE(stopper.Observe(0.7, params));  // better
  x.mutable_value().At(0, 0) = 3.0f;
  EXPECT_FALSE(stopper.Observe(0.6, params));
  EXPECT_FALSE(stopper.ShouldStop());
  EXPECT_FALSE(stopper.Observe(0.65, params));
  EXPECT_TRUE(stopper.ShouldStop());
  EXPECT_DOUBLE_EQ(stopper.best_metric(), 0.7);
  stopper.RestoreBest(&params);
  EXPECT_FLOAT_EQ(x.value().At(0, 0), 2.0f);  // value at the best epoch
}

TEST(SnapshotTest, RoundTrip) {
  ag::Var a(Matrix::RowVector({1, 2}), true);
  ag::Var b(Matrix::RowVector({3}), true);
  std::vector<ag::Var> params = {a, b};
  auto snap = SnapshotParameters(params);
  a.mutable_value().At(0, 0) = 99.0f;
  RestoreParameters(snap, &params);
  EXPECT_FLOAT_EQ(a.value().At(0, 0), 1.0f);
}

}  // namespace
}  // namespace nerglob::nn
