// Determinism contract of the parallel inference engine: the full pipeline
// must produce bit-identical state and predictions for any NERGLOB_THREADS
// setting AND any NERGLOB_SIMD kernel tier (ISSUE: "deterministic ordered
// result merging" + the kernel determinism contract in DESIGN.md).
// Components are random-init (no training) — determinism is a property of
// the execution engine, not of model quality, and untrained weights still
// produce a rich mix of spans, mentions and clusters to compare.
#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/ner_globalizer.h"
#include "data/generator.h"
#include "data/knowledge_base.h"
#include "lm/micro_bert.h"
#include "tensor/kernels.h"

namespace nerglob {
namespace {

struct PipelineResult {
  std::vector<std::vector<text::EntitySpan>> local;
  std::vector<std::vector<text::EntitySpan>> global;
  size_t trie_size = 0;
  size_t total_mentions = 0;
};

bool SpansEqual(const std::vector<std::vector<text::EntitySpan>>& a,
                const std::vector<std::vector<text::EntitySpan>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lm::MicroBertConfig config;
    config.d_model = 32;
    config.num_heads = 2;
    config.num_layers = 1;
    config.subword_buckets = 512;
    model_ = new lm::MicroBert(config, /*seed=*/17);
    Rng rng(18);
    embedder_ = new core::PhraseEmbedder(config.d_model, &rng);
    classifier_ = new core::EntityClassifier(config.d_model, 24, &rng);
    kb_ = new data::KnowledgeBase(
        data::KnowledgeBase::BuildStandard(/*extra_per_topic_type=*/5,
                                           /*seed=*/19));
    data::StreamGenerator gen(kb_);
    messages_ = new std::vector<stream::Message>(
        gen.Generate(data::MakeDatasetSpec("D1", /*scale=*/0.05)));
  }
  static void TearDownTestSuite() {
    delete messages_;
    delete kb_;
    delete classifier_;
    delete embedder_;
    delete model_;
    messages_ = nullptr;
    kb_ = nullptr;
    classifier_ = nullptr;
    embedder_ = nullptr;
    model_ = nullptr;
  }
  ~ParallelDeterminismTest() override {
    SetParallelism(0);
    kern::ResetSimdLevel();
  }

  static PipelineResult RunWithThreads(size_t threads, size_t batch_size) {
    SetParallelism(threads);
    core::NerGlobalizerConfig config;
    core::NerGlobalizer pipeline(model_, embedder_, classifier_, config);
    pipeline.ProcessAll(*messages_, batch_size);
    PipelineResult result;
    result.local = pipeline.Predictions(core::PipelineStage::kLocalOnly);
    result.global = pipeline.Predictions(core::PipelineStage::kFullGlobal);
    result.trie_size = pipeline.trie().size();
    result.total_mentions = pipeline.candidate_base().TotalMentions();
    SetParallelism(0);
    return result;
  }

  static lm::MicroBert* model_;
  static core::PhraseEmbedder* embedder_;
  static core::EntityClassifier* classifier_;
  static data::KnowledgeBase* kb_;
  static std::vector<stream::Message>* messages_;
};

lm::MicroBert* ParallelDeterminismTest::model_ = nullptr;
core::PhraseEmbedder* ParallelDeterminismTest::embedder_ = nullptr;
core::EntityClassifier* ParallelDeterminismTest::classifier_ = nullptr;
data::KnowledgeBase* ParallelDeterminismTest::kb_ = nullptr;
std::vector<stream::Message>* ParallelDeterminismTest::messages_ = nullptr;

TEST_F(ParallelDeterminismTest, StreamHasEnoughWorkToBeMeaningful) {
  ASSERT_GT(messages_->size(), 20u);
  PipelineResult serial = RunWithThreads(1, 32);
  EXPECT_GT(serial.trie_size, 0u);
  EXPECT_GT(serial.total_mentions, 0u);
}

TEST_F(ParallelDeterminismTest, OneVersusEightThreadsBitIdentical) {
  PipelineResult serial = RunWithThreads(1, 32);
  PipelineResult parallel = RunWithThreads(8, 32);
  EXPECT_EQ(serial.trie_size, parallel.trie_size);
  EXPECT_EQ(serial.total_mentions, parallel.total_mentions);
  EXPECT_TRUE(SpansEqual(serial.local, parallel.local));
  EXPECT_TRUE(SpansEqual(serial.global, parallel.global));
}

TEST_F(ParallelDeterminismTest, ThreadCountStableAcrossBatchSizes) {
  // Batch size changes which sentences share a ParallelFor — the output
  // must stay thread-count independent for each batching.
  for (size_t batch : {8u, 64u}) {
    PipelineResult serial = RunWithThreads(1, batch);
    PipelineResult parallel = RunWithThreads(5, batch);
    EXPECT_TRUE(SpansEqual(serial.global, parallel.global))
        << "batch size " << batch;
  }
}

TEST_F(ParallelDeterminismTest, RepeatedParallelRunsAreStable) {
  PipelineResult first = RunWithThreads(8, 32);
  PipelineResult second = RunWithThreads(8, 32);
  EXPECT_TRUE(SpansEqual(first.global, second.global));
}

TEST_F(ParallelDeterminismTest, SimdTierTimesThreadCountBitIdentical) {
  // The kernel tier is a throughput knob, never a results knob: every
  // (NERGLOB_SIMD, NERGLOB_THREADS) combination must produce the same
  // bits. Skipped (generic-only sweep) where no AVX2 tier exists.
  ASSERT_TRUE(kern::SetSimdLevel(kern::SimdLevel::kGeneric));
  const PipelineResult reference = RunWithThreads(1, 32);
  const bool have_avx2 = kern::BuiltWithAvx2() && kern::CpuSupportsAvx2();
  const std::vector<kern::SimdLevel> tiers =
      have_avx2
          ? std::vector<kern::SimdLevel>{kern::SimdLevel::kGeneric,
                                         kern::SimdLevel::kAvx2}
          : std::vector<kern::SimdLevel>{kern::SimdLevel::kGeneric};
  for (const kern::SimdLevel tier : tiers) {
    ASSERT_TRUE(kern::SetSimdLevel(tier));
    for (const size_t threads : {1u, 6u}) {
      const PipelineResult run = RunWithThreads(threads, 32);
      EXPECT_EQ(reference.trie_size, run.trie_size)
          << kern::SimdLevelName(tier) << " x " << threads;
      EXPECT_EQ(reference.total_mentions, run.total_mentions)
          << kern::SimdLevelName(tier) << " x " << threads;
      EXPECT_TRUE(SpansEqual(reference.local, run.local))
          << kern::SimdLevelName(tier) << " x " << threads;
      EXPECT_TRUE(SpansEqual(reference.global, run.global))
          << kern::SimdLevelName(tier) << " x " << threads;
    }
  }
  kern::ResetSimdLevel();
  if (!have_avx2) {
    GTEST_SKIP() << "AVX2 tier unavailable; sweep covered generic only";
  }
}

}  // namespace
}  // namespace nerglob
