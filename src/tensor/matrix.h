#ifndef NERGLOB_TENSOR_MATRIX_H_
#define NERGLOB_TENSOR_MATRIX_H_

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace nerglob {

/// Dense row-major float matrix. This is the single numeric container used
/// throughout the library (vectors are 1xN or Nx1 matrices). Kernels are
/// BLAS-free but cache-blocked (register-tiled i-k-j gemm with B-panel
/// reuse) and, for large outputs, row-split over the shared thread pool
/// (see common/thread_pool.h); results are bit-identical for any
/// NERGLOB_THREADS setting.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// A rows x cols matrix filled with `value`.
  Matrix(size_t rows, size_t cols, float value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Builds from nested initializer data, e.g. FromRows({{1,2},{3,4}}).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// A 1 x n row vector from values.
  static Matrix RowVector(const std::vector<float>& values);

  /// Gaussian init with the given standard deviation.
  static Matrix Randn(size_t rows, size_t cols, float stddev, Rng* rng);

  /// Uniform init in [-limit, limit] (Glorot-style when
  /// limit = sqrt(6/(fan_in+fan_out))).
  static Matrix RandUniform(size_t rows, size_t cols, float limit, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) {
    NERGLOB_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    NERGLOB_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* Row(size_t r) {
    NERGLOB_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    NERGLOB_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// this += other (same shape).
  void AddInPlace(const Matrix& other);

  /// this += alpha * other (same shape).
  void Axpy(float alpha, const Matrix& other);

  /// this *= alpha.
  void Scale(float alpha);

  /// Elementwise map (in place).
  void Apply(const std::function<float(float)>& fn);

  /// Frobenius norm.
  float FrobeniusNorm() const;

  /// Sum of all elements.
  float Sum() const;

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Extracts rows [begin, begin+count) as a new matrix.
  Matrix SliceRows(size_t begin, size_t count) const;

  /// Exact equality (used in tests; floats compared bitwise-ish).
  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

  /// Human-readable dump (small matrices; tests and debugging).
  std::string DebugString(int max_rows = 8, int max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// out = a * b. Shapes: (m,k) x (k,n) -> (m,n).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Fused out = a * b + bias with `bias` (1 x n) broadcast over rows: one
/// pass over the output instead of MatMul followed by AddRowBroadcast.
/// The bias is added after the full k accumulation, so results match the
/// unfused pair bit-for-bit.
Matrix MatMulAddBias(const Matrix& a, const Matrix& b, const Matrix& bias);

/// out = a^T * b. Shapes: (k,m) x (k,n) -> (m,n).
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// out = a * b^T. Shapes: (m,k) x (n,k) -> (m,n).
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Elementwise a + b (same shape).
Matrix Add(const Matrix& a, const Matrix& b);

/// Elementwise a - b (same shape).
Matrix Sub(const Matrix& a, const Matrix& b);

/// Elementwise a * b (same shape).
Matrix Mul(const Matrix& a, const Matrix& b);

/// Adds row vector `bias` (1 x n) to every row of `a` (m x n).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias);

/// Row-wise softmax.
Matrix SoftmaxRows(const Matrix& a);

/// Row-wise log-softmax (numerically stable).
Matrix LogSoftmaxRows(const Matrix& a);

/// L2 norm of each row; returns m x 1.
Matrix RowL2Norms(const Matrix& a);

/// Dot product of two equal-length vectors given as 1xN or Nx1 matrices.
float VecDot(const Matrix& a, const Matrix& b);

/// Cosine similarity between two vectors (1xN matrices); 0 if either is ~0.
float CosineSimilarity(const Matrix& a, const Matrix& b);

/// Cosine distance = 1 - cosine similarity.
float CosineDistance(const Matrix& a, const Matrix& b);

/// Mean of all rows: (m,n) -> (1,n).
Matrix MeanRows(const Matrix& a);

/// Vertically stacks matrices with equal column counts.
Matrix VStack(const std::vector<Matrix>& parts);

/// Horizontally concatenates matrices with equal row counts.
Matrix HStack(const std::vector<Matrix>& parts);

/// Writes/reads a matrix in a simple binary format (shape + floats).
void WriteMatrix(std::ostream& os, const Matrix& m);
Matrix ReadMatrix(std::istream& is);

}  // namespace nerglob

#endif  // NERGLOB_TENSOR_MATRIX_H_
