#ifndef NERGLOB_TENSOR_MATRIX_H_
#define NERGLOB_TENSOR_MATRIX_H_

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace nerglob {

/// Dense row-major float matrix. This is the single numeric container used
/// throughout the library (vectors are 1xN or Nx1 matrices). Kernels are
/// BLAS-free but cache-blocked (register-tiled i-k-j gemm with B-panel
/// reuse) and, for large outputs, row-split over the shared thread pool
/// (see common/thread_pool.h); results are bit-identical for any
/// NERGLOB_THREADS setting.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// A rows x cols matrix filled with `value`.
  Matrix(size_t rows, size_t cols, float value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Builds from nested initializer data, e.g. FromRows({{1,2},{3,4}}).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// A 1 x n row vector from values.
  static Matrix RowVector(const std::vector<float>& values);

  /// Gaussian init with the given standard deviation.
  static Matrix Randn(size_t rows, size_t cols, float stddev, Rng* rng);

  /// Uniform init in [-limit, limit] (Glorot-style when
  /// limit = sqrt(6/(fan_in+fan_out))).
  static Matrix RandUniform(size_t rows, size_t cols, float limit, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Re-dimensions the matrix to rows x cols, reusing the existing buffer
  /// capacity when it suffices (no heap traffic in that case — this is
  /// what makes scratch-arena matrices allocation-free at steady state).
  /// Element values after a reshape are unspecified; callers are expected
  /// to overwrite the full extent (every *Into kernel does).
  void Reshape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Allocated element capacity of the underlying buffer (>= size()).
  size_t capacity() const { return data_.capacity(); }

  float& At(size_t r, size_t c) {
    NERGLOB_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    NERGLOB_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* Row(size_t r) {
    NERGLOB_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    NERGLOB_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// this += other (same shape).
  void AddInPlace(const Matrix& other);

  /// this += alpha * other (same shape).
  void Axpy(float alpha, const Matrix& other);

  /// this *= alpha.
  void Scale(float alpha);

  /// Elementwise map (in place).
  ///
  /// Deprecated on inference hot paths: the std::function indirection
  /// defeats vectorization and inlining, so per-message kernels should use
  /// the static-dispatch elementwise kernels instead (ReluInPlace below,
  /// or kern::Active() directly). Retained for tests, training-time code
  /// and one-off transforms where convenience beats throughput.
  void Apply(const std::function<float(float)>& fn);

  /// Frobenius norm.
  float FrobeniusNorm() const;

  /// Sum of all elements.
  float Sum() const;

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Extracts rows [begin, begin+count) as a new matrix.
  Matrix SliceRows(size_t begin, size_t count) const;

  /// Exact equality (used in tests; floats compared bitwise-ish).
  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

  /// Human-readable dump (small matrices; tests and debugging).
  std::string DebugString(int max_rows = 8, int max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// out = a * b. Shapes: (m,k) x (k,n) -> (m,n).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Fused out = a * b + bias with `bias` (1 x n) broadcast over rows: one
/// pass over the output instead of MatMul followed by AddRowBroadcast.
/// The bias is added after the full k accumulation, so results match the
/// unfused pair bit-for-bit.
Matrix MatMulAddBias(const Matrix& a, const Matrix& b, const Matrix& bias);

/// out = a^T * b. Shapes: (k,m) x (k,n) -> (m,n).
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// out = a * b^T. Shapes: (m,k) x (n,k) -> (m,n).
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Elementwise a + b (same shape).
Matrix Add(const Matrix& a, const Matrix& b);

/// Elementwise a - b (same shape).
Matrix Sub(const Matrix& a, const Matrix& b);

/// Elementwise a * b (same shape).
Matrix Mul(const Matrix& a, const Matrix& b);

/// Adds row vector `bias` (1 x n) to every row of `a` (m x n).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias);

/// Row-wise softmax.
Matrix SoftmaxRows(const Matrix& a);

/// Row-wise log-softmax (numerically stable).
Matrix LogSoftmaxRows(const Matrix& a);

/// L2 norm of each row; returns m x 1.
Matrix RowL2Norms(const Matrix& a);

/// Dot product of two equal-length vectors given as 1xN or Nx1 matrices.
float VecDot(const Matrix& a, const Matrix& b);

/// Cosine similarity between two vectors (1xN matrices); 0 if either is ~0.
float CosineSimilarity(const Matrix& a, const Matrix& b);

/// Cosine distance = 1 - cosine similarity.
float CosineDistance(const Matrix& a, const Matrix& b);

/// Mean of all rows: (m,n) -> (1,n).
Matrix MeanRows(const Matrix& a);

/// Vertically stacks matrices with equal column counts.
Matrix VStack(const std::vector<Matrix>& parts);

/// Horizontally concatenates matrices with equal row counts.
Matrix HStack(const std::vector<Matrix>& parts);

/// Out-parameter kernel variants. Each reshapes `out` via Matrix::Reshape
/// (reusing its buffer capacity — zero heap traffic at steady state when
/// `out` is a scratch-arena slot) and overwrites its full extent. Unless
/// noted, `out` must not alias an input. All of them dispatch through the
/// runtime-selected SIMD kernel table (see tensor/kernels.h) and return
/// bit-identical results to their allocating counterparts above, for any
/// NERGLOB_SIMD tier and any thread count.

/// out = a * b.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b + bias (1 x n, broadcast over rows; added after the full k
/// accumulation, matching the unfused pair bit-for-bit).
void MatMulAddBiasInto(const Matrix& a, const Matrix& b, const Matrix& bias,
                       Matrix* out);

/// out = a + b (elementwise, same shape).
void AddInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Row-wise softmax. `out == &a` is allowed (in-place).
void SoftmaxRowsInto(const Matrix& a, Matrix* out);

/// Row-wise log-softmax. `out == &a` is allowed (in-place).
void LogSoftmaxRowsInto(const Matrix& a, Matrix* out);

/// Row-wise layer norm with gain/bias (1 x n each):
/// out_r = gamma * (a_r - mean_r) / sqrt(var_r + eps) + beta.
/// Matches ag::LayerNormRows (double statistics) bit-for-bit.
void LayerNormRowsInto(const Matrix& a, const Matrix& gamma,
                       const Matrix& beta, float eps, Matrix* out);

/// out = mean of rows [row_begin, row_end) of a: (1, n). Same accumulation
/// order as MeanRows over the equivalent slice (no intermediate copy).
void MeanRowsInto(const Matrix& a, size_t row_begin, size_t row_end,
                  Matrix* out);

/// out = a^T (blocked copy; must not alias).
void TransposeInto(const Matrix& a, Matrix* out);

/// out = columns [begin, begin+count) of a (memcpy per row).
void SliceColsInto(const Matrix& a, size_t begin, size_t count, Matrix* out);

/// m = relu(m) elementwise via the static-dispatch kernel (NaN and -0 map
/// to +0, like ag::Relu's `x > 0 ? x : 0`).
void ReluInPlace(Matrix* m);

/// Writes/reads a matrix in a simple binary format (shape + floats).
void WriteMatrix(std::ostream& os, const Matrix& m);
Matrix ReadMatrix(std::istream& is);

}  // namespace nerglob

#endif  // NERGLOB_TENSOR_MATRIX_H_
