#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace nerglob {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    NERGLOB_CHECK_EQ(rows[r].size(), m.cols_) << "ragged rows in FromRows";
    std::copy(rows[r].begin(), rows[r].end(), m.Row(r));
  }
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::Randn(size_t rows, size_t cols, float stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = stddev * static_cast<float>(rng->NextGaussian());
  return m;
}

Matrix Matrix::RandUniform(size_t rows, size_t cols, float limit, Rng* rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->NextFloat(-limit, limit);
  return m;
}

void Matrix::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::AddInPlace(const Matrix& other) {
  NERGLOB_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Axpy(float alpha, const Matrix& other) {
  NERGLOB_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(float alpha) {
  for (auto& v : data_) v *= alpha;
}

void Matrix::Apply(const std::function<float(float)>& fn) {
  for (auto& v : data_) v = fn(v);
}

float Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = src[c];
  }
  return out;
}

Matrix Matrix::SliceRows(size_t begin, size_t count) const {
  NERGLOB_CHECK_LE(begin + count, rows_);
  Matrix out(count, cols_);
  std::copy(Row(begin), Row(begin) + count * cols_, out.data());
  return out;
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  for (size_t r = 0; r < rows_ && r < static_cast<size_t>(max_rows); ++r) {
    os << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < cols_ && c < static_cast<size_t>(max_cols); ++c) {
      if (c > 0) os << ", ";
      os << At(r, c);
    }
    if (cols_ > static_cast<size_t>(max_cols)) os << ", ...";
    os << "]";
  }
  if (rows_ > static_cast<size_t>(max_rows)) os << " ...";
  os << "]";
  return os.str();
}

namespace {

/// Output columns per register tile of the blocked GEMM. 16 floats = two
/// AVX2 vectors of independent accumulators; small enough to stay in
/// registers across the whole k loop.
constexpr size_t kGemmTile = 16;

/// Minimum m*n*k before MatMul splits rows over the thread pool. Below
/// this the dispatch overhead dominates; above it each task amortizes.
constexpr size_t kGemmParallelFlops = size_t{1} << 21;

/// Computes rows [row_begin, row_end) of out = a*b (+ bias broadcast over
/// rows when bias != nullptr). i-k-j register-tiled: each 1 x kGemmTile
/// output tile accumulates in registers over the full k extent, reusing the
/// cached B panel across rows and touching each output element exactly
/// once. No data-dependent branches (the old `av == 0` skip silently
/// changed flop counts between sparse and dense inputs and defeated
/// pipelining). Accumulation order over p is ascending for every element
/// regardless of the row partition, so results are bit-for-bit identical
/// for any thread count.
void GemmRowRange(const Matrix& a, const Matrix& b, const float* bias,
                  Matrix* out, size_t row_begin, size_t row_end) {
  const size_t k = a.cols(), n = b.cols();
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* arow = a.Row(i);
    float* orow = out->Row(i);
    size_t j = 0;
    for (; j + kGemmTile <= n; j += kGemmTile) {
      float acc[kGemmTile] = {0.0f};
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* brow = b.Row(p) + j;
        for (size_t t = 0; t < kGemmTile; ++t) acc[t] += av * brow[t];
      }
      if (bias != nullptr) {
        for (size_t t = 0; t < kGemmTile; ++t) orow[j + t] = acc[t] + bias[j + t];
      } else {
        for (size_t t = 0; t < kGemmTile; ++t) orow[j + t] = acc[t];
      }
    }
    if (j < n) {
      const size_t rem = n - j;
      float acc[kGemmTile] = {0.0f};
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* brow = b.Row(p) + j;
        for (size_t t = 0; t < rem; ++t) acc[t] += av * brow[t];
      }
      if (bias != nullptr) {
        for (size_t t = 0; t < rem; ++t) orow[j + t] = acc[t] + bias[j + t];
      } else {
        for (size_t t = 0; t < rem; ++t) orow[j + t] = acc[t];
      }
    }
  }
}

/// GEMM observability slots, resolved once. Multiply-add counts as two
/// flops (the convention Table IV-style throughput numbers expect).
struct GemmMetrics {
  metrics::Counter* calls;
  metrics::Counter* parallel_calls;
  metrics::Counter* flops;
  metrics::Histogram* wall;

  static const GemmMetrics& Get() {
    static const GemmMetrics m = [] {
      auto& registry = metrics::MetricsRegistry::Global();
      return GemmMetrics{registry.GetCounter("gemm.calls_total"),
                         registry.GetCounter("gemm.parallel_calls_total"),
                         registry.GetCounter("gemm.flops_total"),
                         registry.GetHistogram("gemm.wall_seconds")};
    }();
    return m;
  }
};

Matrix GemmImpl(const Matrix& a, const Matrix& b, const float* bias) {
  NERGLOB_CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch";
  Matrix out(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  const size_t flops = m * k * n;
  // One relaxed flag load when disabled; the clock reads only happen when
  // metrics are on (small GEMMs run in ~1us, so an unconditional steady
  // clock read would be measurable).
  const bool record = metrics::Enabled();
  MonotonicClock::time_point start;
  if (record) start = MonotonicClock::now();
  const bool parallel = m >= 2 && flops >= kGemmParallelFlops && Parallelism() > 1;
  if (parallel) {
    const size_t per_row = std::max<size_t>(k * n, 1);
    const size_t grain = std::max<size_t>(1, kGemmParallelFlops / per_row);
    ParallelForRange(0, m, grain, [&](size_t begin, size_t end) {
      GemmRowRange(a, b, bias, &out, begin, end);
    });
  } else {
    GemmRowRange(a, b, bias, &out, 0, m);
  }
  if (record) {
    const GemmMetrics& gm = GemmMetrics::Get();
    gm.calls->Increment();
    if (parallel) gm.parallel_calls->Increment();
    gm.flops->Increment(2 * flops);
    gm.wall->Observe(
        std::chrono::duration<double>(MonotonicClock::now() - start).count());
  }
  return out;
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  return GemmImpl(a, b, /*bias=*/nullptr);
}

Matrix MatMulAddBias(const Matrix& a, const Matrix& b, const Matrix& bias) {
  NERGLOB_CHECK_EQ(bias.rows(), 1u);
  NERGLOB_CHECK_EQ(bias.cols(), b.cols());
  return GemmImpl(a, b, bias.Row(0));
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  NERGLOB_CHECK_EQ(a.rows(), b.rows()) << "MatMulTransA shape mismatch";
  Matrix out(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* orow = out.Row(i);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  NERGLOB_CHECK_EQ(a.cols(), b.cols()) << "MatMulTransB shape mismatch";
  Matrix out(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
      orow[j] = static_cast<float>(acc);
    }
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.AddInPlace(b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.Axpy(-1.0f, b);
  return out;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  NERGLOB_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias) {
  NERGLOB_CHECK_EQ(bias.rows(), 1u);
  NERGLOB_CHECK_EQ(bias.cols(), a.cols());
  Matrix out = a;
  for (size_t r = 0; r < a.rows(); ++r) {
    float* row = out.Row(r);
    const float* b = bias.Row(0);
    for (size_t c = 0; c < a.cols(); ++c) row[c] += b[c];
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* in = a.Row(r);
    float* o = out.Row(r);
    float mx = in[0];
    for (size_t c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
    double total = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      total += o[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t c = 0; c < a.cols(); ++c) o[c] *= inv;
  }
  return out;
}

Matrix LogSoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* in = a.Row(r);
    float* o = out.Row(r);
    float mx = in[0];
    for (size_t c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
    double total = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) total += std::exp(in[c] - mx);
    const float lse = mx + static_cast<float>(std::log(total));
    for (size_t c = 0; c < a.cols(); ++c) o[c] = in[c] - lse;
  }
  return out;
}

Matrix RowL2Norms(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* row = a.Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) acc += static_cast<double>(row[c]) * row[c];
    out.At(r, 0) = static_cast<float>(std::sqrt(acc));
  }
  return out;
}

float VecDot(const Matrix& a, const Matrix& b) {
  NERGLOB_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a.data()[i]) * b.data()[i];
  return static_cast<float>(acc);
}

float CosineSimilarity(const Matrix& a, const Matrix& b) {
  const float dot = VecDot(a, b);
  double na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) na += static_cast<double>(a.data()[i]) * a.data()[i];
  for (size_t i = 0; i < b.size(); ++i) nb += static_cast<double>(b.data()[i]) * b.data()[i];
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom < 1e-12) return 0.0f;
  return static_cast<float>(dot / denom);
}

float CosineDistance(const Matrix& a, const Matrix& b) {
  return 1.0f - CosineSimilarity(a, b);
}

Matrix MeanRows(const Matrix& a) {
  NERGLOB_CHECK_GT(a.rows(), 0u);
  Matrix out(1, a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* row = a.Row(r);
    for (size_t c = 0; c < a.cols(); ++c) out.At(0, c) += row[c];
  }
  out.Scale(1.0f / static_cast<float>(a.rows()));
  return out;
}

Matrix VStack(const std::vector<Matrix>& parts) {
  NERGLOB_CHECK(!parts.empty());
  size_t rows = 0;
  const size_t cols = parts[0].cols();
  for (const auto& p : parts) {
    NERGLOB_CHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  Matrix out(rows, cols);
  size_t r = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.size(), out.Row(r));
    r += p.rows();
  }
  return out;
}

Matrix HStack(const std::vector<Matrix>& parts) {
  NERGLOB_CHECK(!parts.empty());
  const size_t rows = parts[0].rows();
  size_t cols = 0;
  for (const auto& p : parts) {
    NERGLOB_CHECK_EQ(p.rows(), rows);
    cols += p.cols();
  }
  Matrix out(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* orow = out.Row(r);
    size_t off = 0;
    for (const auto& p : parts) {
      std::copy(p.Row(r), p.Row(r) + p.cols(), orow + off);
      off += p.cols();
    }
  }
  return out;
}

void WriteMatrix(std::ostream& os, const Matrix& m) {
  const uint64_t rows = m.rows(), cols = m.cols();
  os.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  os.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix ReadMatrix(std::istream& is) {
  uint64_t rows = 0, cols = 0;
  is.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  is.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  return m;
}

}  // namespace nerglob
