#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "tensor/kernels.h"

namespace nerglob {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    NERGLOB_CHECK_EQ(rows[r].size(), m.cols_) << "ragged rows in FromRows";
    std::copy(rows[r].begin(), rows[r].end(), m.Row(r));
  }
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::Randn(size_t rows, size_t cols, float stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = stddev * static_cast<float>(rng->NextGaussian());
  return m;
}

Matrix Matrix::RandUniform(size_t rows, size_t cols, float limit, Rng* rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->NextFloat(-limit, limit);
  return m;
}

void Matrix::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::AddInPlace(const Matrix& other) {
  NERGLOB_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  kern::Active().add_inplace(data_.data(), other.data_.data(), data_.size());
}

void Matrix::Axpy(float alpha, const Matrix& other) {
  NERGLOB_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  kern::Active().axpy(alpha, other.data_.data(), data_.data(), data_.size());
}

void Matrix::Scale(float alpha) {
  kern::Active().scale(data_.data(), alpha, data_.size());
}

void Matrix::Apply(const std::function<float(float)>& fn) {
  for (auto& v : data_) v = fn(v);
}

float Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

namespace {

/// Cache-blocked transpose: 32x32 tiles keep both the source rows and the
/// destination rows resident while a tile is copied, instead of streaming
/// the whole destination once per source row. Pure data movement — no
/// floating-point — so blocking cannot change results.
constexpr size_t kTransposeTile = 32;

void TransposeBlocked(const float* src, size_t rows, size_t cols, float* dst) {
  for (size_t rb = 0; rb < rows; rb += kTransposeTile) {
    const size_t rend = std::min(rows, rb + kTransposeTile);
    for (size_t cb = 0; cb < cols; cb += kTransposeTile) {
      const size_t cend = std::min(cols, cb + kTransposeTile);
      for (size_t r = rb; r < rend; ++r) {
        const float* srow = src + r * cols;
        for (size_t c = cb; c < cend; ++c) dst[c * rows + r] = srow[c];
      }
    }
  }
}

}  // namespace

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  TransposeBlocked(data_.data(), rows_, cols_, out.data());
  return out;
}

Matrix Matrix::SliceRows(size_t begin, size_t count) const {
  NERGLOB_CHECK_LE(begin + count, rows_);
  Matrix out(count, cols_);
  std::copy(Row(begin), Row(begin) + count * cols_, out.data());
  return out;
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  for (size_t r = 0; r < rows_ && r < static_cast<size_t>(max_rows); ++r) {
    os << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < cols_ && c < static_cast<size_t>(max_cols); ++c) {
      if (c > 0) os << ", ";
      os << At(r, c);
    }
    if (cols_ > static_cast<size_t>(max_cols)) os << ", ...";
    os << "]";
  }
  if (rows_ > static_cast<size_t>(max_rows)) os << " ...";
  os << "]";
  return os.str();
}

namespace {

/// Minimum m*n*k before MatMul splits rows over the thread pool. Below
/// this the dispatch overhead dominates; above it each task amortizes.
constexpr size_t kGemmParallelFlops = size_t{1} << 21;

/// GEMM observability slots, resolved once. Multiply-add counts as two
/// flops (the convention Table IV-style throughput numbers expect).
struct GemmMetrics {
  metrics::Counter* calls;
  metrics::Counter* parallel_calls;
  metrics::Counter* flops;
  metrics::Histogram* wall;

  static const GemmMetrics& Get() {
    static const GemmMetrics m = [] {
      auto& registry = metrics::MetricsRegistry::Global();
      return GemmMetrics{registry.GetCounter("gemm.calls_total"),
                         registry.GetCounter("gemm.parallel_calls_total"),
                         registry.GetCounter("gemm.flops_total"),
                         registry.GetHistogram("gemm.wall_seconds")};
    }();
    return m;
  }
};

/// Shared instrumented GEMM entry: both the allocating wrappers and the
/// *Into variants land here, so gemm.* metrics stay complete regardless of
/// which surface a caller uses. Row panels run through the dispatched
/// kernel table (tensor/kernels.h); the per-element ascending-k
/// accumulation makes any row partition and any SIMD tier bit-identical.
void GemmInto(const Matrix& a, const Matrix& b, const float* bias,
              Matrix* out) {
  NERGLOB_CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch";
  out->Reshape(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  const size_t flops = m * k * n;
  const kern::KernelTable& kt = kern::Active();
  // One relaxed flag load when disabled; the clock reads only happen when
  // metrics are on (small GEMMs run in ~1us, so an unconditional steady
  // clock read would be measurable).
  const bool record = metrics::Enabled();
  MonotonicClock::time_point start;
  if (record) start = MonotonicClock::now();
  const bool parallel = m >= 2 && flops >= kGemmParallelFlops && Parallelism() > 1;
  const float* adata = a.data();
  const float* bdata = b.data();
  float* odata = out->data();
  if (parallel) {
    const size_t per_row = std::max<size_t>(k * n, 1);
    const size_t grain = std::max<size_t>(1, kGemmParallelFlops / per_row);
    ParallelForRange(0, m, grain, [&](size_t begin, size_t end) {
      kt.gemm_rows(adata, k, bdata, n, bias, odata, n, begin, end, k, n);
    });
  } else {
    kt.gemm_rows(adata, k, bdata, n, bias, odata, n, 0, m, k, n);
  }
  if (record) {
    const GemmMetrics& gm = GemmMetrics::Get();
    gm.calls->Increment();
    if (parallel) gm.parallel_calls->Increment();
    gm.flops->Increment(2 * flops);
    gm.wall->Observe(
        std::chrono::duration<double>(MonotonicClock::now() - start).count());
  }
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  GemmInto(a, b, /*bias=*/nullptr, &out);
  return out;
}

Matrix MatMulAddBias(const Matrix& a, const Matrix& b, const Matrix& bias) {
  NERGLOB_CHECK_EQ(bias.rows(), 1u);
  NERGLOB_CHECK_EQ(bias.cols(), b.cols());
  Matrix out;
  GemmInto(a, b, bias.Row(0), &out);
  return out;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  GemmInto(a, b, /*bias=*/nullptr, out);
}

void MatMulAddBiasInto(const Matrix& a, const Matrix& b, const Matrix& bias,
                       Matrix* out) {
  NERGLOB_CHECK_EQ(bias.rows(), 1u);
  NERGLOB_CHECK_EQ(bias.cols(), b.cols());
  GemmInto(a, b, bias.Row(0), out);
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  NERGLOB_CHECK_EQ(a.rows(), b.rows()) << "MatMulTransA shape mismatch";
  Matrix out(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* orow = out.Row(i);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  NERGLOB_CHECK_EQ(a.cols(), b.cols()) << "MatMulTransB shape mismatch";
  Matrix out(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
      orow[j] = static_cast<float>(acc);
    }
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.AddInPlace(b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.Axpy(-1.0f, b);
  return out;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  NERGLOB_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias) {
  NERGLOB_CHECK_EQ(bias.rows(), 1u);
  NERGLOB_CHECK_EQ(bias.cols(), a.cols());
  Matrix out = a;
  for (size_t r = 0; r < a.rows(); ++r) {
    float* row = out.Row(r);
    const float* b = bias.Row(0);
    for (size_t c = 0; c < a.cols(); ++c) row[c] += b[c];
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out;
  SoftmaxRowsInto(a, &out);
  return out;
}

Matrix LogSoftmaxRows(const Matrix& a) {
  Matrix out;
  LogSoftmaxRowsInto(a, &out);
  return out;
}

void SoftmaxRowsInto(const Matrix& a, Matrix* out) {
  const kern::KernelTable& kt = kern::Active();
  const size_t rows = a.rows(), cols = a.cols();
  if (out != &a) out->Reshape(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    kt.softmax_row(a.Row(r), out->Row(r), cols);
  }
}

void LogSoftmaxRowsInto(const Matrix& a, Matrix* out) {
  const kern::KernelTable& kt = kern::Active();
  const size_t rows = a.rows(), cols = a.cols();
  if (out != &a) out->Reshape(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    kt.logsoftmax_row(a.Row(r), out->Row(r), cols);
  }
}

Matrix RowL2Norms(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* row = a.Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) acc += static_cast<double>(row[c]) * row[c];
    out.At(r, 0) = static_cast<float>(std::sqrt(acc));
  }
  return out;
}

float VecDot(const Matrix& a, const Matrix& b) {
  NERGLOB_CHECK_EQ(a.size(), b.size());
  // 4-lane-striped double accumulation (see kern::KernelTable::dot_f64):
  // the striping is part of the numeric contract, identical in every
  // dispatch tier.
  return static_cast<float>(kern::Active().dot_f64(a.data(), b.data(), a.size()));
}

float CosineSimilarity(const Matrix& a, const Matrix& b) {
  NERGLOB_CHECK_EQ(a.size(), b.size());
  const kern::KernelTable& kt = kern::Active();
  const double dot = kt.dot_f64(a.data(), b.data(), a.size());
  const double na = kt.dot_f64(a.data(), a.data(), a.size());
  const double nb = kt.dot_f64(b.data(), b.data(), b.size());
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom < 1e-12) return 0.0f;
  return static_cast<float>(static_cast<float>(dot) / denom);
}

float CosineDistance(const Matrix& a, const Matrix& b) {
  return 1.0f - CosineSimilarity(a, b);
}

Matrix MeanRows(const Matrix& a) {
  Matrix out;
  MeanRowsInto(a, 0, a.rows(), &out);
  return out;
}

void MeanRowsInto(const Matrix& a, size_t row_begin, size_t row_end,
                  Matrix* out) {
  NERGLOB_CHECK_LT(row_begin, row_end);
  NERGLOB_CHECK_LE(row_end, a.rows());
  const kern::KernelTable& kt = kern::Active();
  const size_t cols = a.cols();
  out->Reshape(1, cols);
  out->Zero();
  // Float accumulation in ascending row order, then one scale — the same
  // order MeanRows has always used, so slicing a row range here is
  // bit-identical to MeanRows(a.SliceRows(...)) without the copy.
  float* acc = out->Row(0);
  for (size_t r = row_begin; r < row_end; ++r) {
    kt.add_inplace(acc, a.Row(r), cols);
  }
  kt.scale(acc, 1.0f / static_cast<float>(row_end - row_begin), cols);
}

void AddInto(const Matrix& a, const Matrix& b, Matrix* out) {
  NERGLOB_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  out->Reshape(a.rows(), a.cols());
  kern::Active().add(a.data(), b.data(), out->data(), a.size());
}

void LayerNormRowsInto(const Matrix& a, const Matrix& gamma,
                       const Matrix& beta, float eps, Matrix* out) {
  NERGLOB_CHECK_EQ(gamma.rows(), 1u);
  NERGLOB_CHECK_EQ(gamma.cols(), a.cols());
  NERGLOB_CHECK_EQ(beta.rows(), 1u);
  NERGLOB_CHECK_EQ(beta.cols(), a.cols());
  const kern::KernelTable& kt = kern::Active();
  const size_t rows = a.rows(), cols = a.cols();
  if (out != &a) out->Reshape(rows, cols);
  const float* g = gamma.Row(0);
  const float* bt = beta.Row(0);
  for (size_t r = 0; r < rows; ++r) {
    kt.layernorm_row(a.Row(r), g, bt, eps, out->Row(r), cols);
  }
}

void TransposeInto(const Matrix& a, Matrix* out) {
  NERGLOB_CHECK(out != &a) << "TransposeInto cannot alias its input";
  out->Reshape(a.cols(), a.rows());
  TransposeBlocked(a.data(), a.rows(), a.cols(), out->data());
}

void SliceColsInto(const Matrix& a, size_t begin, size_t count, Matrix* out) {
  NERGLOB_CHECK_LE(begin + count, a.cols());
  out->Reshape(a.rows(), count);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* src = a.Row(r) + begin;
    std::copy(src, src + count, out->Row(r));
  }
}

void ReluInPlace(Matrix* m) {
  kern::Active().relu(m->data(), m->size());
}

Matrix VStack(const std::vector<Matrix>& parts) {
  NERGLOB_CHECK(!parts.empty());
  size_t rows = 0;
  const size_t cols = parts[0].cols();
  for (const auto& p : parts) {
    NERGLOB_CHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  Matrix out(rows, cols);
  size_t r = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.size(), out.Row(r));
    r += p.rows();
  }
  return out;
}

Matrix HStack(const std::vector<Matrix>& parts) {
  NERGLOB_CHECK(!parts.empty());
  const size_t rows = parts[0].rows();
  size_t cols = 0;
  for (const auto& p : parts) {
    NERGLOB_CHECK_EQ(p.rows(), rows);
    cols += p.cols();
  }
  Matrix out(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    float* orow = out.Row(r);
    size_t off = 0;
    for (const auto& p : parts) {
      std::copy(p.Row(r), p.Row(r) + p.cols(), orow + off);
      off += p.cols();
    }
  }
  return out;
}

void WriteMatrix(std::ostream& os, const Matrix& m) {
  const uint64_t rows = m.rows(), cols = m.cols();
  os.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  os.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix ReadMatrix(std::istream& is) {
  uint64_t rows = 0, cols = 0;
  is.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  is.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  return m;
}

}  // namespace nerglob
