// Generic (portable scalar) kernels and the runtime dispatch machinery.
// Compiled with -ffp-contract=off (see src/tensor/CMakeLists.txt): the
// mul+add pairs below define the reference rounding behaviour, and letting
// a -mfma build contract them would silently change the low bits relative
// to the AVX2 tier, breaking the bit-identical dispatch contract.
#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <string>

#include "common/env.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace nerglob::kern {

namespace {

/// Output columns per register tile of the blocked GEMM: 16 floats = two
/// 256-bit vectors of independent accumulators, small enough to live in
/// registers across the whole k loop. The AVX2 tier uses the same tile so
/// the per-element accumulation order is identical.
constexpr size_t kGemmTile = 16;

void GemmRowsGeneric(const float* a, size_t lda, const float* b, size_t ldb,
                     const float* bias, float* out, size_t ldo,
                     size_t row_begin, size_t row_end, size_t k, size_t n) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * lda;
    float* orow = out + i * ldo;
    size_t j = 0;
    for (; j + kGemmTile <= n; j += kGemmTile) {
      float acc[kGemmTile] = {0.0f};
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* brow = b + p * ldb + j;
        for (size_t t = 0; t < kGemmTile; ++t) acc[t] += av * brow[t];
      }
      if (bias != nullptr) {
        for (size_t t = 0; t < kGemmTile; ++t) orow[j + t] = acc[t] + bias[j + t];
      } else {
        for (size_t t = 0; t < kGemmTile; ++t) orow[j + t] = acc[t];
      }
    }
    if (j < n) {
      const size_t rem = n - j;
      float acc[kGemmTile] = {0.0f};
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* brow = b + p * ldb + j;
        for (size_t t = 0; t < rem; ++t) acc[t] += av * brow[t];
      }
      if (bias != nullptr) {
        for (size_t t = 0; t < rem; ++t) orow[j + t] = acc[t] + bias[j + t];
      } else {
        for (size_t t = 0; t < rem; ++t) orow[j + t] = acc[t];
      }
    }
  }
}

void AddGeneric(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void AddInPlaceGeneric(float* y, const float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += x[i];
}

void AxpyGeneric(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleGeneric(float* x, float alpha, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void ReluGeneric(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void SoftmaxRowGeneric(const float* in, float* out, size_t n) {
  float mx = in[0];
  for (size_t c = 1; c < n; ++c) mx = std::max(mx, in[c]);
  double total = 0.0;
  for (size_t c = 0; c < n; ++c) {
    out[c] = std::exp(in[c] - mx);
    total += out[c];
  }
  const float inv = static_cast<float>(1.0 / total);
  for (size_t c = 0; c < n; ++c) out[c] *= inv;
}

void LogSoftmaxRowGeneric(const float* in, float* out, size_t n) {
  float mx = in[0];
  for (size_t c = 1; c < n; ++c) mx = std::max(mx, in[c]);
  double total = 0.0;
  for (size_t c = 0; c < n; ++c) total += std::exp(in[c] - mx);
  const float lse = mx + static_cast<float>(std::log(total));
  for (size_t c = 0; c < n; ++c) out[c] = in[c] - lse;
}

void LayerNormRowGeneric(const float* in, const float* gamma,
                         const float* beta, float eps, float* out, size_t n) {
  double mean = 0.0;
  for (size_t c = 0; c < n; ++c) mean += in[c];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (size_t c = 0; c < n; ++c) {
    const double d = in[c] - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);
  const double inv_std = 1.0 / std::sqrt(var + eps);
  for (size_t c = 0; c < n; ++c) {
    const float xhat = static_cast<float>((in[c] - mean) * inv_std);
    out[c] = gamma[c] * xhat + beta[c];
  }
}

double DotF64Generic(const float* a, const float* b, size_t n) {
  const size_t n4 = n & ~size_t{3};
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n4; i += 4) {
    for (size_t t = 0; t < 4; ++t) {
      lane[t] += static_cast<double>(a[i + t]) * static_cast<double>(b[i + t]);
    }
  }
  double tail = 0.0;
  for (size_t i = n4; i < n; ++i) {
    tail += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) + tail;
}

const KernelTable kGenericTable = {
    "generic",
    SimdLevel::kGeneric,
    &GemmRowsGeneric,
    &AddGeneric,
    &AddInPlaceGeneric,
    &AxpyGeneric,
    &ScaleGeneric,
    &ReluGeneric,
    &SoftmaxRowGeneric,
    &LogSoftmaxRowGeneric,
    &LayerNormRowGeneric,
    &DotF64Generic,
};

/// Resolves the startup tier: explicit NERGLOB_SIMD wins, then cpuid.
const KernelTable* ResolveFromEnvironment() {
  const std::string env = env::EnvString("NERGLOB_SIMD", "");
  if (!env.empty()) {
    if (env == "generic") return &GenericKernels();
    if (env == "avx2") {
      if (BuiltWithAvx2() && CpuSupportsAvx2()) return &Avx2Kernels();
      NERGLOB_LOG(kWarning) << "NERGLOB_SIMD=avx2 requested but AVX2 is "
                           << (BuiltWithAvx2() ? "not supported by this CPU"
                                               : "not compiled in")
                           << "; falling back to generic kernels";
      return &GenericKernels();
    }
    NERGLOB_LOG(kWarning) << "unknown NERGLOB_SIMD value '" << env
                         << "' (expected avx2|generic); using auto-detection";
  }
  if (BuiltWithAvx2() && CpuSupportsAvx2()) return &Avx2Kernels();
  return &GenericKernels();
}

std::atomic<const KernelTable*>& ActiveSlot() {
  static std::atomic<const KernelTable*> slot{nullptr};
  return slot;
}

/// Publishes the tier as a gauge so metric snapshots record which kernels
/// produced them (0 = generic, 1 = avx2).
void PublishLevelMetric(const KernelTable* table) {
  if (!metrics::Enabled()) return;
  metrics::MetricsRegistry::Global()
      .GetGauge("kernels.simd_level")
      ->Set(static_cast<double>(table->level));
}

const KernelTable* ResolveAndPublish() {
  const KernelTable* table = ResolveFromEnvironment();
  PublishLevelMetric(table);
  return table;
}

}  // namespace

const KernelTable& GenericKernels() { return kGenericTable; }

const KernelTable& Active() {
  const KernelTable* table = ActiveSlot().load(std::memory_order_relaxed);
  if (table == nullptr) {
    // First call (or first call after ResetSimdLevel). Resolution is
    // idempotent, so a benign race just resolves twice to the same table.
    table = ResolveAndPublish();
    ActiveSlot().store(table, std::memory_order_relaxed);
  }
  return *table;
}

SimdLevel ActiveLevel() { return Active().level; }

bool SetSimdLevel(SimdLevel level) {
  const KernelTable* table = nullptr;
  switch (level) {
    case SimdLevel::kGeneric:
      table = &GenericKernels();
      break;
    case SimdLevel::kAvx2:
      if (!BuiltWithAvx2() || !CpuSupportsAvx2()) return false;
      table = &Avx2Kernels();
      break;
  }
  if (table == nullptr) return false;
  ActiveSlot().store(table, std::memory_order_relaxed);
  PublishLevelMetric(table);
  return true;
}

void ResetSimdLevel() {
  ActiveSlot().store(nullptr, std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric:
      return "generic";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace nerglob::kern
