#ifndef NERGLOB_TENSOR_KERNELS_H_
#define NERGLOB_TENSOR_KERNELS_H_

#include <cstddef>

namespace nerglob::kern {

/// Instruction-set tiers the kernel layer can dispatch to. Resolved once at
/// startup (cpuid + the NERGLOB_SIMD environment override); every tier
/// produces bit-identical outputs, so the choice is purely a throughput
/// knob and never an accuracy or determinism one.
enum class SimdLevel {
  kGeneric = 0,  ///< portable scalar kernels (compiler auto-vectorization only)
  kAvx2 = 1,     ///< AVX2 256-bit kernels (x86-64; mul+add, no FMA contraction)
};

/// Flat function-pointer table for the hot numeric kernels. All pointers
/// are raw float buffers (row-major with explicit leading dimensions) so
/// the same entry points serve Matrix, arena scratch and bench callers.
///
/// Determinism contract (see DESIGN.md "Kernel dispatch"): for identical
/// inputs every implementation of an entry must return bit-identical
/// outputs. The generic kernels fix the accumulation order — per-output
/// accumulators walked in ascending k (gemm), 4-lane-striped doubles
/// (dot_f64), sequential double reductions (softmax/layernorm statistics)
/// — and the SIMD kernels reproduce exactly that order with mul+add
/// intrinsics (never FMA, whose single-rounding contraction would change
/// the low bits). Both translation units are compiled with
/// -ffp-contract=off so a -mfma build cannot silently re-fuse them.
struct KernelTable {
  /// Human-readable tier name ("generic", "avx2") for logs and metrics.
  const char* name;
  SimdLevel level;

  /// Rows [row_begin, row_end) of out = a * b (+ bias broadcast over rows
  /// when bias != nullptr). a is (m, k) with leading dimension lda, b is
  /// (k, n) with ldb, out is (m, n) with ldo. Each output element is a
  /// single float accumulator over ascending p in [0, k); the bias is
  /// added after the full accumulation (matches the unfused pair
  /// bit-for-bit). Row ranges compose: any partition of [0, m) produces
  /// the same bits, which is what makes the thread-pool row split safe.
  void (*gemm_rows)(const float* a, size_t lda, const float* b, size_t ldb,
                    const float* bias, float* out, size_t ldo,
                    size_t row_begin, size_t row_end, size_t k, size_t n);

  /// out[i] = a[i] + b[i].
  void (*add)(const float* a, const float* b, float* out, size_t n);
  /// y[i] += x[i].
  void (*add_inplace)(float* y, const float* x, size_t n);
  /// y[i] += alpha * x[i] (mul then add, two roundings — no FMA).
  void (*axpy)(float alpha, const float* x, float* y, size_t n);
  /// x[i] *= alpha.
  void (*scale)(float* x, float alpha, size_t n);
  /// x[i] = x[i] > 0 ? x[i] : 0 (NaN and -0 map to +0, like the scalar
  /// ternary — implemented as a compare mask, not maxps, whose NaN
  /// operand rules differ).
  void (*relu)(float* x, size_t n);

  /// Row-wise softmax of one row: out may alias in. Max and the exp sum
  /// are sequential (scalar std::exp, double accumulator) in every tier —
  /// only the final scale vectorizes — so the bits match the historical
  /// scalar kernel exactly, NaN inputs included.
  void (*softmax_row)(const float* in, float* out, size_t n);
  /// Row-wise log-softmax of one row; same sequential-reduction contract.
  void (*logsoftmax_row)(const float* in, float* out, size_t n);
  /// One layer-norm row: sequential double mean/variance, then the
  /// elementwise normalize+affine (the only vectorized part):
  ///   out[c] = gamma[c] * float((in[c] - mean) * inv_std) + beta[c].
  void (*layernorm_row)(const float* in, const float* gamma,
                        const float* beta, float eps, float* out, size_t n);

  /// Double-precision dot product in 4-lane-striped order: lane t sums
  /// elements with index ≡ t (mod 4) ascending, the n%4 tail accumulates
  /// sequentially into a separate lane, and the reduction is the fixed
  /// tree ((l0+l1)+(l2+l3))+tail. Both tiers implement exactly this.
  double (*dot_f64)(const float* a, const float* b, size_t n);
};

/// The portable scalar table (always available).
const KernelTable& GenericKernels();

/// The AVX2 table. On non-x86 builds (or toolchains without AVX2 support)
/// this is an alias of GenericKernels(); call CpuSupportsAvx2() before
/// selecting it at runtime on x86.
const KernelTable& Avx2Kernels();

/// True when the running CPU reports AVX2 (always false on non-x86).
bool CpuSupportsAvx2();

/// True when Avx2Kernels() is a real AVX2 build, not the generic alias.
bool BuiltWithAvx2();

/// The active table: one relaxed atomic load, safe from any thread. First
/// use resolves the tier: NERGLOB_SIMD=avx2|generic forces a tier
/// (falling back to generic with a warning when avx2 is requested but
/// unavailable); otherwise cpuid picks the best supported one.
const KernelTable& Active();

/// Tier of Active().
SimdLevel ActiveLevel();

/// Forces the dispatch tier at runtime (tests, benchmark sweeps). Returns
/// false — leaving the tier unchanged — when the requested tier is not
/// available on this machine/build. Mirrors SetParallelism: intended for
/// controlled sweeps, not concurrent flipping under load.
bool SetSimdLevel(SimdLevel level);

/// Drops any SetSimdLevel override and re-resolves from the environment
/// and cpuid (test teardown).
void ResetSimdLevel();

/// Name of a tier ("generic"/"avx2") for logs, metrics and JSON.
const char* SimdLevelName(SimdLevel level);

}  // namespace nerglob::kern

#endif  // NERGLOB_TENSOR_KERNELS_H_
