// AVX2 kernel tier. This translation unit is the only one compiled with
// -mavx2 (plus -ffp-contract=off, like the generic TU); everything here is
// guarded so non-x86 builds degrade to the generic table.
//
// Bit-identity with the generic tier is a hard contract, which drives two
// unusual choices:
//   * No FMA intrinsics. _mm256_fmadd_ps rounds once where mul+add rounds
//     twice, so a fused kernel would differ from the scalar reference in
//     the low bits. Separate _mm256_mul_ps/_mm256_add_ps reproduce the
//     scalar rounding exactly (IEEE ops are deterministic per element).
//   * Reductions keep the generic order. The GEMM accumulates each output
//     element independently over ascending k (lanes are just parallel
//     elements, never partial sums of one element); dot_f64 uses the same
//     4-lane double striping as the generic kernel; softmax/layer-norm
//     statistics stay sequential scalar, only their elementwise tails
//     vectorize.
#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))
#define NERGLOB_HAVE_AVX2_TU 1
#include <immintrin.h>
#else
#define NERGLOB_HAVE_AVX2_TU 0
#endif

namespace nerglob::kern {

#if NERGLOB_HAVE_AVX2_TU

namespace {

constexpr size_t kGemmTile = 16;  // must match the generic tile

/// One row of out = a*b (+bias), columns [0, n). 16-wide main tile, then
/// an 8-wide tile, then a scalar tail that matches the generic remainder
/// loop element for element.
inline void GemmRowAvx2(const float* arow, const float* b, size_t ldb,
                        const float* bias, float* orow, size_t k, size_t n) {
  size_t j = 0;
  for (; j + kGemmTile <= n; j += kGemmTile) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    const float* bj = b + j;
    for (size_t p = 0; p < k; ++p) {
      const __m256 av = _mm256_set1_ps(arow[p]);
      const float* brow = bj + p * ldb;
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 8)));
    }
    if (bias != nullptr) {
      acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(bias + j));
      acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(bias + j + 8));
    }
    _mm256_storeu_ps(orow + j, acc0);
    _mm256_storeu_ps(orow + j + 8, acc1);
  }
  if (j + 8 <= n) {
    __m256 acc = _mm256_setzero_ps();
    const float* bj = b + j;
    for (size_t p = 0; p < k; ++p) {
      const __m256 av = _mm256_set1_ps(arow[p]);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(av, _mm256_loadu_ps(bj + p * ldb)));
    }
    if (bias != nullptr) acc = _mm256_add_ps(acc, _mm256_loadu_ps(bias + j));
    _mm256_storeu_ps(orow + j, acc);
    j += 8;
  }
  if (j < n) {
    const size_t rem = n - j;
    float acc[8] = {0.0f};
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * ldb + j;
      for (size_t t = 0; t < rem; ++t) acc[t] += av * brow[t];
    }
    if (bias != nullptr) {
      for (size_t t = 0; t < rem; ++t) orow[j + t] = acc[t] + bias[j + t];
    } else {
      for (size_t t = 0; t < rem; ++t) orow[j + t] = acc[t];
    }
  }
}

/// Four rows at once over a shared B panel: 8 accumulators (4 rows x two
/// 8-lane vectors) amortize each B load across four broadcasts, which is
/// what pushes throughput past the single-row kernel on d=64 shapes.
inline void Gemm4RowsAvx2(const float* a, size_t lda, size_t i, const float* b,
                          size_t ldb, const float* bias, float* out, size_t ldo,
                          size_t k, size_t n) {
  const float* a0 = a + i * lda;
  const float* a1 = a0 + lda;
  const float* a2 = a1 + lda;
  const float* a3 = a2 + lda;
  float* o0 = out + i * ldo;
  float* o1 = o0 + ldo;
  float* o2 = o1 + ldo;
  float* o3 = o2 + ldo;
  size_t j = 0;
  for (; j + kGemmTile <= n; j += kGemmTile) {
    __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
    __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
    __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
    __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
    const float* bj = b + j;
    for (size_t p = 0; p < k; ++p) {
      const float* brow = bj + p * ldb;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      __m256 av = _mm256_set1_ps(a0[p]);
      c00 = _mm256_add_ps(c00, _mm256_mul_ps(av, b0));
      c01 = _mm256_add_ps(c01, _mm256_mul_ps(av, b1));
      av = _mm256_set1_ps(a1[p]);
      c10 = _mm256_add_ps(c10, _mm256_mul_ps(av, b0));
      c11 = _mm256_add_ps(c11, _mm256_mul_ps(av, b1));
      av = _mm256_set1_ps(a2[p]);
      c20 = _mm256_add_ps(c20, _mm256_mul_ps(av, b0));
      c21 = _mm256_add_ps(c21, _mm256_mul_ps(av, b1));
      av = _mm256_set1_ps(a3[p]);
      c30 = _mm256_add_ps(c30, _mm256_mul_ps(av, b0));
      c31 = _mm256_add_ps(c31, _mm256_mul_ps(av, b1));
    }
    if (bias != nullptr) {
      const __m256 bb0 = _mm256_loadu_ps(bias + j);
      const __m256 bb1 = _mm256_loadu_ps(bias + j + 8);
      c00 = _mm256_add_ps(c00, bb0);
      c01 = _mm256_add_ps(c01, bb1);
      c10 = _mm256_add_ps(c10, bb0);
      c11 = _mm256_add_ps(c11, bb1);
      c20 = _mm256_add_ps(c20, bb0);
      c21 = _mm256_add_ps(c21, bb1);
      c30 = _mm256_add_ps(c30, bb0);
      c31 = _mm256_add_ps(c31, bb1);
    }
    _mm256_storeu_ps(o0 + j, c00);
    _mm256_storeu_ps(o0 + j + 8, c01);
    _mm256_storeu_ps(o1 + j, c10);
    _mm256_storeu_ps(o1 + j + 8, c11);
    _mm256_storeu_ps(o2 + j, c20);
    _mm256_storeu_ps(o2 + j + 8, c21);
    _mm256_storeu_ps(o3 + j, c30);
    _mm256_storeu_ps(o3 + j + 8, c31);
  }
  if (j < n) {
    // Column remainder: fall back to the single-row kernel per row; its
    // 8-wide + scalar tail matches the generic remainder order.
    const size_t off = j;
    const size_t rem = n - j;
    GemmRowAvx2(a0, b + off, ldb, bias != nullptr ? bias + off : nullptr,
                o0 + off, k, rem);
    GemmRowAvx2(a1, b + off, ldb, bias != nullptr ? bias + off : nullptr,
                o1 + off, k, rem);
    GemmRowAvx2(a2, b + off, ldb, bias != nullptr ? bias + off : nullptr,
                o2 + off, k, rem);
    GemmRowAvx2(a3, b + off, ldb, bias != nullptr ? bias + off : nullptr,
                o3 + off, k, rem);
  }
}

void GemmRowsAvx2(const float* a, size_t lda, const float* b, size_t ldb,
                  const float* bias, float* out, size_t ldo, size_t row_begin,
                  size_t row_end, size_t k, size_t n) {
  size_t i = row_begin;
  for (; i + 4 <= row_end; i += 4) {
    Gemm4RowsAvx2(a, lda, i, b, ldb, bias, out, ldo, k, n);
  }
  for (; i < row_end; ++i) {
    GemmRowAvx2(a + i * lda, b, ldb, bias, out + i * ldo, k, n);
  }
}

void AddAvx2(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i,
                     _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void AddInPlaceAvx2(float* y, const float* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i,
                     _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(float* x, float alpha, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void ReluAvx2(float* x, size_t n) {
  // Compare-and-mask rather than maxps: `v > 0 ? v : 0` must send NaN (and
  // -0) to +0 exactly like the scalar ternary, and maxps' NaN operand
  // rules differ.
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 mask = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(x + i, _mm256_and_ps(v, mask));
  }
  for (; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void SoftmaxRowAvx2(const float* in, float* out, size_t n) {
  // Max and the exp/sum pass are sequential scalar by contract (NaN
  // ordering and double-sum associativity); only the final elementwise
  // scale vectorizes.
  float mx = in[0];
  for (size_t c = 1; c < n; ++c) mx = std::max(mx, in[c]);
  double total = 0.0;
  for (size_t c = 0; c < n; ++c) {
    out[c] = std::exp(in[c] - mx);
    total += out[c];
  }
  const float inv = static_cast<float>(1.0 / total);
  ScaleAvx2(out, inv, n);
}

void LogSoftmaxRowAvx2(const float* in, float* out, size_t n) {
  float mx = in[0];
  for (size_t c = 1; c < n; ++c) mx = std::max(mx, in[c]);
  double total = 0.0;
  for (size_t c = 0; c < n; ++c) total += std::exp(in[c] - mx);
  const float lse = mx + static_cast<float>(std::log(total));
  const __m256 vlse = _mm256_set1_ps(lse);
  size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    _mm256_storeu_ps(out + c, _mm256_sub_ps(_mm256_loadu_ps(in + c), vlse));
  }
  for (; c < n; ++c) out[c] = in[c] - lse;
}

void LayerNormRowAvx2(const float* in, const float* gamma, const float* beta,
                      float eps, float* out, size_t n) {
  // Statistics stay sequential double (contract). The normalize+affine
  // tail is elementwise: 4-lane double for (x - mean) * inv_std, then a
  // float mul+add against gamma/beta — the exact scalar op sequence.
  double mean = 0.0;
  for (size_t c = 0; c < n; ++c) mean += in[c];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (size_t c = 0; c < n; ++c) {
    const double d = in[c] - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);
  const double inv_std = 1.0 / std::sqrt(var + eps);
  const __m256d vmean = _mm256_set1_pd(mean);
  const __m256d vinv = _mm256_set1_pd(inv_std);
  size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m256 v = _mm256_loadu_ps(in + c);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    const __m128 xlo =
        _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_sub_pd(lo, vmean), vinv));
    const __m128 xhi =
        _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_sub_pd(hi, vmean), vinv));
    const __m256 xhat = _mm256_set_m128(xhi, xlo);
    const __m256 scaled = _mm256_mul_ps(_mm256_loadu_ps(gamma + c), xhat);
    _mm256_storeu_ps(out + c,
                     _mm256_add_ps(scaled, _mm256_loadu_ps(beta + c)));
  }
  for (; c < n; ++c) {
    const float xhat = static_cast<float>((in[c] - mean) * inv_std);
    out[c] = gamma[c] * xhat + beta[c];
  }
}

double DotF64Avx2(const float* a, const float* b, size_t n) {
  const size_t n4 = n & ~size_t{3};
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d va = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double tail = 0.0;
  for (size_t i = n4; i < n; ++i) {
    tail += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) + tail;
}

const KernelTable kAvx2Table = {
    "avx2",
    SimdLevel::kAvx2,
    &GemmRowsAvx2,
    &AddAvx2,
    &AddInPlaceAvx2,
    &AxpyAvx2,
    &ScaleAvx2,
    &ReluAvx2,
    &SoftmaxRowAvx2,
    &LogSoftmaxRowAvx2,
    &LayerNormRowAvx2,
    &DotF64Avx2,
};

}  // namespace

const KernelTable& Avx2Kernels() { return kAvx2Table; }

bool BuiltWithAvx2() { return true; }

bool CpuSupportsAvx2() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}

#else  // !NERGLOB_HAVE_AVX2_TU

const KernelTable& Avx2Kernels() { return GenericKernels(); }

bool BuiltWithAvx2() { return false; }

bool CpuSupportsAvx2() { return false; }

#endif  // NERGLOB_HAVE_AVX2_TU

}  // namespace nerglob::kern
