#ifndef NERGLOB_SERVE_SESSION_MANAGER_H_
#define NERGLOB_SERVE_SESSION_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/model_bundle.h"
#include "stream/streaming_session.h"

namespace nerglob::serve {

/// Default per-shard queue capacity (in batches). First call reads the
/// NERGLOB_SERVE_QUEUE_CAP environment variable; when unset (or invalid)
/// the value is 64. Always >= 1.
size_t DefaultQueueCapacity();

/// Default for SessionManagerConfig::batch_encode. First call reads the
/// NERGLOB_SERVE_BATCH environment variable (boolean); unset => false.
bool DefaultBatchEncode();

/// Knobs for a SessionManager. All sessions opened by one manager share
/// one pipeline configuration (and therefore one window size), so a
/// checkpointed fleet restores onto a manager built the same way.
struct SessionManagerConfig {
  /// Worker shards (one thread + one FIFO queue each). 0 => Parallelism()
  /// (the NERGLOB_THREADS / hardware default).
  size_t num_shards = 0;
  /// Hard cap on queued batches per shard. 0 => DefaultQueueCapacity()
  /// (the NERGLOB_SERVE_QUEUE_CAP knob).
  size_t queue_capacity = 0;
  /// Overload hysteresis. A shard whose depth reaches `high_watermark`
  /// rejects new batches (Status::Unavailable) until the worker drains it
  /// back to `low_watermark`, so a bursting client sees one contiguous
  /// rejection episode instead of flapping at the cap. When
  /// high_watermark == 0 both default: high = queue_capacity,
  /// low = queue_capacity / 2. (Set high explicitly to use a custom low;
  /// low == 0 then means "must fully drain".)
  size_t high_watermark = 0;
  size_t low_watermark = 0;
  /// Committed checkpoint generations kept per CheckpointAll directory.
  /// After a successful commit, older `gen-*` directories beyond the
  /// newest `checkpoint_retain` are pruned (best-effort). 0 keeps all.
  size_t checkpoint_retain = 3;
  /// Cross-session batched encoding (the NERGLOB_SERVE_BATCH knob). When
  /// true, a dedicated scheduler thread repeatedly gathers the head batch
  /// of every shard's queue into one lm::MicroBert::EncodeMany call (the
  /// stage graph's LocalEncode work, amortized across sessions the way an
  /// LLM inference stack batches decode steps), then scatters the
  /// per-message results back to each session's pinned shard, where the
  /// worker runs the state-mutating stages via ProcessBatchPreEncoded.
  /// Per-session output stays byte-identical to batching off (and to
  /// single-threaded replay): per-message encode results are independent
  /// of batch composition, and the scheduler moves items queue -> ready
  /// strictly FIFO per shard. Defaults to DefaultBatchEncode().
  bool batch_encode = DefaultBatchEncode();
  /// Pipeline configuration applied to every session; typical callers
  /// start from core::DefaultPipelineConfig(bundle) and set a window.
  core::NerGlobalizerConfig pipeline;
};

/// Aggregate counters since construction (monotonic except open_sessions).
struct SessionManagerStats {
  uint64_t submitted_batches = 0;  ///< accepted by Submit
  uint64_t rejected_batches = 0;   ///< refused by admission control
  uint64_t processed_batches = 0;  ///< completed by a shard worker
  uint64_t processed_messages = 0;
  size_t open_sessions = 0;
  size_t quarantined_sessions = 0;  ///< poisoned sessions still held open
};

/// SessionManager: the multi-session serving runtime. Shards N independent
/// StreamingSessions over one const ModelBundle — the many-tenants-one-model
/// shape the model/session split was built for (docs/ARCHITECTURE.md §8).
///
///   client ──Submit(id, batch)──▶ [shard = hash(id) % S]
///                                    │ bounded FIFO queue (backpressure)
///                                    ▼
///                               shard worker ──ProcessBatch──▶ session
///
/// Determinism: a session is pinned to one shard for life, each shard has
/// exactly one worker, and the per-shard queue is FIFO — so every session's
/// batches are processed in submission order by one thread at a time, and
/// the pipeline itself is bit-identical for any thread count. Result: each
/// session's finalized output is byte-identical to a single-threaded
/// replay of the same batch sequence (pinned by serve_test and the CI
/// serve-stress TSan soak), regardless of shard count or co-tenants.
///
/// Cross-session batching (config.batch_encode / NERGLOB_SERVE_BATCH): a
/// dedicated scheduler thread repeatedly pops the head batch of every
/// non-empty shard queue, runs all their messages through one
/// lm::MicroBert::EncodeMany forward (traced as `serve_encode`; round
/// occupancy and size exported as serve.batch_occupancy /
/// serve.encode_batch_size), and scatters the per-message results to each
/// shard's ready queue, where the pinned worker runs the state-mutating
/// stages via StreamingSession::ProcessBatchPreEncoded. Per-message encode
/// results are bitwise independent of batch composition and
/// queue -> ready -> worker is FIFO per shard, so every determinism
/// guarantee above carries over unchanged (docs/ARCHITECTURE.md §9).
/// Batching is where duplication across sessions concentrates: EncodeMany
/// encodes each distinct sentence in the gathered round once (intra-batch
/// dedup) and, with NERGLOB_ENCODE_CACHE_MB > 0, serves repeats across
/// rounds from the process-wide lm::EncodeCache — both bit-identical to
/// recomputing (docs/ARCHITECTURE.md §9.3).
///
/// Backpressure: Submit never blocks. A shard at its high watermark (or
/// hard capacity) rejects with Status::Unavailable and stays rejecting
/// until drained to the low watermark; callers retry later or shed load.
/// Queues are bounded in batches, so manager memory is bounded by
/// num_shards * queue_capacity * batch size on top of the session windows.
///
/// Graceful degradation: a worker that hits a processing failure for one
/// session (an escaped exception, or an injected serve.process fault)
/// *quarantines* that session instead of taking down the fleet. A
/// quarantined session stays open but inert: Submit/Flush/TakeFinalized
/// return Status::DataLoss, queued batches for it are dropped, and
/// CheckpointAll skips it; Close still works. The
/// `serve.quarantined_sessions` gauge and stats().quarantined_sessions
/// expose the count. Co-tenant sessions — including others on the same
/// shard — are unaffected (docs/RELIABILITY.md).
///
/// Thread-safety: Submit/Drain/TakeFinalized/stats may be called from any
/// thread. Control-plane calls that reshape the fleet (Open/Close/
/// CheckpointAll/RestoreAll/Shutdown) and per-session collection calls
/// (Flush/TakeFinalized) serialize internally, but submitting to a session
/// concurrently with Flush/Close/Checkpoint of that same session has
/// unspecified ordering — quiesce a stream before collecting it.
class SessionManager {
 public:
  /// `bundle` must be trained and outlive the manager; it is shared
  /// read-only by every session.
  SessionManager(const core::ModelBundle* bundle, SessionManagerConfig config);

  /// Graceful: Shutdown() — drains all queues, then joins the workers.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a session for `stream_id` (pinned to hash(stream_id) % S).
  /// AlreadyExists if open; FailedPrecondition after Shutdown.
  Status Open(const std::string& stream_id);

  /// Waits for the session's queued batches to complete, then removes it
  /// (dropping any uncollected finalized output). NotFound if unknown.
  Status Close(const std::string& stream_id);

  /// Enqueues one batch for `stream_id`'s shard. Never blocks.
  ///   NotFound            — no such session
  ///   Unavailable         — shard overloaded (admission control; retry)
  ///   DataLoss            — session is quarantined (see class comment)
  ///   FailedPrecondition  — manager shut down
  ///   InvalidArgument     — empty batch
  Status Submit(const std::string& stream_id, std::vector<stream::Message> batch);

  /// Blocks until every queued batch (across all shards) has completed.
  /// The manager stays fully usable afterwards — Drain is a barrier, not a
  /// shutdown. Pair with Pause()d submission for a consistent fleet view.
  void Drain();

  /// Maintenance mode: workers finish their in-flight batch and then stop
  /// dequeuing until Resume(). Queued work is retained; admission control
  /// keeps operating (a paused manager fills up and rejects — the
  /// deterministic way to exercise backpressure).
  void Pause();
  void Resume();

  /// Stops accepting (Open/Submit/RestoreAll fail FailedPrecondition),
  /// drains every queue, and joins the workers. Sessions stay readable:
  /// Flush/TakeFinalized/CheckpointAll still work. Idempotent.
  void Shutdown();

  /// Waits for the session to go idle, then finalizes its live window
  /// (StreamingSession::Flush) so TakeFinalized returns a complete stream.
  /// DataLoss if the session is quarantined.
  Status Flush(const std::string& stream_id);

  /// Drain() + Flush for every open session.
  void FlushAll();

  /// Waits for the session to go idle, then moves its finalized
  /// predictions out (stream order, each message exactly once). DataLoss
  /// if the session is quarantined.
  Result<std::vector<core::FinalizedMessage>> TakeFinalized(
      const std::string& stream_id);

  /// Drains, then checkpoints the whole fleet into a fresh generation
  /// directory `dir/gen-%08u/`: one StreamingSession checkpoint per
  /// session plus a `manifest.ngm` (kTagServeManifest: session ids ->
  /// files) committed *last*. Crash-safe end to end (docs/RELIABILITY.md):
  /// the generation is staged as `gen-N.tmp`, every file inside is written
  /// via temp + fsync + atomic rename, and the staging directory is
  /// renamed to its final name only after the manifest lands — so a crash
  /// at any point leaves prior generations untouched and the torn one
  /// ignorable. Deterministic: sessions are written in sorted-id order.
  /// Quarantined sessions are skipped (their state is untrusted).
  /// Uncollected finalized output is part of each session's checkpoint, so
  /// nothing is lost across a stop/resume. After a successful commit,
  /// generations beyond config.checkpoint_retain are pruned.
  Status CheckpointAll(const std::string& dir);

  /// Restores the *newest committed generation* under `dir` (or, for
  /// pre-generation checkpoints, a flat `dir/manifest.ngm` layout),
  /// opening one session per manifest entry. Strict: a corrupt newest
  /// generation fails the call — use RecoverLatest to fall back. Two-phase:
  /// any corrupt, truncated, or config/fingerprint-mismatched file fails
  /// the whole call and leaves the manager without any of the manifest's
  /// sessions. Fails if a manifest id is already open. The restored fleet
  /// continues every stream bit-identically.
  Status RestoreAll(const std::string& dir);

  /// Crash-recovery entry point: walks the generations under `dir` from
  /// newest to oldest and restores the first fully-valid one, logging and
  /// skipping generations with missing/corrupt files (the debris a crash
  /// mid-CheckpointAll can leave). On success `*generation` (if non-null)
  /// receives the restored generation number. Returns NotFound if `dir`
  /// holds no checkpoint at all, DataLoss if generations exist but none
  /// validates, AlreadyExists immediately (no fallback) if a manifest id
  /// collides with an open session. Falls back to the legacy flat layout
  /// (generation 0) when no `gen-*` directory exists but `dir/manifest.ngm`
  /// does.
  Status RecoverLatest(const std::string& dir, uint64_t* generation = nullptr);

  SessionManagerStats stats() const;
  size_t num_shards() const { return shards_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }
  /// Whether the cross-session batch scheduler is active (fixed at
  /// construction from config.batch_encode / NERGLOB_SERVE_BATCH).
  bool batch_encode() const { return batch_encode_; }
  /// Backlogged batches on shard `i` right now (queued, plus — in batched
  /// mode — being encoded or awaiting the worker).
  size_t QueueDepth(size_t shard) const;
  /// Open session ids, sorted.
  std::vector<std::string> SessionIds() const;
  /// The shard `stream_id` is (or would be) pinned to.
  size_t ShardOf(const std::string& stream_id) const;

 private:
  struct SessionEntry {
    SessionEntry(std::string id_in, size_t shard_in,
                 const core::ModelBundle* bundle,
                 const stream::StreamingSessionConfig& config)
        : id(std::move(id_in)), shard(shard_in), session(bundle, config) {}
    std::string id;
    size_t shard;
    stream::StreamingSession session;
    /// Batches queued or in flight for this session; guarded by drain_mu_.
    size_t pending = 0;
    /// Set (never cleared) by a worker that failed processing a batch for
    /// this session; read by the data plane to fail fast with DataLoss.
    std::atomic<bool> quarantined{false};
  };

  struct WorkItem {
    SessionEntry* entry = nullptr;
    std::vector<stream::Message> batch;
    MonotonicClock::time_point enqueued;
  };

  /// A WorkItem whose LocalEncode stage already ran in the cross-session
  /// batch scheduler; the shard worker feeds `encoded` to
  /// StreamingSession::ProcessBatchPreEncoded.
  struct ReadyItem {
    WorkItem item;
    std::vector<lm::EncodeResult> encoded;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<WorkItem> queue;   // guarded by mu
    /// Batched mode only: encoded batches awaiting this shard's worker
    /// (FIFO, so per-session order is preserved end to end). Guarded by mu.
    std::deque<ReadyItem> ready;
    /// Batches the scheduler popped from `queue` and is currently encoding
    /// (not yet visible in `ready`). Guarded by mu; counted by DepthLocked
    /// so admission control never undercounts a shard's backlog.
    size_t in_flight = 0;
    bool overloaded = false;      // watermark hysteresis state, guarded by mu
    metrics::Gauge* depth_gauge = nullptr;  // resolved once at construction
    std::thread worker;
  };

  void WorkerLoop(Shard* shard);
  /// Batched mode: gather -> EncodeMany -> scatter rounds (class comment).
  void SchedulerLoop();
  /// Wakes the scheduler (no-op when batching is off). Bumps sched_wake_
  /// so a poke that lands while the scheduler is mid-round is never lost.
  void PokeScheduler();
  /// Queued + encoding + ready batches for one shard. Caller holds its mu.
  size_t DepthLocked(const Shard& shard) const {
    return shard.queue.size() + shard.in_flight + shard.ready.size();
  }
  /// Blocks until entry->pending == 0 (establishes the happens-before edge
  /// that makes the session safe to touch from the calling thread).
  void AwaitSessionIdle(SessionEntry* entry);
  stream::StreamingSessionConfig SessionConfig() const;
  /// Marks the entry quarantined (idempotent) and updates the gauge.
  void QuarantineSession(SessionEntry* entry, const char* why);
  /// Restores the manifest-described fleet in `dir` into sessions_.
  /// Caller holds sessions_mu_. Strict and two-phase.
  Status RestoreManifestLocked(const std::string& dir);
  /// Removes committed generations beyond config_.checkpoint_retain.
  void PruneGenerations(const std::string& dir) const;

  const core::ModelBundle* bundle_;
  SessionManagerConfig config_;
  size_t queue_capacity_ = 0;
  size_t high_watermark_ = 0;
  size_t low_watermark_ = 0;
  bool batch_encode_ = false;  // fixed at construction

  /// Lock order (outer to inner): sessions_mu_ -> Shard::mu -> drain_mu_.
  /// Workers take only Shard::mu and drain_mu_, never sessions_mu_, so
  /// control-plane calls can wait for them without deadlock. sched_mu_ is
  /// an innermost leaf: no other lock is ever acquired while holding it,
  /// and the scheduler's gather/scatter takes Shard::mu without it.
  mutable std::mutex sessions_mu_;
  std::map<std::string, std::unique_ptr<SessionEntry>> sessions_;
  bool accepting_ = true;       // guarded by sessions_mu_
  bool workers_joined_ = false; // guarded by sessions_mu_ (Shutdown idempotence)

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  size_t pending_ = 0;  // queued + in-flight batches, guarded by drain_mu_

  /// Batched-mode scheduler wakeups: sched_wake_ is bumped under sched_mu_
  /// by PokeScheduler (Submit/Resume/Shutdown) and compared against the
  /// scheduler's last-seen value, so a poke during an encode round makes
  /// the next wait return immediately instead of being lost.
  std::mutex sched_mu_;
  std::condition_variable sched_cv_;
  uint64_t sched_wake_ = 0;  // guarded by sched_mu_
  std::thread scheduler_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> processed_batches_{0};
  std::atomic<uint64_t> processed_messages_{0};
  std::atomic<uint64_t> quarantined_{0};

  metrics::Counter* submitted_counter_;
  metrics::Counter* rejected_counter_;
  metrics::Counter* processed_counter_;
  metrics::Counter* messages_counter_;
  metrics::Counter* checkpoints_counter_;
  metrics::Counter* checkpoint_failures_counter_;
  metrics::Gauge* sessions_gauge_;
  metrics::Gauge* quarantined_gauge_;
  metrics::Histogram* latency_histogram_;
  metrics::Gauge* batch_occupancy_gauge_;
  metrics::Histogram* encode_batch_histogram_;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nerglob::serve

#endif  // NERGLOB_SERVE_SESSION_MANAGER_H_
