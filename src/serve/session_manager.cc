#include "serve/session_manager.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "common/env.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "io/checkpoint_io.h"
#include "io/tensor_io.h"

namespace nerglob::serve {
namespace {

// 1-2-5 steps from 1us to 50s: finer than the decade-wide default so the
// enqueue-to-complete percentiles bench_serve derives are meaningful.
std::vector<double> LatencyBounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 20.0; decade *= 10.0) {
    for (const double step : {1.0, 2.0, 5.0}) bounds.push_back(decade * step);
  }
  return bounds;
}

// 1-2-5 steps from 1 to 5000: messages per scheduler encode round.
std::vector<double> CountBounds() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade < 2000.0; decade *= 10.0) {
    for (const double step : {1.0, 2.0, 5.0}) bounds.push_back(decade * step);
  }
  return bounds;
}

}  // namespace

size_t DefaultQueueCapacity() {
  static const size_t cap = static_cast<size_t>(
      env::EnvInt("NERGLOB_SERVE_QUEUE_CAP", 64, 1, 1 << 20));
  return cap;
}

bool DefaultBatchEncode() {
  static const bool enabled = env::EnvBool("NERGLOB_SERVE_BATCH", false);
  return enabled;
}

SessionManager::SessionManager(const core::ModelBundle* bundle,
                               SessionManagerConfig config)
    : bundle_(bundle), config_(std::move(config)) {
  const size_t num_shards =
      config_.num_shards > 0 ? config_.num_shards : Parallelism();
  queue_capacity_ =
      config_.queue_capacity > 0 ? config_.queue_capacity : DefaultQueueCapacity();
  if (config_.high_watermark > 0) {
    high_watermark_ = std::min(config_.high_watermark, queue_capacity_);
    low_watermark_ = std::min(config_.low_watermark, high_watermark_);
  } else {
    high_watermark_ = queue_capacity_;
    low_watermark_ = queue_capacity_ / 2;
  }

  auto& registry = metrics::MetricsRegistry::Global();
  submitted_counter_ = registry.GetCounter("serve.submitted_total");
  rejected_counter_ = registry.GetCounter("serve.rejected_total");
  processed_counter_ = registry.GetCounter("serve.processed_batches_total");
  messages_counter_ = registry.GetCounter("serve.processed_messages_total");
  checkpoints_counter_ = registry.GetCounter("serve.checkpoints_total");
  checkpoint_failures_counter_ =
      registry.GetCounter("serve.checkpoint_failures_total");
  sessions_gauge_ = registry.GetGauge("serve.sessions");
  quarantined_gauge_ = registry.GetGauge("serve.quarantined_sessions");
  latency_histogram_ =
      registry.GetHistogram("serve.enqueue_to_complete_seconds",
                            LatencyBounds());
  batch_occupancy_gauge_ = registry.GetGauge("serve.batch_occupancy");
  encode_batch_histogram_ =
      registry.GetHistogram("serve.encode_batch_size", CountBounds());
  batch_encode_ = config_.batch_encode;

  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->depth_gauge =
        registry.GetGauge(StrFormat("serve.shard%zu.queue_depth", i));
    shards_.push_back(std::move(shard));
  }
  // Start the workers only once every shard exists: a worker touches other
  // members (drain_mu_, counters) that must be fully constructed first.
  for (auto& shard : shards_) {
    shard->worker = std::thread(&SessionManager::WorkerLoop, this, shard.get());
  }
  if (batch_encode_) {
    scheduler_ = std::thread(&SessionManager::SchedulerLoop, this);
  }
}

SessionManager::~SessionManager() { Shutdown(); }

size_t SessionManager::ShardOf(const std::string& stream_id) const {
  // FNV-1a 64: stable across platforms/runs, so a checkpointed fleet
  // restores every session onto the same shard.
  uint64_t h = 1469598103934665603ull;
  for (const char c : stream_id) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % shards_.size());
}

stream::StreamingSessionConfig SessionManager::SessionConfig() const {
  stream::StreamingSessionConfig config;
  config.pipeline = config_.pipeline;
  return config;
}

Status SessionManager::Open(const std::string& stream_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (!accepting_) {
    return Status::FailedPrecondition("SessionManager is shut down");
  }
  if (sessions_.count(stream_id) > 0) {
    return Status::AlreadyExists(
        StrFormat("session '%s' is already open", stream_id.c_str()));
  }
  sessions_.emplace(stream_id,
                    std::make_unique<SessionEntry>(stream_id, ShardOf(stream_id),
                                                   bundle_, SessionConfig()));
  sessions_gauge_->Set(static_cast<double>(sessions_.size()));
  return Status::OK();
}

Status SessionManager::Close(const std::string& stream_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(stream_id);
  if (it == sessions_.end()) {
    return Status::NotFound(
        StrFormat("no session '%s'", stream_id.c_str()));
  }
  // Queued batches still reference the entry; let the workers finish them
  // before freeing it. Submit is blocked on sessions_mu_, so no new work
  // can arrive in between.
  AwaitSessionIdle(it->second.get());
  if (it->second->quarantined.load(std::memory_order_acquire)) {
    const uint64_t count =
        quarantined_.fetch_sub(1, std::memory_order_relaxed) - 1;
    quarantined_gauge_->Set(static_cast<double>(count));
  }
  sessions_.erase(it);
  sessions_gauge_->Set(static_cast<double>(sessions_.size()));
  return Status::OK();
}

Status SessionManager::Submit(const std::string& stream_id,
                              std::vector<stream::Message> batch) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (!accepting_) {
    return Status::FailedPrecondition("SessionManager is shut down");
  }
  if (batch.empty()) {
    return Status::InvalidArgument("Submit: empty batch");
  }
  auto it = sessions_.find(stream_id);
  if (it == sessions_.end()) {
    return Status::NotFound(
        StrFormat("no session '%s'", stream_id.c_str()));
  }
  SessionEntry* entry = it->second.get();
  if (entry->quarantined.load(std::memory_order_acquire)) {
    return Status::DataLoss(StrFormat(
        "session '%s' is quarantined after a processing failure; its state "
        "is untrusted — Close it and restore from the last checkpoint",
        stream_id.c_str()));
  }
  if (fault::InjectFault(fault::kSiteServeEnqueue)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    rejected_counter_->Increment();
    return Status::Unavailable(StrFormat(
        "injected fault at serve.enqueue (session '%s')", stream_id.c_str()));
  }
  Shard& shard = *shards_[entry->shard];
  {
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    // Admission control with hysteresis: once a shard trips its high
    // watermark it keeps rejecting until the worker drains it down to the
    // low watermark, so a burst sees one contiguous rejection episode.
    // Depth counts the whole backlog — queued, being encoded, and ready —
    // so batched mode cannot launder load past the watermarks.
    if (shard.overloaded || DepthLocked(shard) >= high_watermark_) {
      shard.overloaded = true;
      rejected_.fetch_add(1, std::memory_order_relaxed);
      rejected_counter_->Increment();
      return Status::Unavailable(
          StrFormat("shard %zu overloaded (%zu queued, capacity %zu); retry "
                    "after the backlog drains",
                    entry->shard, DepthLocked(shard), queue_capacity_));
    }
    {
      // Count the batch as pending before it becomes visible to the
      // worker, or the worker's decrement could race ahead of us.
      std::lock_guard<std::mutex> drain_lock(drain_mu_);
      ++pending_;
      ++entry->pending;
    }
    WorkItem item;
    item.entry = entry;
    item.batch = std::move(batch);
    item.enqueued = MonotonicClock::now();
    shard.queue.push_back(std::move(item));
    shard.depth_gauge->Set(static_cast<double>(DepthLocked(shard)));
  }
  if (batch_encode_) {
    PokeScheduler();  // the worker is fed via the scheduler's scatter
  } else {
    shard.cv.notify_one();
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  submitted_counter_->Increment();
  return Status::OK();
}

void SessionManager::WorkerLoop(Shard* shard) {
  static const trace::TraceStage kServeBatchStage("serve_batch");
  while (true) {
    WorkItem item;
    std::vector<lm::EncodeResult> encoded;
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      // In batched mode the worker feeds exclusively off `ready` (items
      // the scheduler already encoded); otherwise off `queue` directly.
      shard->cv.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               (!paused_.load(std::memory_order_acquire) &&
                !(batch_encode_ ? shard->ready.empty()
                                : shard->queue.empty()));
      });
      const bool empty =
          batch_encode_ ? shard->ready.empty() : shard->queue.empty();
      if (empty) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;  // spurious wake, or paused with pending notify
      }
      if (batch_encode_) {
        item = std::move(shard->ready.front().item);
        encoded = std::move(shard->ready.front().encoded);
        shard->ready.pop_front();
      } else {
        item = std::move(shard->queue.front());
        shard->queue.pop_front();
      }
      if (DepthLocked(*shard) <= low_watermark_) shard->overloaded = false;
      shard->depth_gauge->Set(static_cast<double>(DepthLocked(*shard)));
    }
    // The session is safe to touch without a lock: it is pinned to this
    // shard, this shard has exactly one worker, and control-plane callers
    // wait for entry->pending == 0 before touching it. A processing
    // failure quarantines this one session; the worker (and every
    // co-tenant session) keeps serving.
    bool processed = false;
    if (!item.entry->quarantined.load(std::memory_order_acquire)) {
      if (fault::InjectFault(fault::kSiteServeProcess)) {
        QuarantineSession(item.entry, "injected fault at serve.process");
      } else {
        trace::TraceSpan span(kServeBatchStage);
        try {
          if (batch_encode_) {
            item.entry->session.ProcessBatchPreEncoded(item.batch,
                                                       std::move(encoded));
          } else {
            item.entry->session.ProcessBatch(item.batch);
          }
          processed = true;
        } catch (const std::exception& e) {
          QuarantineSession(item.entry, e.what());
        } catch (...) {
          QuarantineSession(item.entry, "unknown exception in ProcessBatch");
        }
      }
    }
    if (processed) {
      processed_batches_.fetch_add(1, std::memory_order_relaxed);
      processed_messages_.fetch_add(item.batch.size(),
                                    std::memory_order_relaxed);
      if (metrics::Enabled()) {
        processed_counter_->Increment();
        messages_counter_->Increment(item.batch.size());
        latency_histogram_->Observe(
            std::chrono::duration<double>(MonotonicClock::now() -
                                          item.enqueued)
                .count());
      }
    }
    {
      std::lock_guard<std::mutex> drain_lock(drain_mu_);
      --pending_;
      --item.entry->pending;
    }
    drain_cv_.notify_all();
  }
}

void SessionManager::PokeScheduler() {
  if (!batch_encode_) return;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    ++sched_wake_;
  }
  sched_cv_.notify_one();
}

void SessionManager::SchedulerLoop() {
  static const trace::TraceStage kServeEncodeStage("serve_encode");
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(sched_mu_);
      sched_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) || sched_wake_ != seen;
      });
      seen = sched_wake_;
    }
    if (stop_.load(std::memory_order_acquire)) return;  // queues drained
    // Run gather -> encode -> scatter rounds until every queue is empty,
    // then go back to waiting. A Submit that lands mid-round either gets
    // gathered by the next round or re-bumps sched_wake_, so it is never
    // stranded.
    while (!stop_.load(std::memory_order_acquire) &&
           !paused_.load(std::memory_order_acquire)) {
      // Gather: the head batch of every non-empty shard queue. One item
      // per shard per round keeps the round's latency bounded and, with
      // FIFO scatter below, preserves each shard's submission order.
      struct Gathered {
        Shard* shard;
        WorkItem item;
      };
      std::vector<Gathered> gathered;
      gathered.reserve(shards_.size());
      for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        if (shard->queue.empty()) continue;
        gathered.push_back({shard.get(), std::move(shard->queue.front())});
        shard->queue.pop_front();
        ++shard->in_flight;  // depth is conserved: queue -> in_flight
      }
      if (gathered.empty()) break;
      // Encode: one EncodeMany forward over every gathered message. Each
      // sentence's result is bitwise independent of the batch composition
      // (lm::MicroBert contract), which is what keeps batched serving
      // byte-identical to unbatched per session. EncodeMany dedups
      // identical sentences within the gathered round (cross-session
      // retweets encode once) and consults the process-wide
      // lm::EncodeCache when NERGLOB_ENCODE_CACHE_MB enables one — both
      // return the exact bytes a solo recompute would.
      std::vector<const std::vector<text::Token>*> sentences;
      for (const Gathered& g : gathered) {
        for (const stream::Message& message : g.item.batch) {
          sentences.push_back(&message.tokens);
        }
      }
      std::vector<lm::EncodeResult> encoded;
      {
        trace::TraceSpan span(kServeEncodeStage);
        encoded = bundle_->model().EncodeMany(sentences);
      }
      if (metrics::Enabled()) {
        batch_occupancy_gauge_->Set(static_cast<double>(gathered.size()));
        encode_batch_histogram_->Observe(static_cast<double>(sentences.size()));
      }
      // Scatter: slice the results back per item, FIFO onto each owning
      // shard's ready queue, and wake that worker.
      size_t offset = 0;
      for (Gathered& g : gathered) {
        const size_t count = g.item.batch.size();
        ReadyItem ready;
        ready.item = std::move(g.item);
        ready.encoded.assign(std::make_move_iterator(encoded.begin() + offset),
                             std::make_move_iterator(encoded.begin() + offset +
                                                     count));
        offset += count;
        {
          std::lock_guard<std::mutex> lock(g.shard->mu);
          g.shard->ready.push_back(std::move(ready));
          --g.shard->in_flight;
        }
        g.shard->cv.notify_one();
      }
    }
  }
}

void SessionManager::QuarantineSession(SessionEntry* entry, const char* why) {
  if (entry->quarantined.exchange(true, std::memory_order_acq_rel)) return;
  const uint64_t count = quarantined_.fetch_add(1, std::memory_order_relaxed) + 1;
  quarantined_gauge_->Set(static_cast<double>(count));
  NERGLOB_LOG(kWarning) << "quarantining session '" << entry->id
                        << "' after processing failure: " << why;
}

void SessionManager::AwaitSessionIdle(SessionEntry* entry) {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return entry->pending == 0; });
}

void SessionManager::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return pending_ == 0; });
}

void SessionManager::Pause() {
  paused_.store(true, std::memory_order_release);
}

void SessionManager::Resume() {
  paused_.store(false, std::memory_order_release);
  for (auto& shard : shards_) {
    // Lock/unlock pairs the store with the worker's predicate check so the
    // notify cannot slip between its check and its wait.
    { std::lock_guard<std::mutex> lock(shard->mu); }
    shard->cv.notify_all();
  }
  PokeScheduler();  // a paused scheduler parked on sched_cv_; re-dispatch
}

void SessionManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (workers_joined_) return;
    accepting_ = false;
  }
  Resume();  // a paused manager must still drain
  Drain();
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    { std::lock_guard<std::mutex> lock(shard->mu); }
    shard->cv.notify_all();
  }
  // Drain() guarantees the queues and ready deques are empty, so the
  // scheduler is parked on sched_cv_; wake it to observe stop_.
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
  }
  sched_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  workers_joined_ = true;
}

Status SessionManager::Flush(const std::string& stream_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(stream_id);
  if (it == sessions_.end()) {
    return Status::NotFound(
        StrFormat("no session '%s'", stream_id.c_str()));
  }
  AwaitSessionIdle(it->second.get());
  if (it->second->quarantined.load(std::memory_order_acquire)) {
    return Status::DataLoss(StrFormat(
        "session '%s' is quarantined; its state is untrusted",
        stream_id.c_str()));
  }
  it->second->session.Flush();
  return Status::OK();
}

void SessionManager::FlushAll() {
  // sessions_mu_ blocks new Submits while we wait, so the flush below sees
  // a quiesced fleet.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  {
    std::unique_lock<std::mutex> drain_lock(drain_mu_);
    drain_cv_.wait(drain_lock, [&] { return pending_ == 0; });
  }
  for (auto& [id, entry] : sessions_) {
    if (!entry->quarantined.load(std::memory_order_acquire)) {
      entry->session.Flush();
    }
  }
}

Result<std::vector<core::FinalizedMessage>> SessionManager::TakeFinalized(
    const std::string& stream_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(stream_id);
  if (it == sessions_.end()) {
    return Status::NotFound(
        StrFormat("no session '%s'", stream_id.c_str()));
  }
  // Quiesce this session so the worker's last ProcessBatch (and its
  // finalized output) happens-before our read.
  AwaitSessionIdle(it->second.get());
  if (it->second->quarantined.load(std::memory_order_acquire)) {
    return Status::DataLoss(StrFormat(
        "session '%s' is quarantined; its state is untrusted",
        stream_id.c_str()));
  }
  return it->second->session.TakeFinalized();
}

Status SessionManager::CheckpointAll(const std::string& dir) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  {
    std::unique_lock<std::mutex> drain_lock(drain_mu_);
    drain_cv_.wait(drain_lock, [&] { return pending_ == 0; });
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    checkpoint_failures_counter_->Increment();
    return Status::IoError(StrFormat("cannot create '%s': %s", dir.c_str(),
                                     ec.message().c_str()));
  }
  const uint64_t generation = io::NextGeneration(dir);
  const std::string final_dir = dir + "/" + io::GenerationDirName(generation);
  const std::string staging = final_dir + ".tmp";
  auto failed = [&](Status s) {
    checkpoint_failures_counter_->Increment();
    std::error_code cleanup_ec;
    fs::remove_all(staging, cleanup_ec);  // best-effort; .tmp is ignorable
    return s;
  };
  fs::create_directories(staging, ec);
  if (ec) {
    return failed(Status::IoError(StrFormat(
        "cannot create '%s': %s", staging.c_str(), ec.message().c_str())));
  }
  // Session files first, manifest last: a generation directory without a
  // valid manifest is by definition uncommitted debris, so the manifest
  // write is the per-generation commit point. Sorted-id order (sessions_
  // is an ordered map) keeps the fleet checkpoint deterministic.
  // Quarantined sessions are skipped — their state is untrusted.
  std::vector<std::pair<std::string, std::string>> entries;  // id -> file
  for (const auto& [id, entry] : sessions_) {
    if (entry->quarantined.load(std::memory_order_acquire)) {
      NERGLOB_LOG(kWarning) << "CheckpointAll: skipping quarantined session '"
                            << id << "'";
      continue;
    }
    std::string file = StrFormat("session_%zu.ckpt", entries.size());
    Status s = entry->session.Checkpoint(staging + "/" + file);
    if (!s.ok()) return failed(std::move(s));
    entries.emplace_back(id, std::move(file));
  }
  Status s = io::WriteFileAtomically(
      staging + "/manifest.ngm", [&](io::TensorWriter* writer) -> Status {
        if (fault::InjectFault(fault::kSiteCkptManifestCommit)) {
          return Status::IoError(StrFormat(
              "injected fault at ckpt.manifest_commit (generation %llu)",
              static_cast<unsigned long long>(generation)));
        }
        writer->PutU64(entries.size());
        for (const auto& [id, file] : entries) {
          writer->PutString(id);
          writer->PutString(file);
        }
        return writer->EndRecord(io::kTagServeManifest);
      });
  if (!s.ok()) return failed(std::move(s));
  // Commit: durably rename the staged generation to its final name. From
  // here on RestoreAll/RecoverLatest will see it.
  s = io::RetryPolicy::FromEnv().Run(final_dir.c_str(), [&]() -> Status {
    NERGLOB_RETURN_IF_ERROR(io::FsyncDir(staging));
    if (fault::InjectFault(fault::kSiteCkptRename)) {
      return Status::IoError(StrFormat(
          "injected fault at ckpt.rename (generation commit '%s')",
          final_dir.c_str()));
    }
    std::error_code rename_ec;
    fs::rename(staging, final_dir, rename_ec);
    if (rename_ec) {
      return Status::IoError(StrFormat("rename('%s' -> '%s') failed: %s",
                                       staging.c_str(), final_dir.c_str(),
                                       rename_ec.message().c_str()));
    }
    return io::FsyncDir(dir);
  });
  if (!s.ok()) return failed(std::move(s));
  checkpoints_counter_->Increment();
  PruneGenerations(dir);
  return Status::OK();
}

void SessionManager::PruneGenerations(const std::string& dir) const {
  if (config_.checkpoint_retain == 0) return;
  std::vector<uint64_t> generations = io::ListGenerations(dir);
  if (generations.size() <= config_.checkpoint_retain) return;
  generations.resize(generations.size() - config_.checkpoint_retain);
  for (const uint64_t g : generations) {
    std::error_code ec;
    std::filesystem::remove_all(dir + "/" + io::GenerationDirName(g), ec);
    if (ec) {
      NERGLOB_LOG(kWarning) << "failed pruning checkpoint generation " << g
                            << " under '" << dir << "': " << ec.message();
    }
  }
}

Status SessionManager::RestoreManifestLocked(const std::string& dir) {
  const std::string manifest_path = dir + "/manifest.ngm";
  // Manifest parse is retried as a whole: a transient read failure (or an
  // injected io.open_read/io.read fault) restarts it with nothing staged.
  struct ManifestEntry {
    std::string id;
    std::string file;
  };
  std::vector<ManifestEntry> manifest;
  Status s = io::RetryPolicy::FromEnv().Run(
      manifest_path.c_str(), [&]() -> Status {
        manifest.clear();
        io::TensorReader reader(manifest_path, /*inject_faults=*/true);
        NERGLOB_RETURN_IF_ERROR(reader.NextRecord(io::kTagServeManifest));
        auto fail = [&](const char* what) {
          return reader.status().ok()
                     ? Status::InvalidArgument(
                           StrFormat("'%s': corrupt serve manifest (%s)",
                                     manifest_path.c_str(), what))
                     : reader.status();
        };
        uint64_t count = 0;
        if (!reader.GetU64(&count) || count > reader.RemainingInRecord()) {
          return fail("count");
        }
        for (uint64_t i = 0; i < count; ++i) {
          ManifestEntry entry;
          if (!reader.GetString(&entry.id) || !reader.GetString(&entry.file)) {
            return fail("entry");
          }
          if (entry.file.empty() ||
              entry.file.find('/') != std::string::npos ||
              entry.file.find("..") != std::string::npos) {
            return fail("checkpoint filename");
          }
          manifest.push_back(std::move(entry));
        }
        return reader.ExpectRecordEnd();
      });
  NERGLOB_RETURN_IF_ERROR(s);
  // Two-phase: restore every session into a staging map, commit only when
  // every file validates — a bad file leaves the manager unchanged.
  std::map<std::string, std::unique_ptr<SessionEntry>> staged;
  for (const ManifestEntry& m : manifest) {
    if (sessions_.count(m.id) > 0 || staged.count(m.id) > 0) {
      return Status::AlreadyExists(
          StrFormat("session '%s' from '%s' is already open", m.id.c_str(),
                    manifest_path.c_str()));
    }
    auto entry = std::make_unique<SessionEntry>(m.id, ShardOf(m.id), bundle_,
                                                SessionConfig());
    NERGLOB_RETURN_IF_ERROR(entry->session.Restore(dir + "/" + m.file));
    staged.emplace(m.id, std::move(entry));
  }
  for (auto& [id, entry] : staged) {
    sessions_.emplace(id, std::move(entry));
  }
  sessions_gauge_->Set(static_cast<double>(sessions_.size()));
  return Status::OK();
}

Status SessionManager::RestoreAll(const std::string& dir) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (!accepting_) {
    return Status::FailedPrecondition("SessionManager is shut down");
  }
  const std::vector<uint64_t> generations = io::ListGenerations(dir);
  if (generations.empty()) {
    // Pre-generation checkpoints put manifest.ngm directly in `dir`.
    return RestoreManifestLocked(dir);
  }
  return RestoreManifestLocked(
      dir + "/" + io::GenerationDirName(generations.back()));
}

Status SessionManager::RecoverLatest(const std::string& dir,
                                     uint64_t* generation) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (!accepting_) {
    return Status::FailedPrecondition("SessionManager is shut down");
  }
  std::vector<uint64_t> generations = io::ListGenerations(dir);
  if (generations.empty()) {
    std::error_code ec;
    if (std::filesystem::exists(dir + "/manifest.ngm", ec)) {
      NERGLOB_RETURN_IF_ERROR(RestoreManifestLocked(dir));
      if (generation != nullptr) *generation = 0;
      return Status::OK();
    }
    return Status::NotFound(
        StrFormat("no checkpoint found under '%s'", dir.c_str()));
  }
  Status last;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string gen_dir = dir + "/" + io::GenerationDirName(*it);
    Status s = RestoreManifestLocked(gen_dir);
    if (s.ok()) {
      if (generation != nullptr) *generation = *it;
      return Status::OK();
    }
    if (s.code() == StatusCode::kAlreadyExists) return s;
    NERGLOB_LOG(kWarning) << "RecoverLatest: generation " << *it << " under '"
                          << dir << "' is invalid (" << s.ToString()
                          << "); falling back";
    last = std::move(s);
  }
  return Status::DataLoss(StrFormat(
      "'%s': %zu checkpoint generation(s) present but none is valid; last "
      "error: %s",
      dir.c_str(), generations.size(), last.ToString().c_str()));
}

SessionManagerStats SessionManager::stats() const {
  SessionManagerStats s;
  s.submitted_batches = submitted_.load(std::memory_order_relaxed);
  s.rejected_batches = rejected_.load(std::memory_order_relaxed);
  s.processed_batches = processed_batches_.load(std::memory_order_relaxed);
  s.processed_messages = processed_messages_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  s.open_sessions = sessions_.size();
  for (const auto& [id, entry] : sessions_) {
    if (entry->quarantined.load(std::memory_order_acquire)) {
      ++s.quarantined_sessions;
    }
  }
  return s;
}

size_t SessionManager::QueueDepth(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return DepthLocked(*shards_[shard]);
}

std::vector<std::string> SessionManager::SessionIds() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, entry] : sessions_) ids.push_back(id);
  return ids;
}

}  // namespace nerglob::serve
