#ifndef NERGLOB_CORE_STAGES_H_
#define NERGLOB_CORE_STAGES_H_

#include <cstdint>
#include <vector>

#include "core/local_ner.h"
#include "core/ner_globalizer_config.h"
#include "core/stream_state.h"
#include "lm/micro_bert.h"
#include "stream/message.h"
#include "text/bio.h"
#include "trie/candidate_trie.h"

namespace nerglob::core {
class PhraseEmbedder;
class EntityClassifier;
}  // namespace nerglob::core

namespace nerglob::core::stages {

/// The explicit stage graph behind NerGlobalizer::ProcessBatch (Fig. 2):
///
///   LocalEncode ─▶ IngestLocal ─▶ ExtractMentions ─▶ RefreshCandidates ─▶ Evict
///   (model-only)  (state writes begin here ────────────────────────────────▶)
///
/// Every stage is a free function with the uniform signature
/// `(const ModelView&, StreamState&, StageContext&)`. The split exists for
/// one load-bearing property: **LocalEncode is the only stage that runs the
/// expensive encoder forward, and it touches neither the StreamState nor
/// the StageContext's cross-stage products** — its output is a pure
/// function of (model, message tokens). That makes it batchable across
/// sessions: serve::SessionManager's scheduler runs LocalEncode's work for
/// many sessions in one lm::MicroBert::EncodeMany call and injects the
/// results via StageContext::pre_encoded, and every downstream stage is
/// bitwise unaffected (enforced by pipeline_test and serve_test).
///
/// The issue's nominal signature takes `const ModelBundle&`; stages take a
/// ModelView instead because NerGlobalizer also supports construction from
/// raw component pointers (no bundle object exists to reference) — the view
/// is the greatest common denominator of both constructors
/// (docs/ARCHITECTURE.md §9).
struct ModelView {
  const lm::MicroBert* model = nullptr;
  const PhraseEmbedder* embedder = nullptr;
  const EntityClassifier* classifier = nullptr;
};

/// Per-batch products flowing between stages. A fresh context is built for
/// every ProcessBatch; nothing in it outlives the batch (all cross-batch
/// state lives in StreamState).
struct StageContext {
  /// Pipeline configuration (borrowed from the driving NerGlobalizer).
  const NerGlobalizerConfig* config = nullptr;
  /// The batch being processed (borrowed; message order is stream order).
  const std::vector<stream::Message>* batch = nullptr;

  /// LocalEncode product: encoded[i] is the encoder output for
  /// (*batch)[i].tokens (default-constructed for empty messages). When
  /// `pre_encoded` is set the driver injected these results (the serve
  /// cross-session batch scheduler) and LocalEncode is a no-op; the
  /// contract is that injected entries are bitwise equal to what
  /// model->Encode would produce, which EncodeMany guarantees for any
  /// batch composition.
  std::vector<lm::EncodeResult> encoded;
  bool pre_encoded = false;

  /// IngestLocal products.
  std::vector<LocalNer::Output> outputs;
  /// Ids of sentences that existed before this batch (delta-rescan input).
  std::vector<int64_t> old_ids;
  /// Ids of this batch's sentences now present in the TweetBase.
  std::vector<int64_t> new_ids;
  /// Surface forms first seen in this batch; old sentences are rescanned
  /// against only these.
  trie::CandidateTrie delta;
};

/// Stage 1 — the per-message, model-only stage: runs the encoder forward
/// for every message in ctx.batch into ctx.encoded (via EncodeMany, so the
/// results are bitwise independent of how messages are batched). Reads no
/// StreamState; writes none. No-op when ctx.pre_encoded.
void LocalEncode(const ModelView& view, StreamState& state, StageContext& ctx);

/// Stage 2 — serial ingest of the encode results, in stream order:
/// snapshots ctx.old_ids, stores SentenceRecords in the TweetBase, seeds
/// the CTrie with locally-detected surface forms, and accumulates
/// local-type votes / seed support / the delta trie. First state-mutating
/// stage.
void IngestLocal(const ModelView& view, StreamState& state, StageContext& ctx);

/// Stage 3 — mention extraction (Sec. III step 3): scans the new sentences
/// against the full trie and the old sentences against the delta trie,
/// appending mention records (with phrase embeddings) to the CandidateBase
/// and marking touched surfaces dirty.
void ExtractMentions(const ModelView& view, StreamState& state,
                     StageContext& ctx);

/// Stage 4 — clustering + classification of every dirty surface form
/// (all surfaces when config->incremental_refresh is off).
void RefreshCandidates(const ModelView& view, StreamState& state,
                       StageContext& ctx);

/// Stage 5 — windowed eviction: retires the oldest records beyond
/// config->window_messages (flushing their final predictions to
/// state.finalized), prunes unsupported surfaces, rescans affected live
/// sentences, and refreshes eviction-touched candidates. No-op when the
/// window is unbounded or not yet exceeded.
void Evict(const ModelView& view, StreamState& state, StageContext& ctx);

/// Pools larger than this are clustered on a prefix sample; the remaining
/// mentions join the nearest cluster centroid. Keeps the O(n^3) linkage
/// bounded for head entities with thousands of mentions. (Shared with the
/// EMD-Globalizer baseline pooling in NerGlobalizer.)
inline constexpr size_t kMaxClusterPool = 64;

/// Greedy longest-first overlap resolution within one sentence (used by
/// Evict's finalization flush and NerGlobalizer's prediction readers).
std::vector<text::EntitySpan> ResolveOverlaps(
    std::vector<text::EntitySpan> spans);

}  // namespace nerglob::core::stages

#endif  // NERGLOB_CORE_STAGES_H_
