#include "core/phrase_embedder.h"

#include "common/check.h"

namespace nerglob::core {

PhraseEmbedder::PhraseEmbedder(size_t dim, Rng* rng, bool normalize)
    : dim_(dim), normalize_(normalize), dense_(dim, dim, rng) {}

ag::Var PhraseEmbedder::Forward(const Matrix& token_embeddings, size_t begin,
                                size_t end) const {
  NERGLOB_CHECK_LT(begin, end);
  NERGLOB_CHECK_LE(end, token_embeddings.rows());
  NERGLOB_CHECK_EQ(token_embeddings.cols(), dim_);
  // Token embeddings are constants here: the Local NER encoder is frozen
  // (Sec. V-B: "the weights fine-tuned during Local NER remain frozen").
  ag::Var span = ag::Constant(token_embeddings.SliceRows(begin, end - begin));
  ag::Var pooled = ag::MeanRows(span);                       // Eq. 1
  if (normalize_) pooled = ag::L2NormalizeRows(pooled);      // Eq. 2
  return dense_.Forward(pooled);                             // Eq. 3
}

Matrix PhraseEmbedder::Embed(const Matrix& token_embeddings, size_t begin,
                             size_t end) const {
  return Forward(token_embeddings, begin, end).value();
}

}  // namespace nerglob::core
