#include "core/phrase_embedder.h"

#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace nerglob::core {

PhraseEmbedder::PhraseEmbedder(size_t dim, Rng* rng, bool normalize)
    : dim_(dim), normalize_(normalize), dense_(dim, dim, rng) {}

ag::Var PhraseEmbedder::Forward(const Matrix& token_embeddings, size_t begin,
                                size_t end) const {
  NERGLOB_CHECK_LT(begin, end);
  NERGLOB_CHECK_LE(end, token_embeddings.rows());
  NERGLOB_CHECK_EQ(token_embeddings.cols(), dim_);
  // Token embeddings are constants here: the Local NER encoder is frozen
  // (Sec. V-B: "the weights fine-tuned during Local NER remain frozen").
  ag::Var span = ag::Constant(token_embeddings.SliceRows(begin, end - begin));
  ag::Var pooled = ag::MeanRows(span);                       // Eq. 1
  if (normalize_) pooled = ag::L2NormalizeRows(pooled);      // Eq. 2
  return dense_.Forward(pooled);                             // Eq. 3
}

Matrix PhraseEmbedder::Embed(const Matrix& token_embeddings, size_t begin,
                             size_t end) const {
  Matrix out;
  EmbedInto(token_embeddings, begin, end, &out);
  return out;
}

void PhraseEmbedder::EmbedInto(const Matrix& token_embeddings, size_t begin,
                               size_t end, Matrix* out) const {
  static const trace::TraceStage kStage("phrase_embed");
  trace::TraceSpan span(kStage);
  if (metrics::Enabled()) {
    static metrics::Counter* const embeds =
        metrics::MetricsRegistry::Global().GetCounter(
            "pipeline.phrase_embeds_total");
    embeds->Increment();
  }
  NERGLOB_CHECK_LT(begin, end);
  NERGLOB_CHECK_LE(end, token_embeddings.rows());
  NERGLOB_CHECK_EQ(token_embeddings.cols(), dim_);
  // Graph-free mirror of Forward (same ops, same accumulation order, so the
  // value is bit-identical); safe to call from ParallelFor bodies because it
  // touches no autograd state and each thread owns its arena.
  common::ScratchFrame frame(&common::ScratchArena::ThreadLocal());
  Matrix* pooled = frame.Get(1, dim_);
  // Pool the span rows in place — bit-identical to
  // MeanRows(SliceRows(begin, end - begin)) without the slice copy.
  MeanRowsInto(token_embeddings, begin, end, pooled);
  if (normalize_) {
    constexpr float kEps = 1e-8f;  // ag::L2NormalizeRows default
    float* o = pooled->Row(0);
    double s = 0.0;
    for (size_t c = 0; c < dim_; ++c) s += static_cast<double>(o[c]) * o[c];
    const float norm = static_cast<float>(std::sqrt(s)) + kEps;
    for (size_t c = 0; c < dim_; ++c) o[c] = o[c] / norm;
  }
  dense_.ApplyInto(*pooled, out);
}

}  // namespace nerglob::core
