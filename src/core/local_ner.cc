#include "core/local_ner.h"

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace nerglob::core {

LocalNer::LocalNer(const lm::MicroBert* model) : model_(model) {
  NERGLOB_CHECK(model != nullptr);
}

std::vector<std::string> SpanMatchTokens(const stream::Message& message,
                                         size_t begin_token, size_t end_token) {
  NERGLOB_CHECK_LE(end_token, message.tokens.size());
  std::vector<std::string> out;
  out.reserve(end_token - begin_token);
  for (size_t t = begin_token; t < end_token; ++t) {
    out.push_back(message.tokens[t].match);
  }
  return out;
}

std::string SpanSurfaceString(const stream::Message& message,
                              size_t begin_token, size_t end_token) {
  std::string surface;
  for (size_t t = begin_token; t < end_token; ++t) {
    if (!surface.empty()) surface += ' ';
    surface += message.tokens[t].match;
  }
  return surface;
}

std::vector<LocalNer::Output> LocalNer::ProcessBatch(
    const std::vector<stream::Message>& batch, stream::TweetBase* tweet_base,
    trie::CandidateTrie* trie) const {
  static const trace::TraceStage kStage("local_ner");
  trace::TraceSpan span(kStage);
  // Phase 1 (parallel): the per-sentence encoder forwards dominate the cost
  // and are independent, so they fan out over the thread pool (one
  // ParallelFor lane per sentence inside EncodeMany). Results come back in
  // input order regardless of scheduling.
  std::vector<const std::vector<text::Token>*> sentences;
  sentences.reserve(batch.size());
  for (const stream::Message& message : batch) {
    sentences.push_back(&message.tokens);
  }
  std::vector<lm::EncodeResult> encoded_batch = model_->EncodeMany(sentences);
  return IngestEncodedBatch(batch, &encoded_batch, tweet_base, trie);
}

std::vector<LocalNer::Output> IngestEncodedBatch(
    const std::vector<stream::Message>& batch,
    std::vector<lm::EncodeResult>* encoded, stream::TweetBase* tweet_base,
    trie::CandidateTrie* trie) {
  NERGLOB_CHECK_EQ(encoded->size(), batch.size());
  std::vector<lm::EncodeResult>& encoded_batch = *encoded;
  // Serial merge, input order: TweetBase puts and trie inserts happen
  // exactly as in a sequential pass, so new-surface discovery order and
  // all downstream state are independent of the thread count (and of the
  // encode batching).
  std::vector<LocalNer::Output> outputs;
  outputs.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const stream::Message& message = batch[i];
    LocalNer::Output out;
    out.message_id = message.id;
    if (message.tokens.empty()) {
      outputs.push_back(std::move(out));
      continue;
    }
    lm::EncodeResult& result = encoded_batch[i];

    stream::SentenceRecord record;
    record.message = message;
    record.token_embeddings = std::move(result.embeddings);
    record.local_bio = result.bio_labels;
    tweet_base->Put(std::move(record));

    out.local_spans = text::DecodeBio(result.bio_labels);
    for (const text::EntitySpan& span : out.local_spans) {
      auto tokens = SpanMatchTokens(message, span.begin_token, span.end_token);
      if (trie->Insert(tokens)) {
        out.new_surfaces.push_back(
            SpanSurfaceString(message, span.begin_token, span.end_token));
      }
    }
    outputs.push_back(std::move(out));
  }
  if (metrics::Enabled()) {
    auto& registry = metrics::MetricsRegistry::Global();
    static metrics::Counter* const sentences =
        registry.GetCounter("pipeline.sentences_total");
    static metrics::Counter* const local_spans =
        registry.GetCounter("pipeline.local_spans_total");
    static metrics::Counter* const new_surfaces =
        registry.GetCounter("pipeline.new_surfaces_total");
    size_t span_count = 0, surface_count = 0;
    for (const LocalNer::Output& out : outputs) {
      span_count += out.local_spans.size();
      surface_count += out.new_surfaces.size();
    }
    sentences->Increment(batch.size());
    local_spans->Increment(span_count);
    new_surfaces->Increment(surface_count);
  }
  return outputs;
}

}  // namespace nerglob::core
