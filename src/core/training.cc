#include "core/training.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "core/local_ner.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/train_util.h"
#include "stream/tweet_base.h"
#include "trie/candidate_trie.h"

namespace nerglob::core {

namespace {

/// A mined triplet: indices into the example vector.
struct Triplet {
  size_t anchor;
  size_t positive;
  size_t negative;
};

/// Candidate identity during training: (surface, label) — the ground-truth
/// cluster key.
using CandidateKey = std::pair<std::string, int>;

std::map<CandidateKey, std::vector<size_t>> GroupByCandidate(
    const std::vector<MentionExample>& examples) {
  std::map<CandidateKey, std::vector<size_t>> groups;
  for (size_t i = 0; i < examples.size(); ++i) {
    groups[{examples[i].surface, examples[i].label}].push_back(i);
  }
  return groups;
}

/// Mention Triplet Mining (Sec. VI): positives from the same candidate;
/// negatives prefer a different-type candidate sharing the surface form
/// (the ambiguity the clustering step must resolve), with augmentation from
/// different-surface different-type mentions otherwise.
std::vector<Triplet> MineTriplets(const std::vector<MentionExample>& examples,
                                  size_t max_triplets, Rng* rng) {
  auto groups = GroupByCandidate(examples);
  std::map<std::string, std::vector<const std::vector<size_t>*>> by_surface;
  for (const auto& [key, members] : groups) {
    by_surface[key.first].push_back(&members);
  }

  std::vector<Triplet> triplets;
  triplets.reserve(max_triplets);
  // Anchor order: round-robin over all examples with >= 2 same-candidate
  // mentions, repeated until the budget is filled.
  std::vector<size_t> anchors;
  for (const auto& [key, members] : groups) {
    if (members.size() >= 2) {
      anchors.insert(anchors.end(), members.begin(), members.end());
    }
  }
  if (anchors.empty() || examples.size() < 3) return triplets;
  rng->Shuffle(&anchors);

  size_t cursor = 0;
  size_t attempts = 0;
  const size_t max_attempts = max_triplets * 4 + 64;
  while (triplets.size() < max_triplets && attempts++ < max_attempts) {
    const size_t anchor = anchors[cursor];
    cursor = (cursor + 1) % anchors.size();
    const MentionExample& a = examples[anchor];
    const auto& own_group = groups.at({a.surface, a.label});

    // Positive: another mention of the same candidate.
    size_t positive = anchor;
    for (int tries = 0; tries < 8 && positive == anchor; ++tries) {
      positive = own_group[rng->NextBelow(own_group.size())];
    }
    if (positive == anchor) continue;

    // Negative: same surface, different label if available.
    size_t negative = anchor;
    const auto& surface_groups = by_surface.at(a.surface);
    std::vector<const std::vector<size_t>*> other_groups;
    for (const auto* g : surface_groups) {
      if (examples[(*g)[0]].label != a.label) other_groups.push_back(g);
    }
    if (!other_groups.empty()) {
      const auto* g = other_groups[rng->NextBelow(other_groups.size())];
      negative = (*g)[rng->NextBelow(g->size())];
    } else {
      // Augmentation: any mention of a different label.
      for (int tries = 0; tries < 32; ++tries) {
        const size_t cand = rng->NextBelow(examples.size());
        if (examples[cand].label != a.label) {
          negative = cand;
          break;
        }
      }
      if (examples[negative].label == a.label) continue;
    }
    triplets.push_back({anchor, positive, negative});
  }
  return triplets;
}

ag::Var EmbedExample(const PhraseEmbedder& embedder, const MentionExample& ex) {
  return embedder.Forward(ex.token_embeddings, 0, ex.token_embeddings.rows());
}

double TripletSetLoss(const PhraseEmbedder& embedder,
                      const std::vector<MentionExample>& examples,
                      const std::vector<Triplet>& triplets, float margin) {
  if (triplets.empty()) return 0.0;
  double total = 0.0;
  for (const Triplet& t : triplets) {
    ag::Var loss = nn::TripletCosineLoss(EmbedExample(embedder, examples[t.anchor]),
                                         EmbedExample(embedder, examples[t.positive]),
                                         EmbedExample(embedder, examples[t.negative]),
                                         margin);
    total += loss.value().At(0, 0);
  }
  return total / static_cast<double>(triplets.size());
}

EmbedderTrainResult TrainWithTriplets(PhraseEmbedder* embedder,
                                      const std::vector<MentionExample>& examples,
                                      const EmbedderTrainOptions& options) {
  Rng rng(options.seed);
  std::vector<Triplet> triplets = MineTriplets(examples, options.max_triplets, &rng);
  EmbedderTrainResult result;
  result.dataset_size = triplets.size();
  if (triplets.size() < 4) return result;

  const size_t val_count = std::max<size_t>(
      1, static_cast<size_t>(triplets.size() * options.validation_fraction));
  std::vector<Triplet> val(triplets.end() - static_cast<std::ptrdiff_t>(val_count),
                           triplets.end());
  triplets.resize(triplets.size() - val_count);

  nn::Adam optimizer(embedder->Parameters(), options.lr);
  nn::EarlyStopper stopper(options.patience, /*higher_is_better=*/false);
  std::vector<ag::Var> params = embedder->Parameters();

  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    rng.Shuffle(&triplets);
    double epoch_loss = 0.0;
    size_t i = 0;
    while (i < triplets.size()) {
      optimizer.ZeroGrad();
      const size_t end = std::min(triplets.size(), i + options.batch_size);
      std::vector<ag::Var> losses;
      losses.reserve(end - i);
      for (; i < end; ++i) {
        const Triplet& t = triplets[i];
        losses.push_back(nn::TripletCosineLoss(
            EmbedExample(*embedder, examples[t.anchor]),
            EmbedExample(*embedder, examples[t.positive]),
            EmbedExample(*embedder, examples[t.negative]), options.margin));
      }
      ag::Var batch_loss =
          ag::ScalarMul(ag::SumAll(ag::ConcatRows(losses)),
                        1.0f / static_cast<float>(losses.size()));
      batch_loss.Backward();
      optimizer.Step();
      epoch_loss += batch_loss.value().At(0, 0) * static_cast<double>(losses.size());
    }
    result.train_loss = epoch_loss / static_cast<double>(triplets.size());
    result.validation_loss =
        TripletSetLoss(*embedder, examples, val, options.margin);
    result.epochs_run = epoch + 1;
    stopper.Observe(result.validation_loss, params);
    if (stopper.ShouldStop()) break;
  }
  stopper.RestoreBest(&params);
  result.validation_loss = stopper.best_metric();
  return result;
}

EmbedderTrainResult TrainWithSoftNn(PhraseEmbedder* embedder,
                                    const std::vector<MentionExample>& examples,
                                    const EmbedderTrainOptions& options) {
  Rng rng(options.seed);
  auto groups = GroupByCandidate(examples);
  // Candidate id per example: the Soft-NN "class" is the candidate cluster.
  std::vector<int> candidate_of(examples.size(), 0);
  int next_id = 0;
  for (const auto& [key, members] : groups) {
    for (size_t idx : members) candidate_of[idx] = next_id;
    ++next_id;
  }
  // Keep only examples whose candidate has >= 2 mentions (others can never
  // be anchors or positives).
  std::vector<size_t> usable;
  for (const auto& [key, members] : groups) {
    if (members.size() >= 2) usable.insert(usable.end(), members.begin(), members.end());
  }
  EmbedderTrainResult result;
  result.dataset_size = usable.size();
  if (usable.size() < 4) return result;

  rng.Shuffle(&usable);
  const size_t val_count = std::max<size_t>(
      2, static_cast<size_t>(usable.size() * options.validation_fraction));
  std::vector<size_t> val(usable.end() - static_cast<std::ptrdiff_t>(val_count),
                          usable.end());
  usable.resize(usable.size() - val_count);

  nn::Adam optimizer(embedder->Parameters(), options.lr);
  nn::EarlyStopper stopper(options.patience, /*higher_is_better=*/false);
  std::vector<ag::Var> params = embedder->Parameters();
  const size_t batch = std::max<size_t>(8, options.batch_size / 4);

  auto batch_has_pair = [&](const std::vector<size_t>& ids) {
    std::map<int, int> counts;
    for (size_t id : ids) ++counts[candidate_of[id]];
    for (const auto& [c, n] : counts) {
      if (n >= 2) return true;
    }
    return false;
  };
  auto batch_loss_var = [&](const std::vector<size_t>& ids) {
    std::vector<ag::Var> rows;
    std::vector<int> labels;
    rows.reserve(ids.size());
    for (size_t id : ids) {
      rows.push_back(EmbedExample(*embedder, examples[id]));
      labels.push_back(candidate_of[id]);
    }
    return nn::SoftNearestNeighborLoss(ag::ConcatRows(rows), labels,
                                       options.temperature);
  };

  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    rng.Shuffle(&usable);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t i = 0; i + 1 < usable.size(); i += batch) {
      const size_t end = std::min(usable.size(), i + batch);
      std::vector<size_t> ids(usable.begin() + static_cast<std::ptrdiff_t>(i),
                              usable.begin() + static_cast<std::ptrdiff_t>(end));
      if (ids.size() < 2 || !batch_has_pair(ids)) continue;
      optimizer.ZeroGrad();
      ag::Var loss = batch_loss_var(ids);
      loss.Backward();
      optimizer.Step();
      epoch_loss += loss.value().At(0, 0);
      ++batches;
    }
    if (batches == 0) break;
    result.train_loss = epoch_loss / static_cast<double>(batches);
    result.validation_loss =
        batch_has_pair(val) ? batch_loss_var(val).value().At(0, 0) : result.train_loss;
    result.epochs_run = epoch + 1;
    stopper.Observe(result.validation_loss, params);
    if (stopper.ShouldStop()) break;
  }
  stopper.RestoreBest(&params);
  if (result.epochs_run > 0) result.validation_loss = stopper.best_metric();
  return result;
}

}  // namespace

std::vector<MentionExample> CollectMentionExamples(
    const std::vector<stream::Message>& labeled, const lm::MicroBert& model,
    size_t max_mention_span) {
  LocalNer local_ner(&model);
  stream::TweetBase tweet_base;
  trie::CandidateTrie trie;
  local_ner.ProcessBatch(labeled, &tweet_base, &trie);

  std::vector<MentionExample> examples;
  for (const stream::Message& message : labeled) {
    const stream::SentenceRecord* record = tweet_base.Find(message.id);
    if (record == nullptr) continue;
    std::vector<std::string> match_tokens;
    for (const auto& tok : message.tokens) match_tokens.push_back(tok.match);

    for (const trie::TokenSpan& span :
         trie.FindLongestMatches(match_tokens, max_mention_span)) {
      if (span.begin >= record->token_embeddings.rows()) continue;
      const size_t emb_end = std::min(span.end, record->token_embeddings.rows());

      // Label against gold: exact match -> type; disjoint -> non-entity;
      // partial overlap -> skip.
      int label = kNonEntityClass;
      bool skip = false;
      for (const text::EntitySpan& gold : message.gold_spans) {
        if (gold.begin_token == span.begin && gold.end_token == span.end) {
          label = static_cast<int>(gold.type);
          break;
        }
        if (span.begin < gold.end_token && gold.begin_token < span.end) {
          skip = true;
          break;
        }
      }
      if (skip) continue;

      MentionExample ex;
      ex.surface = SpanSurfaceString(message, span.begin, span.end);
      ex.label = label;
      ex.token_embeddings =
          record->token_embeddings.SliceRows(span.begin, emb_end - span.begin);
      examples.push_back(std::move(ex));
    }
  }
  return examples;
}

EmbedderTrainResult TrainPhraseEmbedder(PhraseEmbedder* embedder,
                                        const std::vector<MentionExample>& examples,
                                        const EmbedderTrainOptions& options) {
  if (options.objective == EmbedderObjective::kTriplet) {
    return TrainWithTriplets(embedder, examples, options);
  }
  return TrainWithSoftNn(embedder, examples, options);
}

ClassifierTrainResult TrainEntityClassifier(
    EntityClassifier* classifier, const PhraseEmbedder& embedder,
    const std::vector<MentionExample>& examples,
    const ClassifierTrainOptions& options) {
  // Ground-truth clusters: mentions grouped by candidate (surface+label),
  // embedded once with the (frozen) trained Phrase Embedder.
  auto groups = GroupByCandidate(examples);
  struct Candidate {
    Matrix members;  // (m, d)
    int label;
  };
  std::vector<Candidate> candidates;
  for (const auto& [key, member_ids] : groups) {
    const size_t d = embedder.dim();
    Matrix members(member_ids.size(), d);
    for (size_t j = 0; j < member_ids.size(); ++j) {
      const Matrix emb = embedder.Embed(
          examples[member_ids[j]].token_embeddings, 0,
          examples[member_ids[j]].token_embeddings.rows());
      std::copy(emb.Row(0), emb.Row(0) + d, members.Row(j));
    }
    candidates.push_back({std::move(members), key.second});
  }

  ClassifierTrainResult result;
  result.num_candidates = candidates.size();
  if (candidates.size() < 5) return result;

  Rng rng(options.seed);
  rng.Shuffle(&candidates);
  const size_t val_count = std::max<size_t>(
      2, static_cast<size_t>(candidates.size() * options.validation_fraction));
  std::vector<Candidate> val(
      std::make_move_iterator(candidates.end() - static_cast<std::ptrdiff_t>(val_count)),
      std::make_move_iterator(candidates.end()));
  candidates.resize(candidates.size() - val_count);

  nn::Adam optimizer(classifier->Parameters(), options.lr);
  nn::EarlyStopper stopper(options.patience, /*higher_is_better=*/true);
  std::vector<ag::Var> params = classifier->Parameters();

  auto validation_macro_f1 = [&]() {
    std::array<size_t, kNumClassifierClasses> tp{}, fp{}, fn{};
    for (const Candidate& c : val) {
      const auto pred = classifier->Predict(c.members);
      if (pred.cls == c.label) {
        ++tp[static_cast<size_t>(c.label)];
      } else {
        ++fp[static_cast<size_t>(pred.cls)];
        ++fn[static_cast<size_t>(c.label)];
      }
    }
    double macro = 0.0;
    int classes = 0;
    for (int c = 0; c < kNumClassifierClasses; ++c) {
      const size_t support = tp[static_cast<size_t>(c)] + fn[static_cast<size_t>(c)];
      if (support == 0) continue;
      const double p =
          tp[static_cast<size_t>(c)] + fp[static_cast<size_t>(c)] > 0
              ? static_cast<double>(tp[static_cast<size_t>(c)]) /
                    (tp[static_cast<size_t>(c)] + fp[static_cast<size_t>(c)])
              : 0.0;
      const double r = static_cast<double>(tp[static_cast<size_t>(c)]) / support;
      macro += (p + r) > 0 ? 2 * p * r / (p + r) : 0.0;
      ++classes;
    }
    return classes > 0 ? macro / classes : 0.0;
  };

  // Random-subset view of a candidate's members (subset augmentation).
  auto subset_members = [&rng](const Candidate& c) {
    const size_t m = c.members.rows();
    const size_t take = 1 + rng.NextBelow(m);
    std::vector<size_t> ids(m);
    for (size_t i = 0; i < m; ++i) ids[i] = i;
    rng.Shuffle(&ids);
    Matrix subset(take, c.members.cols());
    for (size_t i = 0; i < take; ++i) {
      std::copy(c.members.Row(ids[i]), c.members.Row(ids[i]) + c.members.cols(),
                subset.Row(i));
    }
    return subset;
  };

  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    rng.Shuffle(&candidates);
    size_t i = 0;
    while (i < candidates.size()) {
      optimizer.ZeroGrad();
      const size_t end = std::min(candidates.size(), i + options.batch_size);
      std::vector<ag::Var> losses;
      for (; i < end; ++i) {
        const bool augment = candidates[i].members.rows() > 1 &&
                             rng.NextBernoulli(options.subset_augmentation);
        const Matrix members =
            augment ? subset_members(candidates[i]) : candidates[i].members;
        losses.push_back(ag::CrossEntropyWithLogits(
            classifier->ForwardLogits(members), {candidates[i].label}));
      }
      ag::Var batch_loss =
          ag::ScalarMul(ag::SumAll(ag::ConcatRows(losses)),
                        1.0f / static_cast<float>(losses.size()));
      batch_loss.Backward();
      optimizer.Step();
    }
    result.epochs_run = epoch + 1;
    stopper.Observe(validation_macro_f1(), params);
    if (stopper.ShouldStop()) break;
  }
  stopper.RestoreBest(&params);
  result.validation_macro_f1 = stopper.best_metric();
  return result;
}

}  // namespace nerglob::core
