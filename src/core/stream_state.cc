#include "core/stream_state.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "io/tensor_io.h"
#include "lm/encode_cache.h"

namespace nerglob::core {

PipelineMemoryUsage StreamState::MemoryUsage() const {
  PipelineMemoryUsage usage;
  usage.tweet_base_bytes = tweet_base.MemoryUsageBytes();
  usage.candidate_base_bytes = candidate_base.MemoryUsageBytes();
  usage.trie_bytes = trie.MemoryUsageBytes();
  usage.embed_cache_bytes = embed_cache.size() * sizeof(SpanKey);
  for (const auto& [key, emb] : embed_cache) {
    usage.embed_cache_bytes += emb.size() * sizeof(float) + sizeof(void*) * 2;
  }
  usage.total_bytes = usage.tweet_base_bytes + usage.candidate_base_bytes +
                      usage.trie_bytes + usage.embed_cache_bytes;
  // Shared across sessions, so reported beside (not inside) total_bytes.
  if (const lm::EncodeCache* cache = lm::EncodeCache::Global()) {
    usage.global_encode_cache_bytes = cache->MemoryUsageBytes();
  }
  return usage;
}

Status StreamState::Save(io::TensorWriter* writer) const {
  NERGLOB_RETURN_IF_ERROR(tweet_base.Save(writer));
  NERGLOB_RETURN_IF_ERROR(candidate_base.Save(writer));

  // Trie: the registered form set fully determines scan behavior; Forms()
  // returns it sorted, so the record bytes are history-independent.
  const std::vector<std::vector<std::string>> forms = trie.Forms();
  writer->PutU64(forms.size());
  for (const auto& form : forms) {
    writer->PutU64(form.size());
    for (const std::string& tok : form) writer->PutString(tok);
  }
  NERGLOB_RETURN_IF_ERROR(writer->EndRecord(io::kTagTrie));

  // Pipeline bookkeeping. Unordered containers are serialized in sorted
  // key order so identical states write identical bytes.
  writer->PutU64(local_type_votes.size());
  for (const auto& [surface, votes] : local_type_votes) {
    writer->PutString(surface);
    for (int v : votes) writer->PutI64(v);
  }
  writer->PutU64(dirty_surfaces.size());
  for (const std::string& s : dirty_surfaces) writer->PutString(s);

  std::vector<std::pair<std::string, int>> support(seed_support.begin(),
                                                   seed_support.end());
  std::sort(support.begin(), support.end());
  writer->PutU64(support.size());
  for (const auto& [surface, count] : support) {
    writer->PutString(surface);
    writer->PutI64(count);
  }

  std::vector<const std::pair<const SpanKey, Matrix>*> cache_entries;
  cache_entries.reserve(embed_cache.size());
  for (const auto& kv : embed_cache) cache_entries.push_back(&kv);
  std::sort(cache_entries.begin(), cache_entries.end(),
            [](const auto* a, const auto* b) {
              const SpanKey& x = a->first;
              const SpanKey& y = b->first;
              if (x.message_id != y.message_id)
                return x.message_id < y.message_id;
              if (x.begin != y.begin) return x.begin < y.begin;
              return x.end < y.end;
            });
  writer->PutU64(cache_entries.size());
  for (const auto* kv : cache_entries) {
    writer->PutI64(kv->first.message_id);
    writer->PutU64(kv->first.begin);
    writer->PutU64(kv->first.end);
    writer->PutMatrix(kv->second);
  }

  writer->PutU64(finalized.size());
  for (const FinalizedMessage& fm : finalized) {
    writer->PutI64(fm.message_id);
    writer->PutU64(fm.spans.size());
    for (const text::EntitySpan& span : fm.spans) {
      writer->PutU64(span.begin_token);
      writer->PutU64(span.end_token);
      writer->PutU32(static_cast<uint32_t>(span.type));
    }
  }

  writer->PutU64(evicted_messages);
  writer->PutU64(embed_cache_hits);
  writer->PutU64(embed_cache_misses);
  return writer->EndRecord(io::kTagPipelineState);
}

Status StreamState::Load(io::TensorReader* reader) {
  StreamState restored;
  NERGLOB_RETURN_IF_ERROR(restored.tweet_base.Load(reader));
  NERGLOB_RETURN_IF_ERROR(restored.candidate_base.Load(reader));

  auto fail = [&](const char* what) {
    return reader->status().ok()
               ? Status::InvalidArgument(
                     StrFormat("'%s': corrupt stream-state record (%s)",
                               reader->path().c_str(), what))
               : reader->status();
  };

  NERGLOB_RETURN_IF_ERROR(reader->NextRecord(io::kTagTrie));
  uint64_t num_forms = 0;
  if (!reader->GetU64(&num_forms)) return fail("trie count");
  for (uint64_t i = 0; i < num_forms; ++i) {
    uint64_t num_tokens = 0;
    if (!reader->GetU64(&num_tokens) ||
        num_tokens > reader->RemainingInRecord()) {
      return fail("trie form");
    }
    std::vector<std::string> form(num_tokens);
    for (std::string& tok : form) {
      if (!reader->GetString(&tok)) return fail("trie token");
    }
    restored.trie.Insert(form);
  }
  NERGLOB_RETURN_IF_ERROR(reader->ExpectRecordEnd());

  NERGLOB_RETURN_IF_ERROR(reader->NextRecord(io::kTagPipelineState));
  uint64_t count = 0;
  if (!reader->GetU64(&count)) return fail("votes count");
  for (uint64_t i = 0; i < count; ++i) {
    std::string surface;
    if (!reader->GetString(&surface)) return fail("vote surface");
    std::array<int, text::kNumEntityTypes> votes{};
    for (int& v : votes) {
      int64_t raw = 0;
      if (!reader->GetI64(&raw)) return fail("vote");
      v = static_cast<int>(raw);
    }
    restored.local_type_votes.emplace(std::move(surface), votes);
  }

  if (!reader->GetU64(&count) || count > reader->RemainingInRecord()) {
    return fail("dirty count");
  }
  restored.dirty_surfaces.resize(count);
  for (std::string& s : restored.dirty_surfaces) {
    if (!reader->GetString(&s)) return fail("dirty surface");
  }

  if (!reader->GetU64(&count)) return fail("support count");
  for (uint64_t i = 0; i < count; ++i) {
    std::string surface;
    int64_t support = 0;
    if (!reader->GetString(&surface) || !reader->GetI64(&support)) {
      return fail("support entry");
    }
    restored.seed_support.emplace(std::move(surface),
                                  static_cast<int>(support));
  }

  if (!reader->GetU64(&count)) return fail("cache count");
  for (uint64_t i = 0; i < count; ++i) {
    SpanKey key;
    uint64_t begin = 0, end = 0;
    Matrix emb;
    if (!reader->GetI64(&key.message_id) || !reader->GetU64(&begin) ||
        !reader->GetU64(&end) || !reader->GetMatrix(&emb)) {
      return fail("cache entry");
    }
    key.begin = begin;
    key.end = end;
    restored.embed_cache.emplace(key, std::move(emb));
  }

  if (!reader->GetU64(&count) || count > reader->RemainingInRecord()) {
    return fail("finalized count");
  }
  restored.finalized.resize(count);
  for (FinalizedMessage& fm : restored.finalized) {
    uint64_t num_spans = 0;
    if (!reader->GetI64(&fm.message_id) || !reader->GetU64(&num_spans) ||
        num_spans > reader->RemainingInRecord()) {
      return fail("finalized message");
    }
    fm.spans.resize(num_spans);
    for (text::EntitySpan& span : fm.spans) {
      uint64_t begin = 0, end = 0;
      uint32_t type = 0;
      if (!reader->GetU64(&begin) || !reader->GetU64(&end) ||
          !reader->GetU32(&type) ||
          type >= static_cast<uint32_t>(text::kNumEntityTypes)) {
        return fail("finalized span");
      }
      span.begin_token = begin;
      span.end_token = end;
      span.type = static_cast<text::EntityType>(type);
    }
  }

  uint64_t evicted = 0, hits = 0, misses = 0;
  if (!reader->GetU64(&evicted) || !reader->GetU64(&hits) ||
      !reader->GetU64(&misses)) {
    return fail("counters");
  }
  restored.evicted_messages = static_cast<size_t>(evicted);
  restored.embed_cache_hits = static_cast<size_t>(hits);
  restored.embed_cache_misses = static_cast<size_t>(misses);
  NERGLOB_RETURN_IF_ERROR(reader->ExpectRecordEnd());

  *this = std::move(restored);
  return Status::OK();
}

}  // namespace nerglob::core
