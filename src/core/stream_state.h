#ifndef NERGLOB_CORE_STREAM_STATE_H_
#define NERGLOB_CORE_STREAM_STATE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "stream/candidate_base.h"
#include "stream/tweet_base.h"
#include "tensor/matrix.h"
#include "text/bio.h"
#include "trie/candidate_trie.h"

namespace nerglob::io {
class TensorWriter;
class TensorReader;
}  // namespace nerglob::io

namespace nerglob::core {

/// A message that left the sliding window: its id and the final Global NER
/// spans it had at eviction time (the checkpoint the streaming session
/// flushes downstream).
struct FinalizedMessage {
  int64_t message_id = 0;
  std::vector<text::EntitySpan> spans;
  friend bool operator==(const FinalizedMessage& a, const FinalizedMessage& b) {
    return a.message_id == b.message_id && a.spans == b.spans;
  }
};

/// Per-component heap accounting for the pipeline's stream state, in
/// approximate bytes. With window_messages > 0 every component is bounded
/// by the window content; unbounded otherwise.
struct PipelineMemoryUsage {
  size_t tweet_base_bytes = 0;
  size_t candidate_base_bytes = 0;
  size_t trie_bytes = 0;
  size_t embed_cache_bytes = 0;
  /// Footprint of the process-wide lm::EncodeCache (0 when disabled).
  /// Reported for the operator's whole-process picture but NOT summed
  /// into total_bytes: the cache is shared, so adding it to every
  /// session's total would count it once per live session.
  size_t global_encode_cache_bytes = 0;
  size_t total_bytes = 0;
};

/// Cache key for one embedded span: (message id, token span).
struct SpanKey {
  int64_t message_id = 0;
  size_t begin = 0;
  size_t end = 0;
  friend bool operator==(const SpanKey& a, const SpanKey& b) {
    return a.message_id == b.message_id && a.begin == b.begin && a.end == b.end;
  }
};
struct SpanKeyHash {
  size_t operator()(const SpanKey& k) const {
    size_t h = std::hash<int64_t>()(k.message_id);
    h = h * 1000003u ^ std::hash<size_t>()(k.begin);
    h = h * 1000003u ^ std::hash<size_t>()(k.end);
    return h;
  }
};

/// All mutable state one stream session accumulates: the three stores
/// (TweetBase, CTrie, CandidateBase), the incremental-refresh and eviction
/// bookkeeping, the phrase-embedding cache, and the finalized-output
/// buffer. The counterpart of the immutable ModelBundle in the
/// model/session split — NerGlobalizer is a thin engine owning one
/// StreamState and borrowing one const ModelBundle.
///
/// Serializable: Save/Load checkpoint the complete state bit-identically
/// (unordered containers are written in sorted key order; the restored
/// CandidateBase keeps its incrementally-maintained embedding sums
/// verbatim), so a restored session's Predictions() at every
/// PipelineStage equal the uninterrupted run's.
struct StreamState {
  stream::TweetBase tweet_base;
  trie::CandidateTrie trie;
  stream::CandidateBase candidate_base;
  /// Most-frequent-local-type votes per surface (for kMentionExtraction).
  /// Decremented on eviction so the votes always describe the live window.
  std::map<std::string, std::array<int, text::kNumEntityTypes>>
      local_type_votes;
  /// Surfaces whose mention pool changed since the last RefreshCandidates.
  std::vector<std::string> dirty_surfaces;
  /// Per-surface count of live local-NER spans that seeded it. A surface
  /// whose support reaches zero under eviction is pruned from the CTrie and
  /// the CandidateBase — exactly the surfaces a from-scratch rebuild of the
  /// window would never have seeded.
  std::unordered_map<std::string, int> seed_support;
  /// Memoized PhraseEmbedder outputs keyed by (message id, span); entries
  /// live as long as their message. Only populated in windowed mode.
  std::unordered_map<SpanKey, Matrix, SpanKeyHash> embed_cache;
  /// Predictions flushed by eviction, awaiting TakeFinalized().
  std::vector<FinalizedMessage> finalized;

  size_t evicted_messages = 0;
  size_t embed_cache_hits = 0;
  size_t embed_cache_misses = 0;

  /// Approximate heap footprint per store. O(state size).
  PipelineMemoryUsage MemoryUsage() const;

  /// Appends the complete state as a sequence of checksummed records
  /// (tweet base, candidate base, trie, pipeline bookkeeping).
  Status Save(io::TensorWriter* writer) const;

  /// Restores a state saved with Save. Two-phase: `*this` is replaced only
  /// once every record validates, so a corrupt checkpoint leaves the
  /// state untouched.
  Status Load(io::TensorReader* reader);
};

}  // namespace nerglob::core

#endif  // NERGLOB_CORE_STREAM_STATE_H_
