#include "core/stages.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cluster/agglomerative.h"
#include "common/metrics.h"
#include "common/scratch_arena.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/entity_classifier.h"
#include "core/phrase_embedder.h"

namespace nerglob::core::stages {

namespace {

/// Scans `ids` against `trie`, appending new mention records (with local
/// embeddings) to the CandidateBase. When `dedup` is set, spans already
/// present in their surface's pool are skipped — the eviction rescan
/// path, where live sentences are re-scanned after a surface prune.
void ExtractMentionsInto(const ModelView& view, StreamState& state,
                         const NerGlobalizerConfig& config,
                         const std::vector<int64_t>& ids,
                         const trie::CandidateTrie& trie, bool dedup = false) {
  if (trie.size() == 0) return;
  static const trace::TraceStage kStage("mention_extraction");
  trace::TraceSpan span(kStage);
  // The embed cache only pays for itself when eviction can trigger
  // re-extraction of already-embedded spans; unbounded streams never
  // revisit a span, so they skip the cache (and its memory) entirely.
  const bool use_cache = config.window_messages > 0;

  // Phase 1 (parallel): per-sentence trie scans and phrase embeddings are
  // independent reads of the TweetBase (and read-only lookups of the embed
  // cache), so they fan out over the thread pool. Found mentions land in a
  // per-id slot, preserving sentence order.
  struct Found {
    std::string surface;
    stream::MentionRecord mention;
    bool cache_hit = false;
  };
  std::vector<std::vector<Found>> found(ids.size());
  ParallelFor(0, ids.size(), /*grain=*/4, [&](size_t idx) {
    const int64_t id = ids[idx];
    const stream::SentenceRecord* record = state.tweet_base.Find(id);
    if (record == nullptr || record->message.tokens.empty()) return;
    std::vector<std::string> match_tokens;
    match_tokens.reserve(record->message.tokens.size());
    for (const auto& tok : record->message.tokens) match_tokens.push_back(tok.match);

    for (const trie::TokenSpan& span :
         trie.FindLongestMatches(match_tokens, config.max_mention_span)) {
      // Mentions truncated away by the encoder have no embeddings; skip.
      if (span.begin >= record->token_embeddings.rows()) continue;
      const size_t emb_end = std::min(span.end, record->token_embeddings.rows());
      Found f;
      f.mention.message_id = id;
      f.mention.begin_token = span.begin;
      f.mention.end_token = span.end;
      f.surface = SpanSurfaceString(record->message, span.begin, span.end);
      if (dedup && state.candidate_base.ContainsMention(f.surface, id, span.begin,
                                                        span.end)) {
        continue;
      }
      if (use_cache) {
        auto it = state.embed_cache.find(SpanKey{id, span.begin, span.end});
        if (it != state.embed_cache.end()) {
          f.mention.local_embedding = it->second;
          f.cache_hit = true;
        }
      }
      if (!f.cache_hit) {
        // Retained state: the embedding outlives this batch in the
        // CandidateBase (and cache), so it owns heap storage; EmbedInto
        // keeps every intermediate in the worker's scratch arena.
        view.embedder->EmbedInto(record->token_embeddings, span.begin, emb_end,
                                 &f.mention.local_embedding);
      }
      found[idx].push_back(std::move(f));
    }
  });

  // Phase 2 (serial merge, sentence order): AddMention assigns mention ids
  // by arrival, so merging in id order keeps the CandidateBase identical to
  // a sequential pass for any thread count. Cache inserts also happen here
  // so phase 1 only ever reads the cache map.
  std::unordered_set<std::string> touched;
  size_t mention_count = 0;
  size_t hits = 0, misses = 0;
  for (std::vector<Found>& per_id : found) {
    mention_count += per_id.size();
    for (Found& f : per_id) {
      if (use_cache) {
        if (f.cache_hit) {
          ++hits;
        } else {
          ++misses;
          state.embed_cache.emplace(
              SpanKey{f.mention.message_id, f.mention.begin_token,
                      f.mention.end_token},
              f.mention.local_embedding);
        }
      }
      state.candidate_base.AddMention(f.surface, std::move(f.mention));
      touched.insert(std::move(f.surface));
    }
  }
  for (const auto& surface : touched) state.dirty_surfaces.push_back(surface);
  state.embed_cache_hits += hits;
  state.embed_cache_misses += misses;

  if (metrics::Enabled()) {
    auto& registry = metrics::MetricsRegistry::Global();
    static metrics::Counter* const mentions =
        registry.GetCounter("pipeline.mentions_extracted_total");
    static metrics::Counter* const scans =
        registry.GetCounter("pipeline.trie_scans_total");
    mentions->Increment(mention_count);
    scans->Increment(ids.size());
    if (use_cache) {
      // Same events as the per-session StreamState::embed_cache_hits/
      // misses fields (which checkpoint with the session); these global
      // counters make them visible to the Prometheus/JSON exporters.
      static metrics::Counter* const cache_hits =
          registry.GetCounter("stream.embed_cache.hits");
      static metrics::Counter* const cache_misses =
          registry.GetCounter("stream.embed_cache.misses");
      cache_hits->Increment(hits);
      cache_misses->Increment(misses);
    }
  }
}

/// Clusters one surface form's mention pool and classifies each cluster.
/// Pure read of the CandidateBase — safe to run concurrently across
/// surfaces.
std::vector<stream::CandidateEntry> BuildCandidates(
    const ModelView& view, const StreamState& state,
    const NerGlobalizerConfig& config, const std::string& surface) {
  const auto& pool = state.candidate_base.Mentions(surface);
  if (pool.empty()) return {};
  const size_t n = pool.size();
  const size_t dim = pool[0].local_embedding.cols();

  // Cluster a bounded prefix; assign the tail to the nearest centroid.
  // The cluster span wraps all of candidate building; the classifier calls
  // below open nested "classify" spans, so stage.cluster.self_seconds is
  // clustering-only time while wall_seconds is the whole build.
  static const trace::TraceStage kClusterStage("cluster");
  trace::TraceSpan cluster_span(kClusterStage);
  const size_t head = std::min(n, kMaxClusterPool);
  common::ScratchFrame frame(&common::ScratchArena::ThreadLocal());
  Matrix* head_embs = frame.Get(head, dim);
  for (size_t i = 0; i < head; ++i) {
    std::copy(pool[i].local_embedding.Row(0),
              pool[i].local_embedding.Row(0) + dim, head_embs->Row(i));
  }
  cluster::ClusteringResult clustering = cluster::AgglomerativeClusterCosine(
      *head_embs, config.cluster_threshold);

  std::vector<std::vector<size_t>> members(clustering.num_clusters);
  for (size_t i = 0; i < head; ++i) {
    members[static_cast<size_t>(clustering.assignments[i])].push_back(i);
  }
  if (n > head) {
    // Centroids of the head clusters.
    std::vector<Matrix> centroids(clustering.num_clusters, Matrix(1, dim));
    for (size_t c = 0; c < clustering.num_clusters; ++c) {
      for (size_t i : members[c]) {
        centroids[c].AddInPlace(pool[i].local_embedding);
      }
      centroids[c].Scale(1.0f / static_cast<float>(members[c].size()));
    }
    for (size_t i = head; i < n; ++i) {
      size_t best = 0;
      float best_dist = CosineDistance(pool[i].local_embedding, centroids[0]);
      for (size_t c = 1; c < clustering.num_clusters; ++c) {
        const float d = CosineDistance(pool[i].local_embedding, centroids[c]);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      members[best].push_back(i);
    }
  }

  std::vector<stream::CandidateEntry> entries;
  entries.reserve(members.size());
  for (const auto& cluster_members : members) {
    if (cluster_members.empty()) continue;
    // Inner frame so every cluster reuses one slot regardless of size.
    common::ScratchFrame cluster_frame(frame.arena());
    Matrix* member_embs = cluster_frame.Get(cluster_members.size(), dim);
    for (size_t j = 0; j < cluster_members.size(); ++j) {
      std::copy(pool[cluster_members[j]].local_embedding.Row(0),
                pool[cluster_members[j]].local_embedding.Row(0) + dim,
                member_embs->Row(j));
    }
    const EntityClassifier::Prediction pred =
        view.classifier->Predict(*member_embs);
    stream::CandidateEntry entry;
    entry.surface = surface;
    entry.mention_ids = cluster_members;
    entry.is_entity = pred.is_entity();
    if (pred.is_entity()) entry.type = pred.type();
    entry.confidence = pred.confidence;
    entries.push_back(std::move(entry));
  }
  if (metrics::Enabled()) {
    auto& registry = metrics::MetricsRegistry::Global();
    static metrics::Counter* const clusters =
        registry.GetCounter("pipeline.clusters_formed_total");
    static metrics::Counter* const dropped =
        registry.GetCounter("pipeline.false_positives_dropped_total");
    size_t non_entity = 0;
    for (const auto& entry : entries) {
      if (!entry.is_entity) ++non_entity;
    }
    clusters->Increment(entries.size());
    dropped->Increment(non_entity);
  }
  return entries;
}

/// Re-clusters and re-classifies every surface form whose pool changed
/// (or all surfaces when incremental_refresh is off). Per-surface work
/// (clustering + classification) runs in parallel; the CandidateBase
/// writes happen serially in sorted-surface order.
void RefreshCandidatesImpl(const ModelView& view, StreamState& state,
                           const NerGlobalizerConfig& config) {
  static const trace::TraceStage kStage("refresh_candidates");
  trace::TraceSpan span(kStage);
  if (!config.incremental_refresh) {
    // Reference path: rebuild every surface, not just the dirty set. The
    // per-surface build is a pure function of the mention pool, so this
    // produces bit-identical candidates while doing strictly more work.
    state.dirty_surfaces = state.candidate_base.surfaces();
  }
  std::sort(state.dirty_surfaces.begin(), state.dirty_surfaces.end());
  state.dirty_surfaces.erase(
      std::unique(state.dirty_surfaces.begin(), state.dirty_surfaces.end()),
      state.dirty_surfaces.end());

  // Phase 1 (parallel): per-surface clustering + classification only reads
  // the CandidateBase. Phase 2 writes the results back serially in sorted
  // surface order, so the base's state is thread-count independent.
  std::vector<std::vector<stream::CandidateEntry>> built(state.dirty_surfaces.size());
  ParallelFor(0, state.dirty_surfaces.size(), /*grain=*/1, [&](size_t i) {
    built[i] = BuildCandidates(view, state, config, state.dirty_surfaces[i]);
  });
  for (size_t i = 0; i < state.dirty_surfaces.size(); ++i) {
    // Empty means the surface had no mentions (seed behavior: skip).
    if (built[i].empty()) continue;
    state.candidate_base.SetCandidates(state.dirty_surfaces[i], std::move(built[i]));
  }
  state.dirty_surfaces.clear();
}

}  // namespace

std::vector<text::EntitySpan> ResolveOverlaps(std::vector<text::EntitySpan> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const text::EntitySpan& a, const text::EntitySpan& b) {
              const size_t la = a.end_token - a.begin_token;
              const size_t lb = b.end_token - b.begin_token;
              if (la != lb) return la > lb;
              if (a.begin_token != b.begin_token) return a.begin_token < b.begin_token;
              return static_cast<int>(a.type) < static_cast<int>(b.type);
            });
  std::vector<text::EntitySpan> kept;
  for (const auto& span : spans) {
    bool overlaps = false;
    for (const auto& k : kept) {
      if (span.begin_token < k.end_token && k.begin_token < span.end_token) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) kept.push_back(span);
  }
  std::sort(kept.begin(), kept.end(),
            [](const text::EntitySpan& a, const text::EntitySpan& b) {
              return a.begin_token < b.begin_token;
            });
  return kept;
}

void LocalEncode(const ModelView& view, StreamState& state, StageContext& ctx) {
  (void)state;  // model-only by contract: the encoder reads no stream state
  if (ctx.pre_encoded) return;
  std::vector<const std::vector<text::Token>*> sentences;
  sentences.reserve(ctx.batch->size());
  for (const stream::Message& message : *ctx.batch) {
    sentences.push_back(&message.tokens);
  }
  // EncodeMany defaults dedup duplicate sentences within the batch and
  // consult the process-wide lm::EncodeCache when enabled — both return
  // the exact bytes a per-message recompute would, so the stage keeps the
  // pipeline's bit-identity contract.
  ctx.encoded = view.model->EncodeMany(sentences);
}

void IngestLocal(const ModelView& view, StreamState& state, StageContext& ctx) {
  (void)view;
  // Snapshot before this batch lands: these are the sentences that only
  // need rescanning against the delta trie.
  ctx.old_ids = state.tweet_base.ids();
  ctx.outputs = IngestEncodedBatch(*ctx.batch, &ctx.encoded,
                                   &state.tweet_base, &state.trie);
  for (const LocalNer::Output& out : ctx.outputs) {
    if (state.tweet_base.Find(out.message_id) != nullptr) {
      ctx.new_ids.push_back(out.message_id);
    }
    for (const std::string& surface : out.new_surfaces) {
      ctx.delta.Insert(SplitChar(surface, ' '));
    }
    // Record local-type votes for the mention-extraction ablation stage,
    // and seed support for the eviction bookkeeping: every live local span
    // counts one unit of support for its surface form. Eviction decrements
    // symmetrically by re-decoding the stored BIO labels.
    const stream::SentenceRecord* rec = state.tweet_base.Find(out.message_id);
    for (const text::EntitySpan& span : out.local_spans) {
      const std::string surface =
          SpanSurfaceString(rec->message, span.begin_token, span.end_token);
      ++state.local_type_votes[surface][static_cast<size_t>(span.type)];
      ++state.seed_support[surface];
    }
  }
}

void ExtractMentions(const ModelView& view, StreamState& state,
                     StageContext& ctx) {
  ExtractMentionsInto(view, state, *ctx.config, ctx.new_ids, state.trie);
  if (ctx.delta.size() > 0) {
    ExtractMentionsInto(view, state, *ctx.config, ctx.old_ids, ctx.delta);
  }
}

void RefreshCandidates(const ModelView& view, StreamState& state,
                       StageContext& ctx) {
  RefreshCandidatesImpl(view, state, *ctx.config);
}

void Evict(const ModelView& view, StreamState& state, StageContext& ctx) {
  const NerGlobalizerConfig& config = *ctx.config;
  if (config.window_messages == 0 ||
      state.tweet_base.size() <= config.window_messages) {
    return;
  }
  static const trace::TraceStage kStage("evict");
  trace::TraceSpan span(kStage);
  const size_t count = state.tweet_base.size() - config.window_messages;
  const std::vector<int64_t> evict_order(state.tweet_base.ids().begin(),
                                         state.tweet_base.ids().begin() +
                                             static_cast<std::ptrdiff_t>(count));
  const std::unordered_set<int64_t> evicted(evict_order.begin(),
                                            evict_order.end());

  // 1. Flush the final Global NER output of every departing message while
  // its candidates are still live (RefreshCandidates just ran, so the
  // partition reflects everything up to and including this batch).
  std::unordered_map<int64_t, std::vector<text::EntitySpan>> flushed;
  for (const std::string& surface : state.candidate_base.surfaces()) {
    const auto& pool = state.candidate_base.Mentions(surface);
    for (const auto& entry : state.candidate_base.Candidates(surface)) {
      if (!entry.is_entity) continue;
      for (size_t mention_id : entry.mention_ids) {
        const stream::MentionRecord& m = pool[mention_id];
        if (evicted.count(m.message_id) == 0) continue;
        flushed[m.message_id].push_back(
            {m.begin_token, m.end_token, entry.type});
      }
    }
  }
  for (int64_t id : evict_order) {
    state.finalized.push_back({id, ResolveOverlaps(std::move(flushed[id]))});
  }

  // 2. Withdraw the departing messages' seed support. Surfaces that drop
  // to zero are exactly those no live message's local NER would seed — a
  // from-scratch rebuild of the window would never register them.
  std::vector<std::string> pruned;
  for (int64_t id : evict_order) {
    const stream::SentenceRecord* rec = state.tweet_base.Find(id);
    if (rec == nullptr) continue;
    for (const text::EntitySpan& span : text::DecodeBio(rec->local_bio)) {
      const std::string surface =
          SpanSurfaceString(rec->message, span.begin_token, span.end_token);
      auto votes = state.local_type_votes.find(surface);
      if (votes != state.local_type_votes.end()) {
        --votes->second[static_cast<size_t>(span.type)];
      }
      auto it = state.seed_support.find(surface);
      if (it == state.seed_support.end()) continue;
      if (--it->second <= 0) {
        state.seed_support.erase(it);
        pruned.push_back(surface);
      }
    }
  }
  std::sort(pruned.begin(), pruned.end());
  pruned.erase(std::unique(pruned.begin(), pruned.end()), pruned.end());

  // 3. Live sentences that held a mention of a pruned surface must be
  // re-scanned: with the longer/other surface gone from the trie, the
  // greedy longest-match may now recover different (shorter) mentions in
  // the region it used to cover. Collect them before the pools change.
  std::vector<int64_t> rescan_ids;
  for (const std::string& surface : pruned) {
    for (const stream::MentionRecord& m : state.candidate_base.Mentions(surface)) {
      if (evicted.count(m.message_id) == 0) rescan_ids.push_back(m.message_id);
    }
  }
  std::sort(rescan_ids.begin(), rescan_ids.end());
  rescan_ids.erase(std::unique(rescan_ids.begin(), rescan_ids.end()),
                   rescan_ids.end());

  // 4. Drop evicted mentions everywhere, then remove pruned surfaces
  // wholesale (trie entry, pool, candidates, votes).
  std::vector<std::string> changed = state.candidate_base.RemoveMentionsOf(evicted);
  const std::unordered_set<std::string> pruned_set(pruned.begin(), pruned.end());
  for (const std::string& surface : pruned) {
    state.trie.Remove(SplitChar(surface, ' '));
    state.candidate_base.RemoveSurface(surface);
    state.local_type_votes.erase(surface);
  }

  // 5. Retire the records themselves and their cache entries.
  state.tweet_base.EvictOldest(count);
  for (auto it = state.embed_cache.begin(); it != state.embed_cache.end();) {
    if (evicted.count(it->first.message_id) > 0) {
      it = state.embed_cache.erase(it);
    } else {
      ++it;
    }
  }
  state.evicted_messages += count;

  // 6. Re-scan affected live sentences (dedup: only genuinely new spans
  // are added; their embeddings come from the cache when possible), then
  // rebuild every eviction-touched surface so candidates never dangle.
  ExtractMentionsInto(view, state, config, rescan_ids, state.trie,
                      /*dedup=*/true);
  for (const std::string& surface : changed) {
    if (pruned_set.count(surface) == 0) state.dirty_surfaces.push_back(surface);
  }
  RefreshCandidatesImpl(view, state, config);

  if (metrics::Enabled()) {
    auto& registry = metrics::MetricsRegistry::Global();
    static metrics::Counter* const evictions =
        registry.GetCounter("stream.evicted_messages");
    static metrics::Counter* const pruned_total =
        registry.GetCounter("stream.pruned_surfaces_total");
    static metrics::Gauge* const window_messages =
        registry.GetGauge("stream.window_messages");
    static metrics::Gauge* const window_surfaces =
        registry.GetGauge("stream.window_surfaces");
    static metrics::Gauge* const memory_bytes =
        registry.GetGauge("stream.memory_bytes");
    evictions->Increment(count);
    pruned_total->Increment(pruned.size());
    window_messages->Set(static_cast<double>(state.tweet_base.size()));
    window_surfaces->Set(static_cast<double>(state.trie.size()));
    memory_bytes->Set(static_cast<double>(state.MemoryUsage().total_bytes));
  }
}

}  // namespace nerglob::core::stages
