#ifndef NERGLOB_CORE_PHRASE_EMBEDDER_H_
#define NERGLOB_CORE_PHRASE_EMBEDDER_H_

#include <vector>

#include "nn/layers.h"
#include "tensor/matrix.h"

namespace nerglob::core {

/// Entity Phrase Embedder (Sec. V-B, Eq. 1–3): combines the token-level
/// contextual embeddings of a mention span into one fixed-size local
/// mention embedding:
///
///   pooled   = mean(token embeddings)          (Eq. 1)
///   pooled^  = pooled / ||pooled||             (Eq. 2)
///   local    = W_ff pooled^ + b_ff             (Eq. 3)
///
/// The Local NER encoder stays frozen; only W_ff/b_ff train (with a
/// contrastive objective — see core/training.h). `normalize` exposes the
/// paper's L2-normalization ablation ("adding the normalization step leads
/// to better performance").
///
/// Thread-safety: const methods (Forward/Embed) are safe to call
/// concurrently once training has finished; training mutates parameters
/// and must be exclusive. Embed is O(span_len · dim + dim²) per call.
class PhraseEmbedder : public nn::Module {
 public:
  PhraseEmbedder(size_t dim, Rng* rng, bool normalize = true);

  /// Differentiable forward over a span of the (frozen) token embeddings.
  /// Rows [begin, end) of token_embeddings; output (1, dim).
  ag::Var Forward(const Matrix& token_embeddings, size_t begin,
                  size_t end) const;

  /// Eval-mode convenience: the local mention embedding as a plain matrix.
  Matrix Embed(const Matrix& token_embeddings, size_t begin, size_t end) const;

  /// Embed into `out` (reshaped to (1, dim)): the pooled mean is held in
  /// the calling thread's scratch arena and the span is pooled in place
  /// (no SliceRows copy), so a steady-state caller that reuses `out`
  /// performs no heap allocation. Bit-identical to Embed/Forward.
  void EmbedInto(const Matrix& token_embeddings, size_t begin, size_t end,
                 Matrix* out) const;

  std::vector<ag::Var> Parameters() const override { return dense_.Parameters(); }

  size_t dim() const { return dim_; }
  bool normalize() const { return normalize_; }

 private:
  size_t dim_;
  bool normalize_;
  nn::Linear dense_;
};

}  // namespace nerglob::core

#endif  // NERGLOB_CORE_PHRASE_EMBEDDER_H_
