#ifndef NERGLOB_CORE_NER_GLOBALIZER_CONFIG_H_
#define NERGLOB_CORE_NER_GLOBALIZER_CONFIG_H_

#include <cstddef>

#include "trie/candidate_trie.h"

namespace nerglob::core {

/// Pipeline knobs, split into their own header so the stage functions
/// (core/stages.h) can consume them without pulling in the NerGlobalizer
/// driver.
struct NerGlobalizerConfig {
  /// Agglomerative clustering cut (cosine distance; must be < 1, the
  /// triplet margin — Sec. V-C).
  float cluster_threshold = 0.6f;
  /// Mention-extraction lookahead (k following tokens, Sec. V-A).
  size_t max_mention_span = trie::CandidateTrie::kDefaultMaxSpan;
  /// Sliding-window size in messages. 0 (default) disables eviction: state
  /// grows with the stream, exactly the pre-windowing behavior. When > 0,
  /// each ProcessBatch retires the oldest records beyond the window,
  /// flushing their final predictions to TakeFinalized(), pruning CTrie
  /// entries and CandidateBase surfaces whose support in the live window
  /// drops to zero, and keeping MemoryUsage() bounded.
  size_t window_messages = 0;
  /// When true (default) RefreshCandidates re-clusters and re-classifies
  /// only the surfaces whose mention pool changed this cycle (the dirty
  /// set). When false every surface is rebuilt every cycle — the reference
  /// path; both produce bit-identical Predictions() (enforced by test),
  /// the full path just wastes work re-deriving unchanged candidates.
  bool incremental_refresh = true;
  /// Batch size used by ProcessAll when the caller passes 0 (the default).
  /// A driver knob, not state semantics: it is NOT echoed into checkpoints
  /// and any value yields bit-identical outputs for the same batching.
  size_t process_batch_size = 256;
};

}  // namespace nerglob::core

#endif  // NERGLOB_CORE_NER_GLOBALIZER_CONFIG_H_
