#ifndef NERGLOB_CORE_MODEL_BUNDLE_H_
#define NERGLOB_CORE_MODEL_BUNDLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/entity_classifier.h"
#include "core/phrase_embedder.h"
#include "lm/micro_bert.h"

namespace nerglob::io {
class TensorWriter;
class TensorReader;
}  // namespace nerglob::io

namespace nerglob::core {

/// Architecture + provenance of a trained system. Everything needed to
/// rebuild shape-identical models (and to re-run the exact training
/// recipe: the construction seed is part of the config).
struct ModelBundleConfig {
  lm::MicroBertConfig lm;
  size_t classifier_hidden = 48;
  PoolingMode pooling = PoolingMode::kAttention;
  bool normalize_embedder = true;
  /// The clustering cut the system was tuned with (Sec. V-C); consumers
  /// seed NerGlobalizerConfig::cluster_threshold from it.
  float cluster_threshold = 0.8f;
  /// Base seed for parameter initialization (the harness derives the
  /// per-model seeds from it, see ModelBundle's constructor).
  uint64_t seed = 7;
};

/// The immutable trained artifact of the paper's offline phase: one
/// MicroBert (Local NER encoder, which also embodies the hashed-subword
/// tokenizer vocab and the BIO label head), one PhraseEmbedder, one
/// EntityClassifier, plus the config they were built from and its
/// fingerprint. This is the unit that is trained once, saved as a `.ngb`
/// file, and shared read-only by any number of concurrent sessions
/// (NerGlobalizer / StreamingSession borrow `const ModelBundle&`).
///
/// Lifecycle: construct from a config (fresh deterministic init), train
/// via the mutable_*() accessors (offline phase, exclusive access), then
/// treat as const forever — every inference entry point of the contained
/// models is const and thread-safe.
///
/// On-disk format (`.ngb`): the common artifact framing of io/tensor_io.h
/// with one kTagBundleConfig record, three kTagModule records (micro_bert,
/// phrase_embedder, entity_classifier), and one kTagTrainingStats record.
/// See docs/ARCHITECTURE.md §7 for the byte-level spec.
class ModelBundle {
 public:
  /// An empty bundle (no models); the target shape for Load composition.
  ModelBundle() = default;

  /// Builds untrained models with deterministic seeding derived from
  /// config.seed. The derivation (model: seed*31+3; embedder/classifier
  /// share an Rng seeded seed*31+4, embedder first) reproduces the
  /// harness's historical init stream, so cached weights stay valid.
  explicit ModelBundle(const ModelBundleConfig& config);

  // Movable, not copyable (owns the models).
  ModelBundle(ModelBundle&&) = default;
  ModelBundle& operator=(ModelBundle&&) = default;
  ModelBundle(const ModelBundle&) = delete;
  ModelBundle& operator=(const ModelBundle&) = delete;

  /// False for a default-constructed bundle.
  bool has_models() const { return model_ != nullptr; }

  const lm::MicroBert& model() const;
  const PhraseEmbedder& embedder() const;
  const EntityClassifier& classifier() const;

  /// Offline-phase access for the training drivers. Training mutates
  /// parameters and must be exclusive; never call these once the bundle
  /// is shared across sessions.
  lm::MicroBert* mutable_model();
  PhraseEmbedder* mutable_embedder();
  EntityClassifier* mutable_classifier();

  const ModelBundleConfig& config() const { return config_; }

  /// Hex FNV-1a hash of the architecture config. Stored in `.ngb` files
  /// and in stream checkpoints: restoring a checkpoint onto a bundle with
  /// a different fingerprint fails instead of silently mixing models.
  std::string Fingerprint() const;

  /// Harness-owned provenance doubles (training losses, counts, ...)
  /// carried through Save/Load so a loaded bundle can report how it was
  /// trained. Empty when never set.
  const std::vector<double>& training_stats() const { return training_stats_; }
  void set_training_stats(std::vector<double> stats) {
    training_stats_ = std::move(stats);
  }

  /// Writes the bundle to `path` in the `.ngb` format (docs/FORMATS.md).
  /// Crash-safe: written via temp + fsync + atomic rename with transient
  /// IO failures retried (io::WriteFileAtomically).
  Status Save(const std::string& path) const;
  /// Appends the bundle's records to an already-open artifact.
  Status Save(io::TensorWriter* writer) const;

  /// Reads a bundle saved with Save. Corrupt, truncated, or
  /// version-mismatched files return a non-OK Status (never crash).
  static Result<ModelBundle> Load(const std::string& path);
  static Result<ModelBundle> Load(io::TensorReader* reader);

 private:
  ModelBundleConfig config_;
  std::unique_ptr<lm::MicroBert> model_;
  std::unique_ptr<PhraseEmbedder> embedder_;
  std::unique_ptr<EntityClassifier> classifier_;
  std::vector<double> training_stats_;
};

}  // namespace nerglob::core

#endif  // NERGLOB_CORE_MODEL_BUNDLE_H_
