#include "core/model_bundle.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "io/checkpoint_io.h"
#include "io/tensor_io.h"
#include "nn/module.h"

namespace nerglob::core {

namespace {

/// Bumped when the kTagBundleConfig payload layout changes.
constexpr uint32_t kBundleLayoutVersion = 1;

std::string ConfigKeyString(const ModelBundleConfig& c) {
  return StrFormat(
      "d_model=%zu heads=%zu layers=%zu ff_mult=%zu max_seq=%zu buckets=%zu "
      "labels=%d hidden=%zu pooling=%d normalize=%d threshold=%.6f seed=%llu",
      c.lm.d_model, c.lm.num_heads, c.lm.num_layers, c.lm.ff_mult,
      c.lm.max_seq_len, c.lm.subword_buckets, c.lm.num_labels,
      c.classifier_hidden, static_cast<int>(c.pooling),
      c.normalize_embedder ? 1 : 0,
      static_cast<double>(c.cluster_threshold),
      static_cast<unsigned long long>(c.seed));
}

}  // namespace

ModelBundle::ModelBundle(const ModelBundleConfig& config) : config_(config) {
  // The seed derivation reproduces the harness's historical init stream
  // exactly: one Rng (seed*31+4) constructs the embedder then the
  // classifier, so parameters match systems trained before the bundle
  // refactor (and cached weights remain loadable).
  model_ = std::make_unique<lm::MicroBert>(config.lm, config.seed * 31 + 3);
  Rng rng(config.seed * 31 + 4);
  embedder_ = std::make_unique<PhraseEmbedder>(config.lm.d_model, &rng,
                                               config.normalize_embedder);
  classifier_ = std::make_unique<EntityClassifier>(
      config.lm.d_model, config.classifier_hidden, &rng, config.pooling);
}

const lm::MicroBert& ModelBundle::model() const {
  NERGLOB_CHECK(model_ != nullptr) << "empty ModelBundle";
  return *model_;
}

const PhraseEmbedder& ModelBundle::embedder() const {
  NERGLOB_CHECK(embedder_ != nullptr) << "empty ModelBundle";
  return *embedder_;
}

const EntityClassifier& ModelBundle::classifier() const {
  NERGLOB_CHECK(classifier_ != nullptr) << "empty ModelBundle";
  return *classifier_;
}

lm::MicroBert* ModelBundle::mutable_model() {
  NERGLOB_CHECK(model_ != nullptr) << "empty ModelBundle";
  return model_.get();
}

PhraseEmbedder* ModelBundle::mutable_embedder() {
  NERGLOB_CHECK(embedder_ != nullptr) << "empty ModelBundle";
  return embedder_.get();
}

EntityClassifier* ModelBundle::mutable_classifier() {
  NERGLOB_CHECK(classifier_ != nullptr) << "empty ModelBundle";
  return classifier_.get();
}

std::string ModelBundle::Fingerprint() const {
  return StrFormat("%016llx", static_cast<unsigned long long>(
                                  Fnv1aHash(ConfigKeyString(config_))));
}

Status ModelBundle::Save(io::TensorWriter* writer) const {
  if (!has_models()) {
    return Status::FailedPrecondition("cannot save an empty ModelBundle");
  }
  writer->PutU32(kBundleLayoutVersion);
  writer->PutU64(config_.lm.d_model);
  writer->PutU64(config_.lm.num_heads);
  writer->PutU64(config_.lm.num_layers);
  writer->PutU64(config_.lm.ff_mult);
  writer->PutU64(config_.lm.max_seq_len);
  writer->PutU64(config_.lm.subword_buckets);
  writer->PutF32(config_.lm.dropout);
  writer->PutI64(config_.lm.num_labels);
  writer->PutU64(config_.classifier_hidden);
  writer->PutU32(static_cast<uint32_t>(config_.pooling));
  writer->PutU32(config_.normalize_embedder ? 1 : 0);
  writer->PutF32(config_.cluster_threshold);
  writer->PutU64(config_.seed);
  writer->PutString(Fingerprint());
  NERGLOB_RETURN_IF_ERROR(writer->EndRecord(io::kTagBundleConfig));

  NERGLOB_RETURN_IF_ERROR(nn::SaveModule(writer, "micro_bert", *model_));
  NERGLOB_RETURN_IF_ERROR(
      nn::SaveModule(writer, "phrase_embedder", *embedder_));
  NERGLOB_RETURN_IF_ERROR(
      nn::SaveModule(writer, "entity_classifier", *classifier_));

  writer->PutU64(training_stats_.size());
  for (double v : training_stats_) writer->PutF64(v);
  return writer->EndRecord(io::kTagTrainingStats);
}

Status ModelBundle::Save(const std::string& path) const {
  // Crash-safe: temp + fsync + atomic rename, so a crash mid-save leaves
  // whatever was at `path` before, never a torn bundle.
  return io::WriteFileAtomically(
      path, [this](io::TensorWriter* writer) { return Save(writer); });
}

Result<ModelBundle> ModelBundle::Load(io::TensorReader* reader) {
  NERGLOB_RETURN_IF_ERROR(reader->NextRecord(io::kTagBundleConfig));
  uint32_t layout = 0;
  if (!reader->GetU32(&layout)) return reader->status();
  if (layout != kBundleLayoutVersion) {
    return Status::InvalidArgument(StrFormat(
        "'%s': bundle layout version mismatch: expected %u, found %u",
        reader->path().c_str(), kBundleLayoutVersion, layout));
  }
  ModelBundleConfig config;
  uint64_t d_model = 0, num_heads = 0, num_layers = 0, ff_mult = 0;
  uint64_t max_seq = 0, buckets = 0, hidden = 0, seed = 0;
  int64_t num_labels = 0;
  uint32_t pooling = 0, normalize = 0;
  std::string stored_fingerprint;
  if (!reader->GetU64(&d_model) || !reader->GetU64(&num_heads) ||
      !reader->GetU64(&num_layers) || !reader->GetU64(&ff_mult) ||
      !reader->GetU64(&max_seq) || !reader->GetU64(&buckets) ||
      !reader->GetF32(&config.lm.dropout) || !reader->GetI64(&num_labels) ||
      !reader->GetU64(&hidden) || !reader->GetU32(&pooling) ||
      !reader->GetU32(&normalize) ||
      !reader->GetF32(&config.cluster_threshold) || !reader->GetU64(&seed) ||
      !reader->GetString(&stored_fingerprint)) {
    return reader->status();
  }
  NERGLOB_RETURN_IF_ERROR(reader->ExpectRecordEnd());
  // Defend against absurd shapes before allocating fresh models: the
  // config drives O(d_model^2 * num_layers) parameter allocations.
  constexpr uint64_t kMaxDim = 1ull << 20;
  if (d_model == 0 || d_model > kMaxDim || num_heads == 0 ||
      num_heads > kMaxDim || num_layers > 64 || ff_mult == 0 ||
      ff_mult > 64 || max_seq == 0 || max_seq > kMaxDim || buckets == 0 ||
      buckets > kMaxDim || num_labels <= 0 || num_labels > 1024 ||
      hidden == 0 || hidden > kMaxDim || pooling > 1) {
    return Status::InvalidArgument(StrFormat(
        "'%s': implausible bundle config (d_model=%llu heads=%llu "
        "layers=%llu)",
        reader->path().c_str(), static_cast<unsigned long long>(d_model),
        static_cast<unsigned long long>(num_heads),
        static_cast<unsigned long long>(num_layers)));
  }
  config.lm.d_model = d_model;
  config.lm.num_heads = num_heads;
  config.lm.num_layers = num_layers;
  config.lm.ff_mult = ff_mult;
  config.lm.max_seq_len = max_seq;
  config.lm.subword_buckets = buckets;
  config.lm.num_labels = static_cast<int>(num_labels);
  config.classifier_hidden = hidden;
  config.pooling = static_cast<PoolingMode>(pooling);
  config.normalize_embedder = normalize != 0;
  config.seed = seed;
  if (config.lm.d_model % config.lm.num_heads != 0) {
    return Status::InvalidArgument(StrFormat(
        "'%s': bundle config d_model %zu not divisible by num_heads %zu",
        reader->path().c_str(), config.lm.d_model, config.lm.num_heads));
  }

  ModelBundle bundle(config);
  if (bundle.Fingerprint() != stored_fingerprint) {
    return Status::InvalidArgument(StrFormat(
        "'%s': bundle fingerprint mismatch: stored %s, recomputed %s",
        reader->path().c_str(), stored_fingerprint.c_str(),
        bundle.Fingerprint().c_str()));
  }

  NERGLOB_RETURN_IF_ERROR(
      nn::LoadModule(reader, "micro_bert", bundle.model_.get()));
  NERGLOB_RETURN_IF_ERROR(
      nn::LoadModule(reader, "phrase_embedder", bundle.embedder_.get()));
  NERGLOB_RETURN_IF_ERROR(
      nn::LoadModule(reader, "entity_classifier", bundle.classifier_.get()));

  NERGLOB_RETURN_IF_ERROR(reader->NextRecord(io::kTagTrainingStats));
  uint64_t num_stats = 0;
  if (!reader->GetU64(&num_stats)) return reader->status();
  if (num_stats > 1024) {
    return Status::InvalidArgument(
        StrFormat("'%s': implausible training-stats count %llu",
                  reader->path().c_str(),
                  static_cast<unsigned long long>(num_stats)));
  }
  bundle.training_stats_.resize(num_stats);
  for (double& v : bundle.training_stats_) {
    if (!reader->GetF64(&v)) return reader->status();
  }
  NERGLOB_RETURN_IF_ERROR(reader->ExpectRecordEnd());
  return bundle;
}

Result<ModelBundle> ModelBundle::Load(const std::string& path) {
  io::TensorReader reader(path);
  return Load(&reader);
}

}  // namespace nerglob::core
