#ifndef NERGLOB_CORE_NER_GLOBALIZER_H_
#define NERGLOB_CORE_NER_GLOBALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/entity_classifier.h"
#include "core/local_ner.h"
#include "core/model_bundle.h"
#include "core/ner_globalizer_config.h"
#include "core/phrase_embedder.h"
#include "core/stream_state.h"
#include "stream/message.h"

namespace nerglob::core {

/// Which prefix of the pipeline produces the output — the Fig. 3 ablation
/// stages, bottom curve to top curve.
enum class PipelineStage {
  /// Conventional NER: the Local NER BIO decode is the output.
  kLocalOnly = 0,
  /// + CTrie mention extraction; surface forms typed by their most
  /// frequent local type (Fig. 3's second curve).
  kMentionExtraction = 1,
  /// + local mention embeddings, each classified individually (no pooling;
  /// Fig. 3's third curve).
  kLocalEmbeddings = 2,
  /// Full Global NER: clustering + pooled global embeddings + classifier.
  kFullGlobal = 3,
};

const char* PipelineStageName(PipelineStage stage);

/// The pipeline config a bundle was tuned with: defaults everywhere except
/// the clustering cut, which comes from the bundle's training recipe.
NerGlobalizerConfig DefaultPipelineConfig(const ModelBundle& bundle);

/// The NER Globalizer pipeline (Fig. 2): Local NER -> mention extraction ->
/// phrase embedding -> candidate clustering -> entity classification.
///
/// A thin engine in the model/session split: the trained models are
/// borrowed const (directly or via a ModelBundle, shared across any number
/// of concurrent pipelines) and all mutable stream state lives in one
/// owned StreamState, checkpointable with Checkpoint()/Restore().
///
/// Supports continuous execution over batches. With the default unbounded
/// configuration every ProcessBatch extends the TweetBase/CTrie/
/// CandidateBase incrementally and Predictions() reflects everything
/// processed since startup. With window_messages > 0 the pipeline holds
/// only the most recent window: older messages are evicted after each
/// batch (their final predictions buffered for TakeFinalized()) and
/// Predictions() covers the live window only.
///
/// Thread-safety: the pipeline parallelizes internally (encoder forwards,
/// trie scans, per-surface clustering fan out over the process thread
/// pool) but its public interface is NOT thread-safe — call ProcessBatch /
/// Predictions / TakeFinalized from one thread at a time. Distinct
/// pipelines over one const ModelBundle may run fully concurrently.
/// Outputs are bit-identical for any NERGLOB_THREADS setting.
class NerGlobalizer {
 public:
  /// All components must outlive the pipeline and be trained already
  /// (model fine-tuned, embedder + classifier trained on D5).
  NerGlobalizer(const lm::MicroBert* model, const PhraseEmbedder* embedder,
                const EntityClassifier* classifier, NerGlobalizerConfig config);

  /// Borrows a trained bundle (which must outlive the pipeline). Sessions
  /// created this way stamp checkpoints with the bundle fingerprint, so a
  /// checkpoint cannot be restored onto a different architecture.
  NerGlobalizer(const ModelBundle* bundle, NerGlobalizerConfig config);

  /// Processes one batch of the stream (Sec. III execution cycle) by
  /// chaining the stage graph (core/stages.h): LocalEncode → IngestLocal →
  /// ExtractMentions → RefreshCandidates → Evict. Cost is O(batch work +
  /// dirty surfaces); with a window it is independent of how many messages
  /// the stream has seen in total.
  void ProcessBatch(const std::vector<stream::Message>& batch);

  /// ProcessBatch with the LocalEncode stage's work supplied by the caller:
  /// `encoded[i]` must be bitwise what model->Encode(batch[i].tokens) would
  /// return (default-constructed for empty messages) — the contract
  /// lm::MicroBert::EncodeMany provides for any cross-session batch
  /// composition. This is the serve-layer batch scheduler's entry point;
  /// all downstream state evolves bit-identically to ProcessBatch
  /// (enforced by test).
  void ProcessBatchPreEncoded(const std::vector<stream::Message>& batch,
                              std::vector<lm::EncodeResult> encoded);

  /// Convenience: processes `messages` in batches of `batch_size`.
  /// `batch_size == 0` (the default) uses config().process_batch_size.
  void ProcessAll(const std::vector<stream::Message>& messages,
                  size_t batch_size = 0);

  /// Final spans per live message (stream order), produced by the given
  /// pipeline prefix. kFullGlobal is the system output. With eviction
  /// enabled this covers the current window; evicted messages' outputs are
  /// returned once via TakeFinalized(). O(live mentions + candidates).
  std::vector<std::vector<text::EntitySpan>> Predictions(
      PipelineStage stage = PipelineStage::kFullGlobal);

  /// Drains the buffer of messages finalized by eviction since the last
  /// call, in stream order. Empty when window_messages == 0.
  std::vector<FinalizedMessage> TakeFinalized();

  /// EMD Globalizer (the predecessor system, paper ref. [8]): collective
  /// processing *without* type-aware clustering — every surface form is one
  /// candidate (all mentions pooled together) and the classifier only
  /// decides entity vs non-entity. Spans carry a dummy type; score with
  /// NerScores::emd. Sec. VI-D: the full pipeline improves EMD over this by
  /// resolving entity/non-entity surface-form ambiguity per cluster.
  std::vector<std::vector<text::EntitySpan>> EmdGlobalizerPredictions() const;

  /// Appends the complete session state (one kTagCheckpoint header record:
  /// bundle fingerprint, config echo, timing counters — then the
  /// StreamState records) to an open artifact. Restoring the result
  /// reproduces Predictions() bit-identically at every PipelineStage.
  Status Checkpoint(io::TensorWriter* writer) const;

  /// Restores a checkpoint written by Checkpoint. Fails (leaving the
  /// current state untouched) if the checkpoint's bundle fingerprint or
  /// pipeline config disagree with this pipeline's, or if any record is
  /// corrupt, truncated, or version-mismatched.
  Status Restore(io::TensorReader* reader);

  /// Message ids in stream order (aligned with Predictions()); the live
  /// window under eviction.
  const std::vector<int64_t>& message_ids() const {
    return state_.tweet_base.ids();
  }

  /// Cumulative wall-clock seconds spent in the Local NER step vs the
  /// Global NER steps (Table IV's execution-time columns).
  double local_seconds() const { return local_seconds_; }
  double global_seconds() const { return global_seconds_; }

  /// Approximate heap footprint of the stream state (TweetBase +
  /// CandidateBase + CTrie + phrase-embedding cache). O(state size); call
  /// per batch, not per message.
  PipelineMemoryUsage MemoryUsage() const { return state_.MemoryUsage(); }

  /// Messages evicted since construction (0 when unbounded).
  size_t evicted_messages() const { return state_.evicted_messages; }
  /// Phrase-embedding cache hits/misses (windowed mode only; the cache is
  /// disabled when window_messages == 0 because the unbounded pipeline
  /// never re-extracts a span it has already embedded).
  size_t embed_cache_hits() const { return state_.embed_cache_hits; }
  size_t embed_cache_misses() const { return state_.embed_cache_misses; }

  const stream::TweetBase& tweet_base() const { return state_.tweet_base; }
  const stream::CandidateBase& candidate_base() const {
    return state_.candidate_base;
  }
  const trie::CandidateTrie& trie() const { return state_.trie; }
  const NerGlobalizerConfig& config() const { return config_; }

 private:
  /// The stage-graph driver behind both ProcessBatch entry points. When
  /// `pre_encoded`, `encoded` is consumed as the LocalEncode product.
  void RunStages(const std::vector<stream::Message>& batch,
                 std::vector<lm::EncodeResult> encoded, bool pre_encoded);

  const lm::MicroBert* model_;
  const PhraseEmbedder* embedder_;
  const EntityClassifier* classifier_;
  NerGlobalizerConfig config_;
  /// Architecture fingerprint stamped into checkpoints; empty when built
  /// from raw component pointers (fingerprint checks are then skipped).
  std::string bundle_fingerprint_;

  StreamState state_;

  double local_seconds_ = 0.0;
  double global_seconds_ = 0.0;
};

}  // namespace nerglob::core

#endif  // NERGLOB_CORE_NER_GLOBALIZER_H_
