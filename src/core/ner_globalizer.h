#ifndef NERGLOB_CORE_NER_GLOBALIZER_H_
#define NERGLOB_CORE_NER_GLOBALIZER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/entity_classifier.h"
#include "core/local_ner.h"
#include "core/phrase_embedder.h"
#include "stream/candidate_base.h"
#include "stream/message.h"
#include "stream/tweet_base.h"
#include "trie/candidate_trie.h"

namespace nerglob::core {

/// Which prefix of the pipeline produces the output — the Fig. 3 ablation
/// stages, bottom curve to top curve.
enum class PipelineStage {
  /// Conventional NER: the Local NER BIO decode is the output.
  kLocalOnly = 0,
  /// + CTrie mention extraction; surface forms typed by their most
  /// frequent local type (Fig. 3's second curve).
  kMentionExtraction = 1,
  /// + local mention embeddings, each classified individually (no pooling;
  /// Fig. 3's third curve).
  kLocalEmbeddings = 2,
  /// Full Global NER: clustering + pooled global embeddings + classifier.
  kFullGlobal = 3,
};

const char* PipelineStageName(PipelineStage stage);

struct NerGlobalizerConfig {
  /// Agglomerative clustering cut (cosine distance; must be < 1, the
  /// triplet margin — Sec. V-C).
  float cluster_threshold = 0.6f;
  /// Mention-extraction lookahead (k following tokens, Sec. V-A).
  size_t max_mention_span = trie::CandidateTrie::kDefaultMaxSpan;
  /// Sliding-window size in messages. 0 (default) disables eviction: state
  /// grows with the stream, exactly the pre-windowing behavior. When > 0,
  /// each ProcessBatch retires the oldest records beyond the window,
  /// flushing their final predictions to TakeFinalized(), pruning CTrie
  /// entries and CandidateBase surfaces whose support in the live window
  /// drops to zero, and keeping MemoryUsage() bounded.
  size_t window_messages = 0;
  /// When true (default) RefreshCandidates re-clusters and re-classifies
  /// only the surfaces whose mention pool changed this cycle (the dirty
  /// set). When false every surface is rebuilt every cycle — the reference
  /// path; both produce bit-identical Predictions() (enforced by test),
  /// the full path just wastes work re-deriving unchanged candidates.
  bool incremental_refresh = true;
};

/// A message that left the sliding window: its id and the final Global NER
/// spans it had at eviction time (the checkpoint the streaming session
/// flushes downstream).
struct FinalizedMessage {
  int64_t message_id = 0;
  std::vector<text::EntitySpan> spans;
};

/// Per-component heap accounting for the pipeline's stream state, in
/// approximate bytes. With window_messages > 0 every component is bounded
/// by the window content; unbounded otherwise.
struct PipelineMemoryUsage {
  size_t tweet_base_bytes = 0;
  size_t candidate_base_bytes = 0;
  size_t trie_bytes = 0;
  size_t embed_cache_bytes = 0;
  size_t total_bytes = 0;
};

/// The NER Globalizer pipeline (Fig. 2): Local NER -> mention extraction ->
/// phrase embedding -> candidate clustering -> entity classification.
///
/// Supports continuous execution over batches. With the default unbounded
/// configuration every ProcessBatch extends the TweetBase/CTrie/
/// CandidateBase incrementally and Predictions() reflects everything
/// processed since startup. With window_messages > 0 the pipeline holds
/// only the most recent window: older messages are evicted after each
/// batch (their final predictions buffered for TakeFinalized()) and
/// Predictions() covers the live window only.
///
/// Thread-safety: the pipeline parallelizes internally (encoder forwards,
/// trie scans, per-surface clustering fan out over the process thread
/// pool) but its public interface is NOT thread-safe — call ProcessBatch /
/// Predictions / TakeFinalized from one thread at a time. Outputs are
/// bit-identical for any NERGLOB_THREADS setting.
class NerGlobalizer {
 public:
  /// All components must outlive the pipeline and be trained already
  /// (model fine-tuned, embedder + classifier trained on D5).
  NerGlobalizer(const lm::MicroBert* model, const PhraseEmbedder* embedder,
                const EntityClassifier* classifier, NerGlobalizerConfig config);

  /// Processes one batch of the stream (Sec. III execution cycle):
  /// Local NER, delta mention extraction, dirty-set candidate refresh,
  /// then (if windowed) eviction + a second refresh of eviction-touched
  /// surfaces. Cost is O(batch work + dirty surfaces); with a window it is
  /// independent of how many messages the stream has seen in total.
  void ProcessBatch(const std::vector<stream::Message>& batch);

  /// Convenience: processes `messages` in batches of `batch_size`.
  void ProcessAll(const std::vector<stream::Message>& messages,
                  size_t batch_size = 256);

  /// Final spans per live message (stream order), produced by the given
  /// pipeline prefix. kFullGlobal is the system output. With eviction
  /// enabled this covers the current window; evicted messages' outputs are
  /// returned once via TakeFinalized(). O(live mentions + candidates).
  std::vector<std::vector<text::EntitySpan>> Predictions(
      PipelineStage stage = PipelineStage::kFullGlobal);

  /// Drains the buffer of messages finalized by eviction since the last
  /// call, in stream order. Empty when window_messages == 0.
  std::vector<FinalizedMessage> TakeFinalized();

  /// EMD Globalizer (the predecessor system, paper ref. [8]): collective
  /// processing *without* type-aware clustering — every surface form is one
  /// candidate (all mentions pooled together) and the classifier only
  /// decides entity vs non-entity. Spans carry a dummy type; score with
  /// NerScores::emd. Sec. VI-D: the full pipeline improves EMD over this by
  /// resolving entity/non-entity surface-form ambiguity per cluster.
  std::vector<std::vector<text::EntitySpan>> EmdGlobalizerPredictions() const;

  /// Message ids in stream order (aligned with Predictions()); the live
  /// window under eviction.
  const std::vector<int64_t>& message_ids() const { return tweet_base_.ids(); }

  /// Cumulative wall-clock seconds spent in the Local NER step vs the
  /// Global NER steps (Table IV's execution-time columns).
  double local_seconds() const { return local_seconds_; }
  double global_seconds() const { return global_seconds_; }

  /// Approximate heap footprint of the stream state (TweetBase +
  /// CandidateBase + CTrie + phrase-embedding cache). O(state size); call
  /// per batch, not per message.
  PipelineMemoryUsage MemoryUsage() const;

  /// Messages evicted since construction (0 when unbounded).
  size_t evicted_messages() const { return evicted_messages_; }
  /// Phrase-embedding cache hits/misses (windowed mode only; the cache is
  /// disabled when window_messages == 0 because the unbounded pipeline
  /// never re-extracts a span it has already embedded).
  size_t embed_cache_hits() const { return embed_cache_hits_; }
  size_t embed_cache_misses() const { return embed_cache_misses_; }

  const stream::TweetBase& tweet_base() const { return tweet_base_; }
  const stream::CandidateBase& candidate_base() const { return candidate_base_; }
  const trie::CandidateTrie& trie() const { return trie_; }
  const NerGlobalizerConfig& config() const { return config_; }

 private:
  /// Scans `ids` against `trie`, appending new mention records (with local
  /// embeddings) to the CandidateBase. When `dedup` is set, spans already
  /// present in their surface's pool are skipped — the eviction rescan
  /// path, where live sentences are re-scanned after a surface prune.
  void ExtractMentionsInto(const std::vector<int64_t>& ids,
                           const trie::CandidateTrie& trie,
                           bool dedup = false);

  /// Re-clusters and re-classifies every surface form whose pool changed
  /// (or all surfaces when incremental_refresh is off). Per-surface work
  /// (clustering + classification) runs in parallel; the CandidateBase
  /// writes happen serially in sorted-surface order.
  void RefreshCandidates();

  /// Clusters one surface form's mention pool and classifies each cluster.
  /// Pure read of the CandidateBase — safe to run concurrently across
  /// surfaces.
  std::vector<stream::CandidateEntry> BuildCandidates(
      const std::string& surface) const;

  /// Retires the oldest records beyond config_.window_messages: flushes
  /// their final predictions, decrements seed support (pruning CTrie/
  /// CandidateBase surfaces that drop to zero), drops their mentions and
  /// cache entries, rescans live sentences affected by pruned surfaces,
  /// and refreshes every eviction-touched surface.
  void EvictToWindow();

  /// Cache key for one embedded span: (message id, token span).
  struct SpanKey {
    int64_t message_id = 0;
    size_t begin = 0;
    size_t end = 0;
    friend bool operator==(const SpanKey& a, const SpanKey& b) {
      return a.message_id == b.message_id && a.begin == b.begin &&
             a.end == b.end;
    }
  };
  struct SpanKeyHash {
    size_t operator()(const SpanKey& k) const {
      size_t h = std::hash<int64_t>()(k.message_id);
      h = h * 1000003u ^ std::hash<size_t>()(k.begin);
      h = h * 1000003u ^ std::hash<size_t>()(k.end);
      return h;
    }
  };

  const lm::MicroBert* model_;
  const PhraseEmbedder* embedder_;
  const EntityClassifier* classifier_;
  NerGlobalizerConfig config_;
  LocalNer local_ner_;

  stream::TweetBase tweet_base_;
  trie::CandidateTrie trie_;
  stream::CandidateBase candidate_base_;
  /// Most-frequent-local-type votes per surface (for kMentionExtraction).
  /// Decremented on eviction so the votes always describe the live window.
  std::map<std::string, std::array<int, text::kNumEntityTypes>> local_type_votes_;
  /// Surfaces whose mention pool changed since the last RefreshCandidates.
  std::vector<std::string> dirty_surfaces_;
  /// Per-surface count of live local-NER spans that seeded it. A surface
  /// whose support reaches zero under eviction is pruned from the CTrie and
  /// the CandidateBase — exactly the surfaces a from-scratch rebuild of the
  /// window would never have seeded.
  std::unordered_map<std::string, int> seed_support_;
  /// Memoized PhraseEmbedder outputs keyed by (message id, span); entries
  /// live as long as their message. Only populated in windowed mode.
  std::unordered_map<SpanKey, Matrix, SpanKeyHash> embed_cache_;
  /// Predictions flushed by eviction, awaiting TakeFinalized().
  std::vector<FinalizedMessage> finalized_;

  size_t evicted_messages_ = 0;
  size_t embed_cache_hits_ = 0;
  size_t embed_cache_misses_ = 0;

  double local_seconds_ = 0.0;
  double global_seconds_ = 0.0;
};

}  // namespace nerglob::core

#endif  // NERGLOB_CORE_NER_GLOBALIZER_H_
