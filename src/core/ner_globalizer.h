#ifndef NERGLOB_CORE_NER_GLOBALIZER_H_
#define NERGLOB_CORE_NER_GLOBALIZER_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/entity_classifier.h"
#include "core/local_ner.h"
#include "core/phrase_embedder.h"
#include "stream/candidate_base.h"
#include "stream/message.h"
#include "stream/tweet_base.h"
#include "trie/candidate_trie.h"

namespace nerglob::core {

/// Which prefix of the pipeline produces the output — the Fig. 3 ablation
/// stages, bottom curve to top curve.
enum class PipelineStage {
  /// Conventional NER: the Local NER BIO decode is the output.
  kLocalOnly = 0,
  /// + CTrie mention extraction; surface forms typed by their most
  /// frequent local type (Fig. 3's second curve).
  kMentionExtraction = 1,
  /// + local mention embeddings, each classified individually (no pooling;
  /// Fig. 3's third curve).
  kLocalEmbeddings = 2,
  /// Full Global NER: clustering + pooled global embeddings + classifier.
  kFullGlobal = 3,
};

const char* PipelineStageName(PipelineStage stage);

struct NerGlobalizerConfig {
  /// Agglomerative clustering cut (cosine distance; must be < 1, the
  /// triplet margin — Sec. V-C).
  float cluster_threshold = 0.6f;
  /// Mention-extraction lookahead (k following tokens, Sec. V-A).
  size_t max_mention_span = trie::CandidateTrie::kDefaultMaxSpan;
};

/// The NER Globalizer pipeline (Fig. 2): Local NER -> mention extraction ->
/// phrase embedding -> candidate clustering -> entity classification.
/// Supports continuous execution over batches: every ProcessBatch extends
/// the TweetBase/CTrie/CandidateBase incrementally; Predictions() reflects
/// everything processed so far.
class NerGlobalizer {
 public:
  /// All components must outlive the pipeline and be trained already
  /// (model fine-tuned, embedder + classifier trained on D5).
  NerGlobalizer(const lm::MicroBert* model, const PhraseEmbedder* embedder,
                const EntityClassifier* classifier, NerGlobalizerConfig config);

  /// Processes one batch of the stream (Sec. III execution cycle).
  void ProcessBatch(const std::vector<stream::Message>& batch);

  /// Convenience: processes `messages` in batches of `batch_size`.
  void ProcessAll(const std::vector<stream::Message>& messages,
                  size_t batch_size = 256);

  /// Final spans per processed message (stream order), produced by the
  /// given pipeline prefix. kFullGlobal is the system output.
  std::vector<std::vector<text::EntitySpan>> Predictions(
      PipelineStage stage = PipelineStage::kFullGlobal);

  /// EMD Globalizer (the predecessor system, paper ref. [8]): collective
  /// processing *without* type-aware clustering — every surface form is one
  /// candidate (all mentions pooled together) and the classifier only
  /// decides entity vs non-entity. Spans carry a dummy type; score with
  /// NerScores::emd. Sec. VI-D: the full pipeline improves EMD over this by
  /// resolving entity/non-entity surface-form ambiguity per cluster.
  std::vector<std::vector<text::EntitySpan>> EmdGlobalizerPredictions() const;

  /// Message ids in stream order (aligned with Predictions()).
  const std::vector<int64_t>& message_ids() const { return tweet_base_.ids(); }

  /// Cumulative wall-clock seconds spent in the Local NER step vs the
  /// Global NER steps (Table IV's execution-time columns).
  double local_seconds() const { return local_seconds_; }
  double global_seconds() const { return global_seconds_; }

  const stream::TweetBase& tweet_base() const { return tweet_base_; }
  const stream::CandidateBase& candidate_base() const { return candidate_base_; }
  const trie::CandidateTrie& trie() const { return trie_; }
  const NerGlobalizerConfig& config() const { return config_; }

 private:
  /// Scans `ids` against `trie`, appending new mention records (with local
  /// embeddings) to the CandidateBase.
  void ExtractMentionsInto(const std::vector<int64_t>& ids,
                           const trie::CandidateTrie& trie);

  /// Re-clusters and re-classifies every surface form whose pool changed.
  /// Per-surface work (clustering + classification) runs in parallel; the
  /// CandidateBase writes happen serially in sorted-surface order.
  void RefreshCandidates();

  /// Clusters one surface form's mention pool and classifies each cluster.
  /// Pure read of the CandidateBase — safe to run concurrently across
  /// surfaces.
  std::vector<stream::CandidateEntry> BuildCandidates(
      const std::string& surface) const;

  const lm::MicroBert* model_;
  const PhraseEmbedder* embedder_;
  const EntityClassifier* classifier_;
  NerGlobalizerConfig config_;
  LocalNer local_ner_;

  stream::TweetBase tweet_base_;
  trie::CandidateTrie trie_;
  stream::CandidateBase candidate_base_;
  /// Most-frequent-local-type votes per surface (for kMentionExtraction).
  std::map<std::string, std::array<int, text::kNumEntityTypes>> local_type_votes_;
  /// Surfaces whose mention pool changed since the last RefreshCandidates.
  std::vector<std::string> dirty_surfaces_;

  double local_seconds_ = 0.0;
  double global_seconds_ = 0.0;
};

}  // namespace nerglob::core

#endif  // NERGLOB_CORE_NER_GLOBALIZER_H_
