#include "core/ner_globalizer.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "cluster/agglomerative.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/scratch_arena.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "io/tensor_io.h"

namespace nerglob::core {

namespace {

/// Pools larger than this are clustered on a prefix sample; the remaining
/// mentions join the nearest cluster centroid. Keeps the O(n^3) linkage
/// bounded for head entities with thousands of mentions.
constexpr size_t kMaxClusterPool = 64;

/// Greedy longest-first overlap resolution within one sentence.
std::vector<text::EntitySpan> ResolveOverlaps(std::vector<text::EntitySpan> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const text::EntitySpan& a, const text::EntitySpan& b) {
              const size_t la = a.end_token - a.begin_token;
              const size_t lb = b.end_token - b.begin_token;
              if (la != lb) return la > lb;
              if (a.begin_token != b.begin_token) return a.begin_token < b.begin_token;
              return static_cast<int>(a.type) < static_cast<int>(b.type);
            });
  std::vector<text::EntitySpan> kept;
  for (const auto& span : spans) {
    bool overlaps = false;
    for (const auto& k : kept) {
      if (span.begin_token < k.end_token && k.begin_token < span.end_token) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) kept.push_back(span);
  }
  std::sort(kept.begin(), kept.end(),
            [](const text::EntitySpan& a, const text::EntitySpan& b) {
              return a.begin_token < b.begin_token;
            });
  return kept;
}

}  // namespace

const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kLocalOnly:
      return "local-only";
    case PipelineStage::kMentionExtraction:
      return "local+mention-extraction";
    case PipelineStage::kLocalEmbeddings:
      return "local+local-embeddings";
    case PipelineStage::kFullGlobal:
      return "full-global";
  }
  return "unknown";
}

NerGlobalizerConfig DefaultPipelineConfig(const ModelBundle& bundle) {
  NerGlobalizerConfig config;
  config.cluster_threshold = bundle.config().cluster_threshold;
  return config;
}

NerGlobalizer::NerGlobalizer(const lm::MicroBert* model,
                             const PhraseEmbedder* embedder,
                             const EntityClassifier* classifier,
                             NerGlobalizerConfig config)
    : model_(model),
      embedder_(embedder),
      classifier_(classifier),
      config_(config),
      local_ner_(model) {
  NERGLOB_CHECK(embedder != nullptr);
  NERGLOB_CHECK(classifier != nullptr);
  NERGLOB_CHECK(config.cluster_threshold < 1.0f)
      << "cosine clustering threshold must stay below the triplet margin";
}

NerGlobalizer::NerGlobalizer(const ModelBundle* bundle,
                             NerGlobalizerConfig config)
    : NerGlobalizer(&bundle->model(), &bundle->embedder(),
                    &bundle->classifier(), config) {
  bundle_fingerprint_ = bundle->Fingerprint();
}

Status NerGlobalizer::Checkpoint(io::TensorWriter* writer) const {
  writer->PutString(bundle_fingerprint_);
  // The config is echoed so a checkpoint cannot be restored into a
  // pipeline that would interpret the state differently (other window,
  // other clustering cut).
  writer->PutF32(config_.cluster_threshold);
  writer->PutU64(config_.max_mention_span);
  writer->PutU64(config_.window_messages);
  writer->PutU32(config_.incremental_refresh ? 1 : 0);
  writer->PutF64(local_seconds_);
  writer->PutF64(global_seconds_);
  NERGLOB_RETURN_IF_ERROR(writer->EndRecord(io::kTagCheckpoint));
  return state_.Save(writer);
}

Status NerGlobalizer::Restore(io::TensorReader* reader) {
  NERGLOB_RETURN_IF_ERROR(reader->NextRecord(io::kTagCheckpoint));
  std::string fingerprint;
  float threshold = 0.0f;
  uint64_t max_span = 0, window = 0;
  uint32_t incremental = 0;
  double local_s = 0.0, global_s = 0.0;
  if (!reader->GetString(&fingerprint) || !reader->GetF32(&threshold) ||
      !reader->GetU64(&max_span) || !reader->GetU64(&window) ||
      !reader->GetU32(&incremental) || !reader->GetF64(&local_s) ||
      !reader->GetF64(&global_s)) {
    return reader->status().ok()
               ? Status::InvalidArgument(
                     StrFormat("'%s': corrupt checkpoint header",
                               reader->path().c_str()))
               : reader->status();
  }
  NERGLOB_RETURN_IF_ERROR(reader->ExpectRecordEnd());
  if (!fingerprint.empty() && !bundle_fingerprint_.empty() &&
      fingerprint != bundle_fingerprint_) {
    return Status::FailedPrecondition(StrFormat(
        "'%s': checkpoint was written against bundle %s, this pipeline "
        "uses bundle %s",
        reader->path().c_str(), fingerprint.c_str(),
        bundle_fingerprint_.c_str()));
  }
  if (threshold != config_.cluster_threshold ||
      max_span != config_.max_mention_span ||
      window != config_.window_messages ||
      (incremental != 0) != config_.incremental_refresh) {
    return Status::FailedPrecondition(StrFormat(
        "'%s': checkpoint pipeline config (threshold=%.6f span=%llu "
        "window=%llu incremental=%u) does not match this pipeline's",
        reader->path().c_str(), static_cast<double>(threshold),
        static_cast<unsigned long long>(max_span),
        static_cast<unsigned long long>(window), incremental));
  }
  // StreamState::Load is itself two-phase, so a corrupt state record
  // leaves this pipeline untouched; only the timing counters must wait
  // for it to succeed.
  NERGLOB_RETURN_IF_ERROR(state_.Load(reader));
  local_seconds_ = local_s;
  global_seconds_ = global_s;
  return Status::OK();
}

void NerGlobalizer::ProcessBatch(const std::vector<stream::Message>& batch) {
  static const trace::TraceStage kStage("process_batch");
  trace::TraceSpan batch_span(kStage);
  WallTimer batch_timer;

  // Ids of sentences that existed before this batch (for the delta rescan).
  std::vector<int64_t> old_ids = state_.tweet_base.ids();

  WallTimer local_timer;
  std::vector<LocalNer::Output> outputs =
      local_ner_.ProcessBatch(batch, &state_.tweet_base, &state_.trie);
  local_seconds_ += local_timer.ElapsedSeconds();

  WallTimer global_timer;
  // Delta trie: the surface forms first seen in this batch. Previously
  // processed sentences only need rescanning against these.
  trie::CandidateTrie delta;
  std::vector<int64_t> new_ids;
  for (const LocalNer::Output& out : outputs) {
    if (state_.tweet_base.Find(out.message_id) != nullptr) new_ids.push_back(out.message_id);
    for (const std::string& surface : out.new_surfaces) {
      delta.Insert(SplitChar(surface, ' '));
    }
    // Record local-type votes for the mention-extraction ablation stage,
    // and seed support for the eviction bookkeeping: every live local span
    // counts one unit of support for its surface form. Eviction decrements
    // symmetrically by re-decoding the stored BIO labels.
    const stream::SentenceRecord* rec = state_.tweet_base.Find(out.message_id);
    for (const text::EntitySpan& span : out.local_spans) {
      const std::string surface =
          SpanSurfaceString(rec->message, span.begin_token, span.end_token);
      ++state_.local_type_votes[surface][static_cast<size_t>(span.type)];
      ++state_.seed_support[surface];
    }
  }

  ExtractMentionsInto(new_ids, state_.trie);
  if (delta.size() > 0) ExtractMentionsInto(old_ids, delta);
  RefreshCandidates();
  if (config_.window_messages > 0 &&
      state_.tweet_base.size() > config_.window_messages) {
    EvictToWindow();
  }
  global_seconds_ += global_timer.ElapsedSeconds();

  if (metrics::Enabled()) {
    static metrics::Gauge* const rate =
        metrics::MetricsRegistry::Global().GetGauge(
            "pipeline.sentences_per_second");
    const double elapsed = batch_timer.ElapsedSeconds();
    if (elapsed > 0.0) rate->Set(static_cast<double>(batch.size()) / elapsed);
  }
}

void NerGlobalizer::ProcessAll(const std::vector<stream::Message>& messages,
                               size_t batch_size) {
  NERGLOB_CHECK_GT(batch_size, 0u);
  for (size_t i = 0; i < messages.size(); i += batch_size) {
    const size_t end = std::min(messages.size(), i + batch_size);
    ProcessBatch(std::vector<stream::Message>(
        messages.begin() + static_cast<std::ptrdiff_t>(i),
        messages.begin() + static_cast<std::ptrdiff_t>(end)));
  }
}

void NerGlobalizer::ExtractMentionsInto(const std::vector<int64_t>& ids,
                                        const trie::CandidateTrie& trie,
                                        bool dedup) {
  if (trie.size() == 0) return;
  static const trace::TraceStage kStage("mention_extraction");
  trace::TraceSpan span(kStage);
  // The embed cache only pays for itself when eviction can trigger
  // re-extraction of already-embedded spans; unbounded streams never
  // revisit a span, so they skip the cache (and its memory) entirely.
  const bool use_cache = config_.window_messages > 0;

  // Phase 1 (parallel): per-sentence trie scans and phrase embeddings are
  // independent reads of the TweetBase (and read-only lookups of the embed
  // cache), so they fan out over the thread pool. Found mentions land in a
  // per-id slot, preserving sentence order.
  struct Found {
    std::string surface;
    stream::MentionRecord mention;
    bool cache_hit = false;
  };
  std::vector<std::vector<Found>> found(ids.size());
  ParallelFor(0, ids.size(), /*grain=*/4, [&](size_t idx) {
    const int64_t id = ids[idx];
    const stream::SentenceRecord* record = state_.tweet_base.Find(id);
    if (record == nullptr || record->message.tokens.empty()) return;
    std::vector<std::string> match_tokens;
    match_tokens.reserve(record->message.tokens.size());
    for (const auto& tok : record->message.tokens) match_tokens.push_back(tok.match);

    for (const trie::TokenSpan& span :
         trie.FindLongestMatches(match_tokens, config_.max_mention_span)) {
      // Mentions truncated away by the encoder have no embeddings; skip.
      if (span.begin >= record->token_embeddings.rows()) continue;
      const size_t emb_end = std::min(span.end, record->token_embeddings.rows());
      Found f;
      f.mention.message_id = id;
      f.mention.begin_token = span.begin;
      f.mention.end_token = span.end;
      f.surface = SpanSurfaceString(record->message, span.begin, span.end);
      if (dedup && state_.candidate_base.ContainsMention(f.surface, id, span.begin,
                                                   span.end)) {
        continue;
      }
      if (use_cache) {
        auto it = state_.embed_cache.find(SpanKey{id, span.begin, span.end});
        if (it != state_.embed_cache.end()) {
          f.mention.local_embedding = it->second;
          f.cache_hit = true;
        }
      }
      if (!f.cache_hit) {
        // Retained state: the embedding outlives this batch in the
        // CandidateBase (and cache), so it owns heap storage; EmbedInto
        // keeps every intermediate in the worker's scratch arena.
        embedder_->EmbedInto(record->token_embeddings, span.begin, emb_end,
                             &f.mention.local_embedding);
      }
      found[idx].push_back(std::move(f));
    }
  });

  // Phase 2 (serial merge, sentence order): AddMention assigns mention ids
  // by arrival, so merging in id order keeps the CandidateBase identical to
  // a sequential pass for any thread count. Cache inserts also happen here
  // so phase 1 only ever reads the cache map.
  std::unordered_set<std::string> touched;
  size_t mention_count = 0;
  size_t hits = 0, misses = 0;
  for (std::vector<Found>& per_id : found) {
    mention_count += per_id.size();
    for (Found& f : per_id) {
      if (use_cache) {
        if (f.cache_hit) {
          ++hits;
        } else {
          ++misses;
          state_.embed_cache.emplace(
              SpanKey{f.mention.message_id, f.mention.begin_token,
                      f.mention.end_token},
              f.mention.local_embedding);
        }
      }
      state_.candidate_base.AddMention(f.surface, std::move(f.mention));
      touched.insert(std::move(f.surface));
    }
  }
  for (const auto& surface : touched) state_.dirty_surfaces.push_back(surface);
  state_.embed_cache_hits += hits;
  state_.embed_cache_misses += misses;

  if (metrics::Enabled()) {
    auto& registry = metrics::MetricsRegistry::Global();
    static metrics::Counter* const mentions =
        registry.GetCounter("pipeline.mentions_extracted_total");
    static metrics::Counter* const scans =
        registry.GetCounter("pipeline.trie_scans_total");
    mentions->Increment(mention_count);
    scans->Increment(ids.size());
    if (use_cache) {
      static metrics::Counter* const cache_hits =
          registry.GetCounter("stream.cache_hits");
      static metrics::Counter* const cache_misses =
          registry.GetCounter("stream.cache_misses");
      cache_hits->Increment(hits);
      cache_misses->Increment(misses);
    }
  }
}

std::vector<stream::CandidateEntry> NerGlobalizer::BuildCandidates(
    const std::string& surface) const {
  const auto& pool = state_.candidate_base.Mentions(surface);
  if (pool.empty()) return {};
  const size_t n = pool.size();
  const size_t dim = pool[0].local_embedding.cols();

  // Cluster a bounded prefix; assign the tail to the nearest centroid.
  // The cluster span wraps all of candidate building; the classifier calls
  // below open nested "classify" spans, so stage.cluster.self_seconds is
  // clustering-only time while wall_seconds is the whole build.
  static const trace::TraceStage kClusterStage("cluster");
  trace::TraceSpan cluster_span(kClusterStage);
  const size_t head = std::min(n, kMaxClusterPool);
  common::ScratchFrame frame(&common::ScratchArena::ThreadLocal());
  Matrix* head_embs = frame.Get(head, dim);
  for (size_t i = 0; i < head; ++i) {
    std::copy(pool[i].local_embedding.Row(0),
              pool[i].local_embedding.Row(0) + dim, head_embs->Row(i));
  }
  cluster::ClusteringResult clustering = cluster::AgglomerativeClusterCosine(
      *head_embs, config_.cluster_threshold);

  std::vector<std::vector<size_t>> members(clustering.num_clusters);
  for (size_t i = 0; i < head; ++i) {
    members[static_cast<size_t>(clustering.assignments[i])].push_back(i);
  }
  if (n > head) {
    // Centroids of the head clusters.
    std::vector<Matrix> centroids(clustering.num_clusters, Matrix(1, dim));
    for (size_t c = 0; c < clustering.num_clusters; ++c) {
      for (size_t i : members[c]) {
        centroids[c].AddInPlace(pool[i].local_embedding);
      }
      centroids[c].Scale(1.0f / static_cast<float>(members[c].size()));
    }
    for (size_t i = head; i < n; ++i) {
      size_t best = 0;
      float best_dist = CosineDistance(pool[i].local_embedding, centroids[0]);
      for (size_t c = 1; c < clustering.num_clusters; ++c) {
        const float d = CosineDistance(pool[i].local_embedding, centroids[c]);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      members[best].push_back(i);
    }
  }

  std::vector<stream::CandidateEntry> entries;
  entries.reserve(members.size());
  for (const auto& cluster_members : members) {
    if (cluster_members.empty()) continue;
    // Inner frame so every cluster reuses one slot regardless of size.
    common::ScratchFrame cluster_frame(frame.arena());
    Matrix* member_embs = cluster_frame.Get(cluster_members.size(), dim);
    for (size_t j = 0; j < cluster_members.size(); ++j) {
      std::copy(pool[cluster_members[j]].local_embedding.Row(0),
                pool[cluster_members[j]].local_embedding.Row(0) + dim,
                member_embs->Row(j));
    }
    const EntityClassifier::Prediction pred =
        classifier_->Predict(*member_embs);
    stream::CandidateEntry entry;
    entry.surface = surface;
    entry.mention_ids = cluster_members;
    entry.is_entity = pred.is_entity();
    if (pred.is_entity()) entry.type = pred.type();
    entry.confidence = pred.confidence;
    entries.push_back(std::move(entry));
  }
  if (metrics::Enabled()) {
    auto& registry = metrics::MetricsRegistry::Global();
    static metrics::Counter* const clusters =
        registry.GetCounter("pipeline.clusters_formed_total");
    static metrics::Counter* const dropped =
        registry.GetCounter("pipeline.false_positives_dropped_total");
    size_t non_entity = 0;
    for (const auto& entry : entries) {
      if (!entry.is_entity) ++non_entity;
    }
    clusters->Increment(entries.size());
    dropped->Increment(non_entity);
  }
  return entries;
}

void NerGlobalizer::RefreshCandidates() {
  static const trace::TraceStage kStage("refresh_candidates");
  trace::TraceSpan span(kStage);
  if (!config_.incremental_refresh) {
    // Reference path: rebuild every surface, not just the dirty set. The
    // per-surface build is a pure function of the mention pool, so this
    // produces bit-identical candidates while doing strictly more work.
    state_.dirty_surfaces = state_.candidate_base.surfaces();
  }
  std::sort(state_.dirty_surfaces.begin(), state_.dirty_surfaces.end());
  state_.dirty_surfaces.erase(
      std::unique(state_.dirty_surfaces.begin(), state_.dirty_surfaces.end()),
      state_.dirty_surfaces.end());

  // Phase 1 (parallel): per-surface clustering + classification only reads
  // the CandidateBase. Phase 2 writes the results back serially in sorted
  // surface order, so the base's state is thread-count independent.
  std::vector<std::vector<stream::CandidateEntry>> built(state_.dirty_surfaces.size());
  ParallelFor(0, state_.dirty_surfaces.size(), /*grain=*/1, [&](size_t i) {
    built[i] = BuildCandidates(state_.dirty_surfaces[i]);
  });
  for (size_t i = 0; i < state_.dirty_surfaces.size(); ++i) {
    // Empty means the surface had no mentions (seed behavior: skip).
    if (built[i].empty()) continue;
    state_.candidate_base.SetCandidates(state_.dirty_surfaces[i], std::move(built[i]));
  }
  state_.dirty_surfaces.clear();
}

void NerGlobalizer::EvictToWindow() {
  static const trace::TraceStage kStage("evict");
  trace::TraceSpan span(kStage);
  const size_t count = state_.tweet_base.size() - config_.window_messages;
  const std::vector<int64_t> evict_order(state_.tweet_base.ids().begin(),
                                         state_.tweet_base.ids().begin() +
                                             static_cast<std::ptrdiff_t>(count));
  const std::unordered_set<int64_t> evicted(evict_order.begin(),
                                            evict_order.end());

  // 1. Flush the final Global NER output of every departing message while
  // its candidates are still live (RefreshCandidates just ran, so the
  // partition reflects everything up to and including this batch).
  std::unordered_map<int64_t, std::vector<text::EntitySpan>> flushed;
  for (const std::string& surface : state_.candidate_base.surfaces()) {
    const auto& pool = state_.candidate_base.Mentions(surface);
    for (const auto& entry : state_.candidate_base.Candidates(surface)) {
      if (!entry.is_entity) continue;
      for (size_t mention_id : entry.mention_ids) {
        const stream::MentionRecord& m = pool[mention_id];
        if (evicted.count(m.message_id) == 0) continue;
        flushed[m.message_id].push_back(
            {m.begin_token, m.end_token, entry.type});
      }
    }
  }
  for (int64_t id : evict_order) {
    state_.finalized.push_back({id, ResolveOverlaps(std::move(flushed[id]))});
  }

  // 2. Withdraw the departing messages' seed support. Surfaces that drop
  // to zero are exactly those no live message's local NER would seed — a
  // from-scratch rebuild of the window would never register them.
  std::vector<std::string> pruned;
  for (int64_t id : evict_order) {
    const stream::SentenceRecord* rec = state_.tweet_base.Find(id);
    if (rec == nullptr) continue;
    for (const text::EntitySpan& span : text::DecodeBio(rec->local_bio)) {
      const std::string surface =
          SpanSurfaceString(rec->message, span.begin_token, span.end_token);
      auto votes = state_.local_type_votes.find(surface);
      if (votes != state_.local_type_votes.end()) {
        --votes->second[static_cast<size_t>(span.type)];
      }
      auto it = state_.seed_support.find(surface);
      if (it == state_.seed_support.end()) continue;
      if (--it->second <= 0) {
        state_.seed_support.erase(it);
        pruned.push_back(surface);
      }
    }
  }
  std::sort(pruned.begin(), pruned.end());
  pruned.erase(std::unique(pruned.begin(), pruned.end()), pruned.end());

  // 3. Live sentences that held a mention of a pruned surface must be
  // re-scanned: with the longer/other surface gone from the trie, the
  // greedy longest-match may now recover different (shorter) mentions in
  // the region it used to cover. Collect them before the pools change.
  std::vector<int64_t> rescan_ids;
  for (const std::string& surface : pruned) {
    for (const stream::MentionRecord& m : state_.candidate_base.Mentions(surface)) {
      if (evicted.count(m.message_id) == 0) rescan_ids.push_back(m.message_id);
    }
  }
  std::sort(rescan_ids.begin(), rescan_ids.end());
  rescan_ids.erase(std::unique(rescan_ids.begin(), rescan_ids.end()),
                   rescan_ids.end());

  // 4. Drop evicted mentions everywhere, then remove pruned surfaces
  // wholesale (trie entry, pool, candidates, votes).
  std::vector<std::string> changed = state_.candidate_base.RemoveMentionsOf(evicted);
  const std::unordered_set<std::string> pruned_set(pruned.begin(), pruned.end());
  for (const std::string& surface : pruned) {
    state_.trie.Remove(SplitChar(surface, ' '));
    state_.candidate_base.RemoveSurface(surface);
    state_.local_type_votes.erase(surface);
  }

  // 5. Retire the records themselves and their cache entries.
  state_.tweet_base.EvictOldest(count);
  for (auto it = state_.embed_cache.begin(); it != state_.embed_cache.end();) {
    if (evicted.count(it->first.message_id) > 0) {
      it = state_.embed_cache.erase(it);
    } else {
      ++it;
    }
  }
  state_.evicted_messages += count;

  // 6. Re-scan affected live sentences (dedup: only genuinely new spans
  // are added; their embeddings come from the cache when possible), then
  // rebuild every eviction-touched surface so candidates never dangle.
  ExtractMentionsInto(rescan_ids, state_.trie, /*dedup=*/true);
  for (const std::string& surface : changed) {
    if (pruned_set.count(surface) == 0) state_.dirty_surfaces.push_back(surface);
  }
  RefreshCandidates();

  if (metrics::Enabled()) {
    auto& registry = metrics::MetricsRegistry::Global();
    static metrics::Counter* const evictions =
        registry.GetCounter("stream.evicted_messages");
    static metrics::Counter* const pruned_total =
        registry.GetCounter("stream.pruned_surfaces_total");
    static metrics::Gauge* const window_messages =
        registry.GetGauge("stream.window_messages");
    static metrics::Gauge* const window_surfaces =
        registry.GetGauge("stream.window_surfaces");
    static metrics::Gauge* const memory_bytes =
        registry.GetGauge("stream.memory_bytes");
    evictions->Increment(count);
    pruned_total->Increment(pruned.size());
    window_messages->Set(static_cast<double>(state_.tweet_base.size()));
    window_surfaces->Set(static_cast<double>(state_.trie.size()));
    memory_bytes->Set(static_cast<double>(MemoryUsage().total_bytes));
  }
}

std::vector<FinalizedMessage> NerGlobalizer::TakeFinalized() {
  std::vector<FinalizedMessage> out;
  out.swap(state_.finalized);
  return out;
}

std::vector<std::vector<text::EntitySpan>> NerGlobalizer::EmdGlobalizerPredictions()
    const {
  const std::vector<int64_t>& ids = state_.tweet_base.ids();
  std::unordered_map<int64_t, size_t> index_of;
  index_of.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) index_of[ids[i]] = i;
  std::vector<std::vector<text::EntitySpan>> out(ids.size());

  for (const std::string& surface : state_.candidate_base.surfaces()) {
    const auto& pool = state_.candidate_base.Mentions(surface);
    if (pool.empty()) continue;
    const size_t dim = pool[0].local_embedding.cols();
    // One candidate per surface form: pool ALL mentions together
    // (no ambiguity-resolving clustering).
    const size_t take = std::min(pool.size(), kMaxClusterPool);
    Matrix members(take, dim);
    for (size_t i = 0; i < take; ++i) {
      std::copy(pool[i].local_embedding.Row(0),
                pool[i].local_embedding.Row(0) + dim, members.Row(i));
    }
    const EntityClassifier::Prediction pred = classifier_->Predict(members);
    if (!pred.is_entity()) continue;
    for (const auto& mention : pool) {
      out[index_of.at(mention.message_id)].push_back(
          {mention.begin_token, mention.end_token, text::EntityType::kPerson});
    }
  }
  for (auto& spans : out) spans = ResolveOverlaps(std::move(spans));
  return out;
}

std::vector<std::vector<text::EntitySpan>> NerGlobalizer::Predictions(
    PipelineStage stage) {
  const std::vector<int64_t>& ids = state_.tweet_base.ids();
  std::unordered_map<int64_t, size_t> index_of;
  index_of.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) index_of[ids[i]] = i;
  std::vector<std::vector<text::EntitySpan>> out(ids.size());

  auto add_mention = [&](const stream::MentionRecord& m, text::EntityType type) {
    out[index_of.at(m.message_id)].push_back({m.begin_token, m.end_token, type});
  };

  switch (stage) {
    case PipelineStage::kLocalOnly: {
      for (size_t i = 0; i < ids.size(); ++i) {
        const stream::SentenceRecord* rec = state_.tweet_base.Find(ids[i]);
        out[i] = text::DecodeBio(rec->local_bio);
      }
      return out;  // no overlap resolution needed: BIO is non-overlapping
    }
    case PipelineStage::kMentionExtraction: {
      for (const std::string& surface : state_.candidate_base.surfaces()) {
        auto it = state_.local_type_votes.find(surface);
        text::EntityType type = text::EntityType::kPerson;
        if (it != state_.local_type_votes.end()) {
          size_t best = 0;
          for (size_t t = 1; t < text::kNumEntityTypes; ++t) {
            if (it->second[t] > it->second[best]) best = t;
          }
          type = static_cast<text::EntityType>(best);
        }
        for (const auto& mention : state_.candidate_base.Mentions(surface)) {
          add_mention(mention, type);
        }
      }
      break;
    }
    case PipelineStage::kLocalEmbeddings: {
      for (const std::string& surface : state_.candidate_base.surfaces()) {
        for (const auto& mention : state_.candidate_base.Mentions(surface)) {
          const EntityClassifier::Prediction pred =
              classifier_->Predict(mention.local_embedding);
          if (pred.is_entity()) add_mention(mention, pred.type());
        }
      }
      break;
    }
    case PipelineStage::kFullGlobal: {
      for (const std::string& surface : state_.candidate_base.surfaces()) {
        const auto& pool = state_.candidate_base.Mentions(surface);
        for (const auto& entry : state_.candidate_base.Candidates(surface)) {
          if (!entry.is_entity) continue;
          for (size_t mention_id : entry.mention_ids) {
            add_mention(pool[mention_id], entry.type);
          }
        }
      }
      break;
    }
  }
  for (auto& spans : out) spans = ResolveOverlaps(std::move(spans));
  return out;
}

}  // namespace nerglob::core
