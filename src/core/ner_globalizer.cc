#include "core/ner_globalizer.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/check.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/stages.h"
#include "io/tensor_io.h"

namespace nerglob::core {


const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kLocalOnly:
      return "local-only";
    case PipelineStage::kMentionExtraction:
      return "local+mention-extraction";
    case PipelineStage::kLocalEmbeddings:
      return "local+local-embeddings";
    case PipelineStage::kFullGlobal:
      return "full-global";
  }
  return "unknown";
}

NerGlobalizerConfig DefaultPipelineConfig(const ModelBundle& bundle) {
  NerGlobalizerConfig config;
  config.cluster_threshold = bundle.config().cluster_threshold;
  return config;
}

NerGlobalizer::NerGlobalizer(const lm::MicroBert* model,
                             const PhraseEmbedder* embedder,
                             const EntityClassifier* classifier,
                             NerGlobalizerConfig config)
    : model_(model),
      embedder_(embedder),
      classifier_(classifier),
      config_(config) {
  NERGLOB_CHECK(embedder != nullptr);
  NERGLOB_CHECK(classifier != nullptr);
  NERGLOB_CHECK(config.cluster_threshold < 1.0f)
      << "cosine clustering threshold must stay below the triplet margin";
}

NerGlobalizer::NerGlobalizer(const ModelBundle* bundle,
                             NerGlobalizerConfig config)
    : NerGlobalizer(&bundle->model(), &bundle->embedder(),
                    &bundle->classifier(), config) {
  bundle_fingerprint_ = bundle->Fingerprint();
}

Status NerGlobalizer::Checkpoint(io::TensorWriter* writer) const {
  writer->PutString(bundle_fingerprint_);
  // The config is echoed so a checkpoint cannot be restored into a
  // pipeline that would interpret the state differently (other window,
  // other clustering cut).
  writer->PutF32(config_.cluster_threshold);
  writer->PutU64(config_.max_mention_span);
  writer->PutU64(config_.window_messages);
  writer->PutU32(config_.incremental_refresh ? 1 : 0);
  writer->PutF64(local_seconds_);
  writer->PutF64(global_seconds_);
  NERGLOB_RETURN_IF_ERROR(writer->EndRecord(io::kTagCheckpoint));
  return state_.Save(writer);
}

Status NerGlobalizer::Restore(io::TensorReader* reader) {
  NERGLOB_RETURN_IF_ERROR(reader->NextRecord(io::kTagCheckpoint));
  std::string fingerprint;
  float threshold = 0.0f;
  uint64_t max_span = 0, window = 0;
  uint32_t incremental = 0;
  double local_s = 0.0, global_s = 0.0;
  if (!reader->GetString(&fingerprint) || !reader->GetF32(&threshold) ||
      !reader->GetU64(&max_span) || !reader->GetU64(&window) ||
      !reader->GetU32(&incremental) || !reader->GetF64(&local_s) ||
      !reader->GetF64(&global_s)) {
    return reader->status().ok()
               ? Status::InvalidArgument(
                     StrFormat("'%s': corrupt checkpoint header",
                               reader->path().c_str()))
               : reader->status();
  }
  NERGLOB_RETURN_IF_ERROR(reader->ExpectRecordEnd());
  if (!fingerprint.empty() && !bundle_fingerprint_.empty() &&
      fingerprint != bundle_fingerprint_) {
    return Status::FailedPrecondition(StrFormat(
        "'%s': checkpoint was written against bundle %s, this pipeline "
        "uses bundle %s",
        reader->path().c_str(), fingerprint.c_str(),
        bundle_fingerprint_.c_str()));
  }
  if (threshold != config_.cluster_threshold ||
      max_span != config_.max_mention_span ||
      window != config_.window_messages ||
      (incremental != 0) != config_.incremental_refresh) {
    return Status::FailedPrecondition(StrFormat(
        "'%s': checkpoint pipeline config (threshold=%.6f span=%llu "
        "window=%llu incremental=%u) does not match this pipeline's",
        reader->path().c_str(), static_cast<double>(threshold),
        static_cast<unsigned long long>(max_span),
        static_cast<unsigned long long>(window), incremental));
  }
  // StreamState::Load is itself two-phase, so a corrupt state record
  // leaves this pipeline untouched; only the timing counters must wait
  // for it to succeed.
  NERGLOB_RETURN_IF_ERROR(state_.Load(reader));
  local_seconds_ = local_s;
  global_seconds_ = global_s;
  return Status::OK();
}

void NerGlobalizer::ProcessBatch(const std::vector<stream::Message>& batch) {
  RunStages(batch, {}, /*pre_encoded=*/false);
}

void NerGlobalizer::ProcessBatchPreEncoded(
    const std::vector<stream::Message>& batch,
    std::vector<lm::EncodeResult> encoded) {
  NERGLOB_CHECK_EQ(encoded.size(), batch.size());
  RunStages(batch, std::move(encoded), /*pre_encoded=*/true);
}

void NerGlobalizer::RunStages(const std::vector<stream::Message>& batch,
                              std::vector<lm::EncodeResult> encoded,
                              bool pre_encoded) {
  static const trace::TraceStage kStage("process_batch");
  trace::TraceSpan batch_span(kStage);
  WallTimer batch_timer;

  const stages::ModelView view{model_, embedder_, classifier_};
  stages::StageContext ctx;
  ctx.config = &config_;
  ctx.batch = &batch;
  ctx.encoded = std::move(encoded);
  ctx.pre_encoded = pre_encoded;

  // The local/global split (Table IV's execution-time columns): LocalEncode
  // + IngestLocal are the Local NER step, everything after is Global NER.
  // A pre-encoded batch charges only the ingest here — its encode time was
  // spent (and attributed to serve_encode) by the batching caller. One
  // local_ner span per batch, whichever path ran (pipeline_test pins this).
  WallTimer local_timer;
  {
    static const trace::TraceStage kLocalStage("local_ner");
    trace::TraceSpan local_span(kLocalStage);
    stages::LocalEncode(view, state_, ctx);
    stages::IngestLocal(view, state_, ctx);
  }
  local_seconds_ += local_timer.ElapsedSeconds();

  WallTimer global_timer;
  stages::ExtractMentions(view, state_, ctx);
  stages::RefreshCandidates(view, state_, ctx);
  stages::Evict(view, state_, ctx);
  global_seconds_ += global_timer.ElapsedSeconds();

  if (metrics::Enabled()) {
    static metrics::Gauge* const rate =
        metrics::MetricsRegistry::Global().GetGauge(
            "pipeline.sentences_per_second");
    const double elapsed = batch_timer.ElapsedSeconds();
    if (elapsed > 0.0) rate->Set(static_cast<double>(batch.size()) / elapsed);
  }
}

void NerGlobalizer::ProcessAll(const std::vector<stream::Message>& messages,
                               size_t batch_size) {
  if (batch_size == 0) batch_size = config_.process_batch_size;
  NERGLOB_CHECK_GT(batch_size, 0u);
  for (size_t i = 0; i < messages.size(); i += batch_size) {
    const size_t end = std::min(messages.size(), i + batch_size);
    ProcessBatch(std::vector<stream::Message>(
        messages.begin() + static_cast<std::ptrdiff_t>(i),
        messages.begin() + static_cast<std::ptrdiff_t>(end)));
  }
}

std::vector<FinalizedMessage> NerGlobalizer::TakeFinalized() {
  std::vector<FinalizedMessage> out;
  out.swap(state_.finalized);
  return out;
}

std::vector<std::vector<text::EntitySpan>> NerGlobalizer::EmdGlobalizerPredictions()
    const {
  const std::vector<int64_t>& ids = state_.tweet_base.ids();
  std::unordered_map<int64_t, size_t> index_of;
  index_of.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) index_of[ids[i]] = i;
  std::vector<std::vector<text::EntitySpan>> out(ids.size());

  for (const std::string& surface : state_.candidate_base.surfaces()) {
    const auto& pool = state_.candidate_base.Mentions(surface);
    if (pool.empty()) continue;
    const size_t dim = pool[0].local_embedding.cols();
    // One candidate per surface form: pool ALL mentions together
    // (no ambiguity-resolving clustering).
    const size_t take = std::min(pool.size(), stages::kMaxClusterPool);
    Matrix members(take, dim);
    for (size_t i = 0; i < take; ++i) {
      std::copy(pool[i].local_embedding.Row(0),
                pool[i].local_embedding.Row(0) + dim, members.Row(i));
    }
    const EntityClassifier::Prediction pred = classifier_->Predict(members);
    if (!pred.is_entity()) continue;
    for (const auto& mention : pool) {
      out[index_of.at(mention.message_id)].push_back(
          {mention.begin_token, mention.end_token, text::EntityType::kPerson});
    }
  }
  for (auto& spans : out) spans = stages::ResolveOverlaps(std::move(spans));
  return out;
}

std::vector<std::vector<text::EntitySpan>> NerGlobalizer::Predictions(
    PipelineStage stage) {
  const std::vector<int64_t>& ids = state_.tweet_base.ids();
  std::unordered_map<int64_t, size_t> index_of;
  index_of.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) index_of[ids[i]] = i;
  std::vector<std::vector<text::EntitySpan>> out(ids.size());

  auto add_mention = [&](const stream::MentionRecord& m, text::EntityType type) {
    out[index_of.at(m.message_id)].push_back({m.begin_token, m.end_token, type});
  };

  switch (stage) {
    case PipelineStage::kLocalOnly: {
      for (size_t i = 0; i < ids.size(); ++i) {
        const stream::SentenceRecord* rec = state_.tweet_base.Find(ids[i]);
        out[i] = text::DecodeBio(rec->local_bio);
      }
      return out;  // no overlap resolution needed: BIO is non-overlapping
    }
    case PipelineStage::kMentionExtraction: {
      for (const std::string& surface : state_.candidate_base.surfaces()) {
        auto it = state_.local_type_votes.find(surface);
        text::EntityType type = text::EntityType::kPerson;
        if (it != state_.local_type_votes.end()) {
          size_t best = 0;
          for (size_t t = 1; t < text::kNumEntityTypes; ++t) {
            if (it->second[t] > it->second[best]) best = t;
          }
          type = static_cast<text::EntityType>(best);
        }
        for (const auto& mention : state_.candidate_base.Mentions(surface)) {
          add_mention(mention, type);
        }
      }
      break;
    }
    case PipelineStage::kLocalEmbeddings: {
      for (const std::string& surface : state_.candidate_base.surfaces()) {
        for (const auto& mention : state_.candidate_base.Mentions(surface)) {
          const EntityClassifier::Prediction pred =
              classifier_->Predict(mention.local_embedding);
          if (pred.is_entity()) add_mention(mention, pred.type());
        }
      }
      break;
    }
    case PipelineStage::kFullGlobal: {
      for (const std::string& surface : state_.candidate_base.surfaces()) {
        const auto& pool = state_.candidate_base.Mentions(surface);
        for (const auto& entry : state_.candidate_base.Candidates(surface)) {
          if (!entry.is_entity) continue;
          for (size_t mention_id : entry.mention_ids) {
            add_mention(pool[mention_id], entry.type);
          }
        }
      }
      break;
    }
  }
  for (auto& spans : out) spans = stages::ResolveOverlaps(std::move(spans));
  return out;
}

}  // namespace nerglob::core
