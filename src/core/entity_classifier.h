#ifndef NERGLOB_CORE_ENTITY_CLASSIFIER_H_
#define NERGLOB_CORE_ENTITY_CLASSIFIER_H_

#include <vector>

#include "nn/layers.h"
#include "text/bio.h"

namespace nerglob::core {

/// Class index layout for the L+1-way Entity Classifier: indices 0..3 are
/// the entity types (same order as text::EntityType); index 4 is the
/// non-entity class (Sec. V-D).
inline constexpr int kNonEntityClass = text::kNumEntityTypes;
inline constexpr int kNumClassifierClasses = text::kNumEntityTypes + 1;

/// Entity Classifier (Sec. V-D, Eq. 6–8): a learned attention pooling over
/// the local embeddings of a candidate cluster produces the global
/// candidate embedding,
///
///   a_j = W_a^T local_j + b_a          (Eq. 6)
///   w   = softmax(a)                   (Eq. 7)
///   global = sum_j w_j local_j         (Eq. 8)
///
/// followed by an MLP with ReLU activations and a softmax output over the
/// L+1 classes. Pooling and classification train end-to-end.
///
/// Thread-safety: const methods (Predict, GlobalEmbedding, ForwardLogits)
/// are safe to call concurrently once training has finished — the eval
/// paths are graph-free (see PoolValue) — training must be exclusive.
/// Predict is O(m · dim + dim · hidden + hidden²) for an m-member cluster.
///
/// How cluster member embeddings are aggregated into the global candidate
/// embedding. The paper's production system uses the learned attention
/// pooling of Eq. 6–8; plain averaging is the ablation variant (the same
/// pooling Akbik et al. use for token memories).
enum class PoolingMode { kAttention, kMean };

class EntityClassifier : public nn::Module {
 public:
  /// dim: embedding width; hidden: width of the two dense layers.
  EntityClassifier(size_t dim, size_t hidden, Rng* rng,
                   PoolingMode pooling = PoolingMode::kAttention);

  /// Differentiable logits for one candidate cluster.
  /// members: (m, dim) — the local embeddings of the cluster's mentions.
  /// Returns (1, kNumClassifierClasses) pre-softmax logits.
  ag::Var ForwardLogits(const Matrix& members) const;

  /// The pooled global candidate embedding (Eq. 8) without classification.
  /// Exposed for analysis and the Akbik-style comparisons.
  Matrix GlobalEmbedding(const Matrix& members) const;

  /// Eval-mode prediction with softmax confidence.
  struct Prediction {
    int cls = kNonEntityClass;
    float confidence = 0.0f;
    bool is_entity() const { return cls != kNonEntityClass; }
    text::EntityType type() const { return static_cast<text::EntityType>(cls); }
  };
  Prediction Predict(const Matrix& members) const;

  std::vector<ag::Var> Parameters() const override;

  PoolingMode pooling() const { return pooling_; }

 private:
  ag::Var Pool(const Matrix& members) const;

  /// Graph-free mirror of Pool (bit-identical value); the eval paths
  /// (Predict, GlobalEmbedding) use it so ParallelFor bodies never build
  /// autograd nodes.
  Matrix PoolValue(const Matrix& members) const;

  /// PoolValue into `out` with every intermediate (attention scores,
  /// softmax weights) in `scratch`; Predict's hot path.
  void PoolValueInto(const Matrix& members, Matrix* out,
                     common::ScratchArena* scratch) const;

  size_t dim_;
  PoolingMode pooling_;
  nn::Linear attention_;  // dim -> 1 (Eq. 6)
  nn::Mlp mlp_;           // dim -> hidden -> hidden -> L+1
};

}  // namespace nerglob::core

#endif  // NERGLOB_CORE_ENTITY_CLASSIFIER_H_
