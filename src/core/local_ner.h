#ifndef NERGLOB_CORE_LOCAL_NER_H_
#define NERGLOB_CORE_LOCAL_NER_H_

#include <vector>

#include "lm/micro_bert.h"
#include "stream/message.h"
#include "stream/tweet_base.h"
#include "text/bio.h"
#include "trie/candidate_trie.h"

namespace nerglob::core {

/// Local NER (Sec. IV): runs the fine-tuned language model over each
/// message in isolation, stores the sentence record (entity-aware token
/// embeddings + BIO labels) in the TweetBase, and registers the detected
/// surface forms — the seed entity candidates — in the CandidateTrie.
///
/// The model is a weak labeller here: its spans seed the CTrie, its
/// embeddings feed the Phrase Embedder; its final labels are NOT the
/// system output (Global NER rewrites them).
///
/// Thread-safety: stateless after construction; concurrent ProcessBatch
/// calls are safe ONLY with distinct tweet_base/trie targets (the method
/// itself parallelizes the per-message model forward internally).
class LocalNer {
 public:
  /// `model` must outlive this object and already be fine-tuned for NER.
  explicit LocalNer(const lm::MicroBert* model);

  /// Result of local processing for one message.
  struct Output {
    int64_t message_id = 0;
    /// Local BIO decode: the spans a conventional NER system would emit.
    std::vector<text::EntitySpan> local_spans;
    /// Surface forms (matching form, space-joined) newly added to `trie`.
    std::vector<std::string> new_surfaces;
  };

  /// Processes a batch: fills `tweet_base` with sentence records and
  /// registers seed surface forms in `trie`. Cost: one transformer forward
  /// per message — O(batch · tokens² · d_model) — dominating everything
  /// downstream; messages are distributed over the worker pool.
  /// Equivalent to model().EncodeMany over the batch followed by
  /// IngestEncodedBatch — the composition the stage graph (core/stages.h)
  /// makes explicit so the encode half can be batched across sessions.
  std::vector<Output> ProcessBatch(const std::vector<stream::Message>& batch,
                                   stream::TweetBase* tweet_base,
                                   trie::CandidateTrie* trie) const;

  const lm::MicroBert& model() const { return *model_; }

 private:
  const lm::MicroBert* model_;
};

/// The serial ingest half of local NER: merges pre-computed encode results
/// into the TweetBase/CTrie in input order (so new-surface discovery order
/// and all downstream state are independent of how — and where — the
/// encoding ran). `(*encoded)[i]` must be the encoder output for
/// `batch[i].tokens` (default-constructed for empty messages); its
/// embeddings are consumed (moved into the stored SentenceRecords).
std::vector<LocalNer::Output> IngestEncodedBatch(
    const std::vector<stream::Message>& batch,
    std::vector<lm::EncodeResult>* encoded, stream::TweetBase* tweet_base,
    trie::CandidateTrie* trie);

/// The matching-form token sequence of a span ("andy beshear" tokens).
std::vector<std::string> SpanMatchTokens(const stream::Message& message,
                                         size_t begin_token, size_t end_token);

/// Space-joined surface string of a span.
std::string SpanSurfaceString(const stream::Message& message,
                              size_t begin_token, size_t end_token);

}  // namespace nerglob::core

#endif  // NERGLOB_CORE_LOCAL_NER_H_
