#include "core/entity_classifier.h"

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace nerglob::core {

EntityClassifier::EntityClassifier(size_t dim, size_t hidden, Rng* rng,
                                   PoolingMode pooling)
    : dim_(dim),
      pooling_(pooling),
      attention_(dim, 1, rng),
      mlp_({dim, hidden, hidden, static_cast<size_t>(kNumClassifierClasses)},
           rng) {}

ag::Var EntityClassifier::Pool(const Matrix& members) const {
  NERGLOB_CHECK_GT(members.rows(), 0u);
  NERGLOB_CHECK_EQ(members.cols(), dim_);
  ag::Var locals = ag::Constant(members);
  if (pooling_ == PoolingMode::kMean) return ag::MeanRows(locals);
  ag::Var scores = attention_.Forward(locals);            // (m, 1), Eq. 6
  ag::Var weights = ag::SoftmaxRows(ag::Transpose(scores));  // (1, m), Eq. 7
  return ag::MatMul(weights, locals);                     // (1, dim), Eq. 8
}

Matrix EntityClassifier::PoolValue(const Matrix& members) const {
  Matrix out;
  PoolValueInto(members, &out, &common::ScratchArena::ThreadLocal());
  return out;
}

void EntityClassifier::PoolValueInto(const Matrix& members, Matrix* out,
                                     common::ScratchArena* scratch) const {
  NERGLOB_CHECK_GT(members.rows(), 0u);
  NERGLOB_CHECK_EQ(members.cols(), dim_);
  if (pooling_ == PoolingMode::kMean) {
    MeanRowsInto(members, 0, members.rows(), out);
    return;
  }
  common::ScratchFrame frame(scratch);
  Matrix* scores = frame.Get(members.rows(), 1);
  attention_.ApplyInto(members, scores);                 // (m, 1), Eq. 6
  Matrix* weights = frame.Get(1, members.rows());
  TransposeInto(*scores, weights);
  SoftmaxRowsInto(*weights, weights);                    // (1, m), Eq. 7
  MatMulInto(*weights, members, out);                    // (1, dim), Eq. 8
}

ag::Var EntityClassifier::ForwardLogits(const Matrix& members) const {
  return mlp_.Forward(Pool(members));
}

Matrix EntityClassifier::GlobalEmbedding(const Matrix& members) const {
  return PoolValue(members);
}

EntityClassifier::Prediction EntityClassifier::Predict(
    const Matrix& members) const {
  static const trace::TraceStage kStage("classify");
  trace::TraceSpan span(kStage);
  if (metrics::Enabled()) {
    static metrics::Counter* const classifications =
        metrics::MetricsRegistry::Global().GetCounter(
            "pipeline.classifications_total");
    classifications->Increment();
  }
  common::ScratchArena& arena = common::ScratchArena::ThreadLocal();
  common::ScratchFrame frame(&arena);
  Matrix* pooled = frame.Get(1, dim_);
  PoolValueInto(members, pooled, &arena);
  Matrix* probs = frame.Get(1, static_cast<size_t>(kNumClassifierClasses));
  mlp_.ApplyInto(*pooled, probs, &arena);
  SoftmaxRowsInto(*probs, probs);  // logits -> probabilities in place
  Prediction pred;
  pred.cls = 0;
  for (int c = 1; c < kNumClassifierClasses; ++c) {
    if (probs->At(0, static_cast<size_t>(c)) >
        probs->At(0, static_cast<size_t>(pred.cls))) {
      pred.cls = c;
    }
  }
  pred.confidence = probs->At(0, static_cast<size_t>(pred.cls));
  return pred;
}

std::vector<ag::Var> EntityClassifier::Parameters() const {
  std::vector<ag::Var> out = attention_.Parameters();
  for (const ag::Var& p : mlp_.Parameters()) out.push_back(p);
  return out;
}

}  // namespace nerglob::core
