#ifndef NERGLOB_CORE_TRAINING_H_
#define NERGLOB_CORE_TRAINING_H_

#include <string>
#include <vector>

#include "core/entity_classifier.h"
#include "core/phrase_embedder.h"
#include "lm/micro_bert.h"
#include "stream/message.h"

namespace nerglob::core {

// Offline training entry points (Sec. VI). None of these functions is
// thread-safe with respect to its model arguments: each call owns the
// module it trains for the duration. They parallelize internally over
// batches; cost is O(epochs · dataset) model forwards/backwards.

/// One training mention collected from the D5 stream: the surface form,
/// its class (entity type, or kNonEntityClass for seeded non-entities), and
/// the frozen token embeddings of the mention span from Local NER.
struct MentionExample {
  std::string surface;
  int label = kNonEntityClass;
  Matrix token_embeddings;  ///< (span_len, d)
};

/// Runs Local NER + CTrie mention extraction over a labeled stream (D5) and
/// labels each extracted mention: gold span+type match -> entity type; no
/// overlap with any gold span -> seeded non-entity (the paper seeds
/// non-entities by running EMD Globalizer on D5, Sec. V-D); partial
/// overlaps are skipped as noisy.
std::vector<MentionExample> CollectMentionExamples(
    const std::vector<stream::Message>& labeled, const lm::MicroBert& model,
    size_t max_mention_span = 6);

/// Contrastive objective for the Phrase Embedder (Table II compares both).
enum class EmbedderObjective { kTriplet, kSoftNN };

struct EmbedderTrainOptions {
  EmbedderObjective objective = EmbedderObjective::kTriplet;
  int max_epochs = 40;
  int patience = 8;  ///< early stopping (Sec. VI)
  /// Triplets (or mentions, for Soft-NN) per optimizer step. The paper uses
  /// 2048 / 64; defaults here are scaled to our dataset sizes.
  size_t batch_size = 256;
  size_t max_triplets = 20000;  ///< triplet mining budget
  float lr = 1e-3f;             ///< Adam (paper: 0.001)
  float margin = 1.0f;          ///< triplet margin (paper: 1 = orthogonality)
  float temperature = 0.3f;     ///< Soft-NN tau
  double validation_fraction = 0.2;  ///< 80-20 split (paper)
  uint64_t seed = 1;
};

struct EmbedderTrainResult {
  size_t dataset_size = 0;  ///< mined triplets / mention records
  double train_loss = 0.0;
  double validation_loss = 0.0;
  int epochs_run = 0;
};

/// Trains the Phrase Embedder with contrastive estimation over the mention
/// examples ("Mention Triplet Mining" / "Mention Cluster Mining", Sec. VI).
EmbedderTrainResult TrainPhraseEmbedder(PhraseEmbedder* embedder,
                                        const std::vector<MentionExample>& examples,
                                        const EmbedderTrainOptions& options);

struct ClassifierTrainOptions {
  int max_epochs = 80;
  int patience = 20;  ///< paper: early stopping after 20 epochs
  size_t batch_size = 32;
  float lr = 1.5e-3f;  ///< paper: Adam, 0.0015
  double validation_fraction = 0.2;
  /// Probability of training on a random subset of a ground-truth cluster
  /// instead of the full cluster. Test-time clusters are produced by
  /// agglomerative clustering and are often small or fragmented; subset
  /// augmentation makes the pooled classifier robust to that shift.
  double subset_augmentation = 0.5;
  uint64_t seed = 2;
};

struct ClassifierTrainResult {
  size_t num_candidates = 0;  ///< ground-truth clusters (paper: 1391)
  double validation_macro_f1 = 0.0;
  int epochs_run = 0;
};

/// Trains pooling + classifier end-to-end on the ground-truth candidate
/// clusters of the mention examples (grouped by surface+label); reports the
/// best validation macro-F1 (Table II's last column) and restores the best
/// checkpoint into the classifier.
ClassifierTrainResult TrainEntityClassifier(
    EntityClassifier* classifier, const PhraseEmbedder& embedder,
    const std::vector<MentionExample>& examples,
    const ClassifierTrainOptions& options);

}  // namespace nerglob::core

#endif  // NERGLOB_CORE_TRAINING_H_
