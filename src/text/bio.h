#ifndef NERGLOB_TEXT_BIO_H_
#define NERGLOB_TEXT_BIO_H_

#include <string>
#include <vector>

namespace nerglob::text {

/// The four entity types NER Globalizer classifies (Sec. III), matching the
/// paper's grouping of WNUT17's fine types into MISC.
enum class EntityType { kPerson = 0, kLocation = 1, kOrganization = 2, kMisc = 3 };

inline constexpr int kNumEntityTypes = 4;

/// "PER"/"LOC"/"ORG"/"MISC".
const char* EntityTypeName(EntityType type);

/// Inverse of EntityTypeName; returns false for unknown names.
bool ParseEntityType(const std::string& name, EntityType* out);

/// A typed entity span over a token sequence, [begin_token, end_token).
struct EntitySpan {
  size_t begin_token = 0;
  size_t end_token = 0;
  EntityType type = EntityType::kPerson;

  friend bool operator==(const EntitySpan& a, const EntitySpan& b) {
    return a.begin_token == b.begin_token && a.end_token == b.end_token &&
           a.type == b.type;
  }
};

/// BIO tagging scheme (Ramshaw & Marcus): label ids are
///   0      -> O
///   1 + 2t -> B-<type t>
///   2 + 2t -> I-<type t>
/// giving 1 + 2 * kNumEntityTypes = 9 labels.
inline constexpr int kNumBioLabels = 1 + 2 * kNumEntityTypes;
inline constexpr int kBioOutside = 0;

int BioBeginLabel(EntityType type);
int BioInsideLabel(EntityType type);

/// True if the label is a B- label (any type).
bool IsBioBegin(int label);
/// True if the label is an I- label (any type).
bool IsBioInside(int label);
/// Entity type of a non-O label. Requires label != O.
EntityType BioLabelType(int label);

/// "O", "B-PER", "I-LOC", ...
std::string BioLabelName(int label);

/// Encodes spans over a sentence of `num_tokens` tokens into BIO labels.
/// Overlapping spans are a programming error (checked).
std::vector<int> EncodeBio(size_t num_tokens, const std::vector<EntitySpan>& spans);

/// Decodes BIO labels into spans. Tolerates ill-formed sequences the way
/// conlleval does: an I- without a preceding B- of the same type opens a
/// new span.
std::vector<EntitySpan> DecodeBio(const std::vector<int>& labels);

}  // namespace nerglob::text

#endif  // NERGLOB_TEXT_BIO_H_
