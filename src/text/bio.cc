#include "text/bio.h"

#include "common/check.h"

namespace nerglob::text {

const char* EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kPerson:
      return "PER";
    case EntityType::kLocation:
      return "LOC";
    case EntityType::kOrganization:
      return "ORG";
    case EntityType::kMisc:
      return "MISC";
  }
  return "UNKNOWN";
}

bool ParseEntityType(const std::string& name, EntityType* out) {
  if (name == "PER") {
    *out = EntityType::kPerson;
  } else if (name == "LOC") {
    *out = EntityType::kLocation;
  } else if (name == "ORG") {
    *out = EntityType::kOrganization;
  } else if (name == "MISC") {
    *out = EntityType::kMisc;
  } else {
    return false;
  }
  return true;
}

int BioBeginLabel(EntityType type) { return 1 + 2 * static_cast<int>(type); }
int BioInsideLabel(EntityType type) { return 2 + 2 * static_cast<int>(type); }

bool IsBioBegin(int label) { return label > 0 && label % 2 == 1; }
bool IsBioInside(int label) { return label > 0 && label % 2 == 0; }

EntityType BioLabelType(int label) {
  NERGLOB_CHECK_NE(label, kBioOutside);
  return static_cast<EntityType>((label - 1) / 2);
}

std::string BioLabelName(int label) {
  if (label == kBioOutside) return "O";
  const char* type = EntityTypeName(BioLabelType(label));
  return (IsBioBegin(label) ? std::string("B-") : std::string("I-")) + type;
}

std::vector<int> EncodeBio(size_t num_tokens,
                           const std::vector<EntitySpan>& spans) {
  std::vector<int> labels(num_tokens, kBioOutside);
  for (const EntitySpan& span : spans) {
    NERGLOB_CHECK_LT(span.begin_token, span.end_token);
    NERGLOB_CHECK_LE(span.end_token, num_tokens);
    for (size_t t = span.begin_token; t < span.end_token; ++t) {
      NERGLOB_CHECK_EQ(labels[t], kBioOutside) << "overlapping spans";
      labels[t] = t == span.begin_token ? BioBeginLabel(span.type)
                                        : BioInsideLabel(span.type);
    }
  }
  return labels;
}

std::vector<EntitySpan> DecodeBio(const std::vector<int>& labels) {
  std::vector<EntitySpan> spans;
  bool open = false;
  EntitySpan current;
  for (size_t t = 0; t < labels.size(); ++t) {
    const int label = labels[t];
    if (label == kBioOutside) {
      if (open) {
        current.end_token = t;
        spans.push_back(current);
        open = false;
      }
      continue;
    }
    const EntityType type = BioLabelType(label);
    if (IsBioBegin(label) || !open || current.type != type) {
      // B- always opens; an I- that does not continue the open span also
      // opens a new one (conlleval-style repair).
      if (open) {
        current.end_token = t;
        spans.push_back(current);
      }
      current.begin_token = t;
      current.type = type;
      open = true;
    }
    // An I- matching the open span's type just extends it.
  }
  if (open) {
    current.end_token = labels.size();
    spans.push_back(current);
  }
  return spans;
}

}  // namespace nerglob::text
