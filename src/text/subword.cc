#include "text/subword.h"

#include "common/check.h"
#include "common/string_util.h"

namespace nerglob::text {

HashedSubwordVocab::HashedSubwordVocab(size_t num_buckets, int min_n, int max_n)
    : num_buckets_(num_buckets), min_n_(min_n), max_n_(max_n) {
  NERGLOB_CHECK_GT(num_buckets, 0u);
  NERGLOB_CHECK_GE(min_n, 1);
  NERGLOB_CHECK_GE(max_n, min_n);
}

std::vector<int> HashedSubwordVocab::SubwordIds(const std::string& word) const {
  std::vector<int> ids;
  std::string marked;
  SubwordIdsInto(word, &ids, &marked);
  return ids;
}

void HashedSubwordVocab::SubwordIdsInto(const std::string& word,
                                        std::vector<int>* ids,
                                        std::string* marked_scratch) const {
  ids->clear();
  // Whole-word bucket first: frequent words get a dedicated representation.
  ids->push_back(static_cast<int>(Fnv1aHash(word) % num_buckets_));
  std::string& marked = *marked_scratch;
  marked.clear();
  marked.reserve(word.size() + 2);
  marked.push_back('<');
  marked.append(word);
  marked.push_back('>');
  for (int n = min_n_; n <= max_n_; ++n) {
    if (marked.size() < static_cast<size_t>(n)) break;
    for (size_t i = 0; i + n <= marked.size(); ++i) {
      ids->push_back(static_cast<int>(
          Fnv1aHash(std::string_view(marked).substr(i, n)) % num_buckets_));
    }
  }
}

}  // namespace nerglob::text
