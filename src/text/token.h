#ifndef NERGLOB_TEXT_TOKEN_H_
#define NERGLOB_TEXT_TOKEN_H_

#include <string>
#include <vector>

namespace nerglob::text {

/// Lexical class of a microblog token.
enum class TokenKind {
  kWord = 0,
  kHashtag,
  kMention,   // @user
  kUrl,
  kNumber,
  kEmoticon,
  kPunct,
};

const char* TokenKindName(TokenKind kind);

/// One token of a microblog message, with offsets into the original text.
struct Token {
  std::string text;   ///< original surface text, e.g. "#Covid19"
  std::string lower;  ///< ASCII-lowercased text, e.g. "#covid19"
  /// Matching form used for CTrie lookups: lowercased, with hashtag '#'
  /// stripped so "#italy" matches the candidate "italy". Mentions and URLs
  /// keep their sigils (they are never entity candidates in our pipeline).
  std::string match;
  size_t begin = 0;  ///< byte offset of the first char in the message
  size_t end = 0;    ///< one past the last char
  TokenKind kind = TokenKind::kWord;
};

}  // namespace nerglob::text

#endif  // NERGLOB_TEXT_TOKEN_H_
