#ifndef NERGLOB_TEXT_TOKENIZER_H_
#define NERGLOB_TEXT_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "text/token.h"

namespace nerglob::text {

/// Rule-based social-media tokenizer. Handles the token classes that
/// dominate microblog text: URLs, @mentions, #hashtags, emoticons,
/// numbers, words with inner apostrophes ("don't") and punctuation.
/// Deterministic; no locale dependence (ASCII folding only).
class Tokenizer {
 public:
  Tokenizer() = default;

  std::vector<Token> Tokenize(std::string_view message) const;
};

/// Squeezes character elongation ("soooo" -> "soo"): any run of 3+ equal
/// characters shrinks to 2. Used when normalizing noisy tokens.
std::string SqueezeElongation(std::string_view word);

}  // namespace nerglob::text

#endif  // NERGLOB_TEXT_TOKENIZER_H_
