#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace nerglob::text {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kWord:
      return "word";
    case TokenKind::kHashtag:
      return "hashtag";
    case TokenKind::kMention:
      return "mention";
    case TokenKind::kUrl:
      return "url";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kEmoticon:
      return "emoticon";
    case TokenKind::kPunct:
      return "punct";
  }
  return "unknown";
}

namespace {

bool IsWordChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '\'' || c == '-';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

/// Matches a known emoticon at position i; returns its length or 0.
size_t MatchEmoticon(std::string_view s, size_t i) {
  static constexpr std::string_view kEmoticons[] = {
      ":-)", ":-(", ":-D", ":-P", ":)", ":(", ":D", ":P", ";-)",
      ";)",  ":o",  ":O",  "<3",  ":/", ":|", "xD",  "XD",
  };
  for (std::string_view e : kEmoticons) {
    if (s.substr(i, e.size()) == e) return e.size();
  }
  return 0;
}

/// Matches a URL at position i; returns its length or 0. URLs run until
/// whitespace.
size_t MatchUrl(std::string_view s, size_t i) {
  std::string_view rest = s.substr(i);
  if (!(StartsWith(rest, "http://") || StartsWith(rest, "https://") ||
        StartsWith(rest, "www."))) {
    return 0;
  }
  size_t len = 0;
  while (i + len < s.size() && !IsSpace(s[i + len])) ++len;
  return len;
}

Token MakeToken(std::string_view s, size_t begin, size_t end, TokenKind kind) {
  Token t;
  t.text = std::string(s.substr(begin, end - begin));
  t.lower = ToLowerAscii(t.text);
  t.begin = begin;
  t.end = end;
  t.kind = kind;
  if (kind == TokenKind::kHashtag && t.lower.size() > 1) {
    t.match = t.lower.substr(1);
  } else {
    t.match = t.lower;
  }
  return t;
}

}  // namespace

std::vector<Token> Tokenizer::Tokenize(std::string_view s) const {
  std::vector<Token> out;
  size_t i = 0;
  while (i < s.size()) {
    if (IsSpace(s[i])) {
      ++i;
      continue;
    }
    // URLs first: they may contain every other character class.
    if (size_t len = MatchUrl(s, i); len > 0) {
      out.push_back(MakeToken(s, i, i + len, TokenKind::kUrl));
      i += len;
      continue;
    }
    if (size_t len = MatchEmoticon(s, i); len > 0) {
      out.push_back(MakeToken(s, i, i + len, TokenKind::kEmoticon));
      i += len;
      continue;
    }
    const char c = s[i];
    if ((c == '#' || c == '@') && i + 1 < s.size() &&
        (std::isalnum(static_cast<unsigned char>(s[i + 1])) || s[i + 1] == '_')) {
      size_t j = i + 1;
      while (j < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '_')) {
        ++j;
      }
      out.push_back(MakeToken(
          s, i, j, c == '#' ? TokenKind::kHashtag : TokenKind::kMention));
      i = j;
      continue;
    }
    if (IsDigit(c)) {
      size_t j = i;
      while (j < s.size() &&
             (IsDigit(s[j]) || ((s[j] == '.' || s[j] == ',' || s[j] == ':') &&
                                j + 1 < s.size() && IsDigit(s[j + 1])))) {
        ++j;
      }
      out.push_back(MakeToken(s, i, j, TokenKind::kNumber));
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < s.size() && (IsWordChar(s[j]) || IsDigit(s[j]))) ++j;
      // Trim trailing apostrophes/hyphens that belong to punctuation.
      while (j > i && (s[j - 1] == '\'' || s[j - 1] == '-')) --j;
      out.push_back(MakeToken(s, i, j, TokenKind::kWord));
      i = j;
      continue;
    }
    // Anything else: single punctuation character.
    out.push_back(MakeToken(s, i, i + 1, TokenKind::kPunct));
    ++i;
  }
  return out;
}

std::string SqueezeElongation(std::string_view word) {
  std::string out;
  out.reserve(word.size());
  size_t run = 0;
  for (size_t i = 0; i < word.size(); ++i) {
    if (i > 0 && word[i] == word[i - 1]) {
      ++run;
    } else {
      run = 1;
    }
    if (run <= 2) out.push_back(word[i]);
  }
  return out;
}

}  // namespace nerglob::text
