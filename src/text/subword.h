#ifndef NERGLOB_TEXT_SUBWORD_H_
#define NERGLOB_TEXT_SUBWORD_H_

#include <string>
#include <vector>

namespace nerglob::text {

/// Hash-bucketed subword featurizer (fastText-style). A word maps to the
/// bucket of its whole form plus the buckets of its character n-grams with
/// boundary markers ("<us>" -> "<u","us","s>",...). This gives the MicroBert
/// language model an open vocabulary without a trained wordpiece model —
/// the substitution for BERTweet's BPE vocabulary (see DESIGN.md).
class HashedSubwordVocab {
 public:
  /// num_buckets: hash space size (embedding rows). min_n/max_n: character
  /// n-gram lengths, inclusive.
  HashedSubwordVocab(size_t num_buckets, int min_n = 3, int max_n = 4);

  /// Bucket ids for a (lowercased) word; always non-empty, deterministic.
  std::vector<int> SubwordIds(const std::string& word) const;

  /// SubwordIds into a reusable buffer (cleared first). Lets per-message
  /// encoding reuse one id vector and one marked-word string across
  /// tokens instead of allocating per token.
  void SubwordIdsInto(const std::string& word, std::vector<int>* ids,
                      std::string* marked_scratch) const;

  size_t num_buckets() const { return num_buckets_; }

 private:
  size_t num_buckets_;
  int min_n_;
  int max_n_;
};

}  // namespace nerglob::text

#endif  // NERGLOB_TEXT_SUBWORD_H_
