#ifndef NERGLOB_NN_LOSSES_H_
#define NERGLOB_NN_LOSSES_H_

#include <vector>

#include "autograd/ops.h"

namespace nerglob::nn {

/// Triplet loss with cosine distance (paper Eq. 4):
///   max(d(a,p) - d(a,n) + margin, 0)
/// anchor/positive/negative are (1, d) embeddings. The paper sets
/// margin = 1 to push negatives towards orthogonality.
ag::Var TripletCosineLoss(const ag::Var& anchor, const ag::Var& positive,
                          const ag::Var& negative, float margin = 1.0f);

/// Soft Nearest Neighbour loss with cosine distance (paper Eq. 5):
/// the mean over anchors i of
///   -log( sum_{j != i, y_j = y_i} exp(-d_ij / tau)
///         / sum_{k != i} exp(-d_ik / tau) ).
/// embeddings: (b, d); labels: b class ids. Anchors with no same-class
/// neighbour in the batch are excluded from the mean. `temperature` is the
/// tau hyperparameter (smaller = neighbours dominate).
ag::Var SoftNearestNeighborLoss(const ag::Var& embeddings,
                                const std::vector<int>& labels,
                                float temperature);

}  // namespace nerglob::nn

#endif  // NERGLOB_NN_LOSSES_H_
