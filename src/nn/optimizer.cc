#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

namespace nerglob::nn {

void Optimizer::ZeroGrad() {
  for (ag::Var& p : params_) p.ZeroGrad();
}

void Sgd::Step() {
  for (ag::Var& p : params_) {
    if (p.grad().size() == 0) continue;
    Matrix& value = p.mutable_value();
    if (weight_decay_ > 0.0f) value.Axpy(-lr_ * weight_decay_, value);
    value.Axpy(-lr_, p.grad());
  }
}

Adam::Adam(std::vector<ag::Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i] = Matrix(params_[i].rows(), params_[i].cols());
    v_[i] = Matrix(params_[i].rows(), params_[i].cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Var& p = params_[i];
    if (p.grad().size() == 0) continue;
    const Matrix& g = p.grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    Matrix& value = p.mutable_value();
    for (size_t k = 0; k < g.size(); ++k) {
      const float gk = g.data()[k];
      m.data()[k] = beta1_ * m.data()[k] + (1.0f - beta1_) * gk;
      v.data()[k] = beta2_ * v.data()[k] + (1.0f - beta2_) * gk * gk;
      const float mhat = m.data()[k] / bc1;
      const float vhat = v.data()[k] / bc2;
      float update = mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ > 0.0f) update += weight_decay_ * value.data()[k];
      value.data()[k] -= lr_ * update;
    }
  }
}

LinearWarmupSchedule::LinearWarmupSchedule(float peak_lr, size_t total_steps,
                                           double warmup_fraction)
    : peak_lr_(peak_lr),
      total_steps_(std::max<size_t>(1, total_steps)),
      warmup_steps_(static_cast<size_t>(
          static_cast<double>(std::max<size_t>(1, total_steps)) *
          warmup_fraction)) {}

float LinearWarmupSchedule::LearningRate(size_t step) const {
  step = std::min(step, total_steps_ - 1);
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return peak_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  const size_t decay_steps = total_steps_ - warmup_steps_;
  if (decay_steps == 0) return peak_lr_;
  const float progress = static_cast<float>(step - warmup_steps_) /
                         static_cast<float>(decay_steps);
  return peak_lr_ * (1.0f - progress);
}

float ClipGradNorm(const std::vector<ag::Var>& params, float max_norm) {
  double total = 0.0;
  for (const ag::Var& p : params) {
    if (p.grad().size() == 0) continue;
    const float n = p.grad().FrobeniusNorm();
    total += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (ag::Var p : params) {
      if (p.grad().size() == 0) continue;
      p.mutable_grad().Scale(scale);
    }
  }
  return norm;
}

}  // namespace nerglob::nn
