#include "nn/layers.h"

#include <cmath>
#include <fstream>

#include "common/check.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "io/tensor_io.h"

namespace nerglob::nn {

Linear::Linear(size_t in_features, size_t out_features, Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = ag::Var(Matrix::RandUniform(in_features, out_features, limit, rng),
                    /*requires_grad=*/true);
  bias_ = ag::Var(Matrix(1, out_features), /*requires_grad=*/true);
}

ag::Var Linear::Forward(const ag::Var& x) const {
  return ag::LinearForward(x, weight_, bias_);
}

const Matrix& Linear::TransposedWeight() const {
  TransposeCache& cache = *transpose_cache_;
  const uint64_t want = weight_.value_version();
  // Double-checked: the acquire load pairs with the release store below, so
  // a reader that sees `version == want` also sees the matching `value`.
  if (cache.version.load(std::memory_order_acquire) != want) {
    std::lock_guard<std::mutex> lock(cache.mu);
    if (cache.version.load(std::memory_order_relaxed) != want) {
      cache.value = weight_.value().Transposed();
      cache.version.store(want, std::memory_order_release);
    }
  }
  return cache.value;
}

Matrix Linear::Apply(const Matrix& x) const {
  Matrix out;
  ApplyInto(x, &out);
  return out;
}

void Linear::ApplyInto(const Matrix& x, Matrix* out) const {
  const Matrix& w = weight_.value();
  const Matrix& b = bias_.value();
  NERGLOB_CHECK_EQ(x.cols(), w.rows());
  if (metrics::Enabled()) {
    // Distinguishes graph-free inference forwards from autograd Forward()
    // calls in pipeline snapshots.
    static metrics::Counter* const applies =
        metrics::MetricsRegistry::Global().GetCounter("nn.linear_apply_total");
    applies->Increment();
  }
  // Single gemm path for every shape. The old m==1 dot-product special
  // case over W^T was bit-identical to the gemm by construction but
  // scalar-serial per output; the SIMD kernel vectorizes over the output
  // columns, which wins even for one-row inputs.
  MatMulAddBiasInto(x, w, b, out);
}

Embedding::Embedding(size_t vocab_size, size_t dim, Rng* rng) {
  table_ = ag::Var(Matrix::Randn(vocab_size, dim, 0.1f, rng),
                   /*requires_grad=*/true);
}

ag::Var Embedding::Forward(const std::vector<int>& ids) const {
  return ag::GatherRows(table_, ids);
}

LayerNorm::LayerNorm(size_t dim) {
  gamma_ = ag::Var(Matrix(1, dim, 1.0f), /*requires_grad=*/true);
  beta_ = ag::Var(Matrix(1, dim), /*requires_grad=*/true);
}

ag::Var LayerNorm::Forward(const ag::Var& x) const {
  return ag::LayerNormRows(x, gamma_, beta_);
}

void LayerNorm::ApplyInto(const Matrix& x, Matrix* out) const {
  // 1e-5f is the ag::LayerNormRows default; the eval mirror must match it
  // for bit-identity with Forward(...).value().
  LayerNormRowsInto(x, gamma_.value(), beta_.value(), /*eps=*/1e-5f, out);
}

Matrix LayerNorm::Apply(const Matrix& x) const {
  Matrix out;
  ApplyInto(x, &out);
  return out;
}

BatchNorm1d::BatchNorm1d(size_t dim, float momentum, float eps)
    : momentum_(momentum),
      eps_(eps),
      gamma_(Matrix(1, dim, 1.0f), /*requires_grad=*/true),
      beta_(Matrix(1, dim), /*requires_grad=*/true),
      running_mean_(1, dim),
      running_var_(1, dim, 1.0f) {}

ag::Var BatchNorm1d::Forward(const ag::Var& x, bool training) {
  const size_t dim = x.cols();
  NERGLOB_CHECK_EQ(dim, gamma_.cols());
  Matrix mean(1, dim);
  Matrix var(1, dim);
  if (training && x.rows() > 1) {
    const Matrix& xv = x.value();
    for (size_t c = 0; c < dim; ++c) {
      double m = 0.0;
      for (size_t r = 0; r < xv.rows(); ++r) m += xv.At(r, c);
      m /= xv.rows();
      double v = 0.0;
      for (size_t r = 0; r < xv.rows(); ++r) {
        const double d = xv.At(r, c) - m;
        v += d * d;
      }
      v /= xv.rows();
      mean.At(0, c) = static_cast<float>(m);
      var.At(0, c) = static_cast<float>(v);
    }
    // Exponential moving average of the batch statistics.
    for (size_t c = 0; c < dim; ++c) {
      running_mean_.At(0, c) =
          (1.0f - momentum_) * running_mean_.At(0, c) + momentum_ * mean.At(0, c);
      running_var_.At(0, c) =
          (1.0f - momentum_) * running_var_.At(0, c) + momentum_ * var.At(0, c);
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }
  // Normalize with the (constant) statistics, then apply the learned affine.
  // Treating batch stats as constants w.r.t. the gradient is a standard
  // simplification; with the small batches used here the optimizer is
  // insensitive to the difference.
  Matrix inv_std(1, dim);
  for (size_t c = 0; c < dim; ++c) {
    inv_std.At(0, c) = 1.0f / std::sqrt(var.At(0, c) + eps_);
  }
  Matrix neg_mean = mean;
  neg_mean.Scale(-1.0f);
  ag::Var centered = ag::AddRowBroadcast(x, ag::Constant(std::move(neg_mean)));
  ag::Var xhat = ag::MulRowBroadcast(centered, ag::Constant(std::move(inv_std)));
  ag::Var scaled = ag::MulRowBroadcast(xhat, gamma_);
  return ag::AddRowBroadcast(scaled, beta_);
}

Mlp::Mlp(const std::vector<size_t>& dims, Rng* rng) {
  NERGLOB_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

ag::Var Mlp::Forward(const ag::Var& x) const {
  ag::Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = ag::Relu(h);
  }
  return h;
}

Matrix Mlp::Apply(const Matrix& x) const {
  Matrix out;
  ApplyInto(x, &out, &common::ScratchArena::ThreadLocal());
  return out;
}

void Mlp::ApplyInto(const Matrix& x, Matrix* out,
                    common::ScratchArena* scratch) const {
  common::ScratchFrame frame(scratch);
  const Matrix* cur = &x;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    Matrix* h = frame.Get(cur->rows(), layers_[i].weight().cols());
    layers_[i].ApplyInto(*cur, h);
    ReluInPlace(h);  // static-dispatch relu, same `v > 0 ? v : 0` as ag::Relu
    cur = h;
  }
  layers_.back().ApplyInto(*cur, out);
}

std::vector<ag::Var> Mlp::Parameters() const {
  std::vector<ag::Var> out;
  for (const Linear& l : layers_) {
    for (const ag::Var& p : l.Parameters()) out.push_back(p);
  }
  return out;
}

Status SaveModule(io::TensorWriter* writer, std::string_view name,
                  const Module& module) {
  writer->PutString(name);
  const std::vector<ag::Var> params = module.Parameters();
  writer->PutU64(params.size());
  for (const ag::Var& p : params) writer->PutMatrix(p.value());
  return writer->EndRecord(io::kTagModule);
}

Status LoadModule(io::TensorReader* reader, std::string_view name,
                  Module* module) {
  NERGLOB_RETURN_IF_ERROR(reader->NextRecord(io::kTagModule));
  std::string found;
  uint64_t count = 0;
  if (!reader->GetString(&found) || !reader->GetU64(&count)) {
    return reader->status();
  }
  if (found != name) {
    return Status::InvalidArgument(StrFormat(
        "'%s': module name mismatch: expected '%s', found '%s'",
        reader->path().c_str(), std::string(name).c_str(), found.c_str()));
  }
  std::vector<ag::Var> params = module->Parameters();
  if (count != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "'%s': module '%s' parameter count mismatch (architecture "
        "changed?): expected %zu, found %llu",
        reader->path().c_str(), found.c_str(), params.size(),
        static_cast<unsigned long long>(count)));
  }
  // Stage every value before touching the module so a corrupt or
  // mismatched record leaves the target untouched.
  std::vector<Matrix> values(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    if (!reader->GetMatrix(&values[i])) return reader->status();
    if (values[i].rows() != params[i].rows() ||
        values[i].cols() != params[i].cols()) {
      return Status::InvalidArgument(StrFormat(
          "'%s': module '%s' parameter %zu shape mismatch: expected "
          "%zux%zu, found %zux%zu",
          reader->path().c_str(), found.c_str(), i, params[i].rows(),
          params[i].cols(), values[i].rows(), values[i].cols()));
    }
  }
  NERGLOB_RETURN_IF_ERROR(reader->ExpectRecordEnd());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = std::move(values[i]);
  }
  return Status::OK();
}

Status SaveModuleParameters(const Module& module, const std::string& path) {
  io::TensorWriter writer(path);
  NERGLOB_RETURN_IF_ERROR(SaveModule(&writer, "module", module));
  return writer.Finish();
}

Status LoadModuleParameters(const std::string& path, Module* module) {
  io::TensorReader reader(path);
  return LoadModule(&reader, "module", module);
}

std::vector<Matrix> SnapshotParameters(const std::vector<ag::Var>& params) {
  std::vector<Matrix> out;
  out.reserve(params.size());
  for (const ag::Var& p : params) out.push_back(p.value());
  return out;
}

void RestoreParameters(const std::vector<Matrix>& snapshot,
                       std::vector<ag::Var>* params) {
  NERGLOB_CHECK_EQ(snapshot.size(), params->size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    (*params)[i].mutable_value() = snapshot[i];
  }
}

}  // namespace nerglob::nn
