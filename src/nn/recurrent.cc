#include "nn/recurrent.h"

#include <cmath>

#include "common/check.h"

namespace nerglob::nn {

Lstm::Lstm(size_t input_dim, size_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(input_dim + 2 * hidden_dim));
  w_ = ag::Var(
      Matrix::RandUniform(input_dim + hidden_dim, 4 * hidden_dim, limit, rng),
      /*requires_grad=*/true);
  // Forget-gate bias initialized to 1 (standard trick for gradient flow).
  Matrix b(1, 4 * hidden_dim);
  for (size_t c = hidden_dim; c < 2 * hidden_dim; ++c) b.At(0, c) = 1.0f;
  b_ = ag::Var(std::move(b), /*requires_grad=*/true);
}

ag::Var Lstm::Forward(const ag::Var& x, bool reverse) const {
  NERGLOB_CHECK_EQ(x.cols(), input_dim_);
  const size_t t_len = x.rows();
  ag::Var h = ag::Constant(Matrix(1, hidden_dim_));
  ag::Var c = ag::Constant(Matrix(1, hidden_dim_));
  std::vector<ag::Var> outputs(t_len);
  for (size_t step = 0; step < t_len; ++step) {
    const size_t t = reverse ? t_len - 1 - step : step;
    ag::Var xt = ag::SliceRows(x, t, 1);
    ag::Var zin = ag::ConcatCols({xt, h});
    ag::Var gates = ag::AddRowBroadcast(ag::MatMul(zin, w_), b_);
    ag::Var i = ag::Sigmoid(ag::SliceCols(gates, 0, hidden_dim_));
    ag::Var f = ag::Sigmoid(ag::SliceCols(gates, hidden_dim_, hidden_dim_));
    ag::Var g = ag::Tanh(ag::SliceCols(gates, 2 * hidden_dim_, hidden_dim_));
    ag::Var o = ag::Sigmoid(ag::SliceCols(gates, 3 * hidden_dim_, hidden_dim_));
    c = ag::Add(ag::Mul(f, c), ag::Mul(i, g));
    h = ag::Mul(o, ag::Tanh(c));
    outputs[t] = h;
  }
  return ag::ConcatRows(outputs);
}

BiLstm::BiLstm(size_t input_dim, size_t hidden_dim, Rng* rng)
    : fwd_(input_dim, hidden_dim, rng), bwd_(input_dim, hidden_dim, rng) {}

ag::Var BiLstm::Forward(const ag::Var& x) const {
  return ag::ConcatCols({fwd_.Forward(x, /*reverse=*/false),
                         bwd_.Forward(x, /*reverse=*/true)});
}

std::vector<ag::Var> BiLstm::Parameters() const {
  std::vector<ag::Var> out = fwd_.Parameters();
  for (const ag::Var& p : bwd_.Parameters()) out.push_back(p);
  return out;
}

}  // namespace nerglob::nn
