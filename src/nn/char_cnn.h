#ifndef NERGLOB_NN_CHAR_CNN_H_
#define NERGLOB_NN_CHAR_CNN_H_

#include <string>
#include <vector>

#include "nn/layers.h"

namespace nerglob::nn {

/// Character-level CNN producing a fixed-size feature vector per word
/// (the character component of the Aguilar et al. BiLSTM-CNN-CRF baseline).
/// Pipeline: byte embeddings -> width-3 convolution (as a Linear over
/// concatenated windows) -> ReLU -> max-over-time pooling.
class CharCnn : public Module {
 public:
  CharCnn(size_t char_dim, size_t num_filters, Rng* rng);

  /// word -> (1, num_filters). Empty words map to the zero vector.
  ag::Var Forward(const std::string& word) const;

  std::vector<ag::Var> Parameters() const override;

  size_t num_filters() const { return num_filters_; }

 private:
  static constexpr size_t kAlphabetSize = 128;  // ASCII; bytes >127 fold in
  size_t char_dim_;
  size_t num_filters_;
  Embedding char_embedding_;
  Linear conv_;  // (3 * char_dim) -> num_filters
};

}  // namespace nerglob::nn

#endif  // NERGLOB_NN_CHAR_CNN_H_
