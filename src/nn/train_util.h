#ifndef NERGLOB_NN_TRAIN_UTIL_H_
#define NERGLOB_NN_TRAIN_UTIL_H_

#include <vector>

#include "autograd/variable.h"
#include "nn/module.h"

namespace nerglob::nn {

/// Tracks a validation metric across epochs, keeps a snapshot of the best
/// parameters, and signals when `patience` consecutive epochs failed to
/// improve (the paper uses early stopping with patience 8 for the Phrase
/// Embedder and 20 for the Entity Classifier).
class EarlyStopper {
 public:
  /// `higher_is_better`: true for F1-style metrics, false for losses.
  EarlyStopper(int patience, bool higher_is_better)
      : patience_(patience), higher_is_better_(higher_is_better) {}

  /// Records an epoch result. Returns true if this epoch is a new best
  /// (in which case the caller's parameters are snapshotted).
  bool Observe(double metric, const std::vector<ag::Var>& params);

  /// True once `patience` consecutive non-improving epochs were seen.
  bool ShouldStop() const { return stale_ >= patience_; }

  /// Best metric so far. Valid after the first Observe().
  double best_metric() const { return best_metric_; }

  /// Restores the best snapshot into `params` (same order as observed).
  void RestoreBest(std::vector<ag::Var>* params) const;

  int epochs_observed() const { return epochs_; }

 private:
  int patience_;
  bool higher_is_better_;
  int stale_ = 0;
  int epochs_ = 0;
  bool has_best_ = false;
  double best_metric_ = 0.0;
  std::vector<Matrix> best_snapshot_;
};

}  // namespace nerglob::nn

#endif  // NERGLOB_NN_TRAIN_UTIL_H_
