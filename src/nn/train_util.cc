#include "nn/train_util.h"

namespace nerglob::nn {

bool EarlyStopper::Observe(double metric, const std::vector<ag::Var>& params) {
  ++epochs_;
  const bool improved =
      !has_best_ ||
      (higher_is_better_ ? metric > best_metric_ : metric < best_metric_);
  if (improved) {
    has_best_ = true;
    best_metric_ = metric;
    best_snapshot_ = SnapshotParameters(params);
    stale_ = 0;
    return true;
  }
  ++stale_;
  return false;
}

void EarlyStopper::RestoreBest(std::vector<ag::Var>* params) const {
  if (has_best_) RestoreParameters(best_snapshot_, params);
}

}  // namespace nerglob::nn
