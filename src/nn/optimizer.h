#ifndef NERGLOB_NN_OPTIMIZER_H_
#define NERGLOB_NN_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"
#include "tensor/matrix.h"

namespace nerglob::nn {

/// Base optimizer over a fixed parameter list. Parameters whose gradient
/// was never touched in the current step are skipped.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  const std::vector<ag::Var>& params() const { return params_; }

 protected:
  std::vector<ag::Var> params_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var> params, float lr, float weight_decay = 0.0f)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay. The paper trains
/// the Phrase Embedder with Adam at lr=0.001 and the Entity Classifier at
/// lr=0.0015 (Sec. VI).
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// Scales gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<ag::Var>& params, float max_norm);

/// The BERT fine-tuning learning-rate schedule: linear warmup from 0 to
/// `peak_lr` over the first `warmup_fraction` of `total_steps`, then linear
/// decay back to 0 at the final step.
class LinearWarmupSchedule {
 public:
  LinearWarmupSchedule(float peak_lr, size_t total_steps,
                       double warmup_fraction = 0.1);

  /// Learning rate for 0-based step `step` (clamped at total_steps - 1).
  float LearningRate(size_t step) const;

  size_t total_steps() const { return total_steps_; }

 private:
  float peak_lr_;
  size_t total_steps_;
  size_t warmup_steps_;
};

}  // namespace nerglob::nn

#endif  // NERGLOB_NN_OPTIMIZER_H_
