#ifndef NERGLOB_NN_LAYERS_H_
#define NERGLOB_NN_LAYERS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "common/scratch_arena.h"
#include "nn/module.h"

namespace nerglob::nn {

/// Fully-connected layer: y = x W + b. Glorot-uniform initialized.
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng);

  /// x: (m, in) -> (m, out). Builds graph nodes (training / autograd path).
  ag::Var Forward(const ag::Var& x) const;

  /// Raw inference path: same math as Forward but no graph nodes (the
  /// SIMD gemm kernel handles every shape, including single rows, so this
  /// is bit-identical to Forward(...).value() everywhere). Safe to call
  /// concurrently from ParallelFor bodies.
  Matrix Apply(const Matrix& x) const;

  /// Apply with a caller-owned output (capacity reused; zero allocations
  /// at steady state when `out` is a scratch-arena slot).
  void ApplyInto(const Matrix& x, Matrix* out) const;

  std::vector<ag::Var> Parameters() const override { return {weight_, bias_}; }

  const ag::Var& weight() const { return weight_; }
  const ag::Var& bias() const { return bias_; }

  /// W^T (out, in), cached and invalidated via the weight's version stamp
  /// (bumped by every mutable_value() access, i.e. each optimizer step).
  const Matrix& TransposedWeight() const;

 private:
  /// Copies of a Linear share the same parameter nodes, so they share the
  /// cache too (shared_ptr keeps the layer copyable for std::vector use).
  struct TransposeCache {
    std::mutex mu;
    std::atomic<uint64_t> version{std::numeric_limits<uint64_t>::max()};
    Matrix value;
  };

  ag::Var weight_;  // (in, out)
  ag::Var bias_;    // (1, out)
  std::shared_ptr<TransposeCache> transpose_cache_ =
      std::make_shared<TransposeCache>();
};

/// Token embedding table with gather-based lookup.
class Embedding : public Module {
 public:
  Embedding(size_t vocab_size, size_t dim, Rng* rng);

  /// ids (each in [0, vocab)) -> (ids.size(), dim).
  ag::Var Forward(const std::vector<int>& ids) const;

  std::vector<ag::Var> Parameters() const override { return {table_}; }

  size_t vocab_size() const { return table_.rows(); }
  size_t dim() const { return table_.cols(); }

  /// Read-only view of the embedding table for graph-free gathers (the
  /// eval path indexes rows directly instead of building GatherRows
  /// nodes).
  const Matrix& table_value() const { return table_.value(); }

 private:
  ag::Var table_;  // (vocab, dim)
};

/// Layer normalization over the feature (column) axis, per row.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(size_t dim);

  ag::Var Forward(const ag::Var& x) const;

  /// Graph-free eval path, bit-identical to Forward(...).value() (same
  /// double row statistics, same eps as ag::LayerNormRows).
  void ApplyInto(const Matrix& x, Matrix* out) const;
  Matrix Apply(const Matrix& x) const;

  std::vector<ag::Var> Parameters() const override { return {gamma_, beta_}; }

 private:
  ag::Var gamma_;  // (1, dim), init 1
  ag::Var beta_;   // (1, dim), init 0
};

/// Batch normalization over the batch (row) axis with running statistics.
/// The paper's Phrase Embedder / Entity Classifier training uses batch norm
/// for regularization (Sec. VI).
class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(size_t dim, float momentum = 0.1f, float eps = 1e-5f);

  /// Training mode normalizes with batch statistics and updates running
  /// stats; eval mode uses the running stats.
  ag::Var Forward(const ag::Var& x, bool training);

  std::vector<ag::Var> Parameters() const override { return {gamma_, beta_}; }

  const Matrix& running_mean() const { return running_mean_; }
  const Matrix& running_var() const { return running_var_; }

 private:
  float momentum_;
  float eps_;
  ag::Var gamma_;
  ag::Var beta_;
  Matrix running_mean_;  // (1, dim)
  Matrix running_var_;   // (1, dim)
};

/// A small multi-layer perceptron: Linear/ReLU stacks with a linear head.
/// Used for the Entity Classifier ("multiple dense layers with ReLU
/// activation and a softmax output layer", Sec. V-D).
class Mlp : public Module {
 public:
  /// dims = {in, h1, ..., out}. Hidden layers get ReLU; the last is linear.
  Mlp(const std::vector<size_t>& dims, Rng* rng);

  ag::Var Forward(const ag::Var& x) const;

  /// Raw inference path mirroring Forward (Linear::Apply + ReLU between
  /// layers, linear last); no graph nodes, thread-safe.
  Matrix Apply(const Matrix& x) const;

  /// Apply with caller-owned output and explicit scratch arena for the
  /// hidden activations (ping-pong buffers inside one ScratchFrame).
  void ApplyInto(const Matrix& x, Matrix* out,
                 common::ScratchArena* scratch) const;

  std::vector<ag::Var> Parameters() const override;

 private:
  std::vector<Linear> layers_;
};

}  // namespace nerglob::nn

#endif  // NERGLOB_NN_LAYERS_H_
