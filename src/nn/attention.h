#ifndef NERGLOB_NN_ATTENTION_H_
#define NERGLOB_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace nerglob::nn {

/// Multi-head scaled dot-product self-attention over a single sequence.
/// Input/output shape (T, d_model).
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(size_t d_model, size_t num_heads, Rng* rng);

  ag::Var Forward(const ag::Var& x) const;

  /// Graph-free eval path, bit-identical to Forward(...).value(): the same
  /// op sequence (projections, per-head scaled scores, softmax, weighted
  /// values, concat, output projection) with every intermediate in the
  /// caller's scratch arena. Thread-safe once training has finished.
  void ApplyInto(const Matrix& x, Matrix* out,
                 common::ScratchArena* scratch) const;

  std::vector<ag::Var> Parameters() const override;

  size_t num_heads() const { return num_heads_; }

 private:
  size_t d_model_;
  size_t num_heads_;
  size_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

/// A pre-LN transformer encoder layer:
///   x = x + MHA(LN(x));  x = x + FFN(LN(x))
/// with a ReLU feed-forward of width ff_mult * d_model.
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(size_t d_model, size_t num_heads, size_t ff_mult,
                          float dropout, Rng* rng);

  ag::Var Forward(const ag::Var& x, bool training, Rng* rng) const;

  /// Graph-free eval mirror of Forward(x, /*training=*/false, ...):
  /// dropout is an eval no-op, so the residual adds, layer norms, MHA and
  /// feed-forward reproduce the tape values bit-for-bit with all
  /// intermediates in `scratch`.
  void ApplyInto(const Matrix& x, Matrix* out,
                 common::ScratchArena* scratch) const;

  std::vector<ag::Var> Parameters() const override;

 private:
  float dropout_;
  MultiHeadSelfAttention mha_;
  LayerNorm ln1_;
  LayerNorm ln2_;
  Linear ff1_;
  Linear ff2_;
};

}  // namespace nerglob::nn

#endif  // NERGLOB_NN_ATTENTION_H_
