#ifndef NERGLOB_NN_CRF_H_
#define NERGLOB_NN_CRF_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"

namespace nerglob::nn {

/// Linear-chain conditional random field over `num_tags` labels.
///
/// score(y | e) = start[y_0] + sum_t e[t, y_t] + sum_t trans[y_{t-1}, y_t]
///               + end[y_{T-1}]
///
/// NegLogLikelihood is a custom-gradient autograd op: the forward pass runs
/// the forward algorithm in log space; the backward pass computes exact
/// marginals with forward-backward and emits (marginal - empirical)
/// gradients for the emissions, transitions and boundary scores.
/// Decode() is Viterbi.
class LinearChainCrf : public Module {
 public:
  LinearChainCrf(size_t num_tags, Rng* rng);

  /// emissions: (T, num_tags) unary scores; tags: gold sequence (length T).
  /// Returns scalar NLL = logZ - score(tags). Differentiable through the
  /// emissions and the CRF parameters.
  ag::Var NegLogLikelihood(const ag::Var& emissions,
                           const std::vector<int>& tags) const;

  /// MAP sequence via Viterbi over raw emission scores.
  std::vector<int> Decode(const Matrix& emissions) const;

  std::vector<ag::Var> Parameters() const override {
    return {transitions_, start_, end_};
  }

  size_t num_tags() const { return num_tags_; }

 private:
  size_t num_tags_;
  ag::Var transitions_;  // (L, L): score of moving from row-tag to col-tag
  ag::Var start_;        // (1, L)
  ag::Var end_;          // (1, L)
};

}  // namespace nerglob::nn

#endif  // NERGLOB_NN_CRF_H_
