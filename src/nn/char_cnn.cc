#include "nn/char_cnn.h"

namespace nerglob::nn {

CharCnn::CharCnn(size_t char_dim, size_t num_filters, Rng* rng)
    : char_dim_(char_dim),
      num_filters_(num_filters),
      char_embedding_(kAlphabetSize, char_dim, rng),
      conv_(3 * char_dim, num_filters, rng) {}

ag::Var CharCnn::Forward(const std::string& word) const {
  if (word.empty()) return ag::Constant(Matrix(1, num_filters_));
  std::vector<int> ids;
  ids.reserve(word.size());
  for (char ch : word) {
    ids.push_back(static_cast<unsigned char>(ch) % kAlphabetSize);
  }
  ag::Var chars = char_embedding_.Forward(ids);  // (L, char_dim)
  // Width-3 windows with zero padding at both ends: row t gets
  // [e_{t-1}; e_t; e_{t+1}].
  const size_t len = ids.size();
  ag::Var zero = ag::Constant(Matrix(1, char_dim_));
  ag::Var padded =
      len > 0 ? ag::ConcatRows({zero, chars, zero}) : zero;
  ag::Var left = ag::SliceRows(padded, 0, len);
  ag::Var mid = ag::SliceRows(padded, 1, len);
  ag::Var right = ag::SliceRows(padded, 2, len);
  ag::Var windows = ag::ConcatCols({left, mid, right});  // (L, 3*char_dim)
  ag::Var feat = ag::Relu(conv_.Forward(windows));       // (L, filters)
  return ag::MaxOverRows(feat);                          // (1, filters)
}

std::vector<ag::Var> CharCnn::Parameters() const {
  std::vector<ag::Var> out = char_embedding_.Parameters();
  for (const ag::Var& p : conv_.Parameters()) out.push_back(p);
  return out;
}

}  // namespace nerglob::nn
