#include "nn/attention.h"

#include <cmath>

#include "common/check.h"

namespace nerglob::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(size_t d_model, size_t num_heads,
                                               Rng* rng)
    : d_model_(d_model),
      num_heads_(num_heads),
      head_dim_(d_model / num_heads),
      wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
  NERGLOB_CHECK_EQ(head_dim_ * num_heads_, d_model_)
      << "d_model must be divisible by num_heads";
}

ag::Var MultiHeadSelfAttention::Forward(const ag::Var& x) const {
  NERGLOB_CHECK_EQ(x.cols(), d_model_);
  const ag::Var q = wq_.Forward(x);
  const ag::Var k = wk_.Forward(x);
  const ag::Var v = wv_.Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<ag::Var> heads;
  heads.reserve(num_heads_);
  for (size_t h = 0; h < num_heads_; ++h) {
    const size_t off = h * head_dim_;
    ag::Var qh = ag::SliceCols(q, off, head_dim_);
    ag::Var kh = ag::SliceCols(k, off, head_dim_);
    ag::Var vh = ag::SliceCols(v, off, head_dim_);
    ag::Var scores = ag::ScalarMul(ag::MatMul(qh, ag::Transpose(kh)), scale);
    ag::Var attn = ag::SoftmaxRows(scores);
    heads.push_back(ag::MatMul(attn, vh));
  }
  return wo_.Forward(ag::ConcatCols(heads));
}

void MultiHeadSelfAttention::ApplyInto(const Matrix& x, Matrix* out,
                                       common::ScratchArena* scratch) const {
  NERGLOB_CHECK_EQ(x.cols(), d_model_);
  common::ScratchFrame frame(scratch);
  const size_t t_len = x.rows();
  Matrix* q = frame.Get(t_len, d_model_);
  Matrix* k = frame.Get(t_len, d_model_);
  Matrix* v = frame.Get(t_len, d_model_);
  wq_.ApplyInto(x, q);
  wk_.ApplyInto(x, k);
  wv_.ApplyInto(x, v);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  // Head outputs write straight into their column slice of the concat
  // buffer — the same bytes ag::ConcatCols would copy, without the copy.
  Matrix* concat = frame.Get(t_len, d_model_);
  Matrix* qh = frame.Get(t_len, head_dim_);
  Matrix* kh = frame.Get(t_len, head_dim_);
  Matrix* vh = frame.Get(t_len, head_dim_);
  Matrix* kht = frame.Get(head_dim_, t_len);
  Matrix* scores = frame.Get(t_len, t_len);
  Matrix* head_out = frame.Get(t_len, head_dim_);
  for (size_t h = 0; h < num_heads_; ++h) {
    const size_t off = h * head_dim_;
    SliceColsInto(*q, off, head_dim_, qh);
    SliceColsInto(*k, off, head_dim_, kh);
    SliceColsInto(*v, off, head_dim_, vh);
    TransposeInto(*kh, kht);
    MatMulInto(*qh, *kht, scores);      // ag::MatMul(qh, Transpose(kh))
    scores->Scale(scale);               // ag::ScalarMul
    SoftmaxRowsInto(*scores, scores);   // ag::SoftmaxRows (in place)
    MatMulInto(*scores, *vh, head_out); // ag::MatMul(attn, vh)
    for (size_t r = 0; r < t_len; ++r) {
      const float* src = head_out->Row(r);
      std::copy(src, src + head_dim_, concat->Row(r) + off);
    }
  }
  wo_.ApplyInto(*concat, out);
}

std::vector<ag::Var> MultiHeadSelfAttention::Parameters() const {
  std::vector<ag::Var> out;
  for (const Linear* l : {&wq_, &wk_, &wv_, &wo_}) {
    for (const ag::Var& p : l->Parameters()) out.push_back(p);
  }
  return out;
}

TransformerEncoderLayer::TransformerEncoderLayer(size_t d_model,
                                                 size_t num_heads,
                                                 size_t ff_mult, float dropout,
                                                 Rng* rng)
    : dropout_(dropout),
      mha_(d_model, num_heads, rng),
      ln1_(d_model),
      ln2_(d_model),
      ff1_(d_model, d_model * ff_mult, rng),
      ff2_(d_model * ff_mult, d_model, rng) {}

ag::Var TransformerEncoderLayer::Forward(const ag::Var& x, bool training,
                                         Rng* rng) const {
  ag::Var attn_out = mha_.Forward(ln1_.Forward(x));
  attn_out = ag::Dropout(attn_out, dropout_, training, rng);
  ag::Var h = ag::Add(x, attn_out);
  ag::Var ff = ff2_.Forward(ag::Relu(ff1_.Forward(ln2_.Forward(h))));
  ff = ag::Dropout(ff, dropout_, training, rng);
  return ag::Add(h, ff);
}

void TransformerEncoderLayer::ApplyInto(const Matrix& x, Matrix* out,
                                        common::ScratchArena* scratch) const {
  common::ScratchFrame frame(scratch);
  const size_t t_len = x.rows();
  const size_t d = x.cols();
  Matrix* normed = frame.Get(t_len, d);
  Matrix* attn = frame.Get(t_len, d);
  Matrix* h = frame.Get(t_len, d);
  ln1_.ApplyInto(x, normed);
  mha_.ApplyInto(*normed, attn, scratch);
  AddInto(x, *attn, h);                        // ag::Add(x, attn_out)
  ln2_.ApplyInto(*h, normed);                  // normed buffer reused
  Matrix* ff = frame.Get(t_len, ff1_.weight().cols());
  ff1_.ApplyInto(*normed, ff);
  ReluInPlace(ff);
  Matrix* ff2 = frame.Get(t_len, d);
  ff2_.ApplyInto(*ff, ff2);
  AddInto(*h, *ff2, out);                      // ag::Add(h, ff)
}

std::vector<ag::Var> TransformerEncoderLayer::Parameters() const {
  std::vector<ag::Var> out = mha_.Parameters();
  for (const Module* m :
       std::vector<const Module*>{&ln1_, &ln2_, &ff1_, &ff2_}) {
    for (const ag::Var& p : m->Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace nerglob::nn
