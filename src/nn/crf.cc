#include "nn/crf.h"

#include <cmath>

#include "common/check.h"

namespace nerglob::nn {

namespace {

float LogSumExp(const std::vector<float>& xs) {
  float mx = xs[0];
  for (float x : xs) mx = std::max(mx, x);
  double acc = 0.0;
  for (float x : xs) acc += std::exp(x - mx);
  return mx + static_cast<float>(std::log(acc));
}

}  // namespace

LinearChainCrf::LinearChainCrf(size_t num_tags, Rng* rng)
    : num_tags_(num_tags),
      transitions_(Matrix::Randn(num_tags, num_tags, 0.01f, rng),
                   /*requires_grad=*/true),
      start_(Matrix::Randn(1, num_tags, 0.01f, rng), /*requires_grad=*/true),
      end_(Matrix::Randn(1, num_tags, 0.01f, rng), /*requires_grad=*/true) {}

ag::Var LinearChainCrf::NegLogLikelihood(const ag::Var& emissions,
                                         const std::vector<int>& tags) const {
  const size_t t_len = emissions.rows();
  const size_t L = num_tags_;
  NERGLOB_CHECK_EQ(emissions.cols(), L);
  NERGLOB_CHECK_EQ(tags.size(), t_len);
  NERGLOB_CHECK_GT(t_len, 0u);
  for (int tag : tags) NERGLOB_CHECK(tag >= 0 && static_cast<size_t>(tag) < L);

  const Matrix& e = emissions.value();
  const Matrix& a = transitions_.value();
  const Matrix& s = start_.value();
  const Matrix& z = end_.value();

  // Forward algorithm (log space).
  Matrix alpha(t_len, L);
  for (size_t j = 0; j < L; ++j) alpha.At(0, j) = s.At(0, j) + e.At(0, j);
  std::vector<float> scratch(L);
  for (size_t t = 1; t < t_len; ++t) {
    for (size_t j = 0; j < L; ++j) {
      for (size_t i = 0; i < L; ++i) scratch[i] = alpha.At(t - 1, i) + a.At(i, j);
      alpha.At(t, j) = LogSumExp(scratch) + e.At(t, j);
    }
  }
  for (size_t j = 0; j < L; ++j) scratch[j] = alpha.At(t_len - 1, j) + z.At(0, j);
  const float log_z = LogSumExp(scratch);

  // Gold path score.
  float gold = s.At(0, static_cast<size_t>(tags[0])) + z.At(0, static_cast<size_t>(tags[t_len - 1]));
  for (size_t t = 0; t < t_len; ++t) gold += e.At(t, static_cast<size_t>(tags[t]));
  for (size_t t = 1; t < t_len; ++t) {
    gold += a.At(static_cast<size_t>(tags[t - 1]), static_cast<size_t>(tags[t]));
  }

  Matrix nll(1, 1);
  nll.At(0, 0) = log_z - gold;

  // Backward pass closure: exact marginals via forward-backward.
  auto backward = [t_len, L, tags, alpha, log_z](ag::Node& node) {
    const float g = node.grad_.At(0, 0);
    const Matrix& e = node.parents_[0]->value_;
    const Matrix& a = node.parents_[1]->value_;
    const Matrix& z = node.parents_[3]->value_;

    Matrix beta(t_len, L);
    for (size_t j = 0; j < L; ++j) beta.At(t_len - 1, j) = z.At(0, j);
    std::vector<float> scratch(L);
    for (size_t t = t_len - 1; t-- > 0;) {
      for (size_t i = 0; i < L; ++i) {
        for (size_t j = 0; j < L; ++j) {
          scratch[j] = a.At(i, j) + e.At(t + 1, j) + beta.At(t + 1, j);
        }
        beta.At(t, i) = LogSumExp(scratch);
      }
    }

    Matrix de(t_len, L);
    Matrix da(L, L);
    Matrix ds(1, L);
    Matrix dz(1, L);
    // Unary marginals -> emission gradient; start/end use boundary rows.
    for (size_t t = 0; t < t_len; ++t) {
      for (size_t j = 0; j < L; ++j) {
        const float marg = std::exp(alpha.At(t, j) + beta.At(t, j) - log_z);
        de.At(t, j) = g * marg;
      }
      de.At(t, static_cast<size_t>(tags[t])) -= g;
    }
    for (size_t j = 0; j < L; ++j) {
      ds.At(0, j) = g * std::exp(alpha.At(0, j) + beta.At(0, j) - log_z);
      dz.At(0, j) = g * std::exp(alpha.At(t_len - 1, j) + beta.At(t_len - 1, j) - log_z);
    }
    ds.At(0, static_cast<size_t>(tags[0])) -= g;
    dz.At(0, static_cast<size_t>(tags[t_len - 1])) -= g;
    // Pairwise marginals -> transition gradient.
    for (size_t t = 0; t + 1 < t_len; ++t) {
      for (size_t i = 0; i < L; ++i) {
        for (size_t j = 0; j < L; ++j) {
          const float pair = std::exp(alpha.At(t, i) + a.At(i, j) +
                                      e.At(t + 1, j) + beta.At(t + 1, j) - log_z);
          da.At(i, j) += g * pair;
        }
      }
      da.At(static_cast<size_t>(tags[t]), static_cast<size_t>(tags[t + 1])) -= g;
    }

    ag::AccumulateGrad(*node.parents_[0], de);
    ag::AccumulateGrad(*node.parents_[1], da);
    ag::AccumulateGrad(*node.parents_[2], ds);
    ag::AccumulateGrad(*node.parents_[3], dz);
  };

  return ag::CustomOp(std::move(nll), {emissions, transitions_, start_, end_},
                      std::move(backward));
}

std::vector<int> LinearChainCrf::Decode(const Matrix& emissions) const {
  const size_t t_len = emissions.rows();
  const size_t L = num_tags_;
  NERGLOB_CHECK_EQ(emissions.cols(), L);
  NERGLOB_CHECK_GT(t_len, 0u);
  const Matrix& a = transitions_.value();
  const Matrix& s = start_.value();
  const Matrix& z = end_.value();

  Matrix score(t_len, L);
  std::vector<std::vector<int>> backptr(t_len, std::vector<int>(L, 0));
  for (size_t j = 0; j < L; ++j) score.At(0, j) = s.At(0, j) + emissions.At(0, j);
  for (size_t t = 1; t < t_len; ++t) {
    for (size_t j = 0; j < L; ++j) {
      float best = score.At(t - 1, 0) + a.At(0, j);
      int best_i = 0;
      for (size_t i = 1; i < L; ++i) {
        const float cand = score.At(t - 1, i) + a.At(i, j);
        if (cand > best) {
          best = cand;
          best_i = static_cast<int>(i);
        }
      }
      score.At(t, j) = best + emissions.At(t, j);
      backptr[t][j] = best_i;
    }
  }
  float best = score.At(t_len - 1, 0) + z.At(0, 0);
  int best_j = 0;
  for (size_t j = 1; j < L; ++j) {
    const float cand = score.At(t_len - 1, j) + z.At(0, j);
    if (cand > best) {
      best = cand;
      best_j = static_cast<int>(j);
    }
  }
  std::vector<int> tags(t_len);
  tags[t_len - 1] = best_j;
  for (size_t t = t_len - 1; t > 0; --t) tags[t - 1] = backptr[t][tags[t]];
  return tags;
}

}  // namespace nerglob::nn
