#ifndef NERGLOB_NN_MODULE_H_
#define NERGLOB_NN_MODULE_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"

namespace nerglob::nn {

/// Base for trainable components: anything that owns parameters.
/// Parameters are leaf ag::Vars with requires_grad=true whose values the
/// optimizer updates in place.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module (and submodules).
  virtual std::vector<ag::Var> Parameters() const = 0;

  /// Number of scalar parameters; handy for model summaries.
  size_t NumParameters() const {
    size_t n = 0;
    for (const ag::Var& p : Parameters()) n += p.value().size();
    return n;
  }
};

/// Persists a module's parameter values to a binary file (magic + count +
/// shaped matrices). The module's architecture is NOT stored: loading into
/// a differently-shaped module fails with InvalidArgument.
Status SaveModuleParameters(const Module& module, const std::string& path);

/// Restores parameter values saved with SaveModuleParameters. The module
/// must have the same architecture (parameter count and shapes).
Status LoadModuleParameters(const std::string& path, Module* module);

/// Takes a value snapshot of parameters (for best-checkpoint tracking).
std::vector<Matrix> SnapshotParameters(const std::vector<ag::Var>& params);

/// Restores parameter values from a snapshot taken with SnapshotParameters.
void RestoreParameters(const std::vector<Matrix>& snapshot,
                       std::vector<ag::Var>* params);

}  // namespace nerglob::nn

#endif  // NERGLOB_NN_MODULE_H_
