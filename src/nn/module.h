#ifndef NERGLOB_NN_MODULE_H_
#define NERGLOB_NN_MODULE_H_

#include <string>
#include <string_view>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"

namespace nerglob::io {
class TensorWriter;
class TensorReader;
}  // namespace nerglob::io

namespace nerglob::nn {

/// Base for trainable components: anything that owns parameters.
/// Parameters are leaf ag::Vars with requires_grad=true whose values the
/// optimizer updates in place.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module (and submodules).
  virtual std::vector<ag::Var> Parameters() const = 0;

  /// Number of scalar parameters; handy for model summaries.
  size_t NumParameters() const {
    size_t n = 0;
    for (const ag::Var& p : Parameters()) n += p.value().size();
    return n;
  }
};

/// Appends a module's parameters to an open artifact as one checksummed
/// record (io::kTagModule): name, parameter count, shaped matrices. The
/// architecture itself is NOT stored: loading into a differently-shaped
/// module fails with InvalidArgument. Composable — ModelBundle writes one
/// record per sub-model into a single `.ngb` file.
Status SaveModule(io::TensorWriter* writer, std::string_view name,
                  const Module& module);

/// Reads a record written by SaveModule. The load is two-phase: values are
/// staged and only committed once the record (name, count, every shape,
/// checksum) validates, so a failed load leaves `module` untouched.
Status LoadModule(io::TensorReader* reader, std::string_view name,
                  Module* module);

/// Persists a module's parameter values as a standalone single-record
/// file in the common artifact format (see io/tensor_io.h).
Status SaveModuleParameters(const Module& module, const std::string& path);

/// Restores parameter values saved with SaveModuleParameters. The module
/// must have the same architecture (parameter count and shapes).
Status LoadModuleParameters(const std::string& path, Module* module);

/// Takes a value snapshot of parameters (for best-checkpoint tracking).
std::vector<Matrix> SnapshotParameters(const std::vector<ag::Var>& params);

/// Restores parameter values from a snapshot taken with SnapshotParameters.
void RestoreParameters(const std::vector<Matrix>& snapshot,
                       std::vector<ag::Var>* params);

}  // namespace nerglob::nn

#endif  // NERGLOB_NN_MODULE_H_
