#ifndef NERGLOB_NN_RECURRENT_H_
#define NERGLOB_NN_RECURRENT_H_

#include <vector>

#include "nn/layers.h"

namespace nerglob::nn {

/// Single-direction LSTM unrolled over a (T, input_dim) sequence.
/// Gates use one fused weight: [x_t, h_{t-1}] W + b with W of shape
/// (input_dim + hidden_dim, 4 * hidden_dim), gate order [i, f, g, o].
class Lstm : public Module {
 public:
  Lstm(size_t input_dim, size_t hidden_dim, Rng* rng);

  /// x: (T, input_dim) -> hidden states (T, hidden_dim).
  /// If reverse, processes the sequence right-to-left (output rows stay
  /// aligned with input rows).
  ag::Var Forward(const ag::Var& x, bool reverse = false) const;

  std::vector<ag::Var> Parameters() const override { return {w_, b_}; }

  size_t hidden_dim() const { return hidden_dim_; }

 private:
  size_t input_dim_;
  size_t hidden_dim_;
  ag::Var w_;  // (input+hidden, 4*hidden)
  ag::Var b_;  // (1, 4*hidden)
};

/// Bidirectional LSTM: concatenates forward and backward hidden states.
class BiLstm : public Module {
 public:
  BiLstm(size_t input_dim, size_t hidden_dim, Rng* rng);

  /// x: (T, input_dim) -> (T, 2 * hidden_dim).
  ag::Var Forward(const ag::Var& x) const;

  std::vector<ag::Var> Parameters() const override;

 private:
  Lstm fwd_;
  Lstm bwd_;
};

}  // namespace nerglob::nn

#endif  // NERGLOB_NN_RECURRENT_H_
