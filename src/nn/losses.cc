#include "nn/losses.h"

#include "common/check.h"

namespace nerglob::nn {

ag::Var TripletCosineLoss(const ag::Var& anchor, const ag::Var& positive,
                          const ag::Var& negative, float margin) {
  ag::Var d_ap = ag::CosineDistanceRows(anchor, positive);
  ag::Var d_an = ag::CosineDistanceRows(anchor, negative);
  return ag::Relu(ag::AddScalar(ag::Sub(d_ap, d_an), margin));
}

ag::Var SoftNearestNeighborLoss(const ag::Var& embeddings,
                                const std::vector<int>& labels,
                                float temperature) {
  const size_t b = embeddings.rows();
  NERGLOB_CHECK_EQ(labels.size(), b);
  NERGLOB_CHECK_GT(temperature, 0.0f);
  NERGLOB_CHECK_GE(b, 2u);

  // Pairwise cosine distances: D = 1 - N N^T.
  ag::Var n = ag::L2NormalizeRows(embeddings);
  ag::Var sim = ag::MatMul(n, ag::Transpose(n));
  ag::Var dist = ag::AddScalar(ag::Neg(sim), 1.0f);
  ag::Var kernel = ag::Exp(ag::ScalarMul(dist, -1.0f / temperature));

  // Masks: exclude the diagonal everywhere; numerator keeps same-label pairs.
  Matrix mask_all(b, b, 1.0f);
  Matrix mask_same(b, b, 0.0f);
  Matrix weights(b, 1, 0.0f);
  size_t valid = 0;
  for (size_t i = 0; i < b; ++i) {
    mask_all.At(i, i) = 0.0f;
    bool has_positive = false;
    for (size_t j = 0; j < b; ++j) {
      if (i != j && labels[i] == labels[j]) {
        mask_same.At(i, j) = 1.0f;
        has_positive = true;
      }
    }
    if (has_positive) {
      weights.At(i, 0) = 1.0f;
      ++valid;
    }
  }
  NERGLOB_CHECK_GT(valid, 0u)
      << "SoftNearestNeighborLoss batch has no anchor with a positive";
  weights.Scale(1.0f / static_cast<float>(valid));

  constexpr float kEps = 1e-12f;
  ag::Var num = ag::RowSum(ag::Mul(kernel, ag::Constant(std::move(mask_same))));
  ag::Var den = ag::RowSum(ag::Mul(kernel, ag::Constant(std::move(mask_all))));
  ag::Var log_ratio = ag::Sub(ag::Log(num, kEps), ag::Log(den, kEps));  // (b,1)
  ag::Var weighted = ag::Mul(log_ratio, ag::Constant(std::move(weights)));
  return ag::Neg(ag::SumAll(weighted));
}

}  // namespace nerglob::nn
