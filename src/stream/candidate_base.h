#ifndef NERGLOB_STREAM_CANDIDATE_BASE_H_
#define NERGLOB_STREAM_CANDIDATE_BASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.h"
#include "text/bio.h"

namespace nerglob::stream {

/// A reference to one mention of a surface form, with its local contextual
/// phrase embedding (Sec. V-B output).
struct MentionRecord {
  int64_t message_id = 0;
  size_t begin_token = 0;
  size_t end_token = 0;
  Matrix local_embedding;  ///< (1, d)
};

/// One entity candidate = one cluster of mentions of a surface form
/// (Sec. V-D: "every candidate cluster corresponds to a unique entity
/// candidate in the CandidateBase").
struct CandidateEntry {
  std::string surface;               ///< canonical lowercased surface form
  std::vector<size_t> mention_ids;   ///< indices into the pool for `surface`
  /// Classifier outcome: one of the L entity types, or none (non-entity).
  bool is_entity = false;
  text::EntityType type = text::EntityType::kPerson;
  float confidence = 0.0f;
};

/// CandidateBase: for each surface form, the growing pool of mention
/// records plus the current cluster -> candidate partition. Pools are
/// append-only so global embeddings can be updated incrementally as new
/// mentions arrive in the stream.
class CandidateBase {
 public:
  CandidateBase() = default;

  /// Appends a mention to the surface form's pool; returns its index.
  size_t AddMention(const std::string& surface, MentionRecord mention);

  /// The mention pool for a surface form (empty if unknown).
  const std::vector<MentionRecord>& Mentions(const std::string& surface) const;

  /// Replaces the candidate partition for a surface form (after
  /// re-clustering).
  void SetCandidates(const std::string& surface,
                     std::vector<CandidateEntry> candidates);

  const std::vector<CandidateEntry>& Candidates(const std::string& surface) const;

  /// All surface forms with at least one mention, in first-seen order.
  const std::vector<std::string>& surfaces() const { return surface_order_; }

  size_t TotalMentions() const;

  /// Running mean of the surface's local mention embeddings, maintained
  /// incrementally in O(d) per AddMention (Sec. V-D: "global embeddings can
  /// be incrementally updated by adding local embeddings into the pool").
  /// Empty matrix for unknown surfaces or pools without embeddings.
  Matrix MeanEmbedding(const std::string& surface) const;

 private:
  struct SurfaceData {
    std::vector<MentionRecord> mentions;
    std::vector<CandidateEntry> candidates;
    Matrix embedding_sum;       ///< sum of non-empty local embeddings
    size_t embedded_count = 0;  ///< how many mentions contributed
  };

  std::unordered_map<std::string, SurfaceData> by_surface_;
  std::vector<std::string> surface_order_;
};

}  // namespace nerglob::stream

#endif  // NERGLOB_STREAM_CANDIDATE_BASE_H_
