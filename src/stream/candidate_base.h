#ifndef NERGLOB_STREAM_CANDIDATE_BASE_H_
#define NERGLOB_STREAM_CANDIDATE_BASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"
#include "text/bio.h"

namespace nerglob::io {
class TensorWriter;
class TensorReader;
}  // namespace nerglob::io

namespace nerglob::stream {

/// A reference to one mention of a surface form, with its local contextual
/// phrase embedding (Sec. V-B output).
struct MentionRecord {
  int64_t message_id = 0;
  size_t begin_token = 0;
  size_t end_token = 0;
  Matrix local_embedding;  ///< (1, d)
};

/// One entity candidate = one cluster of mentions of a surface form
/// (Sec. V-D: "every candidate cluster corresponds to a unique entity
/// candidate in the CandidateBase").
struct CandidateEntry {
  std::string surface;               ///< canonical lowercased surface form
  std::vector<size_t> mention_ids;   ///< indices into the pool for `surface`
  /// Classifier outcome: one of the L entity types, or none (non-entity).
  bool is_entity = false;
  text::EntityType type = text::EntityType::kPerson;
  float confidence = 0.0f;
};

/// CandidateBase: for each surface form, the growing pool of mention
/// records plus the current cluster -> candidate partition. Pools are
/// append-only between eviction rounds so global embeddings can be updated
/// incrementally as new mentions arrive; windowed eviction
/// (RemoveMentionsOf / RemoveSurface) is the only operation that shrinks
/// or reindexes a pool.
///
/// Thread-safety: const methods may run concurrently with each other; all
/// mutating methods must be serialized against everything else. Candidate
/// mention_ids index into the pool at the time SetCandidates was called —
/// after RemoveMentionsOf compacts a pool, the affected surfaces must be
/// re-clustered before their Candidates() are dereferenced again (the
/// pipeline marks them dirty and refreshes within the same batch).
class CandidateBase {
 public:
  CandidateBase() = default;

  /// Appends a mention to the surface form's pool; returns its index.
  /// Amortized O(d) (running-sum update).
  size_t AddMention(const std::string& surface, MentionRecord mention);

  /// The mention pool for a surface form (empty if unknown). O(1).
  const std::vector<MentionRecord>& Mentions(const std::string& surface) const;

  /// True if the pool for `surface` already holds a mention with this
  /// (message id, token span) — the dedup test for eviction-triggered
  /// rescans. O(pool size).
  bool ContainsMention(const std::string& surface, int64_t message_id,
                       size_t begin_token, size_t end_token) const;

  /// Replaces the candidate partition for a surface form (after
  /// re-clustering).
  void SetCandidates(const std::string& surface,
                     std::vector<CandidateEntry> candidates);

  const std::vector<CandidateEntry>& Candidates(const std::string& surface) const;

  /// All surface forms with at least one mention, in first-seen order.
  const std::vector<std::string>& surfaces() const { return surface_order_; }

  size_t TotalMentions() const;

  /// Drops every mention whose message id is in `ids`, compacting the
  /// affected pools (indices shift!) and clearing their now-stale candidate
  /// partitions. Embedding running sums are recomputed from the surviving
  /// mentions in pool order, so the result is deterministic. Returns the
  /// surfaces whose pools changed (callers must re-cluster them).
  /// O(total mentions + changed pools * d).
  std::vector<std::string> RemoveMentionsOf(
      const std::unordered_set<int64_t>& ids);

  /// Erases a surface form entirely — pool, candidates, and its slot in
  /// surfaces(). Used when a surface's seed support drops to zero under
  /// eviction. O(number of surfaces) for the order compaction.
  void RemoveSurface(const std::string& surface);

  /// Running mean of the surface's local mention embeddings, maintained
  /// incrementally in O(d) per AddMention (Sec. V-D: "global embeddings can
  /// be incrementally updated by adding local embeddings into the pool").
  /// Empty matrix for unknown surfaces or pools without embeddings.
  Matrix MeanEmbedding(const std::string& surface) const;

  /// Approximate heap footprint in bytes (mention embeddings dominate).
  /// O(surfaces + total mentions).
  size_t MemoryUsageBytes() const;

  /// Appends the full store as one checksummed record
  /// (io::kTagCandidateBase), surfaces in first-seen order. Pools, cluster
  /// partitions, and the incrementally-maintained embedding sums are all
  /// stored verbatim, so a restored base is bit-identical to the saved one.
  Status Save(io::TensorWriter* writer) const;

  /// Restores a store saved with Save; `*this` is replaced only once the
  /// whole record validates.
  Status Load(io::TensorReader* reader);

 private:
  struct SurfaceData {
    std::vector<MentionRecord> mentions;
    std::vector<CandidateEntry> candidates;
    Matrix embedding_sum;       ///< sum of non-empty local embeddings
    size_t embedded_count = 0;  ///< how many mentions contributed
  };

  std::unordered_map<std::string, SurfaceData> by_surface_;
  std::vector<std::string> surface_order_;
};

}  // namespace nerglob::stream

#endif  // NERGLOB_STREAM_CANDIDATE_BASE_H_
