#ifndef NERGLOB_STREAM_MESSAGE_H_
#define NERGLOB_STREAM_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/bio.h"
#include "text/token.h"

namespace nerglob::stream {

/// One microblog message (tweet-sentence). Gold annotations are carried for
/// evaluation; unlabeled streams leave `gold_spans` empty. Message ids must
/// be unique within a stream — the TweetBase and the eviction bookkeeping
/// key on them.
struct Message {
  int64_t id = 0;
  std::string text;
  int topic_id = 0;
  /// Tokenization of `text` (filled by the generator or the pipeline).
  std::vector<text::Token> tokens;
  /// Gold entity spans over `tokens` (empty when unlabeled).
  std::vector<text::EntitySpan> gold_spans;
};

/// Replays a fixed message list as a stream of fixed-size batches
/// ("each iteration consists of a batch of incoming tweets", Sec. III).
///
/// Loop contract (used by StreamingSession::Run): call NextBatch() until it
/// returns an empty batch — an exhausted source yields empty vectors rather
/// than failing, so drivers need no separate HasNext() guard:
///
///   while (true) {
///     auto batch = source.NextBatch();
///     if (batch.empty()) break;
///     ...
///   }
///
/// Thread-safety: not thread-safe; one consumer at a time. All methods are
/// O(1) except NextBatch, which copies one batch of messages.
class StreamSource {
 public:
  StreamSource(std::vector<Message> messages, size_t batch_size);

  /// True while at least one more non-empty batch remains.
  bool HasNext() const { return next_ < messages_.size(); }

  /// Returns the next batch (the final batch may be short). On an
  /// exhausted source returns an empty batch — never fails.
  std::vector<Message> NextBatch();

  /// Rewinds to the beginning of the message list, so the same source can
  /// drive multiple passes (e.g. warm-up + measured benchmark runs).
  void Reset() { next_ = 0; }

  size_t num_messages() const { return messages_.size(); }
  size_t batch_size() const { return batch_size_; }

 private:
  std::vector<Message> messages_;
  size_t batch_size_;
  size_t next_ = 0;
};

}  // namespace nerglob::stream

#endif  // NERGLOB_STREAM_MESSAGE_H_
