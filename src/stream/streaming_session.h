#ifndef NERGLOB_STREAM_STREAMING_SESSION_H_
#define NERGLOB_STREAM_STREAMING_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/model_bundle.h"
#include "core/ner_globalizer.h"
#include "stream/message.h"

namespace nerglob::io {
class TensorReader;
class TensorWriter;
}  // namespace nerglob::io

namespace nerglob::stream {

/// Knobs for a bounded-memory streaming run.
struct StreamingSessionConfig {
  /// Pipeline configuration, including the eviction window
  /// (pipeline.window_messages; 0 keeps the session unbounded).
  core::NerGlobalizerConfig pipeline;
};

/// Aggregate outcome of StreamingSession::Run.
struct StreamingRunStats {
  size_t batches = 0;
  size_t messages = 0;
  size_t finalized_messages = 0;
  size_t evicted_messages = 0;
  core::PipelineMemoryUsage peak_memory;  ///< max total_bytes over batches
};

/// StreamingSession: the bounded-memory runtime driving a StreamSource
/// through the NER Globalizer pipeline (the Sec. III execution cycle as a
/// long-running service). Each Step pulls one batch, processes it, and
/// collects the predictions of messages that left the sliding window —
/// the *finalized* checkpoint stream. Flush (called automatically by Run)
/// finalizes whatever is still live when the source ends, so after a full
/// run `finalized()` holds exactly one entry per stream message, in
/// stream order.
///
/// State machine:
///
///   [idle] --Step: batch--> [processing] --evictions--> finalized buffer
///      ^                        |
///      |                        v
///      +---- Step: empty batch / Flush --> [flushed] (terminal until the
///                                          next Step resumes the stream)
///
/// Thread-safety: not thread-safe; drive a session from one thread at a
/// time. The pipeline parallelizes internally (see NerGlobalizer), and
/// serve::SessionManager multiplexes many sessions by pinning each one to
/// a single shard worker, preserving this contract.
class StreamingSession {
 public:
  /// `model`, `embedder`, and `classifier` must outlive the session and be
  /// trained already (same ownership contract as NerGlobalizer).
  StreamingSession(const lm::MicroBert* model,
                   const core::PhraseEmbedder* embedder,
                   const core::EntityClassifier* classifier,
                   StreamingSessionConfig config);

  /// Borrows a trained bundle (which must outlive the session). Any
  /// number of sessions may share one const bundle concurrently — each
  /// owns its whole mutable state.
  StreamingSession(const core::ModelBundle* bundle,
                   StreamingSessionConfig config);

  /// Pulls and processes one batch. Returns false (doing no work) when the
  /// source is exhausted — the loop contract is simply
  /// `while (session.Step(&source)) {}`. Cost: one ProcessBatch, bounded
  /// by batch size + window size when eviction is on.
  bool Step(StreamSource* source);

  /// Push-based twin of Step for drivers that deliver batches themselves
  /// (serve::SessionManager shard workers, network frontends): processes
  /// one already-assembled batch. An empty batch is a no-op returning
  /// false — the same end-of-stream signal Step derives from an exhausted
  /// source, so `Step(&s)` is exactly `ProcessBatch(s.NextBatch())`.
  bool ProcessBatch(const std::vector<Message>& batch);

  /// ProcessBatch with the encoder stage's results supplied by the caller
  /// (serve::SessionManager's cross-session batch scheduler). `encoded[i]`
  /// must be bitwise what the bundle's model would produce for
  /// `batch[i].tokens` — lm::MicroBert::EncodeMany guarantees this for any
  /// batch composition — so the session's state and finalized output stay
  /// byte-identical to the unbatched path (enforced by serve_test).
  bool ProcessBatchPreEncoded(const std::vector<Message>& batch,
                              std::vector<lm::EncodeResult> encoded);

  /// Drives the source to exhaustion, then Flush()es the remaining live
  /// window. Returns the aggregate stats.
  StreamingRunStats Run(StreamSource* source);

  /// Finalizes every message still live in the window (without evicting
  /// it), appending to the finalized buffer in stream order. Idempotent
  /// until the next Step. Use at end-of-stream or before a checkpoint.
  void Flush();

  /// All finalized predictions so far, in stream order: messages flushed
  /// by eviction as they left the window, plus (after Flush) the live
  /// remainder.
  const std::vector<core::FinalizedMessage>& finalized() const {
    return finalized_;
  }

  /// Moves the finalized buffer out (downstream consumers that persist
  /// checkpoints incrementally call this after every Step).
  std::vector<core::FinalizedMessage> TakeFinalized();

  /// Writes the complete session state — counters, the finalized buffer,
  /// and the pipeline's checkpoint — to `path`. A session restored from
  /// the file continues the stream bit-identically: its finalized output
  /// and Predictions() at every PipelineStage match an uninterrupted run.
  /// Crash-safe: the file is written via temp + fsync + atomic rename
  /// (io::WriteFileAtomically) with transient IO failures retried, so a
  /// crash mid-checkpoint leaves the previous bytes at `path`, never a
  /// torn file (docs/RELIABILITY.md).
  Status Checkpoint(const std::string& path) const;

  /// Restores a checkpoint written by Checkpoint. Two-phase at every
  /// layer: a corrupt, truncated, or mismatched file returns non-OK and
  /// leaves this session untouched. Transient read failures are retried
  /// (io::RetryPolicy). The session must have been built with the same
  /// models/bundle and config as the one that checkpointed.
  Status Restore(const std::string& path);

  /// Streams the checkpoint records into an already-open writer / out of
  /// an already-open reader — the building blocks CheckpointAll-style
  /// fleet checkpoints compose with their own framing and atomicity.
  /// RestoreFrom has the same two-phase commit contract as Restore.
  Status CheckpointTo(io::TensorWriter* writer) const;
  Status RestoreFrom(io::TensorReader* reader);

  size_t batches_processed() const { return batches_; }
  size_t messages_processed() const { return messages_; }

  /// Current stream-state footprint (see NerGlobalizer::MemoryUsage).
  core::PipelineMemoryUsage MemoryUsage() const { return pipeline_.MemoryUsage(); }

  const core::NerGlobalizer& pipeline() const { return pipeline_; }
  core::NerGlobalizer& pipeline() { return pipeline_; }

 private:
  /// Shared post-processing of both ProcessBatch flavors: drains the
  /// pipeline's finalized buffer and records stream metrics.
  void CollectBatchResults(size_t batch_messages);

  core::NerGlobalizer pipeline_;
  std::vector<core::FinalizedMessage> finalized_;
  size_t batches_ = 0;
  size_t messages_ = 0;
  bool flushed_ = false;
};

}  // namespace nerglob::stream

#endif  // NERGLOB_STREAM_STREAMING_SESSION_H_
