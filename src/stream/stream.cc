#include "common/check.h"
#include "stream/candidate_base.h"
#include "stream/message.h"
#include "stream/tweet_base.h"

namespace nerglob::stream {

StreamSource::StreamSource(std::vector<Message> messages, size_t batch_size)
    : messages_(std::move(messages)), batch_size_(batch_size) {
  NERGLOB_CHECK_GT(batch_size, 0u);
}

std::vector<Message> StreamSource::NextBatch() {
  NERGLOB_CHECK(HasNext());
  const size_t count = std::min(batch_size_, messages_.size() - next_);
  std::vector<Message> batch(messages_.begin() + static_cast<std::ptrdiff_t>(next_),
                             messages_.begin() + static_cast<std::ptrdiff_t>(next_ + count));
  next_ += count;
  return batch;
}

void TweetBase::Put(SentenceRecord record) {
  const int64_t id = record.message.id;
  auto it = records_.find(id);
  if (it == records_.end()) {
    order_.push_back(id);
    records_.emplace(id, std::move(record));
  } else {
    it->second = std::move(record);
  }
}

const SentenceRecord* TweetBase::Find(int64_t id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

SentenceRecord* TweetBase::FindMutable(int64_t id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

namespace {

// Leaked function-local statics: safe empty sentinels without static
// destruction ordering concerns.
const std::vector<MentionRecord>& EmptyMentions() {
  static const auto& kEmpty = *new std::vector<MentionRecord>();
  return kEmpty;
}

const std::vector<CandidateEntry>& EmptyCandidates() {
  static const auto& kEmpty = *new std::vector<CandidateEntry>();
  return kEmpty;
}

}  // namespace

size_t CandidateBase::AddMention(const std::string& surface,
                                 MentionRecord mention) {
  auto it = by_surface_.find(surface);
  if (it == by_surface_.end()) {
    surface_order_.push_back(surface);
    it = by_surface_.emplace(surface, SurfaceData{}).first;
  }
  SurfaceData& data = it->second;
  if (!mention.local_embedding.empty()) {
    if (data.embedded_count == 0) {
      data.embedding_sum = mention.local_embedding;
    } else {
      data.embedding_sum.AddInPlace(mention.local_embedding);
    }
    ++data.embedded_count;
  }
  data.mentions.push_back(std::move(mention));
  return data.mentions.size() - 1;
}

Matrix CandidateBase::MeanEmbedding(const std::string& surface) const {
  auto it = by_surface_.find(surface);
  if (it == by_surface_.end() || it->second.embedded_count == 0) return Matrix();
  Matrix mean = it->second.embedding_sum;
  mean.Scale(1.0f / static_cast<float>(it->second.embedded_count));
  return mean;
}

const std::vector<MentionRecord>& CandidateBase::Mentions(
    const std::string& surface) const {
  auto it = by_surface_.find(surface);
  return it == by_surface_.end() ? EmptyMentions() : it->second.mentions;
}

void CandidateBase::SetCandidates(const std::string& surface,
                                  std::vector<CandidateEntry> candidates) {
  auto it = by_surface_.find(surface);
  NERGLOB_CHECK(it != by_surface_.end())
      << "SetCandidates for unknown surface form: " << surface;
  it->second.candidates = std::move(candidates);
}

const std::vector<CandidateEntry>& CandidateBase::Candidates(
    const std::string& surface) const {
  auto it = by_surface_.find(surface);
  return it == by_surface_.end() ? EmptyCandidates() : it->second.candidates;
}

size_t CandidateBase::TotalMentions() const {
  size_t total = 0;
  for (const auto& [surface, data] : by_surface_) total += data.mentions.size();
  return total;
}

}  // namespace nerglob::stream
