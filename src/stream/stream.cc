#include "common/check.h"
#include "common/string_util.h"
#include "io/tensor_io.h"
#include "stream/candidate_base.h"
#include "stream/message.h"
#include "stream/tweet_base.h"

namespace nerglob::stream {

StreamSource::StreamSource(std::vector<Message> messages, size_t batch_size)
    : messages_(std::move(messages)), batch_size_(batch_size) {
  NERGLOB_CHECK_GT(batch_size, 0u);
}

// Exhaustion contract (relied on by StreamingSession::Run and by
// serve::SessionManager frontends that re-poll sources between Reset()s):
// once next_ reaches the end, every further NextBatch() returns an empty
// vector in O(1) — no copies, no partial batches, no failure path — and
// HasNext() stays false. A driver that keeps polling an exhausted source
// therefore does no work per poll and cannot spin on stale data; the only
// way to make the source productive again is Reset(), which rewinds to the
// first message and replays the *identical* batch sequence (same
// boundaries, same order). Pinned by StreamSourceTest.
// ExhaustedSourcePollsAreFreeAndResetReplaysIdentically.
std::vector<Message> StreamSource::NextBatch() {
  if (!HasNext()) return {};
  const size_t count = std::min(batch_size_, messages_.size() - next_);
  std::vector<Message> batch(messages_.begin() + static_cast<std::ptrdiff_t>(next_),
                             messages_.begin() + static_cast<std::ptrdiff_t>(next_ + count));
  next_ += count;
  return batch;
}

void TweetBase::Put(SentenceRecord record) {
  const int64_t id = record.message.id;
  auto it = records_.find(id);
  if (it == records_.end()) {
    order_.push_back(id);
    records_.emplace(id, std::move(record));
  } else {
    it->second = std::move(record);
  }
}

const SentenceRecord* TweetBase::Find(int64_t id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

SentenceRecord* TweetBase::FindMutable(int64_t id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<int64_t> TweetBase::EvictOldest(size_t count) {
  count = std::min(count, order_.size());
  std::vector<int64_t> evicted(order_.begin(),
                               order_.begin() + static_cast<std::ptrdiff_t>(count));
  for (int64_t id : evicted) records_.erase(id);
  order_.erase(order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(count));
  return evicted;
}

namespace {

void PutMessage(io::TensorWriter* w, const Message& msg) {
  w->PutI64(msg.id);
  w->PutString(msg.text);
  w->PutI64(msg.topic_id);
  w->PutU64(msg.tokens.size());
  for (const text::Token& tok : msg.tokens) {
    w->PutString(tok.text);
    w->PutString(tok.lower);
    w->PutString(tok.match);
    w->PutU64(tok.begin);
    w->PutU64(tok.end);
    w->PutU32(static_cast<uint32_t>(tok.kind));
  }
  w->PutU64(msg.gold_spans.size());
  for (const text::EntitySpan& span : msg.gold_spans) {
    w->PutU64(span.begin_token);
    w->PutU64(span.end_token);
    w->PutU32(static_cast<uint32_t>(span.type));
  }
}

bool GetEntityType(io::TensorReader* r, text::EntityType* type) {
  uint32_t raw = 0;
  if (!r->GetU32(&raw)) return false;
  if (raw >= static_cast<uint32_t>(text::kNumEntityTypes)) {
    // Enum range is validated even though the checksum already passed —
    // a handcrafted file must not produce out-of-range enum values.
    return false;
  }
  *type = static_cast<text::EntityType>(raw);
  return true;
}

bool GetMessage(io::TensorReader* r, Message* msg) {
  int64_t topic = 0;
  uint64_t num_tokens = 0, num_spans = 0;
  if (!r->GetI64(&msg->id) || !r->GetString(&msg->text) ||
      !r->GetI64(&topic) || !r->GetU64(&num_tokens)) {
    return false;
  }
  msg->topic_id = static_cast<int>(topic);
  if (num_tokens > r->RemainingInRecord()) return false;
  msg->tokens.resize(num_tokens);
  for (text::Token& tok : msg->tokens) {
    uint64_t begin = 0, end = 0;
    uint32_t kind = 0;
    if (!r->GetString(&tok.text) || !r->GetString(&tok.lower) ||
        !r->GetString(&tok.match) || !r->GetU64(&begin) || !r->GetU64(&end) ||
        !r->GetU32(&kind)) {
      return false;
    }
    if (kind > static_cast<uint32_t>(text::TokenKind::kPunct)) return false;
    tok.begin = begin;
    tok.end = end;
    tok.kind = static_cast<text::TokenKind>(kind);
  }
  if (!r->GetU64(&num_spans)) return false;
  if (num_spans > r->RemainingInRecord()) return false;
  msg->gold_spans.resize(num_spans);
  for (text::EntitySpan& span : msg->gold_spans) {
    uint64_t begin = 0, end = 0;
    if (!r->GetU64(&begin) || !r->GetU64(&end) ||
        !GetEntityType(r, &span.type)) {
      return false;
    }
    span.begin_token = begin;
    span.end_token = end;
  }
  return true;
}

}  // namespace

Status TweetBase::Save(io::TensorWriter* writer) const {
  writer->PutU64(order_.size());
  for (int64_t id : order_) {
    const SentenceRecord& rec = records_.at(id);
    PutMessage(writer, rec.message);
    writer->PutMatrix(rec.token_embeddings);
    writer->PutU64(rec.local_bio.size());
    for (int label : rec.local_bio) {
      writer->PutU32(static_cast<uint32_t>(label));
    }
    writer->PutU64(rec.mentions.size());
    for (const DetectedMention& m : rec.mentions) {
      writer->PutU64(m.begin_token);
      writer->PutU64(m.end_token);
      writer->PutU32(static_cast<uint32_t>(m.type));
    }
  }
  return writer->EndRecord(io::kTagTweetBase);
}

Status TweetBase::Load(io::TensorReader* reader) {
  NERGLOB_RETURN_IF_ERROR(reader->NextRecord(io::kTagTweetBase));
  auto fail = [&](const char* what) {
    return reader->status().ok()
               ? Status::InvalidArgument(StrFormat(
                     "'%s': corrupt tweet-base record (%s)",
                     reader->path().c_str(), what))
               : reader->status();
  };
  uint64_t count = 0;
  if (!reader->GetU64(&count)) return fail("count");
  TweetBase restored;
  for (uint64_t i = 0; i < count; ++i) {
    SentenceRecord rec;
    if (!GetMessage(reader, &rec.message)) return fail("message");
    if (!reader->GetMatrix(&rec.token_embeddings)) return fail("embeddings");
    uint64_t n = 0;
    if (!reader->GetU64(&n) || n > reader->RemainingInRecord()) {
      return fail("bio count");
    }
    rec.local_bio.resize(n);
    for (uint64_t k = 0; k < n; ++k) {
      uint32_t label = 0;
      if (!reader->GetU32(&label) ||
          label >= static_cast<uint32_t>(text::kNumBioLabels)) {
        return fail("bio label");
      }
      rec.local_bio[k] = static_cast<int>(label);
    }
    if (!reader->GetU64(&n) || n > reader->RemainingInRecord()) {
      return fail("mention count");
    }
    rec.mentions.resize(n);
    for (DetectedMention& m : rec.mentions) {
      uint64_t begin = 0, end = 0;
      if (!reader->GetU64(&begin) || !reader->GetU64(&end) ||
          !GetEntityType(reader, &m.type)) {
        return fail("mention");
      }
      m.begin_token = begin;
      m.end_token = end;
    }
    restored.Put(std::move(rec));
  }
  NERGLOB_RETURN_IF_ERROR(reader->ExpectRecordEnd());
  *this = std::move(restored);
  return Status::OK();
}

size_t TweetBase::MemoryUsageBytes() const {
  size_t bytes = sizeof(TweetBase) + order_.capacity() * sizeof(int64_t);
  for (const auto& [id, rec] : records_) {
    bytes += sizeof(int64_t) + sizeof(SentenceRecord);
    bytes += rec.token_embeddings.size() * sizeof(float);
    bytes += rec.local_bio.capacity() * sizeof(int);
    bytes += rec.mentions.capacity() * sizeof(DetectedMention);
    bytes += rec.message.text.capacity();
    bytes += rec.message.tokens.capacity() * sizeof(text::Token);
    for (const auto& tok : rec.message.tokens) {
      bytes += tok.text.capacity() + tok.lower.capacity() + tok.match.capacity();
    }
    bytes += rec.message.gold_spans.capacity() * sizeof(text::EntitySpan);
  }
  return bytes;
}

namespace {

// Leaked function-local statics: safe empty sentinels without static
// destruction ordering concerns.
const std::vector<MentionRecord>& EmptyMentions() {
  static const auto& kEmpty = *new std::vector<MentionRecord>();
  return kEmpty;
}

const std::vector<CandidateEntry>& EmptyCandidates() {
  static const auto& kEmpty = *new std::vector<CandidateEntry>();
  return kEmpty;
}

}  // namespace

size_t CandidateBase::AddMention(const std::string& surface,
                                 MentionRecord mention) {
  auto it = by_surface_.find(surface);
  if (it == by_surface_.end()) {
    surface_order_.push_back(surface);
    it = by_surface_.emplace(surface, SurfaceData{}).first;
  }
  SurfaceData& data = it->second;
  if (!mention.local_embedding.empty()) {
    if (data.embedded_count == 0) {
      data.embedding_sum = mention.local_embedding;
    } else {
      data.embedding_sum.AddInPlace(mention.local_embedding);
    }
    ++data.embedded_count;
  }
  data.mentions.push_back(std::move(mention));
  return data.mentions.size() - 1;
}

Matrix CandidateBase::MeanEmbedding(const std::string& surface) const {
  auto it = by_surface_.find(surface);
  if (it == by_surface_.end() || it->second.embedded_count == 0) return Matrix();
  Matrix mean = it->second.embedding_sum;
  mean.Scale(1.0f / static_cast<float>(it->second.embedded_count));
  return mean;
}

const std::vector<MentionRecord>& CandidateBase::Mentions(
    const std::string& surface) const {
  auto it = by_surface_.find(surface);
  return it == by_surface_.end() ? EmptyMentions() : it->second.mentions;
}

void CandidateBase::SetCandidates(const std::string& surface,
                                  std::vector<CandidateEntry> candidates) {
  auto it = by_surface_.find(surface);
  NERGLOB_CHECK(it != by_surface_.end())
      << "SetCandidates for unknown surface form: " << surface;
  it->second.candidates = std::move(candidates);
}

const std::vector<CandidateEntry>& CandidateBase::Candidates(
    const std::string& surface) const {
  auto it = by_surface_.find(surface);
  return it == by_surface_.end() ? EmptyCandidates() : it->second.candidates;
}

size_t CandidateBase::TotalMentions() const {
  size_t total = 0;
  for (const auto& [surface, data] : by_surface_) total += data.mentions.size();
  return total;
}

bool CandidateBase::ContainsMention(const std::string& surface,
                                    int64_t message_id, size_t begin_token,
                                    size_t end_token) const {
  auto it = by_surface_.find(surface);
  if (it == by_surface_.end()) return false;
  for (const MentionRecord& m : it->second.mentions) {
    if (m.message_id == message_id && m.begin_token == begin_token &&
        m.end_token == end_token) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> CandidateBase::RemoveMentionsOf(
    const std::unordered_set<int64_t>& ids) {
  std::vector<std::string> changed;
  if (ids.empty()) return changed;
  // Iterate in first-seen order so the returned list is deterministic.
  for (const std::string& surface : surface_order_) {
    SurfaceData& data = by_surface_.at(surface);
    bool any_removed = false;
    for (const MentionRecord& m : data.mentions) {
      if (ids.count(m.message_id) > 0) {
        any_removed = true;
        break;
      }
    }
    if (!any_removed) continue;
    std::vector<MentionRecord> kept;
    kept.reserve(data.mentions.size());
    for (MentionRecord& m : data.mentions) {
      if (ids.count(m.message_id) == 0) kept.push_back(std::move(m));
    }
    data.mentions = std::move(kept);
    // Recompute the running sum from the survivors in pool order — the same
    // accumulation order a from-scratch rebuild of the window would use.
    data.embedding_sum = Matrix();
    data.embedded_count = 0;
    for (const MentionRecord& m : data.mentions) {
      if (m.local_embedding.empty()) continue;
      if (data.embedded_count == 0) {
        data.embedding_sum = m.local_embedding;
      } else {
        data.embedding_sum.AddInPlace(m.local_embedding);
      }
      ++data.embedded_count;
    }
    // Indices shifted: the old partition is meaningless until re-clustered.
    data.candidates.clear();
    changed.push_back(surface);
  }
  return changed;
}

void CandidateBase::RemoveSurface(const std::string& surface) {
  if (by_surface_.erase(surface) == 0) return;
  for (auto it = surface_order_.begin(); it != surface_order_.end(); ++it) {
    if (*it == surface) {
      surface_order_.erase(it);
      break;
    }
  }
}

Status CandidateBase::Save(io::TensorWriter* writer) const {
  writer->PutU64(surface_order_.size());
  for (const std::string& surface : surface_order_) {
    const SurfaceData& data = by_surface_.at(surface);
    writer->PutString(surface);
    writer->PutU64(data.mentions.size());
    for (const MentionRecord& m : data.mentions) {
      writer->PutI64(m.message_id);
      writer->PutU64(m.begin_token);
      writer->PutU64(m.end_token);
      writer->PutMatrix(m.local_embedding);
    }
    // CandidateEntry::surface always equals the pool's surface, so only
    // the partition structure is stored.
    writer->PutU64(data.candidates.size());
    for (const CandidateEntry& c : data.candidates) {
      writer->PutU64(c.mention_ids.size());
      for (size_t id : c.mention_ids) writer->PutU64(id);
      writer->PutU32(c.is_entity ? 1 : 0);
      writer->PutU32(static_cast<uint32_t>(c.type));
      writer->PutF32(c.confidence);
    }
    writer->PutMatrix(data.embedding_sum);
    writer->PutU64(data.embedded_count);
  }
  return writer->EndRecord(io::kTagCandidateBase);
}

Status CandidateBase::Load(io::TensorReader* reader) {
  NERGLOB_RETURN_IF_ERROR(reader->NextRecord(io::kTagCandidateBase));
  auto fail = [&](const char* what) {
    return reader->status().ok()
               ? Status::InvalidArgument(StrFormat(
                     "'%s': corrupt candidate-base record (%s)",
                     reader->path().c_str(), what))
               : reader->status();
  };
  uint64_t num_surfaces = 0;
  if (!reader->GetU64(&num_surfaces)) return fail("surface count");
  CandidateBase restored;
  for (uint64_t i = 0; i < num_surfaces; ++i) {
    std::string surface;
    uint64_t num_mentions = 0;
    if (!reader->GetString(&surface) || !reader->GetU64(&num_mentions) ||
        num_mentions > reader->RemainingInRecord()) {
      return fail("surface header");
    }
    SurfaceData data;
    data.mentions.resize(num_mentions);
    for (MentionRecord& m : data.mentions) {
      uint64_t begin = 0, end = 0;
      if (!reader->GetI64(&m.message_id) || !reader->GetU64(&begin) ||
          !reader->GetU64(&end) || !reader->GetMatrix(&m.local_embedding)) {
        return fail("mention");
      }
      m.begin_token = begin;
      m.end_token = end;
    }
    uint64_t num_candidates = 0;
    if (!reader->GetU64(&num_candidates) ||
        num_candidates > reader->RemainingInRecord()) {
      return fail("candidate count");
    }
    data.candidates.resize(num_candidates);
    for (CandidateEntry& c : data.candidates) {
      c.surface = surface;
      uint64_t num_ids = 0;
      if (!reader->GetU64(&num_ids) ||
          num_ids > reader->RemainingInRecord()) {
        return fail("mention-id count");
      }
      c.mention_ids.resize(num_ids);
      for (size_t& id : c.mention_ids) {
        uint64_t raw = 0;
        if (!reader->GetU64(&raw) || raw >= data.mentions.size()) {
          return fail("mention id out of range");
        }
        id = static_cast<size_t>(raw);
      }
      uint32_t is_entity = 0;
      if (!reader->GetU32(&is_entity) || !GetEntityType(reader, &c.type) ||
          !reader->GetF32(&c.confidence)) {
        return fail("candidate");
      }
      c.is_entity = is_entity != 0;
    }
    uint64_t embedded_count = 0;
    if (!reader->GetMatrix(&data.embedding_sum) ||
        !reader->GetU64(&embedded_count)) {
      return fail("embedding sum");
    }
    data.embedded_count = static_cast<size_t>(embedded_count);
    restored.surface_order_.push_back(surface);
    restored.by_surface_.emplace(std::move(surface), std::move(data));
  }
  NERGLOB_RETURN_IF_ERROR(reader->ExpectRecordEnd());
  *this = std::move(restored);
  return Status::OK();
}

size_t CandidateBase::MemoryUsageBytes() const {
  size_t bytes = sizeof(CandidateBase);
  for (const std::string& surface : surface_order_) bytes += surface.capacity();
  for (const auto& [surface, data] : by_surface_) {
    bytes += surface.capacity() + sizeof(SurfaceData);
    bytes += data.mentions.capacity() * sizeof(MentionRecord);
    for (const MentionRecord& m : data.mentions) {
      bytes += m.local_embedding.size() * sizeof(float);
    }
    bytes += data.candidates.capacity() * sizeof(CandidateEntry);
    for (const CandidateEntry& c : data.candidates) {
      bytes += c.surface.capacity() + c.mention_ids.capacity() * sizeof(size_t);
    }
    bytes += data.embedding_sum.size() * sizeof(float);
  }
  return bytes;
}

}  // namespace nerglob::stream
