#include "common/check.h"
#include "stream/candidate_base.h"
#include "stream/message.h"
#include "stream/tweet_base.h"

namespace nerglob::stream {

StreamSource::StreamSource(std::vector<Message> messages, size_t batch_size)
    : messages_(std::move(messages)), batch_size_(batch_size) {
  NERGLOB_CHECK_GT(batch_size, 0u);
}

std::vector<Message> StreamSource::NextBatch() {
  if (!HasNext()) return {};
  const size_t count = std::min(batch_size_, messages_.size() - next_);
  std::vector<Message> batch(messages_.begin() + static_cast<std::ptrdiff_t>(next_),
                             messages_.begin() + static_cast<std::ptrdiff_t>(next_ + count));
  next_ += count;
  return batch;
}

void TweetBase::Put(SentenceRecord record) {
  const int64_t id = record.message.id;
  auto it = records_.find(id);
  if (it == records_.end()) {
    order_.push_back(id);
    records_.emplace(id, std::move(record));
  } else {
    it->second = std::move(record);
  }
}

const SentenceRecord* TweetBase::Find(int64_t id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

SentenceRecord* TweetBase::FindMutable(int64_t id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<int64_t> TweetBase::EvictOldest(size_t count) {
  count = std::min(count, order_.size());
  std::vector<int64_t> evicted(order_.begin(),
                               order_.begin() + static_cast<std::ptrdiff_t>(count));
  for (int64_t id : evicted) records_.erase(id);
  order_.erase(order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(count));
  return evicted;
}

size_t TweetBase::MemoryUsageBytes() const {
  size_t bytes = sizeof(TweetBase) + order_.capacity() * sizeof(int64_t);
  for (const auto& [id, rec] : records_) {
    bytes += sizeof(int64_t) + sizeof(SentenceRecord);
    bytes += rec.token_embeddings.size() * sizeof(float);
    bytes += rec.local_bio.capacity() * sizeof(int);
    bytes += rec.mentions.capacity() * sizeof(DetectedMention);
    bytes += rec.message.text.capacity();
    bytes += rec.message.tokens.capacity() * sizeof(text::Token);
    for (const auto& tok : rec.message.tokens) {
      bytes += tok.text.capacity() + tok.lower.capacity() + tok.match.capacity();
    }
    bytes += rec.message.gold_spans.capacity() * sizeof(text::EntitySpan);
  }
  return bytes;
}

namespace {

// Leaked function-local statics: safe empty sentinels without static
// destruction ordering concerns.
const std::vector<MentionRecord>& EmptyMentions() {
  static const auto& kEmpty = *new std::vector<MentionRecord>();
  return kEmpty;
}

const std::vector<CandidateEntry>& EmptyCandidates() {
  static const auto& kEmpty = *new std::vector<CandidateEntry>();
  return kEmpty;
}

}  // namespace

size_t CandidateBase::AddMention(const std::string& surface,
                                 MentionRecord mention) {
  auto it = by_surface_.find(surface);
  if (it == by_surface_.end()) {
    surface_order_.push_back(surface);
    it = by_surface_.emplace(surface, SurfaceData{}).first;
  }
  SurfaceData& data = it->second;
  if (!mention.local_embedding.empty()) {
    if (data.embedded_count == 0) {
      data.embedding_sum = mention.local_embedding;
    } else {
      data.embedding_sum.AddInPlace(mention.local_embedding);
    }
    ++data.embedded_count;
  }
  data.mentions.push_back(std::move(mention));
  return data.mentions.size() - 1;
}

Matrix CandidateBase::MeanEmbedding(const std::string& surface) const {
  auto it = by_surface_.find(surface);
  if (it == by_surface_.end() || it->second.embedded_count == 0) return Matrix();
  Matrix mean = it->second.embedding_sum;
  mean.Scale(1.0f / static_cast<float>(it->second.embedded_count));
  return mean;
}

const std::vector<MentionRecord>& CandidateBase::Mentions(
    const std::string& surface) const {
  auto it = by_surface_.find(surface);
  return it == by_surface_.end() ? EmptyMentions() : it->second.mentions;
}

void CandidateBase::SetCandidates(const std::string& surface,
                                  std::vector<CandidateEntry> candidates) {
  auto it = by_surface_.find(surface);
  NERGLOB_CHECK(it != by_surface_.end())
      << "SetCandidates for unknown surface form: " << surface;
  it->second.candidates = std::move(candidates);
}

const std::vector<CandidateEntry>& CandidateBase::Candidates(
    const std::string& surface) const {
  auto it = by_surface_.find(surface);
  return it == by_surface_.end() ? EmptyCandidates() : it->second.candidates;
}

size_t CandidateBase::TotalMentions() const {
  size_t total = 0;
  for (const auto& [surface, data] : by_surface_) total += data.mentions.size();
  return total;
}

bool CandidateBase::ContainsMention(const std::string& surface,
                                    int64_t message_id, size_t begin_token,
                                    size_t end_token) const {
  auto it = by_surface_.find(surface);
  if (it == by_surface_.end()) return false;
  for (const MentionRecord& m : it->second.mentions) {
    if (m.message_id == message_id && m.begin_token == begin_token &&
        m.end_token == end_token) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> CandidateBase::RemoveMentionsOf(
    const std::unordered_set<int64_t>& ids) {
  std::vector<std::string> changed;
  if (ids.empty()) return changed;
  // Iterate in first-seen order so the returned list is deterministic.
  for (const std::string& surface : surface_order_) {
    SurfaceData& data = by_surface_.at(surface);
    bool any_removed = false;
    for (const MentionRecord& m : data.mentions) {
      if (ids.count(m.message_id) > 0) {
        any_removed = true;
        break;
      }
    }
    if (!any_removed) continue;
    std::vector<MentionRecord> kept;
    kept.reserve(data.mentions.size());
    for (MentionRecord& m : data.mentions) {
      if (ids.count(m.message_id) == 0) kept.push_back(std::move(m));
    }
    data.mentions = std::move(kept);
    // Recompute the running sum from the survivors in pool order — the same
    // accumulation order a from-scratch rebuild of the window would use.
    data.embedding_sum = Matrix();
    data.embedded_count = 0;
    for (const MentionRecord& m : data.mentions) {
      if (m.local_embedding.empty()) continue;
      if (data.embedded_count == 0) {
        data.embedding_sum = m.local_embedding;
      } else {
        data.embedding_sum.AddInPlace(m.local_embedding);
      }
      ++data.embedded_count;
    }
    // Indices shifted: the old partition is meaningless until re-clustered.
    data.candidates.clear();
    changed.push_back(surface);
  }
  return changed;
}

void CandidateBase::RemoveSurface(const std::string& surface) {
  if (by_surface_.erase(surface) == 0) return;
  for (auto it = surface_order_.begin(); it != surface_order_.end(); ++it) {
    if (*it == surface) {
      surface_order_.erase(it);
      break;
    }
  }
}

size_t CandidateBase::MemoryUsageBytes() const {
  size_t bytes = sizeof(CandidateBase);
  for (const std::string& surface : surface_order_) bytes += surface.capacity();
  for (const auto& [surface, data] : by_surface_) {
    bytes += surface.capacity() + sizeof(SurfaceData);
    bytes += data.mentions.capacity() * sizeof(MentionRecord);
    for (const MentionRecord& m : data.mentions) {
      bytes += m.local_embedding.size() * sizeof(float);
    }
    bytes += data.candidates.capacity() * sizeof(CandidateEntry);
    for (const CandidateEntry& c : data.candidates) {
      bytes += c.surface.capacity() + c.mention_ids.capacity() * sizeof(size_t);
    }
    bytes += data.embedding_sum.size() * sizeof(float);
  }
  return bytes;
}

}  // namespace nerglob::stream
