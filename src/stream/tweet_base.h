#ifndef NERGLOB_STREAM_TWEET_BASE_H_
#define NERGLOB_STREAM_TWEET_BASE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "stream/message.h"
#include "tensor/matrix.h"

namespace nerglob::io {
class TensorWriter;
class TensorReader;
}  // namespace nerglob::io

namespace nerglob::stream {

/// A mention detected in a sentence: token span + (possibly revised) type.
struct DetectedMention {
  size_t begin_token = 0;
  size_t end_token = 0;
  text::EntityType type = text::EntityType::kPerson;

  friend bool operator==(const DetectedMention& a, const DetectedMention& b) {
    return a.begin_token == b.begin_token && a.end_token == b.end_token &&
           a.type == b.type;
  }
};

/// Per-sentence record stored after Local NER (Sec. IV): the message, its
/// entity-aware token embeddings (penultimate-layer outputs), the local BIO
/// labels, and the mention list that Global NER later rewrites.
struct SentenceRecord {
  Message message;
  Matrix token_embeddings;      ///< (num_tokens, d)
  std::vector<int> local_bio;   ///< Local NER label per token
  std::vector<DetectedMention> mentions;  ///< final output mentions
};

/// TweetBase: sentence records indexed by message id. The paper indexes by
/// (tweet id, sentence id); messages here are single sentences so a flat
/// id suffices.
///
/// Thread-safety: const methods (Find, size, ids, MemoryUsageBytes) may run
/// concurrently with each other; Put/FindMutable/EvictOldest must be
/// serialized against everything else. The pipeline writes on the batch
/// thread and only parallelizes read-only scans.
class TweetBase {
 public:
  TweetBase() = default;

  /// Adds a record; replaces any existing record with the same id.
  /// Amortized O(1) plus the record move.
  void Put(SentenceRecord record);

  /// nullptr if absent. Amortized O(1).
  const SentenceRecord* Find(int64_t id) const;
  SentenceRecord* FindMutable(int64_t id);

  size_t size() const { return order_.size(); }

  /// Ids in insertion order (stream order). Eviction removes ids from the
  /// front, so this is always the live window, oldest first.
  const std::vector<int64_t>& ids() const { return order_; }

  /// Removes the `count` oldest records (fewer if the base is smaller) and
  /// returns their ids, oldest first. O(count + remaining ids) per call —
  /// the id order is compacted once per eviction round, not per id.
  std::vector<int64_t> EvictOldest(size_t count);

  /// Approximate heap footprint in bytes: token embeddings dominate; the
  /// estimate also counts message text/tokens and BIO labels. O(records).
  size_t MemoryUsageBytes() const;

  /// Appends the full store as one checksummed record (io::kTagTweetBase),
  /// records in insertion order. Part of StreamState checkpointing.
  Status Save(io::TensorWriter* writer) const;

  /// Restores a store saved with Save. Two-phase: `*this` is replaced only
  /// once the whole record validates, so a corrupt checkpoint leaves the
  /// store untouched.
  Status Load(io::TensorReader* reader);

 private:
  std::unordered_map<int64_t, SentenceRecord> records_;
  std::vector<int64_t> order_;
};

}  // namespace nerglob::stream

#endif  // NERGLOB_STREAM_TWEET_BASE_H_
