#include "stream/streaming_session.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/string_util.h"
#include "io/checkpoint_io.h"
#include "io/tensor_io.h"

namespace nerglob::stream {

StreamingSession::StreamingSession(const lm::MicroBert* model,
                                   const core::PhraseEmbedder* embedder,
                                   const core::EntityClassifier* classifier,
                                   StreamingSessionConfig config)
    : pipeline_(model, embedder, classifier, config.pipeline) {}

StreamingSession::StreamingSession(const core::ModelBundle* bundle,
                                   StreamingSessionConfig config)
    : pipeline_(bundle, config.pipeline) {}

bool StreamingSession::Step(StreamSource* source) {
  return ProcessBatch(source->NextBatch());
}

bool StreamingSession::ProcessBatch(const std::vector<Message>& batch) {
  if (batch.empty()) return false;
  flushed_ = false;
  messages_ += batch.size();
  ++batches_;
  pipeline_.ProcessBatch(batch);
  CollectBatchResults(batch.size());
  return true;
}

bool StreamingSession::ProcessBatchPreEncoded(
    const std::vector<Message>& batch,
    std::vector<lm::EncodeResult> encoded) {
  if (batch.empty()) return false;
  flushed_ = false;
  messages_ += batch.size();
  ++batches_;
  pipeline_.ProcessBatchPreEncoded(batch, std::move(encoded));
  CollectBatchResults(batch.size());
  return true;
}

void StreamingSession::CollectBatchResults(size_t batch_messages) {
  // Drain eviction checkpoints in stream order.
  for (core::FinalizedMessage& f : pipeline_.TakeFinalized()) {
    finalized_.push_back(std::move(f));
  }
  if (metrics::Enabled()) {
    auto& registry = metrics::MetricsRegistry::Global();
    static metrics::Counter* const batches =
        registry.GetCounter("stream.batches_total");
    static metrics::Counter* const messages =
        registry.GetCounter("stream.messages_total");
    batches->Increment();
    messages->Increment(batch_messages);
  }
}

StreamingRunStats StreamingSession::Run(StreamSource* source) {
  core::PipelineMemoryUsage peak;
  while (Step(source)) {
    const core::PipelineMemoryUsage usage = pipeline_.MemoryUsage();
    if (usage.total_bytes > peak.total_bytes) peak = usage;
  }
  Flush();
  StreamingRunStats stats;
  stats.batches = batches_;
  stats.messages = messages_;
  stats.finalized_messages = finalized_.size();
  stats.evicted_messages = pipeline_.evicted_messages();
  stats.peak_memory = peak;
  return stats;
}

void StreamingSession::Flush() {
  if (flushed_) return;
  flushed_ = true;
  const std::vector<int64_t>& live = pipeline_.message_ids();
  std::vector<std::vector<text::EntitySpan>> predictions =
      pipeline_.Predictions(core::PipelineStage::kFullGlobal);
  for (size_t i = 0; i < live.size(); ++i) {
    finalized_.push_back({live[i], std::move(predictions[i])});
  }
}

std::vector<core::FinalizedMessage> StreamingSession::TakeFinalized() {
  std::vector<core::FinalizedMessage> out;
  out.swap(finalized_);
  return out;
}

Status StreamingSession::Checkpoint(const std::string& path) const {
  return io::WriteFileAtomically(
      path, [this](io::TensorWriter* writer) { return CheckpointTo(writer); });
}

Status StreamingSession::CheckpointTo(io::TensorWriter* writer_ptr) const {
  io::TensorWriter& writer = *writer_ptr;
  writer.PutU64(batches_);
  writer.PutU64(messages_);
  writer.PutU32(flushed_ ? 1 : 0);
  writer.PutU64(finalized_.size());
  for (const core::FinalizedMessage& fm : finalized_) {
    writer.PutI64(fm.message_id);
    writer.PutU64(fm.spans.size());
    for (const text::EntitySpan& span : fm.spans) {
      writer.PutU64(span.begin_token);
      writer.PutU64(span.end_token);
      writer.PutU32(static_cast<uint32_t>(span.type));
    }
  }
  NERGLOB_RETURN_IF_ERROR(writer.EndRecord(io::kTagSession));
  return pipeline_.Checkpoint(&writer);
}

Status StreamingSession::Restore(const std::string& path) {
  // Whole-file retry: a transient read failure (or an injected
  // io.open_read / io.read fault) restarts the restore; RestoreFrom's
  // two-phase commit guarantees a failed attempt left *this untouched.
  return io::RetryPolicy::FromEnv().Run(
      "StreamingSession::Restore", [&]() -> Status {
        io::TensorReader reader(path, /*inject_faults=*/true);
        return RestoreFrom(&reader);
      });
}

Status StreamingSession::RestoreFrom(io::TensorReader* reader_ptr) {
  io::TensorReader& reader = *reader_ptr;
  const std::string& path = reader.path();
  NERGLOB_RETURN_IF_ERROR(reader.NextRecord(io::kTagSession));
  auto fail = [&](const char* what) {
    return reader.status().ok()
               ? Status::InvalidArgument(
                     StrFormat("'%s': corrupt session record (%s)",
                               path.c_str(), what))
               : reader.status();
  };
  uint64_t batches = 0, messages = 0, count = 0;
  uint32_t flushed = 0;
  if (!reader.GetU64(&batches) || !reader.GetU64(&messages) ||
      !reader.GetU32(&flushed) || !reader.GetU64(&count) ||
      count > reader.RemainingInRecord()) {
    return fail("header");
  }
  std::vector<core::FinalizedMessage> finalized(count);
  for (core::FinalizedMessage& fm : finalized) {
    uint64_t num_spans = 0;
    if (!reader.GetI64(&fm.message_id) || !reader.GetU64(&num_spans) ||
        num_spans > reader.RemainingInRecord()) {
      return fail("finalized message");
    }
    fm.spans.resize(num_spans);
    for (text::EntitySpan& span : fm.spans) {
      uint64_t begin = 0, end = 0;
      uint32_t type = 0;
      if (!reader.GetU64(&begin) || !reader.GetU64(&end) ||
          !reader.GetU32(&type) ||
          type >= static_cast<uint32_t>(text::kNumEntityTypes)) {
        return fail("finalized span");
      }
      span.begin_token = begin;
      span.end_token = end;
      span.type = static_cast<text::EntityType>(type);
    }
  }
  NERGLOB_RETURN_IF_ERROR(reader.ExpectRecordEnd());
  // Pipeline restore is two-phase; commit the session fields only after
  // it succeeds so a bad file leaves this session fully untouched.
  NERGLOB_RETURN_IF_ERROR(pipeline_.Restore(&reader));
  batches_ = static_cast<size_t>(batches);
  messages_ = static_cast<size_t>(messages);
  flushed_ = flushed != 0;
  finalized_ = std::move(finalized);
  return Status::OK();
}

}  // namespace nerglob::stream
