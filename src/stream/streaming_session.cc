#include "stream/streaming_session.h"

#include <algorithm>

#include "common/metrics.h"

namespace nerglob::stream {

StreamingSession::StreamingSession(const lm::MicroBert* model,
                                   const core::PhraseEmbedder* embedder,
                                   const core::EntityClassifier* classifier,
                                   StreamingSessionConfig config)
    : pipeline_(model, embedder, classifier, config.pipeline) {}

bool StreamingSession::Step(StreamSource* source) {
  std::vector<Message> batch = source->NextBatch();
  if (batch.empty()) return false;
  flushed_ = false;
  messages_ += batch.size();
  ++batches_;
  pipeline_.ProcessBatch(batch);
  // Drain eviction checkpoints in stream order.
  for (core::FinalizedMessage& f : pipeline_.TakeFinalized()) {
    finalized_.push_back(std::move(f));
  }
  if (metrics::Enabled()) {
    auto& registry = metrics::MetricsRegistry::Global();
    static metrics::Counter* const batches =
        registry.GetCounter("stream.batches_total");
    static metrics::Counter* const messages =
        registry.GetCounter("stream.messages_total");
    batches->Increment();
    messages->Increment(batch.size());
  }
  return true;
}

StreamingRunStats StreamingSession::Run(StreamSource* source) {
  core::PipelineMemoryUsage peak;
  while (Step(source)) {
    const core::PipelineMemoryUsage usage = pipeline_.MemoryUsage();
    if (usage.total_bytes > peak.total_bytes) peak = usage;
  }
  Flush();
  StreamingRunStats stats;
  stats.batches = batches_;
  stats.messages = messages_;
  stats.finalized_messages = finalized_.size();
  stats.evicted_messages = pipeline_.evicted_messages();
  stats.peak_memory = peak;
  return stats;
}

void StreamingSession::Flush() {
  if (flushed_) return;
  flushed_ = true;
  const std::vector<int64_t>& live = pipeline_.message_ids();
  std::vector<std::vector<text::EntitySpan>> predictions =
      pipeline_.Predictions(core::PipelineStage::kFullGlobal);
  for (size_t i = 0; i < live.size(); ++i) {
    finalized_.push_back({live[i], std::move(predictions[i])});
  }
}

std::vector<core::FinalizedMessage> StreamingSession::TakeFinalized() {
  std::vector<core::FinalizedMessage> out;
  out.swap(finalized_);
  return out;
}

}  // namespace nerglob::stream
