#include "lm/micro_bert.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/check.h"
#include "lm/encode_cache.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "nn/optimizer.h"
#include "tensor/kernels.h"
#include "text/tokenizer.h"

namespace nerglob::lm {

namespace {

constexpr size_t kNumTokenKinds = 7;

/// Matching form used for subword lookup: normalized (elongation-squeezed)
/// match text; URLs and mentions collapse to sentinel words so the model
/// learns one representation per class.
std::string LookupForm(const text::Token& token) {
  switch (token.kind) {
    case text::TokenKind::kUrl:
      return "<url>";
    case text::TokenKind::kMention:
      return "<mention>";
    case text::TokenKind::kNumber:
      return "<number>";
    default:
      return text::SqueezeElongation(token.match);
  }
}

/// Process-wide serial for cache identities. Starts at 1 so 0 never names
/// a live model (a default EncodeKey can't alias one).
uint64_t NextModelVersion() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

MicroBert::MicroBert(const MicroBertConfig& config, uint64_t seed)
    : config_(config), model_version_(NextModelVersion()),
      subwords_(config.subword_buckets), dropout_rng_(seed ^ 0x9e37ULL) {
  Rng rng(seed);
  subword_table_ = std::make_unique<nn::Embedding>(config.subword_buckets,
                                                   config.d_model, &rng);
  position_table_ =
      std::make_unique<nn::Embedding>(config.max_seq_len, config.d_model, &rng);
  kind_table_ =
      std::make_unique<nn::Embedding>(kNumTokenKinds, config.d_model, &rng);
  for (size_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<nn::TransformerEncoderLayer>(
        config.d_model, config.num_heads, config.ff_mult, config.dropout, &rng));
  }
  final_norm_ = std::make_unique<nn::LayerNorm>(config.d_model);
  head_ = std::make_unique<nn::Linear>(config.d_model,
                                       static_cast<size_t>(config.num_labels), &rng);
}

ag::Var MicroBert::EmbedTokens(const std::vector<text::Token>& tokens) const {
  const size_t t_len = std::min(tokens.size(), config_.max_seq_len);
  NERGLOB_CHECK_GT(t_len, 0u);
  std::vector<ag::Var> rows;
  rows.reserve(t_len);
  std::vector<int> positions(t_len);
  std::vector<int> kinds(t_len);
  for (size_t t = 0; t < t_len; ++t) {
    const std::vector<int> sub_ids = subwords_.SubwordIds(LookupForm(tokens[t]));
    // Token embedding = mean of its subword bucket embeddings.
    rows.push_back(ag::MeanRows(subword_table_->Forward(sub_ids)));
    positions[t] = static_cast<int>(t);
    kinds[t] = static_cast<int>(tokens[t].kind);
  }
  ag::Var x = ag::ConcatRows(rows);
  x = ag::Add(x, position_table_->Forward(positions));
  x = ag::Add(x, kind_table_->Forward(kinds));
  return x;
}

void MicroBert::EmbedTokensInto(const std::vector<text::Token>& tokens,
                                Matrix* x) const {
  const size_t t_len = std::min(tokens.size(), config_.max_seq_len);
  NERGLOB_CHECK_GT(t_len, 0u);
  const size_t d = config_.d_model;
  x->Reshape(t_len, d);
  const Matrix& sub = subword_table_->table_value();
  const Matrix& pos = position_table_->table_value();
  const Matrix& kind = kind_table_->table_value();
  const kern::KernelTable& kt = kern::Active();
  std::vector<int> ids;  // reused across tokens
  std::string marked;
  for (size_t t = 0; t < t_len; ++t) {
    subwords_.SubwordIdsInto(LookupForm(tokens[t]), &ids, &marked);
    float* row = x->Row(t);
    std::fill(row, row + d, 0.0f);
    // Mean of the gathered subword rows, accumulated in ascending id order
    // with one trailing scale — the exact MeanRows(GatherRows(...)) value
    // sequence, so the row matches EmbedTokens bit-for-bit.
    for (const int id : ids) {
      kt.add_inplace(row, sub.Row(static_cast<size_t>(id)), d);
    }
    kt.scale(row, 1.0f / static_cast<float>(ids.size()), d);
    // Left-associative (mean + position) + kind, like the two ag::Adds.
    kt.add_inplace(row, pos.Row(t), d);
    kt.add_inplace(row, kind.Row(static_cast<size_t>(tokens[t].kind)), d);
  }
}

MicroBert::ForwardResult MicroBert::Forward(
    const std::vector<text::Token>& tokens, bool training,
    Rng* dropout_rng) const {
  ag::Var x = EmbedTokens(tokens);
  for (const auto& layer : layers_) {
    x = layer->Forward(x, training, dropout_rng);
  }
  ag::Var embeddings = final_norm_->Forward(x);
  ag::Var logits = head_->Forward(embeddings);
  return {embeddings, logits};
}

void MicroBert::BumpModelVersion() { model_version_ = NextModelVersion(); }

void MicroBert::BuildEncodeKey(const std::vector<text::Token>& tokens,
                               EncodeKey* key) const {
  const size_t t_len = std::min(tokens.size(), config_.max_seq_len);
  key->model_id = model_version_;
  key->seq.clear();
  key->seq.reserve(1 + 3 * t_len);
  // Total count first: bio labels pad to tokens.size(), so two sequences
  // equal up to max_seq_len but truncated differently must not alias.
  key->seq.push_back(static_cast<uint32_t>(tokens.size()));
  std::vector<int> ids;  // reused across tokens
  std::string marked;
  for (size_t t = 0; t < t_len; ++t) {
    subwords_.SubwordIdsInto(LookupForm(tokens[t]), &ids, &marked);
    key->seq.push_back(static_cast<uint32_t>(tokens[t].kind));
    key->seq.push_back(static_cast<uint32_t>(ids.size()));
    for (const int id : ids) key->seq.push_back(static_cast<uint32_t>(id));
  }
}

EncodeResult MicroBert::EncodeThroughCache(
    const std::vector<text::Token>& tokens, const EncodeKey& key,
    EncodeCache* cache) const {
  // The nested lm_encode span (miss path only) reports its time to this
  // span's children, so encode_cache self-time is pure cache overhead.
  static const trace::TraceStage kStage("encode_cache");
  trace::TraceSpan span(kStage);
  EncodeResult out;
  if (cache->Lookup(key, &out)) return out;
  out = EncodeUncached(tokens);
  cache->Insert(key, out);
  return out;
}

EncodeResult MicroBert::Encode(const std::vector<text::Token>& tokens) const {
  EncodeCache* const cache = EncodeCache::Global();
  if (cache == nullptr) return EncodeUncached(tokens);
  EncodeKey key;
  BuildEncodeKey(tokens, &key);
  return EncodeThroughCache(tokens, key, cache);
}

EncodeResult MicroBert::EncodeUncached(
    const std::vector<text::Token>& tokens) const {
  // Runs on pool workers inside LocalNer::ProcessBatch — the span nests
  // under "local_ner" only on the caller thread, but aggregates globally.
  static const trace::TraceStage kStage("lm_encode");
  trace::TraceSpan span(kStage);
  if (metrics::Enabled()) {
    static metrics::Counter* const encoded_tokens =
        metrics::MetricsRegistry::Global().GetCounter("lm.tokens_total");
    encoded_tokens->Increment(tokens.size());
  }
  // Graph-free eval forward: the same op sequence as
  // Forward(tokens, /*training=*/false, ...) — dropout is an eval no-op —
  // with every activation in this thread's scratch arena, so steady-state
  // encoding allocates nothing on the heap. Bit-identical to the tape
  // values by the kernel determinism contract (DESIGN.md).
  common::ScratchArena& arena = common::ScratchArena::ThreadLocal();
  common::ScratchFrame frame(&arena);
  const size_t t_len = std::min(tokens.size(), config_.max_seq_len);
  Matrix* x = frame.Get(t_len, config_.d_model);
  EmbedTokensInto(tokens, x);
  Matrix* y = frame.Get(t_len, config_.d_model);
  for (const auto& layer : layers_) {
    layer->ApplyInto(*x, y, &arena);
    std::swap(x, y);
  }
  EncodeResult out;
  // The final-norm output is retained state (it outlives this call in the
  // TweetBase), so it lands in the result, not the arena.
  final_norm_->ApplyInto(*x, &out.embeddings);
  head_->ApplyInto(out.embeddings, &out.logits);
  const Matrix& logits = out.logits;
  out.bio_labels.resize(logits.rows(), text::kBioOutside);
  for (size_t t = 0; t < logits.rows(); ++t) {
    const float* row = logits.Row(t);
    int best = 0;
    for (int c = 1; c < config_.num_labels; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out.bio_labels[t] = best;
  }
  // Tokens beyond max_seq_len were truncated by the encoder; pad labels
  // with O so the caller sees one label per input token.
  out.bio_labels.resize(tokens.size(), text::kBioOutside);
  return out;
}

std::vector<EncodeResult> MicroBert::EncodeBatch(
    const std::vector<std::vector<text::Token>>& sentences) const {
  std::vector<const std::vector<text::Token>*> ptrs;
  ptrs.reserve(sentences.size());
  for (const auto& s : sentences) ptrs.push_back(&s);
  return EncodeMany(ptrs);
}

std::vector<EncodeResult> MicroBert::EncodeMany(
    const std::vector<const std::vector<text::Token>*>& sentences) const {
  return EncodeMany(sentences, EncodeOptions{});
}

std::vector<EncodeResult> MicroBert::EncodeMany(
    const std::vector<const std::vector<text::Token>*>& sentences,
    const EncodeOptions& options) const {
  std::vector<EncodeResult> out(sentences.size());
  EncodeCache* const cache =
      !options.use_cache ? nullptr
      : options.cache_override != nullptr ? options.cache_override
                                          : EncodeCache::Global();
  if (!options.dedup && cache == nullptr) {
    // Reference path: one full encode per lane, exactly the pre-cache
    // behavior.
    ParallelFor(0, sentences.size(), /*grain=*/1, [&](size_t i) {
      if (sentences[i] != nullptr && !sentences[i]->empty()) {
        out[i] = EncodeUncached(*sentences[i]);
      }
    });
    return out;
  }

  // Key every sentence serially (cheap re-tokenization, no model math),
  // electing the first occurrence of each distinct key as representative.
  constexpr size_t kSkip = static_cast<size_t>(-1);
  std::vector<EncodeKey> keys(sentences.size());
  std::vector<size_t> rep(sentences.size(), kSkip);
  std::vector<size_t> uniques;
  uniques.reserve(sentences.size());
  {
    std::unordered_map<EncodeKey, size_t, EncodeKeyHash> first;
    first.reserve(sentences.size());
    for (size_t i = 0; i < sentences.size(); ++i) {
      if (sentences[i] == nullptr || sentences[i]->empty()) continue;
      if (!options.dedup) {
        rep[i] = i;
        uniques.push_back(i);
        continue;
      }
      BuildEncodeKey(*sentences[i], &keys[i]);
      const auto [it, inserted] = first.emplace(keys[i], i);
      rep[i] = it->second;
      if (inserted) uniques.push_back(i);
    }
  }

  // Encode each distinct sentence once, one per ParallelFor lane. Every
  // representative runs the full per-sentence op sequence independently,
  // so dedup preserves the batch-composition invariance: copies are the
  // bytes Encode would have produced for each duplicate slot.
  ParallelFor(0, uniques.size(), /*grain=*/1, [&](size_t j) {
    const size_t i = uniques[j];
    if (cache == nullptr) {
      out[i] = EncodeUncached(*sentences[i]);
      return;
    }
    if (!options.dedup) BuildEncodeKey(*sentences[i], &keys[i]);
    out[i] = EncodeThroughCache(*sentences[i], keys[i], cache);
  });

  // Fan copies out to duplicate slots.
  for (size_t i = 0; i < sentences.size(); ++i) {
    if (rep[i] != kSkip && rep[i] != i) out[i] = out[rep[i]];
  }
  return out;
}

std::vector<ag::Var> MicroBert::Parameters() const {
  std::vector<ag::Var> out;
  auto append = [&out](const std::vector<ag::Var>& ps) {
    out.insert(out.end(), ps.begin(), ps.end());
  };
  append(subword_table_->Parameters());
  append(position_table_->Parameters());
  append(kind_table_->Parameters());
  for (const auto& layer : layers_) append(layer->Parameters());
  append(final_norm_->Parameters());
  append(head_->Parameters());
  return out;
}

double FineTuneForNer(MicroBert* model, std::vector<LabeledSentence> train,
                      const FineTuneOptions& options) {
  NERGLOB_CHECK(!train.empty());
  Rng rng(options.seed);
  nn::Adam optimizer(model->Parameters(), options.lr);
  const size_t steps_per_epoch =
      (train.size() + options.batch_size - 1) / options.batch_size;
  const nn::LinearWarmupSchedule schedule(
      options.lr, steps_per_epoch * static_cast<size_t>(options.epochs),
      options.warmup_fraction);
  size_t global_step = 0;
  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&train);
    double epoch_loss = 0.0;
    size_t steps = 0;
    size_t i = 0;
    while (i < train.size()) {
      if (options.warmup_fraction > 0.0) {
        optimizer.set_lr(schedule.LearningRate(global_step));
      }
      ++global_step;
      optimizer.ZeroGrad();
      const size_t batch_end = std::min(train.size(), i + options.batch_size);
      double batch_loss = 0.0;
      for (; i < batch_end; ++i) {
        const LabeledSentence& ex = train[i];
        if (ex.tokens.empty()) continue;
        auto fwd = model->Forward(ex.tokens, /*training=*/true, &rng);
        std::vector<int> bio = ex.bio;
        bio.resize(fwd.logits.rows());  // align with truncation
        ag::Var loss = ag::CrossEntropyWithLogits(fwd.logits, bio);
        loss.Backward();
        batch_loss += loss.value().At(0, 0);
      }
      nn::ClipGradNorm(optimizer.params(), options.clip_norm);
      optimizer.Step();
      epoch_loss += batch_loss;
      ++steps;
    }
    last_epoch_loss = epoch_loss / static_cast<double>(train.size());
    (void)steps;
  }
  // The optimizer rewrote the parameter bytes in place: retire the old
  // cache identity so stale EncodeCache entries become unreachable.
  model->BumpModelVersion();
  return last_epoch_loss;
}

double PretrainMlm(MicroBert* model,
                   const std::vector<std::vector<text::Token>>& corpus,
                   const PretrainOptions& options) {
  NERGLOB_CHECK(!corpus.empty());
  Rng rng(options.seed);
  const size_t prediction_buckets =
      std::min<size_t>(model->config().subword_buckets, 2048);
  nn::Linear head(model->config().d_model, prediction_buckets, &rng);

  std::vector<ag::Var> params = model->Parameters();
  for (const ag::Var& p : head.Parameters()) params.push_back(p);
  nn::Adam optimizer(params, options.lr);

  std::vector<size_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t counted = 0;
    size_t i = 0;
    while (i < order.size()) {
      optimizer.ZeroGrad();
      const size_t end = std::min(order.size(), i + options.batch_size);
      for (; i < end; ++i) {
        const auto& sentence = corpus[order[i]];
        if (sentence.size() < 2) continue;
        // Mask ~15% of tokens (at least one).
        std::vector<text::Token> masked = sentence;
        std::vector<int> positions;
        std::vector<int> targets;
        const size_t limit =
            std::min(sentence.size(), model->config().max_seq_len);
        for (size_t t = 0; t < limit; ++t) {
          if (!rng.NextBernoulli(options.mask_probability)) continue;
          positions.push_back(static_cast<int>(t));
          targets.push_back(static_cast<int>(
              Fnv1aHash(sentence[t].match) % prediction_buckets));
          masked[t].match = "<mask>";
          masked[t].kind = text::TokenKind::kWord;
        }
        if (positions.empty()) {
          const size_t t = rng.NextBelow(limit);
          positions.push_back(static_cast<int>(t));
          targets.push_back(static_cast<int>(
              Fnv1aHash(sentence[t].match) % prediction_buckets));
          masked[t].match = "<mask>";
          masked[t].kind = text::TokenKind::kWord;
        }
        auto fwd = model->Forward(masked, /*training=*/true, &rng);
        ag::Var picked = ag::GatherRows(fwd.embeddings, positions);
        ag::Var loss = ag::CrossEntropyWithLogits(head.Forward(picked), targets);
        loss.Backward();
        epoch_loss += loss.value().At(0, 0);
        ++counted;
      }
      nn::ClipGradNorm(optimizer.params(), options.clip_norm);
      optimizer.Step();
    }
    last_epoch_loss = counted > 0 ? epoch_loss / static_cast<double>(counted) : 0.0;
  }
  model->BumpModelVersion();  // parameters mutated in place (see FineTuneForNer)
  return last_epoch_loss;
}

}  // namespace nerglob::lm
