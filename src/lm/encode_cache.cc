#include "lm/encode_cache.h"

#include <algorithm>

#include "common/env.h"
#include "common/fault_injector.h"
#include "common/metrics.h"

namespace nerglob::lm {

namespace {

/// Fixed per-entry overhead: one LRU list node (prev/next + allocation
/// header), one index bucket (hash, iterator, chain pointer), rounded up.
constexpr size_t kEntryOverheadBytes = 128;

/// Testing override; while the flag is set the pointer wins over the
/// env-configured instance (SetGlobalForTesting(nullptr) clears the flag).
std::atomic<EncodeCache*> g_override{nullptr};
std::atomic<bool> g_override_set{false};

struct CacheMetrics {
  metrics::Counter* hits;
  metrics::Counter* misses;
  metrics::Counter* evictions;
  metrics::Gauge* bytes;
  metrics::Gauge* entries;
};

/// Registry slots are process-lifetime stable, so resolve them once.
const CacheMetrics& Instruments() {
  static const CacheMetrics m = [] {
    auto& registry = metrics::MetricsRegistry::Global();
    return CacheMetrics{
        registry.GetCounter("lm.encode_cache.hits"),
        registry.GetCounter("lm.encode_cache.misses"),
        registry.GetCounter("lm.encode_cache.evictions"),
        registry.GetGauge("lm.encode_cache.bytes"),
        registry.GetGauge("lm.encode_cache.entries"),
    };
  }();
  return m;
}

}  // namespace

EncodeCache::EncodeCache(size_t budget_bytes, size_t shards) {
  const size_t shard_count = std::max<size_t>(shards, 1);
  shard_budget_ = std::max<size_t>(std::max<size_t>(budget_bytes, 1) / shard_count, 1);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool EncodeCache::Lookup(const EncodeKey& key, EncodeResult* out) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    Instruments().misses->Increment();
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  // Deep copy under the shard lock: a hit must be indistinguishable from
  // a recompute even if the entry is evicted the instant we release.
  *out = it->second->value;
  hits_.fetch_add(1, std::memory_order_relaxed);
  Instruments().hits->Increment();
  return true;
}

void EncodeCache::Insert(const EncodeKey& key, const EncodeResult& value) {
  // Chaos probe: a failed insert degrades to a future miss — the caller
  // already holds the freshly computed result, so output is unaffected.
  if (fault::InjectFault(fault::kSiteCacheInsert)) {
    inserts_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const size_t entry_bytes = EntryBytes(key, value);
  if (entry_bytes > shard_budget_) {
    // Would evict the whole shard and still not fit.
    inserts_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  size_t evicted = 0;
  {
    Shard& shard = *shards_[ShardIndex(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.find(key) != shard.index.end()) {
      // Racing duplicate: keep the resident bytes, which are bit-identical
      // to `value` by the key contract.
      return;
    }
    shard.lru.push_front(Entry{key, value, entry_bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += entry_bytes;
    bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
      const Entry& oldest = shard.lru.back();
      shard.bytes -= oldest.bytes;
      bytes_.fetch_sub(oldest.bytes, std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      shard.index.erase(oldest.key);
      shard.lru.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    Instruments().evictions->Increment(evicted);
  }
  PublishGauges();
}

void EncodeCache::PublishGauges() {
  Instruments().bytes->Set(
      static_cast<double>(bytes_.load(std::memory_order_relaxed)));
  Instruments().entries->Set(
      static_cast<double>(entries_.load(std::memory_order_relaxed)));
}

EncodeCache::Stats EncodeCache::StatsSnapshot() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.inserts_dropped = inserts_dropped_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

size_t EncodeCache::EntryBytes(const EncodeKey& key, const EncodeResult& value) {
  // The key is stored twice (LRU node + index key); matrices count their
  // element storage, matching the StreamState accounting convention.
  const size_t key_bytes = sizeof(EncodeKey) + key.seq.size() * sizeof(uint32_t);
  return kEntryOverheadBytes + 2 * key_bytes +
         value.embeddings.size() * sizeof(float) +
         value.logits.size() * sizeof(float) +
         value.bio_labels.size() * sizeof(int) + sizeof(EncodeResult);
}

EncodeCache* EncodeCache::Global() {
  if (g_override_set.load(std::memory_order_acquire)) {
    return g_override.load(std::memory_order_acquire);
  }
  // Knobs latch on first use, like every other runtime-sizing knob.
  static EncodeCache* const cache = []() -> EncodeCache* {
    const int64_t mb =
        env::EnvInt("NERGLOB_ENCODE_CACHE_MB", 0, 0, /*max=*/1 << 20);
    if (mb == 0) return nullptr;
    const int64_t shards =
        env::EnvInt("NERGLOB_ENCODE_CACHE_SHARDS", 8, 1, /*max=*/4096);
    return new EncodeCache(static_cast<size_t>(mb) * 1024 * 1024,
                           static_cast<size_t>(shards));
  }();
  return cache;
}

void EncodeCache::SetGlobalForTesting(EncodeCache* cache) {
  if (cache == nullptr) {
    g_override_set.store(false, std::memory_order_release);
    g_override.store(nullptr, std::memory_order_release);
    return;
  }
  g_override.store(cache, std::memory_order_release);
  g_override_set.store(true, std::memory_order_release);
}

}  // namespace nerglob::lm
