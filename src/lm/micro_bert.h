#ifndef NERGLOB_LM_MICRO_BERT_H_
#define NERGLOB_LM_MICRO_BERT_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "text/bio.h"
#include "text/subword.h"
#include "text/token.h"

namespace nerglob::lm {

class EncodeCache;
struct EncodeKey;

/// Configuration for the MicroBert encoder. Defaults are sized for CPU
/// experiments; see DESIGN.md for the BERTweet substitution rationale.
struct MicroBertConfig {
  size_t d_model = 64;
  size_t num_heads = 4;
  size_t num_layers = 2;
  size_t ff_mult = 2;
  size_t max_seq_len = 48;
  size_t subword_buckets = 4096;
  float dropout = 0.1f;
  int num_labels = text::kNumBioLabels;
};

/// Eval-mode output of the encoder for one sentence.
struct EncodeResult {
  /// (T, d_model) contextual token embeddings — the "entity-aware token
  /// embeddings" stored in the TweetBase (Sec. III step 2): the encoder's
  /// final-layer output *before* the token-classification head.
  Matrix embeddings;
  /// (T, num_labels) classification logits.
  Matrix logits;
  /// Argmax BIO label per token.
  std::vector<int> bio_labels;
};

/// Per-call knobs for EncodeMany. The defaults are what every production
/// caller wants; benches and tests use the explicit overload to time or
/// verify the reference (dedup-off / cache-off) path.
struct EncodeOptions {
  /// Encode each distinct (key-equal) sentence in the batch once and fan
  /// copies out to its duplicates. Pays off even with the cache disabled —
  /// retweet-heavy batches, and especially the serve-layer cross-session
  /// scheduler, routinely carry duplicate sentences.
  bool dedup = true;
  /// Consult the process-wide EncodeCache (a no-op unless
  /// NERGLOB_ENCODE_CACHE_MB enables one).
  bool use_cache = true;
  /// Tests/benches: use this cache instead of EncodeCache::Global().
  /// Ignored when use_cache is false.
  EncodeCache* cache_override = nullptr;
};

/// A from-scratch transformer encoder with a BIO token-classification head:
/// hashed-subword input embeddings + learned positions + token-kind
/// embeddings, `num_layers` pre-LN encoder layers, a final LayerNorm, and a
/// linear head. Plays the role of BERTweet in the paper's Local NER step.
class MicroBert : public nn::Module {
 public:
  MicroBert(const MicroBertConfig& config, uint64_t seed);

  /// Training-mode forward; both outputs participate in the graph.
  struct ForwardResult {
    ag::Var embeddings;  ///< (T, d_model)
    ag::Var logits;      ///< (T, num_labels)
  };
  ForwardResult Forward(const std::vector<text::Token>& tokens, bool training,
                        Rng* dropout_rng) const;

  /// Eval-mode encoding with argmax labels. Runs the graph-free path: the
  /// same op sequence as Forward(tokens, /*training=*/false, ...) with
  /// every intermediate in the calling thread's scratch arena, so the
  /// outputs are bit-identical to the tape values while steady-state
  /// streaming performs no per-message heap allocation for activations.
  /// Thread-safe: the forward pass only reads parameters and each thread
  /// owns its arena. Consults the process-wide EncodeCache when one is
  /// enabled (NERGLOB_ENCODE_CACHE_MB > 0); a hit returns a copy of the
  /// cached bytes, bit-identical to a recompute.
  EncodeResult Encode(const std::vector<text::Token>& tokens) const;

  /// Encodes many sentences, one per ParallelFor lane over the shared
  /// thread pool. Results keep input order; empty sentences are skipped and
  /// left as default EncodeResult. Output is bit-identical for any
  /// NERGLOB_THREADS setting.
  std::vector<EncodeResult> EncodeBatch(
      const std::vector<std::vector<text::Token>>& sentences) const;

  /// Batched entry point for callers that gather sentences from many
  /// owners (the serve-layer cross-session scheduler): encodes each
  /// pointed-to sentence via the same scratch-arena Encode path, one per
  /// ParallelFor lane. Because every sentence runs the full per-sentence op
  /// sequence independently (no cross-sentence packing or padding state),
  /// results are bitwise independent of batch composition: any
  /// partition/permutation of a workload yields the same per-sentence
  /// bytes as calling Encode on it alone. Null/empty entries are left as
  /// default EncodeResult. Results keep input order.
  ///
  /// Runs with EncodeOptions defaults: identical sentences within the
  /// batch are encoded once (copies fanned out — bitwise identical by the
  /// batch-composition invariance above) and the process-wide EncodeCache
  /// is consulted when enabled.
  std::vector<EncodeResult> EncodeMany(
      const std::vector<const std::vector<text::Token>*>& sentences) const;

  /// As above with explicit per-call knobs. With dedup and the cache both
  /// off this is exactly the pre-cache per-lane path (byte-for-byte the
  /// status quo) — benches time it as the reference.
  std::vector<EncodeResult> EncodeMany(
      const std::vector<const std::vector<text::Token>*>& sentences,
      const EncodeOptions& options) const;

  std::vector<ag::Var> Parameters() const override;

  const MicroBertConfig& config() const { return config_; }

  /// Serial naming this instance's current parameter bytes — the
  /// `model_id` half of every EncodeKey. Process-unique and refreshed on
  /// every in-place mutation, so cached entries from older bytes (or any
  /// other instance) can never be served.
  uint64_t model_version() const { return model_version_; }

  /// Gives the encoder a fresh cache identity. The training entry points
  /// (FineTuneForNer, PretrainMlm) call this after mutating parameters in
  /// place; any other code that writes parameter bytes directly must too,
  /// or the process-wide EncodeCache could serve pre-mutation results.
  void BumpModelVersion();

 private:
  /// Builds the (T, d) input embedding matrix for a token sequence.
  ag::Var EmbedTokens(const std::vector<text::Token>& tokens) const;

  /// Graph-free mirror of EmbedTokens(...).value(): mean-of-subword rows,
  /// then (+ position, + kind) left-associative per row, written into `x`
  /// (reshaped to (min(T, max_seq_len), d_model)). Bit-identical by using
  /// the same kernel-table add/scale entries ag's value path runs through.
  void EmbedTokensInto(const std::vector<text::Token>& tokens,
                       Matrix* x) const;

  /// The always-compute body of Encode (scratch-arena forward pass);
  /// cache hits bypass it, so `lm_encode` spans and `lm.tokens_total`
  /// count only real encoder work.
  EncodeResult EncodeUncached(const std::vector<text::Token>& tokens) const;

  /// Flattens everything the Encode output bits depend on into `*key`
  /// (see EncodeKey in encode_cache.h for the layout).
  void BuildEncodeKey(const std::vector<text::Token>& tokens,
                      EncodeKey* key) const;

  /// Lookup-or-compute-and-insert under the `encode_cache` trace span.
  EncodeResult EncodeThroughCache(const std::vector<text::Token>& tokens,
                                  const EncodeKey& key,
                                  EncodeCache* cache) const;

  MicroBertConfig config_;
  uint64_t model_version_;
  text::HashedSubwordVocab subwords_;
  std::unique_ptr<nn::Embedding> subword_table_;
  std::unique_ptr<nn::Embedding> position_table_;
  std::unique_ptr<nn::Embedding> kind_table_;
  std::vector<std::unique_ptr<nn::TransformerEncoderLayer>> layers_;
  std::unique_ptr<nn::LayerNorm> final_norm_;
  std::unique_ptr<nn::Linear> head_;
  mutable Rng dropout_rng_;
};

/// One training example for NER fine-tuning.
struct LabeledSentence {
  std::vector<text::Token> tokens;
  std::vector<int> bio;  ///< gold BIO label per token
};

/// Options for FineTuneForNer.
struct FineTuneOptions {
  int epochs = 6;
  size_t batch_size = 8;   ///< sentences per optimizer step
  float lr = 1e-3f;
  float clip_norm = 5.0f;
  /// > 0 enables the BERT warmup + linear-decay schedule with this warmup
  /// fraction; 0 keeps a constant learning rate.
  double warmup_fraction = 0.0;
  uint64_t seed = 1;
};

/// Fine-tunes the encoder + head end-to-end with token-level cross-entropy
/// (the standard BERT NER recipe, Sec. IV). Returns the mean training loss
/// of the final epoch.
double FineTuneForNer(MicroBert* model, std::vector<LabeledSentence> train,
                      const FineTuneOptions& options);

/// Options for masked-language-model pretraining.
struct PretrainOptions {
  int epochs = 2;
  size_t batch_size = 8;
  float lr = 1e-3f;
  float mask_probability = 0.15f;  ///< BERT's masking rate
  float clip_norm = 5.0f;
  uint64_t seed = 3;
};

/// Masked-language-model pretraining on unlabeled sentences ("in practice
/// the language model is pre-trained [by] unsupervised learning of language
/// representations from large text corpora", Sec. IV). Masked tokens are
/// replaced by a <mask> sentinel; the objective predicts each masked
/// token's whole-word hash bucket with a projection head that is discarded
/// afterwards (only the encoder keeps the learning). Returns the mean loss
/// of the final epoch.
double PretrainMlm(MicroBert* model,
                   const std::vector<std::vector<text::Token>>& corpus,
                   const PretrainOptions& options);

}  // namespace nerglob::lm

#endif  // NERGLOB_LM_MICRO_BERT_H_
