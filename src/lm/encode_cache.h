#ifndef NERGLOB_LM_ENCODE_CACHE_H_
#define NERGLOB_LM_ENCODE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lm/micro_bert.h"

namespace nerglob::lm {

/// Content address of one Encode() call. `seq` flattens everything the
/// encoder output bits depend on, in order:
///
///   [ total token count,
///     then per token up to max_seq_len: kind, n_subword_ids, ids... ]
///
/// Position embeddings are a function of token index (already implied by
/// the flattening order), truncation is implied by cutting at max_seq_len
/// while the leading total count preserves the bio-label padding length,
/// and LookupForm/elongation-squeezing happen before subword hashing — so
/// two token sequences with equal keys produce bitwise-equal EncodeResults
/// for the same parameter bytes. `model_id` names those parameter bytes:
/// a per-MicroBert-instance serial that the training entry points refresh
/// (see MicroBert::BumpModelVersion), never a config hash, so differently
/// trained weights can never alias.
struct EncodeKey {
  uint64_t model_id = 0;
  std::vector<uint32_t> seq;

  bool operator==(const EncodeKey& other) const {
    return model_id == other.model_id && seq == other.seq;
  }
};

/// FNV-1a over the full key. Hash collisions are harmless: every probe
/// compares the complete key (operator==) before trusting a bucket, so a
/// collision costs a compare, never a wrong EncodeResult.
struct EncodeKeyHash {
  size_t operator()(const EncodeKey& key) const {
    uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(key.model_id);
    for (const uint32_t w : key.seq) mix(w);
    return static_cast<size_t>(h);
  }
};

/// Process-wide, content-addressed cache of exact `EncodeResult` bytes —
/// the steady-state answer to social-stream duplication (retweets /
/// reposts re-submit the same token sequence across batches and sessions;
/// DESIGN.md §cache). A hit returns a copy of the stored matrices, so it
/// is bitwise indistinguishable from a recompute and the repo-wide
/// bit-identity contract survives caching.
///
/// Structure: N-way sharded LRU. A key hashes to one shard; each shard is
/// an intrusive LRU list + index under its own mutex, so concurrent
/// sessions on different shards never contend. Eviction is byte-accounted
/// against a per-shard slice of the total budget (EntryBytes counts the
/// value matrices, the key, and fixed node overhead), oldest-first.
///
/// The process-wide instance is configured by environment knobs, latched
/// on first use:
///   NERGLOB_ENCODE_CACHE_MB      total budget in MiB; 0 (default) disables
///                                the cache entirely — Global() returns
///                                nullptr and every encode path is
///                                byte-for-byte the uncached status quo.
///   NERGLOB_ENCODE_CACHE_SHARDS  shard count (default 8).
///
/// Observability: lm.encode_cache.{hits,misses,evictions} counters and
/// lm.encode_cache.{bytes,entries} gauges in the global MetricsRegistry,
/// mirrored by lock-free stats that work with metrics disabled (tests).
/// Insert carries the `cache.insert` fault-injection site: an injected
/// failure drops the insert on the floor — a future miss, never a corrupt
/// entry (docs/RELIABILITY.md).
class EncodeCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts_dropped = 0;  ///< fault-injected or over-budget skips
    size_t bytes = 0;
    size_t entries = 0;
  };

  /// A cache with `budget_bytes` total capacity split across `shards`
  /// LRU shards (both clamped to >= 1).
  EncodeCache(size_t budget_bytes, size_t shards);

  EncodeCache(const EncodeCache&) = delete;
  EncodeCache& operator=(const EncodeCache&) = delete;

  /// On hit, copies the stored result into `*out`, promotes the entry to
  /// most-recently-used, and returns true. On miss returns false and
  /// leaves `*out` untouched.
  bool Lookup(const EncodeKey& key, EncodeResult* out);

  /// Stores a copy of `value` under `key`, evicting least-recently-used
  /// entries from the shard until it fits. No-ops (degrading to a future
  /// miss) when the `cache.insert` fault fires, when the entry alone
  /// exceeds the shard budget, or when the key is already present — a
  /// racing duplicate insert keeps the existing bytes, which are
  /// bit-identical by the key contract.
  void Insert(const EncodeKey& key, const EncodeResult& value);

  /// Current footprint, following the per-store accounting convention
  /// (StreamState::MemoryUsage): payload bytes + container node overhead.
  size_t MemoryUsageBytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  size_t Entries() const { return entries_.load(std::memory_order_relaxed); }

  Stats StatsSnapshot() const;

  /// Accounted size of one cache entry: both matrices, the bio labels,
  /// two key copies (LRU node + index), and fixed node overhead.
  static size_t EntryBytes(const EncodeKey& key, const EncodeResult& value);

  /// The process-wide cache, or nullptr when NERGLOB_ENCODE_CACHE_MB=0
  /// (the default — cache-off is the status quo). Knobs are latched on
  /// the first call.
  static EncodeCache* Global();

  /// Test hook: overrides Global() (nullptr restores the env-configured
  /// instance). Not for production use; no ownership transfer.
  static void SetGlobalForTesting(EncodeCache* cache);

 private:
  struct Entry {
    EncodeKey key;
    EncodeResult value;
    size_t bytes = 0;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<EncodeKey, std::list<Entry>::iterator, EncodeKeyHash>
        index;
    size_t bytes = 0;  // guarded by mu
  };

  size_t ShardIndex(const EncodeKey& key) const {
    // Mix the hash before reducing so shard choice and in-shard bucket
    // choice use different bits.
    const uint64_t h = EncodeKeyHash{}(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>((h >> 32) % shards_.size());
  }

  void PublishGauges();

  size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> entries_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> inserts_dropped_{0};
};

}  // namespace nerglob::lm

#endif  // NERGLOB_LM_ENCODE_CACHE_H_
