#ifndef NERGLOB_IO_CHECKPOINT_IO_H_
#define NERGLOB_IO_CHECKPOINT_IO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/tensor_io.h"

/// Crash-safe IO for checkpoints and model artifacts: bounded
/// retry-with-backoff for transient failures, temp-file + fsync + atomic
/// rename so a crash never leaves a torn artifact at the final path, and
/// the generation-numbered checkpoint directory layout used by
/// serve::SessionManager::CheckpointAll / RecoverLatest. Failure model and
/// recovery guarantees: docs/RELIABILITY.md; byte-level layout:
/// docs/FORMATS.md.
namespace nerglob::io {

/// True for codes worth retrying (kIoError, kUnavailable): the failure may
/// be transient (ENOSPC that clears, an interrupted write, an injected
/// fault). Everything else — corruption, version mismatch, bad arguments —
/// is deterministic and retrying cannot help.
bool IsTransientError(const Status& s);

/// Bounded retry with exponential backoff. One policy value is cheap and
/// copyable; the environment-configured default is cached by FromEnv().
struct RetryPolicy {
  /// Total attempts (first try included). Always >= 1.
  int max_attempts = 3;
  /// Sleep before the second attempt; doubles for each later one.
  double backoff_seconds = 0.005;

  /// NERGLOB_IO_RETRIES (attempts, default 3) and NERGLOB_IO_BACKOFF_MS
  /// (first backoff in milliseconds, default 5). Read once per process.
  static const RetryPolicy& FromEnv();

  /// Runs `fn` until it returns OK, a non-transient error, or the attempt
  /// budget is spent. Retries only IsTransientError codes, sleeping
  /// between attempts. `what` labels log lines and the final error.
  /// Metrics: io.retry_attempts_total counts re-runs,
  /// io.retry_exhausted_total counts budgets spent without success.
  Status Run(const char* what, const std::function<Status()>& fn) const;
};

/// fsync a file / directory by path (POSIX; no-op where unsupported).
/// Directory fsync makes a just-renamed entry durable against power loss.
Status FsyncFile(const std::string& path);
Status FsyncDir(const std::string& path);

/// Writes one artifact atomically: `fill` populates a TensorWriter on
/// `path + ".tmp"`; the temp file is finished, fsynced, and renamed onto
/// `path` (then the parent directory is fsynced). A crash or error at any
/// point leaves either the old bytes or the new bytes at `path`, never a
/// mix. Transient failures (including injected io.open_write / io.write /
/// ckpt.rename faults — the writer is constructed with fault injection
/// enabled) restart the whole file per `retry`; `fill` must therefore be
/// idempotent. The temp file is removed on failure.
Status WriteFileAtomically(const std::string& path,
                           const std::function<Status(TensorWriter*)>& fill,
                           const RetryPolicy& retry);
Status WriteFileAtomically(const std::string& path,
                           const std::function<Status(TensorWriter*)>& fill);

/// Generation-numbered checkpoint directories. A fleet checkpoint is one
/// `gen-<%08u>` directory per generation under a caller-chosen root; the
/// directory is staged as `gen-<n>.tmp` and committed by a single atomic
/// rename, so "the directory exists without a .tmp suffix" is the commit
/// point a recovery scan keys on.
std::string GenerationDirName(uint64_t generation);

/// Parses "gen-00000042" (committed form only; ".tmp" staging dirs and
/// anything else return false).
bool ParseGenerationDirName(std::string_view name, uint64_t* generation);

/// Committed generation numbers under `root`, ascending. Missing root =>
/// empty (a fresh deployment has no checkpoints yet).
std::vector<uint64_t> ListGenerations(const std::string& root);

/// The next generation number to write: one past the highest existing
/// generation, committed or staged — an abandoned `gen-<n>.tmp` from a
/// crashed writer must never be reused for a different logical state.
uint64_t NextGeneration(const std::string& root);

}  // namespace nerglob::io

#endif  // NERGLOB_IO_CHECKPOINT_IO_H_
