#ifndef NERGLOB_IO_TENSOR_IO_H_
#define NERGLOB_IO_TENSOR_IO_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "common/status.h"
#include "tensor/matrix.h"

namespace nerglob::io {

/// On-disk format shared by every serialized artifact in this repo
/// (module parameter files, `.ngb` model bundles, stream checkpoints).
///
///   header:  8-byte magic "NGBFMT\0\1" | u32 format version | u32 endian
///            sentinel 0x01020304 (files are little-endian; the sentinel
///            rejects byte-swapped files instead of misreading them)
///   records: u32 tag | u64 payload length | payload bytes |
///            u64 FNV-1a checksum of the payload
///
/// Records are length-prefixed so a reader can validate sizes before
/// allocating, and checksummed so truncation/bit-flips surface as a clean
/// `Status` instead of garbage weights. Version policy: readers accept
/// exactly `kFormatVersion`; any change to the header or record framing
/// bumps it. Payload layouts are versioned by their owners (e.g. the
/// bundle config record carries its own layout version).
inline constexpr char kMagic[8] = {'N', 'G', 'B', 'F', 'M', 'T', '\0', '\1'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint32_t kEndianSentinel = 0x01020304u;

/// Record tags. Each serialized artifact is a sequence of tagged records;
/// readers pass the tag they expect so a module file loaded as a bundle
/// (or vice versa) fails with a clear InvalidArgument.
enum RecordTag : uint32_t {
  kTagModule = 1,        // one nn::Module's parameters
  kTagBundleConfig = 2,  // ModelBundleConfig + fingerprint
  kTagTrainingStats = 3, // harness-owned provenance doubles
  kTagCheckpoint = 4,    // NerGlobalizer checkpoint header
  kTagTweetBase = 5,
  kTagCandidateBase = 6,
  kTagTrie = 7,
  kTagPipelineState = 8, // votes/support/cache/finalized/counters
  kTagSession = 9,       // StreamingSession counters + finalized buffer
  kTagBlob = 10,         // free-form (harness baseline caches, tests)
  kTagServeManifest = 11,  // serve::SessionManager fleet checkpoint index
};

/// Writes one artifact file. Values are buffered into the current record
/// with the Put* calls; `EndRecord(tag)` frames and checksums the buffer.
/// All failures are sticky: the first error is kept and every later call
/// is a no-op, so callers can write straight-line code and check once.
class TensorWriter {
 public:
  /// Opens `path` for writing and emits the header. `format_version`
  /// exists for tests that need to produce version-mismatched files.
  /// `inject_faults` opts this writer into the NERGLOB_FAULT sites
  /// io.open_write / io.write (docs/RELIABILITY.md); it is set only on
  /// paths owned by the robustness layer (io::WriteFileAtomically and the
  /// checkpoint/bundle writers above it), where an injected IoError is
  /// absorbed by io::RetryPolicy — raw writers stay injection-free so a
  /// chaos run never perturbs unrelated file IO.
  explicit TensorWriter(const std::string& path,
                        uint32_t format_version = kFormatVersion,
                        bool inject_faults = false);

  TensorWriter(const TensorWriter&) = delete;
  TensorWriter& operator=(const TensorWriter&) = delete;

  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutF32(float v);
  void PutF64(double v);
  void PutString(std::string_view s);   // u64 length + bytes
  void PutMatrix(const Matrix& m);      // u64 rows | u64 cols | f32 data

  /// Frames everything buffered since the last EndRecord as one record.
  Status EndRecord(uint32_t tag);

  /// Flushes and closes; returns the final status. Must be called last.
  Status Finish();

  const Status& status() const { return status_; }

 private:
  void Append(const void* bytes, size_t n);

  std::string path_;
  std::ofstream out_;
  std::string buf_;     // payload of the record under construction
  Status status_;
  bool finished_ = false;
  bool inject_faults_ = false;
};

/// Reads one artifact file record by record. `NextRecord(expect_tag)`
/// loads and checksum-verifies one record; the typed Get* calls then
/// consume its payload in order. Like the writer, errors are sticky and
/// every message carries the path and byte offset. Readers never trust
/// on-disk sizes: every length is validated against the remaining record
/// (and the record against the remaining file) before any allocation.
class TensorReader {
 public:
  /// `inject_faults` opts this reader into the NERGLOB_FAULT sites
  /// io.open_read / io.read — same contract as the TensorWriter flag: set
  /// only by restore/recovery paths that retry or fall back on failure.
  explicit TensorReader(const std::string& path, bool inject_faults = false);

  TensorReader(const TensorReader&) = delete;
  TensorReader& operator=(const TensorReader&) = delete;

  /// Reads the next record, verifying tag, length, and checksum.
  Status NextRecord(uint32_t expect_tag);

  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetF32(float* v);
  bool GetF64(double* v);
  bool GetString(std::string* s);
  bool GetMatrix(Matrix* m);

  /// True when the current record's payload is fully consumed.
  bool AtRecordEnd() const { return cursor_ == payload_.size(); }

  /// Unread bytes left in the current record. Callers sizing containers
  /// from an on-disk count must bound it by this (every element encodes at
  /// least one byte), so a crafted count cannot drive a huge allocation.
  size_t RemainingInRecord() const { return payload_.size() - cursor_; }

  /// Errors out (FailedPrecondition) if payload bytes remain unread —
  /// catches layout drift between writer and reader.
  Status ExpectRecordEnd();

  const Status& status() const { return status_; }
  const std::string& path() const { return path_; }

 private:
  bool Take(void* bytes, size_t n);
  Status Fail(Status s);  // records the sticky error and returns it

  std::string path_;
  std::ifstream in_;
  uint64_t file_size_ = 0;
  uint64_t file_offset_ = 0;  // offset of the next unread byte in the file
  std::string payload_;       // current record
  size_t cursor_ = 0;         // next unread byte within payload_
  Status status_;
  bool inject_faults_ = false;
};

}  // namespace nerglob::io

#endif  // NERGLOB_IO_TENSOR_IO_H_
