#include "io/checkpoint_io.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/env.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace nerglob::io {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kGenPrefix = "gen-";
constexpr std::string_view kTmpSuffix = ".tmp";


#ifndef _WIN32
Status FsyncFd(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::IoError(
        StrFormat("cannot open '%s' for fsync", path.c_str()));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError(StrFormat("fsync('%s') failed", path.c_str()));
  }
  return Status::OK();
}
#endif

}  // namespace

bool IsTransientError(const Status& s) {
  return s.code() == StatusCode::kIoError ||
         s.code() == StatusCode::kUnavailable;
}

const RetryPolicy& RetryPolicy::FromEnv() {
  static const RetryPolicy policy = [] {
    RetryPolicy p;
    p.max_attempts =
        static_cast<int>(env::EnvInt("NERGLOB_IO_RETRIES", 3, 1, 1000));
    p.backoff_seconds = static_cast<double>(env::EnvInt(
                            "NERGLOB_IO_BACKOFF_MS", 5, 0, 60'000)) /
                        1e3;
    return p;
  }();
  return policy;
}

Status RetryPolicy::Run(const char* what,
                        const std::function<Status()>& fn) const {
  static metrics::Counter* const retry_counter =
      metrics::MetricsRegistry::Global().GetCounter("io.retry_attempts_total");
  static metrics::Counter* const exhausted_counter =
      metrics::MetricsRegistry::Global().GetCounter(
          "io.retry_exhausted_total");
  const int attempts = max_attempts < 1 ? 1 : max_attempts;
  double backoff = backoff_seconds;
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      retry_counter->Increment();
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= 2;
      }
    }
    last = fn();
    if (last.ok() || !IsTransientError(last)) return last;
    NERGLOB_LOG(kWarning) << what << ": attempt " << attempt << "/" << attempts
                          << " failed transiently: " << last.ToString();
  }
  exhausted_counter->Increment();
  return Status(last.code(),
                StrFormat("%s: %d attempts exhausted; last error: %s", what,
                          attempts, last.ToString().c_str()));
}

Status FsyncFile(const std::string& path) {
#ifndef _WIN32
  return FsyncFd(path, O_RDONLY);
#else
  (void)path;
  return Status::OK();
#endif
}

Status FsyncDir(const std::string& path) {
#ifndef _WIN32
  return FsyncFd(path, O_RDONLY | O_DIRECTORY);
#else
  (void)path;
  return Status::OK();
#endif
}

Status WriteFileAtomically(const std::string& path,
                           const std::function<Status(TensorWriter*)>& fill,
                           const RetryPolicy& retry) {
  const std::string tmp = path + std::string(kTmpSuffix);
  Status result = retry.Run(path.c_str(), [&]() -> Status {
    {
      TensorWriter writer(tmp, kFormatVersion, /*inject_faults=*/true);
      Status s = fill(&writer);
      if (s.ok()) s = writer.Finish();
      if (!s.ok()) return s;
    }
    NERGLOB_RETURN_IF_ERROR(FsyncFile(tmp));
    if (fault::InjectFault(fault::kSiteCkptRename)) {
      return Status::IoError(StrFormat(
          "injected fault at ckpt.rename ('%s')", path.c_str()));
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
      return Status::IoError(StrFormat("rename('%s' -> '%s') failed: %s",
                                       tmp.c_str(), path.c_str(),
                                       ec.message().c_str()));
    }
    const fs::path parent = fs::path(path).parent_path();
    return FsyncDir(parent.empty() ? "." : parent.string());
  });
  if (!result.ok()) {
    std::error_code ec;
    fs::remove(tmp, ec);  // best-effort cleanup; the final path is untouched
  }
  return result;
}

Status WriteFileAtomically(const std::string& path,
                           const std::function<Status(TensorWriter*)>& fill) {
  return WriteFileAtomically(path, fill, RetryPolicy::FromEnv());
}

std::string GenerationDirName(uint64_t generation) {
  return StrFormat("gen-%08llu", static_cast<unsigned long long>(generation));
}

bool ParseGenerationDirName(std::string_view name, uint64_t* generation) {
  if (!StartsWith(name, kGenPrefix)) return false;
  const std::string_view digits = name.substr(kGenPrefix.size());
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = value;
  return true;
}

std::vector<uint64_t> ListGenerations(const std::string& root) {
  std::vector<uint64_t> generations;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    uint64_t generation = 0;
    if (entry.is_directory() &&
        ParseGenerationDirName(entry.path().filename().string(),
                               &generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

uint64_t NextGeneration(const std::string& root) {
  uint64_t highest = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    std::string name = entry.path().filename().string();
    if (EndsWith(name, kTmpSuffix)) {
      name.resize(name.size() - kTmpSuffix.size());
    }
    uint64_t generation = 0;
    if (ParseGenerationDirName(name, &generation) && generation > highest) {
      highest = generation;
    }
  }
  return highest + 1;
}

}  // namespace nerglob::io
