#include "io/tensor_io.h"

#include <cstring>
#include <limits>

#include "common/fault_injector.h"
#include "common/string_util.h"

namespace nerglob::io {
namespace {

// Hard sanity bound for any single length read from disk. Far above any
// real artifact in this repo (bundles are a few MB) but small enough that
// a corrupt length can't drive a multi-gigabyte allocation.
constexpr uint64_t kMaxReasonableBytes = 1ull << 32;  // 4 GiB

}  // namespace

// ---------------------------------------------------------------------------
// TensorWriter

TensorWriter::TensorWriter(const std::string& path, uint32_t format_version,
                           bool inject_faults)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      inject_faults_(inject_faults) {
  if (inject_faults_ && fault::InjectFault(fault::kSiteIoOpenWrite)) {
    status_ = Status::IoError(StrFormat(
        "injected fault at io.open_write ('%s')", path.c_str()));
    return;
  }
  if (!out_) {
    status_ = Status::IoError(
        StrFormat("cannot open '%s' for writing", path.c_str()));
    return;
  }
  out_.write(kMagic, sizeof(kMagic));
  uint32_t header[2] = {format_version, kEndianSentinel};
  out_.write(reinterpret_cast<const char*>(header), sizeof(header));
  if (!out_) {
    status_ = Status::IoError(
        StrFormat("failed writing header to '%s'", path.c_str()));
  }
}

void TensorWriter::Append(const void* bytes, size_t n) {
  if (!status_.ok() || finished_) return;
  buf_.append(reinterpret_cast<const char*>(bytes), n);
}

void TensorWriter::PutU32(uint32_t v) { Append(&v, sizeof(v)); }
void TensorWriter::PutU64(uint64_t v) { Append(&v, sizeof(v)); }
void TensorWriter::PutI64(int64_t v) { Append(&v, sizeof(v)); }
void TensorWriter::PutF32(float v) { Append(&v, sizeof(v)); }
void TensorWriter::PutF64(double v) { Append(&v, sizeof(v)); }

void TensorWriter::PutString(std::string_view s) {
  PutU64(s.size());
  Append(s.data(), s.size());
}

void TensorWriter::PutMatrix(const Matrix& m) {
  PutU64(m.rows());
  PutU64(m.cols());
  Append(m.data(), m.size() * sizeof(float));
}

Status TensorWriter::EndRecord(uint32_t tag) {
  if (!status_.ok()) return status_;
  if (inject_faults_ && fault::InjectFault(fault::kSiteIoWrite)) {
    status_ = Status::IoError(StrFormat(
        "injected fault at io.write (tag %u, '%s')", tag, path_.c_str()));
    return status_;
  }
  if (finished_) {
    status_ = Status::FailedPrecondition(
        StrFormat("EndRecord after Finish on '%s'", path_.c_str()));
    return status_;
  }
  const uint64_t len = buf_.size();
  const uint64_t checksum = Fnv1aHash(buf_);
  out_.write(reinterpret_cast<const char*>(&tag), sizeof(tag));
  out_.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  out_.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  buf_.clear();
  if (!out_) {
    status_ = Status::IoError(
        StrFormat("failed writing record (tag %u) to '%s'", tag,
                  path_.c_str()));
  }
  return status_;
}

Status TensorWriter::Finish() {
  if (finished_) return status_;
  finished_ = true;
  if (!status_.ok()) return status_;
  if (!buf_.empty()) {
    status_ = Status::FailedPrecondition(StrFormat(
        "Finish with %zu unframed payload bytes on '%s' (missing EndRecord?)",
        buf_.size(), path_.c_str()));
    return status_;
  }
  out_.flush();
  out_.close();
  if (!out_) {
    status_ =
        Status::IoError(StrFormat("failed flushing '%s'", path_.c_str()));
  }
  return status_;
}

// ---------------------------------------------------------------------------
// TensorReader

TensorReader::TensorReader(const std::string& path, bool inject_faults)
    : path_(path), in_(path, std::ios::binary), inject_faults_(inject_faults) {
  if (inject_faults_ && fault::InjectFault(fault::kSiteIoOpenRead)) {
    status_ = Status::IoError(StrFormat(
        "injected fault at io.open_read ('%s')", path.c_str()));
    return;
  }
  if (!in_) {
    status_ =
        Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
    return;
  }
  in_.seekg(0, std::ios::end);
  file_size_ = static_cast<uint64_t>(in_.tellg());
  in_.seekg(0, std::ios::beg);

  char magic[sizeof(kMagic)];
  uint32_t header[2];
  if (file_size_ < sizeof(kMagic) + sizeof(header)) {
    Fail(Status::InvalidArgument(StrFormat(
        "'%s': file too small for header (%llu bytes)", path.c_str(),
        static_cast<unsigned long long>(file_size_))));
    return;
  }
  in_.read(magic, sizeof(magic));
  in_.read(reinterpret_cast<char*>(header), sizeof(header));
  file_offset_ = sizeof(magic) + sizeof(header);
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    Fail(Status::InvalidArgument(
        StrFormat("'%s': bad magic (not a nerglob artifact)", path.c_str())));
    return;
  }
  if (header[0] != kFormatVersion) {
    Fail(Status::InvalidArgument(StrFormat(
        "'%s': format version mismatch: expected %u, found %u", path.c_str(),
        kFormatVersion, header[0])));
    return;
  }
  if (header[1] != kEndianSentinel) {
    Fail(Status::InvalidArgument(StrFormat(
        "'%s': endianness sentinel mismatch (expected %08x, found %08x)",
        path.c_str(), kEndianSentinel, header[1])));
    return;
  }
}

Status TensorReader::Fail(Status s) {
  if (status_.ok()) status_ = std::move(s);
  return status_;
}

Status TensorReader::NextRecord(uint32_t expect_tag) {
  if (!status_.ok()) return status_;
  if (inject_faults_ && fault::InjectFault(fault::kSiteIoRead)) {
    return Fail(Status::IoError(StrFormat(
        "injected fault at io.read (tag %u, '%s')", expect_tag,
        path_.c_str())));
  }
  uint32_t tag = 0;
  uint64_t len = 0;
  const uint64_t record_start = file_offset_;
  if (file_size_ - file_offset_ < sizeof(tag) + sizeof(len)) {
    return Fail(Status::IoError(StrFormat(
        "'%s': truncated record header at offset %llu", path_.c_str(),
        static_cast<unsigned long long>(record_start))));
  }
  in_.read(reinterpret_cast<char*>(&tag), sizeof(tag));
  in_.read(reinterpret_cast<char*>(&len), sizeof(len));
  file_offset_ += sizeof(tag) + sizeof(len);
  if (!in_) {
    return Fail(Status::IoError(StrFormat(
        "'%s': read failed at offset %llu", path_.c_str(),
        static_cast<unsigned long long>(record_start))));
  }
  if (tag != expect_tag) {
    return Fail(Status::InvalidArgument(StrFormat(
        "'%s': record tag mismatch at offset %llu: expected %u, found %u",
        path_.c_str(), static_cast<unsigned long long>(record_start),
        expect_tag, tag)));
  }
  // The payload plus its trailing checksum must fit in the remaining file;
  // checking before allocating means a corrupt length can't OOM us.
  if (len > kMaxReasonableBytes ||
      len + sizeof(uint64_t) > file_size_ - file_offset_) {
    return Fail(Status::IoError(StrFormat(
        "'%s': truncated or corrupt record at offset %llu: payload of %llu "
        "bytes exceeds remaining %llu",
        path_.c_str(), static_cast<unsigned long long>(record_start),
        static_cast<unsigned long long>(len),
        static_cast<unsigned long long>(file_size_ - file_offset_))));
  }
  payload_.resize(len);
  in_.read(payload_.data(), static_cast<std::streamsize>(len));
  uint64_t checksum = 0;
  in_.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  file_offset_ += len + sizeof(checksum);
  if (!in_) {
    return Fail(Status::IoError(StrFormat(
        "'%s': read failed inside record at offset %llu", path_.c_str(),
        static_cast<unsigned long long>(record_start))));
  }
  const uint64_t actual = Fnv1aHash(payload_);
  if (actual != checksum) {
    return Fail(Status::IoError(StrFormat(
        "'%s': checksum mismatch in record at offset %llu (expected "
        "%016llx, found %016llx) — file is corrupt",
        path_.c_str(), static_cast<unsigned long long>(record_start),
        static_cast<unsigned long long>(checksum),
        static_cast<unsigned long long>(actual))));
  }
  cursor_ = 0;
  return Status::OK();
}

bool TensorReader::Take(void* bytes, size_t n) {
  if (!status_.ok()) return false;
  if (payload_.size() - cursor_ < n) {
    Fail(Status::IoError(StrFormat(
        "'%s': record payload exhausted (want %zu bytes, %zu remain)",
        path_.c_str(), n, payload_.size() - cursor_)));
    return false;
  }
  std::memcpy(bytes, payload_.data() + cursor_, n);
  cursor_ += n;
  return true;
}

bool TensorReader::GetU32(uint32_t* v) { return Take(v, sizeof(*v)); }
bool TensorReader::GetU64(uint64_t* v) { return Take(v, sizeof(*v)); }
bool TensorReader::GetI64(int64_t* v) { return Take(v, sizeof(*v)); }
bool TensorReader::GetF32(float* v) { return Take(v, sizeof(*v)); }
bool TensorReader::GetF64(double* v) { return Take(v, sizeof(*v)); }

bool TensorReader::GetString(std::string* s) {
  uint64_t len = 0;
  if (!GetU64(&len)) return false;
  if (len > payload_.size() - cursor_) {
    Fail(Status::IoError(StrFormat(
        "'%s': string length %llu exceeds record remainder %zu",
        path_.c_str(), static_cast<unsigned long long>(len),
        payload_.size() - cursor_)));
    return false;
  }
  s->assign(payload_.data() + cursor_, len);
  cursor_ += len;
  return true;
}

bool TensorReader::GetMatrix(Matrix* m) {
  uint64_t rows = 0, cols = 0;
  if (!GetU64(&rows) || !GetU64(&cols)) return false;
  const uint64_t remaining = payload_.size() - cursor_;
  // Validate the element count against the record remainder *before*
  // allocating — corrupt shapes must fail cleanly, not OOM. Capping each
  // dimension first keeps rows*cols*4 free of uint64 overflow.
  constexpr uint64_t kMaxDim = 1ull << 24;
  if (rows > kMaxDim || cols > kMaxDim ||
      rows * cols * sizeof(float) > remaining) {
    Fail(Status::IoError(StrFormat(
        "'%s': matrix shape %llux%llu exceeds record remainder %llu bytes",
        path_.c_str(), static_cast<unsigned long long>(rows),
        static_cast<unsigned long long>(cols),
        static_cast<unsigned long long>(remaining))));
    return false;
  }
  Matrix out(static_cast<size_t>(rows), static_cast<size_t>(cols));
  if (!Take(out.data(), out.size() * sizeof(float))) return false;
  *m = std::move(out);
  return true;
}

Status TensorReader::ExpectRecordEnd() {
  if (!status_.ok()) return status_;
  if (cursor_ != payload_.size()) {
    return Fail(Status::FailedPrecondition(StrFormat(
        "'%s': record has %zu unread payload bytes (layout drift between "
        "writer and reader)",
        path_.c_str(), payload_.size() - cursor_)));
  }
  return Status::OK();
}

}  // namespace nerglob::io
