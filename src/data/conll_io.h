#ifndef NERGLOB_DATA_CONLL_IO_H_
#define NERGLOB_DATA_CONLL_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/message.h"

namespace nerglob::data {

/// CoNLL-style I/O so the pipeline can run on real annotated corpora
/// (e.g. an actual WNUT17/BTC download) instead of the simulator.
///
/// Format: one token per line as "TOKEN<TAB>LABEL" (or whitespace
/// separated), blank line between sentences. Labels use the BIO scheme
/// with the four supported types (B-PER, I-LOC, ...); unknown entity types
/// (e.g. WNUT17's "B-creative-work") map to MISC, matching the paper's
/// type grouping (Sec. IV).

/// Parses CoNLL text into messages (token offsets are synthesized by
/// joining tokens with single spaces). Returns InvalidArgument on
/// malformed label sequences or lines.
Result<std::vector<stream::Message>> ReadConll(std::istream& in);

/// File convenience wrapper.
Result<std::vector<stream::Message>> ReadConllFile(const std::string& path);

/// Writes messages with the given span annotations in CoNLL format.
/// `spans` outer size must equal messages size (use GoldSpans(...) or
/// pipeline predictions).
Status WriteConll(std::ostream& out,
                  const std::vector<stream::Message>& messages,
                  const std::vector<std::vector<text::EntitySpan>>& spans);

}  // namespace nerglob::data

#endif  // NERGLOB_DATA_CONLL_IO_H_
