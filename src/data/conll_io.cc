#include "data/conll_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace nerglob::data {

namespace {

/// Parses a CoNLL label ("O", "B-PER", "I-creative-work", ...). Unknown
/// entity type names fold into MISC (the paper's grouping). Returns false
/// for labels that are not O/B-*/I-*.
bool ParseConllLabel(const std::string& label, int* bio_label) {
  if (label == "O") {
    *bio_label = text::kBioOutside;
    return true;
  }
  if (label.size() < 3 || label[1] != '-' || (label[0] != 'B' && label[0] != 'I')) {
    return false;
  }
  const std::string type_name = ToLowerAscii(label.substr(2));
  text::EntityType type = text::EntityType::kMisc;
  if (type_name == "per" || type_name == "person") {
    type = text::EntityType::kPerson;
  } else if (type_name == "loc" || type_name == "location" ||
             type_name == "geo-loc") {
    type = text::EntityType::kLocation;
  } else if (type_name == "org" || type_name == "organization" ||
             type_name == "corporation") {
    type = text::EntityType::kOrganization;
  }  // everything else (product, creative-work, group, ...) -> MISC
  *bio_label = label[0] == 'B' ? text::BioBeginLabel(type)
                               : text::BioInsideLabel(type);
  return true;
}

stream::Message FinishSentence(int64_t id, std::vector<std::string> words,
                               const std::vector<int>& bio) {
  stream::Message msg;
  msg.id = id;
  // Synthesize text and offsets: tokens joined by single spaces. We do not
  // re-run the tokenizer — CoNLL input defines the tokenization.
  size_t offset = 0;
  for (size_t t = 0; t < words.size(); ++t) {
    text::Token token;
    token.text = words[t];
    token.lower = ToLowerAscii(token.text);
    token.match = (token.text.size() > 1 && token.text[0] == '#')
                      ? token.lower.substr(1)
                      : token.lower;
    token.begin = offset;
    token.end = offset + token.text.size();
    offset = token.end + 1;
    if (!msg.text.empty()) msg.text += ' ';
    msg.text += token.text;
    msg.tokens.push_back(std::move(token));
  }
  msg.gold_spans = text::DecodeBio(bio);
  return msg;
}

}  // namespace

Result<std::vector<stream::Message>> ReadConll(std::istream& in) {
  std::vector<stream::Message> messages;
  std::vector<std::string> words;
  std::vector<int> bio;
  std::string line;
  size_t line_number = 0;
  int64_t next_id = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) {
      if (!words.empty()) {
        messages.push_back(FinishSentence(next_id++, std::move(words), bio));
        words.clear();
        bio.clear();
      }
      continue;
    }
    const auto fields = SplitWhitespace(trimmed);
    if (fields.size() < 2) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected TOKEN LABEL", line_number));
    }
    int label = 0;
    if (!ParseConllLabel(fields.back(), &label)) {
      return Status::InvalidArgument(
          StrFormat("line %zu: bad label '%s'", line_number,
                    fields.back().c_str()));
    }
    words.push_back(fields.front());
    bio.push_back(label);
  }
  if (!words.empty()) {
    messages.push_back(FinishSentence(next_id++, std::move(words), bio));
  }
  return messages;
}

Result<std::vector<stream::Message>> ReadConllFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  return ReadConll(in);
}

Status WriteConll(std::ostream& out,
                  const std::vector<stream::Message>& messages,
                  const std::vector<std::vector<text::EntitySpan>>& spans) {
  if (messages.size() != spans.size()) {
    return Status::InvalidArgument("messages/spans size mismatch");
  }
  for (size_t m = 0; m < messages.size(); ++m) {
    const auto labels = text::EncodeBio(messages[m].tokens.size(), spans[m]);
    for (size_t t = 0; t < messages[m].tokens.size(); ++t) {
      out << messages[m].tokens[t].text << '\t' << text::BioLabelName(labels[t])
          << '\n';
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed");
  return Status::OK();
}

}  // namespace nerglob::data
