#ifndef NERGLOB_DATA_GENERATOR_H_
#define NERGLOB_DATA_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/knowledge_base.h"
#include "lm/micro_bert.h"
#include "stream/message.h"

namespace nerglob::data {

/// Noise channel applied to generated messages; models the non-normative
/// language of microblogs (casing loss, hashtagification, typos,
/// elongation, retweet prefixes, URLs, emoticons).
struct NoiseOptions {
  double lowercase_entity = 0.55;  ///< entity mention all-lowercase
  double uppercase_entity = 0.05;  ///< entity mention ALL-CAPS
  double hashtagify = 0.10;        ///< entity mention -> single #joined token
  double typo = 0.04;              ///< per entity word: drop/duplicate a char
  double elongation = 0.04;        ///< per context word: "so" -> "sooo"
  double rt_prefix = 0.15;         ///< prepend "rt @user :"
  double append_url = 0.18;        ///< append a t.co-style URL
  double append_emoticon = 0.12;   ///< append ":)" etc.
};

/// Recipe for one dataset (Table I row).
struct DatasetSpec {
  std::string name;
  size_t num_messages = 0;
  std::vector<Topic> topics;
  /// Zipf exponent over each topic's entity pool. Streaming datasets use a
  /// high exponent (heavy entity recurrence); non-streaming ones are close
  /// to uniform.
  double zipf_exponent = 1.1;
  /// Relative sampling weight of templates containing ORG/MISC slots.
  /// The LM training corpus downweights them so the fine-tuned Local NER
  /// reproduces BERTweet's weakness on those types (Table IV).
  double org_misc_weight = 1.0;
  /// Fraction of the template inventory available to this dataset. The
  /// TRAIN corpus uses < 1 so the evaluation streams contain message
  /// contexts the fine-tuned model never saw — the domain shift between a
  /// static training set and a live stream (Sec. I).
  double template_coverage = 1.0;
  NoiseOptions noise;
  uint64_t seed = 1;
};

/// Version of the synthetic world (bump when the generator, templates or
/// dataset specs change so cached trained systems are invalidated).
inline constexpr int kWorldVersion = 8;

/// Named specs for every dataset in the paper (Table I): "D1".."D5",
/// "WNUT17", "BTC", plus "TRAIN" (the WNUT17-training-set analogue used to
/// fine-tune Local NER). `scale` in (0,1] shrinks message counts
/// proportionally for fast test/bench runs.
DatasetSpec MakeDatasetSpec(const std::string& name, double scale = 1.0);

/// Like MakeDatasetSpec but returns InvalidArgument for an unknown name or
/// out-of-range scale instead of aborting — use when `name` comes from user
/// input (argv, config files) rather than a compile-time literal.
Result<DatasetSpec> TryMakeDatasetSpec(const std::string& name,
                                       double scale = 1.0);

/// Generates annotated messages for a spec from a knowledge base.
/// Deterministic in (kb, spec.seed).
class StreamGenerator {
 public:
  explicit StreamGenerator(const KnowledgeBase* kb);

  std::vector<stream::Message> Generate(const DatasetSpec& spec) const;

 private:
  const KnowledgeBase* kb_;
};

/// Converts gold-annotated messages into LM fine-tuning examples.
std::vector<lm::LabeledSentence> ToLabeledSentences(
    const std::vector<stream::Message>& messages);

/// Counts unique gold entity surface strings in a dataset (Table I
/// "#Entities" column).
size_t CountUniqueGoldEntities(const std::vector<stream::Message>& messages);

}  // namespace nerglob::data

#endif  // NERGLOB_DATA_GENERATOR_H_
