#ifndef NERGLOB_DATA_KNOWLEDGE_BASE_H_
#define NERGLOB_DATA_KNOWLEDGE_BASE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "text/bio.h"

namespace nerglob::data {

/// Conversation topics for the synthetic streams (Sec. VI: Politics,
/// Sports, Entertainment, Science and Health).
enum class Topic {
  kHealth = 0,
  kPolitics = 1,
  kSports = 2,
  kEntertainment = 3,
  kScience = 4,
};
inline constexpr int kNumTopics = 5;
const char* TopicName(Topic topic);

/// A real-world entity in the simulated world. `aliases` are the surface
/// variations its mentions can take; each alias is a lowercased
/// space-separated token sequence ("andy beshear", "beshear").
struct Entity {
  std::string canonical;             ///< primary alias
  text::EntityType type = text::EntityType::kPerson;
  Topic topic = Topic::kHealth;
  std::vector<std::string> aliases;  ///< includes canonical
};

/// The entity world behind the stream simulator: a handcrafted core
/// (famous entities + the ambiguity cases the paper discusses: "washington"
/// PER/LOC, "us" LOC/pronoun, "fireflies" MISC/insect, ...) plus a
/// procedurally generated long tail so datasets reach paper-scale entity
/// counts (Table I: up to ~900 unique entities).
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// Builds the standard world: core entities + `extra_per_topic_type`
  /// procedurally named entities for every (topic, type) pair.
  static KnowledgeBase BuildStandard(size_t extra_per_topic_type, uint64_t seed);

  /// Builds a world with only procedural entities (no core). Used for the
  /// Local NER training corpus so the evaluation streams are dominated by
  /// entities the fine-tuned model never saw — the "novel and emerging
  /// entities" condition of WNUT17.
  static KnowledgeBase BuildProceduralOnly(size_t per_topic_type, uint64_t seed);

  void Add(Entity entity);

  const std::vector<Entity>& entities() const { return entities_; }

  /// Entities of a topic (any type).
  std::vector<size_t> EntitiesForTopic(Topic topic) const;

  /// Entities of a topic and type.
  std::vector<size_t> EntitiesForTopicType(Topic topic,
                                           text::EntityType type) const;

  const Entity& entity(size_t index) const { return entities_[index]; }

  /// Words that look like entities but are not: non-entity homographs of
  /// entity surface forms ("us" the pronoun, "apple" the fruit) plus
  /// ordinary confusable common words. The generator weaves these into
  /// message text as O-labeled tokens.
  const std::vector<std::string>& non_entity_homographs() const {
    return non_entity_homographs_;
  }

 private:
  void AddCoreEntities();
  void AddProceduralEntities(size_t per_topic_type, Rng* rng);

  std::vector<Entity> entities_;
  std::vector<std::string> non_entity_homographs_;
};

/// Procedural name generators (exposed for tests).
std::string SynthPersonName(Rng* rng);
std::string SynthLocationName(Rng* rng);
std::string SynthOrganizationName(Rng* rng);
std::string SynthMiscName(Rng* rng);

}  // namespace nerglob::data

#endif  // NERGLOB_DATA_KNOWLEDGE_BASE_H_
