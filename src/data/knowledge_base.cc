#include "data/knowledge_base.h"

#include "common/check.h"
#include "common/string_util.h"

namespace nerglob::data {

const char* TopicName(Topic topic) {
  switch (topic) {
    case Topic::kHealth:
      return "health";
    case Topic::kPolitics:
      return "politics";
    case Topic::kSports:
      return "sports";
    case Topic::kEntertainment:
      return "entertainment";
    case Topic::kScience:
      return "science";
  }
  return "unknown";
}

namespace {

using text::EntityType;

const char* const kFirstSyllables[] = {"an", "bel", "cor", "dan", "el",  "fer",
                                       "gar", "hol", "is",  "jor", "kal", "lan",
                                       "mar", "nor", "os",  "pet", "quin", "ros",
                                       "sam", "tor", "ul",  "vic", "wes", "yas"};
const char* const kSecondSyllables[] = {"a",   "by",  "den", "dra", "el", "ia",
                                        "ick", "io",  "la",  "lor", "mon", "na",
                                        "ny",  "ra",  "son", "ta",  "ton", "vin"};
const char* const kSurnameEnds[] = {"son", "ez", "ini", "berg", "ton", "ley",
                                    "ard", "man", "ovic", "well", "ford", "by"};
const char* const kLocSuffixes[] = {"land", "ville", "burg", "ia", "stan",
                                    "port", "field", "shire", "mont", "bay"};
const char* const kOrgHeads[] = {"united", "global", "national", "first",
                                 "royal", "central", "allied", "pacific"};
const char* const kOrgTails[] = {"corp", "league", "party", "institute",
                                 "agency", "systems", "network", "fc",
                                 "labs", "union"};
const char* const kMiscHeads[] = {"neo", "ultra", "mega", "hyper", "proto",
                                  "astro", "cyber", "retro"};
const char* const kMiscTails[] = {"virus", "fever", "storm", "wave", "craft",
                                  "quest", "beat", "light"};

template <size_t N>
const char* Pick(const char* const (&arr)[N], Rng* rng) {
  return arr[rng->NextBelow(N)];
}

/// Adds standard alias variations for a two-token person name
/// "first last": full name, last name, first name, "hashtag" joined form.
std::vector<std::string> PersonAliases(const std::string& first,
                                       const std::string& last) {
  return {first + " " + last, last, first + last};
}

}  // namespace

std::string SynthPersonName(Rng* rng) {
  std::string first = std::string(Pick(kFirstSyllables, rng)) + Pick(kSecondSyllables, rng);
  std::string last = std::string(Pick(kFirstSyllables, rng)) + Pick(kSurnameEnds, rng);
  return first + " " + last;
}

std::string SynthLocationName(Rng* rng) {
  return std::string(Pick(kFirstSyllables, rng)) + Pick(kSecondSyllables, rng) +
         Pick(kLocSuffixes, rng);
}

std::string SynthOrganizationName(Rng* rng) {
  return std::string(Pick(kOrgHeads, rng)) + " " + Pick(kFirstSyllables, rng) +
         Pick(kOrgTails, rng);
}

std::string SynthMiscName(Rng* rng) {
  return std::string(Pick(kMiscHeads, rng)) + Pick(kMiscTails, rng);
}

KnowledgeBase KnowledgeBase::BuildStandard(size_t extra_per_topic_type,
                                           uint64_t seed) {
  KnowledgeBase kb;
  kb.AddCoreEntities();
  Rng rng(seed);
  kb.AddProceduralEntities(extra_per_topic_type, &rng);
  return kb;
}

KnowledgeBase KnowledgeBase::BuildProceduralOnly(size_t per_topic_type,
                                                 uint64_t seed) {
  KnowledgeBase kb;
  Rng rng(seed);
  kb.AddProceduralEntities(per_topic_type, &rng);
  kb.non_entity_homographs_ = {"us", "apple", "fireflies", "corona", "who"};
  return kb;
}

void KnowledgeBase::Add(Entity entity) {
  NERGLOB_CHECK(!entity.aliases.empty()) << "entity needs at least one alias";
  entities_.push_back(std::move(entity));
}

std::vector<size_t> KnowledgeBase::EntitiesForTopic(Topic topic) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < entities_.size(); ++i) {
    if (entities_[i].topic == topic) out.push_back(i);
  }
  return out;
}

std::vector<size_t> KnowledgeBase::EntitiesForTopicType(
    Topic topic, text::EntityType type) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < entities_.size(); ++i) {
    if (entities_[i].topic == topic && entities_[i].type == type) out.push_back(i);
  }
  return out;
}

void KnowledgeBase::AddCoreEntities() {
  auto add = [this](const std::string& canonical, EntityType type, Topic topic,
                    std::vector<std::string> extra_aliases) {
    Entity e;
    e.canonical = canonical;
    e.type = type;
    e.topic = topic;
    e.aliases = {canonical};
    for (auto& a : extra_aliases) e.aliases.push_back(std::move(a));
    Add(std::move(e));
  };

  // --- Health / Covid stream (the paper's running example, Fig. 1). ---
  add("coronavirus", EntityType::kMisc, Topic::kHealth, {"covid", "covid19", "corona"});
  add("andy beshear", EntityType::kPerson, Topic::kHealth, {"beshear", "governor beshear"});
  add("italy", EntityType::kLocation, Topic::kHealth, {});
  add("united states", EntityType::kLocation, Topic::kHealth, {"us"});
  add("canada", EntityType::kLocation, Topic::kHealth, {});
  add("nhs", EntityType::kOrganization, Topic::kHealth, {});
  add("world health organization", EntityType::kOrganization, Topic::kHealth, {"who"});
  add("pfizer", EntityType::kOrganization, Topic::kHealth, {});
  add("anthony fauci", EntityType::kPerson, Topic::kHealth, {"fauci", "dr fauci"});
  add("wuhan", EntityType::kLocation, Topic::kHealth, {});
  add("remdesivir", EntityType::kMisc, Topic::kHealth, {});

  // --- Politics. ---
  add("donald trump", EntityType::kPerson, Topic::kPolitics, {"trump"});
  add("justice department", EntityType::kOrganization, Topic::kPolitics, {});
  add("russian government", EntityType::kOrganization, Topic::kPolitics, {"kremlin"});
  add("washington", EntityType::kPerson, Topic::kPolitics, {});  // the president
  add("washington", EntityType::kLocation, Topic::kPolitics, {});  // the state
  add("white house", EntityType::kOrganization, Topic::kPolitics, {});
  add("senate", EntityType::kOrganization, Topic::kPolitics, {});
  add("moscow", EntityType::kLocation, Topic::kPolitics, {});
  add("brexit", EntityType::kMisc, Topic::kPolitics, {});

  // --- Sports. ---
  add("michael jordan", EntityType::kPerson, Topic::kSports, {"jordan"});
  add("jordan", EntityType::kLocation, Topic::kSports, {});  // the country
  add("lakers", EntityType::kOrganization, Topic::kSports, {});
  add("madrid", EntityType::kLocation, Topic::kSports, {});
  add("super bowl", EntityType::kMisc, Topic::kSports, {"superbowl"});
  add("serena williams", EntityType::kPerson, Topic::kSports, {"serena"});
  add("fifa", EntityType::kOrganization, Topic::kSports, {});

  // --- Entertainment. ---
  add("fireflies", EntityType::kMisc, Topic::kEntertainment, {});  // the song
  add("paris hilton", EntityType::kPerson, Topic::kEntertainment, {"paris"});
  add("paris", EntityType::kLocation, Topic::kEntertainment, {});  // the city
  add("netflix", EntityType::kOrganization, Topic::kEntertainment, {});
  add("taylor swift", EntityType::kPerson, Topic::kEntertainment, {"taylor"});
  add("hollywood", EntityType::kLocation, Topic::kEntertainment, {});
  add("star wars", EntityType::kMisc, Topic::kEntertainment, {"starwars"});

  // --- Science. ---
  add("apple", EntityType::kOrganization, Topic::kScience, {});  // the company
  add("amazon", EntityType::kOrganization, Topic::kScience, {});  // the company
  add("amazon", EntityType::kLocation, Topic::kScience, {});      // the river
  add("nasa", EntityType::kOrganization, Topic::kScience, {});
  add("elon musk", EntityType::kPerson, Topic::kScience, {"musk", "elon"});
  add("mars", EntityType::kLocation, Topic::kScience, {});
  add("starlink", EntityType::kMisc, Topic::kScience, {});
  add("iphone", EntityType::kMisc, Topic::kScience, {});

  // Non-entity homographs and confusable common words that the generator
  // uses as O-labeled text ("us" the pronoun, "apple" the fruit, "fireflies"
  // the insects, "paris" never lowercase-only...). These create the surface
  // form ambiguity Global NER must resolve (Sec. V-C).
  non_entity_homographs_ = {"us",    "apple",  "fireflies", "amazon",
                            "mars",  "corona", "who"};
}

void KnowledgeBase::AddProceduralEntities(size_t per_topic_type, Rng* rng) {
  for (int t = 0; t < kNumTopics; ++t) {
    for (int ty = 0; ty < text::kNumEntityTypes; ++ty) {
      for (size_t k = 0; k < per_topic_type; ++k) {
        Entity e;
        e.topic = static_cast<Topic>(t);
        e.type = static_cast<EntityType>(ty);
        switch (e.type) {
          case EntityType::kPerson: {
            e.canonical = SynthPersonName(rng);
            auto parts = SplitWhitespace(e.canonical);
            e.aliases = PersonAliases(parts[0], parts[1]);
            e.canonical = e.aliases[0];
            break;
          }
          case EntityType::kLocation:
            e.canonical = SynthLocationName(rng);
            e.aliases = {e.canonical};
            break;
          case EntityType::kOrganization: {
            e.canonical = SynthOrganizationName(rng);
            auto parts = SplitWhitespace(e.canonical);
            e.aliases = {e.canonical, parts[1]};  // short form
            break;
          }
          case EntityType::kMisc:
            e.canonical = SynthMiscName(rng);
            e.aliases = {e.canonical};
            break;
        }
        Add(std::move(e));
      }
    }
  }
}

}  // namespace nerglob::data
