#include "data/topic_classifier.h"

#include <algorithm>

#include "common/check.h"
#include "nn/optimizer.h"

namespace nerglob::data {

TopicClassifier::TopicClassifier(size_t subword_buckets, size_t dim,
                                 uint64_t seed)
    : subwords_(subword_buckets) {
  Rng rng(seed);
  table_ = std::make_unique<nn::Embedding>(subword_buckets, dim, &rng);
  head_ = std::make_unique<nn::Linear>(dim, static_cast<size_t>(kNumTopics), &rng);
}

ag::Var TopicClassifier::Featurize(const stream::Message& message) const {
  std::vector<int> ids;
  for (const auto& token : message.tokens) {
    // URLs and mentions carry no topical signal.
    if (token.kind == text::TokenKind::kUrl ||
        token.kind == text::TokenKind::kMention) {
      continue;
    }
    const auto sub = subwords_.SubwordIds(token.match);
    ids.insert(ids.end(), sub.begin(), sub.end());
  }
  if (ids.empty()) ids.push_back(0);
  return ag::MeanRows(table_->Forward(ids));
}

double TopicClassifier::Train(const std::vector<stream::Message>& train,
                              int epochs, float lr, uint64_t seed) {
  NERGLOB_CHECK(!train.empty());
  Rng rng(seed);
  std::vector<stream::Message> data = train;
  nn::Adam optimizer(Parameters(), lr);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(&data);
    double epoch_loss = 0.0;
    size_t i = 0;
    while (i < data.size()) {
      optimizer.ZeroGrad();
      const size_t end = std::min(data.size(), i + 32);
      std::vector<ag::Var> rows;
      std::vector<int> labels;
      for (; i < end; ++i) {
        rows.push_back(Featurize(data[i]));
        labels.push_back(data[i].topic_id);
      }
      ag::Var loss = ag::CrossEntropyWithLogits(
          head_->Forward(ag::ConcatRows(rows)), labels);
      loss.Backward();
      optimizer.Step();
      epoch_loss += loss.value().At(0, 0) * static_cast<double>(rows.size());
    }
    last_loss = epoch_loss / static_cast<double>(data.size());
  }
  return last_loss;
}

Topic TopicClassifier::Predict(const stream::Message& message) const {
  const Matrix logits = head_->Forward(Featurize(message)).value();
  int best = 0;
  for (int t = 1; t < kNumTopics; ++t) {
    if (logits.At(0, static_cast<size_t>(t)) >
        logits.At(0, static_cast<size_t>(best))) {
      best = t;
    }
  }
  return static_cast<Topic>(best);
}

double TopicClassifier::Evaluate(const std::vector<stream::Message>& test) const {
  if (test.empty()) return 0.0;
  size_t correct = 0;
  for (const auto& msg : test) {
    if (static_cast<int>(Predict(msg)) == msg.topic_id) ++correct;
  }
  return static_cast<double>(correct) / test.size();
}

std::vector<ag::Var> TopicClassifier::Parameters() const {
  std::vector<ag::Var> out = table_->Parameters();
  for (const ag::Var& p : head_->Parameters()) out.push_back(p);
  return out;
}

}  // namespace nerglob::data
