#include "data/generator.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <unordered_map>

#include "common/check.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace nerglob::data {

namespace {

using text::EntityType;

/// Template token stream with typed slots. "{PER}" etc. mark entity slots;
/// every other whitespace-separated piece is a literal token.
struct Template {
  std::string pattern;
  Topic topic;
  bool generic = false;  ///< usable in every topic
};

/// Entity-bearing templates. Contexts are deliberately overlapping across
/// types ("says", "big day for", "everyone is talking about") so a locally
/// limited model confuses ORG/MISC with PER/LOC — the failure mode the
/// paper attributes to BERTweet (Sec. I case study).
const Template kTemplates[] = {
    // Health.
    {"{PER} shuts down schools as {MISC} cases rise", Topic::kHealth},
    {"{MISC} is spreading fast in {LOC}", Topic::kHealth},
    {"{LOC} reports new {MISC} deaths today", Topic::kHealth},
    {"{ORG} warns about the {MISC} surge", Topic::kHealth},
    {"{PER} says {LOC} must stay home now", Topic::kHealth},
    {"breaking : {ORG} approves new vaccine for {MISC}", Topic::kHealth},
    {"hospitals in {LOC} are full because of {MISC}", Topic::kHealth},
    {"{PER} announced a lockdown in {LOC}", Topic::kHealth},
    {"thank you {ORG} workers for fighting {MISC}", Topic::kHealth},
    {"{MISC} cases in {LOC} doubled this week", Topic::kHealth},
    // Politics.
    {"{PER} slams the {ORG} over a leaked memo", Topic::kPolitics},
    {"{ORG} opens investigation into {PER}", Topic::kPolitics},
    {"{PER} heads to {LOC} for an emergency summit", Topic::kPolitics},
    {"protests erupt in {LOC} after the {MISC} vote", Topic::kPolitics},
    {"{ORG} denies interfering in the election", Topic::kPolitics},
    {"{PER} says {MISC} was a mistake", Topic::kPolitics},
    {"the {ORG} passed the bill last night", Topic::kPolitics},
    {"voters in {LOC} are angry about {MISC}", Topic::kPolitics},
    // Sports.
    {"{PER} scores again as {ORG} win in {LOC}", Topic::kSports},
    {"{ORG} fans are celebrating in {LOC}", Topic::kSports},
    {"{PER} ruled out of the {MISC}", Topic::kSports},
    {"the {MISC} final will be played in {LOC}", Topic::kSports},
    {"{ORG} signed {PER} for a record fee", Topic::kSports},
    {"what a game by {PER} tonight", Topic::kSports},
    // Entertainment.
    {"{PER} drops the new single {MISC} tonight", Topic::kEntertainment},
    {"{MISC} is trending after the premiere in {LOC}", Topic::kEntertainment},
    {"{ORG} renews the show for another season", Topic::kEntertainment},
    {"{PER} was spotted in {LOC} last night", Topic::kEntertainment},
    {"listening to {MISC} on repeat all day", Topic::kEntertainment},
    {"{ORG} signs a huge deal with {PER}", Topic::kEntertainment},
    // Science.
    {"{ORG} launches a mission to {LOC}", Topic::kScience},
    {"{PER} unveils the new {MISC} today", Topic::kScience},
    {"{ORG} stock jumps after the {MISC} reveal", Topic::kScience},
    {"scientists in {LOC} are studying {MISC}", Topic::kScience},
    {"{PER} says {ORG} will build it in {LOC}", Topic::kScience},
    {"the {MISC} update is rolling out now", Topic::kScience},
    // Cross-type confusable contexts (generic).
    {"{ORG} says it will act soon", Topic::kHealth, true},
    {"{MISC} is everywhere in {LOC} right now", Topic::kHealth, true},
    {"everyone is talking about {ORG}", Topic::kHealth, true},
    {"everyone is talking about {MISC}", Topic::kHealth, true},
    {"{PER} is all over the news", Topic::kHealth, true},
    {"big day for {ORG}", Topic::kHealth, true},
    {"big day for {PER}", Topic::kHealth, true},
    {"{LOC} is beautiful this time of year", Topic::kHealth, true},
    {"so proud of {PER} today", Topic::kHealth, true},
};

/// Sentences whose only "entity-looking" words are non-entities: the gold
/// label is O everywhere. These put the pronoun "us", the fruit "apple",
/// the beer "corona", the insects "fireflies" etc. into the stream so that
/// surface forms are genuinely ambiguous (Sec. V-C).
const char* const kHomographSentences[] = {
    "please help us get through this",
    "none of us saw that coming",
    "this affects all of us honestly",
    "so who is going to fix this",
    "who else is tired of this",
    "an apple a day keeps the doctor away",
    "watching fireflies in the garden tonight",
    "drinking a cold corona on the beach",
    "they left us waiting for hours",
};

/// Entity-free filler chatter.
const char* const kFillerSentences[] = {
    "good morning everyone have a great day",
    "i can not believe this is happening",
    "so tired of all this news",
    "what a week it has been",
    "stay safe out there friends",
    "honestly this made my whole day",
    "cannot stop thinking about it",
};

std::string TitleCase(const std::string& word) {
  std::string out = word;
  if (!out.empty()) {
    out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}

std::string UpperCase(const std::string& word) {
  std::string out = word;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ApplyTypo(const std::string& word, Rng* rng) {
  if (word.size() <= 3) return word;
  const size_t pos = 1 + rng->NextBelow(word.size() - 2);
  std::string out = word;
  if (rng->NextBernoulli(0.5)) {
    out.erase(pos, 1);  // drop a character
  } else {
    out.insert(pos, 1, word[pos]);  // duplicate a character
  }
  return out;
}

std::string Elongate(const std::string& word, Rng* rng) {
  if (word.empty() || !std::isalpha(static_cast<unsigned char>(word.back()))) {
    return word;
  }
  std::string out = word;
  const size_t extra = 2 + rng->NextBelow(3);
  out.append(extra, word.back());
  return out;
}

bool HasOrgOrMiscSlot(const Template& t) {
  return t.pattern.find("{ORG}") != std::string::npos ||
         t.pattern.find("{MISC}") != std::string::npos;
}

bool ParseSlot(const std::string& piece, EntityType* type) {
  if (piece == "{PER}") {
    *type = EntityType::kPerson;
  } else if (piece == "{LOC}") {
    *type = EntityType::kLocation;
  } else if (piece == "{ORG}") {
    *type = EntityType::kOrganization;
  } else if (piece == "{MISC}") {
    *type = EntityType::kMisc;
  } else {
    return false;
  }
  return true;
}

}  // namespace

DatasetSpec MakeDatasetSpec(const std::string& name, double scale) {
  Result<DatasetSpec> spec = TryMakeDatasetSpec(name, scale);
  NERGLOB_CHECK(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

Result<DatasetSpec> TryMakeDatasetSpec(const std::string& name, double scale) {
  if (!(scale > 0.0 && scale <= 1.0)) {
    return Status::InvalidArgument("dataset scale must be in (0, 1], got " +
                                   std::to_string(scale));
  }
  DatasetSpec spec;
  spec.name = name;
  auto scaled = [scale](size_t n) {
    return std::max<size_t>(50, static_cast<size_t>(n * scale));
  };
  if (name == "D1") {
    spec.num_messages = scaled(1000);
    spec.topics = {Topic::kPolitics};
    spec.zipf_exponent = 1.1;
    spec.seed = 11;
  } else if (name == "D2") {
    spec.num_messages = scaled(2000);
    spec.topics = {Topic::kHealth};
    spec.zipf_exponent = 1.1;
    spec.seed = 12;
  } else if (name == "D3") {
    spec.num_messages = scaled(3000);
    spec.topics = {Topic::kPolitics, Topic::kSports, Topic::kScience};
    spec.zipf_exponent = 1.05;
    spec.seed = 13;
  } else if (name == "D4") {
    spec.num_messages = scaled(6000);
    spec.topics = {Topic::kHealth, Topic::kPolitics, Topic::kSports,
                   Topic::kEntertainment, Topic::kScience};
    spec.zipf_exponent = 1.0;
    spec.seed = 14;
  } else if (name == "D5") {
    spec.num_messages = scaled(3430);
    // The paper's D5 is a single-topic stream; BERTweet's large-scale
    // pretraining makes entity-type semantics transfer across topics. Our
    // from-scratch encoder has no pretraining, so the Global NER training
    // stream covers all topics instead (substitution documented in
    // DESIGN.md) — stream-like Zipf recurrence is preserved.
    spec.topics = {Topic::kHealth, Topic::kPolitics, Topic::kSports,
                   Topic::kEntertainment, Topic::kScience};
    spec.zipf_exponent = 1.1;
    spec.seed = 15;
  } else if (name == "WNUT17") {
    spec.num_messages = scaled(1287);
    spec.topics = {Topic::kHealth, Topic::kPolitics, Topic::kSports,
                   Topic::kEntertainment, Topic::kScience};
    spec.zipf_exponent = 0.3;  // random sampling: little entity recurrence
    spec.seed = 16;
  } else if (name == "BTC") {
    spec.num_messages = scaled(9553);
    spec.topics = {Topic::kHealth, Topic::kPolitics, Topic::kSports,
                   Topic::kEntertainment, Topic::kScience};
    spec.zipf_exponent = 0.2;
    spec.seed = 17;
  } else if (name == "TRAIN") {
    spec.num_messages = scaled(1800);
    spec.topics = {Topic::kHealth, Topic::kPolitics, Topic::kSports,
                   Topic::kEntertainment, Topic::kScience};
    spec.zipf_exponent = 0.4;
    // Scarce ORG/MISC supervision + held-out contexts: reproduces the local
    // model's weakness on those types and on novel stream contexts
    // (paper Sec. VI-A / Table IV).
    spec.org_misc_weight = 0.05;
    spec.template_coverage = 0.6;
    spec.seed = 18;
  } else if (name == "TRAIN_CLEAN") {
    // Clean-text variant of TRAIN for the generic-BERT baseline: same
    // supervision, none of the microblog noise — models a generic-domain
    // model's mismatch with noisy streams (BERT-NER vs BERTweet).
    spec = MakeDatasetSpec("TRAIN", scale);
    spec.name = name;
    spec.noise.lowercase_entity = 0.25;
    spec.noise.uppercase_entity = 0.0;
    spec.noise.hashtagify = 0.03;
    spec.noise.typo = 0.0;
    spec.noise.elongation = 0.0;
    spec.noise.rt_prefix = 0.05;
    spec.noise.append_url = 0.05;
    spec.noise.append_emoticon = 0.0;
  } else {
    return Status::InvalidArgument(
        "unknown dataset spec: \"" + name +
        "\" (expected D1..D5, WNUT17, BTC, TRAIN or TRAIN_CLEAN)");
  }
  return spec;
}

StreamGenerator::StreamGenerator(const KnowledgeBase* kb) : kb_(kb) {
  NERGLOB_CHECK(kb != nullptr);
}

std::vector<stream::Message> StreamGenerator::Generate(
    const DatasetSpec& spec) const {
  Rng rng(spec.seed);
  text::Tokenizer tokenizer;

  // Per (topic, type) entity pools with a dataset-specific popularity order
  // (the Zipf rank permutation differs between datasets).
  std::unordered_map<int, std::vector<size_t>> pools;
  for (Topic topic : spec.topics) {
    for (int ty = 0; ty < text::kNumEntityTypes; ++ty) {
      const int key = static_cast<int>(topic) * text::kNumEntityTypes + ty;
      auto pool = kb_->EntitiesForTopicType(topic, static_cast<EntityType>(ty));
      Rng pool_rng(spec.seed * 977 + static_cast<uint64_t>(key));
      pool_rng.Shuffle(&pool);
      pools[key] = std::move(pool);
    }
  }

  // Candidate templates for this dataset's topics, with sampling weights.
  // template_coverage < 1 drops a deterministic suffix of each topic's
  // inventory (every k-th template), simulating contexts unseen at training.
  std::vector<const Template*> templates;
  std::vector<double> weights;
  size_t template_index = 0;
  for (const Template& t : kTemplates) {
    const bool topic_match =
        std::find(spec.topics.begin(), spec.topics.end(), t.topic) !=
        spec.topics.end();
    if (!topic_match && !t.generic) continue;
    ++template_index;
    if (spec.template_coverage < 1.0) {
      const double phase = static_cast<double>(template_index % 10) / 10.0;
      if (phase >= spec.template_coverage) continue;
    }
    templates.push_back(&t);
    weights.push_back(HasOrgOrMiscSlot(t) ? spec.org_misc_weight : 1.0);
  }
  NERGLOB_CHECK(!templates.empty());

  std::vector<stream::Message> messages;
  messages.reserve(spec.num_messages);
  for (size_t m = 0; m < spec.num_messages; ++m) {
    std::vector<std::string> words;
    std::vector<std::pair<size_t, size_t>> span_bounds;
    std::vector<EntityType> span_types;
    // Default topic for entity-free chatter; entity templates override it
    // with the topic their slots are filled from.
    Topic message_topic = spec.topics[m % spec.topics.size()];

    const double roll = rng.NextDouble();
    if (roll < 0.08) {
      // Homograph sentence: ambiguous words in their non-entity sense.
      const char* s = kHomographSentences[rng.NextBelow(
          std::size(kHomographSentences))];
      words = SplitWhitespace(s);
    } else if (roll < 0.16) {
      const char* s = kFillerSentences[rng.NextBelow(std::size(kFillerSentences))];
      words = SplitWhitespace(s);
    } else {
      const Template& tpl = *templates[rng.NextWeighted(weights)];
      const Topic topic =
          tpl.generic ? spec.topics[rng.NextBelow(spec.topics.size())] : tpl.topic;
      message_topic = topic;
      for (const std::string& piece : SplitWhitespace(tpl.pattern)) {
        EntityType slot_type;
        if (!ParseSlot(piece, &slot_type)) {
          std::string word = piece;
          if (rng.NextBernoulli(spec.noise.elongation)) word = Elongate(word, &rng);
          words.push_back(std::move(word));
          continue;
        }
        // Fill the slot: Zipf-ranked entity, then a random alias.
        const int key =
            static_cast<int>(topic) * text::kNumEntityTypes + static_cast<int>(slot_type);
        const auto& pool = pools.at(key);
        NERGLOB_CHECK(!pool.empty())
            << "no entities for topic/type " << key << " in KB";
        const Entity& entity =
            kb_->entity(pool[rng.NextZipf(pool.size(), spec.zipf_exponent)]);
        const std::string& alias =
            entity.aliases[rng.NextBelow(entity.aliases.size())];
        std::vector<std::string> mention = SplitWhitespace(alias);
        const size_t begin = words.size();
        if (rng.NextBernoulli(spec.noise.hashtagify)) {
          // "#AndyBeshear": one hashtag token covering the whole mention.
          std::string joined = "#";
          for (const std::string& w : mention) joined += TitleCase(w);
          words.push_back(std::move(joined));
        } else {
          const double style = rng.NextDouble();
          for (std::string w : mention) {
            if (rng.NextBernoulli(spec.noise.typo)) w = ApplyTypo(w, &rng);
            if (style < spec.noise.lowercase_entity) {
              // keep lowercase
            } else if (style < spec.noise.lowercase_entity + spec.noise.uppercase_entity) {
              w = UpperCase(w);
            } else {
              w = TitleCase(w);
            }
            words.push_back(std::move(w));
          }
        }
        span_bounds.emplace_back(begin, words.size());
        span_types.push_back(slot_type);
      }
    }

    // Stream decorations.
    if (rng.NextBernoulli(spec.noise.rt_prefix)) {
      std::vector<std::string> prefix = {
          "rt", "@user" + std::to_string(rng.NextBelow(10000)), ":"};
      words.insert(words.begin(), prefix.begin(), prefix.end());
      for (auto& [b, e] : span_bounds) {
        b += 3;
        e += 3;
      }
    }
    if (rng.NextBernoulli(spec.noise.append_url)) {
      words.push_back("https://t.co/" + std::to_string(rng.NextBelow(100000)));
    }
    if (rng.NextBernoulli(spec.noise.append_emoticon)) {
      words.push_back(rng.NextBernoulli(0.5) ? ":)" : ":(");
    }

    stream::Message msg;
    msg.id = static_cast<int64_t>(m);
    msg.topic_id = static_cast<int>(message_topic);
    msg.text = Join(words, " ");
    msg.tokens = tokenizer.Tokenize(msg.text);
    NERGLOB_CHECK_EQ(msg.tokens.size(), words.size())
        << "generator produced a multi-token word in: " << msg.text;
    for (size_t s = 0; s < span_bounds.size(); ++s) {
      msg.gold_spans.push_back(
          {span_bounds[s].first, span_bounds[s].second, span_types[s]});
    }
    messages.push_back(std::move(msg));
  }
  return messages;
}

std::vector<lm::LabeledSentence> ToLabeledSentences(
    const std::vector<stream::Message>& messages) {
  std::vector<lm::LabeledSentence> out;
  out.reserve(messages.size());
  for (const auto& msg : messages) {
    lm::LabeledSentence ex;
    ex.tokens = msg.tokens;
    ex.bio = text::EncodeBio(msg.tokens.size(), msg.gold_spans);
    out.push_back(std::move(ex));
  }
  return out;
}

size_t CountUniqueGoldEntities(const std::vector<stream::Message>& messages) {
  std::set<std::string> unique;
  for (const auto& msg : messages) {
    for (const auto& span : msg.gold_spans) {
      std::string surface;
      for (size_t t = span.begin_token; t < span.end_token; ++t) {
        if (!surface.empty()) surface += ' ';
        surface += msg.tokens[t].match;
      }
      unique.insert(surface + "/" + text::EntityTypeName(span.type));
    }
  }
  return unique.size();
}

}  // namespace nerglob::data
