#ifndef NERGLOB_DATA_TOPIC_CLASSIFIER_H_
#define NERGLOB_DATA_TOPIC_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "data/knowledge_base.h"
#include "nn/layers.h"
#include "stream/message.h"
#include "text/subword.h"

namespace nerglob::data {

/// Stream-topic classifier — the deployment component the paper sketches in
/// Sec. VI ("In real-world deployment, a topic classifier could precede an
/// NER tool launched for streams"): routes incoming messages to the
/// per-topic NER Globalizer instance.
///
/// Model: hashed bag-of-subwords mean embedding + linear softmax over the
/// kNumTopics topics. Tiny, fast, and accurate on topical streams.
class TopicClassifier : public nn::Module {
 public:
  TopicClassifier(size_t subword_buckets, size_t dim, uint64_t seed);

  /// Trains on topic-labeled messages (message.topic_id). Returns the
  /// final-epoch mean cross-entropy.
  double Train(const std::vector<stream::Message>& train, int epochs, float lr,
               uint64_t seed);

  /// Most likely topic for a message.
  Topic Predict(const stream::Message& message) const;

  /// Accuracy over a labeled set.
  double Evaluate(const std::vector<stream::Message>& test) const;

  std::vector<ag::Var> Parameters() const override;

 private:
  /// (1, dim) bag-of-subwords embedding of the message.
  ag::Var Featurize(const stream::Message& message) const;

  text::HashedSubwordVocab subwords_;
  std::unique_ptr<nn::Embedding> table_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace nerglob::data

#endif  // NERGLOB_DATA_TOPIC_CLASSIFIER_H_
