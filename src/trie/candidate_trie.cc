#include "trie/candidate_trie.h"

namespace nerglob::trie {

bool CandidateTrie::Insert(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return false;
  Node* node = &root_;
  for (const std::string& tok : tokens) {
    auto it = node->children.find(tok);
    if (it == node->children.end()) {
      it = node->children.emplace(tok, std::make_unique<Node>()).first;
    }
    node = it->second.get();
  }
  if (node->terminal) return false;
  node->terminal = true;
  ++size_;
  return true;
}

bool CandidateTrie::Contains(const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return false;
  const Node* node = &root_;
  for (const std::string& tok : tokens) {
    auto it = node->children.find(tok);
    if (it == node->children.end()) return false;
    node = it->second.get();
  }
  return node->terminal;
}

std::vector<TokenSpan> CandidateTrie::FindLongestMatches(
    const std::vector<std::string>& tokens, size_t max_span) const {
  std::vector<TokenSpan> matches;
  size_t i = 0;
  while (i < tokens.size()) {
    // Walk the trie from position i, remembering the longest terminal hit.
    const Node* node = &root_;
    size_t best_end = 0;  // 0 = no match
    const size_t limit = std::min(tokens.size(), i + max_span);
    for (size_t j = i; j < limit; ++j) {
      auto it = node->children.find(tokens[j]);
      if (it == node->children.end()) break;
      node = it->second.get();
      if (node->terminal) best_end = j + 1;
    }
    if (best_end > 0) {
      matches.push_back({i, best_end});
      i = best_end;  // resume after the match (non-overlapping output)
    } else {
      ++i;  // shift the window by one token
    }
  }
  return matches;
}

}  // namespace nerglob::trie
