#include "trie/candidate_trie.h"

#include <algorithm>

namespace nerglob::trie {

bool CandidateTrie::Insert(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return false;
  Node* node = &root_;
  for (const std::string& tok : tokens) {
    auto it = node->children.find(tok);
    if (it == node->children.end()) {
      it = node->children.emplace(tok, std::make_unique<Node>()).first;
    }
    node = it->second.get();
  }
  if (node->terminal) return false;
  node->terminal = true;
  ++size_;
  return true;
}

bool CandidateTrie::Remove(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return false;
  // Walk down, recording the path so empty suffix nodes can be pruned.
  std::vector<Node*> path;
  path.reserve(tokens.size() + 1);
  Node* node = &root_;
  path.push_back(node);
  for (const std::string& tok : tokens) {
    auto it = node->children.find(tok);
    if (it == node->children.end()) return false;
    node = it->second.get();
    path.push_back(node);
  }
  if (!node->terminal) return false;
  node->terminal = false;
  --size_;
  // Prune trailing nodes that are neither terminal nor a prefix of another
  // registered form. path[i] is the node reached after tokens[0..i).
  for (size_t i = tokens.size(); i > 0; --i) {
    Node* child = path[i];
    if (child->terminal || !child->children.empty()) break;
    path[i - 1]->children.erase(tokens[i - 1]);
  }
  return true;
}

size_t CandidateTrie::MemoryUsageBytes() const {
  // Iterative walk; counts node structs, map entry overhead, and key chars.
  size_t bytes = sizeof(CandidateTrie);
  std::vector<const Node*> stack = {&root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    bytes += sizeof(Node);
    for (const auto& [key, child] : node->children) {
      bytes += sizeof(void*) * 4 + key.capacity();  // approx map-entry cost
      stack.push_back(child.get());
    }
  }
  return bytes;
}

std::vector<std::vector<std::string>> CandidateTrie::Forms() const {
  // Recursive DFS with children visited in sorted key order, so the output
  // depends only on the registered form set.
  struct Walker {
    std::vector<std::string> prefix;
    std::vector<std::vector<std::string>> out;
    void Visit(const Node& node) {
      if (node.terminal) out.push_back(prefix);
      std::vector<const std::pair<const std::string, std::unique_ptr<Node>>*>
          kids;
      kids.reserve(node.children.size());
      for (const auto& kv : node.children) kids.push_back(&kv);
      std::sort(kids.begin(), kids.end(),
                [](const auto* a, const auto* b) { return a->first < b->first; });
      for (const auto* kv : kids) {
        prefix.push_back(kv->first);
        Visit(*kv->second);
        prefix.pop_back();
      }
    }
  } walker;
  walker.Visit(root_);
  return std::move(walker.out);
}

bool CandidateTrie::Contains(const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return false;
  const Node* node = &root_;
  for (const std::string& tok : tokens) {
    auto it = node->children.find(tok);
    if (it == node->children.end()) return false;
    node = it->second.get();
  }
  return node->terminal;
}

std::vector<TokenSpan> CandidateTrie::FindLongestMatches(
    const std::vector<std::string>& tokens, size_t max_span) const {
  std::vector<TokenSpan> matches;
  size_t i = 0;
  while (i < tokens.size()) {
    // Walk the trie from position i, remembering the longest terminal hit.
    const Node* node = &root_;
    size_t best_end = 0;  // 0 = no match
    const size_t limit = std::min(tokens.size(), i + max_span);
    for (size_t j = i; j < limit; ++j) {
      auto it = node->children.find(tokens[j]);
      if (it == node->children.end()) break;
      node = it->second.get();
      if (node->terminal) best_end = j + 1;
    }
    if (best_end > 0) {
      matches.push_back({i, best_end});
      i = best_end;  // resume after the match (non-overlapping output)
    } else {
      ++i;  // shift the window by one token
    }
  }
  return matches;
}

}  // namespace nerglob::trie
