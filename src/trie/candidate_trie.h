#ifndef NERGLOB_TRIE_CANDIDATE_TRIE_H_
#define NERGLOB_TRIE_CANDIDATE_TRIE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace nerglob::trie {

/// Token span [begin, end) over a sentence.
struct TokenSpan {
  size_t begin = 0;
  size_t end = 0;

  friend bool operator==(const TokenSpan& a, const TokenSpan& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// CandidatePrefixTrie (CTrie, Sec. IV): a prefix-trie forest over the
/// token sequences of candidate surface forms, supporting the
/// longest-match scan of Sec. V-A. All inputs are expected in matching
/// form (lowercased, hashtag-stripped — see text::Token::match); the trie
/// itself performs exact token comparison.
///
/// Thread-safety: const methods (Contains, FindLongestMatches, size,
/// MemoryUsageBytes) are safe to call concurrently with each other;
/// Insert/Remove mutate the node tree and must not race with any other
/// method. The pipeline serializes all mutations on the calling thread and
/// only fans out read-only scans.
class CandidateTrie {
 public:
  CandidateTrie() = default;

  // Movable, not copyable (owns a node tree).
  CandidateTrie(CandidateTrie&&) = default;
  CandidateTrie& operator=(CandidateTrie&&) = default;
  CandidateTrie(const CandidateTrie&) = delete;
  CandidateTrie& operator=(const CandidateTrie&) = delete;

  /// Registers a surface form. Returns true if it was not present before.
  /// Empty token sequences are ignored (returns false).
  /// Cost: O(|tokens|) hash lookups (amortized O(total token characters)).
  bool Insert(const std::vector<std::string>& tokens);

  /// Unregisters a surface form, pruning any trie nodes that no longer
  /// lead to a registered form. Returns true if the form was present.
  /// Prefixes that are themselves registered forms (e.g. "andy" under
  /// "andy beshear") are untouched. Cost: O(|tokens|) hash lookups.
  bool Remove(const std::vector<std::string>& tokens);

  /// Exact membership test. Cost: O(|tokens|) hash lookups.
  bool Contains(const std::vector<std::string>& tokens) const;

  /// All registered surface forms, sorted lexicographically by token
  /// sequence (deterministic regardless of insertion/removal history).
  /// Cost: O(nodes log fanout). Used by checkpoint serialization — an
  /// equal form set rebuilds an equivalent trie.
  std::vector<std::vector<std::string>> Forms() const;

  /// Number of registered surface forms. O(1).
  size_t size() const { return size_; }

  /// Approximate heap footprint of the node tree in bytes (nodes + child
  /// map entries + key strings). Cost: O(nodes) — intended for periodic
  /// accounting, not per-message hot paths.
  size_t MemoryUsageBytes() const;

  /// Default lookahead: mentions up to this many tokens are matched
  /// ("a token ... alone or together with up to k following tokens").
  static constexpr size_t kDefaultMaxSpan = 6;

  /// Scans a sentence (matching-form tokens) and returns the set of
  /// non-overlapping longest subsequences that are registered surface
  /// forms. Greedy left-to-right: at each position the longest match wins
  /// and the scan resumes after it; on no match the window shifts by one.
  /// Cost: O(|tokens| * max_span) hash lookups, independent of trie size.
  std::vector<TokenSpan> FindLongestMatches(
      const std::vector<std::string>& tokens,
      size_t max_span = kDefaultMaxSpan) const;

 private:
  struct Node {
    std::unordered_map<std::string, std::unique_ptr<Node>> children;
    bool terminal = false;
  };

  Node root_;
  size_t size_ = 0;
};

}  // namespace nerglob::trie

#endif  // NERGLOB_TRIE_CANDIDATE_TRIE_H_
