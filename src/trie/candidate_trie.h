#ifndef NERGLOB_TRIE_CANDIDATE_TRIE_H_
#define NERGLOB_TRIE_CANDIDATE_TRIE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace nerglob::trie {

/// Token span [begin, end) over a sentence.
struct TokenSpan {
  size_t begin = 0;
  size_t end = 0;

  friend bool operator==(const TokenSpan& a, const TokenSpan& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// CandidatePrefixTrie (CTrie, Sec. IV): a prefix-trie forest over the
/// token sequences of candidate surface forms, supporting the
/// longest-match scan of Sec. V-A. All inputs are expected in matching
/// form (lowercased, hashtag-stripped — see text::Token::match); the trie
/// itself performs exact token comparison.
class CandidateTrie {
 public:
  CandidateTrie() = default;

  // Movable, not copyable (owns a node tree).
  CandidateTrie(CandidateTrie&&) = default;
  CandidateTrie& operator=(CandidateTrie&&) = default;
  CandidateTrie(const CandidateTrie&) = delete;
  CandidateTrie& operator=(const CandidateTrie&) = delete;

  /// Registers a surface form. Returns true if it was not present before.
  /// Empty token sequences are ignored (returns false).
  bool Insert(const std::vector<std::string>& tokens);

  /// Exact membership test.
  bool Contains(const std::vector<std::string>& tokens) const;

  /// Number of registered surface forms.
  size_t size() const { return size_; }

  /// Default lookahead: mentions up to this many tokens are matched
  /// ("a token ... alone or together with up to k following tokens").
  static constexpr size_t kDefaultMaxSpan = 6;

  /// Scans a sentence (matching-form tokens) and returns the set of
  /// non-overlapping longest subsequences that are registered surface
  /// forms. Greedy left-to-right: at each position the longest match wins
  /// and the scan resumes after it; on no match the window shifts by one.
  std::vector<TokenSpan> FindLongestMatches(
      const std::vector<std::string>& tokens,
      size_t max_span = kDefaultMaxSpan) const;

 private:
  struct Node {
    std::unordered_map<std::string, std::unique_ptr<Node>> children;
    bool terminal = false;
  };

  Node root_;
  size_t size_ = 0;
};

}  // namespace nerglob::trie

#endif  // NERGLOB_TRIE_CANDIDATE_TRIE_H_
