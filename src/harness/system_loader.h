#ifndef NERGLOB_HARNESS_SYSTEM_LOADER_H_
#define NERGLOB_HARNESS_SYSTEM_LOADER_H_

#include <string>

#include "common/status.h"
#include "harness/experiment.h"

namespace nerglob::harness {

/// Strips a `--model=PATH` argument from argv (updating *argc) and returns
/// the path, or "" when the flag is absent. Every example accepts the flag
/// in any position; remaining arguments keep their relative order.
std::string ParseModelFlag(int* argc, char** argv);

/// The examples' shared train-or-load entry point.
///
/// With an empty `model_path` this is BuildTrainedSystem (train, or reload
/// from the options cache). With a path it loads the `.ngb` bundle saved
/// by `train_model` (or by a cached harness run) instead of training —
/// the worlds are still generated from `options`, so datasets match, but
/// the architecture comes from the file (options' architecture knobs are
/// ignored). Corrupt or version-mismatched files return a non-OK Status.
Result<TrainedSystem> LoadOrTrainSystem(const BuildOptions& options,
                                        const std::string& model_path);

}  // namespace nerglob::harness

#endif  // NERGLOB_HARNESS_SYSTEM_LOADER_H_
