#include "harness/experiment.h"

#include <array>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "io/tensor_io.h"

namespace nerglob::harness {

namespace {

/// Hash of all options that affect trained parameters (the cache key).
std::string OptionsKey(const BuildOptions& o) {
  std::ostringstream os;
  os << data::kWorldVersion << '|' << o.scale << '|'
     << static_cast<int>(o.objective) << '|'
     << o.lm_config.d_model << '|' << o.lm_config.num_heads << '|'
     << o.lm_config.num_layers << '|' << o.lm_config.ff_mult << '|'
     << o.lm_config.max_seq_len << '|' << o.lm_config.subword_buckets << '|'
     << o.lm_config.dropout << '|' << o.pretrain_epochs << '|'
     << o.lm_epochs << '|'
     << o.kb_entities_per_topic_type << '|' << o.max_triplets << '|'
     << o.embedder_epochs << '|' << o.classifier_epochs << '|'
     << o.classifier_hidden << '|' << static_cast<int>(o.pooling) << '|'
     << o.normalize_embedder << '|' << o.subset_augmentation << '|' << o.seed;
  return StrFormat("%016llx",
                   static_cast<unsigned long long>(Fnv1aHash(os.str())));
}

/// The architecture slice of the build options — what the bundle records.
core::ModelBundleConfig BundleConfigFromOptions(const BuildOptions& o) {
  core::ModelBundleConfig c;
  c.lm = o.lm_config;
  c.classifier_hidden = o.classifier_hidden;
  c.pooling = o.pooling;
  c.normalize_embedder = o.normalize_embedder;
  c.cluster_threshold = o.cluster_threshold;
  c.seed = o.seed;
  return c;
}

/// Baseline-cache blob: all parameter matrices in one checksummed record.
void SaveParams(const std::string& path, const std::vector<ag::Var>& params) {
  io::TensorWriter writer(path);
  writer.PutU64(params.size());
  for (const ag::Var& p : params) writer.PutMatrix(p.value());
  writer.EndRecord(io::kTagBlob);
  const Status st = writer.Finish();
  if (!st.ok()) {
    NERGLOB_LOG(kWarning) << "baseline cache write failed: " << st.ToString();
  }
}

bool LoadParams(const std::string& path, std::vector<ag::Var>* params) {
  io::TensorReader reader(path);
  if (!reader.NextRecord(io::kTagBlob).ok()) return false;
  uint64_t n = 0;
  if (!reader.GetU64(&n) || n != params->size()) return false;
  std::vector<Matrix> staged(params->size());
  for (size_t i = 0; i < staged.size(); ++i) {
    if (!reader.GetMatrix(&staged[i]) ||
        staged[i].rows() != (*params)[i].rows() ||
        staged[i].cols() != (*params)[i].cols()) {
      return false;
    }
  }
  if (!reader.ExpectRecordEnd().ok()) return false;
  for (size_t i = 0; i < staged.size(); ++i) {
    (*params)[i].mutable_value() = std::move(staged[i]);
  }
  return true;
}

}  // namespace

/// Packs the harness's provenance numbers into the bundle's stats vector
/// (and back). Order matters; kept stable across cache generations.
std::vector<double> StatsFromSystem(const TrainedSystem& s) {
  return {s.fine_tune_loss,
          s.embedder_result.train_loss,
          s.embedder_result.validation_loss,
          static_cast<double>(s.embedder_result.dataset_size),
          static_cast<double>(s.embedder_result.epochs_run),
          s.classifier_result.validation_macro_f1,
          static_cast<double>(s.classifier_result.num_candidates),
          static_cast<double>(s.d5_mention_examples)};
}

void StatsIntoSystem(const std::vector<double>& stats, TrainedSystem* s) {
  if (stats.size() < 8) return;
  s->fine_tune_loss = stats[0];
  s->embedder_result.train_loss = stats[1];
  s->embedder_result.validation_loss = stats[2];
  s->embedder_result.dataset_size = static_cast<size_t>(stats[3]);
  s->embedder_result.epochs_run = static_cast<int>(stats[4]);
  s->classifier_result.validation_macro_f1 = stats[5];
  s->classifier_result.num_candidates = static_cast<size_t>(stats[6]);
  s->d5_mention_examples = static_cast<size_t>(stats[7]);
}

BuildOptions TinyTestOptions() {
  BuildOptions options;
  options.scale = 0.08;
  options.lm_config.d_model = 32;
  options.lm_config.num_heads = 2;
  options.lm_config.num_layers = 1;
  options.lm_config.subword_buckets = 1024;
  options.max_triplets = 4000;
  options.embedder_epochs = 15;
  options.classifier_epochs = 40;
  options.kb_entities_per_topic_type = 10;
  options.cache_dir = "";  // always train fresh in tests
  return options;
}

double DefaultScale() {
  return env::EnvFloat("NERGLOB_SCALE", 0.25,
                       std::numeric_limits<double>::min(), 1.0);
}

std::string DefaultCacheDir() {
  const std::string dir = env::EnvString("NERGLOB_CACHE_DIR", "nerglob_cache",
                                         /*empty_is_unset=*/false);
  return dir == "none" ? std::string() : dir;
}

TrainedSystem BuildTrainedSystem(const BuildOptions& options) {
  TrainedSystem system;
  system.kb_train = data::KnowledgeBase::BuildProceduralOnly(
      options.kb_entities_per_topic_type, options.seed * 31 + 1);
  system.kb_eval = data::KnowledgeBase::BuildStandard(
      options.kb_entities_per_topic_type, options.seed * 31 + 2);
  system.bundle = core::ModelBundle(BundleConfigFromOptions(options));

  // Cache lookup: the trained bundle as a regular `.ngb` artifact (the
  // options hash keys the training recipe; the fingerprint check inside
  // ModelBundle::Load guards the architecture).
  std::string cache_path;
  if (!options.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
    cache_path = options.cache_dir + "/system_" + OptionsKey(options) + ".ngb";
    Result<core::ModelBundle> cached = core::ModelBundle::Load(cache_path);
    if (cached.ok() &&
        cached->Fingerprint() == system.bundle.Fingerprint()) {
      system.bundle = std::move(cached).value();
      StatsIntoSystem(system.bundle.training_stats(), &system);
      return system;
    }
  }

  NERGLOB_LOG(kInfo) << "training system (cache miss): scale " << options.scale
                     << ", d_model " << options.lm_config.d_model;

  // 0. Optional masked-LM pretraining on unlabeled text from both worlds.
  data::StreamGenerator train_gen(&system.kb_train);
  if (options.pretrain_epochs > 0) {
    data::StreamGenerator eval_world_gen(&system.kb_eval);
    std::vector<std::vector<text::Token>> corpus;
    for (const auto& msg :
         train_gen.Generate(data::MakeDatasetSpec("TRAIN", options.scale))) {
      corpus.push_back(msg.tokens);
    }
    for (const auto& msg :
         eval_world_gen.Generate(data::MakeDatasetSpec("BTC", options.scale))) {
      corpus.push_back(msg.tokens);  // unlabeled usage: tokens only
    }
    lm::PretrainOptions po;
    po.epochs = options.pretrain_epochs;
    po.seed = options.seed * 31 + 9;
    lm::PretrainMlm(system.bundle.mutable_model(), corpus, po);
  }

  // 1. Fine-tune Local NER on the TRAIN corpus (procedural world).
  auto train_msgs = train_gen.Generate(data::MakeDatasetSpec("TRAIN", options.scale));
  lm::FineTuneOptions ft;
  ft.epochs = options.lm_epochs;
  ft.seed = options.seed * 31 + 5;
  system.fine_tune_loss =
      lm::FineTuneForNer(system.bundle.mutable_model(),
                         data::ToLabeledSentences(train_msgs), ft);

  // 2. Collect D5 mention examples (eval world) for Global NER training.
  data::StreamGenerator eval_gen(&system.kb_eval);
  auto d5 = eval_gen.Generate(data::MakeDatasetSpec("D5", options.scale));
  auto examples = core::CollectMentionExamples(d5, system.bundle.model());
  system.d5_mention_examples = examples.size();

  // 3. Train the Phrase Embedder with the chosen contrastive objective.
  core::EmbedderTrainOptions eo;
  eo.objective = options.objective;
  eo.max_epochs = options.embedder_epochs;
  eo.max_triplets = options.max_triplets;
  eo.seed = options.seed * 31 + 6;
  system.embedder_result =
      core::TrainPhraseEmbedder(system.bundle.mutable_embedder(), examples, eo);

  // 4. Train the Entity Classifier on ground-truth clusters.
  core::ClassifierTrainOptions co;
  co.max_epochs = options.classifier_epochs;
  co.subset_augmentation = options.subset_augmentation;
  co.seed = options.seed * 31 + 7;
  system.classifier_result = core::TrainEntityClassifier(
      system.bundle.mutable_classifier(), system.bundle.embedder(), examples,
      co);
  NERGLOB_LOG(kInfo) << "trained: LM loss " << system.fine_tune_loss
                     << ", embedder val " << system.embedder_result.validation_loss
                     << ", classifier val macro-F1 "
                     << system.classifier_result.validation_macro_f1;

  system.bundle.set_training_stats(StatsFromSystem(system));
  if (!cache_path.empty()) {
    const Status st = system.bundle.Save(cache_path);
    if (!st.ok()) {
      NERGLOB_LOG(kWarning) << "system cache write failed: " << st.ToString();
    }
  }
  return system;
}

DatasetRun RunDataset(const TrainedSystem& system, const std::string& dataset,
                      double scale, size_t batch_size) {
  // Top-level span: every per-batch pipeline span nests under this one, so
  // stage.run_dataset.self_seconds isolates generation + scoring overhead
  // from the pipeline itself.
  static const trace::TraceStage kStage("run_dataset");
  trace::TraceSpan span(kStage);
  if (metrics::Enabled()) {
    static metrics::Counter* const runs =
        metrics::MetricsRegistry::Global().GetCounter(
            "harness.dataset_runs_total");
    runs->Increment();
  }
  DatasetRun run;
  run.dataset = dataset;
  data::StreamGenerator gen(&system.kb_eval);
  run.messages = gen.Generate(data::MakeDatasetSpec(dataset, scale));

  core::NerGlobalizer pipeline(&system.bundle,
                               core::DefaultPipelineConfig(system.bundle));
  pipeline.ProcessAll(run.messages, batch_size);
  NERGLOB_CHECK_EQ(pipeline.message_ids().size(), run.messages.size())
      << "prediction/message misalignment";

  const auto gold = GoldSpans(run.messages);
  for (int s = 0; s < 4; ++s) {
    run.stage_predictions[static_cast<size_t>(s)] =
        pipeline.Predictions(static_cast<core::PipelineStage>(s));
    run.stage_scores[static_cast<size_t>(s)] =
        eval::EvaluateNer(gold, run.stage_predictions[static_cast<size_t>(s)]);
  }
  run.emd_globalizer_predictions = pipeline.EmdGlobalizerPredictions();
  run.emd_globalizer_scores =
      eval::EvaluateNer(gold, run.emd_globalizer_predictions);
  run.local_seconds = pipeline.local_seconds();
  run.global_seconds = pipeline.global_seconds();
  return run;
}

BaselineSuite BuildBaselines(const TrainedSystem& system,
                             const BuildOptions& options) {
  BaselineSuite suite;
  baselines::AguilarNer::Config aguilar_cfg;
  suite.aguilar =
      std::make_unique<baselines::AguilarNer>(aguilar_cfg, options.seed * 97 + 1);
  suite.bert_ner = std::make_unique<baselines::BertNer>(options.lm_config,
                                                        options.seed * 97 + 2);
  suite.akbik = std::make_unique<baselines::AkbikPooledNer>(
      &system.bundle.model(), options.seed * 97 + 3);
  suite.hire = std::make_unique<baselines::HireNer>(&system.bundle.model(),
                                                    options.seed * 97 + 4);
  suite.docl = std::make_unique<baselines::DoclNer>(&system.bundle.model());

  // Cache: Aguilar + BertNer + Akbik/HIRE heads in one blob.
  std::vector<ag::Var> params = suite.aguilar->Parameters();
  {
    auto more = suite.bert_ner->model().Parameters();
    params.insert(params.end(), more.begin(), more.end());
  }
  // Akbik/HIRE heads are private; retrain them cheaply every run instead of
  // exposing internals — their training is two quick head-only passes.
  std::string cache_path;
  if (!options.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
    cache_path =
        options.cache_dir + "/baselines_" + OptionsKey(options) + ".bin";
  }
  data::StreamGenerator train_gen(&system.kb_train);
  auto train_msgs =
      train_gen.Generate(data::MakeDatasetSpec("TRAIN", options.scale));
  auto train_set = data::ToLabeledSentences(train_msgs);

  bool loaded = !cache_path.empty() && LoadParams(cache_path, &params);
  if (!loaded) {
    suite.aguilar->Train(train_set, options.lm_epochs, 2e-3f,
                         options.seed * 97 + 5);
    auto clean_msgs = train_gen.Generate(
        data::MakeDatasetSpec("TRAIN_CLEAN", options.scale));
    lm::FineTuneOptions ft;
    ft.epochs = options.lm_epochs;
    ft.seed = options.seed * 97 + 6;
    suite.bert_ner->Train(data::ToLabeledSentences(clean_msgs), ft);
    if (!cache_path.empty()) SaveParams(cache_path, params);
  }
  // Head-only training for the memory baselines (fast; not cached).
  suite.akbik->Train(train_set, /*epochs=*/2, 2e-3f, options.seed * 97 + 7);
  suite.hire->Train(train_set, /*epochs=*/2, 2e-3f, options.seed * 97 + 8);
  return suite;
}

eval::NerScores ScoreBaseline(baselines::NerBaseline* baseline,
                              const std::vector<stream::Message>& messages) {
  return eval::EvaluateNer(GoldSpans(messages), baseline->Predict(messages));
}

std::vector<std::vector<text::EntitySpan>> GoldSpans(
    const std::vector<stream::Message>& messages) {
  std::vector<std::vector<text::EntitySpan>> gold;
  gold.reserve(messages.size());
  for (const auto& m : messages) gold.push_back(m.gold_spans);
  return gold;
}

}  // namespace nerglob::harness
