#include "harness/experiment.h"

#include <array>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace nerglob::harness {

namespace {

/// Hash of all options that affect trained parameters (the cache key).
std::string OptionsKey(const BuildOptions& o) {
  std::ostringstream os;
  os << data::kWorldVersion << '|' << o.scale << '|'
     << static_cast<int>(o.objective) << '|'
     << o.lm_config.d_model << '|' << o.lm_config.num_heads << '|'
     << o.lm_config.num_layers << '|' << o.lm_config.ff_mult << '|'
     << o.lm_config.max_seq_len << '|' << o.lm_config.subword_buckets << '|'
     << o.lm_config.dropout << '|' << o.pretrain_epochs << '|'
     << o.lm_epochs << '|'
     << o.kb_entities_per_topic_type << '|' << o.max_triplets << '|'
     << o.embedder_epochs << '|' << o.classifier_epochs << '|'
     << o.classifier_hidden << '|' << static_cast<int>(o.pooling) << '|'
     << o.normalize_embedder << '|' << o.subset_augmentation << '|' << o.seed;
  return StrFormat("%016llx",
                   static_cast<unsigned long long>(Fnv1aHash(os.str())));
}

constexpr size_t kNumAux = 8;

void SaveParams(const std::string& path, const std::vector<ag::Var>& params,
                const std::array<double, kNumAux>& aux) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return;
  const uint64_t n = params.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(aux.data()),
            static_cast<std::streamsize>(aux.size() * sizeof(double)));
  for (const ag::Var& p : params) WriteMatrix(out, p.value());
}

bool LoadParams(const std::string& path, std::vector<ag::Var>* params,
                std::array<double, kNumAux>* aux) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in || n != params->size()) return false;
  in.read(reinterpret_cast<char*>(aux->data()),
          static_cast<std::streamsize>(aux->size() * sizeof(double)));
  for (ag::Var& p : *params) {
    Matrix m = ReadMatrix(in);
    if (!in || m.rows() != p.rows() || m.cols() != p.cols()) return false;
    p.mutable_value() = std::move(m);
  }
  return true;
}

}  // namespace

double DefaultScale() {
  if (const char* env = std::getenv("NERGLOB_SCALE"); env != nullptr) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return 0.25;
}

std::string DefaultCacheDir() {
  if (const char* env = std::getenv("NERGLOB_CACHE_DIR"); env != nullptr) {
    return std::string(env) == "none" ? std::string() : std::string(env);
  }
  return "nerglob_cache";
}

TrainedSystem BuildTrainedSystem(const BuildOptions& options) {
  TrainedSystem system;
  system.lm_config = options.lm_config;
  system.cluster_threshold = options.cluster_threshold;
  system.kb_train = data::KnowledgeBase::BuildProceduralOnly(
      options.kb_entities_per_topic_type, options.seed * 31 + 1);
  system.kb_eval = data::KnowledgeBase::BuildStandard(
      options.kb_entities_per_topic_type, options.seed * 31 + 2);
  system.model =
      std::make_unique<lm::MicroBert>(options.lm_config, options.seed * 31 + 3);
  Rng rng(options.seed * 31 + 4);
  system.embedder = std::make_unique<core::PhraseEmbedder>(
      options.lm_config.d_model, &rng, options.normalize_embedder);
  system.classifier = std::make_unique<core::EntityClassifier>(
      options.lm_config.d_model, options.classifier_hidden, &rng,
      options.pooling);

  // Cache lookup: all trained parameters in one blob.
  std::string cache_path;
  std::vector<ag::Var> all_params = system.model->Parameters();
  for (const ag::Var& p : system.embedder->Parameters()) all_params.push_back(p);
  for (const ag::Var& p : system.classifier->Parameters()) all_params.push_back(p);
  if (!options.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
    cache_path = options.cache_dir + "/system_" + OptionsKey(options) + ".bin";
    std::array<double, kNumAux> aux{};
    if (LoadParams(cache_path, &all_params, &aux)) {
      system.fine_tune_loss = aux[0];
      system.embedder_result.train_loss = aux[1];
      system.embedder_result.validation_loss = aux[2];
      system.embedder_result.dataset_size = static_cast<size_t>(aux[3]);
      system.embedder_result.epochs_run = static_cast<int>(aux[4]);
      system.classifier_result.validation_macro_f1 = aux[5];
      system.classifier_result.num_candidates = static_cast<size_t>(aux[6]);
      system.d5_mention_examples = static_cast<size_t>(aux[7]);
      return system;
    }
  }

  NERGLOB_LOG(kInfo) << "training system (cache miss): scale " << options.scale
                     << ", d_model " << options.lm_config.d_model;

  // 0. Optional masked-LM pretraining on unlabeled text from both worlds.
  data::StreamGenerator train_gen(&system.kb_train);
  if (options.pretrain_epochs > 0) {
    data::StreamGenerator eval_world_gen(&system.kb_eval);
    std::vector<std::vector<text::Token>> corpus;
    for (const auto& msg :
         train_gen.Generate(data::MakeDatasetSpec("TRAIN", options.scale))) {
      corpus.push_back(msg.tokens);
    }
    for (const auto& msg :
         eval_world_gen.Generate(data::MakeDatasetSpec("BTC", options.scale))) {
      corpus.push_back(msg.tokens);  // unlabeled usage: tokens only
    }
    lm::PretrainOptions po;
    po.epochs = options.pretrain_epochs;
    po.seed = options.seed * 31 + 9;
    lm::PretrainMlm(system.model.get(), corpus, po);
  }

  // 1. Fine-tune Local NER on the TRAIN corpus (procedural world).
  auto train_msgs = train_gen.Generate(data::MakeDatasetSpec("TRAIN", options.scale));
  lm::FineTuneOptions ft;
  ft.epochs = options.lm_epochs;
  ft.seed = options.seed * 31 + 5;
  system.fine_tune_loss =
      lm::FineTuneForNer(system.model.get(),
                         data::ToLabeledSentences(train_msgs), ft);

  // 2. Collect D5 mention examples (eval world) for Global NER training.
  data::StreamGenerator eval_gen(&system.kb_eval);
  auto d5 = eval_gen.Generate(data::MakeDatasetSpec("D5", options.scale));
  auto examples = core::CollectMentionExamples(d5, *system.model);
  system.d5_mention_examples = examples.size();

  // 3. Train the Phrase Embedder with the chosen contrastive objective.
  core::EmbedderTrainOptions eo;
  eo.objective = options.objective;
  eo.max_epochs = options.embedder_epochs;
  eo.max_triplets = options.max_triplets;
  eo.seed = options.seed * 31 + 6;
  system.embedder_result =
      core::TrainPhraseEmbedder(system.embedder.get(), examples, eo);

  // 4. Train the Entity Classifier on ground-truth clusters.
  core::ClassifierTrainOptions co;
  co.max_epochs = options.classifier_epochs;
  co.subset_augmentation = options.subset_augmentation;
  co.seed = options.seed * 31 + 7;
  system.classifier_result = core::TrainEntityClassifier(
      system.classifier.get(), *system.embedder, examples, co);
  NERGLOB_LOG(kInfo) << "trained: LM loss " << system.fine_tune_loss
                     << ", embedder val " << system.embedder_result.validation_loss
                     << ", classifier val macro-F1 "
                     << system.classifier_result.validation_macro_f1;

  if (!cache_path.empty()) {
    SaveParams(cache_path, all_params,
               {system.fine_tune_loss, system.embedder_result.train_loss,
                system.embedder_result.validation_loss,
                static_cast<double>(system.embedder_result.dataset_size),
                static_cast<double>(system.embedder_result.epochs_run),
                system.classifier_result.validation_macro_f1,
                static_cast<double>(system.classifier_result.num_candidates),
                static_cast<double>(system.d5_mention_examples)});
  }
  return system;
}

DatasetRun RunDataset(const TrainedSystem& system, const std::string& dataset,
                      double scale, size_t batch_size) {
  // Top-level span: every per-batch pipeline span nests under this one, so
  // stage.run_dataset.self_seconds isolates generation + scoring overhead
  // from the pipeline itself.
  static const trace::TraceStage kStage("run_dataset");
  trace::TraceSpan span(kStage);
  if (metrics::Enabled()) {
    static metrics::Counter* const runs =
        metrics::MetricsRegistry::Global().GetCounter(
            "harness.dataset_runs_total");
    runs->Increment();
  }
  DatasetRun run;
  run.dataset = dataset;
  data::StreamGenerator gen(&system.kb_eval);
  run.messages = gen.Generate(data::MakeDatasetSpec(dataset, scale));

  core::NerGlobalizerConfig config;
  config.cluster_threshold = system.cluster_threshold;
  core::NerGlobalizer pipeline(system.model.get(), system.embedder.get(),
                               system.classifier.get(), config);
  pipeline.ProcessAll(run.messages, batch_size);
  NERGLOB_CHECK_EQ(pipeline.message_ids().size(), run.messages.size())
      << "prediction/message misalignment";

  const auto gold = GoldSpans(run.messages);
  for (int s = 0; s < 4; ++s) {
    run.stage_predictions[static_cast<size_t>(s)] =
        pipeline.Predictions(static_cast<core::PipelineStage>(s));
    run.stage_scores[static_cast<size_t>(s)] =
        eval::EvaluateNer(gold, run.stage_predictions[static_cast<size_t>(s)]);
  }
  run.emd_globalizer_predictions = pipeline.EmdGlobalizerPredictions();
  run.emd_globalizer_scores =
      eval::EvaluateNer(gold, run.emd_globalizer_predictions);
  run.local_seconds = pipeline.local_seconds();
  run.global_seconds = pipeline.global_seconds();
  return run;
}

BaselineSuite BuildBaselines(const TrainedSystem& system,
                             const BuildOptions& options) {
  BaselineSuite suite;
  baselines::AguilarNer::Config aguilar_cfg;
  suite.aguilar =
      std::make_unique<baselines::AguilarNer>(aguilar_cfg, options.seed * 97 + 1);
  suite.bert_ner = std::make_unique<baselines::BertNer>(options.lm_config,
                                                        options.seed * 97 + 2);
  suite.akbik = std::make_unique<baselines::AkbikPooledNer>(system.model.get(),
                                                            options.seed * 97 + 3);
  suite.hire = std::make_unique<baselines::HireNer>(system.model.get(),
                                                    options.seed * 97 + 4);
  suite.docl = std::make_unique<baselines::DoclNer>(system.model.get());

  // Cache: Aguilar + BertNer + Akbik/HIRE heads in one blob.
  std::vector<ag::Var> params = suite.aguilar->Parameters();
  {
    auto more = suite.bert_ner->model().Parameters();
    params.insert(params.end(), more.begin(), more.end());
  }
  // Akbik/HIRE heads are private; retrain them cheaply every run instead of
  // exposing internals — their training is two quick head-only passes.
  std::string cache_path;
  if (!options.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
    cache_path =
        options.cache_dir + "/baselines_" + OptionsKey(options) + ".bin";
  }
  data::StreamGenerator train_gen(&system.kb_train);
  auto train_msgs =
      train_gen.Generate(data::MakeDatasetSpec("TRAIN", options.scale));
  auto train_set = data::ToLabeledSentences(train_msgs);

  std::array<double, kNumAux> aux{};
  bool loaded = !cache_path.empty() && LoadParams(cache_path, &params, &aux);
  if (!loaded) {
    suite.aguilar->Train(train_set, options.lm_epochs, 2e-3f,
                         options.seed * 97 + 5);
    auto clean_msgs = train_gen.Generate(
        data::MakeDatasetSpec("TRAIN_CLEAN", options.scale));
    lm::FineTuneOptions ft;
    ft.epochs = options.lm_epochs;
    ft.seed = options.seed * 97 + 6;
    suite.bert_ner->Train(data::ToLabeledSentences(clean_msgs), ft);
    if (!cache_path.empty()) SaveParams(cache_path, params, {});
  }
  // Head-only training for the memory baselines (fast; not cached).
  suite.akbik->Train(train_set, /*epochs=*/2, 2e-3f, options.seed * 97 + 7);
  suite.hire->Train(train_set, /*epochs=*/2, 2e-3f, options.seed * 97 + 8);
  return suite;
}

eval::NerScores ScoreBaseline(baselines::NerBaseline* baseline,
                              const std::vector<stream::Message>& messages) {
  return eval::EvaluateNer(GoldSpans(messages), baseline->Predict(messages));
}

std::vector<std::vector<text::EntitySpan>> GoldSpans(
    const std::vector<stream::Message>& messages) {
  std::vector<std::vector<text::EntitySpan>> gold;
  gold.reserve(messages.size());
  for (const auto& m : messages) gold.push_back(m.gold_spans);
  return gold;
}

}  // namespace nerglob::harness
