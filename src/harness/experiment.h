#ifndef NERGLOB_HARNESS_EXPERIMENT_H_
#define NERGLOB_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/global_baselines.h"
#include "baselines/local_baselines.h"
#include "core/model_bundle.h"
#include "core/ner_globalizer.h"
#include "core/training.h"
#include "data/generator.h"
#include "data/knowledge_base.h"
#include "eval/metrics.h"

namespace nerglob::harness {

/// Everything the experiments share: the two worlds (train/eval) and the
/// trained model bundle (Local NER encoder + Phrase Embedder + Entity
/// Classifier + the config they were built with).
struct TrainedSystem {
  data::KnowledgeBase kb_train;  ///< procedural-only (novel-entity condition)
  data::KnowledgeBase kb_eval;   ///< core + procedural
  core::ModelBundle bundle;
  core::EmbedderTrainResult embedder_result;
  core::ClassifierTrainResult classifier_result;
  double fine_tune_loss = 0.0;
  size_t d5_mention_examples = 0;
};

/// Knobs for BuildTrainedSystem. `scale` shrinks every dataset (Table I
/// sizes) proportionally; experiments default to a fraction of paper scale
/// to keep CPU wall-time reasonable (documented in EXPERIMENTS.md).
struct BuildOptions {
  double scale = 0.25;
  core::EmbedderObjective objective = core::EmbedderObjective::kTriplet;
  lm::MicroBertConfig lm_config;      // defaults from lm/micro_bert.h
  /// Masked-LM pretraining epochs on an unlabeled corpus before NER
  /// fine-tuning (0 = skip; the paper's BERTweet arrives pretrained).
  int pretrain_epochs = 0;
  int lm_epochs = 5;
  size_t kb_entities_per_topic_type = 32;
  size_t max_triplets = 20000;
  int embedder_epochs = 40;
  int classifier_epochs = 120;
  size_t classifier_hidden = 48;
  float cluster_threshold = 0.8f;
  /// Ablation knobs (DESIGN.md Sec. 5).
  core::PoolingMode pooling = core::PoolingMode::kAttention;
  bool normalize_embedder = true;   ///< Eq. 2 L2 normalization
  double subset_augmentation = 0.5; ///< classifier sub-cluster augmentation
  uint64_t seed = 7;
  /// When non-empty, trained parameters are cached in this directory and
  /// reloaded on the next run with identical options (key = options hash).
  std::string cache_dir;
};

/// The miniature configuration shared by the trained-system test fixtures
/// (pipeline_test, model_bundle_test, streaming_session_test, serve_test):
/// scale 0.08, a 1-layer d_model=32 encoder, shortened training schedules,
/// caching disabled. Trains in seconds while still exercising every stage.
BuildOptions TinyTestOptions();

/// Builds the full system: generates TRAIN and D5, fine-tunes MicroBert,
/// collects D5 mention examples, trains the Phrase Embedder (chosen
/// objective) and the Entity Classifier. Deterministic in `options`.
TrainedSystem BuildTrainedSystem(const BuildOptions& options);

/// Packs/unpacks the harness's provenance numbers (training losses, set
/// sizes) into the bundle's stats vector. The order is stable so stats
/// survive a save/load round trip of the bundle.
std::vector<double> StatsFromSystem(const TrainedSystem& system);
void StatsIntoSystem(const std::vector<double>& stats, TrainedSystem* system);

/// The result of running one dataset through the pipeline.
struct DatasetRun {
  std::string dataset;
  std::vector<stream::Message> messages;
  /// Predictions per stage, index = static_cast<int>(PipelineStage).
  std::array<std::vector<std::vector<text::EntitySpan>>, 4> stage_predictions;
  std::array<eval::NerScores, 4> stage_scores;
  /// EMD-Globalizer-variant output (untyped; see
  /// NerGlobalizer::EmdGlobalizerPredictions) and its scores.
  std::vector<std::vector<text::EntitySpan>> emd_globalizer_predictions;
  eval::NerScores emd_globalizer_scores;
  double local_seconds = 0.0;
  double global_seconds = 0.0;
};

/// Generates a dataset from the eval world and runs the full pipeline over
/// it in batches, scoring every ablation stage. `batch_size == 0` (the
/// default) uses NerGlobalizerConfig::process_batch_size.
DatasetRun RunDataset(const TrainedSystem& system, const std::string& dataset,
                      double scale, size_t batch_size = 0);

/// Gold spans of a message list (aligned with predictions).
std::vector<std::vector<text::EntitySpan>> GoldSpans(
    const std::vector<stream::Message>& messages);

/// The five baseline systems of Tables III and V, trained/configured on the
/// same worlds as `system`. Aguilar/BERT-NER train on the TRAIN (resp.
/// TRAIN_CLEAN) corpora; Akbik/HIRE heads train on TRAIN over the frozen
/// pipeline encoder; DocL-NER wraps the pipeline's local model directly.
struct BaselineSuite {
  std::unique_ptr<baselines::AguilarNer> aguilar;
  std::unique_ptr<baselines::BertNer> bert_ner;
  std::unique_ptr<baselines::AkbikPooledNer> akbik;
  std::unique_ptr<baselines::HireNer> hire;
  std::unique_ptr<baselines::DoclNer> docl;
};

/// Builds and trains the baselines (cached in options.cache_dir like the
/// main system). `system` must outlive the returned suite (Akbik/HIRE/DocL
/// hold pointers to its encoder).
BaselineSuite BuildBaselines(const TrainedSystem& system,
                             const BuildOptions& options);

/// Scores one baseline on a message list.
eval::NerScores ScoreBaseline(baselines::NerBaseline* baseline,
                              const std::vector<stream::Message>& messages);

/// Default scale for experiments, overridable via the NERGLOB_SCALE
/// environment variable (e.g. NERGLOB_SCALE=1.0 for paper-size datasets).
double DefaultScale();

/// Default cache dir ("nerglob_cache" under the current directory),
/// overridable via NERGLOB_CACHE_DIR; set to "none" to disable caching.
std::string DefaultCacheDir();

}  // namespace nerglob::harness

#endif  // NERGLOB_HARNESS_EXPERIMENT_H_
