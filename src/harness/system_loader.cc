#include "harness/system_loader.h"

#include <cstring>
#include <utility>

#include "common/logging.h"

namespace nerglob::harness {

std::string ParseModelFlag(int* argc, char** argv) {
  constexpr const char kPrefix[] = "--model=";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, kPrefixLen) == 0) {
      path = argv[i] + kPrefixLen;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

Result<TrainedSystem> LoadOrTrainSystem(const BuildOptions& options,
                                        const std::string& model_path) {
  if (model_path.empty()) return BuildTrainedSystem(options);

  Result<core::ModelBundle> bundle = core::ModelBundle::Load(model_path);
  if (!bundle.ok()) return bundle.status();
  NERGLOB_LOG(kInfo) << "loaded model bundle '" << model_path
                     << "' (fingerprint " << bundle->Fingerprint() << ")";
  TrainedSystem system;
  system.kb_train = data::KnowledgeBase::BuildProceduralOnly(
      options.kb_entities_per_topic_type, options.seed * 31 + 1);
  system.kb_eval = data::KnowledgeBase::BuildStandard(
      options.kb_entities_per_topic_type, options.seed * 31 + 2);
  system.bundle = std::move(bundle).value();
  StatsIntoSystem(system.bundle.training_stats(), &system);
  return system;
}

}  // namespace nerglob::harness
