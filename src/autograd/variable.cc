#include "autograd/variable.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/thread_pool.h"

namespace nerglob::ag {

std::atomic<uint64_t> Node::next_order_{0};

void Var::Backward() const {
  NERGLOB_CHECK(defined());
  NERGLOB_CHECK(!InParallelRegion())
      << "autograd Backward() must not run inside a ParallelFor body: the "
         "tape mutates shared gradient state, so training is single-threaded "
         "(inference-parallel, training-serial)";
  NERGLOB_CHECK(rows() == 1 && cols() == 1)
      << "Backward() must start from a scalar (1x1) variable";

  // Collect the reachable subgraph.
  std::vector<Node*> nodes;
  std::unordered_set<Node*> seen;
  std::vector<NodePtr> stack = {node_};
  seen.insert(node_.get());
  while (!stack.empty()) {
    NodePtr n = stack.back();
    stack.pop_back();
    nodes.push_back(n.get());
    for (const NodePtr& p : n->parents_) {
      if (seen.insert(p.get()).second) stack.push_back(p);
    }
  }

  // Seed and run in reverse creation order (a valid reverse-topo order).
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a->order_ > b->order_; });
  node_->EnsureGrad();
  node_->grad_.At(0, 0) += 1.0f;
  for (Node* n : nodes) {
    if (n->backward_fn_ && n->grad_.size() > 0) n->backward_fn_(*n);
  }
}

void Var::ZeroGrad() const {
  NERGLOB_CHECK(defined());
  node_->grad_ = Matrix();
}

Var Constant(Matrix value) { return Var(std::move(value), /*requires_grad=*/false); }

Var Scalar(float value) {
  Matrix m(1, 1);
  m.At(0, 0) = value;
  return Constant(std::move(m));
}

}  // namespace nerglob::ag
