#ifndef NERGLOB_AUTOGRAD_OPS_H_
#define NERGLOB_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"

namespace nerglob::ag {

/// All ops build graph nodes; gradients flow to inputs with requires_grad.
/// Shapes follow the tensor/matrix.h conventions (row-major, vectors are
/// 1xN rows unless noted).

/// (m,k) x (k,n) -> (m,n).
Var MatMul(const Var& a, const Var& b);

/// Fused dense layer: x (m,in) * w (in,out) + bias (1,out) -> (m,out).
/// One graph node and one output pass instead of MatMul + AddRowBroadcast;
/// values and gradients match the unfused pair bit-for-bit.
Var LinearForward(const Var& x, const Var& w, const Var& bias);

/// Elementwise a + b (same shape).
Var Add(const Var& a, const Var& b);

/// Elementwise a - b (same shape).
Var Sub(const Var& a, const Var& b);

/// Elementwise a * b (same shape).
Var Mul(const Var& a, const Var& b);

/// Adds a 1xN bias row to every row of a (m,n).
Var AddRowBroadcast(const Var& a, const Var& bias);

/// Multiplies row r of a (m,n) by scale (m,1) row weight.
Var MulColBroadcast(const Var& a, const Var& scale);

/// Multiplies every row of a (m,n) elementwise by a 1xN row vector.
Var MulRowBroadcast(const Var& a, const Var& row);

/// a * c for scalar constant c.
Var ScalarMul(const Var& a, float c);

/// a + c elementwise for scalar constant c.
Var AddScalar(const Var& a, float c);

Var Neg(const Var& a);
Var Relu(const Var& a);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Exp(const Var& a);

/// log(a + eps), elementwise.
Var Log(const Var& a, float eps = 0.0f);

Var Transpose(const Var& a);

/// Row-wise softmax / log-softmax.
Var SoftmaxRows(const Var& a);
Var LogSoftmaxRows(const Var& a);

/// (m,n) -> (1,n) mean across rows.
Var MeanRows(const Var& a);

/// (m,n) -> (m,1) sum across columns of each row.
Var RowSum(const Var& a);

/// (m,n) -> (1,1).
Var SumAll(const Var& a);
Var MeanAll(const Var& a);

/// Vertically stacks parts (equal cols).
Var ConcatRows(const std::vector<Var>& parts);

/// Horizontally concatenates parts (equal rows).
Var ConcatCols(const std::vector<Var>& parts);

/// Rows [begin, begin+count).
Var SliceRows(const Var& a, size_t begin, size_t count);

/// Columns [begin, begin+count).
Var SliceCols(const Var& a, size_t begin, size_t count);

/// out[i, :] = a[indices[i], :]; gradient scatters (embedding lookup).
Var GatherRows(const Var& a, const std::vector<int>& indices);

/// (m,n) -> (1,n): column-wise max with argmax gradient routing
/// (max-pooling for the char-CNN).
Var MaxOverRows(const Var& a);

/// Row-wise L2 normalization: y_r = x_r / (||x_r|| + eps).
Var L2NormalizeRows(const Var& a, float eps = 1e-8f);

/// Row-wise layer normalization with learned gain/bias (1xN each).
Var LayerNormRows(const Var& a, const Var& gamma, const Var& beta,
                  float eps = 1e-5f);

/// Inverted dropout. Identity when !training or p <= 0.
Var Dropout(const Var& a, float p, bool training, Rng* rng);

/// Mean negative log-likelihood of integer targets under row logits.
/// logits: (m, L), targets: m ints in [0, L). Returns 1x1.
Var CrossEntropyWithLogits(const Var& logits, const std::vector<int>& targets);

/// Pairwise row cosine distance between a (1,d) and b (1,d): 1x1 value of
/// 1 - cos(a,b). Differentiable through both.
Var CosineDistanceRows(const Var& a, const Var& b, float eps = 1e-8f);

/// Escape hatch for ops with hand-written gradients (e.g. the CRF
/// negative log-likelihood). `backward` receives the op node; read
/// n.grad_ and accumulate into n.parents_[i] via AccumulateGrad.
Var CustomOp(Matrix value, const std::vector<Var>& inputs,
             std::function<void(Node&)> backward);

/// Accumulates `delta` into a parent node's gradient (allocating it on
/// first touch). For use inside CustomOp backward functions.
void AccumulateGrad(Node& parent, const Matrix& delta);

}  // namespace nerglob::ag

#endif  // NERGLOB_AUTOGRAD_OPS_H_
