#ifndef NERGLOB_AUTOGRAD_VARIABLE_H_
#define NERGLOB_AUTOGRAD_VARIABLE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace nerglob::ag {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// A node in the dynamically-built computation graph. Users never touch
/// Node directly; they hold Var handles.
class Node {
 public:
  Node(Matrix value, bool requires_grad)
      : value_(std::move(value)), requires_grad_(requires_grad), order_(next_order_++) {}

  Matrix value_;
  /// Gradient of the final scalar loss w.r.t. this node; lazily allocated.
  Matrix grad_;
  bool requires_grad_;
  /// Creation order; Backward() processes nodes in decreasing order, which
  /// is a valid reverse-topological order for a tape built forward. The
  /// counter is atomic so eval-mode forwards may build disjoint tapes from
  /// multiple threads (ParallelFor over sentences); every tape walked by
  /// Backward() is still built on one thread, so relative order within a
  /// tape stays topological.
  uint64_t order_;
  /// Bumped on every mutable_value() access; consumers (e.g. the
  /// transposed-weight cache in nn::Linear) use it to invalidate derived
  /// state after parameter updates.
  uint64_t version_ = 0;
  std::vector<NodePtr> parents_;
  /// Propagates grad_ into parents_ (accumulating). Empty for leaves.
  std::function<void(Node&)> backward_fn_;

  void EnsureGrad() {
    if (grad_.rows() != value_.rows() || grad_.cols() != value_.cols()) {
      grad_ = Matrix(value_.rows(), value_.cols());
    }
  }

 private:
  static std::atomic<uint64_t> next_order_;
};

/// A handle to a value in the autograd graph. Cheap to copy (shared_ptr).
///
/// Typical use:
///   Var w(Matrix::Randn(4, 4, 0.1f, &rng), /*requires_grad=*/true);
///   Var y = MatMul(x, w);
///   Var loss = MeanAll(y);
///   loss.Backward();
///   // w.grad() now holds dloss/dw.
class Var {
 public:
  /// An empty (null) variable.
  Var() = default;

  /// Wraps a value as a graph leaf.
  explicit Var(Matrix value, bool requires_grad = false)
      : node_(std::make_shared<Node>(std::move(value), requires_grad)) {}

  /// Internal: wraps an existing node (used by ops).
  explicit Var(NodePtr node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }

  const Matrix& value() const { return node_->value_; }
  /// Mutable access to the underlying value; used by optimizers to update
  /// leaf parameters in place. Bumps the node's version stamp so caches
  /// derived from the value (e.g. cached weight transposes) invalidate.
  Matrix& mutable_value() {
    ++node_->version_;
    return node_->value_;
  }

  /// Version stamp of the underlying value (incremented per mutable_value
  /// access). Stable across reads; changes only on parameter updates.
  uint64_t value_version() const { return node_->version_; }

  /// Accumulated gradient; zero-shaped until Backward touches this node.
  const Matrix& grad() const { return node_->grad_; }

  /// Mutable gradient access (e.g. for gradient clipping).
  Matrix& mutable_grad() { return node_->grad_; }

  bool requires_grad() const { return node_->requires_grad_; }

  size_t rows() const { return node_->value_.rows(); }
  size_t cols() const { return node_->value_.cols(); }

  /// Runs reverse-mode accumulation from this (scalar, 1x1) variable.
  /// Gradients accumulate into every reachable node with requires_grad.
  void Backward() const;

  /// Clears this node's gradient (optimizers call this per parameter).
  void ZeroGrad() const;

  NodePtr node() const { return node_; }

 private:
  NodePtr node_;
};

/// Creates a non-differentiable constant.
Var Constant(Matrix value);

/// Creates a 1x1 constant.
Var Scalar(float value);

}  // namespace nerglob::ag

#endif  // NERGLOB_AUTOGRAD_VARIABLE_H_
