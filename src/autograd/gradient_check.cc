#include "autograd/gradient_check.h"

#include <cmath>

#include "common/check.h"

namespace nerglob::ag {

float MaxGradientError(const std::function<Var()>& loss_fn, Var param,
                       float epsilon) {
  NERGLOB_CHECK(param.requires_grad());

  // Analytic gradient.
  param.ZeroGrad();
  Var loss = loss_fn();
  loss.Backward();
  const Matrix analytic = param.grad();
  NERGLOB_CHECK_EQ(analytic.size(), param.value().size())
      << "parameter did not receive a gradient";

  // Numeric gradient, one coordinate at a time.
  float max_err = 0.0f;
  Matrix& value = param.mutable_value();
  for (size_t i = 0; i < value.size(); ++i) {
    const float original = value.data()[i];
    value.data()[i] = original + epsilon;
    const float plus = loss_fn().value().At(0, 0);
    value.data()[i] = original - epsilon;
    const float minus = loss_fn().value().At(0, 0);
    value.data()[i] = original;
    const float numeric = (plus - minus) / (2.0f * epsilon);
    max_err = std::max(max_err, std::fabs(numeric - analytic.data()[i]));
  }
  return max_err;
}

}  // namespace nerglob::ag
