#ifndef NERGLOB_AUTOGRAD_GRADIENT_CHECK_H_
#define NERGLOB_AUTOGRAD_GRADIENT_CHECK_H_

#include <functional>

#include "autograd/variable.h"

namespace nerglob::ag {

/// Compares the analytic gradient of `loss_fn` w.r.t. `param` against a
/// central finite difference. `loss_fn` must rebuild the graph from the
/// current parameter values and return a scalar Var.
///
/// Returns the maximum absolute elementwise difference between the analytic
/// and numeric gradients. Used by the autograd and nn unit tests.
float MaxGradientError(const std::function<Var()>& loss_fn, Var param,
                       float epsilon = 1e-3f);

}  // namespace nerglob::ag

#endif  // NERGLOB_AUTOGRAD_GRADIENT_CHECK_H_
