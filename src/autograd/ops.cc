#include "autograd/ops.h"

#include <cmath>

#include "common/check.h"

namespace nerglob::ag {

namespace {

bool AnyRequiresGrad(const std::vector<Var>& inputs) {
  for (const Var& v : inputs) {
    if (v.requires_grad()) return true;
  }
  return false;
}

/// Builds an op node. `backward` receives the op node; read n.grad_ and
/// accumulate into n.parents_[i]->grad_ (after EnsureGrad()).
Var MakeOp(Matrix value, const std::vector<Var>& inputs,
           std::function<void(Node&)> backward) {
  const bool req = AnyRequiresGrad(inputs);
  auto node = std::make_shared<Node>(std::move(value), req);
  for (const Var& v : inputs) node->parents_.push_back(v.node());
  if (req) node->backward_fn_ = std::move(backward);
  return Var(std::move(node));
}

void Accumulate(Node& parent, const Matrix& delta) {
  if (!parent.requires_grad_ && parent.backward_fn_ == nullptr &&
      parent.parents_.empty()) {
    // Pure constant leaf: no one will read its grad.
    return;
  }
  parent.EnsureGrad();
  parent.grad_.AddInPlace(delta);
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  Matrix out = nerglob::MatMul(a.value(), b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& n) {
    Node& pa = *n.parents_[0];
    Node& pb = *n.parents_[1];
    Accumulate(pa, MatMulTransB(n.grad_, pb.value_));
    Accumulate(pb, MatMulTransA(pa.value_, n.grad_));
  });
}

Var LinearForward(const Var& x, const Var& w, const Var& bias) {
  NERGLOB_CHECK_EQ(bias.rows(), 1u);
  NERGLOB_CHECK_EQ(bias.cols(), w.cols());
  Matrix out = nerglob::MatMulAddBias(x.value(), w.value(), bias.value());
  return MakeOp(std::move(out), {x, w, bias}, [](Node& n) {
    Node& px = *n.parents_[0];
    Node& pw = *n.parents_[1];
    Node& pb = *n.parents_[2];
    Accumulate(px, MatMulTransB(n.grad_, pw.value_));
    Accumulate(pw, MatMulTransA(px.value_, n.grad_));
    Matrix db(1, n.grad_.cols());
    for (size_t r = 0; r < n.grad_.rows(); ++r) {
      const float* row = n.grad_.Row(r);
      for (size_t c = 0; c < n.grad_.cols(); ++c) db.At(0, c) += row[c];
    }
    Accumulate(pb, db);
  });
}

Var Add(const Var& a, const Var& b) {
  return MakeOp(nerglob::Add(a.value(), b.value()), {a, b}, [](Node& n) {
    Accumulate(*n.parents_[0], n.grad_);
    Accumulate(*n.parents_[1], n.grad_);
  });
}

Var Sub(const Var& a, const Var& b) {
  return MakeOp(nerglob::Sub(a.value(), b.value()), {a, b}, [](Node& n) {
    Accumulate(*n.parents_[0], n.grad_);
    Matrix neg = n.grad_;
    neg.Scale(-1.0f);
    Accumulate(*n.parents_[1], neg);
  });
}

Var Mul(const Var& a, const Var& b) {
  return MakeOp(nerglob::Mul(a.value(), b.value()), {a, b}, [](Node& n) {
    Accumulate(*n.parents_[0], nerglob::Mul(n.grad_, n.parents_[1]->value_));
    Accumulate(*n.parents_[1], nerglob::Mul(n.grad_, n.parents_[0]->value_));
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  return MakeOp(nerglob::AddRowBroadcast(a.value(), bias.value()), {a, bias},
                [](Node& n) {
                  Accumulate(*n.parents_[0], n.grad_);
                  Matrix db(1, n.grad_.cols());
                  for (size_t r = 0; r < n.grad_.rows(); ++r) {
                    const float* row = n.grad_.Row(r);
                    for (size_t c = 0; c < n.grad_.cols(); ++c) db.At(0, c) += row[c];
                  }
                  Accumulate(*n.parents_[1], db);
                });
}

Var MulColBroadcast(const Var& a, const Var& scale) {
  NERGLOB_CHECK_EQ(scale.cols(), 1u);
  NERGLOB_CHECK_EQ(scale.rows(), a.rows());
  Matrix out = a.value();
  for (size_t r = 0; r < out.rows(); ++r) {
    const float s = scale.value().At(r, 0);
    float* row = out.Row(r);
    for (size_t c = 0; c < out.cols(); ++c) row[c] *= s;
  }
  return MakeOp(std::move(out), {a, scale}, [](Node& n) {
    const Matrix& av = n.parents_[0]->value_;
    const Matrix& sv = n.parents_[1]->value_;
    Matrix da(av.rows(), av.cols());
    Matrix ds(sv.rows(), 1);
    for (size_t r = 0; r < av.rows(); ++r) {
      const float s = sv.At(r, 0);
      const float* g = n.grad_.Row(r);
      const float* arow = av.Row(r);
      float* drow = da.Row(r);
      double acc = 0.0;
      for (size_t c = 0; c < av.cols(); ++c) {
        drow[c] = g[c] * s;
        acc += static_cast<double>(g[c]) * arow[c];
      }
      ds.At(r, 0) = static_cast<float>(acc);
    }
    Accumulate(*n.parents_[0], da);
    Accumulate(*n.parents_[1], ds);
  });
}

Var MulRowBroadcast(const Var& a, const Var& row) {
  NERGLOB_CHECK_EQ(row.rows(), 1u);
  NERGLOB_CHECK_EQ(row.cols(), a.cols());
  Matrix out = a.value();
  for (size_t r = 0; r < out.rows(); ++r) {
    float* orow = out.Row(r);
    const float* s = row.value().Row(0);
    for (size_t c = 0; c < out.cols(); ++c) orow[c] *= s[c];
  }
  return MakeOp(std::move(out), {a, row}, [](Node& n) {
    const Matrix& av = n.parents_[0]->value_;
    const Matrix& sv = n.parents_[1]->value_;
    Matrix da(av.rows(), av.cols());
    Matrix ds(1, av.cols());
    for (size_t r = 0; r < av.rows(); ++r) {
      const float* g = n.grad_.Row(r);
      const float* arow = av.Row(r);
      float* drow = da.Row(r);
      for (size_t c = 0; c < av.cols(); ++c) {
        drow[c] = g[c] * sv.At(0, c);
        ds.At(0, c) += g[c] * arow[c];
      }
    }
    Accumulate(*n.parents_[0], da);
    Accumulate(*n.parents_[1], ds);
  });
}

Var ScalarMul(const Var& a, float c) {
  Matrix out = a.value();
  out.Scale(c);
  return MakeOp(std::move(out), {a}, [c](Node& n) {
    Matrix g = n.grad_;
    g.Scale(c);
    Accumulate(*n.parents_[0], g);
  });
}

Var AddScalar(const Var& a, float c) {
  Matrix out = a.value();
  out.Apply([c](float x) { return x + c; });
  return MakeOp(std::move(out), {a},
                [](Node& n) { Accumulate(*n.parents_[0], n.grad_); });
}

Var Neg(const Var& a) { return ScalarMul(a, -1.0f); }

Var Relu(const Var& a) {
  Matrix out = a.value();
  out.Apply([](float x) { return x > 0.0f ? x : 0.0f; });
  return MakeOp(std::move(out), {a}, [](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    Matrix g = n.grad_;
    for (size_t i = 0; i < g.size(); ++i) {
      if (x.data()[i] <= 0.0f) g.data()[i] = 0.0f;
    }
    Accumulate(*n.parents_[0], g);
  });
}

Var Tanh(const Var& a) {
  Matrix out = a.value();
  out.Apply([](float x) { return std::tanh(x); });
  return MakeOp(std::move(out), {a}, [](Node& n) {
    Matrix g = n.grad_;
    const Matrix& y = n.value_;
    for (size_t i = 0; i < g.size(); ++i) {
      g.data()[i] *= 1.0f - y.data()[i] * y.data()[i];
    }
    Accumulate(*n.parents_[0], g);
  });
}

Var Sigmoid(const Var& a) {
  Matrix out = a.value();
  out.Apply([](float x) { return 1.0f / (1.0f + std::exp(-x)); });
  return MakeOp(std::move(out), {a}, [](Node& n) {
    Matrix g = n.grad_;
    const Matrix& y = n.value_;
    for (size_t i = 0; i < g.size(); ++i) {
      g.data()[i] *= y.data()[i] * (1.0f - y.data()[i]);
    }
    Accumulate(*n.parents_[0], g);
  });
}

Var Exp(const Var& a) {
  Matrix out = a.value();
  out.Apply([](float x) { return std::exp(x); });
  return MakeOp(std::move(out), {a}, [](Node& n) {
    Accumulate(*n.parents_[0], nerglob::Mul(n.grad_, n.value_));
  });
}

Var Log(const Var& a, float eps) {
  Matrix out = a.value();
  out.Apply([eps](float x) { return std::log(x + eps); });
  return MakeOp(std::move(out), {a}, [eps](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    Matrix g = n.grad_;
    for (size_t i = 0; i < g.size(); ++i) g.data()[i] /= (x.data()[i] + eps);
    Accumulate(*n.parents_[0], g);
  });
}

Var Transpose(const Var& a) {
  return MakeOp(a.value().Transposed(), {a}, [](Node& n) {
    Accumulate(*n.parents_[0], n.grad_.Transposed());
  });
}

Var SoftmaxRows(const Var& a) {
  return MakeOp(nerglob::SoftmaxRows(a.value()), {a}, [](Node& n) {
    const Matrix& y = n.value_;
    Matrix dx(y.rows(), y.cols());
    for (size_t r = 0; r < y.rows(); ++r) {
      const float* yr = y.Row(r);
      const float* gr = n.grad_.Row(r);
      double dot = 0.0;
      for (size_t c = 0; c < y.cols(); ++c) dot += static_cast<double>(gr[c]) * yr[c];
      float* dr = dx.Row(r);
      for (size_t c = 0; c < y.cols(); ++c) {
        dr[c] = yr[c] * (gr[c] - static_cast<float>(dot));
      }
    }
    Accumulate(*n.parents_[0], dx);
  });
}

Var LogSoftmaxRows(const Var& a) {
  return MakeOp(nerglob::LogSoftmaxRows(a.value()), {a}, [](Node& n) {
    const Matrix& logp = n.value_;
    Matrix dx(logp.rows(), logp.cols());
    for (size_t r = 0; r < logp.rows(); ++r) {
      const float* lr = logp.Row(r);
      const float* gr = n.grad_.Row(r);
      double gsum = 0.0;
      for (size_t c = 0; c < logp.cols(); ++c) gsum += gr[c];
      float* dr = dx.Row(r);
      for (size_t c = 0; c < logp.cols(); ++c) {
        dr[c] = gr[c] - static_cast<float>(gsum) * std::exp(lr[c]);
      }
    }
    Accumulate(*n.parents_[0], dx);
  });
}

Var MeanRows(const Var& a) {
  return MakeOp(nerglob::MeanRows(a.value()), {a}, [](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    const float inv = 1.0f / static_cast<float>(x.rows());
    Matrix dx(x.rows(), x.cols());
    const float* g = n.grad_.Row(0);
    for (size_t r = 0; r < x.rows(); ++r) {
      float* dr = dx.Row(r);
      for (size_t c = 0; c < x.cols(); ++c) dr[c] = g[c] * inv;
    }
    Accumulate(*n.parents_[0], dx);
  });
}

Var RowSum(const Var& a) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* row = a.value().Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) acc += row[c];
    out.At(r, 0) = static_cast<float>(acc);
  }
  return MakeOp(std::move(out), {a}, [](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    Matrix dx(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
      const float g = n.grad_.At(r, 0);
      float* dr = dx.Row(r);
      for (size_t c = 0; c < x.cols(); ++c) dr[c] = g;
    }
    Accumulate(*n.parents_[0], dx);
  });
}

Var SumAll(const Var& a) {
  Matrix out(1, 1);
  out.At(0, 0) = a.value().Sum();
  return MakeOp(std::move(out), {a}, [](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    Matrix dx(x.rows(), x.cols(), n.grad_.At(0, 0));
    Accumulate(*n.parents_[0], dx);
  });
}

Var MeanAll(const Var& a) {
  return ScalarMul(SumAll(a), 1.0f / static_cast<float>(a.rows() * a.cols()));
}

Var ConcatRows(const std::vector<Var>& parts) {
  NERGLOB_CHECK(!parts.empty());
  std::vector<Matrix> values;
  values.reserve(parts.size());
  for (const Var& p : parts) values.push_back(p.value());
  return MakeOp(VStack(values), parts, [](Node& n) {
    size_t r = 0;
    for (auto& parent : n.parents_) {
      const size_t pr = parent->value_.rows();
      Accumulate(*parent, n.grad_.SliceRows(r, pr));
      r += pr;
    }
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  NERGLOB_CHECK(!parts.empty());
  std::vector<Matrix> values;
  values.reserve(parts.size());
  for (const Var& p : parts) values.push_back(p.value());
  return MakeOp(HStack(values), parts, [](Node& n) {
    size_t off = 0;
    for (auto& parent : n.parents_) {
      const size_t pc = parent->value_.cols();
      Matrix dg(parent->value_.rows(), pc);
      for (size_t r = 0; r < dg.rows(); ++r) {
        const float* g = n.grad_.Row(r) + off;
        std::copy(g, g + pc, dg.Row(r));
      }
      Accumulate(*parent, dg);
      off += pc;
    }
  });
}

Var SliceRows(const Var& a, size_t begin, size_t count) {
  return MakeOp(a.value().SliceRows(begin, count), {a}, [begin](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    Matrix dx(x.rows(), x.cols());
    for (size_t r = 0; r < n.grad_.rows(); ++r) {
      const float* g = n.grad_.Row(r);
      std::copy(g, g + x.cols(), dx.Row(begin + r));
    }
    Accumulate(*n.parents_[0], dx);
  });
}

Var SliceCols(const Var& a, size_t begin, size_t count) {
  NERGLOB_CHECK_LE(begin + count, a.cols());
  Matrix out(a.rows(), count);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* src = a.value().Row(r) + begin;
    std::copy(src, src + count, out.Row(r));
  }
  return MakeOp(std::move(out), {a}, [begin, count](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    Matrix dx(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
      const float* g = n.grad_.Row(r);
      std::copy(g, g + count, dx.Row(r) + begin);
    }
    Accumulate(*n.parents_[0], dx);
  });
}

Var GatherRows(const Var& a, const std::vector<int>& indices) {
  Matrix out(indices.size(), a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    NERGLOB_CHECK(indices[i] >= 0 && static_cast<size_t>(indices[i]) < a.rows());
    const float* src = a.value().Row(static_cast<size_t>(indices[i]));
    std::copy(src, src + a.cols(), out.Row(i));
  }
  return MakeOp(std::move(out), {a}, [indices](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    Matrix dx(x.rows(), x.cols());
    for (size_t i = 0; i < indices.size(); ++i) {
      const float* g = n.grad_.Row(i);
      float* d = dx.Row(static_cast<size_t>(indices[i]));
      for (size_t c = 0; c < x.cols(); ++c) d[c] += g[c];
    }
    Accumulate(*n.parents_[0], dx);
  });
}

Var MaxOverRows(const Var& a) {
  NERGLOB_CHECK_GT(a.rows(), 0u);
  Matrix out(1, a.cols());
  std::vector<size_t> argmax(a.cols(), 0);
  for (size_t c = 0; c < a.cols(); ++c) {
    float best = a.value().At(0, c);
    for (size_t r = 1; r < a.rows(); ++r) {
      if (a.value().At(r, c) > best) {
        best = a.value().At(r, c);
        argmax[c] = r;
      }
    }
    out.At(0, c) = best;
  }
  return MakeOp(std::move(out), {a}, [argmax](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    Matrix dx(x.rows(), x.cols());
    for (size_t c = 0; c < x.cols(); ++c) {
      dx.At(argmax[c], c) = n.grad_.At(0, c);
    }
    Accumulate(*n.parents_[0], dx);
  });
}

Var L2NormalizeRows(const Var& a, float eps) {
  const Matrix& x = a.value();
  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* row = x.Row(r);
    double s = 0.0;
    for (size_t c = 0; c < x.cols(); ++c) s += static_cast<double>(row[c]) * row[c];
    const float norm = static_cast<float>(std::sqrt(s)) + eps;
    float* o = out.Row(r);
    for (size_t c = 0; c < x.cols(); ++c) o[c] = row[c] / norm;
  }
  return MakeOp(std::move(out), {a}, [eps](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    Matrix dx(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
      const float* row = x.Row(r);
      const float* g = n.grad_.Row(r);
      double s = 0.0;
      double gdotx = 0.0;
      for (size_t c = 0; c < x.cols(); ++c) {
        s += static_cast<double>(row[c]) * row[c];
        gdotx += static_cast<double>(g[c]) * row[c];
      }
      const double sq = std::sqrt(std::max(s, 1e-24));
      const double norm = sq + eps;
      float* d = dx.Row(r);
      for (size_t c = 0; c < x.cols(); ++c) {
        d[c] = static_cast<float>(g[c] / norm - gdotx * row[c] / (sq * norm * norm));
      }
    }
    Accumulate(*n.parents_[0], dx);
  });
}

Var LayerNormRows(const Var& a, const Var& gamma, const Var& beta, float eps) {
  NERGLOB_CHECK_EQ(gamma.rows(), 1u);
  NERGLOB_CHECK_EQ(gamma.cols(), a.cols());
  NERGLOB_CHECK_EQ(beta.rows(), 1u);
  NERGLOB_CHECK_EQ(beta.cols(), a.cols());
  const Matrix& x = a.value();
  const size_t n_cols = x.cols();
  Matrix out(x.rows(), n_cols);
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* row = x.Row(r);
    double mean = 0.0;
    for (size_t c = 0; c < n_cols; ++c) mean += row[c];
    mean /= n_cols;
    double var = 0.0;
    for (size_t c = 0; c < n_cols; ++c) {
      const double d = row[c] - mean;
      var += d * d;
    }
    var /= n_cols;
    const double inv_std = 1.0 / std::sqrt(var + eps);
    float* o = out.Row(r);
    for (size_t c = 0; c < n_cols; ++c) {
      const float xhat = static_cast<float>((row[c] - mean) * inv_std);
      o[c] = gamma.value().At(0, c) * xhat + beta.value().At(0, c);
    }
  }
  return MakeOp(std::move(out), {a, gamma, beta}, [eps](Node& n) {
    const Matrix& x = n.parents_[0]->value_;
    const Matrix& gm = n.parents_[1]->value_;
    const size_t cols = x.cols();
    Matrix dx(x.rows(), cols);
    Matrix dgamma(1, cols);
    Matrix dbeta(1, cols);
    for (size_t r = 0; r < x.rows(); ++r) {
      const float* row = x.Row(r);
      const float* g = n.grad_.Row(r);
      double mean = 0.0;
      for (size_t c = 0; c < cols; ++c) mean += row[c];
      mean /= cols;
      double var = 0.0;
      for (size_t c = 0; c < cols; ++c) {
        const double d = row[c] - mean;
        var += d * d;
      }
      var /= cols;
      const double inv_std = 1.0 / std::sqrt(var + eps);
      // dL/dxhat_c = g_c * gamma_c; standard layernorm backward.
      double sum_dxhat = 0.0;
      double sum_dxhat_xhat = 0.0;
      std::vector<double> xhat(cols), dxhat(cols);
      for (size_t c = 0; c < cols; ++c) {
        xhat[c] = (row[c] - mean) * inv_std;
        dxhat[c] = static_cast<double>(g[c]) * gm.At(0, c);
        sum_dxhat += dxhat[c];
        sum_dxhat_xhat += dxhat[c] * xhat[c];
        dgamma.At(0, c) += static_cast<float>(g[c] * xhat[c]);
        dbeta.At(0, c) += g[c];
      }
      float* d = dx.Row(r);
      for (size_t c = 0; c < cols; ++c) {
        d[c] = static_cast<float>(
            inv_std * (dxhat[c] - sum_dxhat / cols - xhat[c] * sum_dxhat_xhat / cols));
      }
    }
    Accumulate(*n.parents_[0], dx);
    Accumulate(*n.parents_[1], dgamma);
    Accumulate(*n.parents_[2], dbeta);
  });
}

Var Dropout(const Var& a, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) return a;
  NERGLOB_CHECK_LT(p, 1.0f);
  Matrix mask(a.rows(), a.cols());
  const float keep_inv = 1.0f / (1.0f - p);
  for (size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng->NextBernoulli(p) ? 0.0f : keep_inv;
  }
  Var mask_var = Constant(std::move(mask));
  return Mul(a, mask_var);
}

Var CrossEntropyWithLogits(const Var& logits, const std::vector<int>& targets) {
  NERGLOB_CHECK_EQ(logits.rows(), targets.size());
  const Matrix logp = nerglob::LogSoftmaxRows(logits.value());
  Matrix out(1, 1);
  double nll = 0.0;
  for (size_t r = 0; r < targets.size(); ++r) {
    NERGLOB_CHECK(targets[r] >= 0 && static_cast<size_t>(targets[r]) < logits.cols());
    nll -= logp.At(r, static_cast<size_t>(targets[r]));
  }
  out.At(0, 0) = static_cast<float>(nll / targets.size());
  return MakeOp(std::move(out), {logits}, [targets, logp](Node& n) {
    const float g = n.grad_.At(0, 0) / static_cast<float>(targets.size());
    Matrix dx(logp.rows(), logp.cols());
    for (size_t r = 0; r < logp.rows(); ++r) {
      const float* lp = logp.Row(r);
      float* d = dx.Row(r);
      for (size_t c = 0; c < logp.cols(); ++c) d[c] = g * std::exp(lp[c]);
      d[static_cast<size_t>(targets[r])] -= g;
    }
    Accumulate(*n.parents_[0], dx);
  });
}

Var CustomOp(Matrix value, const std::vector<Var>& inputs,
             std::function<void(Node&)> backward) {
  return MakeOp(std::move(value), inputs, std::move(backward));
}

void AccumulateGrad(Node& parent, const Matrix& delta) {
  Accumulate(parent, delta);
}

Var CosineDistanceRows(const Var& a, const Var& b, float eps) {
  NERGLOB_CHECK_EQ(a.rows(), 1u);
  NERGLOB_CHECK_EQ(b.rows(), 1u);
  Var an = L2NormalizeRows(a, eps);
  Var bn = L2NormalizeRows(b, eps);
  Var dot = RowSum(Mul(an, bn));  // 1x1
  return AddScalar(Neg(dot), 1.0f);
}

}  // namespace nerglob::ag
