#ifndef NERGLOB_COMMON_FAULT_INJECTOR_H_
#define NERGLOB_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace nerglob::fault {

/// Registered injection sites. Every `InjectFault(site)` call site in the
/// codebase names one of these; ArmFromSpec rejects anything else, so a
/// typo'd NERGLOB_FAULT fails loudly instead of silently injecting
/// nothing. docs/RELIABILITY.md documents what each site simulates and
/// which layer absorbs it.
inline constexpr const char* kSiteIoOpenWrite = "io.open_write";
inline constexpr const char* kSiteIoWrite = "io.write";
inline constexpr const char* kSiteIoOpenRead = "io.open_read";
inline constexpr const char* kSiteIoRead = "io.read";
inline constexpr const char* kSiteCkptRename = "ckpt.rename";
inline constexpr const char* kSiteCkptManifestCommit = "ckpt.manifest_commit";
inline constexpr const char* kSiteServeEnqueue = "serve.enqueue";
inline constexpr const char* kSiteServeProcess = "serve.process";
inline constexpr const char* kSiteCacheInsert = "cache.insert";

/// The full catalog, for tests and tooling that must fire every site.
inline constexpr const char* kAllSites[] = {
    kSiteIoOpenWrite,       kSiteIoWrite,     kSiteIoOpenRead,
    kSiteIoRead,            kSiteCkptRename,  kSiteCkptManifestCommit,
    kSiteServeEnqueue,      kSiteServeProcess, kSiteCacheInsert,
};

/// Deterministic fault injector driving the reliability test surface
/// (docs/RELIABILITY.md). Injection sites are cheap named probes on the
/// failure-prone operations (IO, checkpoint commit, serve enqueue); when a
/// site "fires" the operation behaves as if the underlying syscall failed.
///
/// Spec grammar (NERGLOB_FAULT environment variable, or ArmFromSpec):
///
///   spec    := clause (',' clause)*
///   clause  := site ':' directive | "seed=" integer
///   directive := N        fail exactly the Nth hit of the site (1-based)
///              | N '+'    fail the Nth and every later hit (persistent)
///              | "p=" F   fail each hit independently with probability F
///
///   NERGLOB_FAULT="ckpt.rename:1"              first rename fails once
///   NERGLOB_FAULT="io.write:3+,io.read:1"      persistent + one-shot
///   NERGLOB_FAULT="io.write:p=0.1,seed=7"      seeded probabilistic
///
/// Determinism: Nth-hit clauses are exact; probabilistic clauses draw from
/// one seeded Rng in site-hit order, so a single-threaded run reproduces
/// its fault pattern bit-for-bit for a given seed (multi-threaded hit
/// interleaving is scheduler-dependent by nature).
///
/// The disarmed fast path is one relaxed atomic load — leaving the probes
/// compiled into production builds costs nothing measurable.
class FaultInjector {
 public:
  /// Process-wide injector; the first call arms it from NERGLOB_FAULT
  /// (an invalid spec is a CHECK failure — chaos runs must not silently
  /// inject nothing).
  static FaultInjector& Global();

  /// Replaces the active spec (resetting all hit/injection counts).
  /// InvalidArgument on grammar errors or unregistered site names.
  Status ArmFromSpec(const std::string& spec);

  /// Removes every clause and resets all counters.
  void Disarm();

  /// True if any clause is armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Records a hit of `site` and returns true if an armed clause says this
  /// hit fails. The caller then simulates the failure (typically by
  /// returning Status::IoError naming the site).
  bool ShouldFail(const char* site);

  /// Hits observed / failures injected at `site` since the last
  /// ArmFromSpec/Disarm (hits are only counted while armed).
  uint64_t HitCount(const std::string& site) const;
  uint64_t InjectedCount(const std::string& site) const;
  uint64_t TotalInjected() const;

 private:
  FaultInjector();

  struct Clause {
    enum class Mode { kNth, kPersistent, kProbability };
    Mode mode = Mode::kNth;
    uint64_t nth = 0;        // kNth / kPersistent
    double probability = 0;  // kProbability
  };

  mutable std::mutex mu_;
  std::map<std::string, Clause> clauses_;
  std::map<std::string, uint64_t> hits_;
  std::map<std::string, uint64_t> injected_;
  uint64_t total_injected_ = 0;
  uint64_t seed_ = 1;
  std::unique_ptr<Rng> rng_;
  std::atomic<bool> armed_{false};
};

/// The probe every injection site calls. Disarmed cost: one relaxed load.
inline bool InjectFault(const char* site) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.armed()) return false;
  return injector.ShouldFail(site);
}

}  // namespace nerglob::fault

#endif  // NERGLOB_COMMON_FAULT_INJECTOR_H_
