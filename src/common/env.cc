#include "common/env.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace nerglob::env {

namespace {

/// One warn line per bad read. Uses the logging layer so the prefix and
/// level filtering match every other diagnostic; EnvString never calls
/// this, which keeps logging's own NERGLOB_LOG_LEVEL read free of any
/// re-entrant initialization.
void WarnBadValue(const char* name, const char* raw, const char* why,
                  const std::string& fallback_text) {
  NERGLOB_LOG(kWarning) << name << "='" << raw << "' " << why
                        << "; using default " << fallback_text;
}

}  // namespace

int64_t EnvInt(const char* name, int64_t fallback, int64_t min_value,
               int64_t max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    WarnBadValue(name, raw, "is not an integer", std::to_string(fallback));
    return fallback;
  }
  if (parsed < min_value || parsed > max_value) {
    WarnBadValue(name, raw,
                 ("is outside [" + std::to_string(min_value) + ", " +
                  std::to_string(max_value) + "]")
                     .c_str(),
                 std::to_string(fallback));
    return fallback;
  }
  return static_cast<int64_t>(parsed);
}

double EnvFloat(const char* name, double fallback, double min_value,
                double max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    WarnBadValue(name, raw, "is not a number", std::to_string(fallback));
    return fallback;
  }
  if (parsed < min_value || parsed > max_value) {
    WarnBadValue(name, raw,
                 ("is outside [" + std::to_string(min_value) + ", " +
                  std::to_string(max_value) + "]")
                     .c_str(),
                 std::to_string(fallback));
    return fallback;
  }
  return parsed;
}

bool EnvBool(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  for (const char* yes : {"1", "true", "on", "yes"}) {
    if (std::strcmp(raw, yes) == 0) return true;
  }
  for (const char* no : {"0", "false", "off", "no"}) {
    if (std::strcmp(raw, no) == 0) return false;
  }
  WarnBadValue(name, raw, "is not a boolean (1/true/on/yes or 0/false/off/no)",
               fallback ? "true" : "false");
  return fallback;
}

std::string EnvString(const char* name, const std::string& fallback,
                      bool empty_is_unset) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  if (empty_is_unset && raw[0] == '\0') return fallback;
  return raw;
}

}  // namespace nerglob::env
