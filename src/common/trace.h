#ifndef NERGLOB_COMMON_TRACE_H_
#define NERGLOB_COMMON_TRACE_H_

#include <string>

#include "common/metrics.h"
#include "common/timer.h"

namespace nerglob::trace {

/// Pre-resolved aggregation slots for one named pipeline stage. Constructing
/// a TraceStage registers (or finds) three instruments in the global
/// MetricsRegistry:
///   stage.<name>.wall_seconds  — histogram of span wall time
///   stage.<name>.self_seconds  — histogram of wall time minus time spent in
///                                nested child spans (exclusive time)
///   stage.<name>.calls_total   — span count
/// Construct once per stage (function-local static at the instrumentation
/// site) so span begin/end never touches the registry mutexes.
class TraceStage {
 public:
  explicit TraceStage(const char* name);

  const std::string& name() const { return name_; }

 private:
  friend class TraceSpan;
  std::string name_;
  metrics::Histogram* wall_;
  metrics::Histogram* self_;
  metrics::Counter* calls_;
};

/// RAII stage timer. Spans nest: a span opened while another span is live on
/// the same thread becomes its child, and on destruction reports its wall
/// time to the parent so the parent's self_seconds excludes it. Aggregation
/// is per stage name across all threads (the pool workers record into the
/// same lock-free histograms). When metrics are disabled the constructor
/// reads one atomic flag and does nothing else — no clock reads.
///
///   static const trace::TraceStage kStage("local_ner");
///   trace::TraceSpan span(kStage);
class TraceSpan {
 public:
  explicit TraceSpan(const TraceStage& stage);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// The innermost live span on this thread (nullptr outside any span).
  static const TraceSpan* Current();

  const TraceStage* stage() const { return stage_; }

 private:
  const TraceStage* stage_ = nullptr;  // nullptr while inactive
  TraceSpan* parent_ = nullptr;
  double child_seconds_ = 0.0;
  /// TraceSpan reuses WallTimer's monotonic clock (steady_clock): wall time
  /// must never jump backward mid-span, even when NTP steps the system
  /// clock, and steady_clock timestamps are coherent across threads.
  MonotonicClock::time_point start_;
};

}  // namespace nerglob::trace

#endif  // NERGLOB_COMMON_TRACE_H_
