#include "common/fault_injector.h"

#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace nerglob::fault {
namespace {

bool IsRegisteredSite(std::string_view site) {
  for (const char* s : kAllSites) {
    if (site == s) return true;
  }
  return false;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector::FaultInjector() {
  const std::string spec = env::EnvString("NERGLOB_FAULT", "");
  if (spec.empty()) return;
  Status s = ArmFromSpec(spec);
  // A chaos run with a typo'd spec would silently test nothing; fail hard.
  NERGLOB_CHECK(s.ok()) << "invalid NERGLOB_FAULT spec: " << s.ToString();
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  std::map<std::string, Clause> clauses;
  uint64_t seed = 1;
  for (const std::string& raw : SplitChar(spec, ',')) {
    const std::string_view piece = TrimWhitespace(raw);
    if (piece.empty()) continue;
    if (StartsWith(piece, "seed=")) {
      char* end = nullptr;
      const std::string value(piece.substr(5));
      seed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("NERGLOB_FAULT: bad seed clause '%s'",
                      std::string(piece).c_str()));
      }
      continue;
    }
    const size_t colon = piece.find(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == piece.size()) {
      return Status::InvalidArgument(StrFormat(
          "NERGLOB_FAULT: clause '%s' is not site:directive",
          std::string(piece).c_str()));
    }
    const std::string site(piece.substr(0, colon));
    std::string directive(piece.substr(colon + 1));
    if (!IsRegisteredSite(site)) {
      return Status::InvalidArgument(StrFormat(
          "NERGLOB_FAULT: unregistered site '%s' (see fault::kAllSites)",
          site.c_str()));
    }
    Clause clause;
    if (StartsWith(directive, "p=")) {
      clause.mode = Clause::Mode::kProbability;
      char* end = nullptr;
      const std::string value = directive.substr(2);
      clause.probability = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || clause.probability < 0.0 ||
          clause.probability > 1.0) {
        return Status::InvalidArgument(StrFormat(
            "NERGLOB_FAULT: bad probability in '%s' (want p=[0,1])",
            std::string(piece).c_str()));
      }
    } else {
      clause.mode = Clause::Mode::kNth;
      if (EndsWith(directive, "+")) {
        clause.mode = Clause::Mode::kPersistent;
        directive.pop_back();
      }
      char* end = nullptr;
      clause.nth = std::strtoull(directive.c_str(), &end, 10);
      if (end == directive.c_str() || *end != '\0' || clause.nth == 0) {
        return Status::InvalidArgument(StrFormat(
            "NERGLOB_FAULT: bad hit count in '%s' (want a 1-based integer)",
            std::string(piece).c_str()));
      }
    }
    clauses[site] = clause;
  }
  std::lock_guard<std::mutex> lock(mu_);
  clauses_ = std::move(clauses);
  hits_.clear();
  injected_.clear();
  total_injected_ = 0;
  seed_ = seed;
  rng_ = std::make_unique<Rng>(seed_);
  armed_.store(!clauses_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  clauses_.clear();
  hits_.clear();
  injected_.clear();
  total_injected_ = 0;
  rng_.reset();
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (clauses_.empty()) return false;
  const uint64_t hit = ++hits_[site];
  auto it = clauses_.find(site);
  if (it == clauses_.end()) return false;
  const Clause& clause = it->second;
  bool fire = false;
  switch (clause.mode) {
    case Clause::Mode::kNth:
      fire = hit == clause.nth;
      break;
    case Clause::Mode::kPersistent:
      fire = hit >= clause.nth;
      break;
    case Clause::Mode::kProbability:
      fire = rng_->NextBernoulli(clause.probability);
      break;
  }
  if (fire) {
    ++injected_[site];
    ++total_injected_;
    static metrics::Counter* const injected_counter =
        metrics::MetricsRegistry::Global().GetCounter("fault.injected_total");
    injected_counter->Increment();
    NERGLOB_LOG(kWarning) << "fault injected at " << site << " (hit " << hit
                          << ")";
  }
  return fire;
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

uint64_t FaultInjector::InjectedCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = injected_.find(site);
  return it == injected_.end() ? 0 : it->second;
}

uint64_t FaultInjector::TotalInjected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_injected_;
}

}  // namespace nerglob::fault
