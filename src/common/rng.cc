#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace nerglob {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  NERGLOB_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int Rng::NextInt(int lo, int hi) {
  NERGLOB_CHECK_LE(lo, hi);
  return lo + static_cast<int>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

float Rng::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    NERGLOB_CHECK_GE(w, 0.0);
    total += w;
  }
  NERGLOB_CHECK_GT(total, 0.0) << "NextWeighted requires positive total weight";
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double s) {
  NERGLOB_CHECK_GT(n, 0u);
  // Direct inversion over the (small) support; n is at most a few thousand
  // in our generators so the linear scan is fine.
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) total += 1.0 / std::pow(k + 1.0, s);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(k + 1.0, s);
    if (r < acc) return k;
  }
  return n - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace nerglob
