#ifndef NERGLOB_COMMON_TIMER_H_
#define NERGLOB_COMMON_TIMER_H_

#include <chrono>

namespace nerglob {

/// The one clock every timing facility uses: WallTimer, trace::TraceSpan,
/// the GEMM instrumentation, and the bench harnesses. steady_clock is
/// monotonic (never steps backward under NTP adjustment or suspend) and its
/// timestamps are coherent across threads, so durations computed from
/// timestamps taken on different pool workers stay non-negative. Never time
/// with system_clock/high_resolution_clock (the latter is system_clock on
/// some standard libraries).
using MonotonicClock = std::chrono::steady_clock;

/// Wall-clock stopwatch used by the benchmark harnesses (Table IV reports
/// Local/Global execution time and overhead).
class WallTimer {
 public:
  using Clock = MonotonicClock;

  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  Clock::time_point start_;
};

}  // namespace nerglob

#endif  // NERGLOB_COMMON_TIMER_H_
