#ifndef NERGLOB_COMMON_TIMER_H_
#define NERGLOB_COMMON_TIMER_H_

#include <chrono>

namespace nerglob {

/// Wall-clock stopwatch used by the benchmark harnesses (Table IV reports
/// Local/Global execution time and overhead).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nerglob

#endif  // NERGLOB_COMMON_TIMER_H_
