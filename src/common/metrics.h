#ifndef NERGLOB_COMMON_METRICS_H_
#define NERGLOB_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nerglob::metrics {

/// Process-wide metrics switch. The first call reads the NERGLOB_METRICS
/// environment variable ("1"/"true"/"on" enable it); off by default. When
/// off, every Increment/Set/Observe is one relaxed atomic load plus a
/// predictable branch — no stores, no locks, no clock reads upstream (the
/// instrumentation sites gate their own timing on this flag too).
bool Enabled();

/// Overrides the switch at runtime (benchmark snapshots, tests). Safe to
/// call from any thread, but flipping it mid-recording only affects
/// subsequent updates.
void SetEnabled(bool on);

class MetricsRegistry;

/// Monotonically increasing event count. Thread-safe and lock-free: worker
/// threads of the pool record with a single relaxed fetch_add.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, rates). Add() uses a
/// CAS loop, so concurrent adders never lose updates.
class Gauge {
 public:
  void Set(double value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta);
  /// Raises the gauge to `value` if it is currently lower (CAS loop, never
  /// lowers). For high-water marks updated from many threads, e.g. the
  /// scratch-arena reservation peak.
  void SetMax(double value);

  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper limits
/// ("le"); one extra overflow bucket catches everything above the last
/// bound. Observe() is lock-free (per-bucket relaxed fetch_add + CAS sum),
/// so pool workers record latencies without serializing on a mutex.
class Histogram {
 public:
  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i`; i == bounds().size() is overflow.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Default latency buckets in seconds: 1us .. 10s, one decade per bucket.
  static std::vector<double> DefaultLatencyBounds();

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  void Reset();

  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide registry. Registration (Get*) takes a sharded mutex keyed
/// on the metric name; instruments are created once and never destroyed
/// before process exit, so the returned pointers are stable and the hot
/// path (updating an already-resolved instrument) never locks. Typical use
/// caches the handle in a function-local static:
///
///   static metrics::Counter* sentences =
///       metrics::MetricsRegistry::Global().GetCounter("pipeline.sentences_total");
///   sentences->Increment(batch.size());
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Calling with a name already registered as a different kind is a
  /// CHECK failure. For histograms, `bounds` is only consulted on creation
  /// (empty => DefaultLatencyBounds()).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// JSON snapshot (schema documented in DESIGN.md §8):
  /// {"counters":{name:int}, "gauges":{name:float},
  ///  "histograms":{name:{"count":int,"sum":float,
  ///                      "buckets":[{"le":float|"+Inf","count":int},...]}}}
  /// Bucket counts are per-bucket (non-cumulative); names sorted.
  std::string ToJson() const;

  /// Prometheus text exposition format ('.' in names becomes '_', metrics
  /// prefixed "nerglob_"; histogram buckets cumulative, as Prometheus
  /// requires).
  std::string ToPrometheusText() const;

  /// Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

  /// Zeroes every registered instrument (registrations and handles stay
  /// valid). For tests and benchmark phase boundaries.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  static constexpr size_t kNumShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };
  Shard& ShardFor(const std::string& name);
  const Shard& ShardFor(const std::string& name) const;

  std::array<Shard, kNumShards> shards_;
};

}  // namespace nerglob::metrics

#endif  // NERGLOB_COMMON_METRICS_H_
