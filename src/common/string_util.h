#ifndef NERGLOB_COMMON_STRING_UTIL_H_
#define NERGLOB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace nerglob {

/// ASCII-lowercases a string (microblog text in this project is ASCII-folded
/// by the normalizer before matching, so ASCII case folding suffices).
std::string ToLowerAscii(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on any amount of whitespace; no empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Splits on a single character delimiter; keeps empty pieces.
std::vector<std::string> SplitChar(std::string_view s, char delim);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// FNV-1a 64-bit hash; used for hashed subword features.
uint64_t Fnv1aHash(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace nerglob

#endif  // NERGLOB_COMMON_STRING_UTIL_H_
