#ifndef NERGLOB_COMMON_THREAD_POOL_H_
#define NERGLOB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nerglob {

/// Process-wide inference parallelism knob. First call reads the
/// NERGLOB_THREADS environment variable; when unset (or invalid) the value
/// defaults to std::thread::hardware_concurrency(). Always >= 1.
size_t Parallelism();

/// Overrides the parallelism knob at runtime (benchmark sweeps, tests).
/// n == 0 resets to the environment/hardware default. Must not be called
/// from inside a ParallelFor body.
void SetParallelism(size_t n);

/// True while the calling thread is executing a ParallelFor chunk (on a
/// worker or on the caller thread participating in the loop). Used to keep
/// non-thread-safe machinery — notably autograd Backward() — out of
/// parallel regions, and to run nested ParallelFor calls inline.
bool InParallelRegion();

/// A fixed-size pool of worker threads consuming a FIFO task queue.
/// Tasks must not throw; any exception is captured by ParallelFor and
/// rethrown on the calling thread. Destruction drains nothing: pending
/// tasks are discarded after the ones already running finish.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> fn);

  /// The lazily-created process-wide pool used by ParallelFor. Sized
  /// max(hardware_concurrency, Parallelism()) at first use and never
  /// resized; ParallelFor stays correct (and deterministic) even when the
  /// knob asks for more parallelism than there are workers.
  static ThreadPool* Global();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(chunk_begin, chunk_end) over [begin, end) split into contiguous
/// chunks of at most `grain` indices. Chunk boundaries depend only on
/// (begin, end, grain) — never on the thread count — and every chunk writes
/// its own index range, so results are bit-for-bit identical for any
/// NERGLOB_THREADS setting ("deterministic ordered merge"). The calling
/// thread participates in execution and blocks until every chunk finished.
/// Runs inline (serially) when Parallelism() == 1, when the range fits in
/// one chunk, or when already inside a parallel region (no nested pools).
/// The first exception thrown by fn is rethrown on the calling thread after
/// all chunks complete.
void ParallelForRange(size_t begin, size_t end, size_t grain,
                      const std::function<void(size_t, size_t)>& fn);

/// Per-index convenience wrapper over ParallelForRange: fn(i) for each i in
/// [begin, end), chunked by `grain`. Same determinism guarantee.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn);

}  // namespace nerglob

#endif  // NERGLOB_COMMON_THREAD_POOL_H_
