#ifndef NERGLOB_COMMON_ENV_H_
#define NERGLOB_COMMON_ENV_H_

#include <cstdint>
#include <limits>
#include <string>

namespace nerglob::env {

/// Typed access to the NERGLOB_* environment knobs. Every reader in the
/// tree goes through these helpers so the parse/validation/fallback
/// behavior is uniform: a malformed or out-of-range value is reported once
/// to stderr (warn-and-default — never a crash, never a silent ignore) and
/// the documented default is used instead. README's operations table is the
/// knob inventory; bench/check_docs.py gates it against the source.
///
/// All helpers read the process environment on every call; callers that
/// need a stable snapshot (thread pool sizing, queue capacities) latch the
/// first result in a static, exactly like the pre-helper code did.

/// Integer knob clamped to [min_value, max_value]. Returns `fallback` (and
/// warns) when the value is unset-and-fallback, non-numeric, has trailing
/// garbage, or violates the range.
int64_t EnvInt(const char* name, int64_t fallback, int64_t min_value,
               int64_t max_value = std::numeric_limits<int64_t>::max());

/// Floating-point knob clamped to [min_value, max_value]; same
/// warn-and-default contract as EnvInt.
double EnvFloat(const char* name, double fallback, double min_value,
                double max_value = std::numeric_limits<double>::max());

/// Boolean knob: "1"/"true"/"on"/"yes" => true, "0"/"false"/"off"/"no" =>
/// false (case-sensitive, matching the historical NERGLOB_METRICS values);
/// anything else warns and returns `fallback`.
bool EnvBool(const char* name, bool fallback);

/// String knob; unset (or empty when `empty_is_unset`) returns `fallback`.
/// No validation — callers owning enum-like knobs (NERGLOB_SIMD,
/// NERGLOB_LOG_LEVEL, NERGLOB_FAULT) parse the string themselves and keep
/// their own site-specific error handling.
std::string EnvString(const char* name, const std::string& fallback,
                      bool empty_is_unset = true);

}  // namespace nerglob::env

#endif  // NERGLOB_COMMON_ENV_H_
