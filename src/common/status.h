#ifndef NERGLOB_COMMON_STATUS_H_
#define NERGLOB_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace nerglob {

/// Error categories used across the library. Modeled after the
/// Status idiom used by RocksDB/Arrow: fallible operations return a
/// Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  /// Transient overload: the operation was rejected by admission control
  /// (e.g. a serving queue at its high watermark) and may succeed if
  /// retried after the backlog drains.
  kUnavailable,
  /// Unrecoverable loss or corruption of owned state: the target (e.g. a
  /// quarantined serving session, or a checkpoint directory with no valid
  /// generation) cannot serve this request and retrying will not help;
  /// callers recover from a checkpoint or discard the stream.
  kDataLoss,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of a fallible operation.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
///
/// Usage:
///   Result<int> r = ParseInt(s);
///   if (!r.ok()) return r.status();
///   int v = r.value();
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status, mirroring absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}             // NOLINT
  Result(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace nerglob

/// Propagates a non-OK Status from the current function.
#define NERGLOB_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::nerglob::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                         \
  } while (0)

#endif  // NERGLOB_COMMON_STATUS_H_
