#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/env.h"

namespace nerglob {

namespace {

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{[] {
    // EnvString never logs, which matters here: warning about a malformed
    // value would re-enter LevelStore() mid-initialization. An unknown
    // level name is reported (via bare fprintf for the same reason) and
    // falls back to info.
    const std::string env = env::EnvString("NERGLOB_LOG_LEVEL", "info");
    if (env == "debug") return static_cast<int>(LogLevel::kDebug);
    if (env == "warning") return static_cast<int>(LogLevel::kWarning);
    if (env == "error") return static_cast<int>(LogLevel::kError);
    if (env != "info") {
      std::fprintf(stderr,
                   "[WARN logging.cc] NERGLOB_LOG_LEVEL='%s' is not one of "
                   "debug|info|warning|error; using default info\n",
                   env.c_str());
    }
    return static_cast<int>(LogLevel::kInfo);
  }()};
  return level;
}

/// Basename of a path for compact log prefixes.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStore().load()); }

void SetLogLevel(LogLevel level) { LevelStore().store(static_cast<int>(level)); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace nerglob
