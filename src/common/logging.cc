#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nerglob {

namespace {

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{[] {
    const char* env = std::getenv("NERGLOB_LOG_LEVEL");
    if (env == nullptr) return static_cast<int>(LogLevel::kInfo);
    if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
    if (std::strcmp(env, "warning") == 0) return static_cast<int>(LogLevel::kWarning);
    if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
    return static_cast<int>(LogLevel::kInfo);
  }()};
  return level;
}

/// Basename of a path for compact log prefixes.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStore().load()); }

void SetLogLevel(LogLevel level) { LevelStore().store(static_cast<int>(level)); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace nerglob
