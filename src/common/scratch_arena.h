#ifndef NERGLOB_COMMON_SCRATCH_ARENA_H_
#define NERGLOB_COMMON_SCRATCH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "tensor/matrix.h"

// Header-only on purpose: ScratchArena hands out Matrix slots, and the
// tensor library already links against nerglob_common — a scratch_arena.cc
// inside nerglob_common would invert that dependency.

namespace nerglob::common {

/// A bump allocator of reusable Matrix slots for graph-free inference.
///
/// Ownership rules (see DESIGN.md "Scratch arena"):
///   * One arena per thread (use ThreadLocal()); arenas are not
///     thread-safe and never shared across threads.
///   * Matrices returned by Get() are owned by the arena and valid until
///     the enclosing ScratchFrame is destroyed (frames restore the bump
///     mark, so nested calls compose like a stack). Never retain an arena
///     matrix past the frame — copy into a caller-owned Matrix for
///     anything that outlives the call (sentence embeddings, mention
///     embeddings, model outputs).
///   * Get() contents are unspecified; every kernel writing into a slot
///     must cover the full extent (all *Into kernels do).
///
/// Steady-state behaviour: each slot keeps its high-water buffer, so once
/// a stream has exercised its peak shapes every Get() is a pointer bump
/// plus a capacity-satisfied Reshape — zero heap allocations. Growth
/// events (new slots or capacity growth) are counted per arena and
/// published to the metrics registry:
///   arena.heap_allocs_total   counter, allocation events across arenas
///   arena.high_water_bytes    gauge, peak bytes reserved by one arena
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// A rows x cols matrix backed by the next slot. Contents unspecified.
  Matrix* Get(size_t rows, size_t cols) {
    if (used_ == slots_.size()) {
      slots_.emplace_back(std::make_unique<Matrix>());
      RecordAlloc(0);
    }
    Matrix* m = slots_[used_++].get();
    const size_t before = m->capacity();
    m->Reshape(rows, cols);
    if (m->capacity() > before) {
      RecordAlloc((m->capacity() - before) * sizeof(float));
    }
    return m;
  }

  /// Get() followed by zero-fill (for kernels that accumulate).
  Matrix* GetZero(size_t rows, size_t cols) {
    Matrix* m = Get(rows, cols);
    m->Zero();
    return m;
  }

  /// Number of slots currently handed out (the bump mark).
  size_t depth() const { return used_; }

  /// Releases every outstanding slot (capacity is kept). Prefer
  /// ScratchFrame, which restores the mark on scope exit.
  void Reset() { used_ = 0; }

  /// Allocation events this arena has performed (slot creations plus
  /// buffer growths). Flat at steady state — the "0 heap allocations per
  /// message" acceptance metric is a zero delta of this counter.
  uint64_t heap_allocs() const { return heap_allocs_; }

  /// Bytes currently reserved across all slots of this arena.
  size_t reserved_bytes() const { return reserved_bytes_; }

  /// The calling thread's arena (created on first use).
  static ScratchArena& ThreadLocal() {
    thread_local ScratchArena arena;
    return arena;
  }

 private:
  friend class ScratchFrame;

  void RecordAlloc(size_t grown_bytes) {
    ++heap_allocs_;
    reserved_bytes_ += grown_bytes;
    if (!metrics::Enabled()) return;
    // Handles resolve once per process; the hot path above touches them
    // only on growth events, which stop once the stream reaches its peak
    // shapes.
    static metrics::Counter* const allocs =
        metrics::MetricsRegistry::Global().GetCounter("arena.heap_allocs_total");
    static metrics::Gauge* const high_water =
        metrics::MetricsRegistry::Global().GetGauge("arena.high_water_bytes");
    allocs->Increment();
    high_water->SetMax(static_cast<double>(reserved_bytes_));
  }

  std::vector<std::unique_ptr<Matrix>> slots_;
  size_t used_ = 0;
  uint64_t heap_allocs_ = 0;
  size_t reserved_bytes_ = 0;
};

/// RAII bump mark: slots acquired through (or after) the frame are
/// released when it goes out of scope. Frames nest like a call stack.
class ScratchFrame {
 public:
  explicit ScratchFrame(ScratchArena* arena)
      : arena_(arena), mark_(arena->used_) {}
  ScratchFrame(const ScratchFrame&) = delete;
  ScratchFrame& operator=(const ScratchFrame&) = delete;
  ~ScratchFrame() { arena_->used_ = mark_; }

  Matrix* Get(size_t rows, size_t cols) { return arena_->Get(rows, cols); }
  Matrix* GetZero(size_t rows, size_t cols) { return arena_->GetZero(rows, cols); }
  ScratchArena* arena() const { return arena_; }

 private:
  ScratchArena* arena_;
  size_t mark_;
};

}  // namespace nerglob::common

#endif  // NERGLOB_COMMON_SCRATCH_ARENA_H_
