#ifndef NERGLOB_COMMON_LOGGING_H_
#define NERGLOB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace nerglob {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// Global log threshold; messages below it are dropped. Defaults to kInfo,
/// overridable at startup via the NERGLOB_LOG_LEVEL environment variable
/// ("debug"/"info"/"warning"/"error").
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Stream sink that emits one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace nerglob

/// Leveled logging to stderr: NERGLOB_LOG(kInfo) << "trained " << n;
#define NERGLOB_LOG(severity)                                   \
  ::nerglob::internal_logging::LogMessage(                      \
      ::nerglob::LogLevel::severity, __FILE__, __LINE__)

#endif  // NERGLOB_COMMON_LOGGING_H_
