#ifndef NERGLOB_COMMON_CHECK_H_
#define NERGLOB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace nerglob::internal_check {

/// Prints the failure banner and aborts. Out-of-line so the macro bodies
/// stay small and the cold path does not bloat callers.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);

/// Stream sink that aborts on destruction; powers `CHECK(x) << "detail"`.
class CheckMessageSink {
 public:
  CheckMessageSink(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageSink(const CheckMessageSink&) = delete;
  CheckMessageSink& operator=(const CheckMessageSink&) = delete;

  [[noreturn]] ~CheckMessageSink() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageSink& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace nerglob::internal_check

/// Aborts with file/line and the failed expression when `cond` is false.
/// Used for programmer errors / internal invariants (recoverable conditions
/// surface as Status instead). Enabled in all build types.
#define NERGLOB_CHECK(cond)                                                  \
  for (; !(cond);)                                                           \
  ::nerglob::internal_check::CheckMessageSink(__FILE__, __LINE__, #cond)

#define NERGLOB_CHECK_EQ(a, b) NERGLOB_CHECK((a) == (b))
#define NERGLOB_CHECK_NE(a, b) NERGLOB_CHECK((a) != (b))
#define NERGLOB_CHECK_LT(a, b) NERGLOB_CHECK((a) < (b))
#define NERGLOB_CHECK_LE(a, b) NERGLOB_CHECK((a) <= (b))
#define NERGLOB_CHECK_GT(a, b) NERGLOB_CHECK((a) > (b))
#define NERGLOB_CHECK_GE(a, b) NERGLOB_CHECK((a) >= (b))

/// Debug-only check; compiles away in NDEBUG builds.
#ifdef NDEBUG
#define NERGLOB_DCHECK(cond) \
  for (; false;)             \
  ::nerglob::internal_check::CheckMessageSink(__FILE__, __LINE__, #cond)
#else
#define NERGLOB_DCHECK(cond) NERGLOB_CHECK(cond)
#endif

#endif  // NERGLOB_COMMON_CHECK_H_
