#include "common/check.h"

namespace nerglob::internal_check {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "[NERGLOB CHECK FAILED] %s:%d: %s", file, line, expr);
  if (!extra.empty()) {
    std::fprintf(stderr, " — %s", extra.c_str());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace nerglob::internal_check
