#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/check.h"
#include "common/env.h"
#include "common/metrics.h"

namespace nerglob {

namespace {

size_t HardwareDefault() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t EnvDefault() {
  const int64_t value = env::EnvInt("NERGLOB_THREADS", 0, 1, 4096);
  if (value >= 1) return static_cast<size_t>(value);
  return HardwareDefault();
}

std::atomic<size_t>& ParallelismKnob() {
  static std::atomic<size_t> knob{EnvDefault()};
  return knob;
}

thread_local bool t_in_parallel_region = false;

/// RAII marker for "this thread is executing a ParallelFor chunk".
class ParallelRegionScope {
 public:
  ParallelRegionScope() : prev_(t_in_parallel_region) {
    t_in_parallel_region = true;
  }
  ~ParallelRegionScope() { t_in_parallel_region = prev_; }

 private:
  bool prev_;
};

}  // namespace

size_t Parallelism() { return ParallelismKnob().load(std::memory_order_relaxed); }

void SetParallelism(size_t n) {
  NERGLOB_CHECK(!InParallelRegion())
      << "SetParallelism must not be called from a ParallelFor body";
  ParallelismKnob().store(n == 0 ? EnvDefault() : n,
                          std::memory_order_relaxed);
}

bool InParallelRegion() { return t_in_parallel_region; }

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(std::max<size_t>(num_threads, 1));
  for (size_t i = 0; i < std::max<size_t>(num_threads, 1); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    NERGLOB_CHECK(!stop_) << "Schedule on a stopped ThreadPool";
    queue_.push_back(std::move(fn));
    if (metrics::Enabled()) {
      static metrics::Counter* const scheduled =
          metrics::MetricsRegistry::Global().GetCounter(
              "pool.tasks_scheduled_total");
      static metrics::Gauge* const depth =
          metrics::MetricsRegistry::Global().GetGauge("pool.queue_depth");
      scheduled->Increment();
      depth->Set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool* ThreadPool::Global() {
  // Leaked on purpose: outliving every static destructor avoids
  // shutdown-order races with worker threads.
  static ThreadPool* const pool =
      new ThreadPool(std::max(HardwareDefault(), Parallelism()));
  return pool;
}

void ParallelForRange(size_t begin, size_t end, size_t grain,
                      const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<size_t>(grain, 1);
  const size_t range = end - begin;
  const size_t num_chunks = (range + grain - 1) / grain;
  const size_t parallelism = Parallelism();

  // Serial fast path: single chunk, parallelism off, or nested call.
  if (num_chunks == 1 || parallelism <= 1 || InParallelRegion()) {
    if (metrics::Enabled()) {
      static metrics::Counter* const inline_loops =
          metrics::MetricsRegistry::Global().GetCounter(
              "pool.inline_loops_total");
      inline_loops->Increment();
    }
    ParallelRegionScope scope;
    fn(begin, end);
    return;
  }
  if (metrics::Enabled()) {
    static metrics::Counter* const parallel_loops =
        metrics::MetricsRegistry::Global().GetCounter(
            "pool.parallel_loops_total");
    static metrics::Counter* const chunks =
        metrics::MetricsRegistry::Global().GetCounter("pool.chunks_total");
    parallel_loops->Increment();
    chunks->Increment(num_chunks);
  }

  // Shared chunk cursor: executors claim chunks dynamically, but each chunk
  // covers a fixed index range, so the output is schedule-independent.
  struct State {
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> done_chunks{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first exception wins, guarded by mu
  };
  auto state = std::make_shared<State>();

  auto run_chunks = [state, begin, end, grain, num_chunks, &fn]() {
    ParallelRegionScope scope;
    for (;;) {
      const size_t c = state->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const size_t chunk_begin = begin + c * grain;
      const size_t chunk_end = std::min(end, chunk_begin + grain);
      try {
        fn(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  // One runner per extra lane; the caller is the first lane. Runners that
  // arrive after all chunks were claimed exit immediately, so requesting
  // more lanes than there are pool workers is harmless.
  const size_t extra = std::min(parallelism - 1, num_chunks - 1);
  ThreadPool* pool = ThreadPool::Global();
  for (size_t i = 0; i < extra; ++i) pool->Schedule(run_chunks);
  run_chunks();

  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&state, num_chunks] {
      return state->done_chunks.load(std::memory_order_acquire) == num_chunks;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn) {
  ParallelForRange(begin, end, grain, [&fn](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) fn(i);
  });
}

}  // namespace nerglob
