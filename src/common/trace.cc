#include "common/trace.h"

namespace nerglob::trace {

namespace {

/// Innermost live span of the calling thread. Thread-local keeps nesting
/// correct when pool workers and the caller record concurrently.
thread_local TraceSpan* t_current_span = nullptr;

}  // namespace

TraceStage::TraceStage(const char* name) : name_(name) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  wall_ = registry.GetHistogram("stage." + name_ + ".wall_seconds");
  self_ = registry.GetHistogram("stage." + name_ + ".self_seconds");
  calls_ = registry.GetCounter("stage." + name_ + ".calls_total");
}

TraceSpan::TraceSpan(const TraceStage& stage) {
  if (!metrics::Enabled()) return;
  stage_ = &stage;
  parent_ = t_current_span;
  t_current_span = this;
  start_ = MonotonicClock::now();
}

TraceSpan::~TraceSpan() {
  if (stage_ == nullptr) return;
  const double wall = std::chrono::duration<double>(
                          MonotonicClock::now() - start_)
                          .count();
  t_current_span = parent_;
  if (parent_ != nullptr) parent_->child_seconds_ += wall;
  stage_->wall_->Observe(wall);
  stage_->self_->Observe(wall > child_seconds_ ? wall - child_seconds_ : 0.0);
  stage_->calls_->Increment();
}

const TraceSpan* TraceSpan::Current() { return t_current_span; }

}  // namespace nerglob::trace
