#ifndef NERGLOB_COMMON_RNG_H_
#define NERGLOB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nerglob {

/// Deterministic, seedable pseudo-random number generator
/// (splitmix64-initialized xoshiro256**). Every stochastic component in the
/// library takes an explicit Rng (or seed) so experiments reproduce
/// bit-for-bit; nothing reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform int in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Samples an index from unnormalized non-negative weights.
  /// Requires a positive total weight.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Samples from a Zipf distribution over {0..n-1} with exponent s:
  /// P(k) ∝ 1/(k+1)^s. Used to model heavy entity recurrence in streams.
  size_t NextZipf(size_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = NextBelow(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Spawns an independent child generator; deterministic given this
  /// generator's state.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace nerglob

#endif  // NERGLOB_COMMON_RNG_H_
