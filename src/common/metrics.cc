#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <sstream>

#include "common/check.h"
#include "common/env.h"

namespace nerglob::metrics {

namespace {

bool EnvEnabled() { return env::EnvBool("NERGLOB_METRICS", false); }

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnvEnabled()};
  return flag;
}

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

/// Doubles formatted with enough digits to round-trip while staying
/// readable ("%.9g"); integers are emitted as-is.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // JSON requires a leading digit form for special values; metrics never
  // produce NaN/Inf from well-formed Observe() calls, but guard anyway.
  if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr) {
    return "0";
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "nerglob_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  if (!Enabled()) return;
  AtomicAddDouble(&value_, delta);
}

void Gauge::SetMax(double value) {
  if (!Enabled()) return;
  double current = value_.load(std::memory_order_relaxed);
  while (current < value &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  NERGLOB_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending: " << name_;
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  // Inclusive upper bounds: the first bound >= value wins; anything above
  // the last bound lands in the overflow bucket.
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose (never destroyed): instrument handles cached in
  // function-local statics must stay valid through static destructors.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

const MetricsRegistry::Shard& MetricsRegistry::ShardFor(
    const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  NERGLOB_CHECK(shard.gauges.count(name) == 0 &&
                shard.histograms.count(name) == 0)
      << "metric kind mismatch for " << name;
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    it = shard.counters
             .emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  NERGLOB_CHECK(shard.counters.count(name) == 0 &&
                shard.histograms.count(name) == 0)
      << "metric kind mismatch for " << name;
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    it = shard.gauges.emplace(name, std::unique_ptr<Gauge>(new Gauge(name)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  NERGLOB_CHECK(shard.counters.count(name) == 0 &&
                shard.gauges.count(name) == 0)
      << "metric kind mismatch for " << name;
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBounds();
    it = shard.histograms
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(name, std::move(bounds))))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::ToJson() const {
  // Snapshot into sorted maps first so output order is deterministic
  // regardless of shard assignment.
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, const Histogram*> histograms;
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kNumShards);
  for (const Shard& shard : shards_) locks.emplace_back(shard.mu);
  for (const Shard& shard : shards_) {
    for (const auto& [name, c] : shard.counters) counters[name] = c->value();
    for (const auto& [name, g] : shard.gauges) gauges[name] = g->value();
    for (const auto& [name, h] : shard.histograms) histograms[name] = h.get();
  }

  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << value;
    first = false;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << FormatDouble(value);
    first = false;
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": {"
       << "\"count\": " << h->count() << ", \"sum\": "
       << FormatDouble(h->sum()) << ", \"buckets\": [";
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      if (i < h->bounds().size()) {
        os << FormatDouble(h->bounds()[i]);
      } else {
        os << "\"+Inf\"";
      }
      os << ", \"count\": " << h->BucketCount(i) << "}";
    }
    os << "]}";
    first = false;
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}";
  return os.str();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, const Histogram*> histograms;
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kNumShards);
  for (const Shard& shard : shards_) locks.emplace_back(shard.mu);
  for (const Shard& shard : shards_) {
    for (const auto& [name, c] : shard.counters) counters[name] = c->value();
    for (const auto& [name, g] : shard.gauges) gauges[name] = g->value();
    for (const auto& [name, h] : shard.histograms) histograms[name] = h.get();
  }

  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    const std::string p = PrometheusName(name);
    os << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = PrometheusName(name);
    os << "# TYPE " << p << " gauge\n"
       << p << " " << FormatDouble(value) << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = PrometheusName(name);
    os << "# TYPE " << p << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->BucketCount(i);
      os << p << "_bucket{le=\"" << FormatDouble(h->bounds()[i]) << "\"} "
         << cumulative << "\n";
    }
    cumulative += h->BucketCount(h->bounds().size());
    os << p << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << p << "_sum " << FormatDouble(h->sum()) << "\n";
    os << p << "_count " << h->count() << "\n";
  }
  return os.str();
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

void MetricsRegistry::ResetAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [name, c] : shard.counters) c->Reset();
    for (auto& [name, g] : shard.gauges) g->Reset();
    for (auto& [name, h] : shard.histograms) h->Reset();
  }
}

}  // namespace nerglob::metrics
